package speclin_test

import (
	"context"
	"strings"
	"testing"

	speclin "repro"
	"repro/internal/experiments"
)

// The public facade end to end: build the shared-memory object, drive it,
// check its trace through the exported checkers.
func TestPublicAPISharedMemory(t *testing.T) {
	obj, err := speclin.NewSharedMemoryConsensus()
	if err != nil {
		t.Fatal(err)
	}
	out, err := obj.Invoke("me", speclin.TagInput(speclin.ProposeInput("x"), "me"))
	if err != nil {
		t.Fatal(err)
	}
	if out != speclin.DecideOutput("x") {
		t.Fatalf("decided %q", out)
	}
	plain := obj.Trace().Project(func(a speclin.Action) bool { return !a.IsSwi() })
	rep, err := speclin.Check(context.Background(), speclin.CheckSpec{Folder: speclin.ConsensusADT}, plain)
	if err != nil || rep.Verdict != speclin.Linearizable {
		t.Fatalf("linearizability: %+v %v", rep, err)
	}

	// The same trace through the incremental facade session.
	sess, err := speclin.NewSession(context.Background(), speclin.CheckSpec{Folder: speclin.ConsensusADT})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range plain {
		if err := sess.Feed(a); err != nil {
			t.Fatal(err)
		}
	}
	srep, err := sess.Report()
	if err != nil || srep.Verdict != speclin.Linearizable {
		t.Fatalf("session: %+v %v", srep, err)
	}
}

// The public facade for the message-passing stack.
func TestPublicAPIMessagePassing(t *testing.T) {
	net := speclin.NewNetwork(speclin.NetConfig{Seed: 3})
	obj, err := speclin.NewQuorumBackupConsensus(net,
		[]speclin.ProcID{"c1", "c2"}, []speclin.ProcID{"s1", "s2", "s3"})
	if err != nil {
		t.Fatal(err)
	}
	obj.ProposeAt("c1", "a", 0)
	obj.ProposeAt("c2", "b", 5)
	obj.Run(100_000)
	rs := obj.Results()
	if len(rs) != 2 {
		t.Fatalf("results: %v", rs)
	}
	if rs[0].Decision != rs[1].Decision {
		t.Fatalf("split decisions: %v", rs)
	}
}

// E1's shape as a test: the fast path beats the baseline by roughly 2×
// in fault-free runs.
func TestE1Shape(t *testing.T) {
	tab, err := experiments.E1FastPathLatency(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[1] != "2 delays" {
			t.Fatalf("fast path not 2 delays: %v", row)
		}
		if row[2] == "2 delays" {
			t.Fatalf("baseline as fast as fast path: %v", row)
		}
	}
}

// E6b's divergence finding as a regression test: the literal Abort-Order
// rejects some unrestricted Quorum schedules while the temporal variant
// accepts all; on switch-then-stop schedules the two agree.
func TestE6bShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep")
	}
	tab, err := experiments.E6bAbortOrderDivergence(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows: %v", tab.Rows)
	}
	restricted, unrestricted := tab.Rows[0], tab.Rows[1]
	if restricted[3] != "100%" || restricted[4] != "100%" {
		t.Fatalf("restricted schedules must satisfy both variants: %v", restricted)
	}
	if unrestricted[3] == "100%" {
		t.Fatalf("literal Abort-Order unexpectedly accepted all unrestricted schedules: %v", unrestricted)
	}
	if unrestricted[4] != "100%" {
		t.Fatalf("temporal variant must accept all: %v", unrestricted)
	}
}

// E9's shape as a test: sequential fast-path SMR is strictly faster than
// the baseline, and both stay consistent.
func TestE9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep")
	}
	tab, err := experiments.E9SMRThroughput(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string][]string{}
	for _, row := range tab.Rows {
		byKey[row[0]+"/"+row[1]] = row
		if row[5] != "yes" {
			t.Fatalf("inconsistent run: %v", row)
		}
		if row[4] != "100%" {
			t.Fatalf("commands lost: %v", row)
		}
	}
	seq := byKey["sequential/speculative"]
	base := byKey["sequential/paxos-only"]
	if seq == nil || base == nil {
		t.Fatalf("missing rows: %v", tab.Rows)
	}
	if !(seq[2] < base[2]) { // "2.00" < "4.00" lexically holds for these magnitudes
		t.Fatalf("fast path not faster sequentially: %v vs %v", seq, base)
	}
}

// E10 as a test: three phases compose without modification and all runs
// stay linearizable.
func TestE10ThreePhaseChain(t *testing.T) {
	if testing.Short() {
		t.Skip("slow sweep")
	}
	tab, err := experiments.E10PhaseChain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[1] != "100%" {
			t.Fatalf("liveness lost in %v", row)
		}
		if row[5] != "yes" {
			t.Fatalf("linearizability lost in %v", row)
		}
	}
	// Under crash+contention the final phase must do real work.
	last := tab.Rows[len(tab.Rows)-1]
	if last[4] == "0%" {
		t.Fatalf("crash scenario never reached Paxos: %v", last)
	}
}

// The experiment table renderer produces well-formed markdown.
func TestRenderTable(t *testing.T) {
	var sb strings.Builder
	experiments.Render(&sb, experiments.Table{
		ID: "X", Title: "demo", Header: []string{"a", "b"},
		Rows: [][]string{{"1", "2"}}, Notes: []string{"note"},
	})
	out := sb.String()
	for _, want := range []string{"## X — demo", "| a | b |", "| 1 | 2 |", "note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in %q", want, out)
		}
	}
}
