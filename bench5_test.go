// The machine-readable summary for the fault-injection subsystem
// (ISSUE 6): TestWriteBench5JSON runs the E15 chaos pair — the armed
// fault-free baseline and the chaos run under rolling crash–recovery
// restarts, a partition isolating one server for 30% of the feed and
// duplicating links, with online linearizability checking on — and
// records BENCH_5.json.
package speclin_test

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/experiments"
)

// chaosFull forces the full-scale E15 pair even under -race or -short:
// the nightly chaos job runs `go test -race -run TestWriteBench5JSON .
// -args -chaos-full` to put the whole fault schedule under the race
// detector. The recorded artifact is still only written by plain runs.
var chaosFull = flag.Bool("chaos-full", false,
	"run the full-scale E15 chaos pair even under -race/-short")

type bench5Summary struct {
	Issue       int    `json:"issue"`
	Description string `json:"description"`
	GOOS        string `json:"goos"`
	GOARCH      string `json:"goarch"`
	GOMAXPROCS  int    `json:"gomaxprocs"`
	Config      struct {
		Shards             int     `json:"shards"`
		Commands           int     `json:"commands"`
		Clients            int     `json:"clients"`
		Servers            int     `json:"servers"`
		PaceDelays         int64   `json:"pace_delays"`
		CompactEvery       int     `json:"compact_every"`
		Seed               int64   `json:"seed"`
		RetryTimeoutDelays int64   `json:"retry_timeout_delays"`
		DupProb            float64 `json:"dup_prob"`
	} `json:"config"`
	Rows []experiments.ChaosResult `json:"chaos"`
}

// TestWriteBench5JSON regenerates BENCH_5.json on every plain `go test .`
// run. Under -short or the race detector it runs a scaled-down pair and
// leaves the recorded artifact untouched (unless -chaos-full asks for
// the full schedule, which still skips the write).
func TestWriteBench5JSON(t *testing.T) {
	shards, commands := experiments.E15Base.Shards, experiments.E15Base.Commands
	write := !raceEnabled && !testing.Short()
	if !write && !*chaosFull {
		shards, commands = 4, 8_000
	}
	rows, err := experiments.E15Rows(context.Background(), shards, commands)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("E15 returned %d rows, want baseline + chaos", len(rows))
	}
	baseline, chaos := rows[0], rows[1]

	for _, r := range rows {
		mode := "baseline"
		if r.FaultsInjected {
			mode = "chaos"
		}
		if !r.Linearizable {
			t.Errorf("%s: per-key histories not all linearizable", mode)
		}
		if !r.Consistent {
			t.Errorf("%s: per-shard log agreement failed", mode)
		}
		if int64(r.Commands) != r.CheckedOps {
			t.Errorf("%s: checked %d ops of %d landed commands", mode, r.CheckedOps, r.Commands)
		}
		t.Logf("%-8s commands=%7d fast-path=%.1f%% (before/during/after %.1f/%.1f/%.1f%%) "+
			"retries=%d dups=%d recover=%d",
			mode, r.Commands, 100*r.FastPathRate, 100*r.FastPathBefore,
			100*r.FastPathDuring, 100*r.FastPathAfter, r.Retries, r.DuplicatedMsgs, r.TimeToRecover)
	}
	if baseline.Retries != 0 {
		t.Errorf("fault-free baseline retried %d times", baseline.Retries)
	}
	if chaos.Retries == 0 {
		t.Error("chaos run: the majority blackout forced no retries")
	}
	if chaos.DuplicatedMsgs == 0 {
		t.Error("chaos run: duplicating links produced no duplicates")
	}
	if chaos.FastPathDuring >= chaos.FastPathBefore {
		t.Errorf("chaos run: fast path did not degrade (before %.3f, during %.3f)",
			chaos.FastPathBefore, chaos.FastPathDuring)
	}
	if chaos.TimeToRecover < 0 {
		t.Errorf("chaos run: fast path never recovered after the heal (before %.3f, after %.3f)",
			chaos.FastPathBefore, chaos.FastPathAfter)
	}

	if !write {
		t.Log("short/race mode: BENCH_5.json left untouched")
		return
	}
	sum := bench5Summary{
		Issue: 6,
		Description: "fault-injection chaos on the sharded speculative SMR cluster: rolling " +
			"server crash–recovery restarts (durable per-slot snapshots, lazy rebuild), a " +
			"partition isolating one server for 30% of the feed — overlapping one crash " +
			"into a brief total majority blackout — and 5% message duplication on every " +
			"client↔server link; client retries with capped exponential backoff land every " +
			"command exactly once; per-key histories checked linearizable online during the " +
			"run; the baseline row runs the same armed harness fault-free",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Rows:       rows,
	}
	sum.Config.Shards = shards
	sum.Config.Commands = commands
	sum.Config.Clients = experiments.E15Base.Clients
	sum.Config.Servers = experiments.E15Base.Servers
	sum.Config.PaceDelays = int64(experiments.E15Base.Pace)
	sum.Config.CompactEvery = experiments.E15Base.CompactEvery
	sum.Config.Seed = experiments.E15Base.Seed
	sum.Config.RetryTimeoutDelays = 400
	sum.Config.DupProb = 0.05

	out, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_5.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Println("wrote BENCH_5.json")
}
