// capture: check real concurrent Go code live. Part one instruments a
// shared atomic register by hand — goroutines record each operation's
// invocation and response into lock-free per-goroutine capture buffers,
// and the main goroutine drains the merged trace into an incremental
// checker session *while the workers are still running*. Part two runs
// the packaged hunt harness on the Michael–Scott queue and on its
// seeded-bug mutant (a failed head-CAS that returns its value anyway):
// the clean queue checks linearizable, the mutant is flagged.
//
//	go run ./examples/capture
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"sync"
	"sync/atomic"
	"time"

	speclin "repro"
	"repro/internal/adt"
	"repro/internal/capture"
	"repro/internal/trace"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// --- Part one: instrument a register by hand -----------------------
	//
	// The structure under test is an atomic.Value used as a string
	// register — genuinely linearizable, so the live verdict must be
	// Linearizable. Each goroutine owns one capture.Proc and brackets
	// every operation with Inv/Res; recording never blocks the workers.
	const workers, opsPer = 4, 200
	var reg atomic.Value
	rec := capture.NewRecorder(workers)

	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		p := rec.Proc(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer p.Close() // gate → +∞: stop holding back the watermark
			for seq := 0; seq < opsPer; seq++ {
				uniq := fmt.Sprintf("g%d.%d", i, seq)
				if seq%3 == 0 {
					// Writes carry globally unique values, so the captured
					// history lands in the register fast path's fragment.
					in := adt.WriteInput(trace.Value(uniq))
					p.Inv(in)
					reg.Store(uniq)
					p.Res(in, adt.WriteOutput())
				} else {
					in := adt.Tag(adt.ReadInput(), uniq)
					p.Inv(in)
					v, _ := reg.Load().(string)
					out := adt.ReadOutput(adt.Bottom)
					if v != "" {
						out = adt.ReadOutput(trace.Value(v))
					}
					p.Res(in, out)
				}
			}
		}(i)
	}

	// Live drain loop: everything below the watermark — the minimum gate
	// over all procs — is in its final merge position and can be fed to
	// the session immediately, concurrently with the workers.
	sess, err := speclin.NewSession(ctx, speclin.CheckSpec{Folder: speclin.RegisterADT})
	if err != nil {
		log.Fatal(err)
	}
	workersDone := make(chan struct{})
	go func() { wg.Wait(); close(workersDone) }()
	var merged trace.Trace
	feed := func(limit int64) {
		start := len(merged)
		merged = rec.Drain(limit, merged)
		for _, a := range merged[start:] {
			if err := sess.Feed(a); err != nil {
				log.Fatal(err)
			}
		}
	}
	drains := 0
	for running := true; running; {
		select {
		case <-workersDone:
			running = false
		case <-time.After(100 * time.Microsecond):
		}
		feed(rec.Watermark())
		drains++
	}
	feed(math.MaxInt64) // every proc closed: drain the remainder

	rep, err := sess.Report()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("register: %d captured actions over %d incremental drains, verdict %s (%d nodes, %s)\n",
		len(merged), drains, rep.Verdict, rep.Nodes, rep.Wall.Round(time.Microsecond))

	// --- Part two: the packaged hunt ----------------------------------
	//
	// capture.Run wires the same recorder around a reference structure,
	// routes the merged history per key, and checks it (map and mutex
	// stream through fast-path sessions; queue and set check one-shot
	// post-run). The clean Michael–Scott queue must come back
	// Linearizable with zero empty dequeues.
	clean, err := capture.Run(ctx, capture.Config{
		Structure: capture.StructQueue, Goroutines: 8, Ops: 400, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean   %s\n", clean)

	// The dropped-retry mutant returns a value whose head-CAS lost the
	// race — two dequeuers can both claim one enqueue. Detection depends
	// on the interleaving, so hunts retry with derived seeds; the harness
	// perturbs schedules at the race-critical step to widen the window.
	for round := 0; ; round++ {
		mut, err := capture.Run(ctx, capture.Config{
			Structure: capture.StructQueue, Mutant: capture.MutantDroppedRetry,
			Goroutines: 8, Ops: 400, Seed: 1 + int64(round),
		})
		if err != nil {
			log.Fatal(err)
		}
		if mut.Live.Verdict == speclin.NotLinearizable {
			fmt.Printf("mutant  %s\n", mut)
			fmt.Printf("mutant caught in round %d\n", round+1)
			break
		}
		if round == 19 {
			log.Fatal("mutant survived 20 hunt rounds")
		}
	}
}
