// sharedmem: the paper's §2.5 shared-memory case study on real
// goroutines — the register-based RCons fast path (Figure 2) composed
// with the CAS-based CASCons backup (Figure 3) via the generic Composer.
// Uncontended rounds decide through registers only; contended rounds may
// switch to the CAS phase. Every round's trace is checked linearizable.
//
//	go run ./examples/sharedmem
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	speclin "repro"
)

func main() {
	const rounds = 2000

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	run := func(goroutines int) (fastPath int) {
		for r := 0; r < rounds; r++ {
			obj, err := speclin.NewSharedMemoryConsensus()
			if err != nil {
				log.Fatal(err)
			}
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					c := speclin.ClientID(fmt.Sprintf("g%d", g))
					in := speclin.TagInput(speclin.ProposeInput(fmt.Sprintf("v%d", g)), string(c))
					if _, err := obj.Invoke(c, in); err != nil {
						log.Fatal(err)
					}
				}(g)
			}
			wg.Wait()

			switched := false
			for _, a := range obj.Trace() {
				if a.IsSwi() {
					switched = true
					break
				}
			}
			if !switched {
				fastPath++
			}
			// Spot-check linearizability on a sample of rounds (the
			// checker is exact but rounds are many).
			if r%100 == 0 {
				plain := obj.Trace().Project(func(a speclin.Action) bool { return !a.IsSwi() })
				rep, err := speclin.Check(ctx, speclin.CheckSpec{Folder: speclin.ConsensusADT}, plain)
				if err != nil {
					log.Fatal(err)
				}
				if rep.Verdict != speclin.Linearizable {
					log.Fatalf("round %d not linearizable: %v", r, obj.Trace())
				}
			}
		}
		return fastPath
	}

	fmt.Printf("%-12s %-12s %s\n", "goroutines", "rounds", "register-only (no CAS) rate")
	for _, gs := range []int{1, 2, 4, 8} {
		fast := run(gs)
		fmt.Printf("%-12d %-12d %.1f%%\n", gs, rounds, 100*float64(fast)/rounds)
	}
	fmt.Println("\nall sampled traces linearizable ✓")
}
