// modelcheck: exhaustively explore every register-granularity
// interleaving of the §2.5 shared-memory composition (Figures 2+3) for
// small client counts, validating each complete run against the
// linearizability checker and the paper's invariants — the executable
// analog of the paper's hand proofs for RCons and CASCons.
//
//	go run ./examples/modelcheck
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/lin"
	"repro/internal/slin"
	"repro/internal/smcons"
	"repro/internal/trace"
)

func oracle(ctx context.Context) func(sys *smcons.System) error {
	return func(sys *smcons.System) error {
		return checkRun(ctx, sys)
	}
}

func checkRun(ctx context.Context, sys *smcons.System) error {
	tr := sys.Trace()
	plain := tr.Project(func(a trace.Action) bool { return a.Kind != trace.Swi })
	res, err := lin.Check(ctx, adt.Consensus{}, plain)
	if err != nil {
		return err
	}
	if !res.OK {
		return fmt.Errorf("not linearizable: %v", tr)
	}
	if err := slin.FirstPhaseInvariants(tr.ProjectSig(1, 2), 1, 2); err != nil {
		return err
	}
	return slin.SecondPhaseInvariants(tr.ProjectSig(2, 3), 2, 3)
}

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Exhaustive over all schedules, two clients with distinct values.
	sys := smcons.New(smcons.Config{Values: []trace.Value{"a", "b"}, FoldEndpoints: true})
	stats, err := check.ExhaustiveTraces(sys, oracle(ctx))
	if err != nil {
		log.Fatalf("counterexample: %v", err)
	}
	fmt.Printf("2 clients: %6d complete schedules, %7d steps — all linearizable, I1–I5 hold\n",
		stats.Runs, stats.Steps)

	// Duplicate proposals exercise repeated events.
	sys = smcons.New(smcons.Config{Values: []trace.Value{"a", "a"}, FoldEndpoints: true})
	stats, err = check.ExhaustiveTraces(sys, oracle(ctx))
	if err != nil {
		log.Fatalf("counterexample: %v", err)
	}
	fmt.Printf("2 clients (duplicate values): %d schedules — all pass\n", stats.Runs)

	// Exhaustive state graph for three clients (invariants per state).
	sys = smcons.New(smcons.Config{Values: []trace.Value{"a", "b", "c"}})
	stats, err = check.ExhaustiveStates(sys, func(s *smcons.System) error {
		winners := 0
		for _, p := range s.Procs {
			if p.SplitterWon() {
				winners++
			}
		}
		if winners > 1 {
			return fmt.Errorf("splitter elected %d winners", winners)
		}
		return nil
	})
	if err != nil {
		log.Fatalf("counterexample: %v", err)
	}
	fmt.Printf("3 clients: %6d distinct states — splitter uniqueness holds everywhere\n",
		stats.States)

	// Random deep schedules for four clients.
	sys = smcons.New(smcons.Config{Values: []trace.Value{"a", "b", "c", "d"}})
	stats, err = check.RandomTraces(sys, 2000, 1, oracle(ctx))
	if err != nil {
		log.Fatalf("counterexample: %v", err)
	}
	fmt.Printf("4 clients: %6d random schedules — all pass\n", stats.Runs)
}
