// replicated: the paper's §6 universal construction in action — a
// linearizable object of an ARBITRARY abstract data type (here a FIFO
// queue and a counter) built on the speculative replicated log. The ADT's
// output function is applied to the log prefix at each operation's slot,
// exactly as §6 prescribes for the universal ADT.
//
//	go run ./examples/replicated
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	speclin "repro"
	"repro/internal/adt"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// --- A replicated FIFO queue shared by three application nodes. ---
	net := speclin.NewNetwork(speclin.NetConfig{Seed: 21, MinDelay: 1, MaxDelay: 3})
	clients := []speclin.ProcID{"n1", "n2", "n3"}
	servers := []speclin.ProcID{"r1", "r2", "r3"}
	q, err := speclin.NewReplicatedObject(net, clients, servers, speclin.QueueADT,
		speclin.SMRConfig{FastPath: true, QuorumTimeout: 10, Retransmit: 6})
	if err != nil {
		log.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(q.InvokeAt("n1", adt.EnqInput("job-A"), 0))
	must(q.InvokeAt("n2", adt.EnqInput("job-B"), 0))
	must(q.InvokeAt("n3", adt.DeqInput(), 5))
	must(q.InvokeAt("n1", adt.DeqInput(), 25))
	must(q.InvokeAt("n2", adt.DeqInput(), 26))
	q.Run(500_000)

	fmt.Println("replicated queue operations:")
	for _, r := range q.Results() {
		fmt.Printf("  %-3s %-12s → %-8s slot %d, %2d delays\n",
			r.Client, adt.Untag(r.Input), r.Output, r.Slot, r.Latency())
	}
	res, err := q.CheckLinearizable(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("queue trace linearizable: %v\n\n", res.OK)

	// --- A replicated counter surviving a replica crash. ---
	net2 := speclin.NewNetwork(speclin.NetConfig{Seed: 4, MinDelay: 1, MaxDelay: 2})
	ctr, err := speclin.NewReplicatedObject(net2,
		[]speclin.ProcID{"a", "b"}, []speclin.ProcID{"r1", "r2", "r3"},
		speclin.CounterADT,
		speclin.SMRConfig{FastPath: true, QuorumTimeout: 10, Retransmit: 6})
	if err != nil {
		log.Fatal(err)
	}
	net2.Crash("r2", 10)
	for j := 0; j < 4; j++ {
		must(ctr.InvokeAt("a", adt.IncInput(), speclin.VTime(j*20)))
	}
	must(ctr.InvokeAt("b", adt.GetInput(), 90))
	ctr.Run(500_000)

	fmt.Println("replicated counter (one replica crashed at t=10):")
	for _, r := range ctr.Results() {
		fmt.Printf("  %-3s %-8s → %-6s %2d delays\n",
			r.Client, adt.Untag(r.Input), r.Output, r.Latency())
	}
	res, err = ctr.CheckLinearizable(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("counter trace linearizable: %v\n", res.OK)
}
