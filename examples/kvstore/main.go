// kvstore: a replicated key-value store on speculative State Machine
// Replication — every log slot is an independent Quorum+Paxos consensus
// instance, so fault-free sequential writes commit in two message delays
// while contended or faulty slots fall back to Paxos per slot.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"sort"

	speclin "repro"
)

func main() {
	net := speclin.NewNetwork(speclin.NetConfig{Seed: 11, MinDelay: 1, MaxDelay: 2})
	clients := []speclin.ProcID{"web1", "web2"}
	servers := []speclin.ProcID{"r1", "r2", "r3"}

	cluster, err := speclin.NewSMR(net, clients, servers, speclin.SMRConfig{
		FastPath:      true,
		QuorumTimeout: 8,
		Retransmit:    4,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Two application servers write interleaved keys; one replica crashes
	// mid-run and the log keeps growing through the backup phase.
	cluster.SubmitAt("web1", speclin.SetCmd("user:1", "ada"), 0)
	cluster.SubmitAt("web2", speclin.SetCmd("user:2", "grace"), 0)
	cluster.SubmitAt("web1", speclin.SetCmd("lang", "go"), 8)
	cluster.SubmitAt("web2", speclin.SetCmd("user:2", "barbara"), 9)
	net.Crash("r1", 12)
	cluster.SubmitAt("web1", speclin.DelCmd("lang"), 20)
	cluster.SubmitAt("web2", speclin.SetCmd("user:3", "katherine"), 22)
	cluster.Run(500_000)

	fmt.Println("landed commands:")
	for _, r := range cluster.Results() {
		fmt.Printf("  slot %d ← %-28q by %-5s in %2d delays (%d attempts, %d switches)\n",
			r.Slot, string(r.Cmd), r.Client, r.Latency(), r.Attempts, r.Switches)
	}

	if err := cluster.CheckConsistency(); err != nil {
		log.Fatalf("CONSISTENCY VIOLATION: %v", err)
	}
	fmt.Println("\nlogs consistent across clients ✓")

	kv := speclin.ApplyKV(cluster.Log("web1"))
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("\nmaterialized store (web1's view):")
	for _, k := range keys {
		fmt.Printf("  %-8s = %s\n", k, kv[k])
	}
}
