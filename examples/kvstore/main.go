// kvstore: a replicated key-value store on speculative State Machine
// Replication — every log slot is an independent Quorum+Paxos consensus
// instance, so fault-free sequential writes commit in two message delays
// while contended or faulty slots fall back to Paxos per slot. Keyed
// commands are hash-partitioned across two independent logs, and every
// per-key history is checked linearizable *while the run executes*: the
// cluster streams each key's operations through an incremental checker
// session (checker API v2) instead of buffering histories for a post-hoc
// pass.
//
//	go run ./examples/kvstore
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	speclin "repro"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	net := speclin.NewNetwork(speclin.NetConfig{Seed: 11, MinDelay: 1, MaxDelay: 2})
	clients := []speclin.ProcID{"web1", "web2"}
	servers := []speclin.ProcID{"r1", "r2", "r3"}

	cluster, err := speclin.NewShardedSMR(net, clients, servers, speclin.ShardedSMRConfig{
		Config: speclin.SMRConfig{
			FastPath:      true,
			QuorumTimeout: 8,
			Retransmit:    4,
		},
		Shards:      2,
		OnlineCheck: true, // stream per-key histories through checker sessions
	})
	if err != nil {
		log.Fatal(err)
	}

	// Two application servers write interleaved keys; one replica crashes
	// mid-run and the logs keep growing through the backup phase.
	cluster.SubmitAt("web1", speclin.SetCmd("user:1", "ada"), 0)
	cluster.SubmitAt("web2", speclin.SetCmd("user:2", "grace"), 0)
	cluster.SubmitAt("web1", speclin.SetCmd("lang", "go"), 8)
	cluster.SubmitAt("web2", speclin.SetCmd("user:2", "barbara"), 9)
	net.Crash("r1", 12)
	cluster.SubmitAt("web1", speclin.GetCmd("user:2", "g1"), 20)
	cluster.SubmitAt("web2", speclin.SetCmd("user:3", "katherine"), 22)
	cluster.Run(500_000)

	if err := cluster.CheckConsistency(); err != nil {
		log.Fatalf("CONSISTENCY VIOLATION: %v", err)
	}
	fmt.Println("logs consistent across clients ✓")

	// The per-key sessions already checked every history during the run;
	// this only collects their verdicts.
	sum, err := cluster.CheckLinearizable(ctx)
	if err != nil {
		log.Fatalf("LINEARIZABILITY VIOLATION: %v", err)
	}
	fmt.Printf("%d per-key histories linearizable (checked online, %d ops, %d search nodes)\n",
		sum.Traces, sum.Ops, sum.Nodes)

	// Materialize each shard's log from web1's view.
	kv := map[string]string{}
	for k := 0; k < cluster.Shards(); k++ {
		for key, v := range speclin.ApplyKV(cluster.Log(k, "web1")) {
			kv[key] = v
		}
	}
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Println("\nmaterialized store (web1's view):")
	for _, k := range keys {
		fmt.Printf("  %-8s = %s\n", k, kv[k])
	}
}
