// Quickstart: compose the paper's two message-passing speculation phases
// — the Quorum fast path and the Paxos backup — into one consensus
// object, run three concurrent clients on the simulated network, and
// check the recorded trace against the linearizability oracle.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	speclin "repro"
)

func main() {
	// A deterministic asynchronous network: seed 7, delays 1–3.
	net := speclin.NewNetwork(speclin.NetConfig{Seed: 7, MinDelay: 1, MaxDelay: 3})

	clients := []speclin.ProcID{"alice", "bob", "carol"}
	servers := []speclin.ProcID{"s1", "s2", "s3"}
	obj, err := speclin.NewQuorumBackupConsensus(net, clients, servers)
	if err != nil {
		log.Fatal(err)
	}

	// Three concurrent proposals — contention may force the fast path to
	// switch to the backup; clients switch independently, no agreement
	// needed (§2.3).
	obj.ProposeAt("alice", "blue", 0)
	obj.ProposeAt("bob", "green", 0)
	obj.ProposeAt("carol", "red", 1)
	obj.Run(100_000)

	fmt.Println("operations:")
	for _, r := range obj.Results() {
		fmt.Printf("  %-6s proposed %-6s decided %-6s in %2d message delays (phase %d, %d switches)\n",
			r.Client, r.Value, r.Decision, r.Latency(), r.Phase, r.Switches)
	}

	// The composed object's interface trace, with switch actions
	// projected away, must be linearizable for the consensus ADT.
	tr := obj.Trace()
	plain := tr.Project(func(a speclin.Action) bool { return !a.IsSwi() })
	res, err := speclin.CheckLinearizable(speclin.ConsensusADT, plain, speclin.LinOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrace actions: %d, linearizable: %v\n", len(tr), res.OK)

	// Each phase's projection satisfies its speculative linearizability
	// property in isolation — the intra-object composition theorem then
	// gives linearizability of the whole (Theorem 3).
	backup := tr.ProjectSig(2, 3)
	sres, err := speclin.CheckSpeculativelyLinearizable(
		speclin.ConsensusADT, speclin.ConsensusRInit, 2, 3, backup, speclin.SLinOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backup phase satisfies SLin(2,3): %v\n", sres.OK)
}
