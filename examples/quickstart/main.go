// Quickstart: compose the paper's two message-passing speculation phases
// — the Quorum fast path and the Paxos backup — into one consensus
// object, run three concurrent clients on the simulated network, and
// check the recorded trace with the unified checker API: one
// context-aware Check call parameterized by a CheckSpec, plus an
// incremental Session fed one action at a time.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	speclin "repro"
)

func main() {
	// Every check in this program shares one deadline (checker API v2:
	// cancellation aborts in-flight searches with verdict Unknown).
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	// A deterministic asynchronous network: seed 7, delays 1–3.
	net := speclin.NewNetwork(speclin.NetConfig{Seed: 7, MinDelay: 1, MaxDelay: 3})

	clients := []speclin.ProcID{"alice", "bob", "carol"}
	servers := []speclin.ProcID{"s1", "s2", "s3"}
	obj, err := speclin.NewQuorumBackupConsensus(net, clients, servers)
	if err != nil {
		log.Fatal(err)
	}

	// Three concurrent proposals — contention may force the fast path to
	// switch to the backup; clients switch independently, no agreement
	// needed (§2.3).
	obj.ProposeAt("alice", "blue", 0)
	obj.ProposeAt("bob", "green", 0)
	obj.ProposeAt("carol", "red", 1)
	obj.Run(100_000)

	fmt.Println("operations:")
	for _, r := range obj.Results() {
		fmt.Printf("  %-6s proposed %-6s decided %-6s in %2d message delays (phase %d, %d switches)\n",
			r.Client, r.Value, r.Decision, r.Latency(), r.Phase, r.Switches)
	}

	// The composed object's interface trace, with switch actions
	// projected away, must be linearizable for the consensus ADT.
	tr := obj.Trace()
	plain := tr.Project(func(a speclin.Action) bool { return !a.IsSwi() })
	rep, err := speclin.Check(ctx, speclin.CheckSpec{Folder: speclin.ConsensusADT}, plain)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrace actions: %d, verdict: %s (%d nodes, %s)\n",
		len(tr), rep.Verdict, rep.Nodes, rep.Wall.Round(time.Microsecond))

	// The same verdict, incrementally: a Session is fed one action at a
	// time and re-checks the growing trace from persistent search state —
	// the shape a monitor embedded in a running system uses.
	sess, err := speclin.NewSession(ctx, speclin.CheckSpec{Folder: speclin.ConsensusADT})
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range plain {
		if err := sess.Feed(a); err != nil {
			log.Fatal(err)
		}
	}
	srep, err := sess.Report()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("incremental session agrees: %v\n", srep.Verdict == rep.Verdict)

	// Each phase's projection satisfies its speculative linearizability
	// property in isolation — the intra-object composition theorem then
	// gives linearizability of the whole (Theorem 3).
	backup := tr.ProjectSig(2, 3)
	brep, err := speclin.Check(ctx, speclin.CheckSpec{
		Folder: speclin.ConsensusADT,
		Mode:   speclin.SLin,
		RInit:  speclin.ConsensusRInit,
		M:      2,
		N:      3,
	}, backup)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("backup phase satisfies SLin(2,3): %v\n", brep.Verdict == speclin.Linearizable)
}
