// Machine-readable perf summary for the partial-order reduction
// (ISSUE 4): the sleep-set reducer over the extension branch sets of the
// lin/slin engines (DESIGN.md, decision 12) versus the unreduced
// searches, on the E13 workload families.
//
// TestWriteBench3JSON regenerates BENCH_3.json on every plain
// `go test .` run. Node counts — not wall time — are the primary metric:
// both engines run the same per-node machinery, so the node-count
// reduction IS the asymptotic win, and wall-clock per family is recorded
// for context. Verdict agreement is asserted per trace; the acceptance
// gate requires ≥2x on an E8-style sweep.
package speclin_test

import (
	"context"
	"encoding/json"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/experiments"
)

type bench3Row struct {
	Name          string  `json:"name"`
	Traces        int     `json:"traces"`
	VerdictsAgree bool    `json:"verdicts_agree"`
	NodesFull     int     `json:"nodes_unreduced"`
	NodesPOR      int     `json:"nodes_reduced"`
	Reduction     float64 `json:"node_count_reduction"`
	PrunedBranch  int     `json:"pruned_branches"`
	FullMs        float64 `json:"unreduced_ms"`
	PORMs         float64 `json:"reduced_ms"`
}

type bench3Summary struct {
	Issue       int         `json:"issue"`
	Description string      `json:"description"`
	GOOS        string      `json:"goos"`
	GOARCH      string      `json:"goarch"`
	GOMAXPROCS  int         `json:"gomaxprocs"`
	Rows        []bench3Row `json:"por_benchmarks"`
}

// TestWriteBench3JSON records the reduction measurement. It runs as a
// regular test so the artifact regenerates under the tier-1 gate; the
// families are sized to finish in a few seconds.
func TestWriteBench3JSON(t *testing.T) {
	if testing.Short() {
		t.Skip("artifact regeneration skipped under -short")
	}
	ctx := context.Background()
	sum := bench3Summary{
		Issue: 4,
		Description: "sleep-set partial-order reduction over the extension branch sets " +
			"(check.WithPOR, default on) vs the unreduced engines on identical traces; " +
			"node counts are exact search-tree sizes, verdicts asserted identical per trace",
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	sawSweepAtBar := false
	for _, fam := range experiments.E13Families() {
		// Two timed passes mirroring E13Measure's engine pair: the
		// measurement itself asserts verdict agreement per trace.
		start := time.Now()
		st, err := experiments.E13Measure(ctx, fam.F, fam.Traces)
		if err != nil {
			t.Fatalf("%s: %v", fam.Name, err)
		}
		wall := time.Since(start)
		// Apportion wall time by node share for the context columns (the
		// pair runs interleaved; exact per-engine timing is what the
		// node counts already capture).
		total := st.NodesFull + st.NodesPOR
		fullMs := float64(wall.Microseconds()) / 1000 * float64(st.NodesFull) / float64(total)
		porMs := float64(wall.Microseconds()) / 1000 * float64(st.NodesPOR) / float64(total)
		row := bench3Row{
			Name:          fam.Name,
			Traces:        st.Traces,
			VerdictsAgree: st.Agree == st.Traces,
			NodesFull:     st.NodesFull,
			NodesPOR:      st.NodesPOR,
			Reduction:     st.Reduction(),
			PrunedBranch:  st.Pruned,
			FullMs:        fullMs,
			PORMs:         porMs,
		}
		sum.Rows = append(sum.Rows, row)
		t.Logf("%s: %d → %d nodes (%.2fx), %d pruned", row.Name, row.NodesFull, row.NodesPOR, row.Reduction, row.PrunedBranch)
		if row.Name == "consensus-e8-sweep-contended" && row.Reduction >= 2 {
			sawSweepAtBar = true
		}
		if !row.VerdictsAgree {
			t.Errorf("%s: verdict disagreement", row.Name)
		}
	}
	if !sawSweepAtBar {
		t.Error("the contended E8-style sweep fell below the 2x node-count reduction acceptance bar")
	}
	out, err := json.MarshalIndent(sum, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_3.json", append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
