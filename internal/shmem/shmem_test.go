package shmem

import (
	"sync"
	"testing"

	"repro/internal/adt"
)

func TestMemReadWriteCAS(t *testing.T) {
	m := NewMem()
	if m.Read("x") != adt.Bottom {
		t.Fatal("unwritten location must read ⊥")
	}
	m.Write("x", "1")
	if m.Read("x") != "1" {
		t.Fatal("write lost")
	}
	after, ok := m.CAS("x", "1", "2")
	if !ok || after != "2" {
		t.Fatalf("CAS success wrong: %q %v", after, ok)
	}
	after, ok = m.CAS("x", "1", "3")
	if ok || after != "2" {
		t.Fatalf("CAS failure wrong: %q %v", after, ok)
	}
	after, ok = m.CAS("y", adt.Bottom, "v")
	if !ok || after != "v" {
		t.Fatalf("CAS from ⊥ wrong: %q %v", after, ok)
	}
}

func TestMemCloneIndependent(t *testing.T) {
	m := NewMem()
	m.Write("x", "1")
	c := m.Clone()
	c.Write("x", "2")
	if m.Read("x") != "1" {
		t.Fatal("clone aliases original")
	}
	if m.Key() == c.Key() {
		t.Fatal("different contents share a key")
	}
	c.Write("x", "1")
	if m.Key() != c.Key() {
		t.Fatal("equal contents have different keys")
	}
}

func TestNativeRegister(t *testing.T) {
	var r Register
	if r.Load() != adt.Bottom {
		t.Fatal("zero register must read ⊥")
	}
	r.Store("v")
	if r.Load() != "v" {
		t.Fatal("store lost")
	}
}

func TestNativeFlag(t *testing.T) {
	var f Flag
	if f.Load() {
		t.Fatal("zero flag must be false")
	}
	f.Store(true)
	if !f.Load() {
		t.Fatal("flag store lost")
	}
}

func TestNativeCASCell(t *testing.T) {
	var c CASCell
	if c.Load() != adt.Bottom {
		t.Fatal("zero cell must read ⊥")
	}
	if got := c.CompareAndSwapFromBottom("a"); got != "a" {
		t.Fatalf("first CAS = %q", got)
	}
	if got := c.CompareAndSwapFromBottom("b"); got != "a" {
		t.Fatalf("second CAS = %q, want incumbent", got)
	}
	if c.Load() != "a" {
		t.Fatal("cell value changed by losing CAS")
	}
}

// Exactly one of N concurrent CASers wins (run with -race).
func TestNativeCASCellConcurrent(t *testing.T) {
	var c CASCell
	const n = 16
	results := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = string(c.CompareAndSwapFromBottom(string(rune('a' + i))))
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("CAS results disagree: %v", results)
		}
	}
}
