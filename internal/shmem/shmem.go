// Package shmem is the shared-memory substrate of the paper's second case
// study (§2.5). It provides two backends (DESIGN.md, substitution 2):
//
//   - a simulated memory of atomic single-word registers with copyable
//     state, used by the model checker to explore instruction-level
//     interleavings of the Figure 2/3 algorithms exhaustively;
//   - thin wrappers over sync/atomic (Register, Flag, CASCell) used by the
//     native implementations to measure real hardware costs of the
//     register path versus the CAS path.
package shmem

import (
	"sort"
	"strings"
	"sync/atomic"

	"repro/internal/adt"
	"repro/internal/trace"
)

// Loc names a simulated shared register.
type Loc string

// Mem is a simulated shared memory. All locations read as ⊥ (adt.Bottom)
// until written. Mem is not safe for concurrent use: the model checker is
// single-threaded and interleaves processes at Step granularity.
type Mem struct {
	regs map[Loc]trace.Value
}

// NewMem returns an empty memory.
func NewMem() *Mem { return &Mem{regs: map[Loc]trace.Value{}} }

// Read returns the current value of l (⊥ if unwritten).
func (m *Mem) Read(l Loc) trace.Value {
	if v, ok := m.regs[l]; ok {
		return v
	}
	return adt.Bottom
}

// Write stores v at l.
func (m *Mem) Write(l Loc, v trace.Value) { m.regs[l] = v }

// CAS atomically replaces the value at l with new if it currently equals
// expect; it returns the value held after the operation and whether the
// swap happened.
func (m *Mem) CAS(l Loc, expect, new trace.Value) (trace.Value, bool) {
	cur := m.Read(l)
	if cur == expect {
		m.regs[l] = new
		return new, true
	}
	return cur, false
}

// Clone returns an independent copy (for state-space branching).
func (m *Mem) Clone() *Mem {
	c := NewMem()
	for l, v := range m.regs {
		c.regs[l] = v
	}
	return c
}

// Key returns a canonical encoding of the memory contents.
func (m *Mem) Key() string {
	locs := make([]string, 0, len(m.regs))
	for l := range m.regs {
		locs = append(locs, string(l))
	}
	sort.Strings(locs)
	var b strings.Builder
	for _, l := range locs {
		b.WriteString(l)
		b.WriteByte('=')
		b.WriteString(m.regs[Loc(l)])
		b.WriteByte('\x00')
	}
	return b.String()
}

// Register is a native atomic register holding a trace.Value; the zero
// value reads as ⊥.
type Register struct {
	p atomic.Pointer[trace.Value]
}

// Load returns the register's value (⊥ if never stored).
func (r *Register) Load() trace.Value {
	if v := r.p.Load(); v != nil {
		return *v
	}
	return adt.Bottom
}

// Store sets the register's value.
func (r *Register) Store(v trace.Value) { r.p.Store(&v) }

// Flag is a native atomic boolean register.
type Flag struct {
	b atomic.Bool
}

// Load returns the flag.
func (f *Flag) Load() bool { return f.b.Load() }

// Store sets the flag.
func (f *Flag) Store(v bool) { f.b.Store(v) }

// CASCell is a native compare-and-swap cell over trace.Value, initially ⊥.
type CASCell struct {
	p atomic.Pointer[trace.Value]
}

// CompareAndSwapFromBottom attempts CAS(cell, ⊥, v) and returns the value
// held after the operation (v on success, the incumbent otherwise) —
// exactly the return convention of Figure 3.
func (c *CASCell) CompareAndSwapFromBottom(v trace.Value) trace.Value {
	if c.p.CompareAndSwap(nil, &v) {
		return v
	}
	return *c.p.Load()
}

// Load returns the cell's value (⊥ if never swapped).
func (c *CASCell) Load() trace.Value {
	if v := c.p.Load(); v != nil {
		return *v
	}
	return adt.Bottom
}
