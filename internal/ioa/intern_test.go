package ioa

import (
	"fmt"
	"testing"
)

// The digest-interned explorations must agree exactly with their retained
// string-keyed references (the model-checker state interning of DESIGN.md
// decision 7 applied to the §7/E7 subset construction): identical state /
// pair counts and identical verdicts mean no digest collision merged two
// distinct encodings on these instances.

func internTestAutomata() (impl, spec *Automaton) {
	// Composed counters sharing tick actions vs a wider spec, the same
	// shapes the inclusion tests use, large enough to exercise nontrivial
	// subset sets.
	a := counter("a", []string{"x", "y", "z"}, true)
	b := counter("b", []string{"x", "w"}, true)
	return Compose(a, b), Compose(counter("a2", []string{"x", "y", "z"}, true), counter("b2", []string{"x", "w"}, true))
}

func TestReachableAgreesWithReference(t *testing.T) {
	impl, _ := internTestAutomata()
	n1, err1 := Reachable(impl, 100000, nil)
	n2, err2 := ReachableReference(impl, 100000, nil)
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v, %v", err1, err2)
	}
	if n1 != n2 {
		t.Fatalf("interned exploration visited %d states, reference %d", n1, n2)
	}
}

func TestExternalTracesAgreesWithReference(t *testing.T) {
	impl, _ := internTestAutomata()
	count1, count2 := 0, 0
	if err := ExternalTraces(impl, 4, 1_000_000, func([]Action) error { count1++; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := ExternalTracesReference(impl, 4, 1_000_000, func([]Action) error { count2++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count1 == 0 || count1 != count2 {
		t.Fatalf("interned enumeration visited %d traces, reference %d", count1, count2)
	}
}

func TestTraceInclusionAgreesWithReference(t *testing.T) {
	for i, tc := range []struct {
		impl, spec *Automaton
	}{
		{counter("i", []string{"x", "y"}, false), counter("s", []string{"x", "y"}, true)},
		{counter("i", []string{"x", "y"}, true), counter("s", []string{"x", "y"}, false)},
	} {
		tc := tc
		t.Run(fmt.Sprintf("case-%d", i), func(t *testing.T) {
			r1, err1 := CheckTraceInclusion(tc.impl, tc.spec, InclusionOptions{})
			r2, err2 := CheckTraceInclusionReference(tc.impl, tc.spec, InclusionOptions{})
			if err1 != nil || err2 != nil {
				t.Fatalf("errors: %v, %v", err1, err2)
			}
			if r1.OK != r2.OK || r1.Pairs != r2.Pairs {
				t.Fatalf("interned (ok=%v pairs=%d) vs reference (ok=%v pairs=%d)",
					r1.OK, r1.Pairs, r2.OK, r2.Pairs)
			}
		})
	}
}
