// Package ioa is a small I/O-automata framework in the style of Lynch &
// Tuttle, mirroring the formal setting of the paper's §6 (which uses the
// Isabelle/HOL IOA theory). It provides automata with input/output/
// internal actions, parallel composition synchronizing on shared actions,
// reachability exploration, and a bounded trace-inclusion check based on
// the subset construction — the executable counterpart of the paper's
// refinement-mapping proof (DESIGN.md, substitution 3).
package ioa

import (
	"errors"
	"fmt"

	"repro/internal/trace"
)

// State is an automaton state; automata provide canonical keys via
// StateKey (states need not be comparable themselves).
type State any

// Action is a transition label. Concrete action types must be comparable
// structs; ActionKey provides the canonical matching key.
type Action any

// Transition is one enabled step.
type Transition struct {
	Action Action
	Next   State
}

// Automaton describes an I/O automaton operationally. Automata are
// struct-of-functions so that specs, environments and compositions share
// one representation.
type Automaton struct {
	// Name identifies the automaton in diagnostics.
	Name string
	// Start returns the initial states (non-empty).
	Start func() []State
	// Steps returns all enabled transitions from a state, including
	// accepting transitions for input actions (I/O automata are input
	// enabled: an input in the alphabet is always acceptable, possibly
	// as a self-loop).
	Steps func(State) []Transition
	// External reports whether an action is externally visible (input or
	// output); internal actions are invisible in traces.
	External func(Action) bool
	// InAlphabet reports whether the action belongs to this automaton's
	// signature (internal actions of OTHER automata must not be in it).
	InAlphabet func(Action) bool
	// StateKey canonically encodes a state.
	StateKey func(State) string
	// ActionKey canonically encodes an action for synchronization and
	// trace matching.
	ActionKey func(Action) string
}

// pairState is the state of a binary composition.
type pairState struct {
	a, b State
}

// Compose returns the parallel composition a ‖ b: shared actions (in both
// alphabets) synchronize, others interleave. Internal actions must be
// private to each component (enforce by tagging them with the component
// name); sharing an "internal" action is a modeling error.
func Compose(a, b *Automaton) *Automaton {
	name := a.Name + "‖" + b.Name
	return &Automaton{
		Name: name,
		Start: func() []State {
			var ss []State
			for _, sa := range a.Start() {
				for _, sb := range b.Start() {
					ss = append(ss, pairState{sa, sb})
				}
			}
			return ss
		},
		Steps: func(s State) []Transition {
			p := s.(pairState)
			var ts []Transition
			bSteps := b.Steps(p.b)
			for _, ta := range a.Steps(p.a) {
				if !b.InAlphabet(ta.Action) {
					ts = append(ts, Transition{ta.Action, pairState{ta.Next, p.b}})
					continue
				}
				// Shared action: both must take it together.
				key := a.ActionKey(ta.Action)
				for _, tb := range bSteps {
					if b.ActionKey(tb.Action) == key {
						ts = append(ts, Transition{ta.Action, pairState{ta.Next, tb.Next}})
					}
				}
			}
			for _, tb := range bSteps {
				if !a.InAlphabet(tb.Action) {
					ts = append(ts, Transition{tb.Action, pairState{p.a, tb.Next}})
				}
			}
			return ts
		},
		External: func(x Action) bool { return a.External(x) || b.External(x) },
		InAlphabet: func(x Action) bool {
			return a.InAlphabet(x) || b.InAlphabet(x)
		},
		StateKey: func(s State) string {
			p := s.(pairState)
			return a.StateKey(p.a) + "⊗" + b.StateKey(p.b)
		},
		ActionKey: func(x Action) string {
			if a.InAlphabet(x) {
				return a.ActionKey(x)
			}
			return b.ActionKey(x)
		},
	}
}

// digestAdmitter returns a fresh admit function deduplicating canonical
// string encodings on 128-bit trace.HashString digests (the model-checker
// state interning of DESIGN.md decision 7): the set retains 16 bytes per
// entry and compares fixed-size values.
func digestAdmitter() func(string) bool {
	seen := map[trace.Digest]bool{}
	return func(k string) bool {
		d := trace.HashString(k)
		if seen[d] {
			return false
		}
		seen[d] = true
		return true
	}
}

// stringAdmitter is digestAdmitter's exact string-keyed counterpart,
// backing the retained Reference explorations.
func stringAdmitter() func(string) bool {
	seen := map[string]bool{}
	return func(k string) bool {
		if seen[k] {
			return false
		}
		seen[k] = true
		return true
	}
}

// ErrBound is returned when exploration exceeds its state bound.
var ErrBound = errors.New("ioa: state bound exceeded")

// ErrStop may be returned by visitors to end exploration early without
// reporting an error.
var ErrStop = errors.New("ioa: stop requested")

// Reachable explores the automaton's reachable states (deduplicated on
// 128-bit trace.HashString digests of the canonical state keys — the
// model-checker state interning of DESIGN.md decision 7; see
// ReachableReference for the retained string-keyed exploration) and calls
// visit for each. maxStates bounds the exploration.
func Reachable(a *Automaton, maxStates int, visit func(State) error) (int, error) {
	return reachable(a, maxStates, visit, digestAdmitter())
}

// ReachableReference is Reachable with the original string-keyed visited
// set, retained as the executable specification of the digest-interned
// exploration.
func ReachableReference(a *Automaton, maxStates int, visit func(State) error) (int, error) {
	return reachable(a, maxStates, visit, stringAdmitter())
}

// reachable is the exploration loop; admit reports whether a canonical
// state key is new (and marks it seen).
func reachable(a *Automaton, maxStates int, visit func(State) error, admit func(string) bool) (int, error) {
	var stack []State
	for _, s := range a.Start() {
		if admit(a.StateKey(s)) {
			stack = append(stack, s)
		}
	}
	count := 0
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		if count > maxStates {
			return count, ErrBound
		}
		if visit != nil {
			if err := visit(s); err != nil {
				if errors.Is(err, ErrStop) {
					return count, nil
				}
				return count, err
			}
		}
		for _, t := range a.Steps(s) {
			if admit(a.StateKey(t.Next)) {
				stack = append(stack, t.Next)
			}
		}
	}
	return count, nil
}

// ExternalTraces enumerates the automaton's external traces up to the
// given external length, calling visit once per distinct trace (traces of
// an automaton are prefix-closed; every prefix is visited). Exploration
// deduplicates (state, trace) pairs and visited traces on 128-bit
// trace.HashString digests of their canonical encodings (the same state
// interning as Reachable/CheckTraceInclusion; ExternalTracesReference
// retains the string-keyed enumeration), so cycles of internal actions
// and input self-loops terminate. maxNodes bounds the explored pairs.
func ExternalTraces(a *Automaton, maxLen int, maxNodes int, visit func([]Action) error) error {
	return externalTraces(a, maxLen, maxNodes, visit, digestAdmitter(), digestAdmitter())
}

// ExternalTracesReference is ExternalTraces with the original
// string-keyed deduplication, retained as the executable specification of
// the digest-interned enumeration.
func ExternalTracesReference(a *Automaton, maxLen int, maxNodes int, visit func([]Action) error) error {
	return externalTraces(a, maxLen, maxNodes, visit, stringAdmitter(), stringAdmitter())
}

// externalTraces is the enumeration loop; admitPair and admitTrace report
// whether a canonical (state, trace) pair respectively trace encoding is
// new (marking it seen).
func externalTraces(a *Automaton, maxLen int, maxNodes int, visit func([]Action) error, admitPair, admitTrace func(string) bool) error {
	type node struct {
		s  State
		tr []Action
	}
	var stack []node
	push := func(n node) {
		if admitPair(a.StateKey(n.s) + "¶" + traceKey(a, n.tr)) {
			stack = append(stack, n)
		}
	}
	for _, s := range a.Start() {
		push(node{s, nil})
	}
	nodes := 0
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodes++
		if nodes > maxNodes {
			return ErrBound
		}
		if admitTrace(traceKey(a, n.tr)) {
			if err := visit(n.tr); err != nil {
				if errors.Is(err, ErrStop) {
					return nil
				}
				return err
			}
		}
		for _, t := range a.Steps(n.s) {
			tr := n.tr
			if a.External(t.Action) {
				if len(n.tr) >= maxLen {
					continue
				}
				tr = append(append([]Action{}, n.tr...), t.Action)
			}
			push(node{t.Next, tr})
		}
	}
	return nil
}

func traceKey(a *Automaton, tr []Action) string {
	k := ""
	for _, x := range tr {
		k += a.ActionKey(x) + "§"
	}
	return k
}

// String renders an action sequence using the automaton's keys.
func TraceString(a *Automaton, tr []Action) string {
	s := "["
	for i, x := range tr {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%v", x)
	}
	return s + "]"
}
