package ioa

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// Toy actions for the tests; comparable structs per the package contract.
type out struct{ V string }
type in struct{ V string }
type tick struct{ Who string }

// counter emits out{...} actions from a fixed script and accepts any in{}
// actions (input-enabled, ignored). Internal tick actions separate steps.
func counter(name string, script []string, withTicks bool) *Automaton {
	type st struct{ i int }
	return &Automaton{
		Name:  name,
		Start: func() []State { return []State{st{0}} },
		Steps: func(s State) []Transition {
			c := s.(st)
			var ts []Transition
			if c.i < len(script) {
				if withTicks {
					ts = append(ts, Transition{tick{name}, c}) // internal self-loop
				}
				ts = append(ts, Transition{out{script[c.i]}, st{c.i + 1}})
			}
			return ts
		},
		External: func(a Action) bool {
			_, isTick := a.(tick)
			return !isTick
		},
		InAlphabet: func(a Action) bool {
			switch x := a.(type) {
			case out, in:
				return true
			case tick:
				return x.Who == name
			}
			return false
		},
		StateKey:  func(s State) string { return fmt.Sprint(s.(st).i) },
		ActionKey: func(a Action) string { return fmt.Sprintf("%#v", a) },
	}
}

func TestReachable(t *testing.T) {
	a := counter("a", []string{"x", "y", "z"}, false)
	n, err := Reachable(a, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("reachable = %d, want 4", n)
	}
	if _, err := Reachable(a, 2, nil); !errors.Is(err, ErrBound) {
		t.Fatalf("bound not enforced: %v", err)
	}
}

func TestExternalTraces(t *testing.T) {
	a := counter("a", []string{"x", "y"}, true)
	var got []string
	err := ExternalTraces(a, 10, 10000, func(tr []Action) error {
		got = append(got, TraceString(a, tr))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Prefix-closed: [], [x], [x y].
	if len(got) != 3 {
		t.Fatalf("traces = %v", got)
	}
}

func TestExternalTracesLengthBound(t *testing.T) {
	a := counter("a", []string{"x", "y", "z"}, false)
	count := 0
	if err := ExternalTraces(a, 1, 10000, func([]Action) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 2 { // [] and [x]
		t.Fatalf("bounded traces = %d", count)
	}
}

// Composition of two producers with disjoint outputs interleaves; shared
// input actions synchronize.
func TestComposeInterleaving(t *testing.T) {
	a := counter("a", []string{"x"}, false)
	b := counter("b", []string{"y"}, false)
	// Disjoint outputs would collide on the shared out{} alphabet; rename
	// b's to inputs from a's perspective... instead verify the shared-
	// alphabet behavior: both have out{} in their alphabets, so actions
	// must synchronize; out{x} of a is not enabled in b (script differs),
	// so the composition deadlocks immediately — 1 reachable state.
	c := Compose(a, b)
	n, err := Reachable(c, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("mismatched shared scripts must block: %d states", n)
	}
	// Equal scripts synchronize fully.
	c2 := Compose(counter("a", []string{"x", "y"}, false), counter("b", []string{"x", "y"}, false))
	n, err = Reachable(c2, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("synchronized composition states = %d, want 3", n)
	}
}

// Internal actions do not synchronize: ticks are tagged per automaton.
func TestComposeInternalPrivacy(t *testing.T) {
	a := counter("a", []string{"x"}, true)
	b := counter("b", []string{"x"}, true)
	c := Compose(a, b)
	// States: (0,0), (1,1) via synchronized out{x}; ticks self-loop.
	n, err := Reachable(c, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("states = %d, want 2", n)
	}
}

func TestTraceInclusionPositive(t *testing.T) {
	impl := counter("impl", []string{"x", "y"}, true)
	spec := counter("spec", []string{"x", "y"}, false)
	r, err := CheckTraceInclusion(impl, spec, InclusionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("inclusion must hold: cex %v", TraceString(impl, r.Counterexample))
	}
}

func TestTraceInclusionNegative(t *testing.T) {
	impl := counter("impl", []string{"x", "z"}, false)
	spec := counter("spec", []string{"x", "y"}, false)
	r, err := CheckTraceInclusion(impl, spec, InclusionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.OK {
		t.Fatal("inclusion must fail")
	}
	cex := TraceString(impl, r.Counterexample)
	if !strings.Contains(cex, "z") {
		t.Fatalf("counterexample should end in z: %s", cex)
	}
}

// Hiding: impl emits an extra action the spec lacks; hiding it restores
// inclusion.
func TestTraceInclusionHiding(t *testing.T) {
	impl := counter("impl", []string{"x", "hidden", "y"}, false)
	spec := counter("spec", []string{"x", "y"}, false)
	r, err := CheckTraceInclusion(impl, spec, InclusionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r.OK {
		t.Fatal("unhidden extra action must break inclusion")
	}
	r, err = CheckTraceInclusion(impl, spec, InclusionOptions{
		Hide: func(a Action) bool {
			o, ok := a.(out)
			return ok && o.V == "hidden"
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("hidden action must restore inclusion: cex %v", r.Counterexample)
	}
}

// Nondeterministic specs: the subset construction must not commit to one
// branch. Spec can do x then (y or z); impl does x then z.
func TestTraceInclusionNondeterministicSpec(t *testing.T) {
	branchSpec := &Automaton{
		Name:  "branch",
		Start: func() []State { return []State{"s0"} },
		Steps: func(s State) []Transition {
			switch s {
			case "s0":
				return []Transition{{out{"x"}, "sy"}, {out{"x"}, "sz"}}
			case "sy":
				return []Transition{{out{"y"}, "end"}}
			case "sz":
				return []Transition{{out{"z"}, "end"}}
			}
			return nil
		},
		External:   func(Action) bool { return true },
		InAlphabet: func(a Action) bool { _, ok := a.(out); return ok },
		StateKey:   func(s State) string { return s.(string) },
		ActionKey:  func(a Action) string { return fmt.Sprintf("%#v", a) },
	}
	impl := counter("impl", []string{"x", "z"}, false)
	r, err := CheckTraceInclusion(impl, branchSpec, InclusionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.OK {
		t.Fatalf("subset construction failed on nondeterministic spec: cex %v", r.Counterexample)
	}
}

func TestTraceInclusionBound(t *testing.T) {
	impl := counter("impl", []string{"x", "y"}, false)
	spec := counter("spec", []string{"x", "y"}, false)
	if _, err := CheckTraceInclusion(impl, spec, InclusionOptions{MaxPairs: 1}); !errors.Is(err, ErrBound) {
		t.Fatalf("bound not enforced: %v", err)
	}
}
