package ioa

import (
	"fmt"
	"sort"
	"strings"
)

// InclusionOptions configures CheckTraceInclusion.
type InclusionOptions struct {
	// MaxPairs bounds the explored (implState, specSet) pairs; 0 means
	// 1_000_000.
	MaxPairs int
	// Hide, when non-nil, marks impl actions to be treated as internal
	// (invisible to the spec). Used to hide the interior switch actions
	// of a composition before comparing against the wider spec (the
	// proj(·, sig(m,o)) of Theorem 3).
	Hide func(Action) bool
	// Class, when non-nil, maps external actions (of both automata) to a
	// matching class; actions match when their classes coincide. ok =
	// false hides the action entirely (subsumes Hide). Used to erase
	// irrelevant action structure — e.g. the phase level of operation
	// actions, on which the SLin predicates never depend.
	Class func(Action) (string, bool)
}

func (o InclusionOptions) maxPairs() int {
	if o.MaxPairs <= 0 {
		return 1_000_000
	}
	return o.MaxPairs
}

// InclusionResult reports a trace-inclusion check.
type InclusionResult struct {
	// OK is true when every external trace of impl (after hiding) is a
	// trace of spec, over the explored bounded space.
	OK bool
	// Counterexample is a shortest-found impl trace not matched by spec.
	Counterexample []Action
	// Pairs is the number of explored (implState, specSet) pairs.
	Pairs int
}

// CheckTraceInclusion decides traces(impl) ⊆ traces(spec) over the
// reachable bounded space by the subset construction: it tracks, for each
// reachable impl state along an external trace, the set of spec states
// reachable over the same trace. The check is exact for finite systems
// (both automata here are finite once the environment bounds operations):
// if a reachable impl external action has no spec counterpart, the trace
// so far plus that action witnesses non-inclusion.
//
// The explored (implState, specSet) pairs are deduplicated on 128-bit
// trace.HashString digests of their canonical encodings instead of the
// encodings themselves (the ROADMAP "model-checker state interning" item,
// finished here; same rationale as check.ExhaustiveStates and the checker
// memo keys of DESIGN.md decision 7): the visited set costs 16 bytes per
// pair and compares fixed-size values. A digest collision (~2⁻¹²⁸ per
// pair) would silently merge two pairs; CheckTraceInclusionReference
// retains the exact string-keyed construction, and the ioa tests assert
// the two explore identical pair counts on the E7-style instances.
func CheckTraceInclusion(impl, spec *Automaton, opts InclusionOptions) (InclusionResult, error) {
	return checkTraceInclusion(impl, spec, opts, digestAdmitter())
}

// CheckTraceInclusionReference is CheckTraceInclusion with the original
// string-keyed visited set, retained as the executable specification of
// the digest-interned construction.
func CheckTraceInclusionReference(impl, spec *Automaton, opts InclusionOptions) (InclusionResult, error) {
	return checkTraceInclusion(impl, spec, opts, stringAdmitter())
}

// checkTraceInclusion is the subset-construction loop; admit reports
// whether a canonical (implState, specSet) encoding is new (marking it
// seen).
func checkTraceInclusion(impl, spec *Automaton, opts InclusionOptions, admit func(string) bool) (InclusionResult, error) {
	type pair struct {
		impl    State
		specSet []State
		trace   []Action
	}

	// class maps an external action to its matching class; ok = false
	// means the action is hidden (treated as internal).
	class := func(a *Automaton, x Action) (string, bool) {
		if opts.Class != nil {
			return opts.Class(x)
		}
		if opts.Hide != nil && opts.Hide(x) {
			return "", false
		}
		return a.ActionKey(x), true
	}

	specClosure := func(set []State) []State { return internalClosure(spec, set, class) }

	// specStep advances every spec state in the set over external action
	// class k and closes under internal/hidden actions.
	specStep := func(set []State, k string) []State {
		var next []State
		for _, s := range set {
			for _, t := range spec.Steps(s) {
				if !spec.External(t.Action) {
					continue
				}
				ck, visible := class(spec, t.Action)
				if visible && ck == k {
					next = append(next, t.Next)
				}
			}
		}
		return specClosure(next)
	}

	setKey := func(set []State) string {
		keys := make([]string, len(set))
		for i, s := range set {
			keys[i] = spec.StateKey(s)
		}
		sort.Strings(keys)
		return strings.Join(keys, "∪")
	}

	visible := func(a Action) (string, bool) {
		if !impl.External(a) {
			return "", false
		}
		return class(impl, a)
	}

	start := specClosure(spec.Start())
	if len(start) == 0 {
		return InclusionResult{}, fmt.Errorf("ioa: spec %s has no start states", spec.Name)
	}

	var queue []pair
	for _, s := range impl.Start() {
		p := pair{impl: s, specSet: start}
		if admit(impl.StateKey(s) + "¦" + setKey(start)) {
			queue = append(queue, p)
		}
	}

	pairs := 0
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		pairs++
		if pairs > opts.maxPairs() {
			return InclusionResult{Pairs: pairs}, ErrBound
		}
		for _, t := range impl.Steps(p.impl) {
			nextSet := p.specSet
			tr := p.trace
			if k, vis := visible(t.Action); vis {
				nextSet = specStep(p.specSet, k)
				tr = append(append([]Action{}, p.trace...), t.Action)
				if len(nextSet) == 0 {
					return InclusionResult{
						OK:             false,
						Counterexample: tr,
						Pairs:          pairs,
					}, nil
				}
			}
			np := pair{impl: t.Next, specSet: nextSet, trace: tr}
			if admit(impl.StateKey(t.Next) + "¦" + setKey(nextSet)) {
				queue = append(queue, np)
			}
		}
	}
	return InclusionResult{OK: true, Pairs: pairs}, nil
}

// internalClosure returns the closure of set under internal (and hidden)
// transitions.
func internalClosure(a *Automaton, set []State, class func(*Automaton, Action) (string, bool)) []State {
	seen := map[string]bool{}
	var out []State
	var stack []State
	for _, s := range set {
		k := a.StateKey(s)
		if !seen[k] {
			seen[k] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, s)
		for _, t := range a.Steps(s) {
			if a.External(t.Action) {
				if _, vis := class(a, t.Action); vis {
					continue
				}
			}
			k := a.StateKey(t.Next)
			if !seen[k] {
				seen[k] = true
				stack = append(stack, t.Next)
			}
		}
	}
	return out
}
