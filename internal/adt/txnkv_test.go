package adt

import (
	"testing"

	"repro/internal/trace"
)

func TestTxnKVSinglesAndState(t *testing.T) {
	kv := TxnKV{}
	if got, _ := kv.Apply(trace.History{TxnReadInput("x")}); got != ReadOutput(Bottom) {
		t.Fatalf("read of empty map = %q", got)
	}
	h := trace.History{TxnWriteInput("x", "1"), TxnWriteInput("y", "2"), TxnReadInput("x")}
	if got, _ := kv.Apply(h); got != ReadOutput("1") {
		t.Fatalf("read after writes = %q", got)
	}
	// State encoding is canonical: write order must not matter.
	a := Fold(kv, trace.History{TxnWriteInput("x", "1"), TxnWriteInput("y", "2")})
	b := Fold(kv, trace.History{TxnWriteInput("y", "2"), TxnWriteInput("x", "1")})
	if a != b {
		t.Fatalf("states differ for permuted writes: %q vs %q", a, b)
	}
}

func TestTxnKVTransactions(t *testing.T) {
	kv := TxnKV{}
	put := TxnInput([]string{TxnOpWrite("x", "1"), TxnOpWrite("y", "2")}, false)
	getBoth := TxnInput([]string{TxnOpRead("x"), TxnOpRead("y")}, false)

	// MultiPut commits with no reads; MultiGet sees both its writes.
	if got, _ := kv.Apply(trace.History{put}); got != TxnCommitOutput(nil) {
		t.Fatalf("multiput output = %q", got)
	}
	if got, _ := kv.Apply(trace.History{put, getBoth}); got != TxnCommitOutput([]trace.Value{"1", "2"}) {
		t.Fatalf("multiget output = %q", got)
	}

	// CAS commits when its condition holds (including expecting ⊥ on an
	// unset key), aborts — applying nothing — when it does not.
	casFresh := TxnInput([]string{TxnOpCAS("z", Bottom, "9"), TxnOpRead("x")}, false)
	if got, _ := kv.Apply(trace.History{put, casFresh}); got != TxnCommitOutput([]trace.Value{"1"}) {
		t.Fatalf("fresh CAS output = %q", got)
	}
	casStale := TxnInput([]string{TxnOpCAS("x", "0", "7")}, false)
	if got, _ := kv.Apply(trace.History{put, casStale}); got != TxnAbortOutput() {
		t.Fatalf("stale CAS output = %q", got)
	}
	if got, _ := kv.Apply(trace.History{put, casStale, TxnReadInput("x")}); got != ReadOutput("1") {
		t.Fatalf("aborted CAS leaked a write: read = %q", got)
	}

	// "n:" no-op transactions always abort and never have an effect.
	noop := TxnInput([]string{TxnOpWrite("x", "666")}, true)
	if got, _ := kv.Apply(trace.History{put, noop}); got != TxnAbortOutput() {
		t.Fatalf("no-op txn output = %q", got)
	}
	if s := Fold(kv, trace.History{put, noop}); s != Fold(kv, trace.History{put}) {
		t.Fatalf("no-op txn changed state: %q", s)
	}

	// Occurrence tags are transparent.
	if got, _ := kv.Apply(trace.History{Tag(put, "t1"), Tag(getBoth, "t2")}); got != TxnCommitOutput([]trace.Value{"1", "2"}) {
		t.Fatalf("tagged txn output = %q", got)
	}
}

func TestTxnKVValidInput(t *testing.T) {
	kv := TxnKV{}
	for _, good := range []trace.Value{
		TxnWriteInput("x", "1"),
		TxnReadInput("x"),
		TxnInput([]string{TxnOpRead("x")}, false),
		TxnInput([]string{TxnOpCAS("x", Bottom, "1"), TxnOpWrite("y", "2")}, true),
		Tag(TxnReadInput("x"), "q"),
	} {
		if !kv.ValidInput(good) {
			t.Errorf("ValidInput(%q) = false", good)
		}
	}
	for _, bad := range []trace.Value{
		"", "r:", "w:x", "t:", "n:", "q:x",
		TxnInput([]string{TxnOpRead("x"), TxnOpWrite("x", "1")}, false), // duplicate key
		TxnInput([]string{"z" + TxnFieldSep + "x"}, false),
	} {
		if kv.ValidInput(bad) {
			t.Errorf("ValidInput(%q) = true", bad)
		}
	}
}
