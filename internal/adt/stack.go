package adt

import (
	"strings"

	"repro/internal/trace"
)

// Stack is a LIFO stack ADT, the second multi-shot container after the
// queue. Inputs are "push:v" and "pop:"; a push outputs "ok:", a pop
// outputs "v:x" for the removed top element or "v:⊥" on empty.
type Stack struct{}

var _ Folder = Stack{}

// PushInput returns the input push(v).
func PushInput(v trace.Value) trace.Value { return "push:" + v }

// PopInput returns the pop input.
func PopInput() trace.Value { return "pop:" }

// Name implements ADT.
func (Stack) Name() string { return "stack" }

// ValidInput implements ADT.
func (Stack) ValidInput(in trace.Value) bool {
	op, arg, has := split2(Untag(in))
	if !has {
		return false
	}
	switch op {
	case "push":
		return arg != "" && arg != string(Bottom) && !strings.ContainsRune(arg, '\x00')
	case "pop":
		return arg == ""
	default:
		return false
	}
}

// The stack state is the elements joined by NUL bytes, top last; the
// empty stack is the empty state (the queue's encoding, read from the
// other end).

// Empty implements Folder.
func (Stack) Empty() State { return "" }

// Step implements Folder.
func (Stack) Step(s State, in trace.Value) State {
	op, arg, _ := split2(Untag(in))
	elems := queueElems(s)
	switch op {
	case "push":
		elems = append(elems, arg)
	case "pop":
		if len(elems) > 0 {
			elems = elems[:len(elems)-1]
		}
	}
	return queueState(elems)
}

// Out implements Folder.
func (Stack) Out(s State, in trace.Value) trace.Value {
	op, _, _ := split2(Untag(in))
	if op == "push" {
		return WriteOutput()
	}
	elems := queueElems(s)
	if len(elems) == 0 {
		return ReadOutput(Bottom)
	}
	return ReadOutput(trace.Value(elems[len(elems)-1]))
}

// Apply implements ADT.
func (s Stack) Apply(h trace.History) (trace.Value, error) {
	return ApplyFolded(s, h)
}
