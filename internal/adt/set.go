package adt

import (
	"sort"
	"strings"

	"repro/internal/trace"
)

// Set is a mathematical-set ADT, the spec behind the capture harness's
// lazy-list set reference structure (the Lazy Set of PAPERS.md, whose
// non-fixed linearization points are exactly what the exact search
// engines handle and the fast paths do not). Inputs are "add:v",
// "rm:v" and "has:v"; outputs are "b:1"/"b:0" — whether the add newly
// inserted, the remove actually removed, or the membership test found
// the element.
type Set struct{}

var _ Folder = Set{}

// AddInput returns the input add(v).
func AddInput(v trace.Value) trace.Value { return "add:" + v }

// RemoveInput returns the input remove(v).
func RemoveInput(v trace.Value) trace.Value { return "rm:" + v }

// HasInput returns the input contains(v).
func HasInput(v trace.Value) trace.Value { return "has:" + v }

// BoolOutput returns the boolean output of a set operation.
func BoolOutput(b bool) trace.Value {
	if b {
		return "b:1"
	}
	return "b:0"
}

// Name implements ADT.
func (Set) Name() string { return "set" }

// ValidInput implements ADT.
func (Set) ValidInput(in trace.Value) bool {
	op, arg, has := split2(Untag(in))
	if !has {
		return false
	}
	switch op {
	case "add", "rm", "has":
		return arg != "" && arg != string(Bottom) && !strings.ContainsRune(arg, '\x00')
	default:
		return false
	}
}

// The set state is the sorted distinct elements joined by NUL bytes; the
// empty set is the empty state.

// Empty implements Folder.
func (Set) Empty() State { return "" }

func setHas(elems []string, arg string) (int, bool) {
	i := sort.SearchStrings(elems, arg)
	return i, i < len(elems) && elems[i] == arg
}

// Step implements Folder.
func (Set) Step(s State, in trace.Value) State {
	op, arg, _ := split2(Untag(in))
	elems := queueElems(s)
	i, ok := setHas(elems, arg)
	switch {
	case op == "add" && !ok:
		elems = append(elems, "")
		copy(elems[i+1:], elems[i:])
		elems[i] = arg
	case op == "rm" && ok:
		elems = append(elems[:i], elems[i+1:]...)
	}
	return queueState(elems)
}

// Out implements Folder.
func (Set) Out(s State, in trace.Value) trace.Value {
	op, arg, _ := split2(Untag(in))
	_, ok := setHas(queueElems(s), arg)
	switch op {
	case "add":
		return BoolOutput(!ok)
	case "rm":
		return BoolOutput(ok)
	default:
		return BoolOutput(ok)
	}
}

// Apply implements ADT.
func (s Set) Apply(h trace.History) (trace.Value, error) {
	return ApplyFolded(s, h)
}
