package adt

import (
	"strconv"

	"repro/internal/trace"
)

// Register is a read/write register ADT. Inputs are "w:v" (write v) and
// "r:" (read); a write outputs "ok:" and a read outputs "v:x" where x is
// the most recently written value, or "v:⊥" if none.
type Register struct{}

var _ Folder = Register{}

// WriteInput returns the input write(v).
func WriteInput(v trace.Value) trace.Value { return "w:" + v }

// ReadInput returns the read input.
func ReadInput() trace.Value { return "r:" }

// ReadOutput returns the output of a read observing v.
func ReadOutput(v trace.Value) trace.Value { return "v:" + v }

// WriteOutput returns the output of a write.
func WriteOutput() trace.Value { return "ok:" }

// Name implements ADT.
func (Register) Name() string { return "register" }

// ValidInput implements ADT.
func (Register) ValidInput(in trace.Value) bool {
	op, arg, has := split2(Untag(in))
	if !has {
		return false
	}
	switch op {
	case "w":
		return arg != "" && arg != string(Bottom)
	case "r":
		return arg == ""
	default:
		return false
	}
}

// Empty implements Folder.
func (Register) Empty() State { return State(Bottom) }

// Step implements Folder: the state is the last written value.
func (Register) Step(s State, in trace.Value) State {
	op, arg, _ := split2(Untag(in))
	if op == "w" {
		return State(arg)
	}
	return s
}

// Out implements Folder.
func (Register) Out(s State, in trace.Value) trace.Value {
	op, _, _ := split2(Untag(in))
	if op == "w" {
		return WriteOutput()
	}
	return ReadOutput(trace.Value(s))
}

// Apply implements ADT.
func (r Register) Apply(h trace.History) (trace.Value, error) {
	return ApplyFolded(r, h)
}

// Counter is a fetch-and-increment counter ADT. The input "inc:" outputs
// "n:k" where k is the number of increments performed so far including this
// one; the input "get:" outputs "n:k" for the current count k.
type Counter struct{}

var _ Folder = Counter{}

// IncInput returns the increment input.
func IncInput() trace.Value { return "inc:" }

// GetInput returns the read-count input.
func GetInput() trace.Value { return "get:" }

// CountOutput returns the output reporting count k.
func CountOutput(k int) trace.Value { return trace.Value("n:" + itoa(k)) }

// Name implements ADT.
func (Counter) Name() string { return "counter" }

// ValidInput implements ADT.
func (Counter) ValidInput(in trace.Value) bool {
	in = Untag(in)
	return in == IncInput() || in == GetInput()
}

// Empty implements Folder.
func (Counter) Empty() State { return "0" }

// Step implements Folder.
func (Counter) Step(s State, in trace.Value) State {
	if Untag(in) == IncInput() {
		return State(itoa(atoi(string(s)) + 1))
	}
	return s
}

// Out implements Folder.
func (Counter) Out(s State, in trace.Value) trace.Value {
	k := atoi(string(s))
	if Untag(in) == IncInput() {
		k++
	}
	return CountOutput(k)
}

// Apply implements ADT.
func (c Counter) Apply(h trace.History) (trace.Value, error) {
	return ApplyFolded(c, h)
}

func itoa(k int) string { return strconv.Itoa(k) }

func atoi(s string) int {
	n, _ := strconv.Atoi(s)
	return n
}
