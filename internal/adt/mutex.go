package adt

import "repro/internal/trace"

// Mutex is a binary lock ADT, the spec behind the capture harness's
// sync.Mutex reference structure (ISSUE 8). Inputs are "lock:" and
// "unlock:"; a legal transition outputs "ok:", an illegal one —
// locking a held lock or unlocking a free one — outputs "err:held" or
// "err:free" and leaves the state unchanged. Well-synchronized lock
// users never observe the error outputs, which is exactly what makes
// them useful to the checker: a captured history whose operations all
// returned "ok:" is linearizable iff some alternation of the lock and
// unlock intervals exists.
type Mutex struct{}

var _ Folder = Mutex{}

// LockInput returns the acquire input.
func LockInput() trace.Value { return "lock:" }

// UnlockInput returns the release input.
func UnlockInput() trace.Value { return "unlock:" }

// ErrOutput returns the output of an illegal mutex transition.
func ErrOutput(why string) trace.Value { return trace.Value("err:" + why) }

// Name implements ADT.
func (Mutex) Name() string { return "mutex" }

// ValidInput implements ADT.
func (Mutex) ValidInput(in trace.Value) bool {
	in = Untag(in)
	return in == LockInput() || in == UnlockInput()
}

// The mutex state is "u" (unlocked) or "l" (locked).

// Empty implements Folder.
func (Mutex) Empty() State { return "u" }

// Step implements Folder: illegal transitions leave the state unchanged.
func (Mutex) Step(s State, in trace.Value) State {
	switch {
	case Untag(in) == LockInput() && s == "u":
		return "l"
	case Untag(in) == UnlockInput() && s == "l":
		return "u"
	}
	return s
}

// Out implements Folder.
func (Mutex) Out(s State, in trace.Value) trace.Value {
	if Untag(in) == LockInput() {
		if s == "u" {
			return WriteOutput()
		}
		return ErrOutput("held")
	}
	if s == "l" {
		return WriteOutput()
	}
	return ErrOutput("free")
}

// Apply implements ADT.
func (m Mutex) Apply(h trace.History) (trace.Value, error) {
	return ApplyFolded(m, h)
}
