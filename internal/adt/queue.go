package adt

import (
	"strings"

	"repro/internal/trace"
)

// Queue is a FIFO queue ADT, included to exercise the framework on a
// multi-shot data type whose state does not collapse to a single value.
// Inputs are "enq:v" and "deq:"; an enqueue outputs "ok:", a dequeue
// outputs "v:x" for the removed front element or "v:⊥" on empty.
type Queue struct{}

var _ Folder = Queue{}

// EnqInput returns the input enqueue(v).
func EnqInput(v trace.Value) trace.Value { return "enq:" + v }

// DeqInput returns the dequeue input.
func DeqInput() trace.Value { return "deq:" }

// Name implements ADT.
func (Queue) Name() string { return "queue" }

// ValidInput implements ADT.
func (Queue) ValidInput(in trace.Value) bool {
	op, arg, has := split2(Untag(in))
	if !has {
		return false
	}
	switch op {
	case "enq":
		return arg != "" && arg != string(Bottom) && !strings.ContainsRune(arg, '\x00')
	case "deq":
		return arg == ""
	default:
		return false
	}
}

// The queue state is the remaining elements joined by NUL bytes; the empty
// queue is the empty state.

// Empty implements Folder.
func (Queue) Empty() State { return "" }

func queueElems(s State) []string {
	if s == "" {
		return nil
	}
	return strings.Split(string(s), "\x00")
}

func queueState(elems []string) State {
	return State(strings.Join(elems, "\x00"))
}

// Step implements Folder.
func (Queue) Step(s State, in trace.Value) State {
	op, arg, _ := split2(Untag(in))
	elems := queueElems(s)
	switch op {
	case "enq":
		elems = append(elems, arg)
	case "deq":
		if len(elems) > 0 {
			elems = elems[1:]
		}
	}
	return queueState(elems)
}

// Out implements Folder.
func (Queue) Out(s State, in trace.Value) trace.Value {
	op, _, _ := split2(Untag(in))
	if op == "enq" {
		return WriteOutput()
	}
	elems := queueElems(s)
	if len(elems) == 0 {
		return ReadOutput(Bottom)
	}
	return ReadOutput(trace.Value(elems[0]))
}

// Apply implements ADT.
func (q Queue) Apply(h trace.History) (trace.Value, error) {
	return ApplyFolded(q, h)
}
