package adt

import (
	"strings"

	"repro/internal/trace"
)

// Universal is the universal ADT of §6: its output function is the
// identity — an operation's output is the full input history so far, as a
// single encoded value. Given a linearizable implementation of Universal,
// applying any other ADT's output function to its responses yields an
// implementation of that ADT, which is why it abstracts generic state
// machine replication protocols.
//
// Inputs are arbitrary non-empty values not containing the 0x1f separator;
// outputs are "h:" followed by the 0x1f-joined history.
type Universal struct{}

var _ Folder = Universal{}

const universalSep = "\x1f"

// Name implements ADT.
func (Universal) Name() string { return "universal" }

// ValidInput implements ADT.
func (Universal) ValidInput(in trace.Value) bool {
	return in != "" && !strings.Contains(in, universalSep) && !strings.HasPrefix(in, "h:")
}

// HistoryOutput encodes history h as a universal-ADT output.
func HistoryOutput(h trace.History) trace.Value {
	return "h:" + strings.Join(h, universalSep)
}

// OutputHistory decodes a universal-ADT output back into a history; ok is
// false for values that are not universal outputs.
func OutputHistory(out trace.Value) (trace.History, bool) {
	rest, found := strings.CutPrefix(out, "h:")
	if !found {
		return nil, false
	}
	if rest == "" {
		return trace.History{}, true
	}
	return trace.History(strings.Split(rest, universalSep)), true
}

// Empty implements Folder: the state is the encoded history itself.
func (Universal) Empty() State { return State(HistoryOutput(nil)) }

// Step implements Folder.
func (Universal) Step(s State, in trace.Value) State {
	h, _ := OutputHistory(trace.Value(s))
	return State(HistoryOutput(h.Append(in)))
}

// Out implements Folder.
func (Universal) Out(s State, in trace.Value) trace.Value {
	h, _ := OutputHistory(trace.Value(s))
	return HistoryOutput(h.Append(in))
}

// Apply implements ADT.
func (u Universal) Apply(h trace.History) (trace.Value, error) {
	return ApplyFolded(u, h)
}
