package adt

import "repro/internal/trace"

// Bottom is the ⊥ placeholder used by register-like ADTs for "no value".
// Proposals and written values must differ from it (the paper assumes
// proposals differ from ⊥).
const Bottom trace.Value = "⊥"

// Consensus is the ADT of Figure 1 and Example 1: inputs are proposals
// p(v), outputs are decisions d(v), and
//
//	f_Cons([p(v1), p(v2), ..., p(vn)]) = d(v1):
//
// in a sequential execution the first proposed value is decided by every
// subsequent operation.
//
// Wire grammar: input "p:v", output "d:v".
type Consensus struct{}

var _ Folder = Consensus{}

// Name implements ADT.
func (Consensus) Name() string { return "consensus" }

// ProposeInput returns the input p(v).
func ProposeInput(v trace.Value) trace.Value { return "p:" + v }

// DecideOutput returns the output d(v).
func DecideOutput(v trace.Value) trace.Value { return "d:" + v }

// ProposalOf extracts v from an input p(v); ok is false for other values.
func ProposalOf(in trace.Value) (trace.Value, bool) {
	op, arg, has := split2(in)
	if !has || op != "p" || arg == string(Bottom) || arg == "" {
		return "", false
	}
	return arg, true
}

// DecisionOf extracts v from an output d(v); ok is false for other values.
func DecisionOf(out trace.Value) (trace.Value, bool) {
	op, arg, has := split2(out)
	if !has || op != "d" {
		return "", false
	}
	return arg, true
}

// ValidInput implements ADT.
func (Consensus) ValidInput(in trace.Value) bool {
	_, ok := ProposalOf(Untag(in))
	return ok
}

// Empty implements Folder: no proposal has been made.
func (Consensus) Empty() State { return State(Bottom) }

// Step implements Folder: the state is the first proposal.
func (Consensus) Step(s State, in trace.Value) State {
	if s != State(Bottom) {
		return s
	}
	v, _ := ProposalOf(Untag(in))
	return State(v)
}

// Out implements Folder: every operation decides the first proposal (which
// is the operation's own proposal when the state is still ⊥).
func (c Consensus) Out(s State, in trace.Value) trace.Value {
	if s == State(Bottom) {
		v, _ := ProposalOf(Untag(in))
		return DecideOutput(v)
	}
	return DecideOutput(trace.Value(s))
}

// Apply implements ADT.
func (c Consensus) Apply(h trace.History) (trace.Value, error) {
	return ApplyFolded(c, h)
}
