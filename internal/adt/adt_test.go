package adt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

// TestFigure1ConsensusSpec checks the Figure 1 specification: in a
// sequential execution the first proposal wins and every later propose
// returns it.
func TestFigure1ConsensusSpec(t *testing.T) {
	c := Consensus{}
	h := trace.History{ProposeInput("a")}
	out, err := c.Apply(h)
	if err != nil {
		t.Fatal(err)
	}
	if out != DecideOutput("a") {
		t.Fatalf("first propose returned %q", out)
	}
	h = append(h, ProposeInput("b"), ProposeInput("c"))
	out, err = c.Apply(h)
	if err != nil {
		t.Fatal(err)
	}
	if out != DecideOutput("a") {
		t.Fatalf("later propose returned %q, want first value", out)
	}
}

func TestConsensusInputParsing(t *testing.T) {
	if v, ok := ProposalOf(ProposeInput("x")); !ok || v != "x" {
		t.Fatalf("ProposalOf round trip failed: %q %v", v, ok)
	}
	for _, bad := range []trace.Value{"d:x", "p:", "p:" + Bottom, "x", ""} {
		if _, ok := ProposalOf(bad); ok {
			t.Errorf("ProposalOf(%q) accepted", bad)
		}
	}
	if v, ok := DecisionOf(DecideOutput("y")); !ok || v != "y" {
		t.Fatalf("DecisionOf round trip failed: %q %v", v, ok)
	}
}

func TestApplyErrors(t *testing.T) {
	c := Consensus{}
	if _, err := c.Apply(nil); err == nil {
		t.Error("empty history must error")
	}
	if _, err := c.Apply(trace.History{"garbage"}); err == nil {
		t.Error("invalid input must error")
	}
	if _, err := c.Apply(trace.History{ProposeInput("a"), "garbage"}); err == nil {
		t.Error("invalid non-final input must error")
	}
}

func TestRegisterSemantics(t *testing.T) {
	r := Register{}
	tests := []struct {
		name string
		h    trace.History
		want trace.Value
	}{
		{"read empty", trace.History{ReadInput()}, ReadOutput(Bottom)},
		{"write", trace.History{WriteInput("a")}, WriteOutput()},
		{"read after write", trace.History{WriteInput("a"), ReadInput()}, ReadOutput("a")},
		{"last write wins", trace.History{WriteInput("a"), WriteInput("b"), ReadInput()}, ReadOutput("b")},
		{"read does not disturb", trace.History{WriteInput("a"), ReadInput(), ReadInput()}, ReadOutput("a")},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := r.Apply(tt.h)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Apply(%v) = %q, want %q", tt.h, got, tt.want)
			}
		})
	}
}

func TestCounterSemantics(t *testing.T) {
	c := Counter{}
	h := trace.History{IncInput(), IncInput(), GetInput()}
	got, err := c.Apply(h)
	if err != nil {
		t.Fatal(err)
	}
	if got != CountOutput(2) {
		t.Fatalf("count = %q", got)
	}
	got, _ = c.Apply(trace.History{IncInput()})
	if got != CountOutput(1) {
		t.Fatalf("first inc = %q", got)
	}
}

func TestQueueSemantics(t *testing.T) {
	q := Queue{}
	tests := []struct {
		name string
		h    trace.History
		want trace.Value
	}{
		{"deq empty", trace.History{DeqInput()}, ReadOutput(Bottom)},
		{"fifo order", trace.History{EnqInput("a"), EnqInput("b"), DeqInput()}, ReadOutput("a")},
		{"second deq", trace.History{EnqInput("a"), EnqInput("b"), DeqInput(), DeqInput()}, ReadOutput("b")},
		{"drain then empty", trace.History{EnqInput("a"), DeqInput(), DeqInput()}, ReadOutput(Bottom)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := q.Apply(tt.h)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Apply(%v) = %q, want %q", tt.h, got, tt.want)
			}
		})
	}
}

func TestUniversalIdentity(t *testing.T) {
	u := Universal{}
	h := trace.History{"a", "b", "c"}
	out, err := u.Apply(h)
	if err != nil {
		t.Fatal(err)
	}
	back, ok := OutputHistory(out)
	if !ok || !back.Equal(h) {
		t.Fatalf("universal output %q decodes to %v", out, back)
	}
	if _, ok := OutputHistory("not-a-history"); ok {
		t.Error("OutputHistory accepted a non-output")
	}
	if (Universal{}).ValidInput("h:a") {
		t.Error("outputs must not be valid inputs (I_T and O_T disjoint)")
	}
}

// folderADTs enumerates every Folder with a generator of random valid
// inputs, for the coherence property below.
var folderADTs = []struct {
	f   Folder
	gen func(r *rand.Rand) trace.Value
}{
	{Consensus{}, func(r *rand.Rand) trace.Value {
		return ProposeInput(trace.Value([]byte{byte('a' + r.Intn(3))}))
	}},
	{Register{}, func(r *rand.Rand) trace.Value {
		if r.Intn(2) == 0 {
			return ReadInput()
		}
		return WriteInput(trace.Value([]byte{byte('a' + r.Intn(3))}))
	}},
	{Counter{}, func(r *rand.Rand) trace.Value {
		if r.Intn(2) == 0 {
			return GetInput()
		}
		return IncInput()
	}},
	{Queue{}, func(r *rand.Rand) trace.Value {
		if r.Intn(2) == 0 {
			return DeqInput()
		}
		return EnqInput(trace.Value([]byte{byte('a' + r.Intn(3))}))
	}},
	{Universal{}, func(r *rand.Rand) trace.Value {
		return trace.Value([]byte{byte('a' + r.Intn(3))})
	}},
	{Mutex{}, func(r *rand.Rand) trace.Value {
		if r.Intn(2) == 0 {
			return LockInput()
		}
		return UnlockInput()
	}},
	{Stack{}, func(r *rand.Rand) trace.Value {
		if r.Intn(2) == 0 {
			return PopInput()
		}
		return PushInput(trace.Value([]byte{byte('a' + r.Intn(3))}))
	}},
	{Set{}, func(r *rand.Rand) trace.Value {
		v := trace.Value([]byte{byte('a' + r.Intn(3))})
		switch r.Intn(3) {
		case 0:
			return AddInput(v)
		case 1:
			return RemoveInput(v)
		default:
			return HasInput(v)
		}
	}},
}

// TestFolderCoherence checks the Folder laws: folding a history and asking
// for the next output agrees with Apply on the extended history, for every
// ADT and random histories. This is the property that lets checkers use
// states instead of histories.
func TestFolderCoherence(t *testing.T) {
	for _, entry := range folderADTs {
		entry := entry
		t.Run(entry.f.Name(), func(t *testing.T) {
			prop := func(seed int64) bool {
				r := rand.New(rand.NewSource(seed))
				h := trace.History{}
				s := entry.f.Empty()
				for i, n := 0, r.Intn(8); i < n; i++ {
					in := entry.gen(r)
					// Out on folded state must equal Apply on history.
					want, err := entry.f.Apply(h.Append(in))
					if err != nil {
						return false
					}
					if got := entry.f.Out(s, in); got != want {
						return false
					}
					h = h.Append(in)
					s = entry.f.Step(s, in)
					if s != Fold(entry.f, h) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestMutexSemantics(t *testing.T) {
	m := Mutex{}
	tests := []struct {
		name string
		h    trace.History
		want trace.Value
	}{
		{"lock free", trace.History{LockInput()}, WriteOutput()},
		{"relock held", trace.History{LockInput(), LockInput()}, ErrOutput("held")},
		{"unlock held", trace.History{LockInput(), UnlockInput()}, WriteOutput()},
		{"unlock free", trace.History{UnlockInput()}, ErrOutput("free")},
		{"illegal op leaves state", trace.History{LockInput(), LockInput(), UnlockInput()}, WriteOutput()},
		{"alternation", trace.History{LockInput(), UnlockInput(), LockInput()}, WriteOutput()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := m.Apply(tt.h)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Apply(%v) = %q, want %q", tt.h, got, tt.want)
			}
		})
	}
	if m.ValidInput("lock:x") {
		t.Error("lock with an argument must be invalid")
	}
	if !m.ValidInput(Tag(UnlockInput(), "7")) {
		t.Error("tagged unlock must stay valid")
	}
}

func TestStackSemantics(t *testing.T) {
	s := Stack{}
	tests := []struct {
		name string
		h    trace.History
		want trace.Value
	}{
		{"pop empty", trace.History{PopInput()}, ReadOutput(Bottom)},
		{"lifo order", trace.History{PushInput("a"), PushInput("b"), PopInput()}, ReadOutput("b")},
		{"second pop", trace.History{PushInput("a"), PushInput("b"), PopInput(), PopInput()}, ReadOutput("a")},
		{"drain then empty", trace.History{PushInput("a"), PopInput(), PopInput()}, ReadOutput(Bottom)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := s.Apply(tt.h)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Apply(%v) = %q, want %q", tt.h, got, tt.want)
			}
		})
	}
	if s.ValidInput(PushInput(Bottom)) || s.ValidInput("pop:x") {
		t.Error("grammar-invalid stack inputs accepted")
	}
}

func TestSetSemantics(t *testing.T) {
	s := Set{}
	tests := []struct {
		name string
		h    trace.History
		want trace.Value
	}{
		{"has empty", trace.History{HasInput("a")}, BoolOutput(false)},
		{"fresh add", trace.History{AddInput("a")}, BoolOutput(true)},
		{"duplicate add", trace.History{AddInput("a"), AddInput("a")}, BoolOutput(false)},
		{"has member", trace.History{AddInput("a"), HasInput("a")}, BoolOutput(true)},
		{"has other", trace.History{AddInput("a"), HasInput("b")}, BoolOutput(false)},
		{"remove member", trace.History{AddInput("a"), RemoveInput("a")}, BoolOutput(true)},
		{"remove absent", trace.History{RemoveInput("a")}, BoolOutput(false)},
		{"re-add after remove", trace.History{AddInput("a"), RemoveInput("a"), AddInput("a")}, BoolOutput(true)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := s.Apply(tt.h)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("Apply(%v) = %q, want %q", tt.h, got, tt.want)
			}
		})
	}
	// State canonicality: insertion order must not matter.
	h1 := trace.History{AddInput("b"), AddInput("a"), AddInput("c")}
	h2 := trace.History{AddInput("c"), AddInput("a"), AddInput("b")}
	if Fold(s, h1) != Fold(s, h2) {
		t.Fatal("set states must be insertion-order canonical")
	}
}

// Histories with the same first proposal are equivalent for consensus
// (§2.3): they fold to the same state.
func TestConsensusEquivalentHistories(t *testing.T) {
	c := Consensus{}
	h1 := trace.History{ProposeInput("v"), ProposeInput("a")}
	h2 := trace.History{ProposeInput("v"), ProposeInput("b"), ProposeInput("c")}
	if Fold(c, h1) != Fold(c, h2) {
		t.Fatal("histories with equal first proposal must fold equal")
	}
	h3 := trace.History{ProposeInput("w")}
	if Fold(c, h1) == Fold(c, h3) {
		t.Fatal("histories with different first proposals must fold differently")
	}
}
