package adt

import (
	"sort"
	"strings"

	"repro/internal/trace"
)

// TxnKV is a multi-key key-value map ADT: the product folder the
// multi-object checker uses for histories whose keys are entangled by
// cross-shard transactions (DESIGN.md, decision 18). Herlihy–Wing
// locality lets per-key register checking cover single-key traffic, but a
// transaction touching keys on several shards makes their merged history
// the unit of correctness — TxnKV is that merged object.
//
// Inputs (occurrence tags attached via Tag are stripped first):
//
//	"w:" k FS v    single-key write            → "ok:"
//	"r:" k         single-key read             → "v:x" (x = value or ⊥)
//	"t:" ops       committed-style transaction → "c:" reads, or "a:"
//	"n:" ops       aborted transaction (no-op) → "a:"
//
// where FS is TxnFieldSep and ops is a TxnOpSep-separated list of
// operations, each "r" FS k (read), "w" FS k FS v (write), or
// "c" FS k FS expect FS v (compare-and-swap: write v if the key's value
// equals expect; expect ⊥ means "unset"). Keys within one transaction
// must be distinct, so reads observe the pre-transaction state.
//
// A "t:" transaction commits exactly when every CAS condition holds on
// the current state: it then applies all its writes atomically and
// outputs "c:" followed by the read values (in operation order, joined
// by FS); otherwise it applies nothing and outputs "a:". An "n:"
// transaction never has an effect and always outputs "a:" — the SMR
// layer records every abort (conflict, failed condition, or recovery
// timeout) as "n:" so the checker verifies aborted transactions left no
// per-key trace without having to predict why the run aborted them
// (abort-on-conflict is scheduling-dependent, and Folder outputs must be
// deterministic).
type TxnKV struct{}

var _ Folder = TxnKV{}

const (
	// TxnOpSep separates the operations of a transaction input.
	TxnOpSep = "\x1e"
	// TxnFieldSep separates the fields of one operation, the fields of a
	// "w:" write input, and the read values of a commit output.
	TxnFieldSep = "\x1f"
)

// TxnWriteInput returns the single-key write input for key k.
func TxnWriteInput(k string, v trace.Value) trace.Value {
	return trace.Value("w:" + k + TxnFieldSep + string(v))
}

// TxnReadInput returns the single-key read input for key k.
func TxnReadInput(k string) trace.Value { return trace.Value("r:" + k) }

// TxnOpRead encodes a transactional read of key k.
func TxnOpRead(k string) string { return "r" + TxnFieldSep + k }

// TxnOpWrite encodes a transactional write of v to key k.
func TxnOpWrite(k string, v trace.Value) string {
	return "w" + TxnFieldSep + k + TxnFieldSep + string(v)
}

// TxnOpCAS encodes a transactional compare-and-swap on key k: write v if
// the key currently holds expect (Bottom for "unset").
func TxnOpCAS(k string, expect, v trace.Value) string {
	return "c" + TxnFieldSep + k + TxnFieldSep + string(expect) + TxnFieldSep + string(v)
}

// TxnInput assembles a transaction input from encoded operations.
// aborted selects the "n:" no-op form.
func TxnInput(ops []string, aborted bool) trace.Value {
	kind := "t:"
	if aborted {
		kind = "n:"
	}
	return trace.Value(kind + strings.Join(ops, TxnOpSep))
}

// TxnCommitOutput returns the output of a committed transaction whose
// reads observed the given values (in operation order).
func TxnCommitOutput(reads []trace.Value) trace.Value {
	out := "c:"
	for i, v := range reads {
		if i > 0 {
			out += TxnFieldSep
		}
		out += string(v)
	}
	return trace.Value(out)
}

// TxnAbortOutput returns the output of an aborted transaction.
func TxnAbortOutput() trace.Value { return "a:" }

// txnOp is one parsed transactional operation.
type txnOp struct {
	kind   byte // 'r', 'w' or 'c'
	key    string
	expect string // CAS only
	val    string // write/CAS only
}

// parseTxnOps parses a TxnOpSep-joined operation list; ok is false on any
// grammar violation (including duplicate keys).
func parseTxnOps(enc string) ([]txnOp, bool) {
	if enc == "" {
		return nil, false
	}
	parts := strings.Split(enc, TxnOpSep)
	ops := make([]txnOp, 0, len(parts))
	seen := make(map[string]bool, len(parts))
	for _, p := range parts {
		fs := strings.Split(p, TxnFieldSep)
		var op txnOp
		switch {
		case len(fs) == 2 && fs[0] == "r":
			op = txnOp{kind: 'r', key: fs[1]}
		case len(fs) == 3 && fs[0] == "w":
			op = txnOp{kind: 'w', key: fs[1], val: fs[2]}
		case len(fs) == 4 && fs[0] == "c":
			op = txnOp{kind: 'c', key: fs[1], expect: fs[2], val: fs[3]}
		default:
			return nil, false
		}
		if op.key == "" || seen[op.key] {
			return nil, false
		}
		seen[op.key] = true
		ops = append(ops, op)
	}
	return ops, true
}

// Name implements ADT.
func (TxnKV) Name() string { return "txnkv" }

// ValidInput implements ADT.
func (TxnKV) ValidInput(in trace.Value) bool {
	op, arg, has := split2(Untag(in))
	if !has {
		return false
	}
	switch op {
	case "w":
		k, v, ok := splitField(arg)
		return ok && k != "" && v != ""
	case "r":
		return arg != "" && !strings.Contains(arg, TxnFieldSep)
	case "t", "n":
		_, ok := parseTxnOps(arg)
		return ok
	default:
		return false
	}
}

// splitField splits "a" FS "b" into its two fields.
func splitField(s string) (a, b string, ok bool) {
	i := strings.Index(s, TxnFieldSep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+1:], true
}

// kvState is the decoded map behind a TxnKV State.
type kvState map[string]string

func decodeKV(s State) kvState {
	m := kvState{}
	if s == "" {
		return m
	}
	for _, pair := range strings.Split(string(s), TxnOpSep) {
		k, v, ok := splitField(pair)
		if ok {
			m[k] = v
		}
	}
	return m
}

func (m kvState) encode() State {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteString(TxnOpSep)
		}
		b.WriteString(k)
		b.WriteString(TxnFieldSep)
		b.WriteString(m[k])
	}
	return State(b.String())
}

// get reads a key, Bottom when unset.
func (m kvState) get(k string) string {
	if v, ok := m[k]; ok {
		return v
	}
	return string(Bottom)
}

// conditionsHold reports whether every CAS condition of ops holds on m.
// Reads observe m directly: keys within one transaction are distinct, so
// pre-state and sequential within-transaction semantics coincide.
func (m kvState) conditionsHold(ops []txnOp) bool {
	for _, op := range ops {
		if op.kind == 'c' && m.get(op.key) != op.expect {
			return false
		}
	}
	return true
}

// Empty implements Folder: the empty map.
func (TxnKV) Empty() State { return "" }

// Step implements Folder.
func (TxnKV) Step(s State, in trace.Value) State {
	op, arg, _ := split2(Untag(in))
	switch op {
	case "w":
		k, v, ok := splitField(arg)
		if !ok {
			return s
		}
		m := decodeKV(s)
		m[k] = v
		return m.encode()
	case "t":
		ops, ok := parseTxnOps(arg)
		if !ok {
			return s
		}
		m := decodeKV(s)
		if !m.conditionsHold(ops) {
			return s
		}
		for _, o := range ops {
			if o.kind == 'w' || o.kind == 'c' {
				m[o.key] = o.val
			}
		}
		return m.encode()
	}
	return s // reads and "n:" no-ops
}

// Out implements Folder.
func (TxnKV) Out(s State, in trace.Value) trace.Value {
	op, arg, _ := split2(Untag(in))
	switch op {
	case "w":
		return WriteOutput()
	case "r":
		return ReadOutput(trace.Value(decodeKV(s).get(arg)))
	case "t":
		ops, ok := parseTxnOps(arg)
		if !ok {
			return TxnAbortOutput()
		}
		m := decodeKV(s)
		if !m.conditionsHold(ops) {
			return TxnAbortOutput()
		}
		var reads []trace.Value
		for _, o := range ops {
			if o.kind == 'r' {
				reads = append(reads, trace.Value(m.get(o.key)))
			}
		}
		return TxnCommitOutput(reads)
	}
	return TxnAbortOutput() // "n:"
}

// Apply implements ADT.
func (t TxnKV) Apply(h trace.History) (trace.Value, error) {
	return ApplyFolded(t, h)
}
