// Package adt implements abstract data types in the style of Definition 4
// of the paper: an ADT is a set of inputs I_T, a disjoint set of outputs
// O_T, and an output function f_T : I_T* → O_T that determines the output
// of the last input of a history. Computing the output function amounts to
// replaying the sequential execution of a state-machine description (§4.1).
//
// Inputs and outputs are trace.Value strings with small prefixed grammars
// per ADT (for example the consensus ADT uses inputs "p:v" and outputs
// "d:v", mirroring the paper's p(v)/d(v) shorthand).
//
// Every ADT in this package also implements Folder, which exposes the
// underlying state machine: Fold collapses a history into a canonical state
// so that checkers can memoize on states instead of histories (DESIGN.md,
// decision 2).
package adt

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// ADT describes an abstract data type by its output function.
type ADT interface {
	// Name identifies the data type ("consensus", "register", ...).
	Name() string
	// ValidInput reports whether in belongs to I_T.
	ValidInput(in trace.Value) bool
	// Apply computes f_T(h): the output of the last input of the
	// non-empty history h. It returns an error if h is empty or contains
	// an input outside I_T.
	Apply(h trace.History) (trace.Value, error)
}

// State is a canonical, comparable encoding of the logical state reached by
// a history. Histories that are equivalent with respect to the data type
// (§2.3) fold to equal states.
type State string

// Folder is an ADT whose histories can be folded into canonical states.
// For every history h and input in:
//
//	Apply(h ++ [in]) == Out(Fold(h), in)   and
//	Fold(h ++ [in])  == Step(Fold(h), in).
//
// Checkers exploit this to memoize search on (state, pending-inputs)
// instead of full histories.
type Folder interface {
	ADT
	// Empty returns the state of the empty history.
	Empty() State
	// Step returns the state after applying input in to state s.
	Step(s State, in trace.Value) State
	// Out returns the output produced by applying input in to state s.
	Out(s State, in trace.Value) trace.Value
}

// Fold folds a whole history using f's state machine.
func Fold(f Folder, h trace.History) State {
	s := f.Empty()
	for _, in := range h {
		s = f.Step(s, in)
	}
	return s
}

// ApplyFolded computes Apply via the state machine; all Folder ADTs in this
// package define Apply in terms of it.
func ApplyFolded(f Folder, h trace.History) (trace.Value, error) {
	if len(h) == 0 {
		return "", fmt.Errorf("adt: %s: output function applied to empty history", f.Name())
	}
	s := f.Empty()
	for _, in := range h[:len(h)-1] {
		if !f.ValidInput(in) {
			return "", fmt.Errorf("adt: %s: invalid input %q", f.Name(), in)
		}
		s = f.Step(s, in)
	}
	last := h[len(h)-1]
	if !f.ValidInput(last) {
		return "", fmt.Errorf("adt: %s: invalid input %q", f.Name(), last)
	}
	return f.Out(s, last), nil
}

// split2 splits "op:arg" into its operation and argument; ok is false when
// no colon is present.
func split2(v trace.Value) (op, arg string, ok bool) {
	i := strings.IndexByte(v, ':')
	if i < 0 {
		return v, "", false
	}
	return v[:i], v[i+1:], true
}

// TagSep separates an input from its occurrence tag. Tags identify
// invocation occurrences — the paper's definitions are sensitive to
// repeated events (identical inputs from different invocations), and its
// case studies implicitly distinguish occurrences by the invoking client.
// A tag never affects ADT semantics: Step, Out and ValidInput strip it.
const TagSep = "⋕"

// Tag attaches an occurrence tag to an input.
func Tag(in trace.Value, tag string) trace.Value { return in + TagSep + tag }

// Untag strips the occurrence tag, if any, returning the semantic input.
func Untag(in trace.Value) trace.Value {
	if i := strings.Index(in, TagSep); i >= 0 {
		return in[:i]
	}
	return in
}
