// Package faults turns declarative fault plans into scheduled events on a
// msgnet.Network. A Plan lists process crashes with optional restarts,
// network partitions with healing times, and per-link fault rules (loss,
// duplication, extra delay); Apply validates the plan and compiles it
// onto the simulator's event queue. Because the compiled events ride the
// same deterministic queue as protocol traffic, one seed plus one plan
// reproduces the exact same schedule every run — and an empty plan
// consumes no randomness, so a plan-free run replays the fault-free
// baseline event for event.
package faults

import (
	"fmt"
	"sort"

	"repro/internal/msgnet"
)

// Crash takes a process down at At. If RestartAt is nonzero the process
// recovers then (see msgnet.Network.Restart for recovery semantics);
// zero means the crash is permanent.
type Crash struct {
	Proc      msgnet.ProcID
	At        msgnet.Time
	RestartAt msgnet.Time
}

// Partition splits the listed processes into connectivity groups during
// [From, Until): messages between processes in different groups are
// dropped, in both directions. Processes not listed keep all their
// links. Until == 0 means the partition never heals.
type Partition struct {
	Groups [][]msgnet.ProcID
	From   msgnet.Time
	Until  msgnet.Time
}

// LinkFault applies Rule to the directed link From→To during
// [Start, Until). Until == 0 means for the rest of the run.
type LinkFault struct {
	From, To msgnet.ProcID
	Rule     msgnet.LinkRule
	Start    msgnet.Time
	Until    msgnet.Time
}

// Plan is a declarative fault schedule for one simulation run.
type Plan struct {
	Crashes    []Crash
	Partitions []Partition
	Links      []LinkFault
}

// Empty reports whether the plan schedules no faults at all.
func (p Plan) Empty() bool {
	return len(p.Crashes) == 0 && len(p.Partitions) == 0 && len(p.Links) == 0
}

// Split builds a two-group partition.
func Split(a, b []msgnet.ProcID, from, until msgnet.Time) Partition {
	return Partition{Groups: [][]msgnet.ProcID{a, b}, From: from, Until: until}
}

// RollingRestart crashes procs one at a time: procs[i] goes down at
// start + i*every and comes back downFor later. With every > downFor at
// most one process is ever down, the classic rolling-upgrade pattern.
func RollingRestart(procs []msgnet.ProcID, start, every, downFor msgnet.Time) []Crash {
	cs := make([]Crash, len(procs))
	for i, p := range procs {
		at := start + msgnet.Time(i)*every
		cs[i] = Crash{Proc: p, At: at, RestartAt: at + downFor}
	}
	return cs
}

// Apply validates the plan against the network's registered processes
// and compiles it onto the event queue. It only schedules events — the
// faults take effect as the simulation runs. Call it any time before (or
// during) Run; events whose time has already passed fire immediately on
// the next step.
func (p Plan) Apply(w *msgnet.Network) error {
	if err := p.validate(w); err != nil {
		return err
	}
	for _, c := range p.Crashes {
		w.Crash(c.Proc, c.At)
		if c.RestartAt > 0 {
			w.Restart(c.Proc, c.RestartAt)
		}
	}
	for _, part := range p.Partitions {
		part := part
		pairs := crossPairs(part.Groups)
		w.At(part.From, func() {
			for _, pr := range pairs {
				w.Block(pr[0], pr[1])
			}
		})
		if part.Until > 0 {
			w.At(part.Until, func() {
				for _, pr := range pairs {
					w.Unblock(pr[0], pr[1])
				}
			})
		}
	}
	for _, lf := range p.Links {
		lf := lf
		w.At(lf.Start, func() { w.SetLinkRule(lf.From, lf.To, lf.Rule) })
		if lf.Until > 0 {
			w.At(lf.Until, func() { w.ClearLinkRule(lf.From, lf.To) })
		}
	}
	return nil
}

// crossPairs enumerates every directed cross-group link, in a
// deterministic order.
func crossPairs(groups [][]msgnet.ProcID) [][2]msgnet.ProcID {
	var pairs [][2]msgnet.ProcID
	for i := 0; i < len(groups); i++ {
		for j := i + 1; j < len(groups); j++ {
			for _, a := range groups[i] {
				for _, b := range groups[j] {
					pairs = append(pairs, [2]msgnet.ProcID{a, b}, [2]msgnet.ProcID{b, a})
				}
			}
		}
	}
	return pairs
}

func (p Plan) validate(w *msgnet.Network) error {
	known := map[msgnet.ProcID]bool{}
	for _, id := range w.NodeIDs() {
		known[id] = true
	}
	for i, c := range p.Crashes {
		if !known[c.Proc] {
			return fmt.Errorf("faults: crash %d: unknown process %q", i, c.Proc)
		}
		if c.At < 0 {
			return fmt.Errorf("faults: crash %d: negative time %d", i, c.At)
		}
		if c.RestartAt != 0 && c.RestartAt <= c.At {
			return fmt.Errorf("faults: crash %d: restart at %d not after crash at %d",
				i, c.RestartAt, c.At)
		}
	}
	for i, part := range p.Partitions {
		if len(part.Groups) < 2 {
			return fmt.Errorf("faults: partition %d: needs at least two groups", i)
		}
		if part.From < 0 {
			return fmt.Errorf("faults: partition %d: negative start %d", i, part.From)
		}
		if part.Until != 0 && part.Until <= part.From {
			return fmt.Errorf("faults: partition %d: heal at %d not after start at %d",
				i, part.Until, part.From)
		}
		seen := map[msgnet.ProcID]bool{}
		for _, g := range part.Groups {
			for _, proc := range g {
				if !known[proc] {
					return fmt.Errorf("faults: partition %d: unknown process %q", i, proc)
				}
				if seen[proc] {
					return fmt.Errorf("faults: partition %d: process %q in two groups", i, proc)
				}
				seen[proc] = true
			}
		}
	}
	// Two rules on the same directed link must not overlap in time:
	// SetLinkRule replaces and ClearLinkRule clears unconditionally, so
	// overlap would silently drop one fault's tail.
	byLink := map[[2]msgnet.ProcID][]LinkFault{}
	for i, lf := range p.Links {
		if !known[lf.From] {
			return fmt.Errorf("faults: link fault %d: unknown process %q", i, lf.From)
		}
		if !known[lf.To] {
			return fmt.Errorf("faults: link fault %d: unknown process %q", i, lf.To)
		}
		if lf.Start < 0 {
			return fmt.Errorf("faults: link fault %d: negative start %d", i, lf.Start)
		}
		if lf.Until != 0 && lf.Until <= lf.Start {
			return fmt.Errorf("faults: link fault %d: end at %d not after start at %d",
				i, lf.Until, lf.Start)
		}
		for _, pr := range []float64{lf.Rule.DropProb, lf.Rule.DupProb} {
			if pr < 0 || pr > 1 {
				return fmt.Errorf("faults: link fault %d: probability %v outside [0,1]", i, pr)
			}
		}
		k := [2]msgnet.ProcID{lf.From, lf.To}
		byLink[k] = append(byLink[k], lf)
	}
	for k, lfs := range byLink {
		sort.Slice(lfs, func(i, j int) bool { return lfs[i].Start < lfs[j].Start })
		for i := 1; i < len(lfs); i++ {
			prev := lfs[i-1]
			if prev.Until == 0 || lfs[i].Start < prev.Until {
				return fmt.Errorf("faults: overlapping link faults on %s→%s", k[0], k[1])
			}
		}
	}
	return nil
}
