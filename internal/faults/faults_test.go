package faults_test

import (
	"strings"
	"testing"

	"repro/internal/faults"
	"repro/internal/msgnet"
)

// echo records delivered payloads.
type echo struct {
	got []string
}

func (e *echo) Init(n *msgnet.Node) {}
func (e *echo) OnMessage(n *msgnet.Node, from msgnet.ProcID, payload any) {
	e.got = append(e.got, payload.(string))
}
func (e *echo) OnTimer(n *msgnet.Node, name string) {}

type harness struct {
	w     *msgnet.Network
	hs    map[msgnet.ProcID]*echo
	nodes map[msgnet.ProcID]*msgnet.Node
}

func build(seed int64, ids ...msgnet.ProcID) *harness {
	h := &harness{
		w:     msgnet.New(msgnet.Config{Seed: seed}),
		hs:    map[msgnet.ProcID]*echo{},
		nodes: map[msgnet.ProcID]*msgnet.Node{},
	}
	for _, id := range ids {
		e := &echo{}
		h.hs[id] = e
		h.nodes[id] = h.w.AddNode(id, e)
	}
	return h
}

func (h *harness) sendAt(t msgnet.Time, from, to msgnet.ProcID, m string) {
	h.w.At(t, func() { h.nodes[from].Send(to, m) })
}

func TestApplyValidation(t *testing.T) {
	cases := []struct {
		name string
		plan faults.Plan
		want string
	}{
		{"unknown crash proc", faults.Plan{Crashes: []faults.Crash{{Proc: "x", At: 1}}}, "unknown process"},
		{"restart before crash", faults.Plan{Crashes: []faults.Crash{{Proc: "a", At: 5, RestartAt: 3}}}, "not after crash"},
		{"one group", faults.Plan{Partitions: []faults.Partition{{Groups: [][]msgnet.ProcID{{"a"}}, From: 1}}}, "two groups"},
		{"proc in two groups", faults.Plan{Partitions: []faults.Partition{
			{Groups: [][]msgnet.ProcID{{"a"}, {"a", "b"}}, From: 1, Until: 2}}}, "in two groups"},
		{"heal before start", faults.Plan{Partitions: []faults.Partition{
			{Groups: [][]msgnet.ProcID{{"a"}, {"b"}}, From: 5, Until: 5}}}, "not after start"},
		{"unknown link proc", faults.Plan{Links: []faults.LinkFault{{From: "a", To: "nope", Start: 0, Until: 5}}}, "unknown process"},
		{"bad probability", faults.Plan{Links: []faults.LinkFault{
			{From: "a", To: "b", Rule: msgnet.LinkRule{DropProb: 1.5}, Start: 0, Until: 5}}}, "outside [0,1]"},
		{"overlapping link faults", faults.Plan{Links: []faults.LinkFault{
			{From: "a", To: "b", Start: 0, Until: 10},
			{From: "a", To: "b", Start: 5, Until: 15}}}, "overlapping"},
		{"open-ended then second", faults.Plan{Links: []faults.LinkFault{
			{From: "a", To: "b", Start: 0},
			{From: "a", To: "b", Start: 50, Until: 60}}}, "overlapping"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := build(1, "a", "b")
			err := tc.plan.Apply(h.w)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Apply() = %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestCrashAndRestartSchedule(t *testing.T) {
	h := build(1, "a", "b")
	plan := faults.Plan{Crashes: []faults.Crash{{Proc: "b", At: 5, RestartAt: 20}}}
	if err := plan.Apply(h.w); err != nil {
		t.Fatal(err)
	}
	h.sendAt(2, "a", "b", "before") // delivered at 3
	h.sendAt(10, "a", "b", "down")  // b crashed
	h.sendAt(25, "a", "b", "after") // delivered post-restart
	h.w.Run(100)
	if got := h.hs["b"].got; len(got) != 2 || got[0] != "before" || got[1] != "after" {
		t.Fatalf("b got %v", got)
	}
}

func TestPartitionBlocksAndHeals(t *testing.T) {
	h := build(1, "a", "b", "c")
	plan := faults.Plan{Partitions: []faults.Partition{
		faults.Split([]msgnet.ProcID{"a"}, []msgnet.ProcID{"b"}, 5, 20),
	}}
	if err := plan.Apply(h.w); err != nil {
		t.Fatal(err)
	}
	h.sendAt(6, "a", "b", "cut-ab")  // dropped
	h.sendAt(6, "b", "a", "cut-ba")  // dropped (both directions)
	h.sendAt(6, "a", "c", "open-ac") // c not listed: unaffected
	h.sendAt(6, "c", "b", "open-cb")
	h.sendAt(25, "a", "b", "healed")
	h.w.Run(100)
	if got := h.hs["b"].got; len(got) != 2 || got[0] != "open-cb" || got[1] != "healed" {
		t.Fatalf("b got %v", got)
	}
	if got := h.hs["a"].got; len(got) != 0 {
		t.Fatalf("a got %v", got)
	}
	if got := h.hs["c"].got; len(got) != 1 || got[0] != "open-ac" {
		t.Fatalf("c got %v", got)
	}
}

func TestLinkFaultWindow(t *testing.T) {
	h := build(1, "a", "b")
	plan := faults.Plan{Links: []faults.LinkFault{
		{From: "a", To: "b", Rule: msgnet.LinkRule{DropProb: 1}, Start: 5, Until: 20},
	}}
	if err := plan.Apply(h.w); err != nil {
		t.Fatal(err)
	}
	h.sendAt(2, "a", "b", "before")
	h.sendAt(10, "a", "b", "during")
	h.sendAt(25, "a", "b", "after")
	h.w.Run(100)
	if got := h.hs["b"].got; len(got) != 2 || got[0] != "before" || got[1] != "after" {
		t.Fatalf("b got %v", got)
	}
}

func TestRollingRestart(t *testing.T) {
	cs := faults.RollingRestart([]msgnet.ProcID{"a", "b", "c"}, 10, 8, 5)
	want := []faults.Crash{
		{Proc: "a", At: 10, RestartAt: 15},
		{Proc: "b", At: 18, RestartAt: 23},
		{Proc: "c", At: 26, RestartAt: 31},
	}
	if len(cs) != len(want) {
		t.Fatalf("got %d crashes", len(cs))
	}
	for i := range cs {
		if cs[i] != want[i] {
			t.Fatalf("crash %d = %+v, want %+v", i, cs[i], want[i])
		}
	}
}

func TestPlanDeterminism(t *testing.T) {
	run := func() uint64 {
		h := build(42, "a", "b", "c")
		plan := faults.Plan{
			Crashes: faults.RollingRestart([]msgnet.ProcID{"b", "c"}, 10, 15, 6),
			Partitions: []faults.Partition{
				faults.Split([]msgnet.ProcID{"a"}, []msgnet.ProcID{"b", "c"}, 40, 55),
			},
			Links: []faults.LinkFault{
				{From: "a", To: "b", Rule: msgnet.LinkRule{DropProb: 0.4, DupProb: 0.3, ExtraMaxDelay: 3}, Start: 0, Until: 70},
			},
		}
		if err := plan.Apply(h.w); err != nil {
			t.Fatal(err)
		}
		for i := msgnet.Time(0); i < 80; i += 2 {
			h.sendAt(i, "a", "b", "m")
			h.sendAt(i, "a", "c", "m")
		}
		h.w.Run(1000)
		return h.w.ScheduleDigest()
	}
	if d0, d1 := run(), run(); d0 != d1 {
		t.Fatalf("same seed+plan diverged: %x vs %x", d0, d1)
	}
}

func TestEmptyPlanPreservesBaselineSchedule(t *testing.T) {
	run := func(apply bool) uint64 {
		h := build(7, "a", "b")
		if apply {
			if err := (faults.Plan{}).Apply(h.w); err != nil {
				t.Fatal(err)
			}
		}
		for i := msgnet.Time(0); i < 30; i++ {
			h.sendAt(i, "a", "b", "m")
		}
		h.w.Run(1000)
		return h.w.ScheduleDigest()
	}
	if d0, d1 := run(false), run(true); d0 != d1 {
		t.Fatalf("empty plan perturbed the schedule: %x vs %x", d0, d1)
	}
}
