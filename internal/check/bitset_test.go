package check

import (
	"math/rand"
	"testing"

	"repro/internal/trace"
)

// TestBitSetOps pins membership, popcount and digest maintenance,
// including growth past the first word and the add/remove strictness
// panics.
func TestBitSetOps(t *testing.T) {
	b := NewBitSet(10)
	if b.Len() != 0 || b.Has(0) || b.Has(9) || b.Has(1000) {
		t.Fatal("fresh set not empty")
	}
	empty := b.Digest()
	for _, i := range []int{0, 9, 63, 64, 200} {
		b.Add(i)
	}
	if b.Len() != 5 {
		t.Fatalf("Len = %d after 5 adds", b.Len())
	}
	for _, i := range []int{0, 9, 63, 64, 200} {
		if !b.Has(i) {
			t.Fatalf("member %d missing", i)
		}
	}
	for _, i := range []int{1, 8, 62, 65, 199, 201} {
		if b.Has(i) {
			t.Fatalf("non-member %d present", i)
		}
	}
	for _, i := range []int{200, 0, 64, 9, 63} {
		b.Remove(i)
	}
	if b.Len() != 0 || b.Digest() != empty {
		t.Fatalf("remove-all did not restore the empty digest: len=%d", b.Len())
	}
	assertPanics(t, "double add", func() { b.Add(3); b.Add(3) })
	assertPanics(t, "absent remove", func() { b.Remove(7) })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", name)
		}
	}()
	fn()
}

// TestBitSetDigestCanonical: the digest is a canonical function of the
// membership set — any add/remove path reaching the same set reaches the
// same digest, and distinct sets seen along a random walk get distinct
// digests (the decision-7 collision assumption at test scale).
func TestBitSetDigestCanonical(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	var b BitSet // zero value grows on demand
	have := map[int]bool{}
	seen := map[trace.Digest]string{}
	enc := func() string {
		s := make([]byte, 300)
		for i := range s {
			s[i] = '0'
		}
		for i, ok := range have {
			if ok {
				s[i] = '1'
			}
		}
		return string(s)
	}
	for step := 0; step < 5000; step++ {
		i := r.Intn(300)
		if have[i] {
			b.Remove(i)
		} else {
			b.Add(i)
		}
		have[i] = !have[i]
		key := enc()
		if prev, dup := seen[b.Digest()]; dup && prev != key {
			t.Fatalf("digest collision between %q and %q", prev, key)
		}
		seen[b.Digest()] = key
	}
	// Replay the final membership in a fresh set in sorted order: same
	// digest (path independence).
	var c BitSet
	for i := 0; i < 300; i++ {
		if have[i] {
			c.Add(i)
		}
	}
	if c.Digest() != b.Digest() || c.Len() != b.Len() {
		t.Fatal("digest depends on the mutation path")
	}
}
