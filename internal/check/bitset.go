package check

import (
	"math/bits"

	"repro/internal/trace"
)

// This file is the shared dense-bitset vocabulary of the checkers
// (DESIGN.md, decision 13). Two former 64-member caps fall to it:
//
//   - the classical checker's placed-operation set was a single uint64,
//     hard-failing past 63 operations (lin.ErrTooManyOps) — BitSet is its
//     uncapped spill representation, with an incrementally-maintained
//     128-bit digest (trace.HashBit) folded into the memo key exactly as
//     the chain/multiset digests of decision 7;
//   - the sleep sets of the partial-order reduction (decision 12) silently
//     never slept symbols ≥ 64 — SleepSet now spills the same word-array
//     representation, so high symbols prune too.
//
// Both keep their single-word fast paths: BitSet callers with ≤ 63
// members can (and the classical engine does) stay on a raw uint64 word,
// and a SleepSet with no high symbols never allocates.

// bitsPerWord is the word granularity of the spill representations.
const bitsPerWord = 64

// BitSet is a mutable word-array bitset over dense indices with an
// incrementally-maintained popcount and 128-bit digest: Add/Remove cost
// O(1) and the digest (a lane-wise sum of trace.HashBit components,
// invertible like every decision-7 digest) re-keys the set for memo maps
// without re-serialization. The zero value is an empty set that grows on
// first Add; NewBitSet pre-sizes the words.
type BitSet struct {
	words []uint64
	n     int
	dig   trace.Digest
}

// NewBitSet returns an empty set pre-sized for members 0..n-1.
func NewBitSet(n int) BitSet {
	return BitSet{words: make([]uint64, (n+bitsPerWord-1)/bitsPerWord)}
}

// Has reports whether i is a member.
func (b *BitSet) Has(i int) bool {
	w := i / bitsPerWord
	return w < len(b.words) && b.words[w]&(1<<(uint(i)%bitsPerWord)) != 0
}

// Add inserts i. Inserting a present member panics: the search engines
// toggle membership in matched add/remove pairs, so a double insert is a
// bookkeeping bug (mirroring SymMultiset's negative-count panic).
func (b *BitSet) Add(i int) {
	w, m := i/bitsPerWord, uint64(1)<<(uint(i)%bitsPerWord)
	for w >= len(b.words) {
		b.words = append(b.words, 0)
	}
	if b.words[w]&m != 0 {
		panic("check: BitSet.Add of a present member")
	}
	b.words[w] |= m
	b.n++
	b.dig = b.dig.Add(trace.HashBit(i))
}

// Remove deletes i, panicking if absent (see Add).
func (b *BitSet) Remove(i int) {
	w, m := i/bitsPerWord, uint64(1)<<(uint(i)%bitsPerWord)
	if w >= len(b.words) || b.words[w]&m == 0 {
		panic("check: BitSet.Remove of an absent member")
	}
	b.words[w] &^= m
	b.n--
	b.dig = b.dig.Sub(trace.HashBit(i))
}

// Len returns the number of members (the maintained popcount).
func (b *BitSet) Len() int { return b.n }

// Digest returns the canonical 128-bit digest of the membership set.
func (b *BitSet) Digest() trace.Digest { return b.dig }

// SleepSet is a sleep set over interned symbols. Symbols 0..63 live in an
// inline word — the overwhelmingly common case (symbol spaces of single
// traces are small), costing no allocation and copying by value exactly
// like the former uint64 representation. Symbols ≥ 64 spill to a
// copy-on-write word array, so high symbols sleep too (the former
// representation silently never slept them; ROADMAP decision-12
// follow-on). The zero value is the empty sleep set.
//
// Value semantics: Add returns a new set and never mutates shared spill
// words, so sibling branches of a search may hold diverging sets cheaply.
type SleepSet struct {
	lo uint64
	// hi holds symbols ≥ 64: hi[w] bit b is symbol 64 + 64*w + b. The
	// slice is immutable once attached to a set (copy-on-write in Add).
	hi []uint64
}

// Empty reports whether no symbol is asleep.
func (s SleepSet) Empty() bool { return s.lo == 0 && len(s.hi) == 0 }

// Has reports whether sym is asleep.
func (s SleepSet) Has(sym trace.Sym) bool {
	if sym < bitsPerWord {
		return s.lo&(1<<sym) != 0
	}
	w := int(sym-bitsPerWord) / bitsPerWord
	return w < len(s.hi) && s.hi[w]&(1<<(uint(sym-bitsPerWord)%bitsPerWord)) != 0
}

// Add returns the set with sym asleep. High symbols copy the spill words
// (sets are shared across sibling branches); the common ≤63 case stays
// allocation-free.
func (s SleepSet) Add(sym trace.Sym) SleepSet {
	if sym < bitsPerWord {
		s.lo |= 1 << sym
		return s
	}
	w, m := int(sym-bitsPerWord)/bitsPerWord, uint64(1)<<(uint(sym-bitsPerWord)%bitsPerWord)
	n := len(s.hi)
	if w >= n {
		n = w + 1
	}
	hi := make([]uint64, n)
	copy(hi, s.hi)
	hi[w] |= m
	s.hi = hi
	return s
}

// Intersect returns the set of symbols asleep in both s and o. The
// frontier engines use it when two expansion paths reach the same
// configuration digest while carrying different sleep sets (DESIGN.md,
// decision 17): only a symbol slept on every path into the merged node
// may stay asleep — the union would prune orders that some path still
// owes — so intersection is the sound merge.
func (s SleepSet) Intersect(o SleepSet) SleepSet {
	out := SleepSet{lo: s.lo & o.lo}
	n := len(s.hi)
	if len(o.hi) < n {
		n = len(o.hi)
	}
	// Trim trailing zero words so equal sets stay canonically equal.
	for n > 0 && s.hi[n-1]&o.hi[n-1] == 0 {
		n--
	}
	if n > 0 {
		hi := make([]uint64, n)
		for w := range hi {
			hi[w] = s.hi[w] & o.hi[w]
		}
		out.hi = hi
	}
	return out
}

// forEach calls fn with every sleeping symbol in increasing order.
func (s SleepSet) forEach(fn func(trace.Sym)) {
	for rest := s.lo; rest != 0; rest &= rest - 1 {
		fn(trace.Sym(bits.TrailingZeros64(rest)))
	}
	for w, word := range s.hi {
		for rest := word; rest != 0; rest &= rest - 1 {
			fn(trace.Sym(bitsPerWord + w*bitsPerWord + bits.TrailingZeros64(rest)))
		}
	}
}
