package check

import (
	"errors"
	"fmt"
	"strconv"
	"testing"

	"repro/internal/trace"
)

// toy is a system of n processes that each perform k no-op steps,
// emitting one action per step. Schedules = multinomial(n*k; k,...,k).
type toy struct {
	n, k  int
	steps []int
	tr    trace.Trace
}

func newToy(n, k int) *toy { return &toy{n: n, k: k, steps: make([]int, n)} }

func (s *toy) Enabled() []int {
	var e []int
	for i, done := range s.steps {
		if done < s.k {
			e = append(e, i)
		}
	}
	return e
}

func (s *toy) Step(i int) {
	s.steps[i]++
	s.tr = append(s.tr, trace.Invoke(trace.ClientID(rune('a'+i)), 1, trace.Value(strconv.Itoa(s.steps[i]))))
}

func (s *toy) Clone() *toy {
	c := &toy{n: s.n, k: s.k, steps: append([]int{}, s.steps...), tr: s.tr.Clone()}
	return c
}

func (s *toy) Trace() trace.Trace { return s.tr }

func (s *toy) Key() string { return fmt.Sprint(s.steps) }

func TestExhaustiveTracesCountsSchedules(t *testing.T) {
	// 2 procs × 2 steps: C(4,2) = 6 interleavings.
	st, err := ExhaustiveTraces(newToy(2, 2), func(*toy) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 6 {
		t.Fatalf("runs = %d, want 6", st.Runs)
	}
	// 3 procs × 1 step: 3! = 6.
	st, _ = ExhaustiveTraces(newToy(3, 1), func(*toy) error { return nil })
	if st.Runs != 6 {
		t.Fatalf("runs = %d, want 6", st.Runs)
	}
	// 2 procs × 3 steps: C(6,3) = 20.
	st, _ = ExhaustiveTraces(newToy(2, 3), func(*toy) error { return nil })
	if st.Runs != 20 {
		t.Fatalf("runs = %d, want 20", st.Runs)
	}
}

func TestExhaustiveTracesDistinctTraces(t *testing.T) {
	seen := map[string]bool{}
	_, err := ExhaustiveTraces(newToy(2, 2), func(s *toy) error {
		k := s.Trace().String()
		if seen[k] {
			return fmt.Errorf("duplicate complete trace %s", k)
		}
		seen[k] = true
		if len(s.Trace()) != 4 {
			return fmt.Errorf("incomplete trace %s", k)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExhaustiveTracesStops(t *testing.T) {
	count := 0
	st, err := ExhaustiveTraces(newToy(2, 2), func(*toy) error {
		count++
		if count == 3 {
			return ErrStop
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 3 {
		t.Fatalf("stopped at %d runs", st.Runs)
	}
}

func TestExhaustiveTracesPropagatesErrors(t *testing.T) {
	boom := errors.New("boom")
	_, err := ExhaustiveTraces(newToy(2, 1), func(*toy) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestExhaustiveStatesDedup(t *testing.T) {
	// States of the 2×2 toy: step vectors {0,1,2}² = 9 states.
	st, err := ExhaustiveStates(newToy(2, 2), func(*toy) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.States != 9 {
		t.Fatalf("states = %d, want 9", st.States)
	}
}

// The digest-interned exploration visits exactly the states the
// string-keyed reference visits, in the same order.
func TestExhaustiveStatesMatchesReference(t *testing.T) {
	for _, shape := range []struct{ n, k int }{{2, 2}, {3, 2}, {2, 4}, {4, 1}} {
		var interned, reference []string
		sti, err := ExhaustiveStates(newToy(shape.n, shape.k), func(s *toy) error {
			interned = append(interned, s.Key())
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		str, err := ExhaustiveStatesReference(newToy(shape.n, shape.k), func(s *toy) error {
			reference = append(reference, s.Key())
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if sti != str {
			t.Fatalf("%d×%d: stats diverged: %+v vs %+v", shape.n, shape.k, sti, str)
		}
		if len(interned) != len(reference) {
			t.Fatalf("%d×%d: visited %d vs %d states", shape.n, shape.k, len(interned), len(reference))
		}
		for i := range interned {
			if interned[i] != reference[i] {
				t.Fatalf("%d×%d: visit %d diverged: %q vs %q", shape.n, shape.k, i, interned[i], reference[i])
			}
		}
	}
}

func TestRandomTracesCompleteRuns(t *testing.T) {
	st, err := RandomTraces(newToy(3, 2), 25, 7, func(s *toy) error {
		if len(s.Trace()) != 6 {
			return fmt.Errorf("incomplete random run")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Runs != 25 {
		t.Fatalf("runs = %d", st.Runs)
	}
}

func TestRandomTracesDeterministicSeed(t *testing.T) {
	collect := func() []string {
		var ts []string
		_, _ = RandomTraces(newToy(2, 3), 10, 99, func(s *toy) error {
			ts = append(ts, s.Trace().String())
			return nil
		})
		return ts
	}
	a, b := collect(), collect()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different schedules")
		}
	}
}
