package check

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count option: n when positive, otherwise
// GOMAXPROCS (the batch checkers' default of one worker per core).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Parallel applies fn to every item on a pool of workers and returns the
// results in item order. Items are independent; they are handed out by an
// atomic cursor, so the pool load-balances uneven item costs. The first
// error stops the pool (in-flight items finish; remaining items are not
// started) and is returned alongside the partial results — result slots
// whose items never ran hold the zero value.
//
// It is the worker-pool path shared by the batch checkers (lin.CheckAll,
// slin.CheckAll), the E8 equivalence sweeps and cmd/slin-check, which
// shard independent traces across GOMAXPROCS cores.
func Parallel[T, R any](items []T, workers int, fn func(i int, item T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	if len(items) == 0 {
		return out, nil
	}
	workers = Workers(workers)
	if workers > len(items) {
		workers = len(items)
	}
	if workers == 1 {
		for i, it := range items {
			r, err := fn(i, it)
			if err != nil {
				return out, err
			}
			out[i] = r
		}
		return out, nil
	}
	var (
		cursor atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		first  error
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(items) || failed.Load() {
					return
				}
				r, err := fn(i, items[i])
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	return out, first
}
