package check

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a batch worker-count option: n when positive,
// otherwise GOMAXPROCS. Zero therefore means "one worker per core" for
// the batch checkers; note that single-trace checks interpret a zero or
// one Workers setting as the sequential engine instead (Settings.Workers
// documents the two readings).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Parallel applies fn to every item on a pool of workers and returns the
// results in item order. Items are independent; they are handed out by an
// atomic cursor, so the pool load-balances uneven item costs. The first
// error — or a cancellation of ctx — stops the pool: in-flight items
// finish, remaining items are never started, and the error (respectively
// ctx.Err()) is returned alongside the partial results. Result slots
// whose items never ran hold the zero value.
//
// It is the worker-pool path shared by the batch checkers (lin.CheckAll,
// slin.CheckAll), the breadth engines' frontier expansion, the E8
// equivalence sweeps and cmd/slin-check.
func Parallel[T, R any](ctx context.Context, items []T, workers int, fn func(i int, item T) (R, error)) ([]R, error) {
	if ctx == nil {
		ctx = context.Background() // nil tolerated like every other v2 entry point
	}
	out := make([]R, len(items))
	if len(items) == 0 {
		return out, ctx.Err()
	}
	workers = Workers(workers)
	if workers > len(items) {
		workers = len(items)
	}
	if workers == 1 {
		for i, it := range items {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			r, err := fn(i, it)
			if err != nil {
				return out, err
			}
			out[i] = r
		}
		return out, nil
	}
	var (
		cursor atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		first  error
		wg     sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= len(items) || failed.Load() || ctx.Err() != nil {
					return
				}
				r, err := fn(i, items[i])
				if err != nil {
					failed.Store(true)
					mu.Lock()
					if first == nil {
						first = err
					}
					mu.Unlock()
					return
				}
				out[i] = r
			}
		}()
	}
	wg.Wait()
	if first == nil {
		first = ctx.Err()
	}
	return out, first
}

// shardedSetStripes is the stripe count of ShardedSet: enough to keep
// contention negligible at realistic worker counts, small enough that an
// empty set stays cheap.
const shardedSetStripes = 64

// ShardedSet is a striped-lock concurrent set used as the shared memo /
// deduplication table of the parallel breadth engines: frontier-expansion
// workers claim successor digests with TryInsert so every distinct
// configuration is materialized exactly once across workers.
type ShardedSet[K comparable] struct {
	hash   func(K) uint64
	shards [shardedSetStripes]struct {
		mu sync.Mutex
		m  map[K]struct{}
	}
	size atomic.Int64
}

// NewShardedSet returns an empty set distributing keys by hash.
func NewShardedSet[K comparable](hash func(K) uint64) *ShardedSet[K] {
	s := &ShardedSet[K]{hash: hash}
	for i := range s.shards {
		s.shards[i].m = make(map[K]struct{})
	}
	return s
}

// TryInsert inserts k and reports whether it was absent (i.e. whether the
// caller won the claim).
func (s *ShardedSet[K]) TryInsert(k K) bool {
	sh := &s.shards[s.hash(k)%shardedSetStripes]
	sh.mu.Lock()
	_, dup := sh.m[k]
	if !dup {
		sh.m[k] = struct{}{}
	}
	sh.mu.Unlock()
	if !dup {
		s.size.Add(1)
	}
	return !dup
}

// Len returns the number of keys inserted so far.
func (s *ShardedSet[K]) Len() int { return int(s.size.Load()) }
