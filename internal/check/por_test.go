package check

import (
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/trace"
)

// TestSleepSetOps pins the bitset semantics, including the ≥64-symbol
// spill representation (decision 13: high symbols sleep too; the former
// uint64 representation silently never slept them).
func TestSleepSetOps(t *testing.T) {
	var s SleepSet
	if !s.Empty() || s.Has(0) || s.Has(63) || s.Has(64) || s.Has(1000) {
		t.Fatal("zero value must be the empty set")
	}
	s = s.Add(0).Add(5).Add(63).Add(64).Add(200)
	for _, sym := range []trace.Sym{0, 5, 63, 64, 200} {
		if !s.Has(sym) {
			t.Fatalf("symbol %d not asleep after Add", sym)
		}
	}
	for _, sym := range []trace.Sym{1, 62, 65, 199, 201, 1 << 20} {
		if s.Has(sym) {
			t.Fatalf("unrelated symbol %d asleep", sym)
		}
	}
	if s.Empty() {
		t.Fatal("populated set reports Empty")
	}
	// Value semantics survive the spill: adding a high symbol to a copy
	// must not leak into the original (copy-on-write words).
	base := s
	grown := base.Add(300)
	if base.Has(300) {
		t.Fatal("Add mutated a shared spill word")
	}
	if !grown.Has(300) || !grown.Has(200) || !grown.Has(5) {
		t.Fatal("grown copy lost members")
	}
	// forEach enumerates exactly the members, in increasing order.
	var got []trace.Sym
	grown.forEach(func(sym trace.Sym) { got = append(got, sym) })
	want := []trace.Sym{0, 5, 63, 64, 200, 300}
	if len(got) != len(want) {
		t.Fatalf("forEach visited %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("forEach visited %v, want %v", got, want)
		}
	}
}

// TestFilterIndependentMatchesIndependent is the anti-divergence pin:
// FilterIndependent inlines Independent with branch-constant folder
// calls hoisted, and this property test asserts the two stay the same
// relation — for every sleeping symbol s,
// FilterIndependent(...).Has(s) == Independent(f, st, value(s), in) —
// across random states and inputs of the four ADTs.
//
// The offset variant pads the interner with dummy symbols first, placing
// every real input in the ≥64 spill range, so the property also pins the
// decision-13 spill path.
func TestFilterIndependentMatchesIndependent(t *testing.T) {
	cases := []struct {
		f      adt.Folder
		inputs []trace.Value
	}{
		{adt.Consensus{}, []trace.Value{adt.ProposeInput("a"), adt.ProposeInput("b"), adt.ProposeInput("c")}},
		{adt.Register{}, []trace.Value{adt.WriteInput("x"), adt.WriteInput("y"), adt.ReadInput()}},
		{adt.Counter{}, []trace.Value{adt.IncInput(), adt.GetInput()}},
		{adt.Queue{}, []trace.Value{adt.EnqInput("x"), adt.EnqInput("y"), adt.DeqInput()}},
	}
	r := rand.New(rand.NewSource(64))
	for _, offset := range []int{0, 70} {
		for _, tc := range cases {
			in := trace.NewInterner()
			for pad := 0; pad < offset; pad++ {
				in.Sym(adt.Tag(tc.inputs[0], "pad"+string(rune('A'+pad))))
			}
			lowSyms := in.Len()
			for _, v := range tc.inputs {
				in.Sym(v)
			}
			for iter := 0; iter < 200; iter++ {
				// A random reachable state: fold a short random history.
				st := tc.f.Empty()
				for k, n := 0, r.Intn(4); k < n; k++ {
					st = tc.f.Step(st, tc.inputs[r.Intn(len(tc.inputs))])
				}
				branch := tc.inputs[r.Intn(len(tc.inputs))]
				var sleep SleepSet
				for sym := trace.Sym(lowSyms); int(sym) < in.Len(); sym++ {
					if r.Intn(2) == 0 && in.Value(sym) != branch {
						sleep = sleep.Add(sym)
					}
				}
				stIn, outIn := tc.f.Step(st, branch), tc.f.Out(st, branch)
				got := sleep.FilterIndependent(tc.f, in, st, branch, stIn, outIn)
				for sym := trace.Sym(lowSyms); int(sym) < in.Len(); sym++ {
					want := sleep.Has(sym) && Independent(tc.f, st, in.Value(sym), branch)
					if got.Has(sym) != want {
						t.Fatalf("%s (offset %d): FilterIndependent diverges from Independent at state %q, sleep %q vs branch %q: got %v want %v",
							tc.f.Name(), offset, st, in.Value(sym), branch, got.Has(sym), want)
					}
				}
			}
		}
	}
}

// TestIndependentSpotChecks pins the relation on known pairs: commuting
// (reads, post-decision proposals) and conflicting (writes, increments,
// pre-decision proposals).
func TestIndependentSpotChecks(t *testing.T) {
	reg, cons, ctr := adt.Register{}, adt.Consensus{}, adt.Counter{}
	if !Independent(reg, reg.Empty(), adt.ReadInput(), adt.Tag(adt.ReadInput(), "2")) {
		t.Fatal("two reads must commute")
	}
	if Independent(reg, reg.Empty(), adt.WriteInput("x"), adt.WriteInput("y")) {
		t.Fatal("writes of different values must conflict")
	}
	if Independent(reg, reg.Empty(), adt.WriteInput("x"), adt.ReadInput()) {
		t.Fatal("a write and a read of ⊥ must conflict")
	}
	if Independent(cons, cons.Empty(), adt.ProposeInput("a"), adt.ProposeInput("b")) {
		t.Fatal("proposals at the undecided state must conflict")
	}
	decided := cons.Step(cons.Empty(), adt.ProposeInput("a"))
	if !Independent(cons, decided, adt.ProposeInput("b"), adt.ProposeInput("c")) {
		t.Fatal("proposals after a decision must commute")
	}
	if Independent(ctr, ctr.Empty(), adt.IncInput(), adt.Tag(adt.IncInput(), "2")) {
		t.Fatal("two fetch-and-increments must conflict (outputs order-sensitive)")
	}
}
