package check

import (
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/trace"
)

// TestSleepSetOps pins the bitset semantics, including the ≥64-symbol
// overflow rule (never sleeps — loses pruning, not soundness).
func TestSleepSetOps(t *testing.T) {
	var s SleepSet
	if s.Has(0) || s.Has(63) {
		t.Fatal("empty set has members")
	}
	s = s.Add(0).Add(5).Add(63)
	for _, sym := range []trace.Sym{0, 5, 63} {
		if !s.Has(sym) {
			t.Fatalf("symbol %d not asleep after Add", sym)
		}
	}
	if s.Has(1) {
		t.Fatal("unrelated symbol asleep")
	}
	if s.Add(64) != s || s.Add(200) != s {
		t.Fatal("symbols ≥ 64 must be Add no-ops")
	}
	if s.Has(64) || s.Has(200) {
		t.Fatal("symbols ≥ 64 must never sleep")
	}
}

// TestFilterIndependentMatchesIndependent is the anti-divergence pin:
// FilterIndependent inlines Independent with branch-constant folder
// calls hoisted, and this property test asserts the two stay the same
// relation — for every sleeping symbol s,
// FilterIndependent(...).Has(s) == Independent(f, st, value(s), in) —
// across random states and inputs of the four ADTs.
func TestFilterIndependentMatchesIndependent(t *testing.T) {
	cases := []struct {
		f      adt.Folder
		inputs []trace.Value
	}{
		{adt.Consensus{}, []trace.Value{adt.ProposeInput("a"), adt.ProposeInput("b"), adt.ProposeInput("c")}},
		{adt.Register{}, []trace.Value{adt.WriteInput("x"), adt.WriteInput("y"), adt.ReadInput()}},
		{adt.Counter{}, []trace.Value{adt.IncInput(), adt.GetInput()}},
		{adt.Queue{}, []trace.Value{adt.EnqInput("x"), adt.EnqInput("y"), adt.DeqInput()}},
	}
	r := rand.New(rand.NewSource(64))
	for _, tc := range cases {
		in := trace.NewInterner()
		for _, v := range tc.inputs {
			in.Sym(v)
		}
		for iter := 0; iter < 200; iter++ {
			// A random reachable state: fold a short random history.
			st := tc.f.Empty()
			for k, n := 0, r.Intn(4); k < n; k++ {
				st = tc.f.Step(st, tc.inputs[r.Intn(len(tc.inputs))])
			}
			branch := tc.inputs[r.Intn(len(tc.inputs))]
			var sleep SleepSet
			for sym := trace.Sym(0); int(sym) < in.Len(); sym++ {
				if r.Intn(2) == 0 && in.Value(sym) != branch {
					sleep = sleep.Add(sym)
				}
			}
			got := sleep.FilterIndependent(tc.f, in, st, branch)
			for sym := trace.Sym(0); int(sym) < in.Len(); sym++ {
				want := sleep.Has(sym) && Independent(tc.f, st, in.Value(sym), branch)
				if got.Has(sym) != want {
					t.Fatalf("%s: FilterIndependent diverges from Independent at state %q, sleep %q vs branch %q: got %v want %v",
						tc.f.Name(), st, in.Value(sym), branch, got.Has(sym), want)
				}
			}
		}
	}
}

// TestIndependentSpotChecks pins the relation on known pairs: commuting
// (reads, post-decision proposals) and conflicting (writes, increments,
// pre-decision proposals).
func TestIndependentSpotChecks(t *testing.T) {
	reg, cons, ctr := adt.Register{}, adt.Consensus{}, adt.Counter{}
	if !Independent(reg, reg.Empty(), adt.ReadInput(), adt.Tag(adt.ReadInput(), "2")) {
		t.Fatal("two reads must commute")
	}
	if Independent(reg, reg.Empty(), adt.WriteInput("x"), adt.WriteInput("y")) {
		t.Fatal("writes of different values must conflict")
	}
	if Independent(reg, reg.Empty(), adt.WriteInput("x"), adt.ReadInput()) {
		t.Fatal("a write and a read of ⊥ must conflict")
	}
	if Independent(cons, cons.Empty(), adt.ProposeInput("a"), adt.ProposeInput("b")) {
		t.Fatal("proposals at the undecided state must conflict")
	}
	decided := cons.Step(cons.Empty(), adt.ProposeInput("a"))
	if !Independent(cons, decided, adt.ProposeInput("b"), adt.ProposeInput("c")) {
		t.Fatal("proposals after a decision must commute")
	}
	if Independent(ctr, ctr.Empty(), adt.IncInput(), adt.Tag(adt.IncInput(), "2")) {
		t.Fatal("two fetch-and-increments must conflict (outputs order-sensitive)")
	}
}
