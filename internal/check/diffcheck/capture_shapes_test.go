package diffcheck

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
	"repro/internal/workload"
)

// widen reshapes a random trace the way the capture harness's merge
// does at equal-timestamp ties: invocations sort before responses, so
// adjacent cross-client (Res, Inv) pairs flip into (Inv, Res). Flipping
// only widens the flipped operation's interval — exactly the
// under-approximation the recorder commits to — so a linearizable trace
// stays linearizable and the transform is safe to apply to corrupted
// traces too. Several randomized passes produce the characteristic
// capture bursts: runs of invocations, then runs of responses, with
// responses reordered relative to their invocation order.
func widen(r *rand.Rand, t trace.Trace) trace.Trace {
	out := append(trace.Trace(nil), t...)
	for pass := 0; pass < 3; pass++ {
		for i := 0; i+1 < len(out); i++ {
			if out[i].Kind == trace.Res && out[i+1].Kind == trace.Inv &&
				out[i].Client != out[i+1].Client && r.Intn(2) == 0 {
				out[i], out[i+1] = out[i+1], out[i]
			}
		}
	}
	return out
}

// TestSessionCaptureShapes is the satellite property test for Session
// Feed under capture-shaped inputs: wide overlapping intervals (many
// clients), equal-timestamp tie bursts (widen), and response
// reordering, on clean and corrupted traces. Fast-path folders run the
// full fast-vs-exact harness (one-shot, per-prefix sessions,
// witnesses); the set — no fast path — runs the per-prefix
// session-vs-one-shot harness on the exact engines.
func TestSessionCaptureShapes(t *testing.T) {
	ctx := context.Background()
	fastFolders := []struct {
		name   string
		f      adt.Folder
		inputs []trace.Value
	}{
		{"register", adt.Register{}, []trace.Value{
			adt.WriteInput("a"), adt.WriteInput("b"), adt.WriteInput("c"), adt.ReadInput()}},
		{"mutex", adt.Mutex{}, []trace.Value{
			adt.LockInput(), adt.LockInput(), adt.UnlockInput()}},
		{"stack", adt.Stack{}, []trace.Value{
			adt.PushInput("a"), adt.PushInput("b"), adt.PopInput()}},
		{"queue", adt.Queue{}, []trace.Value{
			adt.EnqInput("a"), adt.EnqInput("b"), adt.DeqInput()}},
	}
	for _, fd := range fastFolders {
		fd := fd
		t.Run(fd.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(1701))
			for iter := 0; iter < 60; iter++ {
				tr := workload.Random(fd.f, r, workload.TraceOpts{
					// Up to 4 overlapping clients: wide enough for capture
					// bursts, small enough for the harness's per-prefix exact
					// engines (the frontier superposes overlap windows, so
					// its cost is exponential in the widened overlap width).
					Clients:     2 + r.Intn(3),
					Ops:         8 + r.Intn(9),
					Inputs:      fd.inputs,
					PendingProb: 0.15,
					CorruptProb: float64(iter%3) * 0.2, // 0, .2, .4
					UniqueTags:  true,
				})
				tr = widen(r, tr)
				if err := Fastpath(ctx, fd.f, tr, check.WithBudget(fastBudget)); err != nil {
					t.Fatalf("iter %d: %v", iter, err)
				}
			}
		})
	}

	t.Run("set", func(t *testing.T) {
		r := rand.New(rand.NewSource(1702))
		inputs := []trace.Value{
			adt.AddInput("x"), adt.RemoveInput("x"), adt.HasInput("x")}
		for iter := 0; iter < 40; iter++ {
			tr := workload.Random(adt.Set{}, r, workload.TraceOpts{
				Clients:     2 + r.Intn(5),
				Ops:         6 + r.Intn(15),
				Inputs:      inputs,
				PendingProb: 0.15,
				CorruptProb: float64(iter%3) * 0.2,
				UniqueTags:  true,
			})
			tr = widen(r, tr)
			if err := LinPrefixes(ctx, adt.Set{}, tr, check.WithBudget(fastBudget)); err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
		}
	})
}

// TestCompactedFrontierCaptureShapes drives the compaction axis
// (DESIGN.md, decision 17) through capture-shaped inputs: long
// sequential-heavy traces whose fully-claimed chain prefixes are what
// compaction drops, widened into equal-timestamp tie bursts by the
// capture merge's transform, with overlap from several concurrent
// clients and mid-stream drains at a third and two thirds of the
// stream. The compacted session must agree with the uncompacted
// reference session on every prefix and with the one-shot engine at
// every drain, and drained compacted witnesses must verify — on clean
// and corrupted traces alike.
func TestCompactedFrontierCaptureShapes(t *testing.T) {
	ctx := context.Background()
	folders := []struct {
		name   string
		f      adt.Folder
		inputs []trace.Value
	}{
		{"register", adt.Register{}, []trace.Value{
			adt.WriteInput("a"), adt.WriteInput("b"), adt.ReadInput()}},
		{"counter", adt.Counter{}, []trace.Value{
			adt.IncInput(), adt.GetInput()}},
		{"set", adt.Set{}, []trace.Value{
			adt.AddInput("x"), adt.RemoveInput("x"), adt.HasInput("x")}},
	}
	for _, fd := range folders {
		fd := fd
		t.Run(fd.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(1703))
			const iters = 30
			exhausted := 0
			for iter := 0; iter < iters; iter++ {
				tr := workload.Random(fd.f, r, workload.TraceOpts{
					// Few clients, moderately long streams: the
					// sequential-heavy regime where claimed prefixes grow
					// long enough to compact (compactMin), capped where the
					// UNCOMPACTED reference — whose frontier keeps every
					// commit-order permutation alive — still fits the
					// budget. (That asymmetry is the point of decision 17;
					// E18 measures it.)
					Clients:     2 + r.Intn(3),
					Ops:         14 + r.Intn(11),
					Inputs:      fd.inputs,
					PendingProb: 0.1,
					CorruptProb: float64(iter%3) * 0.15, // 0, .15, .3
					UniqueTags:  iter%2 == 0,
				})
				tr = widen(r, tr)
				drains := []int{len(tr) / 3, 2 * len(tr) / 3}
				err := Compaction(ctx, fd.f, tr, drains, check.WithBudget(fastBudget))
				if err == nil {
					continue
				}
				var d *Disagreement
				if errors.As(err, &d) {
					t.Fatalf("iter %d: %v", iter, err)
				}
				// The uncompacted reference (or a drain's one-shot) ran out
				// of budget: the permutation blowup compaction exists to
				// remove. Skip the iteration but insist the tail stays a
				// tail — an engine regression that exhausts everywhere must
				// not silently void the property.
				exhausted++
			}
			if exhausted > iters/3 {
				t.Fatalf("%d/%d iterations exhausted the reference budget", exhausted, iters)
			}
		})
	}
}
