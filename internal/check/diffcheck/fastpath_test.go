package diffcheck

import (
	"context"
	"errors"
	"math/rand"
	"strconv"
	"testing"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/lin"
	"repro/internal/slin"
	"repro/internal/trace"
)

// This file polices the ADT-specialized fast-path checkers (DESIGN.md,
// decision 15) with the exact engines as the oracle: hand-built
// adversarial traces at the fragment boundary, randomized sweeps, and
// the FuzzFastpathVsExact native fuzz target.

// fastBudget is ample for every trace shape in this file; only the
// exact side spends it (the fast path spends no budget by design).
const fastBudget = 2_000_000

func inv(c string, in trace.Value) trace.Action { return trace.Invoke(trace.ClientID(c), 1, in) }
func res(c string, in, out trace.Value) trace.Action {
	return trace.Response(trace.ClientID(c), 1, in, out)
}

// TestFastpathRegisterBoundary drives the register core across its
// fragment boundary: in-fragment accepts and rejects, pending
// operations, duplicate values and inputs (fallback), semantically
// impossible outputs, and ill-formed shapes.
func TestFastpathRegisterBoundary(t *testing.T) {
	rd := func(tag string) trace.Value { return adt.Tag(adt.ReadInput(), tag) }
	cases := []struct {
		name string
		tr   trace.Trace
	}{
		{"sequential write read", trace.Trace{
			inv("c1", adt.WriteInput("a")), res("c1", adt.WriteInput("a"), adt.WriteOutput()),
			inv("c2", rd("1")), res("c2", rd("1"), adt.ReadOutput("a")),
		}},
		{"bottom read before write", trace.Trace{
			inv("c2", rd("1")), res("c2", rd("1"), adt.ReadOutput(adt.Bottom)),
			inv("c1", adt.WriteInput("a")), res("c1", adt.WriteInput("a"), adt.WriteOutput()),
		}},
		{"bottom read after closed write rejects", trace.Trace{
			inv("c1", adt.WriteInput("a")), res("c1", adt.WriteInput("a"), adt.WriteOutput()),
			inv("c2", rd("1")), res("c2", rd("1"), adt.ReadOutput(adt.Bottom)),
		}},
		{"stale read after intervening write rejects", trace.Trace{
			inv("c1", adt.WriteInput("a")), res("c1", adt.WriteInput("a"), adt.WriteOutput()),
			inv("c1", adt.WriteInput("b")), res("c1", adt.WriteInput("b"), adt.WriteOutput()),
			inv("c2", rd("1")), res("c2", rd("1"), adt.ReadOutput("a")),
		}},
		{"concurrent writes allow either read order", trace.Trace{
			inv("c1", adt.WriteInput("a")),
			inv("c2", adt.WriteInput("b")),
			inv("c3", rd("1")), res("c3", rd("1"), adt.ReadOutput("b")),
			res("c1", adt.WriteInput("a"), adt.WriteOutput()),
			res("c2", adt.WriteInput("b"), adt.WriteOutput()),
			inv("c3", rd("2")), res("c3", rd("2"), adt.ReadOutput("a")),
		}},
		{"pending write observed by read", trace.Trace{
			inv("c1", adt.WriteInput("a")),
			inv("c2", rd("1")), res("c2", rd("1"), adt.ReadOutput("a")),
		}},
		{"read of never-written value rejects", trace.Trace{
			inv("c1", adt.WriteInput("a")), res("c1", adt.WriteInput("a"), adt.WriteOutput()),
			inv("c2", rd("1")), res("c2", rd("1"), adt.ReadOutput("z")),
		}},
		{"write answered as read rejects", trace.Trace{
			inv("c1", adt.WriteInput("a")), res("c1", adt.WriteInput("a"), adt.ReadOutput("a")),
		}},
		{"duplicate write value falls back", trace.Trace{
			inv("c1", adt.WriteInput("a")), res("c1", adt.WriteInput("a"), adt.WriteOutput()),
			inv("c2", adt.Tag(adt.WriteInput("a"), "2")), res("c2", adt.Tag(adt.WriteInput("a"), "2"), adt.WriteOutput()),
			inv("c3", rd("1")), res("c3", rd("1"), adt.ReadOutput("a")),
		}},
		{"duplicate untagged reads fall back", trace.Trace{
			inv("c1", adt.ReadInput()), res("c1", adt.ReadInput(), adt.ReadOutput(adt.Bottom)),
			inv("c2", adt.ReadInput()), res("c2", adt.ReadInput(), adt.ReadOutput(adt.Bottom)),
		}},
		{"grammar-invalid input falls back", trace.Trace{
			inv("c1", "zap:q"), res("c1", "zap:q", adt.ReadOutput(adt.Bottom)),
		}},
		{"write of bottom falls back", trace.Trace{
			inv("c1", adt.WriteInput(adt.Bottom)), res("c1", adt.WriteInput(adt.Bottom), adt.WriteOutput()),
		}},
		{"crossing blocks reject", trace.Trace{
			inv("c1", adt.WriteInput("a")), res("c1", adt.WriteInput("a"), adt.WriteOutput()),
			inv("c2", adt.WriteInput("b")), res("c2", adt.WriteInput("b"), adt.WriteOutput()),
			inv("c3", rd("1")), res("c3", rd("1"), adt.ReadOutput("a")),
		}},
		{"late-joining reads stay linearizable", trace.Trace{
			inv("c1", adt.WriteInput("a")),
			inv("c2", rd("1")), res("c2", rd("1"), adt.ReadOutput("a")),
			res("c1", adt.WriteInput("a"), adt.WriteOutput()),
			inv("c2", adt.WriteInput("b")), res("c2", adt.WriteInput("b"), adt.WriteOutput()),
			inv("c3", rd("2")), res("c3", rd("2"), adt.ReadOutput("b")),
			inv("c1", rd("3")), res("c1", rd("3"), adt.ReadOutput("b")),
		}},
		{"response without invocation is ill-formed", trace.Trace{
			res("c1", adt.WriteInput("a"), adt.WriteOutput()),
		}},
		{"double invocation is ill-formed", trace.Trace{
			inv("c1", adt.WriteInput("a")), inv("c1", adt.WriteInput("b")),
		}},
		{"switch action is ill-formed", trace.Trace{
			inv("c1", adt.WriteInput("a")),
			trace.Switch(trace.ClientID("c1"), 1, adt.WriteInput("a"), "a"),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := Fastpath(context.Background(), adt.Register{}, tc.tr, check.WithBudget(fastBudget)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFastpathQueueBoundary drives the one-shot queue core across its
// fragment boundary (the queue has no streaming core, so the session
// side of the harness exercises the exact engine).
func TestFastpathQueueBoundary(t *testing.T) {
	dq := func(tag string) trace.Value { return adt.Tag(adt.DeqInput(), tag) }
	cases := []struct {
		name string
		tr   trace.Trace
	}{
		{"fifo order accepted", trace.Trace{
			inv("c1", adt.EnqInput("a")), res("c1", adt.EnqInput("a"), adt.WriteOutput()),
			inv("c1", adt.EnqInput("b")), res("c1", adt.EnqInput("b"), adt.WriteOutput()),
			inv("c2", dq("1")), res("c2", dq("1"), adt.ReadOutput("a")),
			inv("c2", dq("2")), res("c2", dq("2"), adt.ReadOutput("b")),
		}},
		{"fifo inversion rejects", trace.Trace{
			inv("c1", adt.EnqInput("a")), res("c1", adt.EnqInput("a"), adt.WriteOutput()),
			inv("c1", adt.EnqInput("b")), res("c1", adt.EnqInput("b"), adt.WriteOutput()),
			inv("c2", dq("1")), res("c2", dq("1"), adt.ReadOutput("b")),
			inv("c2", dq("2")), res("c2", dq("2"), adt.ReadOutput("a")),
		}},
		{"overlapping enqueues dequeue either way", trace.Trace{
			inv("c1", adt.EnqInput("a")),
			inv("c2", adt.EnqInput("b")),
			res("c1", adt.EnqInput("a"), adt.WriteOutput()),
			res("c2", adt.EnqInput("b"), adt.WriteOutput()),
			inv("c3", dq("1")), res("c3", dq("1"), adt.ReadOutput("b")),
			inv("c3", dq("2")), res("c3", dq("2"), adt.ReadOutput("a")),
		}},
		{"undequeued front blocks rejects", trace.Trace{
			inv("c1", adt.EnqInput("a")), res("c1", adt.EnqInput("a"), adt.WriteOutput()),
			inv("c1", adt.EnqInput("b")), res("c1", adt.EnqInput("b"), adt.WriteOutput()),
			inv("c2", dq("1")), res("c2", dq("1"), adt.ReadOutput("b")),
		}},
		{"dequeue before enqueue rejects", trace.Trace{
			inv("c2", dq("1")), res("c2", dq("1"), adt.ReadOutput("a")),
			inv("c1", adt.EnqInput("a")), res("c1", adt.EnqInput("a"), adt.WriteOutput()),
		}},
		{"dequeue of never-enqueued value rejects", trace.Trace{
			inv("c1", adt.EnqInput("a")), res("c1", adt.EnqInput("a"), adt.WriteOutput()),
			inv("c2", dq("1")), res("c2", dq("1"), adt.ReadOutput("z")),
		}},
		{"empty dequeue falls back", trace.Trace{
			inv("c2", dq("1")), res("c2", dq("1"), adt.ReadOutput(adt.Bottom)),
			inv("c1", adt.EnqInput("a")), res("c1", adt.EnqInput("a"), adt.WriteOutput()),
		}},
		{"pending operation falls back", trace.Trace{
			inv("c1", adt.EnqInput("a")), res("c1", adt.EnqInput("a"), adt.WriteOutput()),
			inv("c2", dq("1")),
		}},
		{"duplicate enqueue value falls back", trace.Trace{
			inv("c1", adt.EnqInput("a")), res("c1", adt.EnqInput("a"), adt.WriteOutput()),
			inv("c2", adt.Tag(adt.EnqInput("a"), "2")), res("c2", adt.Tag(adt.EnqInput("a"), "2"), adt.WriteOutput()),
			inv("c3", dq("1")), res("c3", dq("1"), adt.ReadOutput("a")),
		}},
		{"double dequeue of one value rejects", trace.Trace{
			inv("c1", adt.EnqInput("a")), res("c1", adt.EnqInput("a"), adt.WriteOutput()),
			inv("c2", dq("1")), res("c2", dq("1"), adt.ReadOutput("a")),
			inv("c2", dq("2")), res("c2", dq("2"), adt.ReadOutput("a")),
		}},
		{"enqueue answered as dequeue rejects", trace.Trace{
			inv("c1", adt.EnqInput("a")), res("c1", adt.EnqInput("a"), adt.ReadOutput("a")),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := Fastpath(context.Background(), adt.Queue{}, tc.tr, check.WithBudget(fastBudget)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFastpathMutexBoundary drives the streaming mutex core: legal
// alternations, the counting rejects, helper consumption, and the
// fragment exits (error outputs, duplicate inputs, stuck greedy).
func TestFastpathMutexBoundary(t *testing.T) {
	lk := func(tag string) trace.Value { return adt.Tag(adt.LockInput(), tag) }
	ul := func(tag string) trace.Value { return adt.Tag(adt.UnlockInput(), tag) }
	cases := []struct {
		name string
		tr   trace.Trace
	}{
		{"sequential lock unlock accepted", trace.Trace{
			inv("c1", lk("1")), res("c1", lk("1"), adt.WriteOutput()),
			inv("c1", ul("1")), res("c1", ul("1"), adt.WriteOutput()),
		}},
		{"contended handoff accepted", trace.Trace{
			inv("c1", lk("1")), res("c1", lk("1"), adt.WriteOutput()),
			inv("c2", lk("2")),
			inv("c1", ul("1")), res("c1", ul("1"), adt.WriteOutput()),
			res("c2", lk("2"), adt.WriteOutput()),
		}},
		{"two closed acquires without release reject", trace.Trace{
			inv("c1", lk("1")), res("c1", lk("1"), adt.WriteOutput()),
			inv("c2", lk("2")), res("c2", lk("2"), adt.WriteOutput()),
		}},
		{"acquires overlapping a pending release accept", trace.Trace{
			inv("c1", lk("1")), res("c1", lk("1"), adt.WriteOutput()),
			inv("c3", ul("1")),
			inv("c2", lk("2")), res("c2", lk("2"), adt.WriteOutput()),
			res("c3", ul("1"), adt.WriteOutput()),
		}},
		{"release before any acquire rejects", trace.Trace{
			inv("c1", ul("1")), res("c1", ul("1"), adt.WriteOutput()),
		}},
		{"release overlapping a pending acquire accepts", trace.Trace{
			inv("c2", lk("1")),
			inv("c1", ul("1")), res("c1", ul("1"), adt.WriteOutput()),
			res("c2", lk("1"), adt.WriteOutput()),
		}},
		{"double release of one acquire rejects", trace.Trace{
			inv("c1", lk("1")), res("c1", lk("1"), adt.WriteOutput()),
			inv("c1", ul("1")), res("c1", ul("1"), adt.WriteOutput()),
			inv("c2", ul("2")), res("c2", ul("2"), adt.WriteOutput()),
		}},
		{"held error output falls back", trace.Trace{
			inv("c1", lk("1")), res("c1", lk("1"), adt.ErrOutput("held")),
		}},
		{"free error output falls back", trace.Trace{
			inv("c1", lk("1")), res("c1", lk("1"), adt.WriteOutput()),
			inv("c2", lk("2")), res("c2", lk("2"), adt.ErrOutput("held")),
			inv("c1", ul("1")), res("c1", ul("1"), adt.WriteOutput()),
		}},
		{"duplicate untagged locks fall back", trace.Trace{
			inv("c1", adt.LockInput()), res("c1", adt.LockInput(), adt.WriteOutput()),
			inv("c2", adt.LockInput()), res("c2", adt.LockInput(), adt.WriteOutput()),
		}},
		{"grammar-invalid input falls back", trace.Trace{
			inv("c1", "zap:q"), res("c1", "zap:q", adt.WriteOutput()),
		}},
		{"pending acquire never responding accepted", trace.Trace{
			inv("c1", lk("1")), res("c1", lk("1"), adt.WriteOutput()),
			inv("c2", lk("2")),
			inv("c1", ul("1")), res("c1", ul("1"), adt.WriteOutput()),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := Fastpath(context.Background(), adt.Mutex{}, tc.tr, check.WithBudget(fastBudget)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFastpathStackBoundary drives the streaming stack core: LIFO
// accepts, value-based rejects, helper pops, and the fragment exits
// (empty pops, wrong helper guesses, stuck greedy).
func TestFastpathStackBoundary(t *testing.T) {
	pp := func(tag string) trace.Value { return adt.Tag(adt.PopInput(), tag) }
	cases := []struct {
		name string
		tr   trace.Trace
	}{
		{"lifo order accepted", trace.Trace{
			inv("c1", adt.PushInput("a")), res("c1", adt.PushInput("a"), adt.WriteOutput()),
			inv("c1", adt.PushInput("b")), res("c1", adt.PushInput("b"), adt.WriteOutput()),
			inv("c2", pp("1")), res("c2", pp("1"), adt.ReadOutput("b")),
			inv("c2", pp("2")), res("c2", pp("2"), adt.ReadOutput("a")),
		}},
		{"fifo pop order exits and rejects", trace.Trace{
			inv("c1", adt.PushInput("a")), res("c1", adt.PushInput("a"), adt.WriteOutput()),
			inv("c1", adt.PushInput("b")), res("c1", adt.PushInput("b"), adt.WriteOutput()),
			inv("c2", pp("1")), res("c2", pp("1"), adt.ReadOutput("a")),
			inv("c2", pp("2")), res("c2", pp("2"), adt.ReadOutput("b")),
		}},
		{"pop of never-pushed value rejects", trace.Trace{
			inv("c1", adt.PushInput("a")), res("c1", adt.PushInput("a"), adt.WriteOutput()),
			inv("c2", pp("1")), res("c2", pp("1"), adt.ReadOutput("z")),
		}},
		{"double pop of one value rejects", trace.Trace{
			inv("c1", adt.PushInput("a")), res("c1", adt.PushInput("a"), adt.WriteOutput()),
			inv("c2", pp("1")), res("c2", pp("1"), adt.ReadOutput("a")),
			inv("c2", pp("2")), res("c2", pp("2"), adt.ReadOutput("a")),
		}},
		{"empty pop falls back", trace.Trace{
			inv("c2", pp("1")), res("c2", pp("1"), adt.ReadOutput(adt.Bottom)),
			inv("c1", adt.PushInput("a")), res("c1", adt.PushInput("a"), adt.WriteOutput()),
		}},
		{"pending push popped", trace.Trace{
			inv("c1", adt.PushInput("a")),
			inv("c2", pp("1")), res("c2", pp("1"), adt.ReadOutput("a")),
			res("c1", adt.PushInput("a"), adt.WriteOutput()),
		}},
		{"helper pop uncovers lower value", trace.Trace{
			inv("c1", adt.PushInput("a")), res("c1", adt.PushInput("a"), adt.WriteOutput()),
			inv("c1", adt.PushInput("b")), res("c1", adt.PushInput("b"), adt.WriteOutput()),
			inv("c2", pp("1")),
			inv("c3", pp("2")), res("c3", pp("2"), adt.ReadOutput("a")),
			res("c2", pp("1"), adt.ReadOutput("b")),
		}},
		{"wrong helper guess exits and rejects", trace.Trace{
			inv("c1", adt.PushInput("a")), res("c1", adt.PushInput("a"), adt.WriteOutput()),
			inv("c1", adt.PushInput("b")), res("c1", adt.PushInput("b"), adt.WriteOutput()),
			inv("c2", pp("1")),
			inv("c3", pp("2")), res("c3", pp("2"), adt.ReadOutput("a")),
			res("c2", pp("1"), adt.ReadOutput("a")),
		}},
		{"push answered as pop rejects", trace.Trace{
			inv("c1", adt.PushInput("a")), res("c1", adt.PushInput("a"), adt.ReadOutput("a")),
		}},
		{"duplicate push value falls back", trace.Trace{
			inv("c1", adt.PushInput("a")), res("c1", adt.PushInput("a"), adt.WriteOutput()),
			inv("c2", adt.Tag(adt.PushInput("a"), "2")), res("c2", adt.Tag(adt.PushInput("a"), "2"), adt.WriteOutput()),
			inv("c3", pp("1")), res("c3", pp("1"), adt.ReadOutput("a")),
		}},
		{"grammar-invalid input falls back", trace.Trace{
			inv("c1", "zap:q"), res("c1", "zap:q", adt.WriteOutput()),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := Fastpath(context.Background(), adt.Stack{}, tc.tr, check.WithBudget(fastBudget)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFastpathConsensusBoundary drives the consensus core: agreement,
// split decisions, unproposed decisions, and fallback on grammar exits.
func TestFastpathConsensusBoundary(t *testing.T) {
	p := func(v trace.Value, tag string) trace.Value { return adt.Tag(adt.ProposeInput(v), tag) }
	cases := []struct {
		name string
		tr   trace.Trace
	}{
		{"first proposal decided by all", trace.Trace{
			inv("c1", p("a", "1")), res("c1", p("a", "1"), adt.DecideOutput("a")),
			inv("c2", p("b", "2")), res("c2", p("b", "2"), adt.DecideOutput("a")),
		}},
		{"split decision rejects", trace.Trace{
			inv("c1", p("a", "1")), res("c1", p("a", "1"), adt.DecideOutput("a")),
			inv("c2", p("b", "2")), res("c2", p("b", "2"), adt.DecideOutput("b")),
		}},
		{"decision of unproposed value rejects", trace.Trace{
			inv("c1", p("a", "1")), res("c1", p("a", "1"), adt.DecideOutput("b")),
		}},
		{"concurrent proposals decide the later one", trace.Trace{
			inv("c1", p("a", "1")),
			inv("c2", p("b", "2")),
			res("c2", p("b", "2"), adt.DecideOutput("b")),
			res("c1", p("a", "1"), adt.DecideOutput("b")),
		}},
		{"decision proposed only after first response rejects", trace.Trace{
			inv("c1", p("a", "1")), res("c1", p("a", "1"), adt.DecideOutput("b")),
			inv("c2", p("b", "2")), res("c2", p("b", "2"), adt.DecideOutput("b")),
		}},
		{"same value proposed twice stays in fragment", trace.Trace{
			inv("c1", p("a", "1")), res("c1", p("a", "1"), adt.DecideOutput("a")),
			inv("c2", p("a", "2")), res("c2", p("a", "2"), adt.DecideOutput("a")),
		}},
		{"pending proposal decided by others", trace.Trace{
			inv("c1", p("a", "1")),
			inv("c2", p("b", "2")), res("c2", p("b", "2"), adt.DecideOutput("a")),
		}},
		{"grammar-invalid proposal falls back", trace.Trace{
			inv("c1", "q:a"), res("c1", "q:a", adt.DecideOutput("a")),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := Fastpath(context.Background(), adt.Consensus{}, tc.tr, check.WithBudget(fastBudget)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFastpathRandomizedAgreement sweeps seeded random traces — mixing
// in-fragment, fallback and ill-formed shapes — through the full
// fast-vs-exact harness for every specialized folder.
func TestFastpathRandomizedAgreement(t *testing.T) {
	folders := []struct {
		name    string
		f       adt.Folder
		inputs  func(r *rand.Rand, i int) trace.Value
		outputs []trace.Value
	}{
		{
			name: "register",
			f:    adt.Register{},
			inputs: func(r *rand.Rand, i int) trace.Value {
				switch r.Intn(4) {
				case 0:
					return adt.WriteInput(trace.Value("v" + strconv.Itoa(r.Intn(6))))
				case 1: // untagged read: duplicates force fallback
					return adt.ReadInput()
				default:
					return adt.Tag(adt.ReadInput(), strconv.Itoa(i))
				}
			},
			outputs: []trace.Value{adt.WriteOutput(), adt.ReadOutput(adt.Bottom),
				adt.ReadOutput("v0"), adt.ReadOutput("v1"), adt.ReadOutput("v2")},
		},
		{
			name: "queue",
			f:    adt.Queue{},
			inputs: func(r *rand.Rand, i int) trace.Value {
				switch r.Intn(4) {
				case 0, 1:
					return adt.EnqInput(trace.Value("v" + strconv.Itoa(r.Intn(6))))
				default:
					return adt.Tag(adt.DeqInput(), strconv.Itoa(i))
				}
			},
			outputs: []trace.Value{adt.WriteOutput(), adt.ReadOutput(adt.Bottom),
				adt.ReadOutput("v0"), adt.ReadOutput("v1"), adt.ReadOutput("v2")},
		},
		{
			name: "consensus",
			f:    adt.Consensus{},
			inputs: func(r *rand.Rand, i int) trace.Value {
				return adt.Tag(adt.ProposeInput(trace.Value("v"+strconv.Itoa(r.Intn(3)))), strconv.Itoa(i))
			},
			outputs: []trace.Value{adt.DecideOutput("v0"), adt.DecideOutput("v1"), adt.DecideOutput("v2")},
		},
		{
			name: "mutex",
			f:    adt.Mutex{},
			inputs: func(r *rand.Rand, i int) trace.Value {
				switch r.Intn(6) {
				case 0: // untagged: duplicates force fallback
					return adt.LockInput()
				case 1, 2:
					return adt.Tag(adt.UnlockInput(), strconv.Itoa(i))
				default:
					return adt.Tag(adt.LockInput(), strconv.Itoa(i))
				}
			},
			outputs: []trace.Value{adt.WriteOutput(), adt.WriteOutput(), adt.WriteOutput(),
				adt.ErrOutput("held"), adt.ErrOutput("free")},
		},
		{
			name: "stack",
			f:    adt.Stack{},
			inputs: func(r *rand.Rand, i int) trace.Value {
				switch r.Intn(4) {
				case 0, 1:
					return adt.PushInput(trace.Value("v" + strconv.Itoa(r.Intn(6))))
				default:
					return adt.Tag(adt.PopInput(), strconv.Itoa(i))
				}
			},
			outputs: []trace.Value{adt.WriteOutput(), adt.ReadOutput(adt.Bottom),
				adt.ReadOutput("v0"), adt.ReadOutput("v1"), adt.ReadOutput("v2")},
		},
	}
	clients := []trace.ClientID{"c1", "c2", "c3"}
	for _, fc := range folders {
		t.Run(fc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(0x5ca1ab1e))
			for iter := 0; iter < 300; iter++ {
				n := 2 + r.Intn(13)
				pending := map[trace.ClientID]trace.Value{}
				var tr trace.Trace
				for i := 0; i < n; i++ {
					c := clients[r.Intn(len(clients))]
					if in, busy := pending[c]; busy && r.Intn(5) > 0 {
						if r.Intn(12) == 0 {
							in = fc.inputs(r, 1000+i) // mismatched response: ill-formed
						}
						tr = append(tr, trace.Response(c, 1, in, fc.outputs[r.Intn(len(fc.outputs))]))
						delete(pending, c)
					} else if !busy {
						in := fc.inputs(r, i)
						tr = append(tr, trace.Invoke(c, 1, in))
						pending[c] = in
					}
				}
				// Half the traces are completed so the queue core sees
				// complete histories often.
				if r.Intn(2) == 0 {
					for c, in := range pending {
						tr = append(tr, trace.Response(c, 1, in, fc.outputs[r.Intn(len(fc.outputs))]))
					}
				}
				if err := Fastpath(context.Background(), fc.f, tr, check.WithBudget(fastBudget)); err != nil {
					var d *Disagreement
					if errors.As(err, &d) {
						t.Fatalf("iter %d: %v", iter, err)
					}
					t.Skipf("iter %d: exact engine gave up: %v", iter, err)
				}
				// Every few iterations, the same trace through the
				// SLin(1,2) fast session against the exact slin engine
				// (Theorem 2 grounds the comparison; the queue has no
				// streaming core, so its sessions are exact anyway).
				if iter%5 == 0 && fc.name != "queue" {
					if err := FastpathSLin(context.Background(), fc.f, slin.UniversalRInit{}, 2, tr, check.WithBudget(fastBudget)); err != nil {
						var d *Disagreement
						if errors.As(err, &d) {
							t.Fatalf("iter %d (slin): %v", iter, err)
						}
						t.Skipf("iter %d (slin): exact engine gave up: %v", iter, err)
					}
				}
			}
		})
	}
}

// TestFastpathLongRegisterSession pins the fast session on a long
// in-fragment register history (the SMR per-key shape): verdict
// positive, witness valid, and no budget spend even far past a budget
// an exact session would exhaust.
// TestFastpathSLinSessionBoundary drives the SLin(1,n) fast session
// across its fragment boundary: in-fragment accepts and rejects,
// fragment exits, and — specific to slin — switch actions, which force
// the fall-back-and-replay through the exact frontiers (Theorem 2's sig
// restriction excludes them from the fast fragment).
func TestFastpathSLinSessionBoundary(t *testing.T) {
	w := adt.WriteInput("a")
	rd := adt.Tag(adt.ReadInput(), "1")
	pa := adt.Tag(adt.ProposeInput("a"), "q1")
	pb := adt.Tag(adt.ProposeInput("b"), "q2")
	cases := []struct {
		name  string
		f     adt.Folder
		rinit slin.RInit
		tr    trace.Trace
	}{
		{"register in-fragment accept", adt.Register{}, slin.UniversalRInit{}, trace.Trace{
			inv("c1", w), res("c1", w, adt.WriteOutput()),
			inv("c2", rd), res("c2", rd, adt.ReadOutput("a")),
		}},
		{"register in-fragment reject", adt.Register{}, slin.UniversalRInit{}, trace.Trace{
			inv("c1", w), res("c1", w, adt.WriteOutput()),
			inv("c2", rd), res("c2", rd, adt.ReadOutput("z")),
		}},
		{"register duplicate write falls back", adt.Register{}, slin.UniversalRInit{}, trace.Trace{
			inv("c1", w), res("c1", w, adt.WriteOutput()),
			inv("c2", adt.Tag(adt.WriteInput("a"), "2")), res("c2", adt.Tag(adt.WriteInput("a"), "2"), adt.WriteOutput()),
		}},
		{"register abort switch falls back", adt.Register{}, slin.UniversalRInit{}, trace.Trace{
			inv("c1", w), res("c1", w, adt.WriteOutput()),
			inv("c2", rd),
			trace.Switch("c2", 2, rd, slin.EncodeHistory(trace.History{w, rd})),
		}},
		{"consensus in-fragment accept", adt.Consensus{}, slin.ConsensusRInit{}, trace.Trace{
			inv("q1", pa), res("q1", pa, adt.DecideOutput("a")),
			inv("q2", pb), res("q2", pb, adt.DecideOutput("a")),
		}},
		{"consensus abort switch falls back", adt.Consensus{}, slin.ConsensusRInit{}, trace.Trace{
			inv("q1", pa), inv("q2", pb),
			res("q1", pa, adt.DecideOutput("a")),
			trace.Switch("q2", 2, pb, "a"),
		}},
		{"consensus reject then abort switch", adt.Consensus{}, slin.ConsensusRInit{}, trace.Trace{
			inv("q1", pa), res("q1", pa, adt.DecideOutput("a")),
			inv("q2", pb), res("q2", pb, adt.DecideOutput("b")),
			inv("q3", adt.Tag(adt.ProposeInput("c"), "q3")),
			trace.Switch("q3", 2, adt.Tag(adt.ProposeInput("c"), "q3"), "c"),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := FastpathSLin(context.Background(), tc.f, tc.rinit, 2, tc.tr, check.WithBudget(fastBudget)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFastpathSLinLongSession is TestFastpathLongRegisterSession's slin
// twin: the fast SLin(1,2) session must spend no budget while the trace
// stays in the register fragment.
func TestFastpathSLinLongSession(t *testing.T) {
	const ops = 2_000
	sess, err := slin.NewSessionFast(context.Background(), adt.Register{}, slin.UniversalRInit{}, 1, 2, check.WithBudget(ops/10))
	if err != nil {
		t.Fatal(err)
	}
	cur := trace.Value(adt.Bottom)
	for i := 0; i < ops; i++ {
		var in trace.Value
		out := adt.WriteOutput()
		if i%3 == 0 {
			in = adt.WriteInput(trace.Value("v" + strconv.Itoa(i)))
			cur = trace.Value("v" + strconv.Itoa(i))
		} else {
			in = adt.Tag(adt.ReadInput(), strconv.Itoa(i))
			out = adt.ReadOutput(cur)
		}
		if err := sess.Feed(trace.Invoke("c1", 1, in)); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
		if err := sess.Feed(trace.Response("c1", 1, in, out)); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	got, err := sess.Result()
	if err != nil {
		t.Fatalf("fast slin session spent budget on an in-fragment trace: %v", err)
	}
	if !got.OK {
		t.Fatalf("long register history rejected: %s", got.Reason)
	}
	if got.Nodes != 2*ops {
		t.Fatalf("fast slin session accounting: %d nodes for %d actions", got.Nodes, 2*ops)
	}
}

func TestFastpathLongRegisterSession(t *testing.T) {
	const ops = 5_000
	sess := lin.NewSessionFast(context.Background(), adt.Register{}, check.WithBudget(ops/10))
	cur := trace.Value("")
	var tr trace.Trace
	r := rand.New(rand.NewSource(7))
	for i := 0; i < ops; i++ {
		c := trace.ClientID("c1")
		if r.Intn(3) == 0 {
			in := adt.WriteInput(trace.Value("v" + strconv.Itoa(i)))
			tr = append(tr, trace.Invoke(c, 1, in), trace.Response(c, 1, in, adt.WriteOutput()))
			cur = trace.Value("v" + strconv.Itoa(i))
		} else {
			in := adt.Tag(adt.ReadInput(), strconv.Itoa(i))
			out := adt.ReadOutput(cur)
			if cur == "" {
				out = adt.ReadOutput(adt.Bottom)
			}
			tr = append(tr, trace.Invoke(c, 1, in), trace.Response(c, 1, in, out))
		}
	}
	if err := sess.FeedAll(tr); err != nil {
		t.Fatalf("fast session spent budget on an in-fragment trace: %v", err)
	}
	got, err := sess.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !got.OK {
		t.Fatalf("long register history rejected: %s", got.Reason)
	}
	if err := lin.VerifyWitness(adt.Register{}, tr, got.Witness); err != nil {
		t.Fatalf("invalid witness on long history: %v", err)
	}
}

// FuzzFastpathVsExact fuzzes the specialized checkers against the exact
// engines: byte-decoded register/queue/consensus/mutex/stack traces
// (the selector extending the sibling targets' fuzzADT with the three
// fast-path containers, plus a completion bit so the queue core's
// complete-trace fragment is hit) must agree on verdict, and fast
// witnesses must verify.
func FuzzFastpathVsExact(f *testing.F) {
	f.Add(uint8(1), []byte{0x00, 0x00, 0x04, 0x00, 0x89, 0x00, 0x8d, 0x02, 0x92, 0x00, 0x96, 0x04})
	f.Add(uint8(0), []byte{0x00, 0x00, 0x01, 0x00, 0x04, 0x00, 0x05, 0x02, 0x02, 0x01})
	f.Add(uint8(2), []byte{0x80, 0x00, 0x84, 0x02, 0x88, 0x04, 0x8c, 0x06, 0x01})
	f.Add(uint8(2), []byte{0x00, 0x00, 0x04, 0x00, 0x08, 0x03, 0x0c, 0x05, 0x01})
	f.Add(uint8(3), []byte{0x00, 0x00, 0x04, 0x00, 0x09, 0x00, 0x0d, 0x00})
	f.Add(uint8(4), []byte{0x00, 0x00, 0x04, 0x00, 0x8a, 0x03, 0x8e, 0x02, 0x01})
	f.Fuzz(func(t *testing.T, sel uint8, data []byte) {
		folder, inputs, outputs := fastFuzzADT(sel)
		tr := decodeTrace(folder, inputs, outputs, data)
		if len(data) > 0 && data[len(data)-1]&1 == 1 {
			tr = completeTrace(tr, outputs)
		}
		err := Fastpath(context.Background(), folder, tr, check.WithBudget(fuzzBudget))
		if err == nil {
			return
		}
		var d *Disagreement
		if errors.As(err, &d) {
			t.Fatal(err)
		}
		t.Skip() // budget exhaustion on the exact side: nothing to compare
	})
}

// fastFuzzADT is fuzzADT with the fast-path containers in place of the
// counter (the counter has no fast path): the selector keeps fuzzADT's
// consensus/register slots and adds queue, mutex and stack pools with
// enough tagged variants to reach the distinct-inputs fragments.
func fastFuzzADT(sel uint8) (adt.Folder, []trace.Value, []trace.Value) {
	switch sel % 5 {
	case 2:
		return adt.Queue{},
			[]trace.Value{adt.EnqInput("x"), adt.EnqInput("y"), adt.DeqInput()},
			[]trace.Value{adt.WriteOutput(), adt.ReadOutput(adt.Bottom), adt.ReadOutput("x"), adt.ReadOutput("y")}
	case 3:
		return adt.Mutex{},
			[]trace.Value{adt.Tag(adt.LockInput(), "1"), adt.Tag(adt.UnlockInput(), "1"),
				adt.Tag(adt.LockInput(), "2"), adt.Tag(adt.UnlockInput(), "2")},
			[]trace.Value{adt.WriteOutput(), adt.WriteOutput(), adt.ErrOutput("held"), adt.ErrOutput("free")}
	case 4:
		return adt.Stack{},
			[]trace.Value{adt.PushInput("x"), adt.PushInput("y"),
				adt.Tag(adt.PopInput(), "1"), adt.Tag(adt.PopInput(), "2")},
			[]trace.Value{adt.WriteOutput(), adt.ReadOutput(adt.Bottom), adt.ReadOutput("x"), adt.ReadOutput("y")}
	}
	return fuzzADT(sel)
}

// completeTrace responds every pending invocation of tr (in a
// deterministic client order) with outputs cycled from the pool, so
// fuzz inputs reach the queue core's complete-trace fragment.
func completeTrace(tr trace.Trace, outputs []trace.Value) trace.Trace {
	pending := map[trace.ClientID]trace.Value{}
	var order []trace.ClientID
	for _, a := range tr {
		switch a.Kind {
		case trace.Inv:
			if _, busy := pending[a.Client]; !busy {
				pending[a.Client] = a.Input
				order = append(order, a.Client)
			}
		case trace.Res:
			delete(pending, a.Client)
		}
	}
	out := append(trace.Trace(nil), tr...)
	i := 0
	for _, c := range order {
		if in, busy := pending[c]; busy {
			out = append(out, trace.Response(c, 1, in, outputs[i%len(outputs)]))
			i++
		}
	}
	return out
}
