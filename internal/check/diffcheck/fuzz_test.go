package diffcheck

import (
	"context"
	"errors"
	"strconv"
	"testing"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
)

// fuzzADT selects the ADT (and its input/plausible-output pools) a fuzz
// input is decoded against.
func fuzzADT(sel uint8) (adt.Folder, []trace.Value, []trace.Value) {
	switch sel % 3 {
	case 0:
		return adt.Consensus{},
			[]trace.Value{adt.ProposeInput("a"), adt.ProposeInput("b")},
			[]trace.Value{adt.DecideOutput("a"), adt.DecideOutput("b")}
	case 1:
		return adt.Register{},
			[]trace.Value{adt.WriteInput("x"), adt.WriteInput("y"), adt.ReadInput()},
			[]trace.Value{adt.WriteOutput(), adt.ReadOutput(adt.Bottom), adt.ReadOutput("x"), adt.ReadOutput("y")}
	default:
		return adt.Counter{},
			[]trace.Value{adt.IncInput(), adt.GetInput()},
			[]trace.Value{adt.CountOutput(0), adt.CountOutput(1), adt.CountOutput(2)}
	}
}

// decodeTrace turns fuzz bytes into a trace: two bytes per action over
// three clients. Responses usually answer the client's pending
// invocation (reaching deep search states) but may deliberately
// mismatch, and outputs are drawn from a plausible pool — so the decoded
// corpus mixes well-formed linearizable, well-formed corrupted and
// ill-formed traces, exactly the shapes the checkers classify
// differently. The action count is capped so exhaustive searches stay
// within fuzz-friendly budgets.
func decodeTrace(f adt.Folder, inputs, outputs []trace.Value, data []byte) trace.Trace {
	clients := []trace.ClientID{"c1", "c2", "c3"}
	pending := map[trace.ClientID]trace.Value{}
	var tr trace.Trace
	for i := 0; i+1 < len(data) && len(tr) < 14; i += 2 {
		b, o := data[i], data[i+1]
		c := clients[int(b&3)%len(clients)]
		if (b>>2)&1 == 0 {
			in := inputs[int(b>>3)%len(inputs)]
			if b&0x80 != 0 {
				in = adt.Tag(in, strconv.Itoa(i))
			}
			tr = append(tr, trace.Invoke(c, 1, in))
			pending[c] = in
		} else {
			in, ok := pending[c]
			if !ok || o&1 == 1 {
				in = inputs[int(b>>3)%len(inputs)]
			}
			tr = append(tr, trace.Response(c, 1, in, outputs[int(o>>1)%len(outputs)]))
			delete(pending, c)
		}
	}
	return tr
}

// fuzzBudget keeps a single fuzz execution cheap; inputs whose searches
// exceed it are skipped, not failed (budget exhaustion yields Unknown on
// every engine, which the dedicated budget tests pin).
const fuzzBudget = 200_000

// corpusSeeds are hand-encoded corpus traces: concurrent invocations
// followed by split decisions (the hard exhaustive shape), sequential
// invoke/respond pairs, tagged repeats, and an ill-formed response
// prefix.
func corpusSeeds(f *testing.F) {
	f.Add(uint8(0), []byte{0x00, 0x00, 0x01, 0x00, 0x02, 0x00, 0x04, 0x00, 0x05, 0x02, 0x06, 0x04})
	f.Add(uint8(0), []byte{0x80, 0x00, 0x81, 0x00, 0x82, 0x00, 0x84, 0x00, 0x85, 0x02, 0x86, 0x02})
	f.Add(uint8(1), []byte{0x00, 0x00, 0x04, 0x00, 0x09, 0x00, 0x0d, 0x02, 0x12, 0x00, 0x16, 0x04})
	f.Add(uint8(1), []byte{0x04, 0x06, 0x00, 0x00, 0x04, 0x02})
	f.Add(uint8(2), []byte{0x00, 0x00, 0x01, 0x00, 0x04, 0x02, 0x05, 0x04, 0x88, 0x00, 0x8c, 0x00})
	f.Add(uint8(2), []byte{0x0c, 0x01, 0x0c, 0x03})
}

// FuzzCheckPORAgreement fuzzes the one-shot engine matrix: reduced vs
// unreduced × depth vs frontier must agree on every decodable trace.
func FuzzCheckPORAgreement(f *testing.F) {
	corpusSeeds(f)
	f.Fuzz(func(t *testing.T, sel uint8, data []byte) {
		folder, inputs, outputs := fuzzADT(sel)
		tr := decodeTrace(folder, inputs, outputs, data)
		err := Lin(context.Background(), folder, tr, check.WithBudget(fuzzBudget))
		if err == nil {
			return
		}
		var d *Disagreement
		if errors.As(err, &d) {
			t.Fatal(err)
		}
		t.Skip() // budget exhaustion: nothing to compare
	})
}

// FuzzCompactionVsExact fuzzes the frontier-compaction axis (DESIGN.md,
// decision 17): the compacted streaming session must agree with the
// uncompacted reference session after every fed action and with the
// one-shot engine at a mid-stream drain and at the end, and drained
// compacted witnesses must verify.
func FuzzCompactionVsExact(f *testing.F) {
	corpusSeeds(f)
	f.Fuzz(func(t *testing.T, sel uint8, data []byte) {
		folder, inputs, outputs := fuzzADT(sel)
		tr := decodeTrace(folder, inputs, outputs, data)
		err := Compaction(context.Background(), folder, tr, []int{len(tr) / 2},
			check.WithBudget(fuzzBudget))
		if err == nil {
			return
		}
		var d *Disagreement
		if errors.As(err, &d) {
			t.Fatal(err)
		}
		t.Skip()
	})
}

// FuzzSessionPrefixAgreement fuzzes the incremental engine: the session
// verdict after every fed prefix must equal the one-shot verdict of that
// prefix, reducer on and off.
func FuzzSessionPrefixAgreement(f *testing.F) {
	corpusSeeds(f)
	f.Fuzz(func(t *testing.T, sel uint8, data []byte) {
		folder, inputs, outputs := fuzzADT(sel)
		tr := decodeTrace(folder, inputs, outputs, data)
		err := LinPrefixes(context.Background(), folder, tr, check.WithBudget(fuzzBudget))
		if err == nil {
			return
		}
		var d *Disagreement
		if errors.As(err, &d) {
			t.Fatal(err)
		}
		t.Skip()
	})
}
