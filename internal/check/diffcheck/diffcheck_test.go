package diffcheck

// The harness's own tests cover the regimes the wired-in suites
// (internal/lin/diff_test.go, internal/slin/diff_test.go) do NOT run —
// per-prefix session agreement and the m != 1 init-interpretation
// regime — so the engine matrix is not paid for twice per CI job. The
// uniform lin sweep lives in lin's TestE8StyleEngineMatrix /
// TestRepeatedEventsEngineMatrix; the abort-heavy and switch-free SLin
// sweeps live in slin's TestFirstPhaseEngineMatrix /
// TestTheorem2EngineMatrix.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/slin"
	"repro/internal/trace"
	"repro/internal/workload"
)

// adtCases is the E8 ADT matrix the prefix generator draws from.
var adtCases = []struct {
	name   string
	f      adt.Folder
	inputs []trace.Value
}{
	{"consensus", adt.Consensus{}, []trace.Value{
		adt.ProposeInput("a"), adt.ProposeInput("b"), adt.ProposeInput("c"),
	}},
	{"register", adt.Register{}, []trace.Value{
		adt.WriteInput("x"), adt.WriteInput("y"), adt.ReadInput(),
	}},
	{"counter", adt.Counter{}, []trace.Value{adt.IncInput(), adt.GetInput()}},
	{"queue", adt.Queue{}, []trace.Value{
		adt.EnqInput("x"), adt.EnqInput("y"), adt.DeqInput(),
	}},
}

// TestDifferentialLinPrefixes runs the session-vs-one-shot prefix
// agreement (reduced and unreduced) on a uniform sample — every trace
// costs one check per prefix per reducer setting.
func TestDifferentialLinPrefixes(t *testing.T) {
	ctx := context.Background()
	iters := 40
	if testing.Short() {
		iters = 12
	}
	for _, tc := range adtCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(2718))
			for i := 0; i < iters; i++ {
				opts := workload.TraceOpts{
					Clients: 2 + r.Intn(2), Ops: 3 + r.Intn(3), Inputs: tc.inputs,
					PendingProb: 0.2, UniqueTags: i%3 != 0,
				}
				if i%2 == 1 {
					opts.CorruptProb = 0.5
				}
				tr := workload.Random(tc.f, r, opts)
				if err := LinPrefixes(ctx, tc.f, tr); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestDifferentialSLinSecondPhase covers the m != 1 regime: init actions
// multiply interpretation combinations and anchor Init-Order baselines.
func TestDifferentialSLinSecondPhase(t *testing.T) {
	ctx := context.Background()
	iters := 80
	if testing.Short() {
		iters = 20
	}
	r := rand.New(rand.NewSource(5151))
	for i := 0; i < iters; i++ {
		opts := workload.PhaseOpts{Clients: 2 + r.Intn(2)}
		if i%3 == 0 {
			opts.ViolateProb = 0.4
		}
		tr := workload.SecondPhase(r, 2, opts)
		if err := SLin(ctx, adt.Consensus{}, slin.ConsensusRInit{}, 2, 3, tr, i%4 < 2); err != nil {
			t.Fatal(err)
		}
	}
}
