package diffcheck

// Sleep-set spill tests (DESIGN.md, decision 13): traces whose interner
// assigns more than 64 symbols, where the formerly-capped sleep sets
// (symbols ≥ 64 never slept) now actually prune — cross-checked through
// the decision-12 differential harness, since more pruning is exactly
// where a spill bug would turn the checker into a liar.

import (
	"context"
	"strconv"
	"testing"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/lin"
	"repro/internal/trace"
)

// spillTrace builds a consensus trace with 66 sequential unique-tagged
// proposals (symbols 0..65, the first one deciding) followed by a
// split-decision group of w concurrent proposals (symbols 66..66+w-1)
// whose responses contradict the long-decided value. The suffix makes
// the trace non-linearizable, so the search exhausts its full DAG; at
// the decided state the suffix proposals are no-ops that commute, so
// every extension order the reducer prunes there sleeps a symbol beyond
// the former 64-symbol cap: any pruning on this trace is spill pruning.
func spillTrace(w int) trace.Trace {
	var tr trace.Trace
	cons := adt.Consensus{}
	st := cons.Empty()
	const prefix = 66
	for i := 0; i < prefix; i++ {
		c := trace.ClientID("s" + strconv.Itoa(i))
		in := adt.Tag(adt.ProposeInput("x"+strconv.Itoa(i)), strconv.Itoa(i))
		out := cons.Out(st, in)
		st = cons.Step(st, in)
		tr = append(tr, trace.Invoke(c, 1, in), trace.Response(c, 1, in, out))
	}
	for i := 0; i < w; i++ {
		c := trace.ClientID("h" + strconv.Itoa(i))
		tr = append(tr, trace.Invoke(c, 1, adt.Tag(adt.ProposeInput("v"+strconv.Itoa(i)), string(c))))
	}
	for i := 0; i < w; i++ {
		c := trace.ClientID("h" + strconv.Itoa(i))
		in := adt.Tag(adt.ProposeInput("v"+strconv.Itoa(i)), string(c))
		tr = append(tr, trace.Response(c, 1, in, adt.DecideOutput("v"+strconv.Itoa(i%2))))
	}
	return tr
}

// TestSleepSpillHighSymbolsPrune: on the spill trace the reduced search
// must prune (under the former cap Pruned was structurally 0 here), spend
// fewer nodes than the unreduced search, and agree with the whole engine
// matrix plus the incremental session on every prefix.
func TestSleepSpillHighSymbolsPrune(t *testing.T) {
	ctx := context.Background()
	tr := spillTrace(5)
	budget := check.WithBudget(50_000_000)

	on, err := lin.Check(ctx, adt.Consensus{}, tr, budget)
	if err != nil {
		t.Fatal(err)
	}
	if on.OK {
		t.Fatal("split-decision suffix must not be linearizable")
	}
	if on.Pruned == 0 {
		t.Fatal("no pruning on commuting symbols ≥ 64 — the sleep-set spill is not engaged")
	}
	off, err := lin.Check(ctx, adt.Consensus{}, tr, budget, check.WithPOR(false))
	if err != nil {
		t.Fatal(err)
	}
	if on.Nodes >= off.Nodes {
		t.Fatalf("spill pruning saved nothing: reduced %d nodes, unreduced %d", on.Nodes, off.Nodes)
	}
	t.Logf("spill trace: %d → %d nodes, %d pruned", off.Nodes, on.Nodes, on.Pruned)

	if err := Lin(ctx, adt.Consensus{}, tr, budget); err != nil {
		t.Fatal(err)
	}
	if err := LinPrefixes(ctx, adt.Consensus{}, tr, budget); err != nil {
		t.Fatal(err)
	}
}

// TestSleepSpillWiderSweep varies the commuting-group width and checks
// the engine matrix at each: wider groups sleep more high symbols.
func TestSleepSpillWiderSweep(t *testing.T) {
	ctx := context.Background()
	budget := check.WithBudget(50_000_000)
	prev := 0
	for _, w := range []int{2, 3, 4} {
		tr := spillTrace(w)
		if err := Lin(ctx, adt.Consensus{}, tr, budget); err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		on, err := lin.Check(ctx, adt.Consensus{}, tr, budget)
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		if on.Pruned <= prev {
			t.Fatalf("w=%d: pruned %d, want more than %d (width must increase spill pruning)",
				w, on.Pruned, prev)
		}
		prev = on.Pruned
	}
}
