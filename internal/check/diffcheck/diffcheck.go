// Package diffcheck is the differential testing harness of the checker
// engines (DESIGN.md, decision 12): it runs the reduced and unreduced
// (check.WithPOR) variants of the depth-first and breadth/frontier
// engines on the SAME trace and fails loudly on any disagreement —
// verdicts, witness validity, or prefix-verdict agreement of incremental
// sessions.
//
// The harness exists because a soundness bug in a partial-order reducer
// does not crash: it silently turns the checker into a liar, accepting
// non-linearizable traces (missed dependent orders are invisible) or
// rejecting linearizable ones (over-pruning kills the witnessing order).
// Every property test and fuzz target of the reducer therefore routes
// through this package, so the unreduced engines serve as executable
// specifications of the reduced ones on every explored trace shape.
//
// All entry points return nil when every engine variant agrees, an
// *Disagreement when two variants differ, and the underlying checker
// error (budget exhaustion, cancellation, ...) unchanged when any
// variant cannot decide — callers with ample budgets treat that as a
// hard failure, fuzz targets skip it.
package diffcheck

import (
	"context"
	"fmt"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/lin"
	"repro/internal/slin"
	"repro/internal/trace"
)

// Disagreement reports two engine variants deciding the same trace
// differently (or an engine producing an invalid witness).
type Disagreement struct {
	// Trace is the input both engines saw.
	Trace trace.Trace
	// Detail describes the disagreement.
	Detail string
}

// Error implements error.
func (d *Disagreement) Error() string {
	return fmt.Sprintf("diffcheck: %s\ntrace: %v", d.Detail, d.Trace)
}

func disagree(t trace.Trace, format string, args ...any) error {
	return &Disagreement{Trace: t, Detail: fmt.Sprintf(format, args...)}
}

// variant names one engine configuration of the lin matrix.
type variant struct {
	name string
	opts []check.Option
}

// linMatrix is the engine × reduction × compaction matrix every Lin
// trace runs through: the sequential depth-first search and the breadth
// (frontier) engine (WithWorkers(2)), each with the reducer on and off,
// and the frontier variants additionally with compaction disabled (the
// frontier engines compact by default, DESIGN.md decision 17 — the
// uncompacted runs are the executable specification of the compacted
// ones).
func linMatrix(extra ...check.Option) []variant {
	mk := func(name string, opts ...check.Option) variant {
		return variant{name: name, opts: append(append([]check.Option{}, extra...), opts...)}
	}
	return []variant{
		mk("depth/por", check.WithPOR(true)),
		mk("depth/nopor", check.WithPOR(false)),
		mk("frontier/por", check.WithPOR(true), check.WithWorkers(2)),
		mk("frontier/nopor", check.WithPOR(false), check.WithWorkers(2)),
		mk("frontier/por/nocompact", check.WithPOR(true), check.WithWorkers(2), check.WithCompaction(false)),
		mk("frontier/nopor/nocompact", check.WithPOR(false), check.WithWorkers(2), check.WithCompaction(false)),
	}
}

// Lin cross-checks the four lin engine variants (depth vs frontier ×
// reduced vs unreduced) on t: all verdicts must agree, every positive
// verdict's witness must satisfy lin.VerifyWitness, the unreduced
// variants must report zero pruned branches, and the reduced depth
// engine must not spend more nodes than the unreduced one. extra options
// (budgets, deadlines) apply to every variant.
func Lin(ctx context.Context, f adt.Folder, t trace.Trace, extra ...check.Option) error {
	type outcome struct {
		name string
		res  lin.Result
	}
	var got []outcome
	for _, v := range linMatrix(extra...) {
		res, err := lin.Check(ctx, f, t, v.opts...)
		if err != nil {
			return fmt.Errorf("diffcheck %s: %w", v.name, err)
		}
		if res.OK && len(res.Witness) > 0 {
			if werr := lin.VerifyWitness(f, t, res.Witness); werr != nil {
				return disagree(t, "%s produced an invalid witness: %v", v.name, werr)
			}
		}
		got = append(got, outcome{v.name, res})
	}
	base := got[0]
	for _, o := range got[1:] {
		if o.res.OK != base.res.OK {
			return disagree(t, "verdict disagreement: %s=%v, %s=%v",
				base.name, base.res.OK, o.name, o.res.OK)
		}
	}
	for _, o := range got {
		switch o.name {
		case "depth/nopor", "frontier/nopor", "frontier/nopor/nocompact":
			if o.res.Pruned != 0 {
				return disagree(t, "%s pruned %d branches with the reducer off", o.name, o.res.Pruned)
			}
		}
	}
	if dp, dn := got[0].res, got[1].res; dp.Nodes > dn.Nodes {
		return disagree(t, "reduced depth engine spent MORE nodes than unreduced: %d > %d", dp.Nodes, dn.Nodes)
	}
	return nil
}

// LinPrefixes cross-checks the incremental session against one-shot
// Check on EVERY prefix of t, for the reducer on and off: the session's
// running verdict after k actions must equal Check's verdict of t[:k]
// (both reduced — sessions default to the reducer — and unreduced).
func LinPrefixes(ctx context.Context, f adt.Folder, t trace.Trace, extra ...check.Option) error {
	for _, por := range []bool{true, false} {
		opts := append(append([]check.Option{}, extra...), check.WithPOR(por))
		sess := lin.NewSession(ctx, f, opts...)
		for k, a := range t {
			if err := sess.Feed(a); err != nil {
				return fmt.Errorf("diffcheck session(por=%v) feed %d: %w", por, k, err)
			}
			got, err := sess.Result()
			if err != nil {
				return fmt.Errorf("diffcheck session(por=%v) prefix %d: %w", por, k+1, err)
			}
			want, err := lin.Check(ctx, f, t[:k+1], opts...)
			if err != nil {
				return fmt.Errorf("diffcheck one-shot(por=%v) prefix %d: %w", por, k+1, err)
			}
			if got.OK != want.OK {
				return disagree(t[:k+1], "session(por=%v) prefix %d: session=%v, one-shot=%v",
					por, k+1, got.OK, want.OK)
			}
			if got.OK && len(got.Witness) > 0 {
				if werr := lin.VerifyWitness(f, t[:k+1], got.Witness); werr != nil {
					return disagree(t[:k+1], "session(por=%v) prefix %d witness invalid: %v", por, k+1, werr)
				}
			}
		}
	}
	return nil
}

// Compaction cross-checks the compacted streaming session — the default
// (DESIGN.md, decision 17) — against the uncompacted reference session
// and the one-shot engine on t. The two sessions feed in lockstep and
// their running verdicts must agree after every action. At each drain
// index in drains (plus the end of the trace) both assemble full
// Results: the verdicts must match each other and the one-shot check of
// that prefix, and the compacted witness — which reconstructs the
// dropped chain prefix from the retained digest-linked segments — must
// satisfy lin.VerifyWitness. Draining mid-stream and continuing to feed
// is deliberate: witness assembly must not corrupt the live frontier.
// extra options (budgets, deadlines) apply to every variant.
func Compaction(ctx context.Context, f adt.Folder, t trace.Trace, drains []int, extra ...check.Option) error {
	mkOpts := func(compact bool) []check.Option {
		return append(append([]check.Option{}, extra...), check.WithCompaction(compact))
	}
	comp := lin.NewSession(ctx, f, mkOpts(true)...)
	ref := lin.NewSession(ctx, f, mkOpts(false)...)
	drainAt := map[int]bool{len(t): true}
	for _, d := range drains {
		if d >= 1 && d <= len(t) {
			drainAt[d] = true
		}
	}
	for k, a := range t {
		if err := comp.Feed(a); err != nil {
			return fmt.Errorf("diffcheck compacted feed %d: %w", k, err)
		}
		if err := ref.Feed(a); err != nil {
			return fmt.Errorf("diffcheck uncompacted feed %d: %w", k, err)
		}
		if cv, rv := comp.Verdict(), ref.Verdict(); cv != rv {
			return disagree(t[:k+1], "prefix %d: compacted=%v, uncompacted=%v", k+1, cv, rv)
		}
		if !drainAt[k+1] {
			continue
		}
		got, err := comp.Result()
		if err != nil {
			return fmt.Errorf("diffcheck compacted drain %d: %w", k+1, err)
		}
		want, err := ref.Result()
		if err != nil {
			return fmt.Errorf("diffcheck uncompacted drain %d: %w", k+1, err)
		}
		if got.OK != want.OK {
			return disagree(t[:k+1], "drain %d: compacted=%v, uncompacted=%v", k+1, got.OK, want.OK)
		}
		one, err := lin.Check(ctx, f, t[:k+1], extra...)
		if err != nil {
			return fmt.Errorf("diffcheck one-shot drain %d: %w", k+1, err)
		}
		if got.OK != one.OK {
			return disagree(t[:k+1], "drain %d: compacted session=%v, one-shot=%v", k+1, got.OK, one.OK)
		}
		if got.OK && len(got.Witness) > 0 {
			if werr := lin.VerifyWitness(f, t[:k+1], got.Witness); werr != nil {
				return disagree(t[:k+1], "drain %d compacted witness invalid: %v", k+1, werr)
			}
		}
	}
	return nil
}

// Fastpath cross-checks the ADT-specialized fast-path checkers
// (DESIGN.md, decision 15) against the exact engines on t: one-shot
// lin.CheckFast vs lin.Check (verdicts must agree; a positive fast
// verdict's witness must satisfy lin.VerifyWitness), then the fast
// session's running verdict against the exact one-shot on every prefix.
// Traces outside the specialized fragments exercise the transparent
// fallback paths and must agree identically. extra options (budgets,
// deadlines) apply to every variant; budgets must be ample — the fast
// path spends none, so only the exact side can exhaust one.
func Fastpath(ctx context.Context, f adt.Folder, t trace.Trace, extra ...check.Option) error {
	// lin.VerifyWitness validates inputs through f.Apply, which rejects
	// grammar-invalid inputs that the search engines happily fold (they
	// never call ValidInput); witnesses are only checkable on the prefix
	// of the trace whose inputs all parse.
	verifiable := make([]bool, len(t)+1)
	verifiable[0] = true
	for i, a := range t {
		verifiable[i+1] = verifiable[i] && (a.Kind != trace.Inv || f.ValidInput(a.Input))
	}
	fast, err := lin.CheckFast(ctx, f, t, extra...)
	if err != nil {
		return fmt.Errorf("diffcheck fastpath one-shot: %w", err)
	}
	exact, err := lin.Check(ctx, f, t, extra...)
	if err != nil {
		return fmt.Errorf("diffcheck exact one-shot: %w", err)
	}
	if fast.OK != exact.OK {
		return disagree(t, "fastpath verdict disagreement: fast=%v (%s), exact=%v (%s)",
			fast.OK, fast.Reason, exact.OK, exact.Reason)
	}
	if fast.OK && len(fast.Witness) > 0 && verifiable[len(t)] {
		if werr := lin.VerifyWitness(f, t, fast.Witness); werr != nil {
			return disagree(t, "fastpath produced an invalid witness: %v", werr)
		}
	}
	sess := lin.NewSessionFast(ctx, f, extra...)
	for k, a := range t {
		if err := sess.Feed(a); err != nil {
			return fmt.Errorf("diffcheck fast session feed %d: %w", k, err)
		}
		got, err := sess.Result()
		if err != nil {
			return fmt.Errorf("diffcheck fast session prefix %d: %w", k+1, err)
		}
		want, err := lin.Check(ctx, f, t[:k+1], extra...)
		if err != nil {
			return fmt.Errorf("diffcheck exact prefix %d: %w", k+1, err)
		}
		if got.OK != want.OK {
			return disagree(t[:k+1], "fast session prefix %d: session=%v (%s), one-shot=%v (%s)",
				k+1, got.OK, got.Reason, want.OK, want.Reason)
		}
		if got.OK && len(got.Witness) > 0 && verifiable[k+1] {
			if werr := lin.VerifyWitness(f, t[:k+1], got.Witness); werr != nil {
				return disagree(t[:k+1], "fast session prefix %d witness invalid: %v", k+1, werr)
			}
		}
	}
	return nil
}

// FastpathSLin cross-checks the SLin(1,n) fast-path session — sound by
// Theorem 2, which collapses SLin(1,n) restricted to sig onto Lin —
// against the exact slin engines: the fast session's running verdict
// after k actions must equal the exact one-shot slin.Check of t[:k+1].
// Traces with switch actions exercise the session's fall-back-and-replay
// path and must agree identically. extra options apply to every variant;
// budgets must be ample — the fast path spends none, so only the exact
// side can exhaust one.
func FastpathSLin(ctx context.Context, f adt.Folder, rinit slin.RInit, n int, t trace.Trace, extra ...check.Option) error {
	sess, err := slin.NewSessionFast(ctx, f, rinit, 1, n, extra...)
	if err != nil {
		return fmt.Errorf("diffcheck slin fast session: %w", err)
	}
	for k, a := range t {
		if err := sess.Feed(a); err != nil {
			return fmt.Errorf("diffcheck slin fast session feed %d: %w", k, err)
		}
		got, err := sess.Result()
		if err != nil {
			return fmt.Errorf("diffcheck slin fast session prefix %d: %w", k+1, err)
		}
		want, err := slin.Check(ctx, f, rinit, 1, n, t[:k+1], extra...)
		if err != nil {
			return fmt.Errorf("diffcheck slin exact prefix %d: %w", k+1, err)
		}
		if got.OK != want.OK {
			return disagree(t[:k+1], "slin fast session prefix %d: session=%v (%s), one-shot=%v (%s)",
				k+1, got.OK, got.Reason, want.OK, want.Reason)
		}
	}
	return nil
}

// SLin cross-checks the SLin engine variants on t: the depth-first
// search and the breadth (session-backed, WithWorkers(2)) engine, each
// with the reducer on and off. All verdicts must agree, every witness of
// the positive depth-first runs must satisfy slin.VerifyWitness, and on
// traces containing abort actions the DEPTH reducer must have pruned
// nothing (it sees the whole trace and disables itself up front; the
// session engine may prune before the first abort arrives and then
// discards the pruned frontiers by an unreduced replay, so its
// cumulative counter stays non-zero by design — the verdict agreement
// assertions cover that path). Relations declaring their Admits
// predicate order-insensitive (slin.OrderInsensitive) keep the reducer
// on across aborts, so for them the pruned-nothing assertion is waived
// and the verdict agreement assertions carry the soundness burden.
func SLin(ctx context.Context, f adt.Folder, rinit slin.RInit, m, n int, t trace.Trace, temporal bool, extra ...check.Option) error {
	hasAbort := false
	for _, a := range t {
		if a.IsAbort(n) {
			hasAbort = true
			break
		}
	}
	if slin.IsOrderInsensitive(rinit) {
		hasAbort = false // the reducer legitimately prunes across aborts
	}
	type outcome struct {
		name string
		res  slin.Result
	}
	var got []outcome
	for _, v := range linMatrix(append(extra, check.WithTemporalAbortOrder(temporal))...) {
		res, err := slin.Check(ctx, f, rinit, m, n, t, v.opts...)
		if err != nil {
			return fmt.Errorf("diffcheck %s: %w", v.name, err)
		}
		if res.OK {
			for _, w := range res.Witnesses {
				if werr := slin.VerifyWitness(f, rinit, m, n, t, w, temporal); werr != nil {
					return disagree(t, "%s produced an invalid witness: %v", v.name, werr)
				}
			}
		}
		if hasAbort && v.name == "depth/por" && res.Pruned != 0 {
			return disagree(t, "%s pruned %d branches on an abort-carrying trace", v.name, res.Pruned)
		}
		got = append(got, outcome{v.name, res})
	}
	base := got[0]
	for _, o := range got[1:] {
		if o.res.OK != base.res.OK {
			return disagree(t, "verdict disagreement (m=%d n=%d temporal=%v): %s=%v, %s=%v",
				m, n, temporal, base.name, base.res.OK, o.name, o.res.OK)
		}
	}
	return nil
}
