package check

import (
	"math/bits"

	"repro/internal/adt"
	"repro/internal/trace"
)

// This file implements the partial-order reduction (POR) vocabulary of
// the lin/slin search engines (DESIGN.md, decision 12): a state-dependent
// independence relation between candidate chain-extension inputs, and the
// sleep sets that prune commuting extension orders so each commuting pair
// is explored in only one order.
//
// Two extension inputs are independent at a chain state when appending
// them in either order reaches the same state AND leaves each input's
// output unchanged — "non-conflicting commit-chain effects". The output
// conditions matter beyond plain state commutation: a chain prefix is
// claimable by a response exactly when its end element carries the
// response's (input, output) pair, so swapping two appended elements must
// preserve the (symbol, output) labelling of every prefix end for the
// claim bijection of decision 12 to exist. Under that relation, swapping
// two adjacent independent elements yields a chain with the same end
// state, the same element multiset and a claimable-prefix set that is a
// bijection preserving end symbols and outputs — which is exactly why
// witnesses survive the reduction.

// Independent reports whether inputs a and b commute at chain state st
// under folder f: appending them in either order reaches the same state,
// and neither changes the other's output. It is irreflexive by
// convention (a branch set never contains the same symbol twice, so
// reflexivity is never consulted); callers pass distinct inputs.
func Independent(f adt.Folder, st adt.State, a, b trace.Value) bool {
	sa := f.Step(st, a)
	sb := f.Step(st, b)
	if f.Step(sa, b) != f.Step(sb, a) {
		return false
	}
	return f.Out(st, a) == f.Out(sb, a) && f.Out(st, b) == f.Out(sa, b)
}

// SleepSet is a sleep set over interned symbols, represented as a 64-bit
// bitset. Symbol spaces of single traces are small (one symbol per
// distinct input), so 64 bits almost always cover them; symbols ≥ 64
// simply never sleep, which loses pruning but never soundness (the
// reduction only ever skips branches, and skipping fewer is always
// sound). The zero value is the empty sleep set.
type SleepSet uint64

// sleepSetBits is the symbol capacity of a SleepSet.
const sleepSetBits = 64

// Has reports whether sym is asleep.
func (s SleepSet) Has(sym trace.Sym) bool {
	return sym < sleepSetBits && s&(1<<sym) != 0
}

// Add returns the set with sym asleep (no-op for symbols ≥ 64).
func (s SleepSet) Add(sym trace.Sym) SleepSet {
	if sym >= sleepSetBits {
		return s
	}
	return s | 1<<sym
}

// FilterIndependent keeps the sleeping symbols that are independent with
// the branch input `in` at chain state st — the sleep set a child node
// inherits after its parent appends `in` (Godefroid's conditional sleep
// set propagation). Dependent symbols wake up: extension orders putting
// them after `in` are genuinely different and must be explored.
//
// It inlines Independent with the branch-constant folder calls
// (Step/Out of `in` at st) hoisted out of the loop — this runs at every
// non-pruned branch of the search hot paths.
func (s SleepSet) FilterIndependent(f adt.Folder, it *trace.Interner, st adt.State, in trace.Value) SleepSet {
	if s == 0 {
		return 0
	}
	sIn := f.Step(st, in)
	outIn := f.Out(st, in)
	var out SleepSet
	for rest := s; rest != 0; rest &= rest - 1 {
		sym := trace.Sym(bits.TrailingZeros64(uint64(rest)))
		a := it.Value(sym)
		sa := f.Step(st, a)
		if f.Step(sa, in) == f.Step(sIn, a) &&
			f.Out(st, a) == f.Out(sIn, a) && outIn == f.Out(sa, in) {
			out |= 1 << sym
		}
	}
	return out
}
