package check

import (
	"math/bits"

	"repro/internal/adt"
	"repro/internal/trace"
)

// This file implements the partial-order reduction (POR) vocabulary of
// the lin/slin search engines (DESIGN.md, decision 12): a state-dependent
// independence relation between candidate chain-extension inputs, and the
// sleep sets that prune commuting extension orders so each commuting pair
// is explored in only one order.
//
// Two extension inputs are independent at a chain state when appending
// them in either order reaches the same state AND leaves each input's
// output unchanged — "non-conflicting commit-chain effects". The output
// conditions matter beyond plain state commutation: a chain prefix is
// claimable by a response exactly when its end element carries the
// response's (input, output) pair, so swapping two appended elements must
// preserve the (symbol, output) labelling of every prefix end for the
// claim bijection of decision 12 to exist. Under that relation, swapping
// two adjacent independent elements yields a chain with the same end
// state, the same element multiset and a claimable-prefix set that is a
// bijection preserving end symbols and outputs — which is exactly why
// witnesses survive the reduction.

// Independent reports whether inputs a and b commute at chain state st
// under folder f: appending them in either order reaches the same state,
// and neither changes the other's output. It is irreflexive by
// convention (a branch set never contains the same symbol twice, so
// reflexivity is never consulted); callers pass distinct inputs.
func Independent(f adt.Folder, st adt.State, a, b trace.Value) bool {
	sa := f.Step(st, a)
	sb := f.Step(st, b)
	if f.Step(sa, b) != f.Step(sb, a) {
		return false
	}
	return f.Out(st, a) == f.Out(sb, a) && f.Out(st, b) == f.Out(sa, b)
}

// FilterIndependent keeps the sleeping symbols that are independent with
// the branch input `in` at chain state st — the sleep set a child node
// inherits after its parent appends `in` (Godefroid's conditional sleep
// set propagation). Dependent symbols wake up: extension orders putting
// them after `in` are genuinely different and must be explored.
//
// stIn and outIn are f.Step(st, in) and f.Out(st, in), precomputed by
// the caller: every branch site needs the pair anyway to push `in` onto
// its chain (the push-variant chain APIs take it), so threading it here
// inlines Independent with the branch-constant folder calls hoisted AND
// stops the reduced searches computing the pair twice per branch — this
// runs at every non-pruned branch of the search hot paths.
func (s SleepSet) FilterIndependent(f adt.Folder, it *trace.Interner, st adt.State, in trace.Value, stIn adt.State, outIn trace.Value) SleepSet {
	if s.Empty() {
		return SleepSet{}
	}
	var out SleepSet
	keep := func(sym trace.Sym) bool {
		a := it.Value(sym)
		sa := f.Step(st, a)
		return f.Step(sa, in) == f.Step(stIn, a) &&
			f.Out(st, a) == f.Out(stIn, a) && outIn == f.Out(sa, in)
	}
	for rest := s.lo; rest != 0; rest &= rest - 1 {
		sym := trace.Sym(bits.TrailingZeros64(rest))
		if keep(sym) {
			out.lo |= 1 << sym
		}
	}
	// Spill words are fresh here (never shared), so building in place is
	// safe; attach them only if a high symbol actually survived.
	var hi []uint64
	any := false
	for w, word := range s.hi {
		for rest := word; rest != 0; rest &= rest - 1 {
			b := bits.TrailingZeros64(rest)
			if keep(trace.Sym(bitsPerWord + w*bitsPerWord + b)) {
				if hi == nil {
					hi = make([]uint64, len(s.hi))
				}
				hi[w] |= 1 << b
				any = true
			}
		}
	}
	if any {
		out.hi = hi
	}
	return out
}
