// Package check hosts the vocabulary shared by the lin and slin
// checkers — the checker API v2 (DESIGN.md, decision 11) — plus a small
// model checker for step systems.
//
// The shared checker surface (opts.go, por.go, frontier.go,
// parallel.go): the three-valued Verdict, the functional Option set
// (WithBudget, WithWorkers, WithWitness, WithMemoLimit, WithPOR,
// WithFeedBudget, ...) resolved into one Settings struct by every
// one-shot check and incremental Session in lin and slin, the
// sleep-set partial-order reduction over chain-extension inputs
// (decision 12), and ExpandFrontier, the deduplicating expansion step
// both packages' breadth (frontier) engines are built on (decision 17).
// Keeping these here, in one place below both checker packages, is what
// guarantees the engines cannot drift apart in semantics.
//
// The model checker (check.go): it explores instruction-level
// interleavings of concurrent processes over shared state and hands
// each complete run's trace (or each reachable state) to an oracle.
// Experiment E6 uses it to validate the §2.5 shared-memory case study
// against the lin/slin checkers and the paper's invariants. Three
// exploration modes:
//
//   - ExhaustiveTraces enumerates every schedule (complete interleaving)
//     of the system and visits each complete run — exact but exponential;
//     practical for two to three clients.
//   - ExhaustiveStates explores the reachable state graph with
//     deduplication and visits every distinct state once — practical for
//     more clients, suitable for state invariants.
//   - RandomTraces samples schedules uniformly at random — a probabilistic
//     complement at sizes exhaustive search cannot reach.
package check

import (
	"errors"
	"math/rand"

	"repro/internal/trace"
)

// System is a clonable step system. The concrete type returned by Clone
// must be the same as the receiver's.
type System[S any] interface {
	// Enabled returns the indices of processes that can step.
	Enabled() []int
	// Step advances process i by one atomic step, mutating the system.
	Step(i int)
	// Clone returns an independent deep copy.
	Clone() S
	// Trace returns the interface-level trace recorded so far.
	Trace() trace.Trace
	// Key canonically encodes the state (excluding the trace).
	Key() string
}

// ErrStop may be returned by visitors to stop exploration early without
// reporting an error to the caller.
var ErrStop = errors.New("check: stop requested")

// Stats reports exploration effort.
type Stats struct {
	// Runs is the number of complete runs visited (trace modes).
	Runs int
	// States is the number of distinct states visited (state mode).
	States int
	// Steps is the total number of process steps executed.
	Steps int
}

// ExhaustiveTraces enumerates all schedules of sys and calls visit with
// each complete run's trace. It returns exploration statistics. A visit
// error aborts the search (ErrStop aborts without error).
func ExhaustiveTraces[S System[S]](sys S, visit func(S) error) (Stats, error) {
	var st Stats
	err := dfsTraces(sys, visit, &st)
	if errors.Is(err, ErrStop) {
		err = nil
	}
	return st, err
}

func dfsTraces[S System[S]](sys S, visit func(S) error, st *Stats) error {
	enabled := sys.Enabled()
	if len(enabled) == 0 {
		st.Runs++
		return visit(sys)
	}
	for idx, i := range enabled {
		next := sys
		if idx < len(enabled)-1 {
			next = sys.Clone() // reuse the original for the last branch
		}
		next.Step(i)
		st.Steps++
		if err := dfsTraces(next, visit, st); err != nil {
			return err
		}
	}
	return nil
}

// ExhaustiveStates explores the reachable state graph of sys with
// deduplication on Key and calls visit once per distinct state (including
// the initial one). Traces are not meaningful across merged paths; the
// visitor receives the system for state inspection only.
//
// Deduplication interns each canonical Key string to a 128-bit digest
// (trace.HashString) and retains only the digest, so the visited set
// costs 16 bytes per state instead of a full state encoding and lookups
// compare fixed-size values (the ROADMAP "model-checker state interning"
// item; same rationale as the checker memo keys of DESIGN.md decision
// 7). A digest collision (~2⁻¹²⁸ per state pair) would silently merge
// two distinct states; ExhaustiveStatesReference retains the exact
// string-keyed exploration, and the property tests assert the two visit
// identical state counts.
func ExhaustiveStates[S System[S]](sys S, visit func(S) error) (Stats, error) {
	seen := map[trace.Digest]struct{}{}
	return exhaustiveStates(sys, visit, func(k string) bool {
		d := trace.HashString(k)
		if _, ok := seen[d]; ok {
			return false
		}
		seen[d] = struct{}{}
		return true
	})
}

// ExhaustiveStatesReference is ExhaustiveStates with the original
// string-keyed visited set, retained as the executable specification of
// the digest-interned exploration.
func ExhaustiveStatesReference[S System[S]](sys S, visit func(S) error) (Stats, error) {
	seen := map[string]bool{}
	return exhaustiveStates(sys, visit, func(k string) bool {
		if seen[k] {
			return false
		}
		seen[k] = true
		return true
	})
}

// exhaustiveStates is the exploration loop; admit reports whether a
// canonical state key is new (and marks it seen).
func exhaustiveStates[S System[S]](sys S, visit func(S) error, admit func(string) bool) (Stats, error) {
	var st Stats
	stack := []S{sys}
	admit(sys.Key())
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		st.States++
		if err := visit(cur); err != nil {
			if errors.Is(err, ErrStop) {
				return st, nil
			}
			return st, err
		}
		for _, i := range cur.Enabled() {
			next := cur.Clone()
			next.Step(i)
			st.Steps++
			if admit(next.Key()) {
				stack = append(stack, next)
			}
		}
	}
	return st, nil
}

// RandomTraces runs n uniformly random schedules of sys (each from a
// fresh clone) and calls visit with each complete run.
func RandomTraces[S System[S]](sys S, n int, seed int64, visit func(S) error) (Stats, error) {
	var st Stats
	rng := rand.New(rand.NewSource(seed))
	for run := 0; run < n; run++ {
		cur := sys.Clone()
		for {
			enabled := cur.Enabled()
			if len(enabled) == 0 {
				break
			}
			cur.Step(enabled[rng.Intn(len(enabled))])
			st.Steps++
		}
		st.Runs++
		if err := visit(cur); err != nil {
			if errors.Is(err, ErrStop) {
				return st, nil
			}
			return st, err
		}
	}
	return st, nil
}
