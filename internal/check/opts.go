package check

// This file defines the option and verdict vocabulary of the checker API
// v2 (DESIGN.md, decision 11): one functional-option set shared by the
// lin and slin checkers (one-shot and incremental Session forms) in place
// of the near-duplicate per-package Options structs of the v1 surface.

// Verdict is a three-valued checker outcome. The zero value is Unknown,
// which a checker reports only alongside an error (budget or memo-limit
// exhaustion, context cancellation) — never as a decided answer.
type Verdict int

const (
	// Unknown means the check did not run to completion (budget, memo
	// limit, cancellation); a larger budget may decide it.
	Unknown Verdict = iota
	// Linearizable means the property holds (Lin, Lin* or SLin(m,n),
	// depending on the check's mode).
	Linearizable
	// NotLinearizable means the property was refuted.
	NotLinearizable
)

// String returns the lowercase verdict name.
func (v Verdict) String() string {
	switch v {
	case Linearizable:
		return "linearizable"
	case NotLinearizable:
		return "not linearizable"
	default:
		return "unknown"
	}
}

// Settings is the resolved option set of one checker call or session.
// Callers normally build it through NewSettings and the With* options;
// the zero value of each field selects the documented default.
type Settings struct {
	// Budget bounds the total number of search nodes per one-shot check
	// (shared across all init-interpretation combinations for SLin) or
	// per Session lifetime (cumulative across Feed calls); 0 means the
	// checker's DefaultBudget. A search node is one recursive step of
	// the search, uniform across checkers and engines.
	Budget int
	// Workers selects intra-check parallelism. 0 or 1 runs the default
	// sequential depth-first search. n > 1 switches the check to the
	// breadth (frontier) engine — the same engine Sessions use — and
	// expands each frontier with n workers over a sharded memo set, so
	// one pathological trace uses all cores. Batch checkers (CheckAll)
	// interpret Workers differently: there it sizes the worker pool that
	// shards independent traces, 0 meaning GOMAXPROCS, and each
	// per-trace search stays sequential.
	Workers int
	// Witness controls whether positive verdicts assemble linearization
	// witnesses. NewSettings defaults it to true; WithWitness(false)
	// skips witness assembly (the SLin breadth engine never assembles
	// witnesses regardless).
	Witness bool
	// MemoLimit bounds the checker's memoization structures, in entries;
	// 0 means unlimited. The depth-first engines stop inserting new memo
	// entries beyond the limit (search stays exact, possibly slower);
	// the breadth engines report ErrMemo when a frontier alone exceeds
	// it, since frontier configurations are live state that cannot be
	// dropped soundly.
	MemoLimit int
	// TemporalAbortOrder selects the temporal variant of the SLin
	// checker's Abort-Order (slin package documentation); ignored by the
	// lin checkers.
	TemporalAbortOrder bool
	// POR enables the sleep-set partial-order reduction over the chain
	// extension branch sets of the lin and SLin engines (DESIGN.md,
	// decision 12): commuting extension inputs are explored in only one
	// order. NewSettings defaults it to true; WithPOR(false) retains the
	// unreduced reference searches. The reduction is verdict- and
	// witness-preserving; it changes only Nodes (fewer) and Pruned
	// (skipped branches). The classical checker has no extension branch
	// structure and ignores it.
	POR bool
	// Exact forces the exact search engines on entry points that would
	// otherwise dispatch to an ADT-specialized fast-path checker
	// (DESIGN.md, decision 15): lin.CheckFast, the fast Sessions and the
	// speclin facade honour it; the plain lin/slin entry points are
	// always exact and ignore it. Off by default.
	Exact bool
	// Compact enables frontier compaction in the breadth (frontier)
	// engines (DESIGN.md, decision 17): configurations drop
	// fully-claimed chain prefixes from storage, keeping a rolling
	// digest and element summary so memo identity and availability stay
	// exact, which bounds a streaming Session's memory by the
	// overlap/alphabet of the trace instead of its length. NewSettings
	// defaults it to true; WithCompaction(false) retains the uncompacted
	// reference representation, which the differential tests cross-check
	// against the compacted one. Verdict-preserving by construction; the
	// one-shot depth engines have no frontier and ignore it.
	Compact bool
	// FeedBudget switches a Session's node budget from per-session
	// lifetime to per-Feed: the spend counter is rebased at each Feed, so
	// one heavy-tailed action cannot starve every later feed into
	// spurious ErrBudget (the E16 `online_speedup_is_lower_bound`
	// caveat). A single Feed exceeding the budget still returns the
	// terminal ErrBudget. Off by default (lifetime budget); one-shot
	// checks ignore it.
	FeedBudget bool
}

// Option mutates one Settings field; checker entry points accept a
// variadic ...Option.
type Option func(*Settings)

// NewSettings resolves opts over the defaults (Witness, POR and Compact
// on, everything else zero).
func NewSettings(opts ...Option) Settings {
	s := Settings{Witness: true, POR: true, Compact: true}
	for _, o := range opts {
		if o != nil {
			o(&s)
		}
	}
	return s
}

// BudgetOr returns the configured budget, or def when unset.
func (s Settings) BudgetOr(def int) int {
	if s.Budget <= 0 {
		return def
	}
	return s.Budget
}

// WithBudget bounds the search to n nodes (see Settings.Budget).
func WithBudget(n int) Option { return func(s *Settings) { s.Budget = n } }

// WithWorkers sets intra-check parallelism (see Settings.Workers): n > 1
// runs the breadth engine with n workers inside a single check; 0 or 1
// keeps the sequential depth-first engine. Batch checkers use it to size
// the pool sharding independent traces (0 = GOMAXPROCS).
func WithWorkers(n int) Option { return func(s *Settings) { s.Workers = n } }

// WithWitness toggles witness assembly on positive verdicts.
func WithWitness(on bool) Option { return func(s *Settings) { s.Witness = on } }

// WithMemoLimit bounds the memoization structures to n entries (see
// Settings.MemoLimit).
func WithMemoLimit(n int) Option { return func(s *Settings) { s.MemoLimit = n } }

// WithTemporalAbortOrder selects the temporal Abort-Order variant of the
// SLin checker.
func WithTemporalAbortOrder(on bool) Option {
	return func(s *Settings) { s.TemporalAbortOrder = on }
}

// WithPOR toggles the sleep-set partial-order reduction (see
// Settings.POR; default on). WithPOR(false) runs the unreduced reference
// search — the differential tests cross-check the two on every trace
// shape.
func WithPOR(on bool) Option { return func(s *Settings) { s.POR = on } }

// WithExact forces the exact search engines on entry points that would
// otherwise dispatch to an ADT-specialized fast-path checker (see
// Settings.Exact; DESIGN.md, decision 15).
func WithExact(on bool) Option { return func(s *Settings) { s.Exact = on } }

// WithCompaction toggles frontier compaction in the breadth engines (see
// Settings.Compact; default on). WithCompaction(false) runs the
// uncompacted reference representation — the differential tests
// cross-check the two on every trace shape.
func WithCompaction(on bool) Option { return func(s *Settings) { s.Compact = on } }

// WithFeedBudget switches a Session's budget to per-Feed instead of
// per-session lifetime (see Settings.FeedBudget; default off).
func WithFeedBudget(on bool) Option { return func(s *Settings) { s.FeedBudget = on } }
