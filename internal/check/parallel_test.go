package check

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestParallelOrderAndCompleteness(t *testing.T) {
	items := make([]int, 1000)
	for i := range items {
		items[i] = i
	}
	for _, workers := range []int{0, 1, 3, 64} {
		out, err := Parallel(context.Background(), items, workers, func(_ int, x int) (int, error) {
			return x * 2, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, r := range out {
			if r != i*2 {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, r, i*2)
			}
		}
	}
}

func TestParallelEmpty(t *testing.T) {
	out, err := Parallel(context.Background(), nil, 0, func(_ int, x int) (int, error) { return x, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("got %v, %v", out, err)
	}
}

func TestParallelStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	items := make([]int, 500)
	_, err := Parallel(context.Background(), items, 4, func(i int, _ int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, boom
		}
		time.Sleep(50 * time.Microsecond)
		return 0, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("expected boom, got %v", err)
	}
	// The pool stops scheduling after the failure; in-flight items may
	// finish, but the bulk of the batch must not run.
	if n := ran.Load(); n == int64(len(items)) {
		t.Fatalf("all %d items ran despite early error", n)
	}
}

func TestWorkersDefault(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must default to at least one worker")
	}
	if Workers(7) != 7 {
		t.Fatal("explicit worker count must be respected")
	}
}

func TestParallelStopsOnCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	items := make([]int, 500)
	_, err := Parallel(ctx, items, 4, func(i int, _ int) (int, error) {
		if ran.Add(1) == 1 {
			cancel()
		}
		time.Sleep(50 * time.Microsecond)
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if n := ran.Load(); n == int64(len(items)) {
		t.Fatalf("all %d items ran despite cancellation", n)
	}
}

func TestParallelCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := 0
	_, err := Parallel(ctx, []int{1, 2, 3}, 1, func(_ int, x int) (int, error) {
		ran++
		return x, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
	if ran != 0 {
		t.Fatalf("%d items ran on a pre-cancelled context", ran)
	}
}

func TestShardedSet(t *testing.T) {
	s := NewShardedSet(func(k uint64) uint64 { return k })
	for i := uint64(0); i < 1000; i++ {
		if !s.TryInsert(i) {
			t.Fatalf("fresh key %d reported duplicate", i)
		}
		if s.TryInsert(i) {
			t.Fatalf("duplicate key %d reported fresh", i)
		}
	}
	if s.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", s.Len())
	}
}

// TestShardedSetClaimStress exercises the claim accounting with far more
// workers than GOMAXPROCS — the oversubscribed regime no other test
// reached (ISSUE 4 satellite). Every key is contended by every worker;
// exactly one claim per key may win, and Len must equal the distinct key
// count once the workers join. Run under -race in CI, this also pins the
// absence of data races in TryInsert's lock-then-count protocol.
func TestShardedSetClaimStress(t *testing.T) {
	const keys = 5000
	workers := 4*runtime.GOMAXPROCS(0) + 7
	s := NewShardedSet(func(k uint64) uint64 { return k * 0x9e3779b97f4a7c15 })
	var wins atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			// Each worker walks the key space at its own offset so lock
			// stripes are hit in different orders.
			for i := 0; i < keys; i++ {
				k := uint64((i + w*37) % keys)
				if s.TryInsert(k) {
					wins.Add(1)
				}
			}
		}(w)
	}
	close(start)
	wg.Wait()
	if wins.Load() != keys {
		t.Fatalf("%d claims won for %d distinct keys (duplicate or lost claims)", wins.Load(), keys)
	}
	if s.Len() != keys {
		t.Fatalf("Len = %d after join, want %d", s.Len(), keys)
	}
	// Post-join, every key is a duplicate.
	for i := uint64(0); i < 100; i++ {
		if s.TryInsert(i) {
			t.Fatalf("key %d claimed twice", i)
		}
	}
}
