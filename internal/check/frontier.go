package check

import (
	"context"
	"errors"

	"repro/internal/trace"
)

// ErrFrontierLimit is returned by ExpandFrontier when a successor
// frontier exceeds Settings.MemoLimit; the breadth engines map it to
// their package-level ErrMemo sentinels.
var ErrFrontierLimit = errors.New("check: frontier exceeded memo limit")

// ExpandFrontier is the shared expansion step of the breadth (frontier)
// engines (lin.Session, slin.Session): it replaces a frontier by its
// successor set, deduplicated by configuration digest — over a sharded
// claim set across Settings.Workers workers when parallel, a plain map
// otherwise. spend charges search nodes (called once per source
// configuration); expandOne emits every successor of one configuration.
// merge, when non-nil, combines a duplicate emission into the kept
// configuration of the same digest (the DAG-level sleep-set
// intersection of decision 17) and may recycle the duplicate; it runs
// on the sequential path only — the parallel path's sharded claim set
// keeps first-insert-wins semantics, and its callers emit
// merge-neutral configurations (empty carried sleep sets). Keeping the
// concurrency, deduplication and memo-limit semantics here guarantees
// the two engines cannot drift.
func ExpandFrontier[C any](ctx context.Context, frontier []C, set Settings,
	spend func(int) error, dig func(C) trace.Digest,
	merge func(kept, dup C) C,
	expandOne func(c C, emit func(C)) error) ([]C, error) {

	var next []C
	if set.Workers > 1 && len(frontier) > 1 {
		seen := NewShardedSet(func(d trace.Digest) uint64 { return d[0] })
		parts, err := Parallel(ctx, frontier, set.Workers, func(_ int, c C) ([]C, error) {
			if err := spend(1); err != nil {
				return nil, err
			}
			var local []C
			err := expandOne(c, func(n C) {
				if seen.TryInsert(dig(n)) {
					local = append(local, n)
				}
			})
			return local, err
		})
		if err != nil {
			return nil, err
		}
		for _, p := range parts {
			next = append(next, p...)
		}
	} else {
		seen := make(map[trace.Digest]int, len(frontier))
		for _, c := range frontier {
			if err := spend(1); err != nil {
				return nil, err
			}
			err := expandOne(c, func(n C) {
				d := dig(n)
				if at, dup := seen[d]; dup {
					if merge != nil {
						next[at] = merge(next[at], n)
					}
					return
				}
				seen[d] = len(next)
				next = append(next, n)
			})
			if err != nil {
				return nil, err
			}
		}
	}
	if set.MemoLimit > 0 && len(next) > set.MemoLimit {
		return nil, ErrFrontierLimit
	}
	return next, nil
}
