package mpcons_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/lin"
	"repro/internal/mpcons"
	"repro/internal/msgnet"
	"repro/internal/paxos"
	"repro/internal/quorum"
	"repro/internal/slin"
	"repro/internal/trace"
)

func procIDs(prefix string, n int) []msgnet.ProcID {
	ids := make([]msgnet.ProcID, n)
	for i := range ids {
		ids[i] = msgnet.ProcID(fmt.Sprintf("%s%d", prefix, i+1))
	}
	return ids
}

func buildQB(t *testing.T, cfg msgnet.Config, nClients, nServers int) (*msgnet.Network, *mpcons.Object) {
	t.Helper()
	w := msgnet.New(cfg)
	obj, err := mpcons.Build(w, procIDs("c", nClients), procIDs("s", nServers),
		quorum.Protocol{Timeout: 6, Retransmit: 4}, paxos.Protocol{})
	if err != nil {
		t.Fatal(err)
	}
	return w, obj
}

// checkObject validates the composed object's run: the switch-free
// projection of its trace is linearizable, phase projections satisfy
// their invariants, and all decisions agree on a proposed value.
func checkObject(t *testing.T, obj *mpcons.Object) {
	t.Helper()
	tr := obj.Trace()
	if !tr.PhaseWellFormed(1, 3) {
		t.Fatalf("trace not (1,3)-well-formed: %v", tr)
	}
	plain := tr.Project(func(a trace.Action) bool { return a.Kind != trace.Swi })
	res, err := lin.Check(context.Background(), adt.Consensus{}, plain)
	if err != nil {
		t.Fatalf("lin.Check: %v", err)
	}
	if !res.OK {
		t.Fatalf("composed trace not linearizable: %s\n%v", res.Reason, tr)
	}
	if err := slin.FirstPhaseInvariants(tr.ProjectSig(1, 2), 1, 2); err != nil {
		t.Fatalf("quorum projection: %v", err)
	}
	if err := slin.SecondPhaseInvariants(tr.ProjectSig(2, 3), 2, 3); err != nil {
		t.Fatalf("backup projection: %v", err)
	}
	// All decisions agree.
	results := obj.Results()
	for _, r := range results[1:] {
		if r.Decision != results[0].Decision {
			t.Fatalf("split decisions: %v", results)
		}
	}
}

// E1 shape: fault-free, contention-free — the fast path decides in
// exactly 2 message delays.
func TestFastPathTwoDelays(t *testing.T) {
	_, obj := buildQB(t, msgnet.Config{Seed: 1}, 1, 3)
	obj.ProposeAt("c1", "v", 0)
	obj.Run(1000)
	rs := obj.Results()
	if len(rs) != 1 {
		t.Fatalf("results: %v", rs)
	}
	if rs[0].Latency() != 2 {
		t.Fatalf("fast-path latency = %d message delays, want 2", rs[0].Latency())
	}
	if rs[0].Phase != 1 || rs[0].Switches != 0 {
		t.Fatalf("decision did not come from the fast path: %+v", rs[0])
	}
	if rs[0].Decision != "v" {
		t.Fatalf("decision = %q", rs[0].Decision)
	}
	checkObject(t, obj)
}

// Sequential (contention-free) proposals from several clients all take
// the fast path; later clients decide the first value.
func TestSequentialClientsFastPath(t *testing.T) {
	_, obj := buildQB(t, msgnet.Config{Seed: 2}, 3, 3)
	obj.ProposeAt("c1", "a", 0)
	obj.ProposeAt("c2", "b", 10)
	obj.ProposeAt("c3", "c", 20)
	obj.Run(1000)
	rs := obj.Results()
	if len(rs) != 3 {
		t.Fatalf("results: %v", rs)
	}
	for _, r := range rs {
		if r.Latency() != 2 || r.Phase != 1 {
			t.Fatalf("sequential op missed the fast path: %+v", r)
		}
		if r.Decision != "a" {
			t.Fatalf("decision = %q, want first value", r.Decision)
		}
	}
	checkObject(t, obj)
}

// Contention under jittered delays: concurrent proposals may reach
// servers in different orders; conflicting accepts force switches to
// Backup, and the composition still decides a single value.
func TestContentionFallsBackToBackup(t *testing.T) {
	sawSwitch := false
	for seed := int64(1); seed <= 30; seed++ {
		_, obj := buildQB(t, msgnet.Config{Seed: seed, MinDelay: 1, MaxDelay: 4}, 3, 3)
		obj.ProposeAt("c1", "a", 0)
		obj.ProposeAt("c2", "b", 0)
		obj.ProposeAt("c3", "c", 1)
		obj.Run(5000)
		rs := obj.Results()
		if len(rs) != 3 {
			t.Fatalf("seed %d: only %d results: %v", seed, len(rs), rs)
		}
		for _, r := range rs {
			if r.Switches > 0 {
				sawSwitch = true
			}
		}
		checkObject(t, obj)
	}
	if !sawSwitch {
		t.Fatal("no seed produced contention switches; experiment vacuous")
	}
}

// Crash faults: with a crashed server the fast path cannot complete
// (accepts from ALL servers are required), so clients time out, switch
// with a witnessed accept value, and Backup decides.
func TestServerCrashFallsBackToBackup(t *testing.T) {
	w, obj := buildQB(t, msgnet.Config{Seed: 3}, 2, 3)
	w.Crash("s3", 0) // crash before any proposal
	obj.ProposeAt("c1", "a", 1)
	obj.ProposeAt("c2", "b", 1)
	obj.Run(5000)
	rs := obj.Results()
	if len(rs) != 2 {
		t.Fatalf("results: %v", rs)
	}
	for _, r := range rs {
		if r.Phase != 2 || r.Switches != 1 {
			t.Fatalf("operation did not fall back: %+v", r)
		}
	}
	checkObject(t, obj)
}

// A crashed CLIENT must not block others (no agreement needed to switch).
func TestClientCrashDoesNotBlockOthers(t *testing.T) {
	w, obj := buildQB(t, msgnet.Config{Seed: 4, MinDelay: 1, MaxDelay: 3}, 3, 3)
	obj.ProposeAt("c1", "a", 0)
	obj.ProposeAt("c2", "b", 0)
	obj.ProposeAt("c3", "c", 0)
	w.Crash("c1", 2) // mid-protocol
	obj.Run(5000)
	rs := obj.Results()
	// c2 and c3 must complete (c1 may or may not have).
	done := map[msgnet.ProcID]bool{}
	for _, r := range rs {
		done[r.Client] = true
	}
	if !done["c2"] || !done["c3"] {
		t.Fatalf("surviving clients blocked: %v", rs)
	}
	// Agreement among completed ops.
	for _, r := range rs[1:] {
		if r.Decision != rs[0].Decision {
			t.Fatalf("split decisions: %v", rs)
		}
	}
}

// Paxos safety and composed-object linearizability under adversarial
// conditions: random delays, 10% loss, duplication, and a crashed
// minority of servers — across many seeds.
func TestAdversarialSeeds(t *testing.T) {
	seeds := int64(40)
	if testing.Short() {
		seeds = 10
	}
	for seed := int64(1); seed <= seeds; seed++ {
		cfg := msgnet.Config{Seed: seed, MinDelay: 1, MaxDelay: 5, DropProb: 0.10, DupProb: 0.05}
		w, obj := buildQB(t, cfg, 3, 5)
		w.Crash("s1", 3)
		w.Crash("s2", 9)
		obj.ProposeAt("c1", "a", 0)
		obj.ProposeAt("c2", "b", 2)
		obj.ProposeAt("c3", "c", 4)
		obj.Run(100000)
		rs := obj.Results()
		if len(rs) != 3 {
			t.Fatalf("seed %d: incomplete: %d/%d ops decided (liveness under minority crash)",
				seed, len(rs), 3)
		}
		checkObject(t, obj)
	}
}

// Repeated operations: clients run several consensus-like proposals in
// sequence on the same single-shot object; later proposals must decide
// the established value (this exercises repeated inputs and the Ready
// client re-invoking).
func TestClientsReinvoke(t *testing.T) {
	_, obj := buildQB(t, msgnet.Config{Seed: 5}, 2, 3)
	obj.ProposeAt("c1", "a", 0)
	obj.ProposeAt("c2", "b", 5)
	obj.ProposeAt("c1", "x", 10)
	obj.ProposeAt("c2", "y", 15)
	obj.Run(5000)
	rs := obj.Results()
	if len(rs) != 4 {
		t.Fatalf("results: %v", rs)
	}
	for _, r := range rs {
		if r.Decision != "a" {
			t.Fatalf("decision drifted: %+v", r)
		}
	}
	checkObject(t, obj)
}

// A network partition separating a client from one server forces that
// client onto the backup path while a majority remains reachable; healing
// the partition restores the fast path for later operations.
func TestPartitionForcesFallback(t *testing.T) {
	w, obj := buildQB(t, msgnet.Config{Seed: 6}, 1, 3)
	w.Block("c1", "s3")
	w.Block("s3", "c1")
	obj.ProposeAt("c1", "a", 0)
	// Heal before the second operation.
	w.At(40, func() {
		w.Unblock("c1", "s3")
		w.Unblock("s3", "c1")
	})
	obj.ProposeAt("c1", "b", 50)
	obj.Run(100000)
	rs := obj.Results()
	if len(rs) != 2 {
		t.Fatalf("results: %v", rs)
	}
	if rs[0].Phase != 2 {
		t.Fatalf("partitioned op should use the backup: %+v", rs[0])
	}
	if rs[1].Phase != 2 {
		// After switching, the client stays in the backup phase for later
		// operations (phases are never re-entered, §5.1) — the heal shows
		// in latency, not in the phase.
		t.Fatalf("post-switch ops stay in the backup phase: %+v", rs[1])
	}
	checkObject(t, obj)
}

// The SLin checker accepts the Quorum projection on conforming schedules
// (temporal Abort-Order; see package slin), and the Backup projection
// unconditionally.
func TestPhaseProjectionsSpeculativelyLinearizable(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		_, obj := buildQB(t, msgnet.Config{Seed: seed, MinDelay: 1, MaxDelay: 4}, 3, 3)
		obj.ProposeAt("c1", "a", 0)
		obj.ProposeAt("c2", "b", 0)
		obj.ProposeAt("c3", "c", 2)
		obj.Run(5000)
		tr := obj.Trace()
		first := tr.ProjectSig(1, 2)
		res, err := slin.Check(context.Background(), adt.Consensus{}, slin.ConsensusRInit{}, 1, 2, first,
			check.WithTemporalAbortOrder(true))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.OK {
			t.Fatalf("seed %d: quorum projection not SLin: %s\n%v", seed, res.Reason, first)
		}
		second := tr.ProjectSig(2, 3)
		res, err = slin.Check(context.Background(), adt.Consensus{}, slin.ConsensusRInit{}, 2, 3, second)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !res.OK {
			t.Fatalf("seed %d: backup projection not SLin: %s\n%v", seed, res.Reason, second)
		}
	}
}
