// Package mpcons composes message-passing consensus speculation phases
// inside the msgnet simulator — the protocol-level counterpart of
// core.Composer for the paper's first case study (§2.1).
//
// An object consists of client processes and server processes. Each
// speculation phase contributes a client-side component to every client
// and a server-side component to every server; messages are enveloped
// with their phase index so phases never see each other's traffic, and
// the only information that crosses a phase boundary is the switch value
// a client carries when it aborts — the paper's black-box composition
// rule, enforced by construction.
//
// The object records the interface-level trace (inv/res/swi actions,
// numbered as in §5.1) for post-hoc checking by packages lin and slin.
package mpcons

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/adt"
	"repro/internal/core"
	"repro/internal/msgnet"
	"repro/internal/trace"
)

// ClientEnv is the interface a client-side phase component uses to act.
// All methods must be called from within simulator callbacks.
type ClientEnv interface {
	// Self returns this client's process ID.
	Self() msgnet.ProcID
	// ClientIndex returns this client's index among all clients (for
	// building unique ballot numbers and similar).
	ClientIndex() int
	// Clients returns all client process IDs.
	Clients() []msgnet.ProcID
	// Servers returns all server process IDs.
	Servers() []msgnet.ProcID
	// Send sends a payload to one process, enveloped for this phase.
	Send(to msgnet.ProcID, payload any)
	// Broadcast sends a payload to all servers.
	Broadcast(payload any)
	// SetTimer (re)arms a phase-local timer.
	SetTimer(name string, d msgnet.Time)
	// CancelTimer cancels a phase-local timer.
	CancelTimer(name string)
	// Now returns current virtual time.
	Now() msgnet.Time
	// Decide resolves the client's pending operation with a decision.
	// Ignored if the client has no pending operation in this phase.
	Decide(v trace.Value)
	// SwitchTo aborts the client's pending operation to the next phase
	// with switch value sv. Ignored if not pending in this phase.
	SwitchTo(sv trace.Value)
}

// ClientPhase is the client-side component of one phase on one client.
type ClientPhase interface {
	// Propose starts the phase for a fresh proposal (first phase only).
	Propose(v trace.Value)
	// SwitchIn enters the phase with a pending proposal value and the
	// switch value from the previous phase.
	SwitchIn(pending trace.Value, sv trace.Value)
	// OnMessage delivers a phase message.
	OnMessage(from msgnet.ProcID, payload any)
	// OnTimer fires a phase-local timer.
	OnTimer(name string)
}

// ServerEnv is the interface a server-side phase component uses to act.
type ServerEnv interface {
	Self() msgnet.ProcID
	Clients() []msgnet.ProcID
	Servers() []msgnet.ProcID
	Send(to msgnet.ProcID, payload any)
	SetTimer(name string, d msgnet.Time)
	Now() msgnet.Time
}

// ServerPhase is the server-side component of one phase on one server.
type ServerPhase interface {
	OnMessage(from msgnet.ProcID, payload any)
	OnTimer(name string)
}

// PhaseProtocol builds the per-process components of one phase.
type PhaseProtocol interface {
	Name() string
	NewClient(env ClientEnv) ClientPhase
	NewServer(env ServerEnv) ServerPhase
}

// Durable is optionally implemented by server phase components whose
// protocol state must survive crash–recovery. Snapshot captures the
// component's complete state as an opaque value; Restore rebuilds a
// freshly constructed component from one. A host that models durable
// storage snapshots after every delivered message — within the same
// atomic simulator event, i.e. write-ahead with respect to anything the
// component sent — and restores on restart, so a recovered component is
// indistinguishable from one that merely paused.
type Durable interface {
	Snapshot() any
	Restore(snap any)
}

// BallotTracker is optionally implemented by client phase components
// that burn through a totally ordered ballot/round space (Paxos
// proposers). A host that abandons an in-flight component and starts a
// fresh one for the same consensus instance — a client-side retry —
// MUST carry the old component's Round into the new component's
// SetRoundFloor: two proposers of the same client reusing a ballot can
// split it across two values and break agreement.
type BallotTracker interface {
	// Round returns the highest round this component has used.
	Round() int64
	// SetRoundFloor makes the component start above r.
	SetRoundFloor(r int64)
}

// envelope tags protocol messages with their phase index.
type envelope struct {
	phase   int
	payload any
}

// OpResult describes one completed operation.
type OpResult struct {
	Client   msgnet.ProcID
	Value    trace.Value // proposed consensus value
	Decision trace.Value // decided consensus value
	Start    msgnet.Time
	End      msgnet.Time
	// Phase is the 1-based phase the decision came from.
	Phase int
	// Switches is the number of phase switches the operation performed.
	Switches int
}

// Latency returns the operation's latency in message delays (virtual time
// units under unit delay).
func (r OpResult) Latency() msgnet.Time { return r.End - r.Start }

// Object is a composed speculative consensus object running on a network.
type Object struct {
	net     *msgnet.Network
	rec     *core.Recorder
	protos  []PhaseProtocol
	clients []msgnet.ProcID
	servers []msgnet.ProcID
	drivers map[msgnet.ProcID]*clientDriver

	results []OpResult
}

// Build wires clients, servers and phases into net. Client and server
// process IDs must be distinct.
func Build(net *msgnet.Network, clients, servers []msgnet.ProcID, protos ...PhaseProtocol) (*Object, error) {
	if len(protos) == 0 {
		return nil, fmt.Errorf("mpcons: need at least one phase protocol")
	}
	if len(clients) == 0 || len(servers) == 0 {
		return nil, fmt.Errorf("mpcons: need clients and servers")
	}
	o := &Object{
		net:     net,
		rec:     core.NewRecorder(),
		protos:  protos,
		clients: clients,
		servers: servers,
		drivers: map[msgnet.ProcID]*clientDriver{},
	}
	for i, c := range clients {
		d := &clientDriver{obj: o, id: c, index: i}
		o.drivers[c] = d
		net.AddNode(c, d)
	}
	for _, s := range servers {
		d := &serverDriver{obj: o, id: s}
		net.AddNode(s, d)
	}
	return o, nil
}

// ProposeAt schedules client c to propose consensus value v at time t.
// The client must not have an operation in flight at that time (clients
// are sequential); violations surface as recorder well-formedness
// failures in checks.
func (o *Object) ProposeAt(c msgnet.ProcID, v trace.Value, t msgnet.Time) {
	o.net.At(t, func() { o.drivers[c].startOp(v) })
}

// Run advances the simulation.
func (o *Object) Run(maxTime msgnet.Time) msgnet.Time { return o.net.Run(maxTime) }

// Trace returns the interface-level trace recorded so far.
func (o *Object) Trace() trace.Trace { return o.rec.Trace() }

// Results returns completed operations in completion order.
func (o *Object) Results() []OpResult { return append([]OpResult{}, o.results...) }

// clientDriver hosts a client's phase components and mediates switching.
type clientDriver struct {
	obj   *Object
	id    msgnet.ProcID
	index int
	node  *msgnet.Node
	comps []ClientPhase

	phase   int // index of the phase the client currently executes in
	pending bool
	opSeq   int
	current OpResult
	input   trace.Value // tagged ADT input of the pending operation
}

func (d *clientDriver) Init(n *msgnet.Node) {
	d.node = n
	d.comps = make([]ClientPhase, len(d.obj.protos))
	for k, p := range d.obj.protos {
		d.comps[k] = p.NewClient(&clientEnv{driver: d, phase: k})
	}
}

func (d *clientDriver) startOp(v trace.Value) {
	if d.pending {
		// A sequential client cannot have two operations in flight; drop
		// the proposal and record nothing (workloads schedule correctly).
		return
	}
	d.opSeq++
	d.pending = true
	d.input = adt.Tag(adt.ProposeInput(v), string(d.id)+"#"+strconv.Itoa(d.opSeq))
	d.current = OpResult{Client: d.id, Value: v, Start: d.node.Now()}
	d.obj.rec.Record(trace.Invoke(trace.ClientID(d.id), d.phase+1, d.input))
	d.comps[d.phase].Propose(v)
}

func (d *clientDriver) decide(phase int, v trace.Value) {
	if !d.pending || phase != d.phase {
		return // stale callback from an older phase
	}
	d.pending = false
	d.current.Decision = v
	d.current.End = d.node.Now()
	d.current.Phase = phase + 1
	d.obj.rec.Record(trace.Response(trace.ClientID(d.id), d.phase+1, d.input, adt.DecideOutput(v)))
	d.obj.results = append(d.obj.results, d.current)
}

func (d *clientDriver) switchTo(phase int, sv trace.Value) {
	if !d.pending || phase != d.phase {
		return
	}
	if d.phase+1 >= len(d.comps) {
		panic(fmt.Sprintf("mpcons: last phase %s aborted on %s",
			d.obj.protos[d.phase].Name(), d.id))
	}
	d.current.Switches++
	d.obj.rec.Record(trace.Switch(trace.ClientID(d.id), d.phase+2, d.input, sv))
	d.phase++
	d.comps[d.phase].SwitchIn(d.current.Value, sv)
}

func (d *clientDriver) OnMessage(n *msgnet.Node, from msgnet.ProcID, payload any) {
	env, ok := payload.(envelope)
	if !ok || env.phase < 0 || env.phase >= len(d.comps) {
		return
	}
	d.comps[env.phase].OnMessage(from, env.payload)
}

func (d *clientDriver) OnTimer(n *msgnet.Node, name string) {
	k, rest, ok := splitTimer(name)
	if !ok || k < 0 || k >= len(d.comps) {
		return
	}
	d.comps[k].OnTimer(rest)
}

// clientEnv adapts a driver to one phase's view.
type clientEnv struct {
	driver *clientDriver
	phase  int
}

func (e *clientEnv) Self() msgnet.ProcID      { return e.driver.id }
func (e *clientEnv) ClientIndex() int         { return e.driver.index }
func (e *clientEnv) Clients() []msgnet.ProcID { return e.driver.obj.clients }
func (e *clientEnv) Servers() []msgnet.ProcID { return e.driver.obj.servers }
func (e *clientEnv) Now() msgnet.Time         { return e.driver.node.Now() }
func (e *clientEnv) Decide(v trace.Value)     { e.driver.decide(e.phase, v) }
func (e *clientEnv) SwitchTo(sv trace.Value)  { e.driver.switchTo(e.phase, sv) }
func (e *clientEnv) CancelTimer(name string)  { e.driver.node.CancelTimer(timerName(e.phase, name)) }
func (e *clientEnv) Send(to msgnet.ProcID, p any) {
	e.driver.node.Send(to, envelope{phase: e.phase, payload: p})
}
func (e *clientEnv) Broadcast(p any) {
	for _, s := range e.driver.obj.servers {
		e.Send(s, p)
	}
}
func (e *clientEnv) SetTimer(name string, d msgnet.Time) {
	e.driver.node.SetTimer(timerName(e.phase, name), d)
}

// serverDriver hosts a server's phase components.
type serverDriver struct {
	obj   *Object
	id    msgnet.ProcID
	node  *msgnet.Node
	comps []ServerPhase
}

func (d *serverDriver) Init(n *msgnet.Node) {
	d.node = n
	d.comps = make([]ServerPhase, len(d.obj.protos))
	for k, p := range d.obj.protos {
		d.comps[k] = p.NewServer(&serverEnv{driver: d, phase: k})
	}
}

func (d *serverDriver) OnMessage(n *msgnet.Node, from msgnet.ProcID, payload any) {
	env, ok := payload.(envelope)
	if !ok || env.phase < 0 || env.phase >= len(d.comps) {
		return
	}
	d.comps[env.phase].OnMessage(from, env.payload)
}

func (d *serverDriver) OnTimer(n *msgnet.Node, name string) {
	k, rest, ok := splitTimer(name)
	if !ok || k < 0 || k >= len(d.comps) {
		return
	}
	d.comps[k].OnTimer(rest)
}

type serverEnv struct {
	driver *serverDriver
	phase  int
}

func (e *serverEnv) Self() msgnet.ProcID      { return e.driver.id }
func (e *serverEnv) Clients() []msgnet.ProcID { return e.driver.obj.clients }
func (e *serverEnv) Servers() []msgnet.ProcID { return e.driver.obj.servers }
func (e *serverEnv) Now() msgnet.Time         { return e.driver.node.Now() }
func (e *serverEnv) Send(to msgnet.ProcID, p any) {
	e.driver.node.Send(to, envelope{phase: e.phase, payload: p})
}
func (e *serverEnv) SetTimer(name string, d msgnet.Time) {
	e.driver.node.SetTimer(timerName(e.phase, name), d)
}

func timerName(phase int, name string) string {
	return strconv.Itoa(phase) + ":" + name
}

func splitTimer(full string) (phase int, name string, ok bool) {
	i := strings.IndexByte(full, ':')
	if i < 0 {
		return 0, "", false
	}
	k, err := strconv.Atoi(full[:i])
	if err != nil {
		return 0, "", false
	}
	return k, full[i+1:], true
}
