package almspec

import (
	"context"
	"testing"

	"repro/internal/adt"
	"repro/internal/ioa"
	"repro/internal/slin"
	"repro/internal/trace"
)

func twoClients() Config {
	return Config{
		M: 1, N: 2,
		Clients: []trace.ClientID{"c1", "c2"},
		Inputs:  []trace.Value{"u1", "u2"},
	}
}

// Every bounded external trace of the Spec(1,2) automaton satisfies
// SLin(1,2) under the literal (strict) semantics — the automaton is a
// sound specification of speculative linearizability (§6's claim),
// validated against the independent trace-based checker of package slin.
func TestSpecTracesSatisfySLinFirstPhase(t *testing.T) {
	a := Spec(twoClients())
	checked := 0
	err := ioa.ExternalTraces(a, 6, 3_000_000, func(actions []ioa.Action) error {
		tr := ToTrace(actions)
		res, err := slin.Check(context.Background(), adt.Universal{}, slin.UniversalRInit{}, 1, 2, tr)
		if err != nil {
			return err
		}
		if !res.OK {
			t.Fatalf("automaton trace violates SLin(1,2): %s\n%v", res.Reason, tr)
		}
		checked++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked < 100 {
		t.Fatalf("only %d traces checked; exploration too shallow", checked)
	}
	t.Logf("Spec(1,2): %d bounded traces satisfy SLin", checked)
}

// Same for a second-phase automaton Spec(2,3) receiving init histories.
func TestSpecTracesSatisfySLinSecondPhase(t *testing.T) {
	cfg := Config{
		M: 2, N: 3,
		Clients: []trace.ClientID{"c1", "c2"},
		Inputs:  []trace.Value{"u1", "u2"},
		InitUniverse: []trace.History{
			{},
			{"w"},
		},
	}
	a := Spec(cfg)
	checked := 0
	err := ioa.ExternalTraces(a, 6, 3_000_000, func(actions []ioa.Action) error {
		tr := ToTrace(actions)
		res, err := slin.Check(context.Background(), adt.Universal{}, slin.UniversalRInit{}, 2, 3, tr)
		if err != nil {
			return err
		}
		if !res.OK {
			t.Fatalf("automaton trace violates SLin(2,3): %s\n%v", res.Reason, tr)
		}
		checked++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked < 100 {
		t.Fatalf("only %d traces checked", checked)
	}
	t.Logf("Spec(2,3): %d bounded traces satisfy SLin", checked)
}

// fullUniverse returns every no-repeat sequence over the inputs — exactly
// the histories a first-phase automaton over those inputs can emit as
// abort values, so a second phase with this InitUniverse is input-enabled
// for everything the composition sends it.
func fullUniverse(inputs []trace.Value) []trace.History {
	return orderings(inputs)
}

// composedImpl builds Spec(1,2) ‖ Spec(2,3) for two clients, with the
// second phase accepting every possible abort history of the first.
func composedImpl() *ioa.Automaton {
	first := Spec(twoClients())
	second := Spec(Config{
		M: 2, N: 3,
		Clients:      []trace.ClientID{"c1", "c2"},
		Inputs:       []trace.Value{"u1", "u2"},
		InitUniverse: fullUniverse([]trace.Value{"u1", "u2"}),
	})
	return ioa.Compose(first, second)
}

// TestE7CompositionRefinement is experiment E7 — the intra-object
// composition theorem (Theorem 3), model-checked on the §6 automaton:
// proj(Spec(1,2) ‖ Spec(2,3), sig(1,3)) is trace-included in Spec(1,3),
// over the full reachable space for two clients with one operation input
// each.
func TestE7CompositionRefinement(t *testing.T) {
	impl := composedImpl()
	// Sanity: switches must actually flow through the composition (an
	// empty init universe would silently block them and vacuously pass).
	sawPhase2 := false
	_, err := ioa.Reachable(impl, 5_000_000, func(s ioa.State) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	errTr := ioa.ExternalTraces(impl, 5, 5_000_000, func(actions []ioa.Action) error {
		for _, a := range actions {
			if r, ok := a.(Res); ok && r.Level == 2 {
				sawPhase2 = true
				return ioa.ErrStop
			}
		}
		return nil
	})
	if errTr != nil {
		t.Fatal(errTr)
	}
	if !sawPhase2 {
		t.Fatal("no phase-2 response reachable; composition is blocked")
	}
	spec := Spec(Config{
		M: 1, N: 3,
		Clients: []trace.ClientID{"c1", "c2"},
		Inputs:  []trace.Value{"u1", "u2"},
	})
	res, err := ioa.CheckTraceInclusion(impl, spec, ioa.InclusionOptions{
		MaxPairs: 5_000_000,
		Class:    ClassErasingLevels(1, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("composition theorem REFUTED by model check; counterexample: %v",
			ioa.TraceString(impl, res.Counterexample))
	}
	t.Logf("E7: composition refines Spec(1,3) over %d subset pairs", res.Pairs)
}

// Negative control for the refinement checker: against a spec whose
// clients expect different inputs, the composition's very first
// invocation is unmatched.
func TestE7NegativeControl(t *testing.T) {
	impl := composedImpl()
	badSpec := Spec(Config{
		M: 1, N: 3,
		Clients: []trace.ClientID{"c1", "c2"},
		Inputs:  []trace.Value{"u2", "u1"}, // swapped
	})
	res, err := ioa.CheckTraceInclusion(impl, badSpec, ioa.InclusionOptions{
		MaxPairs: 5_000_000,
		Class:    ClassErasingLevels(1, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("refinement against a wrong spec must fail")
	}
	if len(res.Counterexample) == 0 {
		t.Fatal("missing counterexample")
	}
}

// The composed automaton's projected traces, converted to trace form,
// also pass the SLin(1,3) checker directly — Theorem 3 cross-validated a
// second way (checker vs automaton rather than automaton vs automaton).
func TestCompositionTracesSatisfySLin(t *testing.T) {
	impl := composedImpl()
	checked := 0
	err := ioa.ExternalTraces(impl, 6, 3_000_000, func(actions []ioa.Action) error {
		full := ToTrace(actions)
		// Project onto sig(1,3): interior switches at level 2 drop out of
		// client well-formedness but stay in the signature; the slin
		// checker ignores them (Definition 33's note).
		res, err := slin.Check(context.Background(), adt.Universal{}, slin.UniversalRInit{}, 1, 3, full)
		if err != nil {
			return err
		}
		if !res.OK {
			t.Fatalf("composed trace violates SLin(1,3): %s\n%v", res.Reason, full)
		}
		checked++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked < 50 {
		t.Fatalf("only %d traces checked", checked)
	}
	t.Logf("composition: %d bounded traces satisfy SLin(1,3)", checked)
}

func TestSpecReachableBounded(t *testing.T) {
	a := Spec(twoClients())
	n, err := ioa.Reachable(a, 1_000_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n < 10 {
		t.Fatalf("suspiciously small state space: %d", n)
	}
	t.Logf("Spec(1,2) reachable states: %d", n)
}

func TestOrderings(t *testing.T) {
	os := orderings([]trace.Value{"a", "b"})
	// {}, {a}, {b}, {a b}, {b a} = 5
	if len(os) != 5 {
		t.Fatalf("orderings = %v", os)
	}
}

func TestToTrace(t *testing.T) {
	actions := []ioa.Action{
		Inv{1, "c1", "u1"},
		Swi{Level: 2, C: "c1", In: "u1", Hist: adt.HistoryOutput(trace.History{})},
		Res{2, "c1", "u1", adt.HistoryOutput(trace.History{"u1"})},
	}
	tr := ToTrace(actions)
	if len(tr) != 3 || !tr[0].IsInv() || !tr[1].IsSwi() || !tr[2].IsRes() {
		t.Fatalf("ToTrace = %v", tr)
	}
	if tr[1].Phase != 2 || tr[0].Phase != 1 || tr[2].Phase != 2 {
		t.Fatalf("phases wrong: %v", tr)
	}
}
