// Package almspec implements the §6 specification automaton of the paper
// (the "Abortable Linearizable Module" of the AFP entry): speculative
// linearizability instantiated for the universal ADT, whose output
// function is the identity — responses carry the whole history.
//
// The automaton for a phase range (m, n) keeps:
//
//   - hist: the longest linearization made visible to a client;
//   - a phase per client: Sleep, Pending, Ready or Aborted;
//   - pending(c): the last input submitted by client c;
//   - InitHists: the init histories received (m > 1);
//   - booleans initialized and aborted.
//
// Steps A1–A4 follow the paper, with three refinements the prose leaves
// implicit but that the trace property — and the composition theorem —
// require (each was pinned down by a failing model check, see the inline
// comments and EXPERIMENTS.md):
//
//   - A2 is split into an internal linearization step (append a pending
//     input to hist) and an output response step (emit hist truncated
//     just after the client's input), per the §6 remark "commit histories
//     are obtained by truncating hist at a pending request";
//   - hist freezes once any abort has been emitted — the §6 remark "at
//     this point hist does not grow anymore", which is what makes
//     Abort-Order hold — but responses to already-linearized operations
//     remain enabled;
//   - A4 emits histories that strictly extend the Init-Order baseline
//     when m > 1, and only aborts Pending clients (so emitted traces are
//     (m,n)-well-formed).
//
// Experiment E7 model-checks the intra-object composition theorem: the
// composition Spec(1,2) ‖ Spec(2,3), with the interior switch actions
// hidden, is trace-included in Spec(1,3).
package almspec

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/adt"
	"repro/internal/ioa"
	"repro/internal/trace"
)

// Client phases of the automaton.
const (
	Sleep = iota
	Pending
	Ready
	Aborted
)

// Inv is an invocation action at a phase level. Per the consistent
// reading of Definition 16 (see trace.InSig), the operation actions of a
// phase (m, n) carry levels in [m..n-1], so the alphabets of consecutive
// single phases are disjoint and compositions interleave them. The SLin
// predicates never depend on the level, and the refinement check erases
// it via ClassErasingLevels.
type Inv struct {
	Level int
	C     trace.ClientID
	In    trace.Value
}

// Res is a response action; Out is the encoded history (universal ADT).
type Res struct {
	Level int
	C     trace.ClientID
	In    trace.Value
	Out   trace.Value
}

// Swi is a switch action at a given level: the abort output of phase
// (m, n) has Level == n and is the init input of phase (n, o). Hist is
// the encoded switch history (r_init maps h to {h}, §6).
type Swi struct {
	Level int
	C     trace.ClientID
	In    trace.Value
	Hist  trace.Value
}

// internalAct tags A1/A3 steps with the owning automaton's name so that
// internal actions never synchronize across components.
type internalAct struct {
	Name string
	Who  string
}

// state is the automaton state; fields are treated as immutable (steps
// build fresh states).
type state struct {
	hist    trace.History
	phases  map[trace.ClientID]int
	pending map[trace.ClientID]trace.Value
	// invoked marks clients that already submitted their operation in
	// this phase range: each client performs at most one operation (the
	// §6 formalization assumes unique inputs; repeated occurrences of an
	// input would need occurrence identities the automaton lacks).
	invoked     map[trace.ClientID]bool
	initHists   []trace.History // in arrival order; LCP is order-free
	initialized bool
	aborted     bool
	// abortEmitted freezes hist (disables A2) once any abort output
	// happened.
	abortEmitted bool
	// baseLen is len(hist) right after A1; abort histories must exceed
	// it when m > 1 (strict Init-Order).
	baseLen int
}

func (s state) clone() state {
	n := s
	n.hist = s.hist.Clone()
	n.phases = make(map[trace.ClientID]int, len(s.phases))
	for c, p := range s.phases {
		n.phases[c] = p
	}
	n.pending = make(map[trace.ClientID]trace.Value, len(s.pending))
	for c, v := range s.pending {
		n.pending[c] = v
	}
	n.invoked = make(map[trace.ClientID]bool, len(s.invoked))
	for c, v := range s.invoked {
		n.invoked[c] = v
	}
	n.initHists = append([]trace.History{}, s.initHists...)
	return n
}

// Config parameterizes a Spec automaton.
type Config struct {
	// M and N delimit the phase range (M < N); init switches carry level
	// M (only when M > 1), abort switches level N.
	M, N int
	// Clients lists the clients; ClientInput gives each client's single
	// designated input (experiments use one unique input per client,
	// sidestepping the duplicate-input subtleties the §6 prose assumes
	// away).
	Clients []trace.ClientID
	// Inputs[i] is the designated input of Clients[i].
	Inputs []trace.Value
	// InitUniverse enumerates the init histories the environment may pass
	// when M > 1 (used for standalone exploration; in compositions the
	// previous phase's abort outputs drive these inputs).
	InitUniverse []trace.History
}

// Name returns the canonical automaton name for a range.
func name(m, n int) string { return "alm(" + strconv.Itoa(m) + "," + strconv.Itoa(n) + ")" }

// Spec builds the §6 specification automaton for the range (cfg.M, cfg.N).
func Spec(cfg Config) *ioa.Automaton {
	an := name(cfg.M, cfg.N)
	inputOf := map[trace.ClientID]trace.Value{}
	for i, c := range cfg.Clients {
		inputOf[c] = cfg.Inputs[i]
	}

	start := func() []ioa.State {
		s := state{
			phases:  map[trace.ClientID]int{},
			pending: map[trace.ClientID]trace.Value{},
			invoked: map[trace.ClientID]bool{},
		}
		for _, c := range cfg.Clients {
			if cfg.M == 1 {
				s.phases[c] = Ready
			} else {
				s.phases[c] = Sleep
			}
		}
		if cfg.M == 1 {
			s.initialized = true
		}
		return []ioa.State{s}
	}

	steps := func(is ioa.State) []ioa.Transition {
		s := is.(state)
		var ts []ioa.Transition

		// Input: invocations (level M, canonical for this range). The
		// automaton blocks ill-formed environment behavior — a client may
		// invoke only when Ready — so explorations quantify over exactly
		// the well-formed environments.
		for _, c := range cfg.Clients {
			in := inputOf[c]
			if s.phases[c] == Ready && !s.invoked[c] {
				n := s.clone()
				n.phases[c] = Pending
				n.pending[c] = in
				n.invoked[c] = true
				ts = append(ts, ioa.Transition{Action: Inv{cfg.M, c, in}, Next: n})
			}
		}

		// Input: init switches (m > 1); accepted only while Sleep — a
		// client enters a phase exactly once (Definition 34).
		if cfg.M > 1 {
			for _, c := range cfg.Clients {
				in := inputOf[c]
				if s.phases[c] != Sleep {
					continue
				}
				for _, h := range cfg.InitUniverse {
					act := Swi{Level: cfg.M, C: c, In: in, Hist: adt.HistoryOutput(h)}
					n := s.clone()
					n.phases[c] = Pending
					n.pending[c] = in
					n.invoked[c] = true
					n.initHists = append(n.initHists, h)
					ts = append(ts, ioa.Transition{Action: act, Next: n})
				}
			}
		}

		// Internal A1: initialize hist from the LCP of init histories.
		if !s.initialized {
			anyEntered := false
			for _, c := range cfg.Clients {
				if s.phases[c] != Sleep {
					anyEntered = true
				}
			}
			if anyEntered {
				n := s.clone()
				n.hist = trace.LCP(s.initHists)
				n.initialized = true
				n.baseLen = len(n.hist)
				ts = append(ts, ioa.Transition{Action: internalAct{"a1", an}, Next: n})
			}
		}

		// A2, split in two per the §6 remark "commit histories are
		// obtained by truncating hist at a pending request":
		//
		// A2a (internal): linearize a pending input by appending it to
		// hist, WITHOUT responding. This is what lets a composition's
		// abort histories carry silently linearized operations of other
		// clients; the one-step append-and-respond reading of the prose
		// is strictly weaker and fails the composition refinement (the
		// model check of E7 found the counterexample).
		if s.initialized && !s.abortEmitted {
			for _, c := range cfg.Clients {
				if s.phases[c] == Pending && !s.hist.Contains(s.pending[c]) {
					n := s.clone()
					n.hist = n.hist.Append(s.pending[c])
					ts = append(ts, ioa.Transition{
						Action: internalAct{"a2lin|" + string(c), an},
						Next:   n,
					})
				}
			}
		}
		// A2b (output): respond to a client whose pending input has been
		// linearized strictly beyond the Init-Order baseline, with hist
		// truncated just after that input. Responding stays enabled after
		// aborts begin — the commit is a prefix of the frozen hist and
		// hence of every abort history.
		for _, c := range cfg.Clients {
			if s.phases[c] != Pending {
				continue
			}
			pos := indexOf(s.hist, s.pending[c])
			if pos < 0 || pos < s.baseLen {
				continue // not linearized, or trapped inside L
			}
			n := s.clone()
			n.phases[c] = Ready
			act := Res{Level: cfg.M, C: c, In: s.pending[c], Out: adt.HistoryOutput(s.hist[:pos+1])}
			ts = append(ts, ioa.Transition{Action: act, Next: n})
		}

		// Internal A3: start aborting.
		if !s.aborted {
			n := s.clone()
			n.aborted = true
			ts = append(ts, ioa.Transition{Action: internalAct{"a3", an}, Next: n})
		}

		// Output A4: abort a pending client with a history extending hist
		// by pending inputs (every subset, every order).
		if s.aborted && s.initialized {
			var free []trace.Value // pending inputs not in hist
			for _, c := range cfg.Clients {
				if s.phases[c] == Pending && !s.hist.Contains(s.pending[c]) {
					free = append(free, s.pending[c])
				}
			}
			for _, c := range cfg.Clients {
				if s.phases[c] != Pending {
					continue
				}
				for _, ext := range orderings(free) {
					h := s.hist.Concat(ext)
					if cfg.M > 1 && len(h) <= s.baseLen {
						continue // strict Init-Order for abort histories
					}
					n := s.clone()
					n.phases[c] = Aborted
					n.abortEmitted = true
					act := Swi{Level: cfg.N, C: c, In: s.pending[c], Hist: adt.HistoryOutput(h)}
					ts = append(ts, ioa.Transition{Action: act, Next: n})
				}
			}
		}

		return ts
	}

	return &ioa.Automaton{
		Name:  an,
		Start: start,
		Steps: steps,
		External: func(a ioa.Action) bool {
			_, internal := a.(internalAct)
			return !internal
		},
		InAlphabet: func(a ioa.Action) bool {
			switch x := a.(type) {
			case Inv:
				return x.Level >= cfg.M && x.Level < cfg.N
			case Res:
				return x.Level >= cfg.M && x.Level < cfg.N
			case Swi:
				return x.Level >= cfg.M && x.Level <= cfg.N
			case internalAct:
				return x.Who == an
			}
			return false
		},
		StateKey:  stateKey,
		ActionKey: ActionKey,
	}
}

// indexOf returns the first position of v in h, or -1.
func indexOf(h trace.History, v trace.Value) int {
	for i, x := range h {
		if x == v {
			return i
		}
	}
	return -1
}

// orderings returns every ordering of every subset of vs (including the
// empty one). vs is small (bounded by the client count).
func orderings(vs []trace.Value) []trace.History {
	out := []trace.History{{}}
	var rec func(prefix trace.History, rest []trace.Value)
	rec = func(prefix trace.History, rest []trace.Value) {
		for i, v := range rest {
			next := prefix.Append(v)
			out = append(out, next)
			nr := append(append([]trace.Value{}, rest[:i]...), rest[i+1:]...)
			rec(next, nr)
		}
	}
	rec(trace.History{}, vs)
	return out
}

func stateKey(is ioa.State) string {
	s := is.(state)
	var b strings.Builder
	b.WriteString(adt.HistoryOutput(s.hist))
	b.WriteByte('|')
	var cs []string
	for c := range s.phases {
		cs = append(cs, string(c))
	}
	sort.Strings(cs)
	for _, c := range cs {
		b.WriteString(c)
		b.WriteByte(':')
		b.WriteString(strconv.Itoa(s.phases[trace.ClientID(c)]))
		b.WriteByte(':')
		b.WriteString(s.pending[trace.ClientID(c)])
		b.WriteByte(':')
		b.WriteString(strconv.FormatBool(s.invoked[trace.ClientID(c)]))
		b.WriteByte(';')
	}
	b.WriteByte('|')
	var ih []string
	for _, h := range s.initHists {
		ih = append(ih, adt.HistoryOutput(h))
	}
	sort.Strings(ih)
	b.WriteString(strings.Join(ih, "&"))
	b.WriteByte('|')
	b.WriteString(strconv.FormatBool(s.initialized))
	b.WriteString(strconv.FormatBool(s.aborted))
	b.WriteString(strconv.FormatBool(s.abortEmitted))
	b.WriteString(strconv.Itoa(s.baseLen))
	return b.String()
}

// ActionKey canonically encodes an external action for synchronization.
func ActionKey(a ioa.Action) string {
	switch x := a.(type) {
	case Inv:
		return "inv|" + strconv.Itoa(x.Level) + "|" + string(x.C) + "|" + x.In
	case Res:
		return "res|" + strconv.Itoa(x.Level) + "|" + string(x.C) + "|" + x.In + "|" + x.Out
	case Swi:
		return "swi|" + strconv.Itoa(x.Level) + "|" + string(x.C) + "|" + x.In + "|" + x.Hist
	case internalAct:
		return "int|" + x.Who + "|" + x.Name
	}
	return "?"
}

// ClassErasingLevels builds an action classifier for trace-inclusion
// checks between a composition over [m..o] and the spec for (m, o): the
// levels of operation actions are erased (SLin never depends on them) and
// switch actions at interior levels are hidden (the projection onto
// sig(m, o) of Theorem 3).
func ClassErasingLevels(m, o int) func(ioa.Action) (string, bool) {
	return func(a ioa.Action) (string, bool) {
		switch x := a.(type) {
		case Inv:
			return "inv|" + string(x.C) + "|" + x.In, true
		case Res:
			return "res|" + string(x.C) + "|" + x.In + "|" + x.Out, true
		case Swi:
			if x.Level != m && x.Level != o {
				return "", false // interior switch: hidden
			}
			return "swi|" + strconv.Itoa(x.Level) + "|" + string(x.C) + "|" + x.In + "|" + x.Hist, true
		}
		return "", false
	}
}

// ToTrace converts an external action sequence into a trace for the slin
// checker; every action keeps its own level.
func ToTrace(actions []ioa.Action) trace.Trace {
	var t trace.Trace
	for _, a := range actions {
		switch x := a.(type) {
		case Inv:
			t = append(t, trace.Invoke(x.C, x.Level, x.In))
		case Res:
			t = append(t, trace.Response(x.C, x.Level, x.In, x.Out))
		case Swi:
			t = append(t, trace.Switch(x.C, x.Level, x.In, x.Hist))
		}
	}
	return t
}
