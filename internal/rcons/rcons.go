// Package rcons implements the register-based speculative consensus of
// Figure 2: a splitter-guarded fast path that decides using only
// read/write registers when there is no contention, and switches to the
// CAS-based phase otherwise.
//
// Two forms are provided:
//
//   - Machine: a step machine over simulated shared memory where each
//     step performs exactly one shared-memory access, mirroring Figure
//     2's lines; the model checker (package check) interleaves Machines
//     exhaustively.
//   - NativePhase: a sync/atomic implementation of core.Phase for real
//     concurrent execution and timing benchmarks.
package rcons

import (
	"strconv"

	"repro/internal/adt"
	"repro/internal/shmem"
	"repro/internal/trace"
)

// Result is the resolution of one propose() on the RCons phase.
type Result struct {
	// Switched is true when the operation aborts to the CAS phase with
	// switch value Value; otherwise the operation decided Value.
	Switched bool
	Value    trace.Value
}

// Regs names the shared registers of one RCons instance in simulated
// memory: V, D, Contention and the splitter's X and Y (Figure 2 lines
// 2–4).
type Regs struct {
	V, D, Contention, X, Y shmem.Loc
}

// DefaultRegs returns register names prefixed by an instance name.
func DefaultRegs(instance string) Regs {
	return Regs{
		V:          shmem.Loc(instance + ".V"),
		D:          shmem.Loc(instance + ".D"),
		Contention: shmem.Loc(instance + ".Contention"),
		X:          shmem.Loc(instance + ".X"),
		Y:          shmem.Loc(instance + ".Y"),
	}
}

// Machine executes one propose(val) call as a sequence of atomic
// shared-memory steps. Program counters follow Figure 2:
//
//	pc 0: read D; decided already? return it          (line 8)
//	pc 1: X ← c                                       (line 27)
//	pc 2: read Y; true → contention path              (line 28)
//	pc 3: Y ← true                                    (line 31)
//	pc 4: read X; ≠ c → contention path               (line 32)
//	pc 5: V ← v                                       (line 12)
//	pc 6: read Contention; true → switch with v       (line 13/17)
//	pc 7: D ← v; return v                             (lines 14–15)
//	pc 8: Contention ← true                           (line 20)
//	pc 9: read V; ≠ ⊥ → v ← V; switch with v          (lines 21–24)
type Machine struct {
	regs   Regs
	client trace.ClientID
	v      trace.Value
	pc     int
	done   bool
	won    bool // splitter returned true
	result Result
}

// NewMachine prepares a propose(val) execution by client c.
func NewMachine(regs Regs, c trace.ClientID, val trace.Value) *Machine {
	return &Machine{regs: regs, client: c, v: val}
}

// Done reports whether the call has resolved.
func (m *Machine) Done() bool { return m.done }

// Result returns the resolution; valid only after Done.
func (m *Machine) Result() Result { return m.result }

// SplitterWon reports whether this call won the splitter (Figure 2's
// guarantee: at most one caller ever does).
func (m *Machine) SplitterWon() bool { return m.won }

// Clone returns an independent copy for state-space branching.
func (m *Machine) Clone() *Machine {
	c := *m
	return &c
}

// Key canonically encodes the machine's local state.
func (m *Machine) Key() string {
	return strconv.Itoa(m.pc) + "|" + string(m.v) + "|" + strconv.FormatBool(m.done) +
		"|" + strconv.FormatBool(m.won) +
		"|" + strconv.FormatBool(m.result.Switched) + "|" + m.result.Value
}

// Step performs the next atomic shared-memory access. It panics if called
// after Done (a scheduler bug).
func (m *Machine) Step(mem *shmem.Mem) {
	if m.done {
		panic("rcons: step after completion")
	}
	switch m.pc {
	case 0: // if D ≠ ⊥ then return D
		if d := mem.Read(m.regs.D); d != adt.Bottom {
			m.finish(Result{Value: d})
			return
		}
		m.pc = 1
	case 1: // splitter: X ← c
		mem.Write(m.regs.X, trace.Value(m.client))
		m.pc = 2
	case 2: // if Y = true then return false
		if mem.Read(m.regs.Y) == "true" {
			m.pc = 8
			return
		}
		m.pc = 3
	case 3: // Y ← true
		mem.Write(m.regs.Y, "true")
		m.pc = 4
	case 4: // if X = c then true else false
		if mem.Read(m.regs.X) == trace.Value(m.client) {
			m.won = true
			m.pc = 5
		} else {
			m.pc = 8
		}
	case 5: // V ← v
		mem.Write(m.regs.V, m.v)
		m.pc = 6
	case 6: // if ¬Contention … else switch-to-CASCons(v)
		if mem.Read(m.regs.Contention) == "true" {
			m.finish(Result{Switched: true, Value: m.v})
			return
		}
		m.pc = 7
	case 7: // D ← v; return v
		mem.Write(m.regs.D, m.v)
		m.finish(Result{Value: m.v})
	case 8: // Contention ← true
		mem.Write(m.regs.Contention, "true")
		m.pc = 9
	case 9: // if V ≠ ⊥ then v ← V; switch-to-CASCons(v)
		if vv := mem.Read(m.regs.V); vv != adt.Bottom {
			m.v = vv
		}
		m.finish(Result{Switched: true, Value: m.v})
	default:
		panic("rcons: invalid pc")
	}
}

func (m *Machine) finish(r Result) {
	m.done = true
	m.result = r
}
