package rcons

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/core"
	"repro/internal/shmem"
	"repro/internal/trace"
)

// NativePhase is the Figure 2 algorithm over sync/atomic registers,
// packaged as a core.Phase so it composes with cascons.NativePhase via
// core.Composer. It is safe for concurrent use by many goroutines.
//
// One NativePhase implements one consensus instance (consensus is
// single-shot; SMR builds multi-shot objects from many instances).
type NativePhase struct {
	v          shmem.Register
	d          shmem.Register
	contention shmem.Flag
	x          shmem.Register
	y          shmem.Flag
}

var _ core.Phase = (*NativePhase)(nil)

// NewNativePhase returns a fresh RCons instance.
func NewNativePhase() *NativePhase { return &NativePhase{} }

// Name implements core.Phase.
func (p *NativePhase) Name() string { return "rcons" }

// splitter implements Figure 2 lines 26–36 for client c: at most one
// client ever gets true, and in the absence of contention exactly one
// does.
func (p *NativePhase) splitter(c trace.ClientID) bool {
	p.x.Store(trace.Value(c))
	if p.y.Load() {
		return false
	}
	p.y.Store(true)
	return p.x.Load() == trace.Value(c)
}

// Invoke implements core.Phase: propose(val) of Figure 2.
func (p *NativePhase) Invoke(c trace.ClientID, in trace.Value) (core.Outcome, error) {
	val, ok := adt.ProposalOf(adt.Untag(in))
	if !ok {
		return core.Outcome{}, fmt.Errorf("rcons: input %q is not a proposal", in)
	}
	v := val
	if d := p.d.Load(); d != adt.Bottom {
		return core.ReturnOutcome(adt.DecideOutput(d)), nil
	}
	if p.splitter(c) {
		p.v.Store(v)
		if !p.contention.Load() {
			p.d.Store(v)
			return core.ReturnOutcome(adt.DecideOutput(v)), nil
		}
		return core.SwitchOutcome(v), nil
	}
	p.contention.Store(true)
	if vv := p.v.Load(); vv != adt.Bottom {
		v = vv
	}
	return core.SwitchOutcome(v), nil
}

// SwitchIn implements core.Phase. RCons is a first phase and never
// receives switches; for generality it re-proposes the switch value.
func (p *NativePhase) SwitchIn(c trace.ClientID, in, init trace.Value) (core.Outcome, error) {
	return p.Invoke(c, adt.ProposeInput(init))
}
