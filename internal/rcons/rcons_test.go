package rcons

import (
	"testing"

	"repro/internal/adt"
	"repro/internal/shmem"
)

func runAlone(t *testing.T, m *Machine, mem *shmem.Mem) Result {
	t.Helper()
	for i := 0; i < 100 && !m.Done(); i++ {
		m.Step(mem)
	}
	if !m.Done() {
		t.Fatal("machine did not terminate")
	}
	return m.Result()
}

// Figure 2, uncontended: a lone proposer wins the splitter and decides
// its own value through registers only.
func TestFigure2Uncontended(t *testing.T) {
	mem := shmem.NewMem()
	regs := DefaultRegs("i")
	m := NewMachine(regs, "c1", "a")
	r := runAlone(t, m, mem)
	if r.Switched || r.Value != "a" {
		t.Fatalf("result = %+v", r)
	}
	if !m.SplitterWon() {
		t.Fatal("lone proposer must win the splitter")
	}
	if mem.Read(regs.D) != "a" {
		t.Fatal("decision register not written")
	}
}

// A second, later proposer sees D and returns it immediately (line 8).
func TestFigure2LateProposerReadsD(t *testing.T) {
	mem := shmem.NewMem()
	regs := DefaultRegs("i")
	runAlone(t, NewMachine(regs, "c1", "a"), mem)
	m2 := NewMachine(regs, "c2", "b")
	m2.Step(mem) // pc 0 reads D
	if !m2.Done() {
		t.Fatal("late proposer must finish at the D check")
	}
	if r := m2.Result(); r.Switched || r.Value != "a" {
		t.Fatalf("late proposer result = %+v", r)
	}
	if m2.SplitterWon() {
		t.Fatal("late proposer never entered the splitter")
	}
}

// Lock-step contention: two proposers interleave strictly; the splitter
// elects at most one winner and losers take the contention path.
func TestFigure2LockStepContention(t *testing.T) {
	mem := shmem.NewMem()
	regs := DefaultRegs("i")
	m1 := NewMachine(regs, "c1", "a")
	m2 := NewMachine(regs, "c2", "b")
	for !m1.Done() || !m2.Done() {
		if !m1.Done() {
			m1.Step(mem)
		}
		if !m2.Done() {
			m2.Step(mem)
		}
	}
	if m1.SplitterWon() && m2.SplitterWon() {
		t.Fatal("both proposers won the splitter")
	}
	// In lock-step both see contention; at least one must switch, and
	// any non-switched result must carry a proposed value.
	r1, r2 := m1.Result(), m2.Result()
	if !r1.Switched && !r2.Switched {
		t.Fatalf("lock-step contention with no switch: %+v %+v", r1, r2)
	}
	for _, r := range []Result{r1, r2} {
		if r.Value != "a" && r.Value != "b" {
			t.Fatalf("unproposed value in result %+v", r)
		}
	}
}

// The splitter loser adopts V when the winner already wrote it (line 21).
func TestFigure2LoserAdoptsWinnersValue(t *testing.T) {
	mem := shmem.NewMem()
	regs := DefaultRegs("i")
	m1 := NewMachine(regs, "c1", "a")
	// Winner runs up to and including V ← v (pc 5), then pauses.
	for i := 0; i < 6; i++ {
		m1.Step(mem)
	}
	// Loser runs fully: loses the splitter (Y set), sets Contention,
	// reads V = "a" and switches with it.
	m2 := NewMachine(regs, "c2", "b")
	r2 := runAlone(t, m2, mem)
	if !r2.Switched || r2.Value != "a" {
		t.Fatalf("loser must switch with the winner's value: %+v", r2)
	}
	// Winner resumes: it reads Contention = true and must switch with a.
	r1 := runAlone(t, m1, mem)
	if !r1.Switched || r1.Value != "a" {
		t.Fatalf("winner under contention must switch with its value: %+v", r1)
	}
}

func TestMachineCloneIndependent(t *testing.T) {
	mem := shmem.NewMem()
	m := NewMachine(DefaultRegs("i"), "c1", "a")
	m.Step(mem)
	c := m.Clone()
	c.Step(mem)
	if m.Key() == c.Key() {
		t.Fatal("clone shares state with original")
	}
}

func TestStepAfterDonePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mem := shmem.NewMem()
	m := NewMachine(DefaultRegs("i"), "c1", "a")
	for !m.Done() {
		m.Step(mem)
	}
	m.Step(mem)
}

// Native phase: uncontended invoke decides; invalid input errors.
func TestNativePhaseBasics(t *testing.T) {
	p := NewNativePhase()
	out, err := p.Invoke("c1", adt.ProposeInput("a"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != 0 || out.Output != adt.DecideOutput("a") {
		t.Fatalf("outcome = %+v", out)
	}
	if _, err := p.Invoke("c1", "garbage"); err == nil {
		t.Fatal("invalid input must error")
	}
	// A later client reads the decision directly.
	out, err = p.Invoke("c2", adt.Tag(adt.ProposeInput("b"), "c2"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Output != adt.DecideOutput("a") {
		t.Fatalf("late client outcome = %+v", out)
	}
}
