package cascons

import (
	"testing"

	"repro/internal/adt"
	"repro/internal/shmem"
)

// Figure 3: the first switcher's CAS installs its value; later switchers
// observe it; propose() by a switched client returns D.
func TestFigure3Semantics(t *testing.T) {
	mem := shmem.NewMem()
	reg := DefaultReg("i")

	m1 := NewSwitchMachine(reg, "a")
	m1.Step(mem)
	if !m1.Done() || m1.Result() != "a" {
		t.Fatalf("first CAS result = %q", m1.Result())
	}

	m2 := NewSwitchMachine(reg, "b")
	m2.Step(mem)
	if m2.Result() != "a" {
		t.Fatalf("second CAS result = %q, want incumbent", m2.Result())
	}

	p := NewProposeMachine(reg)
	p.Step(mem)
	if p.Result() != "a" {
		t.Fatalf("propose after switch = %q", p.Result())
	}
}

func TestMachineCloneAndKey(t *testing.T) {
	mem := shmem.NewMem()
	reg := DefaultReg("i")
	m := NewSwitchMachine(reg, "a")
	c := m.Clone()
	m.Step(mem)
	if c.Done() {
		t.Fatal("clone aliases original")
	}
	if m.Key() == c.Key() {
		t.Fatal("done and pending machines share a key")
	}
}

func TestStepAfterDonePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mem := shmem.NewMem()
	m := NewSwitchMachine(DefaultReg("i"), "a")
	m.Step(mem)
	m.Step(mem)
}

func TestNativePhase(t *testing.T) {
	p := NewNativePhase()
	// Propose before any switch-in is a usage error.
	if _, err := p.Invoke("c1", adt.ProposeInput("x")); err == nil {
		t.Fatal("propose before switch-in must error")
	}
	out, err := p.SwitchIn("c1", adt.ProposeInput("x"), "a")
	if err != nil {
		t.Fatal(err)
	}
	if out.Output != adt.DecideOutput("a") {
		t.Fatalf("switch-in outcome = %+v", out)
	}
	out, err = p.SwitchIn("c2", adt.ProposeInput("y"), "b")
	if err != nil {
		t.Fatal(err)
	}
	if out.Output != adt.DecideOutput("a") {
		t.Fatalf("losing switch-in outcome = %+v", out)
	}
	out, err = p.Invoke("c1", adt.ProposeInput("z"))
	if err != nil {
		t.Fatal(err)
	}
	if out.Output != adt.DecideOutput("a") {
		t.Fatalf("re-invoke outcome = %+v", out)
	}
}
