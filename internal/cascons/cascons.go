// Package cascons implements the CAS-based speculative consensus of
// Figure 3: switch-to-CASCons(val) returns CAS(D, ⊥, val), and propose()
// by a client that already switched simply returns D.
//
// Like package rcons it provides a step Machine over simulated memory and
// a NativePhase over sync/atomic for core.Composer.
package cascons

import (
	"fmt"
	"strconv"

	"repro/internal/adt"
	"repro/internal/core"
	"repro/internal/shmem"
	"repro/internal/trace"
)

// Reg names the shared CAS register of one CASCons instance.
type Reg struct {
	D shmem.Loc
}

// DefaultReg returns the register name for an instance.
func DefaultReg(instance string) Reg { return Reg{D: shmem.Loc(instance + ".D2")} }

// Machine executes one switch-to-CASCons(val) or propose(val) call as
// atomic steps (a single step each, per Figure 3).
type Machine struct {
	reg    Reg
	val    trace.Value
	swIn   bool // switch-to-CASCons (true) vs propose by switched client
	done   bool
	result trace.Value
}

// NewSwitchMachine prepares switch-to-CASCons(val).
func NewSwitchMachine(reg Reg, val trace.Value) *Machine {
	return &Machine{reg: reg, val: val, swIn: true}
}

// NewProposeMachine prepares propose() by a client that switched earlier
// (Figure 3 line 7: just return D).
func NewProposeMachine(reg Reg) *Machine {
	return &Machine{reg: reg}
}

// Done reports completion.
func (m *Machine) Done() bool { return m.done }

// Result returns the decided value; valid only after Done.
func (m *Machine) Result() trace.Value { return m.result }

// Clone returns an independent copy.
func (m *Machine) Clone() *Machine {
	c := *m
	return &c
}

// Key canonically encodes local state.
func (m *Machine) Key() string {
	return string(m.val) + "|" + strconv.FormatBool(m.swIn) + "|" +
		strconv.FormatBool(m.done) + "|" + m.result
}

// Step performs the single atomic access of Figure 3.
func (m *Machine) Step(mem *shmem.Mem) {
	if m.done {
		panic("cascons: step after completion")
	}
	if m.swIn {
		after, _ := mem.CAS(m.reg.D, adt.Bottom, m.val)
		m.result = after
	} else {
		m.result = mem.Read(m.reg.D)
	}
	m.done = true
}

// NativePhase is Figure 3 over a sync/atomic CAS cell, as a core.Phase.
type NativePhase struct {
	d shmem.CASCell
}

var _ core.Phase = (*NativePhase)(nil)

// NewNativePhase returns a fresh CASCons instance.
func NewNativePhase() *NativePhase { return &NativePhase{} }

// Name implements core.Phase.
func (p *NativePhase) Name() string { return "cascons" }

// SwitchIn implements core.Phase: return CAS(D, ⊥, init).
func (p *NativePhase) SwitchIn(c trace.ClientID, in, init trace.Value) (core.Outcome, error) {
	return core.ReturnOutcome(adt.DecideOutput(p.d.CompareAndSwapFromBottom(init))), nil
}

// Invoke implements core.Phase: a client that switched earlier proposes
// again; the consensus is already won, so return D (Figure 3 line 7).
func (p *NativePhase) Invoke(c trace.ClientID, in trace.Value) (core.Outcome, error) {
	d := p.d.Load()
	if d == adt.Bottom {
		return core.Outcome{}, fmt.Errorf("cascons: propose before any switch-in")
	}
	return core.ReturnOutcome(adt.DecideOutput(d)), nil
}
