package paxos

import (
	"testing"

	"repro/internal/mpcons"
	"repro/internal/msgnet"
	"repro/internal/trace"
)

type sentMsg struct {
	to msgnet.ProcID
	m  any
}

type fakeEnv struct {
	self    msgnet.ProcID
	index   int
	clients []msgnet.ProcID
	servers []msgnet.ProcID
	sent    []sentMsg
	timers  map[string]msgnet.Time
	decided *trace.Value
}

func newFakeEnv(index, nClients, nServers int) *fakeEnv {
	e := &fakeEnv{index: index, timers: map[string]msgnet.Time{}}
	for i := 0; i < nClients; i++ {
		e.clients = append(e.clients, msgnet.ProcID(rune('c'+i)))
	}
	for i := 0; i < nServers; i++ {
		e.servers = append(e.servers, msgnet.ProcID(rune('A'+i)))
	}
	e.self = e.clients[index]
	return e
}

func (e *fakeEnv) Self() msgnet.ProcID          { return e.self }
func (e *fakeEnv) ClientIndex() int             { return e.index }
func (e *fakeEnv) Clients() []msgnet.ProcID     { return e.clients }
func (e *fakeEnv) Servers() []msgnet.ProcID     { return e.servers }
func (e *fakeEnv) Now() msgnet.Time             { return 0 }
func (e *fakeEnv) Send(to msgnet.ProcID, m any) { e.sent = append(e.sent, sentMsg{to, m}) }
func (e *fakeEnv) Broadcast(m any) {
	for _, s := range e.servers {
		e.Send(s, m)
	}
}
func (e *fakeEnv) SetTimer(name string, d msgnet.Time) { e.timers[name] = d }
func (e *fakeEnv) CancelTimer(name string)             { delete(e.timers, name) }
func (e *fakeEnv) Decide(v trace.Value)                { e.decided = &v }
func (e *fakeEnv) SwitchTo(sv trace.Value)             { panic("paxos never switches out") }

var _ mpcons.ClientEnv = (*fakeEnv)(nil)

func (e *fakeEnv) lastBallot(t *testing.T) int64 {
	t.Helper()
	for i := len(e.sent) - 1; i >= 0; i-- {
		switch m := e.sent[i].m.(type) {
		case prepareMsg:
			return m.B
		}
	}
	t.Fatal("no prepare sent")
	return 0
}

func TestProposerHappyPath(t *testing.T) {
	env := newFakeEnv(0, 2, 3)
	p := Protocol{}.NewClient(env)
	p.Propose("v")
	b := env.lastBallot(t)
	// Majority of empty promises -> accept(b, own value).
	p.OnMessage("A", promiseMsg{B: b})
	p.OnMessage("B", promiseMsg{B: b})
	var acc *acceptMsg
	for _, s := range env.sent {
		if m, ok := s.m.(acceptMsg); ok {
			acc = &m
			break
		}
	}
	if acc == nil || acc.V != "v" || acc.B != b {
		t.Fatalf("phase 2 message wrong: %+v", acc)
	}
	// Majority of accepted -> decide + notify the other client.
	p.OnMessage("A", acceptedMsg{B: b, V: "v"})
	p.OnMessage("B", acceptedMsg{B: b, V: "v"})
	if env.decided == nil || *env.decided != "v" {
		t.Fatalf("decided = %v", env.decided)
	}
	informed := false
	for _, s := range env.sent {
		if _, ok := s.m.(decidedMsg); ok && s.to == "d" {
			informed = true
		}
	}
	if !informed {
		t.Fatal("other learner not informed")
	}
}

// A proposer must adopt the highest-ballot accepted value from promises.
func TestProposerAdoptsAcceptedValue(t *testing.T) {
	env := newFakeEnv(0, 2, 3)
	p := Protocol{}.NewClient(env)
	p.Propose("mine")
	b := env.lastBallot(t)
	p.OnMessage("A", promiseMsg{B: b, AcceptedB: 1, AcceptedV: "old"})
	p.OnMessage("B", promiseMsg{B: b, AcceptedB: 2, AcceptedV: "newer"})
	var acc *acceptMsg
	for _, s := range env.sent {
		if m, ok := s.m.(acceptMsg); ok {
			acc = &m
		}
	}
	if acc == nil || acc.V != "newer" {
		t.Fatalf("must adopt highest accepted value; got %+v", acc)
	}
}

func TestProposerRetriesWithHigherBallot(t *testing.T) {
	env := newFakeEnv(1, 2, 3)
	p := Protocol{}.NewClient(env)
	p.Propose("v")
	b1 := env.lastBallot(t)
	p.OnTimer("retry")
	b2 := env.lastBallot(t)
	if b2 <= b1 {
		t.Fatalf("retry ballot %d not higher than %d", b2, b1)
	}
	// Ballots of different clients never collide: b mod nClients encodes
	// the client index (+1 offset).
	if b1%2 == b2%2 && b1 == b2 {
		t.Fatal("ballot collision")
	}
}

func TestLearnerDecidesBeforeSwitchIn(t *testing.T) {
	env := newFakeEnv(0, 2, 3)
	p := Protocol{}.NewClient(env)
	// Decision learned while idle (not yet switched in).
	p.OnMessage("c", decidedMsg{V: "w"})
	if env.decided != nil {
		t.Fatal("idle learner resolved a non-pending operation")
	}
	p.SwitchIn("mine", "sv")
	if env.decided == nil || *env.decided != "w" {
		t.Fatalf("late switch-in must decide the learned value; got %v", env.decided)
	}
}

func TestSwitchInProposesSwitchValue(t *testing.T) {
	env := newFakeEnv(0, 2, 3)
	p := Protocol{}.NewClient(env)
	p.SwitchIn("pendingValue", "sv")
	b := env.lastBallot(t)
	p.OnMessage("A", promiseMsg{B: b})
	p.OnMessage("B", promiseMsg{B: b})
	var acc *acceptMsg
	for _, s := range env.sent {
		if m, ok := s.m.(acceptMsg); ok {
			acc = &m
		}
	}
	if acc == nil || acc.V != "sv" {
		t.Fatalf("Backup must propose the switch value; got %+v", acc)
	}
}

type serverSent struct {
	to msgnet.ProcID
	m  any
}

type fakeServerEnv struct{ sent []serverSent }

func (e *fakeServerEnv) Self() msgnet.ProcID          { return "A" }
func (e *fakeServerEnv) Clients() []msgnet.ProcID     { return nil }
func (e *fakeServerEnv) Servers() []msgnet.ProcID     { return nil }
func (e *fakeServerEnv) Now() msgnet.Time             { return 0 }
func (e *fakeServerEnv) Send(to msgnet.ProcID, m any) { e.sent = append(e.sent, serverSent{to, m}) }
func (e *fakeServerEnv) SetTimer(string, msgnet.Time) {}

var _ mpcons.ServerEnv = (*fakeServerEnv)(nil)

func TestAcceptorPromisesAndNacks(t *testing.T) {
	env := &fakeServerEnv{}
	a := Protocol{}.NewServer(env)
	a.OnMessage("c1", prepareMsg{B: 5})
	if _, ok := env.sent[0].m.(promiseMsg); !ok {
		t.Fatalf("expected promise, got %v", env.sent[0].m)
	}
	a.OnMessage("c2", prepareMsg{B: 3}) // lower ballot
	if m, ok := env.sent[1].m.(nackMsg); !ok || m.Promised != 5 {
		t.Fatalf("expected nack(5), got %v", env.sent[1].m)
	}
}

func TestAcceptorAcceptsAndReportsHistory(t *testing.T) {
	env := &fakeServerEnv{}
	a := Protocol{}.NewServer(env)
	a.OnMessage("c1", prepareMsg{B: 5})
	a.OnMessage("c1", acceptMsg{B: 5, V: "v"})
	if m, ok := env.sent[1].m.(acceptedMsg); !ok || m.V != "v" || m.B != 5 {
		t.Fatalf("expected accepted(5,v), got %v", env.sent[1].m)
	}
	// A later prepare must report the accepted value.
	a.OnMessage("c2", prepareMsg{B: 9})
	if m, ok := env.sent[2].m.(promiseMsg); !ok || m.AcceptedB != 5 || m.AcceptedV != "v" {
		t.Fatalf("promise must carry accepted history, got %v", env.sent[2].m)
	}
	// An accept below the promise is refused.
	a.OnMessage("c1", acceptMsg{B: 7, V: "w"})
	if _, ok := env.sent[3].m.(nackMsg); !ok {
		t.Fatalf("stale accept must be nacked, got %v", env.sent[3].m)
	}
}
