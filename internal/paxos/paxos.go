// Package paxos implements single-decree Paxos as the Backup speculation
// phase of §2.1: clients act as proposers and learners, servers as
// acceptors. It decides as long as a majority of acceptors is alive, and
// treats switch calls from the previous phase as regular proposals of the
// switch value (the paper's Backup).
//
// The implementation is the classic two-phase protocol:
//
//	Phase 1: a proposer picks a unique ballot b and sends prepare(b);
//	         an acceptor with promised < b replies promise(b, accepted).
//	Phase 2: on a majority of promises the proposer sends accept(b, v)
//	         where v is the highest-ballot accepted value among the
//	         promises, or its own proposal; an acceptor with promised ≤ b
//	         records (b, v) and replies accepted(b, v).
//
// On a majority of accepted(b, ·) the proposer decides and broadcasts the
// decision to all clients (learners). Stalled proposers retry with higher
// ballots after a deterministic per-client backoff, so the protocol is
// live under partial synchrony and message loss in the simulator.
package paxos

import (
	"repro/internal/mpcons"
	"repro/internal/msgnet"
	"repro/internal/trace"
)

type prepareMsg struct{ B int64 }

type promiseMsg struct {
	B         int64
	AcceptedB int64 // 0 when nothing accepted
	AcceptedV trace.Value
}

type nackMsg struct{ Promised int64 }

type acceptMsg struct {
	B int64
	V trace.Value
}

type acceptedMsg struct {
	B int64
	V trace.Value
}

type decidedMsg struct{ V trace.Value }

// Protocol is the Paxos phase protocol.
type Protocol struct {
	// RetryBase is the base backoff before a stalled proposer starts a
	// higher ballot; the effective backoff grows with the round and is
	// skewed by the client index to break symmetry. Default 8.
	RetryBase msgnet.Time
}

var _ mpcons.PhaseProtocol = Protocol{}

// Name implements PhaseProtocol.
func (Protocol) Name() string { return "paxos" }

func (p Protocol) retryBase() msgnet.Time {
	if p.RetryBase <= 0 {
		return 8
	}
	return p.RetryBase
}

// NewClient implements PhaseProtocol.
func (p Protocol) NewClient(env mpcons.ClientEnv) mpcons.ClientPhase {
	return &proposer{proto: p, env: env}
}

// NewServer implements PhaseProtocol.
func (p Protocol) NewServer(env mpcons.ServerEnv) mpcons.ServerPhase {
	return &acceptor{env: env}
}

// proposer drives ballots for one client and learns decisions.
type proposer struct {
	proto Protocol
	env   mpcons.ClientEnv

	active   bool
	value    trace.Value // value to propose this ballot
	round    int64
	ballot   int64
	promises map[msgnet.ProcID]promiseMsg
	accepts  map[msgnet.ProcID]bool
	phase2   bool

	decided  bool
	decision trace.Value
}

func (pr *proposer) majority() int { return len(pr.env.Servers())/2 + 1 }

// ballotFor builds a globally unique, round-increasing ballot.
func (pr *proposer) ballotFor(round int64) int64 {
	return round*int64(len(pr.env.Clients())) + int64(pr.env.ClientIndex()) + 1
}

func (pr *proposer) Propose(v trace.Value) { pr.start(v) }

// SwitchIn proposes the switch value (Backup treats switch calls as
// regular proposals of the switch value, §2.1).
func (pr *proposer) SwitchIn(pending, sv trace.Value) { pr.start(sv) }

func (pr *proposer) start(v trace.Value) {
	if pr.decided {
		// The decision is already known (learned before switching in).
		pr.env.Decide(pr.decision)
		return
	}
	pr.active = true
	pr.value = v
	pr.newBallot()
}

func (pr *proposer) newBallot() {
	pr.round++
	pr.ballot = pr.ballotFor(pr.round)
	pr.promises = map[msgnet.ProcID]promiseMsg{}
	pr.accepts = map[msgnet.ProcID]bool{}
	pr.phase2 = false
	pr.env.Broadcast(prepareMsg{B: pr.ballot})
	// Deterministic, symmetry-breaking backoff.
	backoff := pr.proto.retryBase() * msgnet.Time(1+pr.round)
	backoff += msgnet.Time(pr.env.ClientIndex() * 2)
	pr.env.SetTimer("retry", backoff)
}

func (pr *proposer) OnTimer(name string) {
	if name != "retry" || !pr.active || pr.decided {
		return
	}
	pr.newBallot()
}

func (pr *proposer) OnMessage(from msgnet.ProcID, payload any) {
	switch m := payload.(type) {
	case decidedMsg:
		pr.learn(m.V)
	case promiseMsg:
		if !pr.active || pr.decided || m.B != pr.ballot || pr.phase2 {
			return
		}
		pr.promises[from] = m
		if len(pr.promises) < pr.majority() {
			return
		}
		// Choose the highest-ballot accepted value, if any.
		v := pr.value
		var bestB int64
		for _, p := range pr.promises {
			if p.AcceptedB > bestB {
				bestB = p.AcceptedB
				v = p.AcceptedV
			}
		}
		pr.phase2 = true
		pr.env.Broadcast(acceptMsg{B: pr.ballot, V: v})
	case acceptedMsg:
		if !pr.active || pr.decided || m.B != pr.ballot {
			return
		}
		pr.accepts[from] = true
		if len(pr.accepts) >= pr.majority() {
			// Decided: inform all learners (including self).
			for _, c := range pr.env.Clients() {
				if c == pr.env.Self() {
					continue
				}
				pr.env.Send(c, decidedMsg{V: m.V})
			}
			pr.learn(m.V)
		}
	case nackMsg:
		// A higher ballot exists; the retry timer will start a new round.
	}
}

// learn records the decision and resolves the pending operation, if any.
func (pr *proposer) learn(v trace.Value) {
	if !pr.decided {
		pr.decided = true
		pr.decision = v
	}
	if pr.active {
		pr.active = false
		pr.env.CancelTimer("retry")
		pr.env.Decide(pr.decision)
	}
}

// Round implements mpcons.BallotTracker.
func (pr *proposer) Round() int64 { return pr.round }

// SetRoundFloor implements mpcons.BallotTracker: the proposer's next
// ballot will use a round above r. Hosts call it when replacing an
// abandoned proposer so the successor never reuses a ballot the
// predecessor may have driven to phase 2 (same-ballot proposals of
// different values break agreement).
func (pr *proposer) SetRoundFloor(r int64) {
	if r > pr.round {
		pr.round = r
	}
}

var _ mpcons.BallotTracker = (*proposer)(nil)

// acceptor is the server-side Paxos role.
type acceptor struct {
	env       mpcons.ServerEnv
	promised  int64
	acceptedB int64
	acceptedV trace.Value
}

var _ mpcons.Durable = (*acceptor)(nil)

// acceptorState is the durable snapshot of an acceptor: its promise and
// accepted pair. Classic Paxos requires these to survive crashes — an
// acceptor that forgets a promise can promise a lower ballot, and one
// that forgets an accepted value can let a stale proposer overturn a
// chosen value.
type acceptorState struct {
	Promised  int64
	AcceptedB int64
	AcceptedV trace.Value
}

// Snapshot implements mpcons.Durable.
func (a *acceptor) Snapshot() any {
	return acceptorState{Promised: a.promised, AcceptedB: a.acceptedB, AcceptedV: a.acceptedV}
}

// Restore implements mpcons.Durable.
func (a *acceptor) Restore(snap any) {
	st := snap.(acceptorState)
	a.promised, a.acceptedB, a.acceptedV = st.Promised, st.AcceptedB, st.AcceptedV
}

func (a *acceptor) OnMessage(from msgnet.ProcID, payload any) {
	switch m := payload.(type) {
	case prepareMsg:
		if m.B > a.promised {
			a.promised = m.B
			a.env.Send(from, promiseMsg{B: m.B, AcceptedB: a.acceptedB, AcceptedV: a.acceptedV})
		} else {
			a.env.Send(from, nackMsg{Promised: a.promised})
		}
	case acceptMsg:
		if m.B >= a.promised {
			a.promised = m.B
			a.acceptedB = m.B
			a.acceptedV = m.V
			a.env.Send(from, acceptedMsg{B: m.B, V: m.V})
		} else {
			a.env.Send(from, nackMsg{Promised: a.promised})
		}
	}
}

func (a *acceptor) OnTimer(string) {}
