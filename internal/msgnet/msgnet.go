// Package msgnet is a deterministic discrete-event simulator of an
// asynchronous message-passing system with crash faults — the substrate of
// the paper's first case study (§2.1). It substitutes for a real cluster
// (DESIGN.md, substitution 1): processes exchange messages over links with
// configurable delay distributions, loss, duplication, link blocking
// (partitions) and crash injection, all driven by a seeded RNG so that
// every run is replayable bit-for-bit.
//
// Virtual time is measured in abstract delay units. With the default
// unit-delay configuration, elapsed virtual time equals the number of
// sequential message delays on the critical path, which is the latency
// metric the paper uses ("Quorum decides in two message delays; Paxos has
// a minimum latency of three").
package msgnet

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is virtual time in abstract delay units.
type Time int64

// ProcID identifies a simulated process.
type ProcID string

// Handler implements a process's protocol logic. Handlers run in the
// single-threaded event loop; they must not retain n across events (it is
// stable, but must only be used from within callbacks).
type Handler interface {
	// Init runs when the simulation starts (before any event).
	Init(n *Node)
	// OnMessage delivers a message sent by from.
	OnMessage(n *Node, from ProcID, payload any)
	// OnTimer fires a timer previously set with SetTimer.
	OnTimer(n *Node, name string)
}

// Config parameterizes the network.
type Config struct {
	// Seed drives all randomness; runs with equal seeds are identical.
	Seed int64
	// MinDelay and MaxDelay bound per-message delivery delay, drawn
	// uniformly. Defaults to 1 and 1 (unit delay).
	MinDelay, MaxDelay Time
	// DropProb is the probability a message is lost.
	DropProb float64
	// DupProb is the probability a message is delivered twice.
	DupProb float64
}

func (c Config) withDefaults() Config {
	if c.MinDelay <= 0 {
		c.MinDelay = 1
	}
	if c.MaxDelay < c.MinDelay {
		c.MaxDelay = c.MinDelay
	}
	return c
}

type eventKind uint8

const (
	evDeliver eventKind = iota
	evTimer
	evCrash
	evCall
)

type event struct {
	at   Time
	seq  int64 // FIFO tie-break: determinism under equal times
	kind eventKind

	to      ProcID
	from    ProcID
	payload any

	timerName string
	timerGen  int64

	call func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Network is the simulator. Create with New, add processes with AddNode,
// then Run.
type Network struct {
	cfg   Config
	rng   *rand.Rand
	now   Time
	seq   int64
	queue eventHeap
	nodes map[ProcID]*Node
	order []*Node // insertion order, for deterministic Init
	// blocked links (directed); messages over blocked links are dropped.
	blocked map[[2]ProcID]bool

	// Statistics.
	sent      int64
	delivered int64
	dropped   int64
}

// New creates an empty network.
func New(cfg Config) *Network {
	cfg = cfg.withDefaults()
	return &Network{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		nodes:   map[ProcID]*Node{},
		blocked: map[[2]ProcID]bool{},
	}
}

// Node is a process endpoint handed to Handler callbacks.
type Node struct {
	id          ProcID
	net         *Network
	handler     Handler
	crashed     bool
	initialized bool
	// timerGen invalidates outstanding timers per name when reset.
	timerGen map[string]int64
}

// AddNode registers a process. It panics if the ID is duplicated (a
// configuration bug).
func (w *Network) AddNode(id ProcID, h Handler) *Node {
	if _, dup := w.nodes[id]; dup {
		panic(fmt.Sprintf("msgnet: duplicate node %q", id))
	}
	n := &Node{id: id, net: w, handler: h, timerGen: map[string]int64{}}
	w.nodes[id] = n
	w.order = append(w.order, n)
	return n
}

// Procs returns the number of registered processes.
func (w *Network) Procs() int { return len(w.nodes) }

// At schedules fn to run at absolute virtual time t (or now, if t is in
// the past). Used to script workloads and fault injections.
func (w *Network) At(t Time, fn func()) {
	if t < w.now {
		t = w.now
	}
	w.push(&event{at: t, kind: evCall, call: fn})
}

// Crash schedules process id to crash at time t: from then on it receives
// no messages or timers and sends nothing.
func (w *Network) Crash(id ProcID, t Time) {
	w.At(t, func() {
		if n := w.nodes[id]; n != nil {
			n.crashed = true
		}
	})
}

// Block drops all messages from a to b until Unblock. Blocking both
// directions of every pair across a cut simulates a partition.
func (w *Network) Block(a, b ProcID) { w.blocked[[2]ProcID{a, b}] = true }

// Unblock re-enables the link from a to b.
func (w *Network) Unblock(a, b ProcID) { delete(w.blocked, [2]ProcID{a, b}) }

// Now returns current virtual time.
func (w *Network) Now() Time { return w.now }

// Stats returns (sent, delivered, dropped) message counts.
func (w *Network) Stats() (sent, delivered, dropped int64) {
	return w.sent, w.delivered, w.dropped
}

func (w *Network) push(e *event) {
	e.seq = w.seq
	w.seq++
	heap.Push(&w.queue, e)
}

// Run processes events until the queue is empty or virtual time would
// exceed maxTime. It returns the virtual time of the last processed event.
func (w *Network) Run(maxTime Time) Time {
	for _, n := range w.order {
		if !n.initialized {
			n.initialized = true
			n.handler.Init(n)
		}
	}
	for len(w.queue) > 0 {
		e := w.queue[0]
		if e.at > maxTime {
			break
		}
		heap.Pop(&w.queue)
		w.now = e.at
		w.dispatch(e)
	}
	return w.now
}

func (w *Network) dispatch(e *event) {
	switch e.kind {
	case evCall:
		e.call()
	case evDeliver:
		n := w.nodes[e.to]
		if n == nil || n.crashed {
			return
		}
		w.delivered++
		n.handler.OnMessage(n, e.from, e.payload)
	case evTimer:
		n := w.nodes[e.to]
		if n == nil || n.crashed {
			return
		}
		if n.timerGen[e.timerName] != e.timerGen {
			return // cancelled or reset
		}
		n.handler.OnTimer(n, e.timerName)
	}
}

// ID returns the node's process ID.
func (n *Node) ID() ProcID { return n.id }

// Now returns the network's current virtual time.
func (n *Node) Now() Time { return n.net.now }

// Crashed reports whether the node has crashed.
func (n *Node) Crashed() bool { return n.crashed }

// Send queues a message to the destination, subject to delay, loss and
// duplication. Sends from crashed nodes are ignored.
func (n *Node) Send(to ProcID, payload any) {
	w := n.net
	if n.crashed {
		return
	}
	w.sent++
	if w.blocked[[2]ProcID{n.id, to}] {
		w.dropped++
		return
	}
	if w.cfg.DropProb > 0 && w.rng.Float64() < w.cfg.DropProb {
		w.dropped++
		return
	}
	deliver := func() {
		d := w.cfg.MinDelay
		if w.cfg.MaxDelay > w.cfg.MinDelay {
			d += Time(w.rng.Int63n(int64(w.cfg.MaxDelay - w.cfg.MinDelay + 1)))
		}
		w.push(&event{at: w.now + d, kind: evDeliver, to: to, from: n.id, payload: payload})
	}
	deliver()
	if w.cfg.DupProb > 0 && w.rng.Float64() < w.cfg.DupProb {
		deliver()
	}
}

// SetTimer (re)arms the named timer to fire after d. Re-arming replaces
// any outstanding instance of the same name.
func (n *Node) SetTimer(name string, d Time) {
	n.timerGen[name]++
	n.net.push(&event{
		at:        n.net.now + d,
		kind:      evTimer,
		to:        n.id,
		timerName: name,
		timerGen:  n.timerGen[name],
	})
}

// CancelTimer cancels the named timer if armed.
func (n *Node) CancelTimer(name string) { n.timerGen[name]++ }

// ReleaseTimer cancels the named timer and forgets its generation
// bookkeeping. SetTimer/CancelTimer retain one map entry per distinct
// timer name for the node's lifetime; handlers that scope timer names to
// short-lived instances (e.g. one replicated-log slot) release the names
// when the instance retires so memory stays proportional to live
// instances. A released name must never be armed again: a stale
// in-flight event of the old name could then fire against the fresh
// generation counter.
func (n *Node) ReleaseTimer(name string) { delete(n.timerGen, name) }
