// Package msgnet is a deterministic discrete-event simulator of an
// asynchronous message-passing system with crash faults — the substrate of
// the paper's first case study (§2.1). It substitutes for a real cluster
// (DESIGN.md, substitution 1): processes exchange messages over links with
// configurable delay distributions, loss, duplication, link blocking
// (partitions), crash injection and crash–recovery, all driven by seeded
// RNGs so that every run is replayable bit-for-bit.
//
// Virtual time is measured in abstract delay units. With the default
// unit-delay configuration, elapsed virtual time equals the number of
// sequential message delays on the critical path, which is the latency
// metric the paper uses ("Quorum decides in two message delays; Paxos has
// a minimum latency of three").
//
// Fault injection uses two independent random streams: the base stream
// (message delay, global drop/dup) and a fault stream consumed only by
// per-link rules. A run with no link rules therefore replays the exact
// event schedule of the same seed before any rules existed — the property
// the experiments rely on to compare faulty and fault-free runs.
package msgnet

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is virtual time in abstract delay units.
type Time int64

// ProcID identifies a simulated process.
type ProcID string

// Handler implements a process's protocol logic. Handlers run in the
// single-threaded event loop; they must not retain n across events (it is
// stable, but must only be used from within callbacks).
type Handler interface {
	// Init runs when the simulation starts (before any event).
	Init(n *Node)
	// OnMessage delivers a message sent by from.
	OnMessage(n *Node, from ProcID, payload any)
	// OnTimer fires a timer previously set with SetTimer.
	OnTimer(n *Node, name string)
}

// RecoverableHandler is implemented by handlers that support crash–
// recovery. When Network.Restart revives a crashed node, OnRestart runs
// before any further delivery so the handler can discard volatile state
// and rebuild from whatever it models as durable. Handlers that do not
// implement it resume with their in-memory state intact, which models a
// process whose entire state is durable (crash = long pause losing only
// in-flight messages and timers).
type RecoverableHandler interface {
	Handler
	OnRestart(n *Node)
}

// Config parameterizes the network.
type Config struct {
	// Seed drives all randomness; runs with equal seeds are identical.
	Seed int64
	// MinDelay and MaxDelay bound per-message delivery delay, drawn
	// uniformly. Defaults to 1 and 1 (unit delay).
	MinDelay, MaxDelay Time
	// DropProb is the probability a message is lost.
	DropProb float64
	// DupProb is the probability a message is delivered twice.
	DupProb float64
}

func (c Config) withDefaults() Config {
	if c.MinDelay <= 0 {
		c.MinDelay = 1
	}
	if c.MaxDelay < c.MinDelay {
		c.MaxDelay = c.MinDelay
	}
	return c
}

// LinkRule is a per-link fault rule applied on top of the global Config
// probabilities: extra loss, extra duplication and extra delay for
// messages over one directed link. Rules draw from the dedicated fault
// RNG stream, never from the base stream.
type LinkRule struct {
	// DropProb is the probability a message on the link is lost.
	DropProb float64
	// DupProb is the probability a message on the link is duplicated.
	DupProb float64
	// ExtraMinDelay and ExtraMaxDelay bound an additional delivery delay,
	// drawn uniformly, added to the base delay (both zero = no extra).
	ExtraMinDelay, ExtraMaxDelay Time
}

func (r LinkRule) extraDelay(rng *rand.Rand) Time {
	d := r.ExtraMinDelay
	if r.ExtraMaxDelay > r.ExtraMinDelay {
		d += Time(rng.Int63n(int64(r.ExtraMaxDelay - r.ExtraMinDelay + 1)))
	}
	return d
}

type eventKind uint8

const (
	evDeliver eventKind = iota
	evTimer
	evCrash
	evCall
)

type event struct {
	at   Time
	seq  int64 // FIFO tie-break: determinism under equal times
	kind eventKind

	to      ProcID
	from    ProcID
	payload any

	timerName  string
	timerGen   int64
	timerEpoch int64

	call func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Network is the simulator. Create with New, add processes with AddNode,
// then Run.
type Network struct {
	cfg   Config
	rng   *rand.Rand // base stream: delay, global drop/dup
	frng  *rand.Rand // fault stream: per-link rules only
	now   Time
	seq   int64
	queue eventHeap
	nodes map[ProcID]*Node
	order []*Node // insertion order, for deterministic Init
	// blocked links (directed), counted so overlapping partitions nest:
	// a link is open only when its count is zero.
	blocked map[[2]ProcID]int
	rules   map[[2]ProcID]LinkRule

	// dig is a running FNV-1a digest of the dispatched event schedule.
	dig uint64

	// Statistics.
	sent       int64
	delivered  int64
	dropped    int64
	duplicated int64
}

// New creates an empty network.
func New(cfg Config) *Network {
	cfg = cfg.withDefaults()
	return &Network{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		// Distinct derived seed: the fault stream must differ from the base
		// stream yet stay a pure function of cfg.Seed.
		frng:    rand.New(rand.NewSource(cfg.Seed ^ 0x5eedfa17)),
		nodes:   map[ProcID]*Node{},
		blocked: map[[2]ProcID]int{},
		rules:   map[[2]ProcID]LinkRule{},
		dig:     fnvOffset,
	}
}

// Node is a process endpoint handed to Handler callbacks.
type Node struct {
	id          ProcID
	net         *Network
	handler     Handler
	crashed     bool
	initialized bool
	// timerGen invalidates outstanding timers per name when reset; epoch
	// invalidates every timer armed before the node's last crash.
	timerGen map[string]int64
	epoch    int64
}

// AddNode registers a process. It panics if the ID is duplicated (a
// configuration bug).
func (w *Network) AddNode(id ProcID, h Handler) *Node {
	if _, dup := w.nodes[id]; dup {
		panic(fmt.Sprintf("msgnet: duplicate node %q", id))
	}
	n := &Node{id: id, net: w, handler: h, timerGen: map[string]int64{}}
	w.nodes[id] = n
	w.order = append(w.order, n)
	return n
}

// Procs returns the number of registered processes.
func (w *Network) Procs() int { return len(w.nodes) }

// NodeIDs returns all registered process IDs in insertion order.
func (w *Network) NodeIDs() []ProcID {
	ids := make([]ProcID, len(w.order))
	for i, n := range w.order {
		ids[i] = n.id
	}
	return ids
}

// At schedules fn to run at absolute virtual time t (or now, if t is in
// the past). Used to script workloads and fault injections.
func (w *Network) At(t Time, fn func()) {
	if t < w.now {
		t = w.now
	}
	w.push(&event{at: t, kind: evCall, call: fn})
}

// Crash schedules process id to crash at time t: from then on it receives
// no messages or timers and sends nothing, until (and unless) Restart
// revives it. Crashing discards all timer bookkeeping — a crashed process
// loses its timers, and stale in-flight timer events can never fire into
// a post-restart incarnation (each crash advances the node's epoch).
func (w *Network) Crash(id ProcID, t Time) {
	w.At(t, func() {
		if n := w.nodes[id]; n != nil && !n.crashed {
			n.crashed = true
			n.epoch++
			// Drop, don't leak: outstanding names would otherwise pin one
			// map entry each forever on a node that can no longer fire them.
			for name := range n.timerGen {
				delete(n.timerGen, name)
			}
		}
	})
}

// Restart schedules process id to recover at time t. A node that is not
// crashed at that time is left untouched. The revived node receives
// messages sent after the restart; messages and timers from before the
// crash are gone. If the handler implements RecoverableHandler its
// OnRestart hook runs first, so it can rebuild from durable state.
func (w *Network) Restart(id ProcID, t Time) {
	w.At(t, func() {
		n := w.nodes[id]
		if n == nil || !n.crashed {
			return
		}
		n.crashed = false
		if rh, ok := n.handler.(RecoverableHandler); ok {
			rh.OnRestart(n)
		}
	})
}

// Block drops all messages from a to b until a matching Unblock. Blocking
// both directions of every pair across a cut simulates a partition.
// Blocks nest: a link blocked twice needs two Unblocks to reopen, so
// overlapping fault plans compose.
func (w *Network) Block(a, b ProcID) { w.blocked[[2]ProcID{a, b}]++ }

// Unblock undoes one Block of the link from a to b.
func (w *Network) Unblock(a, b ProcID) {
	k := [2]ProcID{a, b}
	if w.blocked[k] <= 1 {
		delete(w.blocked, k)
	} else {
		w.blocked[k]--
	}
}

// SetLinkRule installs (or replaces) the fault rule for the directed link
// from a to b, effective for messages sent from now on.
func (w *Network) SetLinkRule(a, b ProcID, r LinkRule) { w.rules[[2]ProcID{a, b}] = r }

// ClearLinkRule removes the fault rule for the directed link from a to b.
func (w *Network) ClearLinkRule(a, b ProcID) { delete(w.rules, [2]ProcID{a, b}) }

// Now returns current virtual time.
func (w *Network) Now() Time { return w.now }

// Stats returns (sent, delivered, dropped) message counts.
func (w *Network) Stats() (sent, delivered, dropped int64) {
	return w.sent, w.delivered, w.dropped
}

// Duplicated returns the number of extra message copies scheduled by
// duplication (global DupProb or link rules).
func (w *Network) Duplicated() int64 { return w.duplicated }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * fnvPrime }

func fnvUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = fnvByte(h, byte(v>>(8*i)))
	}
	return h
}

func fnvString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = fnvByte(h, s[i])
	}
	return fnvByte(h, 0xff) // terminator: "ab","c" ≠ "a","bc"
}

// ScheduleDigest returns a digest of the effective event schedule so
// far: every event that reached a handler (or scheduled call), with its
// time, kind and endpoints, in dispatch order. Cancelled timers and
// deliveries to crashed nodes are excluded — they are queue residue, not
// behavior. Two runs with equal digests executed the same schedule event
// for event: the determinism oracle for fault-plan replay tests, and the
// reason a run that merely *arms* extra (never-firing) timers still
// digests identically to one that doesn't.
func (w *Network) ScheduleDigest() uint64 { return w.dig }

func (w *Network) push(e *event) {
	e.seq = w.seq
	w.seq++
	heap.Push(&w.queue, e)
}

// Run processes events until the queue is empty or virtual time would
// exceed maxTime. It returns the virtual time of the last effective
// event: queue residue (cancelled timers, deliveries to crashed nodes)
// neither advances the clock nor counts as behavior, so a run that armed
// timers which never fire ends at the same virtual time as one that
// never armed them.
func (w *Network) Run(maxTime Time) Time {
	for _, n := range w.order {
		if !n.initialized {
			n.initialized = true
			n.handler.Init(n)
		}
	}
	for len(w.queue) > 0 {
		e := w.queue[0]
		if e.at > maxTime {
			break
		}
		heap.Pop(&w.queue)
		if w.dead(e) {
			continue
		}
		w.now = e.at
		w.dispatch(e)
	}
	return w.now
}

// dead reports whether a popped event is queue residue with no
// observable effect: a cancelled or superseded timer, a timer armed
// before its node's last crash, or a delivery or timer for a crashed or
// unknown node. Dead events do not advance virtual time and are excluded
// from the schedule digest.
func (w *Network) dead(e *event) bool {
	switch e.kind {
	case evDeliver:
		n := w.nodes[e.to]
		return n == nil || n.crashed
	case evTimer:
		n := w.nodes[e.to]
		return n == nil || n.crashed ||
			n.epoch != e.timerEpoch || n.timerGen[e.timerName] != e.timerGen
	}
	return false
}

func (w *Network) dispatch(e *event) {
	switch e.kind {
	case evCall:
		w.digest(e)
		e.call()
	case evDeliver:
		w.digest(e)
		w.delivered++
		n := w.nodes[e.to]
		n.handler.OnMessage(n, e.from, e.payload)
	case evTimer:
		w.digest(e)
		n := w.nodes[e.to]
		n.handler.OnTimer(n, e.timerName)
	}
}

func (w *Network) digest(e *event) {
	h := fnvUint64(w.dig, uint64(e.at))
	h = fnvByte(h, byte(e.kind))
	h = fnvString(h, string(e.to))
	h = fnvString(h, string(e.from))
	w.dig = h
}

// ID returns the node's process ID.
func (n *Node) ID() ProcID { return n.id }

// Now returns the network's current virtual time.
func (n *Node) Now() Time { return n.net.now }

// Crashed reports whether the node has crashed.
func (n *Node) Crashed() bool { return n.crashed }

// Send queues a message to the destination, subject to delay, loss and
// duplication (global and per-link). Sends from crashed nodes are
// ignored.
func (n *Node) Send(to ProcID, payload any) {
	w := n.net
	if n.crashed {
		return
	}
	w.sent++
	if w.blocked[[2]ProcID{n.id, to}] > 0 {
		w.dropped++
		return
	}
	rule, ruled := w.rules[[2]ProcID{n.id, to}]
	if ruled && rule.DropProb > 0 && w.frng.Float64() < rule.DropProb {
		w.dropped++
		return
	}
	if w.cfg.DropProb > 0 && w.rng.Float64() < w.cfg.DropProb {
		w.dropped++
		return
	}
	deliver := func() {
		d := w.cfg.MinDelay
		if w.cfg.MaxDelay > w.cfg.MinDelay {
			d += Time(w.rng.Int63n(int64(w.cfg.MaxDelay - w.cfg.MinDelay + 1)))
		}
		if ruled {
			d += rule.extraDelay(w.frng)
		}
		w.push(&event{at: w.now + d, kind: evDeliver, to: to, from: n.id, payload: payload})
	}
	deliver()
	if ruled && rule.DupProb > 0 && w.frng.Float64() < rule.DupProb {
		w.duplicated++
		deliver()
	}
	if w.cfg.DupProb > 0 && w.rng.Float64() < w.cfg.DupProb {
		w.duplicated++
		deliver()
	}
}

// SetTimer (re)arms the named timer to fire after d. Re-arming replaces
// any outstanding instance of the same name.
func (n *Node) SetTimer(name string, d Time) {
	n.timerGen[name]++
	n.net.push(&event{
		at:         n.net.now + d,
		kind:       evTimer,
		to:         n.id,
		timerName:  name,
		timerGen:   n.timerGen[name],
		timerEpoch: n.epoch,
	})
}

// CancelTimer cancels the named timer if armed.
func (n *Node) CancelTimer(name string) { n.timerGen[name]++ }

// ReleaseTimer cancels the named timer and forgets its generation
// bookkeeping. SetTimer/CancelTimer retain one map entry per distinct
// timer name for the node's lifetime; handlers that scope timer names to
// short-lived instances (e.g. one replicated-log slot) release the names
// when the instance retires so memory stays proportional to live
// instances. A released name must never be armed again within one
// incarnation: a stale in-flight event of the old name could then fire
// against the fresh generation counter. (Crossing a crash is safe — the
// epoch guard invalidates pre-crash timers wholesale.)
func (n *Node) ReleaseTimer(name string) { delete(n.timerGen, name) }
