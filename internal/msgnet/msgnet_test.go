package msgnet

import (
	"testing"
)

// pingPong: "a" sends ping to "b" on init; "b" replies pong.
type pingPong struct {
	peer     ProcID
	starter  bool
	got      []string
	gotTimes []Time
}

func (p *pingPong) Init(n *Node) {
	if p.starter {
		n.Send(p.peer, "ping")
	}
}

func (p *pingPong) OnMessage(n *Node, from ProcID, payload any) {
	if s, ok := payload.(string); ok {
		p.got = append(p.got, s)
	} else {
		p.got = append(p.got, "?")
	}
	p.gotTimes = append(p.gotTimes, n.Now())
	if payload == "ping" {
		n.Send(from, "pong")
	}
}

func (p *pingPong) OnTimer(n *Node, name string) {
	p.got = append(p.got, "timer:"+name)
	p.gotTimes = append(p.gotTimes, n.Now())
}

func TestUnitDelayRoundTrip(t *testing.T) {
	w := New(Config{Seed: 1})
	a := &pingPong{peer: "b", starter: true}
	b := &pingPong{peer: "a"}
	w.AddNode("a", a)
	w.AddNode("b", b)
	end := w.Run(100)
	if len(b.got) != 1 || b.got[0] != "ping" {
		t.Fatalf("b got %v", b.got)
	}
	if len(a.got) != 1 || a.got[0] != "pong" {
		t.Fatalf("a got %v", a.got)
	}
	// Unit delays: ping at t=1, pong at t=2. Virtual time = message delays.
	if b.gotTimes[0] != 1 || a.gotTimes[0] != 2 || end != 2 {
		t.Fatalf("times: b=%v a=%v end=%d", b.gotTimes, a.gotTimes, end)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (int64, int64, int64, Time) {
		w := New(Config{Seed: 7, MinDelay: 1, MaxDelay: 5, DropProb: 0.2, DupProb: 0.1})
		a := &pingPong{peer: "b", starter: true}
		b := &pingPong{peer: "a"}
		w.AddNode("a", a)
		w.AddNode("b", b)
		for i := Time(0); i < 50; i += 5 {
			w.At(i, func() {
				if n := w.nodes["a"]; !n.crashed {
					n.Send("b", "ping")
				}
			})
		}
		end := w.Run(1000)
		s, d, dr := w.Stats()
		return s, d, dr, end
	}
	s1, d1, dr1, e1 := run()
	s2, d2, dr2, e2 := run()
	if s1 != s2 || d1 != d2 || dr1 != dr2 || e1 != e2 {
		t.Fatalf("runs differ: (%d,%d,%d,%d) vs (%d,%d,%d,%d)", s1, d1, dr1, e1, s2, d2, dr2, e2)
	}
}

func TestCrashStopsDelivery(t *testing.T) {
	w := New(Config{Seed: 1})
	a := &pingPong{peer: "b", starter: false}
	b := &pingPong{peer: "a"}
	w.AddNode("a", a)
	w.AddNode("b", b)
	w.Crash("b", 5)
	w.At(3, func() { w.nodes["a"].Send("b", "early") })  // delivered at 4
	w.At(10, func() { w.nodes["a"].Send("b", "late") })  // b crashed
	w.At(12, func() { w.nodes["b"].Send("a", "ghost") }) // crashed sender
	w.Run(100)
	if len(b.got) != 1 || b.got[0] != "early" {
		t.Fatalf("b got %v", b.got)
	}
	if len(a.got) != 0 {
		t.Fatalf("a got %v from crashed sender", a.got)
	}
}

func TestTimersFireAndCancel(t *testing.T) {
	w := New(Config{Seed: 1})
	a := &pingPong{}
	w.AddNode("a", a)
	w.At(0, func() {
		n := w.nodes["a"]
		n.SetTimer("t1", 5)
		n.SetTimer("t2", 7)
		n.SetTimer("t2", 9) // re-arm replaces
		n.SetTimer("t3", 3)
		n.CancelTimer("t3")
	})
	w.Run(100)
	if len(a.got) != 2 || a.got[0] != "timer:t1" || a.got[1] != "timer:t2" {
		t.Fatalf("timers fired: %v at %v", a.got, a.gotTimes)
	}
	if a.gotTimes[0] != 5 || a.gotTimes[1] != 9 {
		t.Fatalf("timer times: %v", a.gotTimes)
	}
}

func TestBlockDropsMessages(t *testing.T) {
	w := New(Config{Seed: 1})
	a := &pingPong{}
	b := &pingPong{}
	w.AddNode("a", a)
	w.AddNode("b", b)
	w.Block("a", "b")
	w.At(1, func() { w.nodes["a"].Send("b", "x") })
	w.At(2, func() { w.nodes["b"].Send("a", "y") }) // reverse direction open
	w.Run(100)
	if len(b.got) != 0 {
		t.Fatalf("blocked message delivered: %v", b.got)
	}
	if len(a.got) != 1 || a.got[0] != "y" {
		t.Fatalf("reverse direction broken: %v", a.got)
	}
	w.Unblock("a", "b")
	w.At(10, func() { w.nodes["a"].Send("b", "z") })
	w.Run(100)
	if len(b.got) != 1 || b.got[0] != "z" {
		t.Fatalf("unblock failed: %v", b.got)
	}
}

func TestDropProbabilityRoughly(t *testing.T) {
	w := New(Config{Seed: 3, DropProb: 0.5})
	a := &pingPong{}
	b := &pingPong{}
	w.AddNode("a", a)
	w.AddNode("b", b)
	const total = 2000
	for i := 0; i < total; i++ {
		i := i
		w.At(Time(i), func() { w.nodes["a"].Send("b", i) })
	}
	w.Run(Time(total + 10))
	_, delivered, dropped := w.Stats()
	if delivered+dropped != total {
		t.Fatalf("accounting: %d + %d != %d", delivered, dropped, total)
	}
	frac := float64(dropped) / total
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("drop fraction %f far from 0.5", frac)
	}
}

func TestDuplication(t *testing.T) {
	w := New(Config{Seed: 5, DupProb: 1.0})
	a := &pingPong{}
	b := &pingPong{}
	w.AddNode("a", a)
	w.AddNode("b", b)
	w.At(1, func() { w.nodes["a"].Send("b", "m") })
	w.Run(100)
	if len(b.got) != 2 {
		t.Fatalf("expected duplicate delivery, got %v", b.got)
	}
}

func TestFIFOTieBreakDeterminism(t *testing.T) {
	// Two messages scheduled for the same instant deliver in send order.
	w := New(Config{Seed: 1})
	b := &pingPong{}
	w.AddNode("a", &pingPong{})
	w.AddNode("b", b)
	w.At(1, func() {
		w.nodes["a"].Send("b", "first")
		w.nodes["a"].Send("b", "second")
	})
	w.Run(100)
	if len(b.got) != 2 || b.got[0] != "first" || b.got[1] != "second" {
		t.Fatalf("tie-break order: %v", b.got)
	}
}

func TestRunHonorsMaxTime(t *testing.T) {
	w := New(Config{Seed: 1})
	a := &pingPong{}
	w.AddNode("a", a)
	w.At(0, func() { w.nodes["a"].SetTimer("t", 50) })
	end := w.Run(10)
	if len(a.got) != 0 {
		t.Fatalf("event beyond maxTime ran: %v", a.got)
	}
	if end > 10 {
		t.Fatalf("end = %d", end)
	}
	w.Run(100)
	if len(a.got) != 1 {
		t.Fatalf("resumed run lost the event: %v", a.got)
	}
}

// recHandler is a pingPong that supports crash–recovery and counts
// OnRestart invocations.
type recHandler struct {
	pingPong
	restarts int
}

func (r *recHandler) OnRestart(n *Node) { r.restarts++ }

func TestRestartRevivesNode(t *testing.T) {
	w := New(Config{Seed: 1})
	a := &pingPong{}
	b := &recHandler{}
	w.AddNode("a", a)
	w.AddNode("b", b)
	w.Crash("b", 5)
	w.Restart("b", 20)
	w.At(10, func() { w.nodes["a"].Send("b", "while-down") })
	w.At(30, func() { w.nodes["a"].Send("b", "after-up") })
	w.Run(100)
	if len(b.got) != 1 || b.got[0] != "after-up" {
		t.Fatalf("b got %v", b.got)
	}
	if b.restarts != 1 {
		t.Fatalf("OnRestart ran %d times", b.restarts)
	}
	if w.nodes["b"].Crashed() {
		t.Fatal("b still crashed after restart")
	}
}

func TestRestartOfLiveNodeIsNoop(t *testing.T) {
	w := New(Config{Seed: 1})
	b := &recHandler{}
	w.AddNode("b", b)
	w.Restart("b", 5)
	w.Run(100)
	if b.restarts != 0 {
		t.Fatalf("OnRestart ran on a node that never crashed")
	}
}

func TestCrashClearsTimerBookkeeping(t *testing.T) {
	// Regression: Crash used to leave timerGen entries behind forever.
	w := New(Config{Seed: 1})
	a := &pingPong{}
	w.AddNode("a", a)
	w.At(0, func() {
		n := w.nodes["a"]
		n.SetTimer("t1", 50)
		n.SetTimer("t2", 60)
	})
	w.Crash("a", 5)
	w.Run(10)
	if got := len(w.nodes["a"].timerGen); got != 0 {
		t.Fatalf("crash leaked %d timerGen entries", got)
	}
}

func TestStaleTimerCannotFireAcrossRestart(t *testing.T) {
	// A timer armed before a crash must not fire into the post-restart
	// incarnation even if the restarted handler re-arms the same name and
	// the generation counters collide (both restart at 1).
	w := New(Config{Seed: 1})
	a := &pingPong{}
	w.AddNode("a", a)
	w.At(0, func() { w.nodes["a"].SetTimer("t", 50) }) // gen 1, epoch 0
	w.Crash("a", 5)
	w.Restart("a", 10)
	w.At(10, func() { w.nodes["a"].SetTimer("t", 50) }) // gen 1 again, epoch 1
	w.Run(200)
	if len(a.got) != 1 || a.got[0] != "timer:t" || a.gotTimes[0] != 60 {
		t.Fatalf("timer firings: %v at %v (want one firing at 60)", a.got, a.gotTimes)
	}
}

func TestLinkRuleDropAndClear(t *testing.T) {
	w := New(Config{Seed: 2})
	a := &pingPong{}
	b := &pingPong{}
	w.AddNode("a", a)
	w.AddNode("b", b)
	w.SetLinkRule("a", "b", LinkRule{DropProb: 1})
	w.At(1, func() { w.nodes["a"].Send("b", "x") })
	w.At(2, func() { w.nodes["b"].Send("a", "y") }) // reverse link unruled
	w.Run(100)
	if len(b.got) != 0 {
		t.Fatalf("ruled link delivered: %v", b.got)
	}
	if len(a.got) != 1 {
		t.Fatalf("reverse link affected: %v", a.got)
	}
	w.ClearLinkRule("a", "b")
	w.At(10, func() { w.nodes["a"].Send("b", "z") })
	w.Run(100)
	if len(b.got) != 1 || b.got[0] != "z" {
		t.Fatalf("cleared rule still dropping: %v", b.got)
	}
}

func TestLinkRuleDupAndDelay(t *testing.T) {
	w := New(Config{Seed: 2})
	a := &pingPong{}
	b := &pingPong{}
	w.AddNode("a", a)
	w.AddNode("b", b)
	w.SetLinkRule("a", "b", LinkRule{DupProb: 1, ExtraMinDelay: 10, ExtraMaxDelay: 10})
	w.At(1, func() { w.nodes["a"].Send("b", "m") })
	w.Run(100)
	if len(b.got) != 2 {
		t.Fatalf("expected duplicate delivery, got %v", b.got)
	}
	if b.gotTimes[0] != 12 || b.gotTimes[1] != 12 {
		t.Fatalf("extra delay not applied: %v", b.gotTimes)
	}
	if w.Duplicated() != 1 {
		t.Fatalf("Duplicated() = %d", w.Duplicated())
	}
}

func TestIdleLinkRulesPreserveSchedule(t *testing.T) {
	// Link rules draw from a dedicated fault stream, so rules on links
	// that carry no traffic must not perturb the base schedule — the
	// property that lets fault-free fault-plan runs replay the baseline.
	run := func(withRules bool) uint64 {
		w := New(Config{Seed: 9, MinDelay: 1, MaxDelay: 4, DropProb: 0.1, DupProb: 0.1})
		a := &pingPong{peer: "b", starter: true}
		b := &pingPong{peer: "a"}
		w.AddNode("a", a)
		w.AddNode("b", b)
		w.AddNode("c", &pingPong{})
		if withRules {
			w.SetLinkRule("c", "a", LinkRule{DropProb: 0.9, DupProb: 0.9, ExtraMaxDelay: 7})
		}
		for i := Time(0); i < 40; i += 2 {
			w.At(i, func() { w.nodes["a"].Send("b", "ping") })
		}
		w.Run(1000)
		return w.ScheduleDigest()
	}
	if d0, d1 := run(false), run(true); d0 != d1 {
		t.Fatalf("idle link rule changed schedule: %x vs %x", d0, d1)
	}
}

func TestScheduleDigestDeterminism(t *testing.T) {
	run := func(seed int64) uint64 {
		w := New(Config{Seed: seed, MinDelay: 1, MaxDelay: 3, DropProb: 0.2, DupProb: 0.2})
		a := &pingPong{peer: "b", starter: true}
		w.AddNode("a", a)
		w.AddNode("b", &pingPong{peer: "a"})
		for i := Time(0); i < 30; i++ {
			w.At(i, func() { w.nodes["a"].Send("b", "ping") })
		}
		w.Run(1000)
		return w.ScheduleDigest()
	}
	if run(4) != run(4) {
		t.Fatal("same seed produced different schedule digests")
	}
	if run(4) == run(5) {
		t.Fatal("different seeds produced equal schedule digests (suspicious)")
	}
}

func TestBlockNesting(t *testing.T) {
	w := New(Config{Seed: 1})
	b := &pingPong{}
	w.AddNode("a", &pingPong{})
	w.AddNode("b", b)
	w.Block("a", "b")
	w.Block("a", "b")
	w.Unblock("a", "b")
	w.At(1, func() { w.nodes["a"].Send("b", "x") })
	w.Run(100)
	if len(b.got) != 0 {
		t.Fatalf("nested block reopened early: %v", b.got)
	}
	w.Unblock("a", "b")
	w.At(10, func() { w.nodes["a"].Send("b", "y") })
	w.Run(100)
	if len(b.got) != 1 {
		t.Fatalf("fully unblocked link still closed: %v", b.got)
	}
}

func TestNodeIDsOrder(t *testing.T) {
	w := New(Config{Seed: 1})
	w.AddNode("z", &pingPong{})
	w.AddNode("a", &pingPong{})
	w.AddNode("m", &pingPong{})
	ids := w.NodeIDs()
	if len(ids) != 3 || ids[0] != "z" || ids[1] != "a" || ids[2] != "m" {
		t.Fatalf("NodeIDs() = %v (want insertion order)", ids)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate node")
		}
	}()
	w := New(Config{Seed: 1})
	w.AddNode("a", &pingPong{})
	w.AddNode("a", &pingPong{})
}
