package msgnet

import (
	"testing"
)

// pingPong: "a" sends ping to "b" on init; "b" replies pong.
type pingPong struct {
	peer     ProcID
	starter  bool
	got      []string
	gotTimes []Time
}

func (p *pingPong) Init(n *Node) {
	if p.starter {
		n.Send(p.peer, "ping")
	}
}

func (p *pingPong) OnMessage(n *Node, from ProcID, payload any) {
	if s, ok := payload.(string); ok {
		p.got = append(p.got, s)
	} else {
		p.got = append(p.got, "?")
	}
	p.gotTimes = append(p.gotTimes, n.Now())
	if payload == "ping" {
		n.Send(from, "pong")
	}
}

func (p *pingPong) OnTimer(n *Node, name string) {
	p.got = append(p.got, "timer:"+name)
	p.gotTimes = append(p.gotTimes, n.Now())
}

func TestUnitDelayRoundTrip(t *testing.T) {
	w := New(Config{Seed: 1})
	a := &pingPong{peer: "b", starter: true}
	b := &pingPong{peer: "a"}
	w.AddNode("a", a)
	w.AddNode("b", b)
	end := w.Run(100)
	if len(b.got) != 1 || b.got[0] != "ping" {
		t.Fatalf("b got %v", b.got)
	}
	if len(a.got) != 1 || a.got[0] != "pong" {
		t.Fatalf("a got %v", a.got)
	}
	// Unit delays: ping at t=1, pong at t=2. Virtual time = message delays.
	if b.gotTimes[0] != 1 || a.gotTimes[0] != 2 || end != 2 {
		t.Fatalf("times: b=%v a=%v end=%d", b.gotTimes, a.gotTimes, end)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() (int64, int64, int64, Time) {
		w := New(Config{Seed: 7, MinDelay: 1, MaxDelay: 5, DropProb: 0.2, DupProb: 0.1})
		a := &pingPong{peer: "b", starter: true}
		b := &pingPong{peer: "a"}
		w.AddNode("a", a)
		w.AddNode("b", b)
		for i := Time(0); i < 50; i += 5 {
			w.At(i, func() {
				if n := w.nodes["a"]; !n.crashed {
					n.Send("b", "ping")
				}
			})
		}
		end := w.Run(1000)
		s, d, dr := w.Stats()
		return s, d, dr, end
	}
	s1, d1, dr1, e1 := run()
	s2, d2, dr2, e2 := run()
	if s1 != s2 || d1 != d2 || dr1 != dr2 || e1 != e2 {
		t.Fatalf("runs differ: (%d,%d,%d,%d) vs (%d,%d,%d,%d)", s1, d1, dr1, e1, s2, d2, dr2, e2)
	}
}

func TestCrashStopsDelivery(t *testing.T) {
	w := New(Config{Seed: 1})
	a := &pingPong{peer: "b", starter: false}
	b := &pingPong{peer: "a"}
	w.AddNode("a", a)
	w.AddNode("b", b)
	w.Crash("b", 5)
	w.At(3, func() { w.nodes["a"].Send("b", "early") })  // delivered at 4
	w.At(10, func() { w.nodes["a"].Send("b", "late") })  // b crashed
	w.At(12, func() { w.nodes["b"].Send("a", "ghost") }) // crashed sender
	w.Run(100)
	if len(b.got) != 1 || b.got[0] != "early" {
		t.Fatalf("b got %v", b.got)
	}
	if len(a.got) != 0 {
		t.Fatalf("a got %v from crashed sender", a.got)
	}
}

func TestTimersFireAndCancel(t *testing.T) {
	w := New(Config{Seed: 1})
	a := &pingPong{}
	w.AddNode("a", a)
	w.At(0, func() {
		n := w.nodes["a"]
		n.SetTimer("t1", 5)
		n.SetTimer("t2", 7)
		n.SetTimer("t2", 9) // re-arm replaces
		n.SetTimer("t3", 3)
		n.CancelTimer("t3")
	})
	w.Run(100)
	if len(a.got) != 2 || a.got[0] != "timer:t1" || a.got[1] != "timer:t2" {
		t.Fatalf("timers fired: %v at %v", a.got, a.gotTimes)
	}
	if a.gotTimes[0] != 5 || a.gotTimes[1] != 9 {
		t.Fatalf("timer times: %v", a.gotTimes)
	}
}

func TestBlockDropsMessages(t *testing.T) {
	w := New(Config{Seed: 1})
	a := &pingPong{}
	b := &pingPong{}
	w.AddNode("a", a)
	w.AddNode("b", b)
	w.Block("a", "b")
	w.At(1, func() { w.nodes["a"].Send("b", "x") })
	w.At(2, func() { w.nodes["b"].Send("a", "y") }) // reverse direction open
	w.Run(100)
	if len(b.got) != 0 {
		t.Fatalf("blocked message delivered: %v", b.got)
	}
	if len(a.got) != 1 || a.got[0] != "y" {
		t.Fatalf("reverse direction broken: %v", a.got)
	}
	w.Unblock("a", "b")
	w.At(10, func() { w.nodes["a"].Send("b", "z") })
	w.Run(100)
	if len(b.got) != 1 || b.got[0] != "z" {
		t.Fatalf("unblock failed: %v", b.got)
	}
}

func TestDropProbabilityRoughly(t *testing.T) {
	w := New(Config{Seed: 3, DropProb: 0.5})
	a := &pingPong{}
	b := &pingPong{}
	w.AddNode("a", a)
	w.AddNode("b", b)
	const total = 2000
	for i := 0; i < total; i++ {
		i := i
		w.At(Time(i), func() { w.nodes["a"].Send("b", i) })
	}
	w.Run(Time(total + 10))
	_, delivered, dropped := w.Stats()
	if delivered+dropped != total {
		t.Fatalf("accounting: %d + %d != %d", delivered, dropped, total)
	}
	frac := float64(dropped) / total
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("drop fraction %f far from 0.5", frac)
	}
}

func TestDuplication(t *testing.T) {
	w := New(Config{Seed: 5, DupProb: 1.0})
	a := &pingPong{}
	b := &pingPong{}
	w.AddNode("a", a)
	w.AddNode("b", b)
	w.At(1, func() { w.nodes["a"].Send("b", "m") })
	w.Run(100)
	if len(b.got) != 2 {
		t.Fatalf("expected duplicate delivery, got %v", b.got)
	}
}

func TestFIFOTieBreakDeterminism(t *testing.T) {
	// Two messages scheduled for the same instant deliver in send order.
	w := New(Config{Seed: 1})
	b := &pingPong{}
	w.AddNode("a", &pingPong{})
	w.AddNode("b", b)
	w.At(1, func() {
		w.nodes["a"].Send("b", "first")
		w.nodes["a"].Send("b", "second")
	})
	w.Run(100)
	if len(b.got) != 2 || b.got[0] != "first" || b.got[1] != "second" {
		t.Fatalf("tie-break order: %v", b.got)
	}
}

func TestRunHonorsMaxTime(t *testing.T) {
	w := New(Config{Seed: 1})
	a := &pingPong{}
	w.AddNode("a", a)
	w.At(0, func() { w.nodes["a"].SetTimer("t", 50) })
	end := w.Run(10)
	if len(a.got) != 0 {
		t.Fatalf("event beyond maxTime ran: %v", a.got)
	}
	if end > 10 {
		t.Fatalf("end = %d", end)
	}
	w.Run(100)
	if len(a.got) != 1 {
		t.Fatalf("resumed run lost the event: %v", a.got)
	}
}

func TestDuplicateNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate node")
		}
	}()
	w := New(Config{Seed: 1})
	w.AddNode("a", &pingPong{})
	w.AddNode("a", &pingPong{})
}
