package trace

import "strings"

// Trace is a finite sequence of actions observed at the interface of a
// concurrent object (§3). This package deals with safety properties only,
// so all traces are finite.
type Trace []Action

// Clone returns an independent copy of t.
func (t Trace) Clone() Trace {
	if t == nil {
		return nil
	}
	c := make(Trace, len(t))
	copy(c, t)
	return c
}

// Project returns proj(t, A): the subsequence of t whose actions satisfy
// keep (§3, Definition 2 uses projection onto a set of actions; an action
// predicate represents the set).
func (t Trace) Project(keep func(Action) bool) Trace {
	var p Trace
	for _, a := range t {
		if keep(a) {
			p = append(p, a)
		}
	}
	return p
}

// InputsBefore returns inputs(t, i): the sequence of all inputs submitted
// by invocation actions strictly before index i (Definition 9, shifted to
// 0-based indexing: actions t[0..i-1] are considered).
//
// Only invocation actions contribute; pending inputs carried by switch
// actions are accounted for separately through the initially-valid-inputs
// multiset of Definition 25 (see package slin).
func (t Trace) InputsBefore(i int) History {
	var h History
	for j := 0; j < i && j < len(t); j++ {
		if t[j].Kind == Inv {
			h = append(h, t[j].Input)
		}
	}
	return h
}

// InputsBeforeMultiset returns elems(inputs(t, i)).
func (t Trace) InputsBeforeMultiset(i int) Multiset {
	m := Multiset{}
	for j := 0; j < i && j < len(t); j++ {
		if t[j].Kind == Inv {
			m.Add(t[j].Input, 1)
		}
	}
	return m
}

// Clients returns the set of clients with at least one action in t, in
// first-appearance order.
func (t Trace) Clients() []ClientID {
	seen := map[ClientID]bool{}
	var cs []ClientID
	for _, a := range t {
		if !seen[a.Client] {
			seen[a.Client] = true
			cs = append(cs, a.Client)
		}
	}
	return cs
}

// ClientSub returns the client sub-trace sub(t, c) for the plain signature
// sig_T (Definition 13): the projection of t onto the invocation and
// response actions of client c. Switch actions are excluded, matching
// Act_T(c) of §4.5.
func (t Trace) ClientSub(c ClientID) Trace {
	return t.Project(func(a Action) bool {
		return a.Client == c && a.Kind != Swi
	})
}

// InSig reports whether action a belongs to acts(sig_T(m, n, Init)) of
// Definition 16.
//
// Note on numbering: the paper's Definition 16 says all three action kinds
// range over o ∈ [m..n], but that literal reading contradicts both the §5.1
// example trace and Definition 34's "an abort action is the last element"
// (the response a client obtains in the next phase carries number n and
// would re-enter the (m,n) sub-trace after its abort). The consistent
// reading — which also makes Appendix C's equation
// acts(sig(m,n)) ∪ acts(sig(n,o)) = acts(sig(m,o)) hold — is that a
// speculation phase (m,n) comprises the operation actions (inv/res)
// numbered o ∈ [m..n-1] and the switch actions numbered o ∈ [m..n]:
// swi(·,m,·,·) are its init actions, swi(·,n,·,·) its abort actions, and
// interior switch numbers occur only inside compositions. We implement that
// reading throughout.
func InSig(a Action, m, n int) bool {
	switch a.Kind {
	case Inv, Res:
		return a.Phase >= m && a.Phase < n
	case Swi:
		return a.Phase >= m && a.Phase <= n
	default:
		return false
	}
}

// ProjectSig returns proj(t, acts(sig_T(m, n, Init))): the subsequence of
// actions belonging to the (m,n) phase signature. This is the projection
// used by the intra-object composition theorem (Theorem 3 / Appendix C).
func (t Trace) ProjectSig(m, n int) Trace {
	return t.Project(func(a Action) bool { return InSig(a, m, n) })
}

// PhaseClientSub returns the (m,n)-client-sub-trace sub(t, m, n, c) of
// Definition 33: operation actions of client c belonging to sig(m,n), plus
// switch actions of client c whose phase parameter is exactly m (init) or
// n (abort). Interior switch actions are projected away (the note after
// Definition 33).
func (t Trace) PhaseClientSub(m, n int, c ClientID) Trace {
	return t.Project(func(a Action) bool {
		if a.Client != c {
			return false
		}
		switch a.Kind {
		case Inv, Res:
			return a.Phase >= m && a.Phase < n
		case Swi:
			return a.Phase == m || a.Phase == n
		default:
			return false
		}
	})
}

// String renders the trace as a bracketed action list.
func (t Trace) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, a := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	b.WriteByte(']')
	return b.String()
}

// WellFormed reports whether t is well-formed in the plain sense of
// Definitions 14–15: every client sub-trace alternates invocations and
// matching responses, starting with an invocation. Invocations with no
// response (pending invocations) may terminate a sub-trace.
func (t Trace) WellFormed() bool {
	type st struct {
		pending bool
		input   Value
	}
	states := map[ClientID]*st{}
	for _, a := range t {
		s := states[a.Client]
		if s == nil {
			s = &st{}
			states[a.Client] = s
		}
		switch a.Kind {
		case Inv:
			if s.pending {
				return false // client invoked while an invocation is pending
			}
			s.pending, s.input = true, a.Input
		case Res:
			if !s.pending || s.input != a.Input {
				return false // response without matching pending invocation
			}
			s.pending = false
		case Swi:
			return false // switch actions do not belong to sig_T
		}
	}
	return true
}

// Complete reports whether t is a complete trace (Definition 39): it is
// well-formed and has no pending invocations.
func (t Trace) Complete() bool {
	if !t.WellFormed() {
		return false
	}
	pending := map[ClientID]bool{}
	for _, a := range t {
		switch a.Kind {
		case Inv:
			pending[a.Client] = true
		case Res:
			pending[a.Client] = false
		}
	}
	for _, p := range pending {
		if p {
			return false
		}
	}
	return true
}

// phaseClientState is the per-client state machine implementing
// Definition 34 (well-formed (m,n)-client sub-trace).
type phaseClientState uint8

const (
	phaseIdle    phaseClientState = iota // not yet entered the phase
	phasePending                         // waiting for a response or abort
	phaseReady                           // received a response, may invoke again
	phaseDone                            // aborted out of the phase
)

// PhaseWellFormed reports whether t is (m,n)-well-formed (Definition 35):
// every (m,n)-client sub-trace is well-formed per Definition 34. Concretely,
// per client:
//
//   - if m == 1 the client enters by an invocation and no init action
//     (switch with phase m) may occur;
//   - if m != 1 the client enters by exactly one init action, which must be
//     its first action;
//   - every invocation or init action is followed (within the sub-trace) by
//     a response or an abort action carrying the same input;
//   - an abort action (switch with phase n) is the last action of the
//     sub-trace.
func (t Trace) PhaseWellFormed(m, n int) bool {
	if m >= n {
		return false
	}
	for _, c := range t.Clients() {
		if !phaseSubWellFormed(t.PhaseClientSub(m, n, c), m, n) {
			return false
		}
	}
	return true
}

func phaseSubWellFormed(tc Trace, m, n int) bool {
	state := phaseIdle
	var pendingInput Value
	for _, a := range tc {
		switch {
		case a.Kind == Inv:
			// An invocation is allowed when the client has no pending
			// operation and has already entered the phase (or enters by
			// invoking, which requires m == 1).
			switch state {
			case phaseIdle:
				if m != 1 {
					return false
				}
			case phaseReady:
				// ok: next operation
			default:
				return false
			}
			state, pendingInput = phasePending, a.Input
		case a.IsInit(m):
			// Init actions exist only for m != 1 and must come first.
			if m == 1 || state != phaseIdle {
				return false
			}
			state, pendingInput = phasePending, a.Input
		case a.Kind == Res:
			if state != phasePending || a.Input != pendingInput {
				return false
			}
			state = phaseReady
		case a.IsAbort(n):
			if state != phasePending || a.Input != pendingInput {
				return false
			}
			state = phaseDone
		default:
			// A switch with phase parameter other than m or n cannot occur
			// in an (m,n)-client sub-trace by construction; seeing one means
			// the caller passed an unprojected trace.
			return false
		}
	}
	// Any action after an abort is rejected by the state machine above
	// (phaseDone accepts nothing), so "abort is last" holds on success.
	return true
}
