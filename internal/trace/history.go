package trace

import "strings"

// History is a sequence of ADT inputs (§4.4: "we call sequences of inputs
// histories"). Histories represent sequential executions: for deterministic
// objects the response to the last input of a history is determined by the
// whole history, so a sequential execution is identified with its input
// sequence.
type History []Value

// Clone returns an independent copy of h.
func (h History) Clone() History {
	if h == nil {
		return nil
	}
	c := make(History, len(h))
	copy(c, h)
	return c
}

// Equal reports whether h and g are the same sequence.
func (h History) Equal(g History) bool {
	if len(h) != len(g) {
		return false
	}
	for i := range h {
		if h[i] != g[i] {
			return false
		}
	}
	return true
}

// IsPrefixOf reports whether h is a (not necessarily strict) prefix of g
// (§3: h is a prefix of g iff g = h ::: h” for some h”).
func (h History) IsPrefixOf(g History) bool {
	if len(h) > len(g) {
		return false
	}
	for i := range h {
		if h[i] != g[i] {
			return false
		}
	}
	return true
}

// IsStrictPrefixOf reports whether h is a strict prefix of g (§3: the
// residual h” is non-empty).
func (h History) IsStrictPrefixOf(g History) bool {
	return len(h) < len(g) && h.IsPrefixOf(g)
}

// Append returns h :: v, a fresh history extending h with input v. The
// receiver is not modified and does not share storage with the result.
func (h History) Append(v Value) History {
	c := make(History, len(h)+1)
	copy(c, h)
	c[len(h)] = v
	return c
}

// Concat returns h ::: g, the concatenation of h and g, as a fresh history.
func (h History) Concat(g History) History {
	c := make(History, 0, len(h)+len(g))
	c = append(c, h...)
	c = append(c, g...)
	return c
}

// Elems returns the multiset of inputs occurring in h (the elems function
// of §3).
func (h History) Elems() Multiset {
	m := Multiset{}
	for _, v := range h {
		m.Add(v, 1)
	}
	return m
}

// Contains reports whether v occurs in h (the "e ∈ s" notation of §3).
func (h History) Contains(v Value) bool {
	for _, x := range h {
		if x == v {
			return true
		}
	}
	return false
}

// Last returns the final input of h. It panics if h is empty; callers
// guard with len(h) > 0.
func (h History) Last() Value { return h[len(h)-1] }

// String renders the history as [a b c].
func (h History) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, v := range h {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(v)
	}
	b.WriteByte(']')
	return b.String()
}

// LCP returns the longest common prefix of a set of histories (§3). By the
// paper's convention (after Definition 31) the longest common prefix of an
// empty set is the empty history.
func LCP(hs []History) History {
	if len(hs) == 0 {
		return History{}
	}
	p := hs[0]
	for _, h := range hs[1:] {
		n := 0
		for n < len(p) && n < len(h) && p[n] == h[n] {
			n++
		}
		p = p[:n]
		if len(p) == 0 {
			break
		}
	}
	return p.Clone()
}
