package trace

import "testing"

// Direct tests of the signature-membership reading documented on InSig
// (operation actions span [m..n-1], switch actions [m..n]).
func TestInSig(t *testing.T) {
	tests := []struct {
		a    Action
		m, n int
		want bool
	}{
		{Invoke("c", 1, "x"), 1, 2, true},
		{Invoke("c", 2, "x"), 1, 2, false}, // op at the upper bound is the next phase's
		{Invoke("c", 2, "x"), 1, 3, true},
		{Response("c", 1, "x", "y"), 1, 2, true},
		{Response("c", 2, "x", "y"), 2, 3, true},
		{Response("c", 3, "x", "y"), 2, 3, false},
		{Switch("c", 1, "x", "v"), 1, 2, true},
		{Switch("c", 2, "x", "v"), 1, 2, true},  // abort bound included
		{Switch("c", 2, "x", "v"), 2, 3, true},  // init bound included
		{Switch("c", 3, "x", "v"), 1, 2, false}, // beyond the range
		{Switch("c", 2, "x", "v"), 1, 3, true},  // interior switch stays in acts
	}
	for _, tt := range tests {
		if got := InSig(tt.a, tt.m, tt.n); got != tt.want {
			t.Errorf("InSig(%v, %d, %d) = %v, want %v", tt.a, tt.m, tt.n, got, tt.want)
		}
	}
}

// Appendix C's union equation under the consistent reading:
// acts(sig(m,n)) ∪ acts(sig(n,o)) = acts(sig(m,o)).
func TestSignatureUnionEquation(t *testing.T) {
	m, n, o := 1, 2, 3
	actions := []Action{}
	for phase := 0; phase <= 4; phase++ {
		actions = append(actions,
			Invoke("c", phase, "x"),
			Response("c", phase, "x", "y"),
			Switch("c", phase, "x", "v"),
		)
	}
	for _, a := range actions {
		union := InSig(a, m, n) || InSig(a, n, o)
		whole := InSig(a, m, o)
		if union != whole {
			t.Errorf("union equation fails for %v: (m,n)∪(n,o)=%v, (m,o)=%v", a, union, whole)
		}
	}
}
