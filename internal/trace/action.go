// Package trace implements the trace model of Section 3 of the paper
// "Speculative Linearizability" (Guerraoui, Kuncak, Losa; PLDI 2012):
// actions, traces, histories, multisets, signatures, projections, client
// sub-traces and the two well-formedness conditions (the plain one of §4.5
// and the phase-indexed one of §5.4).
//
// Conventions. The paper indexes sequences from 1; this package uses Go's
// native 0-based indexing and documents each definition's index shift where
// it matters. Inputs, outputs and switch values are opaque comparable
// strings (see DESIGN.md, decision 1); abstract data types interpret them.
package trace

import "fmt"

// ClientID identifies a client process.
type ClientID string

// Value is an opaque input, output or switch value. ADTs (package adt)
// give values meaning; the trace layer only compares them for equality.
type Value = string

// Kind discriminates the three kinds of actions of §5.1.
type Kind uint8

const (
	// Inv is an invocation action inv(c, o, in).
	Inv Kind = iota
	// Res is a response action res(c, o, in, out).
	Res
	// Swi is a switch action swi(c, o, in, v). Relative to a speculation
	// phase (m, n), a switch with Phase == m is an init action and a
	// switch with Phase == n is an abort action.
	Swi
)

// String returns the lowercase name of the action kind.
func (k Kind) String() string {
	switch k {
	case Inv:
		return "inv"
	case Res:
		return "res"
	case Swi:
		return "swi"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Action is an event at the interface between a system and its environment
// (§3). An action occurs at a point in time and has no duration.
//
// The Phase field carries the natural-number parameter written as the second
// argument of inv/res/swi in the paper. For objects without speculation
// phases (plain linearizability, §4) the field is conventionally 1.
type Action struct {
	Kind   Kind
	Client ClientID
	Phase  int
	// Input is the ADT input in ∈ I_T carried by every action kind:
	// the invoked input for Inv, the input being responded to for Res,
	// and the pending input transferred by a switch for Swi.
	Input Value
	// Output is the ADT output out ∈ O_T; meaningful only for Res.
	Output Value
	// SwitchValue is the initialization value v ∈ Init; meaningful only
	// for Swi.
	SwitchValue Value
}

// Invoke returns the invocation action inv(c, phase, in).
func Invoke(c ClientID, phase int, in Value) Action {
	return Action{Kind: Inv, Client: c, Phase: phase, Input: in}
}

// Response returns the response action res(c, phase, in, out).
func Response(c ClientID, phase int, in, out Value) Action {
	return Action{Kind: Res, Client: c, Phase: phase, Input: in, Output: out}
}

// Switch returns the switch action swi(c, phase, in, v): client c transfers
// its pending input in to phase number `phase`, passing switch value v.
func Switch(c ClientID, phase int, in, v Value) Action {
	return Action{Kind: Swi, Client: c, Phase: phase, Input: in, SwitchValue: v}
}

// String renders the action in the paper's notation.
func (a Action) String() string {
	switch a.Kind {
	case Inv:
		return fmt.Sprintf("inv(%s,%d,%s)", a.Client, a.Phase, a.Input)
	case Res:
		return fmt.Sprintf("res(%s,%d,%s,%s)", a.Client, a.Phase, a.Input, a.Output)
	case Swi:
		return fmt.Sprintf("swi(%s,%d,%s,%s)", a.Client, a.Phase, a.Input, a.SwitchValue)
	default:
		return fmt.Sprintf("action(%v)", a.Kind)
	}
}

// IsInv reports whether the action is an invocation.
func (a Action) IsInv() bool { return a.Kind == Inv }

// IsRes reports whether the action is a response.
func (a Action) IsRes() bool { return a.Kind == Res }

// IsSwi reports whether the action is a switch.
func (a Action) IsSwi() bool { return a.Kind == Swi }

// IsInit reports whether the action is an init action of speculation phase
// (m, n), i.e. a switch whose phase parameter equals m (Definition 23).
func (a Action) IsInit(m int) bool { return a.Kind == Swi && a.Phase == m }

// IsAbort reports whether the action is an abort action of speculation
// phase (m, n), i.e. a switch whose phase parameter equals n (Definition 24).
func (a Action) IsAbort(n int) bool { return a.Kind == Swi && a.Phase == n }
