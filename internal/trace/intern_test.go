package trace

import (
	"fmt"
	"testing"
)

func TestInternerRoundTrip(t *testing.T) {
	in := NewInterner()
	vals := []Value{"a", "b", "a", "c", "b"}
	syms := make([]Sym, len(vals))
	for i, v := range vals {
		syms[i] = in.Sym(v)
	}
	if syms[0] != syms[2] || syms[1] != syms[4] {
		t.Fatal("equal values must intern to equal symbols")
	}
	if syms[0] == syms[1] || syms[0] == syms[3] || syms[1] == syms[3] {
		t.Fatal("distinct values must intern to distinct symbols")
	}
	if in.Len() != 3 {
		t.Fatalf("Len = %d, want 3", in.Len())
	}
	for i, v := range vals {
		if in.Value(syms[i]) != v {
			t.Fatalf("Value(Sym(%q)) = %q", v, in.Value(syms[i]))
		}
	}
}

func TestDigestAddSubInverse(t *testing.T) {
	var d Digest
	comps := []Digest{HashElem(0, 1, false), HashElem(1, 2, true), HashCount(3, 4)}
	for _, c := range comps {
		d = d.Add(c)
	}
	// Removing in a different order must restore the zero digest.
	d = d.Sub(comps[1]).Sub(comps[2]).Sub(comps[0])
	if d != (Digest{}) {
		t.Fatalf("Add/Sub not inverse: %v", d)
	}
}

func TestHashElemSensitivity(t *testing.T) {
	base := HashElem(3, 7, false)
	for _, other := range []Digest{HashElem(4, 7, false), HashElem(3, 8, false), HashElem(3, 7, true)} {
		if other == base {
			t.Fatal("HashElem must differ when any component differs")
		}
	}
	// Order sensitivity: [a b] and [b a] sum to different digests.
	ab := HashElem(0, 1, false).Add(HashElem(1, 2, false))
	ba := HashElem(0, 2, false).Add(HashElem(1, 1, false))
	if ab == ba {
		t.Fatal("positional hashing must distinguish permutations")
	}
}

func TestSymMultisetCanonicalDigest(t *testing.T) {
	a := NewSymMultiset(4)
	a.Add(0, 2)
	a.Add(3, 1)
	b := NewSymMultiset(4)
	b.Add(3, 1)
	b.Add(0, 1)
	b.Add(0, 1)
	if a.Digest() != b.Digest() {
		t.Fatal("equal multisets built in different orders must share a digest")
	}
	// Returning to a previous content restores its digest exactly.
	d := a.Digest()
	a.Add(1, 3)
	if a.Digest() == d {
		t.Fatal("digest must change when contents change")
	}
	a.Add(1, -3)
	if a.Digest() != d {
		t.Fatal("digest must be restored when contents are restored")
	}
	if a.Size() != 3 || a.Count(0) != 2 || a.Count(3) != 1 || a.Count(9) != 0 {
		t.Fatal("counts/size wrong after add/remove cycle")
	}
}

func TestSymMultisetCloneCopySubset(t *testing.T) {
	a := NewSymMultiset(2)
	a.Add(0, 2)
	a.Add(5, 1) // beyond initial capacity: must grow
	c := a.Clone()
	c.Add(0, -1)
	if a.Count(0) != 2 || c.Count(0) != 1 {
		t.Fatal("Clone must be independent")
	}
	if !c.SubsetOf(&a) || a.SubsetOf(&c) {
		t.Fatal("SubsetOf wrong after removal")
	}
	var d SymMultiset
	d.CopyFrom(&a)
	if d.Digest() != a.Digest() || d.Size() != a.Size() {
		t.Fatal("CopyFrom must replicate contents and digest")
	}
}

func TestSymMultisetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative multiplicity")
		}
	}()
	m := NewSymMultiset(1)
	m.Add(0, -1)
}

func TestHashStringDistinctAndStable(t *testing.T) {
	seen := map[Digest]string{}
	add := func(s string) {
		d := HashString(s)
		if d != HashString(s) {
			t.Fatalf("HashString(%q) unstable", s)
		}
		if prev, dup := seen[d]; dup && prev != s {
			t.Fatalf("digest collision: %q vs %q", prev, s)
		}
		seen[d] = s
	}
	// Near-miss families: shared prefixes, transpositions, length-1
	// deltas, embedded NULs — the shapes canonical state keys produce.
	add("")
	add("\x00")
	add("\x00\x00")
	for i := 0; i < 2000; i++ {
		add(fmt.Sprintf("state[%d 0 1]", i))
		add(fmt.Sprintf("state[0 %d 1]", i))
		add(fmt.Sprintf("s%d\x00t%d", i, 2000-i))
	}
	if HashString("ab") == HashString("ba") {
		t.Fatal("transposition collided")
	}
}
