package trace

import (
	"encoding/json"
	"fmt"
)

// jsonAction is the on-disk representation of an action used by the CLI
// tools. Example:
//
//	{"kind":"inv","client":"c1","phase":1,"input":"p:a"}
//	{"kind":"res","client":"c1","phase":1,"input":"p:a","output":"d:a"}
//	{"kind":"swi","client":"c1","phase":2,"input":"p:a","value":"a"}
type jsonAction struct {
	Kind   string   `json:"kind"`
	Client ClientID `json:"client"`
	Phase  int      `json:"phase"`
	Input  Value    `json:"input"`
	Output Value    `json:"output,omitempty"`
	Value  Value    `json:"value,omitempty"`
}

// MarshalJSON encodes the action in the CLI wire format.
func (a Action) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonAction{
		Kind:   a.Kind.String(),
		Client: a.Client,
		Phase:  a.Phase,
		Input:  a.Input,
		Output: a.Output,
		Value:  a.SwitchValue,
	})
}

// UnmarshalJSON decodes the CLI wire format.
func (a *Action) UnmarshalJSON(b []byte) error {
	var j jsonAction
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	switch j.Kind {
	case "inv":
		a.Kind = Inv
	case "res":
		a.Kind = Res
	case "swi":
		a.Kind = Swi
	default:
		return fmt.Errorf("trace: unknown action kind %q", j.Kind)
	}
	a.Client = j.Client
	a.Phase = j.Phase
	a.Input = j.Input
	a.Output = j.Output
	a.SwitchValue = j.Value
	return nil
}

// EncodeJSON renders the trace as a JSON array of actions.
func (t Trace) EncodeJSON() ([]byte, error) {
	return json.MarshalIndent(t, "", "  ")
}

// DecodeJSON parses a JSON array of actions into a trace.
func DecodeJSON(b []byte) (Trace, error) {
	var t Trace
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, err
	}
	return t, nil
}
