package trace

// This file implements the compact state-representation layer used by the
// exact checkers (packages lin and slin): values are interned to dense
// small-integer symbols, and search states carry incrementally-maintained
// 128-bit digests so memoization keys are fixed-size comparable structs
// instead of freshly-built strings. See DESIGN.md, decision 7.

// Sym is a dense small-integer id for an interned Value. Symbols are local
// to the Interner that produced them; the zero Interner assigns symbols in
// first-intern order starting from 0.
type Sym uint32

// Interner maps Values to dense symbols and back. It is not safe for
// concurrent use; checkers create one per call (symbol spaces are small:
// one symbol per distinct input of a trace).
type Interner struct {
	syms map[Value]Sym
	vals []Value
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{syms: make(map[Value]Sym, 16)}
}

// Sym interns v, returning its symbol (allocating a new one on first
// sight).
func (in *Interner) Sym(v Value) Sym {
	if s, ok := in.syms[v]; ok {
		return s
	}
	s := Sym(len(in.vals))
	in.syms[v] = s
	in.vals = append(in.vals, v)
	return s
}

// Value returns the value interned as s.
func (in *Interner) Value(s Sym) Value { return in.vals[s] }

// Len returns the number of distinct interned values.
func (in *Interner) Len() int { return len(in.vals) }

// Digest is a 128-bit incremental hash over a set of independently-hashed
// components. Components combine by lane-wise wrapping addition, which is
// invertible: a component can be removed by subtracting its hash, so
// search structures (chains, multisets) maintain their digest in O(1) per
// mutation. Position/count parameters are mixed into each component's
// hash, so reorderings hash differently wherever order matters.
//
// Digests are used as memoization map keys; with 128 bits and strong
// per-component mixing, accidental collisions are negligible relative to
// search budgets (~2^-90 per pair of distinct states at the default
// 2e6-node budget).
type Digest [2]uint64

// Add returns the digest with component d2 added.
func (d Digest) Add(d2 Digest) Digest { return Digest{d[0] + d2[0], d[1] + d2[1]} }

// Sub returns the digest with component d2 removed.
func (d Digest) Sub(d2 Digest) Digest { return Digest{d[0] - d2[0], d[1] - d2[1]} }

// mix64 is the splitmix64 finalizer: a bijective avalanche mix.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// lane keys: arbitrary odd constants making the two 64-bit lanes
// independent hash functions of the same input.
const (
	laneKey0 = 0x9e3779b97f4a7c15
	laneKey1 = 0xc2b2ae3d27d4eb4f
)

func hash2(x uint64) Digest {
	return Digest{mix64(x ^ laneKey0), mix64(x ^ laneKey1)}
}

// HashElem hashes an (index, symbol, flag) chain element. The flag bit
// carries per-position state (e.g. "this prefix length is claimed"), so
// flipping it re-keys the element in O(1).
func HashElem(pos int, s Sym, flag bool) Digest {
	x := uint64(pos)<<34 | uint64(s)<<1
	if flag {
		x |= 1
	}
	return hash2(x)
}

// HashCount hashes a (symbol, multiplicity) multiset entry. Entries with
// multiplicity zero must not be included, making the digest canonical.
func HashCount(s Sym, count int) Digest {
	return hash2(uint64(s)<<32 | uint64(uint32(count)) | 1<<63)
}

// HashOutput hashes the (position, output-symbol) component of a chain
// entry. The streaming frontier engine keys configuration identity on
// future-relevant content only (DESIGN.md decision 17), which must
// include each retained entry's output — it is no longer derivable by
// folding once the prefix that produced it is dropped. The tag bit
// separates the key space from HashElem (no tag), HashBit (1<<62) and
// HashCount (1<<63); positions must stay below 2^27, comfortably above
// any retained suffix.
func HashOutput(pos int, s Sym) Digest {
	return hash2(uint64(pos)<<34 | uint64(s)<<1 | 1<<61)
}

// HashBit hashes set-membership of index i, the component hash of the
// word-array bitsets whose digests are maintained incrementally by
// popcount-style add/remove (check.BitSet; the classical checker's
// sparse placed sets fold it into their memo keys). The high tag bit
// separates the component space from HashElem and HashCount.
func HashBit(i int) Digest {
	return hash2(uint64(uint32(i)) | 1<<62)
}

// HashString hashes an arbitrary string to a 128-bit digest: two
// independently-seeded FNV-1a lanes, each finished with the splitmix64
// avalanche and mixed with the length. The model checker's state
// deduplication keys on these digests instead of retaining full
// canonical state strings (check.ExhaustiveStates); as with the checker
// memo keys, accidental collisions (~2⁻¹²⁸ per pair) would merge two
// distinct states, and ExhaustiveStatesReference retains the exact
// string-keyed exploration as the cross-checked reference.
func HashString(s string) Digest {
	const (
		fnvOffset = 14695981039346656037
		fnvPrime  = 1099511628211
	)
	a := uint64(fnvOffset) ^ laneKey0
	b := uint64(fnvOffset) ^ laneKey1
	for i := 0; i < len(s); i++ {
		c := uint64(s[i])
		a = (a ^ c) * fnvPrime
		b = (b ^ (c << 1)) * fnvPrime
	}
	n := uint64(len(s))
	return Digest{mix64(a ^ n), mix64(b + n)}
}

// SymMultiset is a multiset over interned symbols: a dense count vector
// with an incrementally-maintained canonical Digest. The zero value is an
// empty multiset.
type SymMultiset struct {
	counts []int32
	size   int
	dig    Digest
}

// NewSymMultiset returns an empty multiset sized for n symbols.
func NewSymMultiset(n int) SymMultiset {
	return SymMultiset{counts: make([]int32, n)}
}

// grow ensures the count vector covers symbol s.
func (m *SymMultiset) grow(s Sym) {
	for int(s) >= len(m.counts) {
		m.counts = append(m.counts, 0)
	}
}

// Count returns the multiplicity of s.
func (m *SymMultiset) Count(s Sym) int {
	if int(s) >= len(m.counts) {
		return 0
	}
	return int(m.counts[s])
}

// Add adjusts the multiplicity of s by n (n may be negative; it panics if
// the multiplicity would become negative, which indicates a bookkeeping
// bug in the caller).
func (m *SymMultiset) Add(s Sym, n int) {
	if n == 0 {
		return
	}
	m.grow(s)
	old := int(m.counts[s])
	c := old + n
	if c < 0 {
		panic("trace: symbol multiset multiplicity became negative")
	}
	if old > 0 {
		m.dig = m.dig.Sub(HashCount(s, old))
	}
	if c > 0 {
		m.dig = m.dig.Add(HashCount(s, c))
	}
	m.counts[s] = int32(c)
	m.size += n
}

// Size returns the total number of occurrences.
func (m *SymMultiset) Size() int { return m.size }

// Digest returns the canonical digest of the multiset's contents.
func (m *SymMultiset) Digest() Digest { return m.dig }

// NumSyms returns the length of the count vector (an upper bound on
// symbols with non-zero multiplicity; iterate 0..NumSyms and test Count).
func (m *SymMultiset) NumSyms() int { return len(m.counts) }

// Clone returns an independent copy of m.
func (m *SymMultiset) Clone() SymMultiset {
	c := *m
	c.counts = make([]int32, len(m.counts))
	copy(c.counts, m.counts)
	return c
}

// CopyFrom overwrites m with the contents of o, reusing m's count vector
// when it is large enough (the allocation-free reset used by checker hot
// paths).
func (m *SymMultiset) CopyFrom(o *SymMultiset) {
	if cap(m.counts) < len(o.counts) {
		m.counts = make([]int32, len(o.counts))
	}
	m.counts = m.counts[:len(o.counts)]
	copy(m.counts, o.counts)
	m.size = o.size
	m.dig = o.dig
}

// SubsetOf reports whether every multiplicity in m is at most that in o.
func (m *SymMultiset) SubsetOf(o *SymMultiset) bool {
	for s, c := range m.counts {
		if c > 0 && int(c) > o.Count(Sym(s)) {
			return false
		}
	}
	return true
}

// SubtractAll removes every occurrence counted by o from m; the caller
// guarantees o ⊆ m (Add panics otherwise).
func (m *SymMultiset) SubtractAll(o *SymMultiset) {
	for s, c := range o.counts {
		if c > 0 {
			m.Add(Sym(s), -int(c))
		}
	}
}

// SetPool recycles set-maps keyed by a comparable digest-like type,
// clearing each map on reuse. Checker hot paths use it for the per-frame
// visited sets so backtracking searches stay allocation-free after
// warmup. The zero value is ready to use; not safe for concurrent use
// (pools are per-searcher).
type SetPool[K comparable] struct {
	free []map[K]struct{}
}

// Get returns an empty set, reusing a returned one when available.
func (p *SetPool[K]) Get() map[K]struct{} {
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free = p.free[:n-1]
		clear(m)
		return m
	}
	return make(map[K]struct{}, 8)
}

// Put returns a set to the pool for reuse.
func (p *SetPool[K]) Put(m map[K]struct{}) { p.free = append(p.free, m) }
