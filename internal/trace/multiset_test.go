package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMultisetBasics(t *testing.T) {
	m := NewMultiset("a", "b", "a")
	if m.Count("a") != 2 || m.Count("b") != 1 {
		t.Fatalf("counts wrong: %v", m)
	}
	if m.Size() != 3 {
		t.Fatalf("Size = %d", m.Size())
	}
	m.Add("a", -2)
	if _, ok := m["a"]; ok {
		t.Fatal("zero-multiplicity entry retained")
	}
}

func TestMultisetAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative multiplicity")
		}
	}()
	NewMultiset("a").Add("a", -2)
}

func TestMultisetUnionSum(t *testing.T) {
	m := NewMultiset("a", "a", "b")
	o := NewMultiset("a", "c")
	u := m.Union(o)
	if u.Count("a") != 2 || u.Count("b") != 1 || u.Count("c") != 1 {
		t.Fatalf("Union = %v", u)
	}
	s := m.Sum(o)
	if s.Count("a") != 3 || s.Count("b") != 1 || s.Count("c") != 1 {
		t.Fatalf("Sum = %v", s)
	}
	// Operands unchanged.
	if m.Count("a") != 2 || o.Count("a") != 1 {
		t.Fatal("Union/Sum modified operands")
	}
}

func TestMultisetSubset(t *testing.T) {
	m := NewMultiset("a")
	o := NewMultiset("a", "a", "b")
	if !m.SubsetOf(o) || o.SubsetOf(m) {
		t.Fatal("SubsetOf wrong")
	}
	if !(Multiset{}).SubsetOf(m) {
		t.Fatal("empty multiset must be subset of everything")
	}
}

func randomMultiset(r *rand.Rand) Multiset {
	m := Multiset{}
	letters := []Value{"a", "b", "c", "d"}
	for i, n := 0, r.Intn(6); i < n; i++ {
		m.Add(letters[r.Intn(len(letters))], 1+r.Intn(3))
	}
	return m
}

// Algebraic laws of §3: union is the pointwise max (idempotent, commutative,
// absorbs subsets), sum is pointwise plus, and both interact with ⊆ as
// expected.
func TestMultisetLaws(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a, b := randomMultiset(r), randomMultiset(r)
		if !a.Union(a).Equal(a) {
			return false // idempotence
		}
		if !a.Union(b).Equal(b.Union(a)) {
			return false // commutativity
		}
		if !a.SubsetOf(a.Union(b)) || !b.SubsetOf(a.Union(b)) {
			return false // upper bound
		}
		if !a.SubsetOf(a.Sum(b)) {
			return false // sum dominates
		}
		if !a.Union(b).SubsetOf(a.Sum(b)) {
			return false // max ≤ plus
		}
		if a.Sum(b).Size() != a.Size()+b.Size() {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMultisetKeyCanonical(t *testing.T) {
	a := NewMultiset("x", "y", "x")
	b := NewMultiset("y", "x", "x")
	if a.Key() != b.Key() {
		t.Fatal("Key not canonical for equal multisets")
	}
	c := NewMultiset("x", "y")
	if a.Key() == c.Key() {
		t.Fatal("Key collides for different multisets")
	}
	// Values containing the separator-ish characters must not collide.
	d := NewMultiset("x\x01", "y")
	e := NewMultiset("x", "\x01y")
	if d.Key() == e.Key() {
		t.Fatal("Key collides on adversarial values")
	}
}
