package trace

// ChainPrefix is an immutable summary of a commit chain's compacted
// prefix — the streaming frontier engines' bounded-memory representation
// (DESIGN.md, decision 17). A frontier configuration whose leading chain
// entries can never be touched again (every one is claimed, and the lin
// transition relation only flips unused marks or appends) drops their
// per-entry storage and keeps this summary instead:
//
//   - N fixes the absolute position of every retained suffix entry, so
//     appends keep hashing HashElem at their true chain positions;
//   - Elems keeps the availability derivation exact (available inputs =
//     invoked − prefix elements − suffix elements);
//   - Dig is the lane-wise sum of the dropped entries' HashElem
//     components. Because a chain digest is a commutative sum of
//     per-position components, the full-chain digest — the memo identity
//     — is recoverable as Dig plus the suffix components: compaction
//     changes the representation of a configuration, never its identity.
//
// Vals retains the dropped inputs themselves only when a consumer needs
// to reconstruct full chain histories (witness assembly; the slin
// engine's abort discharge); bounded-memory streaming runs leave it nil.
//
// Summaries are shared: configurations with a common compacted prefix
// point at one ChainPrefix, and further compaction builds a new summary
// rather than mutating a shared one.
type ChainPrefix struct {
	// N is the number of chain entries summarized away; suffix index k
	// corresponds to absolute chain position N + k.
	N int
	// Elems is the multiset of the dropped entries' input symbols.
	Elems SymMultiset
	// Dig is the digest contribution of the dropped entries (the sum of
	// their HashElem components at their absolute positions and final
	// claimed flags).
	Dig Digest
	// Vals holds the dropped inputs in chain order when retention was
	// requested (len(Vals) == N), nil otherwise.
	Vals []Value
}

// Len returns the number of summarized entries; a nil prefix is empty.
func (p *ChainPrefix) Len() int {
	if p == nil {
		return 0
	}
	return p.N
}
