package trace

import (
	"sort"
	"strings"
)

// Multiset represents a multiset of values by its multiplicity function
// (§3). The zero value is the empty multiset; entries with multiplicity
// zero are never stored.
type Multiset map[Value]int

// NewMultiset returns a multiset containing each argument once.
func NewMultiset(vs ...Value) Multiset {
	m := Multiset{}
	for _, v := range vs {
		m.Add(v, 1)
	}
	return m
}

// Count returns the multiplicity of v in m.
func (m Multiset) Count(v Value) int { return m[v] }

// Add increases the multiplicity of v by n (n may be negative; the entry is
// removed when it reaches zero and it panics if it would become negative,
// which would indicate a bookkeeping bug in the caller).
func (m Multiset) Add(v Value, n int) {
	c := m[v] + n
	switch {
	case c < 0:
		panic("trace: multiset multiplicity became negative")
	case c == 0:
		delete(m, v)
	default:
		m[v] = c
	}
}

// Clone returns an independent copy of m.
func (m Multiset) Clone() Multiset {
	c := make(Multiset, len(m))
	for v, n := range m {
		c[v] = n
	}
	return c
}

// Union returns m ∪ o, the pointwise maximum of multiplicities (§3).
func (m Multiset) Union(o Multiset) Multiset {
	c := m.Clone()
	for v, n := range o {
		if n > c[v] {
			c[v] = n
		}
	}
	return c
}

// Sum returns m ⊎ o, the pointwise sum of multiplicities (§3).
func (m Multiset) Sum(o Multiset) Multiset {
	c := m.Clone()
	for v, n := range o {
		c.Add(v, n)
	}
	return c
}

// SubsetOf reports m ⊆ o: every multiplicity in m is at most that in o (§3).
func (m Multiset) SubsetOf(o Multiset) bool {
	for v, n := range m {
		if n > o[v] {
			return false
		}
	}
	return true
}

// Equal reports whether m and o have identical multiplicities.
func (m Multiset) Equal(o Multiset) bool {
	return m.SubsetOf(o) && o.SubsetOf(m)
}

// Size returns the total number of occurrences in m.
func (m Multiset) Size() int {
	t := 0
	for _, n := range m {
		t += n
	}
	return t
}

// Key returns a canonical string for m, usable as a memoization map key.
func (m Multiset) Key() string {
	vs := make([]string, 0, len(m))
	for v := range m {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	var b strings.Builder
	for _, v := range vs {
		b.WriteString(v)
		b.WriteByte('\x01')
		for i := 0; i < m[v]; i++ {
			b.WriteByte('#')
		}
		b.WriteByte('\x02')
	}
	return b.String()
}
