package trace

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHistoryPrefix(t *testing.T) {
	tests := []struct {
		name         string
		h, g         History
		prefix       bool
		strictPrefix bool
	}{
		{"empty prefix of empty", History{}, History{}, true, false},
		{"empty prefix of any", History{}, History{"a"}, true, true},
		{"equal histories", History{"a", "b"}, History{"a", "b"}, true, false},
		{"proper prefix", History{"a"}, History{"a", "b"}, true, true},
		{"mismatch", History{"b"}, History{"a", "b"}, false, false},
		{"longer than target", History{"a", "b", "c"}, History{"a", "b"}, false, false},
		{"mid mismatch", History{"a", "x"}, History{"a", "b", "c"}, false, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.h.IsPrefixOf(tt.g); got != tt.prefix {
				t.Errorf("IsPrefixOf = %v, want %v", got, tt.prefix)
			}
			if got := tt.h.IsStrictPrefixOf(tt.g); got != tt.strictPrefix {
				t.Errorf("IsStrictPrefixOf = %v, want %v", got, tt.strictPrefix)
			}
		})
	}
}

func TestHistoryAppendDoesNotAlias(t *testing.T) {
	h := make(History, 0, 4)
	h = append(h, "a")
	g1 := h.Append("b")
	g2 := h.Append("c")
	if g1[1] != "b" || g2[1] != "c" {
		t.Fatalf("Append aliased storage: g1=%v g2=%v", g1, g2)
	}
}

func TestHistoryConcat(t *testing.T) {
	h := History{"a", "b"}
	g := History{"c"}
	got := h.Concat(g)
	if !got.Equal(History{"a", "b", "c"}) {
		t.Fatalf("Concat = %v", got)
	}
	if !h.Equal(History{"a", "b"}) || !g.Equal(History{"c"}) {
		t.Fatal("Concat modified its operands")
	}
}

func TestLCP(t *testing.T) {
	tests := []struct {
		name string
		hs   []History
		want History
	}{
		{"empty set", nil, History{}},
		{"singleton", []History{{"a", "b"}}, History{"a", "b"}},
		{"common prefix", []History{{"a", "b", "c"}, {"a", "b", "d"}}, History{"a", "b"}},
		{"disjoint", []History{{"a"}, {"b"}}, History{}},
		{"one empty", []History{{}, {"a"}}, History{}},
		{"nested", []History{{"a"}, {"a", "b"}, {"a", "b", "c"}}, History{"a"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := LCP(tt.hs); !got.Equal(tt.want) {
				t.Errorf("LCP(%v) = %v, want %v", tt.hs, got, tt.want)
			}
		})
	}
}

func randomHistory(r *rand.Rand, n int) History {
	h := make(History, r.Intn(n))
	letters := []Value{"a", "b", "c"}
	for i := range h {
		h[i] = letters[r.Intn(len(letters))]
	}
	return h
}

// The LCP of a set is a prefix of every member and cannot be extended.
func TestLCPProperties(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	prop := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed))
		k := 1 + rr.Intn(4)
		hs := make([]History, k)
		for i := range hs {
			hs[i] = randomHistory(rr, 6)
		}
		p := LCP(hs)
		for _, h := range hs {
			if !p.IsPrefixOf(h) {
				return false
			}
		}
		// Maximality: p extended by any value is not a common prefix.
		if len(hs) > 0 {
			ext := p.Append("a")
			allPrefix := true
			for _, h := range hs {
				if !ext.IsPrefixOf(h) {
					allPrefix = false
				}
			}
			// If "a"-extension is a common prefix, LCP was not maximal —
			// unless the true next common element is "a" for all, which
			// contradicts maximality of LCP. So allPrefix must be false
			// except when every history literally continues with "a",
			// which LCP would have captured.
			if allPrefix {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: r}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHistoryElems(t *testing.T) {
	h := History{"a", "b", "a"}
	m := h.Elems()
	if m.Count("a") != 2 || m.Count("b") != 1 || m.Count("c") != 0 {
		t.Fatalf("Elems = %v", m)
	}
}
