package trace

import "testing"

// The §5.1 example trace: client c1 invokes in1 on S1; c2 invokes in2 on
// S1; c2 switches to S2 with value v; c1 returns out1 from S1; c2 returns
// out2 from S2.
func exampleTrace() Trace {
	return Trace{
		Invoke("c1", 1, "in1"),
		Invoke("c2", 1, "in2"),
		Switch("c2", 2, "in2", "v"),
		Response("c1", 1, "in1", "out1"),
		Response("c2", 2, "in2", "out2"),
	}
}

func TestActionString(t *testing.T) {
	tests := []struct {
		a    Action
		want string
	}{
		{Invoke("c", 1, "x"), "inv(c,1,x)"},
		{Response("c", 2, "x", "y"), "res(c,2,x,y)"},
		{Switch("c", 3, "x", "v"), "swi(c,3,x,v)"},
	}
	for _, tt := range tests {
		if got := tt.a.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestProjectExample(t *testing.T) {
	// proj([x, y, x', z, y', z, y, z, y], {x', y'}) = [x', y'] (§3).
	mk := func(name string) Action { return Invoke(ClientID(name), 1, Value(name)) }
	tr := Trace{mk("x"), mk("y"), mk("x'"), mk("z"), mk("y'"), mk("z"), mk("y"), mk("z"), mk("y")}
	got := tr.Project(func(a Action) bool { return a.Input == "x'" || a.Input == "y'" })
	if len(got) != 2 || got[0].Input != "x'" || got[1].Input != "y'" {
		t.Fatalf("projection = %v", got)
	}
}

func TestInputsBefore(t *testing.T) {
	tr := exampleTrace()
	if h := tr.InputsBefore(0); len(h) != 0 {
		t.Errorf("InputsBefore(0) = %v", h)
	}
	if h := tr.InputsBefore(2); !h.Equal(History{"in1", "in2"}) {
		t.Errorf("InputsBefore(2) = %v", h)
	}
	// Switch actions do not contribute inputs.
	if h := tr.InputsBefore(5); !h.Equal(History{"in1", "in2"}) {
		t.Errorf("InputsBefore(5) = %v", h)
	}
	m := tr.InputsBeforeMultiset(5)
	if m.Count("in1") != 1 || m.Count("in2") != 1 {
		t.Errorf("InputsBeforeMultiset = %v", m)
	}
}

func TestClientSub(t *testing.T) {
	tr := exampleTrace()
	c2 := tr.ClientSub("c2")
	// The plain client sub-trace drops the switch action.
	if len(c2) != 2 || !c2[0].IsInv() || !c2[1].IsRes() {
		t.Fatalf("ClientSub(c2) = %v", c2)
	}
}

func TestPhaseClientSub(t *testing.T) {
	tr := exampleTrace()
	// In signature (1,2) the switch of c2 (phase 2 = n) is an abort action,
	// and it is c2's last action there: the phase-2 response belongs to the
	// next phase's operation actions.
	c2 := tr.PhaseClientSub(1, 2, "c2")
	if len(c2) != 2 {
		t.Fatalf("PhaseClientSub(1,2,c2) = %v", c2)
	}
	if !c2[1].IsAbort(2) {
		t.Fatalf("expected abort action, got %v", c2[1])
	}
	// In signature (2,3) the same switch is an init action.
	c2 = tr.PhaseClientSub(2, 3, "c2")
	if len(c2) != 2 || !c2[0].IsInit(2) || !c2[1].IsRes() {
		t.Fatalf("PhaseClientSub(2,3,c2) = %v", c2)
	}
	// c1 never switches: its (2,3)-sub-trace is empty.
	if c1 := tr.PhaseClientSub(2, 3, "c1"); len(c1) != 0 {
		t.Fatalf("PhaseClientSub(2,3,c1) = %v", c1)
	}
}

func TestWellFormed(t *testing.T) {
	tests := []struct {
		name string
		t    Trace
		want bool
	}{
		{"empty", Trace{}, true},
		{"single invocation (pending)", Trace{Invoke("c", 1, "x")}, true},
		{"inv then res", Trace{Invoke("c", 1, "x"), Response("c", 1, "x", "y")}, true},
		{"response first", Trace{Response("c", 1, "x", "y")}, false},
		{"double invocation", Trace{Invoke("c", 1, "x"), Invoke("c", 1, "z")}, false},
		{"mismatched response input", Trace{Invoke("c", 1, "x"), Response("c", 1, "z", "y")}, false},
		{"double response", Trace{
			Invoke("c", 1, "x"), Response("c", 1, "x", "y"), Response("c", 1, "x", "y"),
		}, false},
		{"interleaved clients", Trace{
			Invoke("c1", 1, "x"), Invoke("c2", 1, "z"),
			Response("c2", 1, "z", "y"), Response("c1", 1, "x", "y"),
		}, true},
		{"switch action not in sig_T", Trace{Invoke("c", 1, "x"), Switch("c", 2, "x", "v")}, false},
		{"repeated ops same client", Trace{
			Invoke("c", 1, "x"), Response("c", 1, "x", "y"),
			Invoke("c", 1, "x"), Response("c", 1, "x", "y"),
		}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.t.WellFormed(); got != tt.want {
				t.Errorf("WellFormed = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestComplete(t *testing.T) {
	if (Trace{Invoke("c", 1, "x")}).Complete() {
		t.Fatal("pending invocation must not be complete")
	}
	tr := Trace{Invoke("c", 1, "x"), Response("c", 1, "x", "y")}
	if !tr.Complete() {
		t.Fatal("responded trace must be complete")
	}
}

func TestPhaseWellFormed(t *testing.T) {
	tests := []struct {
		name string
		t    Trace
		m, n int
		want bool
	}{
		{"example (1,2) projection", exampleTrace().ProjectSig(1, 2), 1, 2, true},
		{"example (2,3) projection", exampleTrace().ProjectSig(2, 3), 2, 3, true},
		{"example as (1,3) composite", exampleTrace(), 1, 3, true},
		{"init required when m!=1", Trace{Invoke("c", 2, "x")}, 2, 3, false},
		{"init enters phase", Trace{Switch("c", 2, "x", "v"), Response("c", 2, "x", "y")}, 2, 3, true},
		{"double init", Trace{
			Switch("c", 2, "x", "v"), Response("c", 2, "x", "y"), Switch("c", 2, "x", "v"),
		}, 2, 3, false},
		{"init forbidden when m==1", Trace{Switch("c", 1, "x", "v")}, 1, 2, false},
		{"abort must be last", Trace{
			Invoke("c", 1, "x"), Switch("c", 2, "x", "v"), Invoke("c", 1, "z"),
		}, 1, 2, false},
		{"abort without pending", Trace{
			Invoke("c", 1, "x"), Response("c", 1, "x", "y"), Switch("c", 2, "x", "v"),
		}, 1, 2, false},
		{"abort input mismatch", Trace{Invoke("c", 1, "x"), Switch("c", 2, "z", "v")}, 1, 2, false},
		{"ok abort", Trace{Invoke("c", 1, "x"), Switch("c", 2, "x", "v")}, 1, 2, true},
		{"m >= n rejected", Trace{}, 2, 2, false},
		{"pending inv ok", Trace{Invoke("c", 1, "x")}, 1, 2, true},
		{"second op after response", Trace{
			Invoke("c", 1, "x"), Response("c", 1, "x", "y"), Invoke("c", 1, "z"),
		}, 1, 2, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.t.PhaseWellFormed(tt.m, tt.n); got != tt.want {
				t.Errorf("PhaseWellFormed(%d,%d) = %v, want %v", tt.m, tt.n, got, tt.want)
			}
		})
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := exampleTrace()
	b, err := tr.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(tr) {
		t.Fatalf("round trip length %d != %d", len(got), len(tr))
	}
	for i := range tr {
		if got[i] != tr[i] {
			t.Errorf("action %d: %v != %v", i, got[i], tr[i])
		}
	}
}

func TestDecodeJSONBadKind(t *testing.T) {
	if _, err := DecodeJSON([]byte(`[{"kind":"zap","client":"c","phase":1,"input":"x"}]`)); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestClients(t *testing.T) {
	tr := exampleTrace()
	cs := tr.Clients()
	if len(cs) != 2 || cs[0] != "c1" || cs[1] != "c2" {
		t.Fatalf("Clients = %v", cs)
	}
}
