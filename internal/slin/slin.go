package slin

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
)

// ErrBudget is returned when a check exceeds its search budget.
var ErrBudget = errors.New("slin: search budget exhausted")

// ErrMemo is returned by the breadth (frontier) engine — Sessions and
// checks with check.WithWorkers(n > 1) — when a frontier exceeds the
// configured check.WithMemoLimit; the depth-first engine instead stops
// inserting memo entries beyond the limit.
var ErrMemo = errors.New("slin: memo limit exceeded")

// DefaultBudget bounds the number of search nodes explored per check.
const DefaultBudget = 2_000_000

// ctxPollMask throttles context polling in the search hot loops: the
// context is consulted once every ctxPollMask+1 spent nodes.
const ctxPollMask = 0x3ff

// Checks are configured with the shared functional options of package
// check (checker API v2, DESIGN.md decision 11): WithBudget bounds the
// search (one budget per Check call, shared across all
// init-interpretation combinations, spent one node per recursive step —
// uniform with lin.Check and lin.CheckClassical), WithWorkers(n > 1)
// runs the breadth engine inside a single check, WithMemoLimit bounds
// the memo tables, and WithTemporalAbortOrder selects the temporal
// Abort-Order reading documented below.
//
// TemporalAbortOrder weakens Abort-Order (Definition 32) to constrain
// only commit histories of responses occurring before the abort action
// in the trace.
//
// The literal Definition 32 quantifies over all commit histories, and
// combined with abort Validity (Definition 28, evaluated at the abort's
// own index) it forbids a phase from committing new operations after
// any abort has been issued — matching the §6 specification automaton,
// whose hist "does not grow anymore" once aborting begins. The paper's
// Quorum example violates this on schedules where a client decides
// after another client's switch using an input invoked in between; the
// paper's informal §2.4 proof does not check abort Validity and misses
// this. Experiment E6b documents the divergence: Quorum traces always
// satisfy the temporal variant, but adversarial schedules fail the
// literal one. The intra-object composition theorem is proved for the
// literal semantics (and checked there by E7); for consensus-like ADTs
// whose interpretation classes depend only on the winning value, the
// temporal variant still yields linearizable compositions, which E2/E3
// verify end-to-end.

// Witness is one instance of Definition 19's existential content for a
// fixed init interpretation: a speculative linearization function g on
// commit indices plus an abort interpretation f_abort. VerifyWitness
// checks a witness against Definitions 20–32 directly.
type Witness struct {
	// Init is the (universally quantified) interpretation of init
	// actions this witness answers, keyed by action index.
	Init map[int]trace.History
	// Commits maps response indices to their commit histories g(i).
	Commits map[int]trace.History
	// Aborts maps abort action indices to their abort histories.
	Aborts map[int]trace.History
}

// Result reports the outcome of a speculative linearizability check.
type Result struct {
	// OK is true when the trace satisfies SLin_T(m,n) with respect to the
	// representative interpretations.
	OK bool
	// Reason documents a negative verdict.
	Reason string
	// FailedInit, when not OK and the failure is interpretation-specific,
	// holds the init interpretation (by init action index) that admits no
	// speculative linearization function.
	FailedInit map[int]trace.History
	// Witnesses holds one witness per checked init-interpretation
	// combination when OK.
	Witnesses []Witness
	// Nodes is the number of search nodes the check spent across all
	// interpretation combinations (always at most the budget; comparable
	// with lin.Result.Nodes).
	Nodes int
	// Pruned is the number of extension branches the sleep-set
	// partial-order reduction skipped (check.WithPOR, on by default;
	// always 0 on WithPOR(false) runs). The SLin reducer conservatively
	// disables itself on traces containing abort actions — abort
	// histories extend the chain as a sequence, and r_init may be
	// order-sensitive — so the depth-first engine reports 0 there. The
	// breadth engine (Sessions, WithWorkers(n > 1)) cannot see aborts
	// coming: it may prune on an abort-free prefix, then discard the
	// pruned frontiers by an unreduced replay at the first abort while
	// keeping the cumulative counter, so its Pruned can stay non-zero on
	// abort-carrying traces (the verdict is still unreduced-exact).
	Pruned int
}

// spender is the per-call search budget, shared by every interpretation
// combination and sub-search of one Check call; it also accumulates the
// pruned-branch count of the partial-order reduction across combinations.
type spender struct {
	ctx    context.Context
	nodes  int
	budget int
	pruned int
}

func (sp *spender) spend() error {
	sp.nodes++
	if sp.nodes > sp.budget {
		return ErrBudget
	}
	if sp.nodes&ctxPollMask == 0 && sp.ctx != nil {
		if err := sp.ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// existsFn is the signature shared by the optimized and reference
// implementations of Definition 19's existential part.
type existsFn func(f adt.Folder, rinit RInit, m, n int, t trace.Trace, finit map[int]trace.History, set check.Settings, sp *spender) (bool, Witness, error)

// Check decides whether t satisfies SLin_T(m,n) (Definition 36) for the
// ADT f and the phase-agreed relation rinit. Switch actions with phase
// parameter m are init actions, those with parameter n abort actions;
// switch actions with interior parameters (m < o < n) may occur in
// composed traces and are ignored, mirroring Definition 33's projection.
//
// The check is context-aware: cancellation of ctx aborts the search with
// ctx's error. With check.WithWorkers(n > 1) it runs on the breadth
// (frontier) engine — the same engine Sessions use — which parallelizes
// inside the single check; witnesses are assembled from the surviving
// configurations' assignment trails, exactly as Sessions do.
func Check(ctx context.Context, f adt.Folder, rinit RInit, m, n int, t trace.Trace, opts ...check.Option) (Result, error) {
	return checkSettings(ctx, f, rinit, m, n, t, check.NewSettings(opts...))
}

func checkSettings(ctx context.Context, f adt.Folder, rinit RInit, m, n int, t trace.Trace, set check.Settings) (Result, error) {
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}
	if set.Workers > 1 {
		return checkStreaming(ctx, f, rinit, m, n, t, set)
	}
	return checkWith(ctx, f, rinit, m, n, t, set, existsWitness)
}

// checkWith is the common driver for Check and CheckReference: it
// enumerates init-interpretation combinations and delegates the
// existential search, with one budget shared across the whole call.
func checkWith(ctx context.Context, f adt.Folder, rinit RInit, m, n int, t trace.Trace, set check.Settings, exists existsFn) (Result, error) {
	if m >= n || m < 1 {
		return Result{}, fmt.Errorf("slin: invalid phase range (%d,%d)", m, n)
	}
	for _, a := range t {
		if !trace.InSig(a, m, n) {
			return Result{}, fmt.Errorf("slin: action %v outside sig(%d,%d)", a, m, n)
		}
	}
	if !t.PhaseWellFormed(m, n) {
		return Result{OK: false, Reason: fmt.Sprintf("trace is not (%d,%d)-well-formed", m, n)}, nil
	}

	// Enumerate init interpretation combinations (the ∀ of Definition 19).
	var initIdx []int
	for i, a := range t {
		if a.IsInit(m) && m != 1 {
			initIdx = append(initIdx, i)
		}
	}
	choices := make([][]trace.History, len(initIdx))
	for k, i := range initIdx {
		reps := rinit.Representatives(t[i].SwitchValue)
		if len(reps) == 0 {
			return Result{}, fmt.Errorf("slin: switch value %q has no interpretations", t[i].SwitchValue)
		}
		choices[k] = reps
	}

	combo := make([]int, len(initIdx))
	var witnesses []Witness
	sp := &spender{ctx: ctx, budget: set.BudgetOr(DefaultBudget)}
	for {
		finit := map[int]trace.History{}
		for k, i := range initIdx {
			finit[i] = choices[k][combo[k]]
		}
		ok, w, err := exists(f, rinit, m, n, t, finit, set, sp)
		if err != nil {
			return Result{Nodes: sp.nodes, Pruned: sp.pruned}, err
		}
		if !ok {
			return Result{
				OK:         false,
				Reason:     "no speculative linearization function for some init interpretation",
				FailedInit: finit,
				Nodes:      sp.nodes,
				Pruned:     sp.pruned,
			}, nil
		}
		if set.Witness {
			witnesses = append(witnesses, w)
		}
		// Advance the mixed-radix counter over representative choices.
		k := 0
		for ; k < len(combo); k++ {
			combo[k]++
			if combo[k] < len(choices[k]) {
				break
			}
			combo[k] = 0
		}
		if k == len(combo) {
			break
		}
	}
	return Result{OK: true, Witnesses: witnesses, Nodes: sp.nodes, Pruned: sp.pruned}, nil
}

// CheckLin decides plain linearizability of a switch-free trace via the
// SLin machinery with m = 1: by Theorem 2, SLin_T(1, n) restricted to
// sig_T coincides with Lin_T. Tests use it to validate Theorem 2 against
// package lin.
func CheckLin(ctx context.Context, f adt.Folder, t trace.Trace, opts ...check.Option) (Result, error) {
	return Check(ctx, f, UniversalRInit{}, 1, 2, t, opts...)
}
