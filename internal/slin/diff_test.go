package slin_test

// Extends the property suite of this package (property_test.go) with the
// engine-variant differential harness (internal/check/diffcheck): the
// SLin depth and breadth engines, reduced and unreduced, must agree on
// randomized phase traces — including abort-heavy first phases where the
// reducer must disable itself — and on switch-free Theorem-2 traces
// where it is fully active. External test package: diffcheck imports
// slin.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/check/diffcheck"
	"repro/internal/slin"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestFirstPhaseEngineMatrix: abort-heavy Quorum-shaped schedules, both
// Abort-Order semantics, clean and invariant-violating.
func TestFirstPhaseEngineMatrix(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(7))
	iters := 100
	if testing.Short() {
		iters = 25
	}
	aborts := 0
	for i := 0; i < iters; i++ {
		opts := workload.PhaseOpts{Clients: 2 + r.Intn(3), NoLateOps: i%2 == 0}
		if i%3 == 0 {
			opts.ViolateProb = 0.4
		}
		tr := workload.FirstPhase(r, opts)
		for _, a := range tr {
			if a.IsAbort(2) {
				aborts++
				break
			}
		}
		if err := diffcheck.SLin(ctx, adt.Consensus{}, slin.ConsensusRInit{}, 1, 2, tr, i%4 < 2); err != nil {
			t.Fatal(err)
		}
	}
	if aborts < iters/2 {
		t.Fatalf("abort-heavy generator produced only %d/%d traces with aborts", aborts, iters)
	}
}

// TestTheorem2EngineMatrix: switch-free traces where the SLin reducer is
// fully active; SLin(1,2) and the lin matrix must both be self-consistent
// and (per Theorem 2) agree with each other.
func TestTheorem2EngineMatrix(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(17))
	inputs := []trace.Value{adt.ProposeInput("a"), adt.ProposeInput("b")}
	iters := 80
	if testing.Short() {
		iters = 20
	}
	for i := 0; i < iters; i++ {
		opts := workload.TraceOpts{Clients: 2, Ops: 2 + r.Intn(3), Inputs: inputs, UniqueTags: i%3 != 0}
		if i%2 == 1 {
			opts.CorruptProb = 0.5
		}
		tr := workload.Random(adt.Consensus{}, r, opts)
		if err := diffcheck.SLin(ctx, adt.Consensus{}, slin.UniversalRInit{}, 1, 2, tr, false); err != nil {
			t.Fatal(err)
		}
		if err := diffcheck.Lin(ctx, adt.Consensus{}, tr); err != nil {
			t.Fatal(err)
		}
	}
}
