package slin

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/trace"
)

// This file implements the linear-time invariant checks the paper uses to
// abstract its consensus case studies (§2.4, §2.5): I1–I3 characterize
// first-phase algorithms (Quorum, RCons) and I4–I5 second-phase algorithms
// (Backup, CASCons). The paper proves I1–I3 imply SLin(m,n) for the first
// phase and I4–I5 imply SLin(n,o) for the second; experiment E6 validates
// those reductions against the full Check on generated traces.
//
// Conventions: traces are consensus-phase traces where responses carry
// outputs d(v) and switch values are the raw consensus values v (matching
// ConsensusRInit).

// FirstPhaseInvariants checks I1, I2 and I3 on a first-phase consensus
// trace in sig(m,n). It returns nil when all three hold:
//
//	I1: if some client decides v then all clients that switch, either
//	    before or after the decision, do so with value v;
//	I2: all clients that decide do so with the same value;
//	I3: every decision and switch carries a value proposed before it.
func FirstPhaseInvariants(t trace.Trace, m, n int) error {
	decided := trace.Value("")
	haveDecision := false
	// I2 and the decision value.
	for _, a := range t {
		if a.Kind != trace.Res {
			continue
		}
		v, ok := adt.DecisionOf(a.Output)
		if !ok {
			return fmt.Errorf("slin: response output %q is not a decision", a.Output)
		}
		if haveDecision && v != decided {
			return fmt.Errorf("slin: I2 violated: decisions %q and %q", decided, v)
		}
		decided, haveDecision = v, true
	}
	// I1: all switch values equal the decision, regardless of order.
	if haveDecision {
		for _, a := range t {
			if a.IsAbort(n) && a.SwitchValue != decided {
				return fmt.Errorf("slin: I1 violated: switch value %q after decision %q",
					a.SwitchValue, decided)
			}
		}
	}
	// I3: decided/switched values proposed before the decide/switch.
	proposed := trace.Multiset{}
	for _, a := range t {
		switch {
		case a.Kind == trace.Inv:
			if v, ok := adt.ProposalOf(adt.Untag(a.Input)); ok {
				proposed.Add(v, 1)
			}
		case a.Kind == trace.Res:
			v, _ := adt.DecisionOf(a.Output)
			if proposed.Count(v) == 0 {
				return fmt.Errorf("slin: I3 violated: decision %q not proposed before it", v)
			}
		case a.IsAbort(n):
			if proposed.Count(a.SwitchValue) == 0 {
				return fmt.Errorf("slin: I3 violated: switch value %q not proposed before it",
					a.SwitchValue)
			}
		}
	}
	return nil
}

// SecondPhaseInvariants checks I4 and I5 on a second-phase consensus trace
// in sig(m,n) (the phase receives init actions numbered m):
//
//	I4: all clients decide the same value;
//	I5: every decision is a switch value previously submitted by some
//	    client.
func SecondPhaseInvariants(t trace.Trace, m, n int) error {
	decided := trace.Value("")
	haveDecision := false
	submitted := trace.Multiset{}
	for _, a := range t {
		switch {
		case a.IsInit(m):
			submitted.Add(a.SwitchValue, 1)
		case a.Kind == trace.Res:
			v, ok := adt.DecisionOf(a.Output)
			if !ok {
				return fmt.Errorf("slin: response output %q is not a decision", a.Output)
			}
			if haveDecision && v != decided {
				return fmt.Errorf("slin: I4 violated: decisions %q and %q", decided, v)
			}
			decided, haveDecision = v, true
			if submitted.Count(v) == 0 {
				return fmt.Errorf("slin: I5 violated: decision %q not submitted as a switch value", v)
			}
		}
	}
	return nil
}
