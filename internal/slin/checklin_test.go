package slin

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/lin"
	"repro/internal/workload"
)

// CheckLin routes plain traces through the SLin machinery (Theorem 2's
// reduction in the m = 1 direction) and must agree with package lin's
// direct checker on universal-ADT traces.
func TestCheckLinAgainstLin(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	inputs := []string{"a", "b", "c"}
	iters := 150
	if testing.Short() {
		iters = 40
	}
	for i := 0; i < iters; i++ {
		opts := workload.TraceOpts{
			Clients: 2, Ops: 2 + r.Intn(3), Inputs: inputs, UniqueTags: true,
		}
		if i%2 == 1 {
			opts.CorruptProb = 0.5
		}
		tr := workload.Random(adt.Universal{}, r, opts)
		direct, err := lin.Check(context.Background(), adt.Universal{}, tr)
		if err != nil {
			t.Fatal(err)
		}
		viaSLin, err := CheckLin(context.Background(), adt.Universal{}, tr)
		if err != nil {
			t.Fatal(err)
		}
		if direct.OK != viaSLin.OK {
			t.Fatalf("CheckLin disagrees with lin.Check: %v vs %v on %v",
				viaSLin.OK, direct.OK, tr)
		}
	}
}
