package slin

import (
	"fmt"

	"repro/internal/adt"
	"repro/internal/trace"
)

// VerifyWitness checks a Witness against Definitions 17–32 directly,
// independently of the search that produced it. temporal selects the
// weakened Abort-Order of Options.TemporalAbortOrder; witnesses produced
// under one semantics must be verified under the same one.
//
// Tests use this to validate the checker: every positive verdict's
// witnesses must verify, making the searcher and the definitions check
// each other.
func VerifyWitness(f adt.Folder, rinit RInit, m, n int, t trace.Trace, w Witness, temporal bool) error {
	if !t.PhaseWellFormed(m, n) {
		return fmt.Errorf("slin: witness for ill-formed trace")
	}

	// Definitions 17–18: interpretations respect r_init.
	for i, a := range t {
		switch {
		case a.IsInit(m) && m != 1:
			h, ok := w.Init[i]
			if !ok {
				return fmt.Errorf("slin: no init interpretation for index %d", i)
			}
			if !rinit.Admits(a.SwitchValue, h) {
				return fmt.Errorf("slin: init history %v not admitted for value %q", h, a.SwitchValue)
			}
		case a.IsAbort(n):
			h, ok := w.Aborts[i]
			if !ok {
				return fmt.Errorf("slin: no abort interpretation for index %d", i)
			}
			if !rinit.Admits(a.SwitchValue, h) {
				return fmt.Errorf("slin: abort history %v not admitted for value %q", h, a.SwitchValue)
			}
		}
	}

	// vi(m, t, finit, i) per Definitions 25–26.
	vi := make([]trace.Multiset, len(t)+1)
	ivi, invoked := trace.Multiset{}, trace.Multiset{}
	vi[0] = ivi.Sum(invoked)
	for i, a := range t {
		switch {
		case a.Kind == trace.Inv:
			invoked = invoked.Clone()
			invoked.Add(a.Input, 1)
		case a.IsInit(m) && m != 1:
			ivi = ivi.Union(w.Init[i].Elems().Union(trace.NewMultiset(a.Input)))
		}
		vi[i+1] = ivi.Sum(invoked)
	}

	// Explains (Definition 21) and Validity for commits (Definition 27).
	var commits []int
	for i, a := range t {
		if a.Kind != trace.Res {
			continue
		}
		commits = append(commits, i)
		g, ok := w.Commits[i]
		if !ok {
			return fmt.Errorf("slin: no commit history for response index %d", i)
		}
		out, err := f.Apply(g)
		if err != nil {
			return err
		}
		if out != a.Output {
			return fmt.Errorf("slin: index %d: %v explains %q, trace has %q", i, g, out, a.Output)
		}
		if len(g) == 0 || g.Last() != a.Input {
			return fmt.Errorf("slin: index %d: commit history does not end with %q", i, a.Input)
		}
		if !g.Elems().SubsetOf(vi[i]) {
			return fmt.Errorf("slin: index %d: commit history %v exceeds valid inputs", i, g)
		}
	}

	// Validity for aborts (Definition 28).
	var aborts []int
	for i, a := range t {
		if !a.IsAbort(n) {
			continue
		}
		aborts = append(aborts, i)
		h := w.Aborts[i]
		if !h.Elems().Union(trace.NewMultiset(a.Input)).SubsetOf(vi[i]) {
			return fmt.Errorf("slin: index %d: abort history %v ∪ {%s} exceeds valid inputs", i, h, a.Input)
		}
	}

	// Commit-Order (Definition 30).
	for x := 0; x < len(commits); x++ {
		for y := x + 1; y < len(commits); y++ {
			gi, gj := w.Commits[commits[x]], w.Commits[commits[y]]
			if !gi.IsStrictPrefixOf(gj) && !gj.IsStrictPrefixOf(gi) {
				return fmt.Errorf("slin: commit histories %v and %v not strict-prefix ordered", gi, gj)
			}
		}
	}

	// Init-Order (Definition 31); skipped for m == 1 (note after Def. 32).
	if m != 1 {
		var inits []trace.History
		for _, h := range w.Init {
			inits = append(inits, h)
		}
		L := trace.LCP(inits)
		for _, i := range commits {
			if !L.IsStrictPrefixOf(w.Commits[i]) {
				return fmt.Errorf("slin: init LCP %v not a strict prefix of commit %v", L, w.Commits[i])
			}
		}
		for _, i := range aborts {
			if !L.IsStrictPrefixOf(w.Aborts[i]) {
				return fmt.Errorf("slin: init LCP %v not a strict prefix of abort %v", L, w.Aborts[i])
			}
		}
	}

	// Abort-Order (Definition 32), literal or temporal.
	for _, ai := range aborts {
		for _, ci := range commits {
			if temporal && ci > ai {
				continue
			}
			if !w.Commits[ci].IsPrefixOf(w.Aborts[ai]) {
				return fmt.Errorf("slin: commit %v not a prefix of abort %v", w.Commits[ci], w.Aborts[ai])
			}
		}
	}
	return nil
}
