package slin

import (
	"context"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
)

// CheckAll decides SLin_T(m,n) for each trace independently, sharding the
// batch across a worker pool of check.WithWorkers goroutines (GOMAXPROCS
// when unset). Results are in trace order; each check gets its own budget
// of check.WithBudget nodes shared across its interpretation
// combinations. The first error (or a cancellation of ctx) stops the
// batch and is returned with partial results. Inside a batch every
// per-trace search runs the sequential depth-first engine; use a
// single-trace Check with WithWorkers(n > 1) for intra-trace parallelism.
//
// Folder and RInit implementations must be safe for concurrent use; every
// implementation in packages adt and slin is stateless and qualifies.
func CheckAll(ctx context.Context, f adt.Folder, rinit RInit, m, n int, ts []trace.Trace, opts ...check.Option) ([]Result, error) {
	set := check.NewSettings(opts...)
	perTrace := set
	perTrace.Workers = 1
	return check.Parallel(ctx, ts, set.Workers, func(_ int, t trace.Trace) (Result, error) {
		return checkSettings(ctx, f, rinit, m, n, t, perTrace)
	})
}
