package slin

import (
	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
)

// CheckAll decides SLin_T(m,n) for each trace independently, sharding the
// batch across a worker pool of Options.Workers goroutines (GOMAXPROCS
// when zero). Results are in trace order; each check gets its own budget
// of Options.Budget nodes shared across its interpretation combinations.
// The first error stops the batch and is returned with partial results.
//
// Folder and RInit implementations must be safe for concurrent use; every
// implementation in packages adt and slin is stateless and qualifies.
func CheckAll(f adt.Folder, rinit RInit, m, n int, ts []trace.Trace, opts Options) ([]Result, error) {
	return check.Parallel(ts, opts.Workers, func(_ int, t trace.Trace) (Result, error) {
		return Check(f, rinit, m, n, t, opts)
	})
}
