//go:build memocheck

package slin

import (
	"strconv"
	"strings"
	"sync/atomic"
)

// The memocheck build: the slin memo table stores the full string
// encoding of the chain alongside each (index, digest) key and counts
// digest collisions (expected zero; DESIGN.md decision 7 risk).
const memocheckEnabled = true

var memoCollisions atomic.Uint64

// MemoCollisions reports digest collisions observed in the memo tables
// since process start.
func MemoCollisions() uint64 { return memoCollisions.Load() }

// memoAudit shadows one searcher's failed-set with full string keys.
type memoAudit struct {
	keys map[slinKey]string
}

// memoString is the exact state the slin memo digest stands for: the
// action index plus the chain's (value, used) sequence (availability at
// an index is derived from vi and the chain, so the chain determines
// the rest).
func (s *searcher) memoString(i int) string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(i))
	b.WriteByte('|')
	for p, v := range s.chain.hist {
		b.WriteString(string(v))
		if s.chain.used[p] {
			b.WriteByte('*')
		}
		b.WriteByte(0)
	}
	return b.String()
}

func (s *searcher) auditInsert(k slinKey) {
	if s.audit.keys == nil {
		s.audit.keys = map[slinKey]string{}
	}
	full := s.memoString(int(k.i))
	if prev, ok := s.audit.keys[k]; ok && prev != full {
		memoCollisions.Add(1)
		return
	}
	s.audit.keys[k] = full
}

func (s *searcher) auditHit(k slinKey) {
	if prev, ok := s.audit.keys[k]; ok && prev != s.memoString(int(k.i)) {
		memoCollisions.Add(1)
	}
}
