//go:build memocheck

package slin

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestMemoDigestCollisionsZero is the slin counterpart of the lin
// collision audit: a broad sweep of first-phase traces (both Abort-Order
// readings) plus a contended exhaustive search, asserting zero 128-bit
// digest collisions in the memo table.
//
// Run with: go test -tags memocheck ./internal/slin
func TestMemoDigestCollisionsZero(t *testing.T) {
	r := rand.New(rand.NewSource(4321))
	checks := 0
	for i := 0; i < 400; i++ {
		tr := workload.FirstPhase(r, workload.PhaseOpts{
			Clients:     3,
			NoLateOps:   i%2 == 0,
			ViolateProb: 0.2,
		})
		for _, temporal := range []bool{false, true} {
			if _, err := Check(context.Background(), adt.Consensus{}, ConsensusRInit{}, 1, 2, tr,
				check.WithTemporalAbortOrder(temporal)); err != nil {
				t.Fatalf("trace %d temporal=%v: %v", i, temporal, err)
			}
			checks++
		}
	}
	// Contended never-SLin trace: exhausts the extension space.
	var hard trace.Trace
	const n = 5
	for i := 0; i < n; i++ {
		c := trace.ClientID(fmt.Sprintf("q%d", i))
		hard = append(hard, trace.Invoke(c, 1, adt.Tag(adt.ProposeInput(fmt.Sprintf("v%d", i)), string(c))))
	}
	for i := 0; i < n; i++ {
		c := trace.ClientID(fmt.Sprintf("q%d", i))
		in := adt.Tag(adt.ProposeInput(fmt.Sprintf("v%d", i)), string(c))
		if i < 2 {
			hard = append(hard, trace.Response(c, 1, in, adt.DecideOutput(fmt.Sprintf("v%d", i))))
		} else {
			hard = append(hard, trace.Switch(c, 2, in, fmt.Sprintf("v%d", i)))
		}
	}
	res, err := Check(context.Background(), adt.Consensus{}, ConsensusRInit{}, 1, 2, hard, check.WithBudget(50_000_000))
	if err != nil {
		t.Fatal(err)
	}
	if res.OK {
		t.Fatal("split-decision trace checked SLin")
	}
	checks++

	if c := MemoCollisions(); c != 0 {
		t.Fatalf("%d memo digest collisions across %d checks (expected zero)", c, checks)
	}
	t.Logf("0 collisions across %d checks", checks)
}
