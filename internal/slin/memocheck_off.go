//go:build !memocheck

package slin

// memocheckEnabled gates the digest-collision audit of the slin memo
// table; see internal/lin/memocheck_off.go for the scheme. The default
// build compiles the audit away.
const memocheckEnabled = false

// memoAudit is the no-op audit table of the default build.
type memoAudit struct{}

func (s *searcher) auditInsert(slinKey) {}
func (s *searcher) auditHit(slinKey)    {}

// MemoCollisions reports digest collisions observed in the memo tables;
// always zero without the memocheck build tag.
func MemoCollisions() uint64 { return 0 }
