package slin

import (
	"context"
	"strconv"
	"strings"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
)

// CheckReference decides SLin_T(m,n) using the original string-keyed,
// chain-copying search. It is retained as a slow executable specification
// for the optimized Check (incremental digests, in-place mutation with
// undo); the equivalence property tests assert the two return identical
// verdicts on randomized phase traces. Budget accounting matches Check:
// one budget shared across all init-interpretation combinations,
// decremented once per recursive search step. Being a specification it
// takes no context and ignores the workers and memo-limit options.
func CheckReference(f adt.Folder, rinit RInit, m, n int, t trace.Trace, opts ...check.Option) (Result, error) {
	return checkWith(context.Background(), f, rinit, m, n, t, check.NewSettings(opts...), refExistsWitness)
}

// refExistsWitness is the reference implementation of the existential part
// of Definition 19 for a fixed init interpretation; see existsWitness for
// the shared search structure.
func refExistsWitness(f adt.Folder, rinit RInit, m, n int, t trace.Trace, finit map[int]trace.History, set check.Settings, sp *spender) (bool, Witness, error) {
	s := &refSearcher{
		f:         f,
		rinit:     rinit,
		m:         m,
		n:         n,
		t:         t,
		sp:        sp,
		temporal:  set.TemporalAbortOrder,
		failed:    map[string]bool{},
		commitLen: map[int]int{},
		abortHist: map[int]trace.History{},
	}

	// L: longest common prefix of all init histories (Definition 31). The
	// note after Definition 32: for m == 1 there are no init histories and
	// Init-Order does not constrain the trace.
	var initHists []trace.History
	for _, h := range finit {
		initHists = append(initHists, h)
	}
	s.initOrder = m != 1
	if s.initOrder {
		s.L = trace.LCP(initHists)
	}

	// Precompute the valid-inputs components per index (Definitions 25–26):
	// ivi[i] is the max-union of init contributions before i, invoked[i]
	// the multiset of inputs invoked before i.
	s.ivi = make([]trace.Multiset, len(t)+1)
	s.invoked = make([]trace.Multiset, len(t)+1)
	ivi, invoked := trace.Multiset{}, trace.Multiset{}
	s.ivi[0], s.invoked[0] = ivi, invoked
	for i, a := range t {
		switch {
		case a.Kind == trace.Inv:
			invoked = invoked.Clone()
			invoked.Add(a.Input, 1)
		case a.IsInit(m) && m != 1:
			contrib := finit[i].Elems().Union(trace.NewMultiset(a.Input))
			ivi = ivi.Union(contrib)
		}
		s.ivi[i+1], s.invoked[i+1] = ivi, invoked
	}

	// Abort obligations, in trace order.
	for i, a := range t {
		if a.IsAbort(n) {
			s.obligations = append(s.obligations, obligation{idx: i, input: a.Input, value: a.SwitchValue})
		}
	}

	ok, err := s.run(0, s.newChain())
	if err != nil || !ok {
		return ok, Witness{}, err
	}
	w := Witness{
		Init:    map[int]trace.History{},
		Commits: map[int]trace.History{},
		Aborts:  map[int]trace.History{},
	}
	for i, h := range finit {
		w.Init[i] = h.Clone()
	}
	for i, k := range s.commitLen {
		w.Commits[i] = s.finalChain.hist[:k].Clone()
	}
	for i, h := range s.abortHist {
		w.Aborts[i] = h.Clone()
	}
	return true, w, nil
}

type refSearcher struct {
	f           adt.Folder
	rinit       RInit
	m, n        int
	t           trace.Trace
	sp          *spender
	temporal    bool
	failed      map[string]bool
	initOrder   bool
	L           trace.History
	ivi         []trace.Multiset
	invoked     []trace.Multiset
	obligations []obligation

	// Witness assembly (filled on the successful search path).
	commitLen  map[int]int
	abortHist  map[int]trace.History
	finalChain refSChain
}

// vi returns vi(m, t, finit, i) (Definition 26).
func (s *refSearcher) vi(i int) trace.Multiset {
	return s.ivi[i].Sum(s.invoked[i])
}

// refSChain is the copying commit-history chain anchored at L; see the
// optimized schain in search.go for the shared invariants.
type refSChain struct {
	f      adt.Folder
	base   int
	hist   trace.History
	states []adt.State // states[k] folds hist[:k]; len == len(hist)+1
	outs   []trace.Value
	used   []bool
	nused  int
}

func (s *refSearcher) newChain() refSChain {
	c := refSChain{f: s.f, base: len(s.L)}
	c.states = make([]adt.State, 1, len(s.L)+1)
	c.states[0] = s.f.Empty()
	for _, in := range s.L {
		st := c.states[len(c.states)-1]
		c.hist = append(c.hist, in)
		c.outs = append(c.outs, s.f.Out(st, in))
		c.states = append(c.states, s.f.Step(st, in))
		c.used = append(c.used, false)
	}
	return c
}

func (c refSChain) state() adt.State { return c.states[len(c.states)-1] }

func (c refSChain) extend(in trace.Value) refSChain {
	st := c.state()
	n := refSChain{f: c.f, base: c.base, nused: c.nused}
	n.hist = c.hist.Append(in)
	n.states = append(append(make([]adt.State, 0, len(c.states)+1), c.states...), c.f.Step(st, in))
	n.outs = append(append(make([]trace.Value, 0, len(c.outs)+1), c.outs...), c.f.Out(st, in))
	n.used = append(append(make([]bool, 0, len(c.used)+1), c.used...), false)
	return n
}

func (c refSChain) markUsed(k int) refSChain {
	n := c
	n.used = append(make([]bool, 0, len(c.used)), c.used...)
	n.used[k-1] = true
	n.nused++
	return n
}

func (c refSChain) key() string {
	var b strings.Builder
	for i, v := range c.hist {
		b.WriteString(v)
		if c.used[i] {
			b.WriteByte('*')
		}
		b.WriteByte('\x00')
	}
	return b.String()
}

// run processes the trace from action index i.
func (s *refSearcher) run(i int, c refSChain) (bool, error) {
	if err := s.sp.spend(); err != nil {
		return false, err
	}
	if i == len(s.t) {
		if s.temporal {
			s.finalChain = c
			return true, nil // obligations were discharged inline
		}
		ok, err := s.dischargeObligations(c)
		if ok {
			s.finalChain = c
		}
		return ok, err
	}
	key := strconv.Itoa(i) + "|" + c.key()
	if s.failed[key] {
		return false, nil
	}
	a := s.t[i]
	var ok bool
	var err error
	switch {
	case a.Kind == trace.Res:
		ok, err = s.commit(i, c, a)
	case a.IsAbort(s.n) && s.temporal:
		// Temporal Abort-Order: the abort history must cover only commits
		// made so far, so its interpretation can be chosen immediately.
		ok, err = s.dischargeAt(obligation{idx: i, input: a.Input, value: a.SwitchValue}, c)
		if err == nil && ok {
			ok, err = s.run(i+1, c)
		}
	default:
		// Invocations and switch actions carry no search choice: their
		// effects (invoked inputs, ivi contributions, abort obligations)
		// are precomputed per index.
		ok, err = s.run(i+1, c)
	}
	if err != nil {
		return false, err
	}
	if !ok {
		s.failed[key] = true
	}
	return ok, nil
}

// commit handles a response action at index i.
func (s *refSearcher) commit(i int, c refSChain, a trace.Action) (bool, error) {
	// Claim an unused prefix length strictly beyond the L anchor. Elements
	// of the chain were validated against vi at the index that appended
	// them; vi is monotone, so Validity holds at i automatically.
	for k := c.base + 1; k <= len(c.hist); k++ {
		if c.used[k-1] || c.hist[k-1] != a.Input || c.outs[k-1] != a.Output {
			continue
		}
		ok, err := s.run(i+1, c.markUsed(k))
		if ok {
			s.commitLen[i] = k
		}
		if err != nil || ok {
			return ok, err
		}
	}
	// Extend the chain. The whole extended history must satisfy Validity
	// at i: elems(hist) ⊆ vi(i). The chain prefix may fail this when L
	// contains inputs whose init actions occur after i.
	vi := s.vi(i)
	if !c.hist.Elems().SubsetOf(vi) {
		return false, nil
	}
	avail := vi.Clone()
	for _, in := range c.hist {
		avail.Add(in, -1)
	}
	return s.extendAndCommit(i, c, avail, a, map[string]bool{})
}

// extendAndCommit explores chain extensions whose last element is the
// response's input. Intermediate appended elements create new unclaimed
// prefix lengths that later commits may claim.
func (s *refSearcher) extendAndCommit(i int, c refSChain, avail trace.Multiset, a trace.Action, visited map[string]bool) (bool, error) {
	if err := s.sp.spend(); err != nil {
		return false, err
	}
	vkey := c.key() + "|" + avail.Key()
	if visited[vkey] {
		return false, nil
	}
	visited[vkey] = true

	// Close the extension with the response's own input.
	if avail.Count(a.Input) > 0 && s.f.Out(c.state(), a.Input) == a.Output {
		nc := c.extend(a.Input)
		nc = nc.markUsed(len(nc.hist))
		if s.commitCompatibleWithAborts(i, nc) {
			ok, err := s.run(i+1, nc)
			if ok {
				s.commitLen[i] = len(nc.hist)
			}
			if err != nil || ok {
				return ok, err
			}
		}
	}
	// Append some other available input as an intermediate element.
	for in, cnt := range avail {
		if cnt <= 0 {
			continue
		}
		na := avail.Clone()
		na.Add(in, -1)
		ok, err := s.extendAndCommit(i, c.extend(in), na, a, visited)
		if err != nil || ok {
			return ok, err
		}
	}
	return false, nil
}

// commitCompatibleWithAborts prunes commits that no abort interpretation
// could cover; see the optimized searcher for the rationale.
func (s *refSearcher) commitCompatibleWithAborts(i int, c refSChain) bool {
	if s.temporal {
		return true
	}
	elems := c.hist.Elems()
	for _, ob := range s.obligations {
		if ob.idx >= i {
			break
		}
		if !elems.SubsetOf(s.vi(ob.idx)) {
			return false
		}
	}
	return true
}

// dischargeObligations chooses an abort history for every abort action
// (the existential f_abort of Definition 19); see the optimized searcher
// for the conditions.
func (s *refSearcher) dischargeObligations(c refSChain) (bool, error) {
	for _, ob := range s.obligations {
		ok, err := s.dischargeAt(ob, c)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// dischargeAt finds an interpretation for a single abort obligation given
// the chain covering the commits it must extend.
func (s *refSearcher) dischargeAt(ob obligation, c refSChain) (bool, error) {
	vi := s.vi(ob.idx)
	if vi.Count(ob.input) < 1 {
		return false, nil
	}
	base := c.hist
	if c.nused == 0 {
		// No commits: abort histories need only extend L strictly
		// (when Init-Order applies); the chain is exactly L.
		base = s.L
	}
	if !base.Elems().SubsetOf(vi) {
		return false, nil
	}
	budget := vi.Clone()
	for _, in := range base {
		budget.Add(in, -1)
	}
	needStrict := s.initOrder && c.nused == 0
	h, ok, err := s.findAbortHistory(ob, base, budget, needStrict, map[string]bool{})
	if ok {
		s.abortHist[ob.idx] = h
	}
	return ok, err
}

// findAbortHistory searches extensions of base admitted by r_init(v),
// returning the first admitted history found.
func (s *refSearcher) findAbortHistory(ob obligation, h trace.History, budget trace.Multiset, needStrict bool, visited map[string]bool) (trace.History, bool, error) {
	if err := s.sp.spend(); err != nil {
		return nil, false, err
	}
	key := historyKey(h)
	if visited[key] {
		return nil, false, nil
	}
	visited[key] = true
	if !needStrict && s.rinit.Admits(ob.value, h) {
		return h, true, nil
	}
	for in, cnt := range budget {
		if cnt <= 0 {
			continue
		}
		nb := budget.Clone()
		nb.Add(in, -1)
		found, ok, err := s.findAbortHistory(ob, h.Append(in), nb, false, visited)
		if err != nil || ok {
			return found, ok, err
		}
	}
	return nil, false, nil
}
