// Package slin decides speculative linearizability of traces: the
// SLin_T(m,n) trace property of Section 5 of the paper.
//
// A trace in sig_T(m, n, Init) is (m,n)-speculatively linearizable
// (Definition 19) iff it is (m,n)-well-formed and, for every
// interpretation f_init of its init actions, there exist an interpretation
// f_abort of its abort actions and a speculative linearization function g
// such that g explains the trace and the Validity, Commit-Order,
// Init-Order and Abort-Order predicates hold (Definitions 20–32).
//
// The universal quantifier over interpretations is instantiated over a
// finite generating set of representatives supplied by the RInit relation
// (see DESIGN.md, substitution 4); the existential quantifier over abort
// interpretations searches the full relation through its membership
// predicate.
package slin

import (
	"strings"

	"repro/internal/adt"
	"repro/internal/trace"
)

// RInit is the relation r_init ⊆ Init × I_T* agreed on by all speculation
// phases of an object (§5.2). It associates each switch value with its set
// of possible interpretations: input histories representing possible
// linearizations of the aborting phase's execution.
type RInit interface {
	// Representatives returns a finite, non-empty generating set of the
	// interpretations of v, used to instantiate the universal quantifier
	// over init interpretations. Larger sets give stronger checks.
	Representatives(v trace.Value) []trace.History
	// Admits reports whether h ∈ r_init(v); it defines the search space
	// for the existential choice of abort interpretations.
	Admits(v trace.Value, h trace.History) bool
}

// OrderInsensitive is an optional declaration an RInit can make about
// its Admits predicate: membership is invariant under the reorderings
// the sleep-set partial-order reduction prunes — swapping adjacent
// history elements that are independent under the checked folder
// (identical composite state and outputs either way) never changes
// Admits. The checkers consult it through IsOrderInsensitive to keep
// the reduction enabled on abort-carrying traces, whose histories the
// relation would otherwise be free to distinguish by order; declaring
// it wrongly makes the reduced search unsound, so the differential
// harness cross-checks reduced against unreduced verdicts on every
// abort-carrying trace shape.
type OrderInsensitive interface {
	// AdmitsOrderInsensitive reports that Admits never distinguishes
	// independence-equivalent histories.
	AdmitsOrderInsensitive() bool
}

// IsOrderInsensitive reports whether r declares its Admits predicate
// order-insensitive (see OrderInsensitive); absent a declaration the
// checkers assume order sensitivity and disable the reduction around
// aborts.
func IsOrderInsensitive(r RInit) bool {
	oi, ok := r.(OrderInsensitive)
	return ok && oi.AdmitsOrderInsensitive()
}

// ConsensusRInit is the mapping used by the paper's consensus case studies
// (§2.4): a switch value v is interpreted by the histories that start with
// the proposal p(v) and contain only proposals.
//
// The paper's flavour text additionally excludes the switching client's
// own invocations from the interpretations; histories in this codebase are
// attribution-free input sequences, so the relation here is the value-level
// projection of the paper's (the composition theorem is parametric in
// r_init, so any agreed-on relation is a valid instantiation).
type ConsensusRInit struct {
	// Probe, when true, adds a second representative [p(v), p(probe)]
	// with a synthetic probe proposal to each value's generating set,
	// exercising interpretations longer than the minimal one.
	Probe bool
}

var _ RInit = ConsensusRInit{}

// ProbeValue is the synthetic proposal value used by Probe representatives.
const ProbeValue = "«probe»"

// InitTag is the occurrence tag carried by proposals inside representative
// interpretations, distinguishing them from the trace's own invocations
// (the paper's interpretations contain invocations "from other clients").
const InitTag = "init"

// Representatives implements RInit.
func (r ConsensusRInit) Representatives(v trace.Value) []trace.History {
	min := trace.History{adt.Tag(adt.ProposeInput(v), InitTag)}
	if !r.Probe {
		return []trace.History{min}
	}
	return []trace.History{min, min.Append(adt.Tag(adt.ProposeInput(ProbeValue), InitTag))}
}

// AdmitsOrderInsensitive implements OrderInsensitive: Admits examines
// only the untagged first element and the all-proposals property. The
// latter is permutation-invariant outright; the former survives every
// reduction-pruned swap because two proposals are independent at the
// undecided consensus state only when their untagged values coincide
// (distinct values decide distinct outputs), so a pruned swap at the
// head never changes the untagged head.
func (ConsensusRInit) AdmitsOrderInsensitive() bool { return true }

// Admits implements RInit: h starts with a proposal of v (any occurrence
// tag) and contains only proposals.
func (ConsensusRInit) Admits(v trace.Value, h trace.History) bool {
	if len(h) == 0 || adt.Untag(h[0]) != adt.ProposeInput(v) {
		return false
	}
	for _, in := range h {
		if _, ok := adt.ProposalOf(adt.Untag(in)); !ok {
			return false
		}
	}
	return true
}

// UniversalRInit is the relation of §6: switch values are encoded
// histories and r_init maps a history h to the singleton set {h}.
type UniversalRInit struct{}

var _ RInit = UniversalRInit{}

// EncodeHistory encodes a history as a switch value for UniversalRInit.
func EncodeHistory(h trace.History) trace.Value { return adt.HistoryOutput(h) }

// DecodeHistory decodes a switch value produced by EncodeHistory.
func DecodeHistory(v trace.Value) (trace.History, bool) { return adt.OutputHistory(v) }

// Representatives implements RInit.
func (UniversalRInit) Representatives(v trace.Value) []trace.History {
	h, ok := DecodeHistory(v)
	if !ok {
		return nil
	}
	return []trace.History{h}
}

// Admits implements RInit.
func (UniversalRInit) Admits(v trace.Value, h trace.History) bool {
	want, ok := DecodeHistory(v)
	return ok && want.Equal(h)
}

// PrefixRInit interprets a switch value encoding a history h as the set of
// all histories extending h. It exercises non-singleton infinite
// interpretation sets in tests.
type PrefixRInit struct{}

var _ RInit = PrefixRInit{}

// Representatives implements RInit: the minimal interpretation {h}.
func (PrefixRInit) Representatives(v trace.Value) []trace.History {
	h, ok := DecodeHistory(v)
	if !ok {
		return nil
	}
	return []trace.History{h}
}

// Admits implements RInit.
func (PrefixRInit) Admits(v trace.Value, h trace.History) bool {
	base, ok := DecodeHistory(v)
	return ok && base.IsPrefixOf(h)
}

// historyKey canonically encodes a history for use in memoization keys.
func historyKey(h trace.History) string {
	var b strings.Builder
	for _, v := range h {
		b.WriteString(v)
		b.WriteByte('\x00')
	}
	return b.String()
}
