package slin

import (
	"context"
	"testing"

	"repro/internal/adt"
	"repro/internal/trace"
)

func TestConsensusRInitAdmits(t *testing.T) {
	r := ConsensusRInit{}
	tests := []struct {
		v    trace.Value
		h    trace.History
		want bool
	}{
		{"a", trace.History{adt.ProposeInput("a")}, true},
		{"a", trace.History{adt.Tag(adt.ProposeInput("a"), "c9")}, true},
		{"a", trace.History{adt.ProposeInput("a"), adt.ProposeInput("b")}, true},
		{"a", trace.History{adt.ProposeInput("b")}, false},
		{"a", trace.History{}, false},
		{"a", trace.History{adt.ProposeInput("a"), "not-a-proposal"}, false},
	}
	for _, tt := range tests {
		if got := r.Admits(tt.v, tt.h); got != tt.want {
			t.Errorf("Admits(%q, %v) = %v, want %v", tt.v, tt.h, got, tt.want)
		}
	}
}

func TestConsensusRInitRepresentatives(t *testing.T) {
	plain := ConsensusRInit{}
	reps := plain.Representatives("v")
	if len(reps) != 1 {
		t.Fatalf("reps = %v", reps)
	}
	if !plain.Admits("v", reps[0]) {
		t.Fatal("representative not admitted by its own relation")
	}
	probe := ConsensusRInit{Probe: true}
	reps = probe.Representatives("v")
	if len(reps) != 2 {
		t.Fatalf("probe reps = %v", reps)
	}
	for _, h := range reps {
		if !probe.Admits("v", h) {
			t.Fatalf("probe representative %v not admitted", h)
		}
	}
}

func TestUniversalRInit(t *testing.T) {
	r := UniversalRInit{}
	h := trace.History{"a", "b"}
	v := EncodeHistory(h)
	reps := r.Representatives(v)
	if len(reps) != 1 || !reps[0].Equal(h) {
		t.Fatalf("reps = %v", reps)
	}
	if !r.Admits(v, h) {
		t.Fatal("exact history not admitted")
	}
	if r.Admits(v, h.Append("c")) {
		t.Fatal("extension admitted by singleton relation")
	}
	if r.Admits("not-encoded", h) {
		t.Fatal("garbage value admitted")
	}
	if got := r.Representatives("not-encoded"); got != nil {
		t.Fatalf("garbage value has representatives: %v", got)
	}
}

func TestPrefixRInit(t *testing.T) {
	r := PrefixRInit{}
	base := trace.History{"a"}
	v := EncodeHistory(base)
	if !r.Admits(v, base) {
		t.Fatal("base not admitted")
	}
	if !r.Admits(v, base.Append("b")) {
		t.Fatal("extension not admitted")
	}
	if r.Admits(v, trace.History{"b"}) {
		t.Fatal("non-extension admitted")
	}
	reps := r.Representatives(v)
	if len(reps) != 1 || !reps[0].Equal(base) {
		t.Fatalf("reps = %v", reps)
	}
}

// A second-phase check under PrefixRInit: the abort interpretation may
// extend the init history freely, so a middle phase that appends new
// operations before aborting is accepted — unlike under UniversalRInit,
// whose singleton interpretations cannot absorb the extension.
func TestPrefixRInitMiddlePhase(t *testing.T) {
	initH := trace.History{"x"}
	tr := trace.Trace{
		trace.Switch("c1", 2, "y", EncodeHistory(initH)),
		trace.Response("c1", 2, "y", adt.HistoryOutput(trace.History{"x", "y"})),
		trace.Switch("c2", 2, "z", EncodeHistory(initH)),
		trace.Switch("c2", 3, "z", EncodeHistory(trace.History{"x", "y"})),
	}
	res, err := Check(context.Background(), adt.Universal{}, PrefixRInit{}, 2, 3, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("prefix relation must accept the extended abort: %s", res.Reason)
	}
	for _, w := range res.Witnesses {
		if err := VerifyWitness(adt.Universal{}, PrefixRInit{}, 2, 3, tr, w, false); err != nil {
			t.Fatal(err)
		}
	}
	// Under the singleton relation the same abort value's interpretation
	// is exactly [x y]; the abort must still cover the commit [x y] — it
	// does — but c2's pending input z is not in the abort history, which
	// is allowed. Sanity: the singleton relation also accepts here.
	res, err = Check(context.Background(), adt.Universal{}, UniversalRInit{}, 2, 3, tr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("singleton relation should also accept: %s", res.Reason)
	}
}
