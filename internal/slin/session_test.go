package slin

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestSLinSessionAgreesWithCheck is the incremental SLin engine's
// property test: feeding randomized phase traces action by action must
// reproduce the one-shot Check verdict on every prefix, for first phases
// (m = 1), second phases (m = 2, init actions trigger combination
// rebuilds), both Abort-Order semantics, and clean as well as violating
// schedules.
func TestSLinSessionAgreesWithCheck(t *testing.T) {
	ctx := context.Background()
	run := func(t *testing.T, m, n int, gen func(r *rand.Rand, i int) trace.Trace) {
		r := rand.New(rand.NewSource(int64(m)*1000 + 7))
		for i := 0; i < 120; i++ {
			tr := gen(r, i)
			temporal := i%4 < 2
			opts := []check.Option{check.WithTemporalAbortOrder(temporal)}
			s, err := NewSession(ctx, adt.Consensus{}, ConsensusRInit{Probe: i%5 == 0}, m, n, opts...)
			if err != nil {
				t.Fatal(err)
			}
			for k, a := range tr {
				if err := s.Feed(a); err != nil {
					t.Fatalf("case %d feed %d: %v", i, k, err)
				}
				prefix := tr[:k+1]
				want, err := Check(ctx, adt.Consensus{}, ConsensusRInit{Probe: i%5 == 0}, m, n, prefix, opts...)
				if err != nil {
					t.Fatalf("case %d prefix %d one-shot: %v", i, k+1, err)
				}
				got, err := s.Result()
				if err != nil {
					t.Fatalf("case %d prefix %d session: %v", i, k+1, err)
				}
				if got.OK != want.OK {
					t.Fatalf("case %d prefix %d (m=%d n=%d temporal=%v): session %v, one-shot %v\nprefix: %v",
						i, k+1, m, n, temporal, got.OK, want.OK, prefix)
				}
			}
		}
	}
	t.Run("first-phase", func(t *testing.T) {
		run(t, 1, 2, func(r *rand.Rand, i int) trace.Trace {
			opts := workload.PhaseOpts{Clients: 2 + r.Intn(2), NoLateOps: i%2 == 0}
			if i%3 == 0 {
				opts.ViolateProb = 0.4
			}
			return workload.FirstPhase(r, opts)
		})
	})
	t.Run("second-phase", func(t *testing.T) {
		run(t, 2, 3, func(r *rand.Rand, i int) trace.Trace {
			opts := workload.PhaseOpts{Clients: 2 + r.Intn(2)}
			if i%3 == 0 {
				opts.ViolateProb = 0.4
			}
			return workload.SecondPhase(r, 2, opts)
		})
	})
}

// TestSLinWorkersAgree asserts the breadth engine (WithWorkers > 1)
// returns the depth-first verdicts on randomized phase traces.
func TestSLinWorkersAgree(t *testing.T) {
	ctx := context.Background()
	r := rand.New(rand.NewSource(83))
	for i := 0; i < 120; i++ {
		var tr trace.Trace
		m, n := 1, 2
		if i%2 == 0 {
			opts := workload.PhaseOpts{Clients: 2 + r.Intn(2)}
			if i%3 == 0 {
				opts.ViolateProb = 0.4
			}
			tr = workload.FirstPhase(r, opts)
		} else {
			m, n = 2, 3
			tr = workload.SecondPhase(r, 2, workload.PhaseOpts{Clients: 2 + r.Intn(2)})
		}
		temporal := i%4 < 2
		seq, err := Check(ctx, adt.Consensus{}, ConsensusRInit{}, m, n, tr,
			check.WithWorkers(1), check.WithTemporalAbortOrder(temporal))
		if err != nil {
			t.Fatalf("case %d sequential: %v", i, err)
		}
		par, err := Check(ctx, adt.Consensus{}, ConsensusRInit{}, m, n, tr,
			check.WithWorkers(4), check.WithTemporalAbortOrder(temporal))
		if err != nil {
			t.Fatalf("case %d parallel: %v", i, err)
		}
		if par.OK != seq.OK {
			t.Fatalf("case %d (m=%d n=%d temporal=%v): workers=4 %v, workers=1 %v\ntrace: %v",
				i, m, n, temporal, par.OK, seq.OK, tr)
		}
	}
}

// TestSLinSessionBudgetExhaustion asserts budget errors are terminal with
// verdict Unknown.
func TestSLinSessionBudgetExhaustion(t *testing.T) {
	s, err := NewSession(context.Background(), adt.Consensus{}, ConsensusRInit{}, 1, 2,
		check.WithBudget(1))
	if err != nil {
		t.Fatal(err)
	}
	var ferr error
	for _, a := range slinTestTrace() {
		if ferr = s.Feed(a); ferr != nil {
			break
		}
	}
	if ferr == nil {
		_, ferr = s.Result()
	}
	if !errors.Is(ferr, ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", ferr)
	}
	if v := s.Verdict(); v != check.Unknown {
		t.Fatalf("verdict = %v, want Unknown", v)
	}
}

// TestSLinSessionFeedBudget pins the per-feed budget semantics for the
// SLin engine (check.WithFeedBudget): a long sequential phase-1 stream
// of cheap increments survives a budget the same stream exhausts
// cumulatively, and exhaustion within one Feed stays terminal.
func TestSLinSessionFeedBudget(t *testing.T) {
	feed := func(s *Session, pairs int) error {
		for c := 0; c < pairs; c++ {
			cid := trace.ClientID(fmt.Sprintf("q%d", c))
			in := adt.Tag(adt.ProposeInput("a"), string(cid))
			if err := s.Feed(trace.Invoke(cid, 1, in)); err != nil {
				return err
			}
			if err := s.Feed(trace.Response(cid, 1, in, adt.DecideOutput("a"))); err != nil {
				return err
			}
		}
		return nil
	}
	const budget = 30
	cum, err := NewSession(context.Background(), adt.Consensus{}, ConsensusRInit{}, 1, 2,
		check.WithBudget(budget))
	if err != nil {
		t.Fatal(err)
	}
	if ferr := feed(cum, 64); !errors.Is(ferr, ErrBudget) {
		t.Fatalf("cumulative budget %d survived the stream: %v", budget, ferr)
	}
	per, err := NewSession(context.Background(), adt.Consensus{}, ConsensusRInit{}, 1, 2,
		check.WithBudget(budget), check.WithFeedBudget(true))
	if err != nil {
		t.Fatal(err)
	}
	if ferr := feed(per, 64); ferr != nil {
		t.Fatalf("per-feed budget %d exhausted on cheap increments: %v", budget, ferr)
	}
	if r, rerr := per.Result(); rerr != nil || !r.OK {
		t.Fatalf("per-feed session result = %+v, %v", r, rerr)
	}
	// Exhaustion within a single Feed is still terminal and sticky.
	wide, err := NewSession(context.Background(), adt.Consensus{}, ConsensusRInit{}, 1, 2,
		check.WithBudget(1), check.WithFeedBudget(true))
	if err != nil {
		t.Fatal(err)
	}
	var ferr error
	for c := 0; c < 6 && ferr == nil; c++ {
		cid := trace.ClientID(fmt.Sprintf("q%d", c))
		ferr = wide.Feed(trace.Invoke(cid, 1, adt.Tag(adt.ProposeInput(string(rune('a'+c))), string(cid))))
	}
	if ferr == nil {
		ferr = wide.Feed(trace.Response("q0", 1, adt.Tag(adt.ProposeInput("a"), "q0"), adt.DecideOutput("a")))
	}
	if !errors.Is(ferr, ErrBudget) {
		t.Fatalf("expensive feed under per-feed budget = %v, want ErrBudget", ferr)
	}
	if v := wide.Verdict(); v != check.Unknown {
		t.Fatalf("verdict = %v, want Unknown", v)
	}
	if serr := wide.Feed(trace.Invoke("q9", 1, adt.Tag(adt.ProposeInput("a"), "q9"))); !errors.Is(serr, ErrBudget) {
		t.Fatalf("per-feed budget error not sticky: %v", serr)
	}
}

// TestSLinSessionCancellation cancels mid-stream.
func TestSLinSessionCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s, err := NewSession(ctx, adt.Consensus{}, ConsensusRInit{}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := slinTestTrace()
	if err := s.Feed(tr[0]); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := s.Feed(tr[1]); !errors.Is(err, context.Canceled) {
		t.Fatalf("Feed after cancel = %v, want context.Canceled", err)
	}
	if v := s.Verdict(); v != check.Unknown {
		t.Fatalf("verdict = %v, want Unknown", v)
	}
}

// TestSLinSessionRejectsOutOfSig mirrors the one-shot signature
// validation: actions outside sig(m,n) are terminal errors.
func TestSLinSessionRejectsOutOfSig(t *testing.T) {
	s, err := NewSession(context.Background(), adt.Consensus{}, ConsensusRInit{}, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Feed(trace.Invoke("c1", 1, adt.ProposeInput("a"))); err == nil {
		t.Fatal("phase-1 invocation accepted by a (2,3) session")
	}
	if _, err := s.Result(); err == nil {
		t.Fatal("error not sticky")
	}
}

// TestSLinSessionInvalidRange mirrors the one-shot phase validation.
func TestSLinSessionInvalidRange(t *testing.T) {
	if _, err := NewSession(context.Background(), adt.Consensus{}, ConsensusRInit{}, 2, 2); err == nil {
		t.Fatal("invalid phase range accepted")
	}
}
