package slin

import (
	"context"
	"testing"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
)

func p(v string) trace.Value { return adt.ProposeInput(v) }
func d(v string) trace.Value { return adt.DecideOutput(v) }

func mustCheck(t *testing.T, rinit RInit, m, n int, tr trace.Trace, opts ...check.Option) Result {
	t.Helper()
	r, err := Check(context.Background(), adt.Consensus{}, rinit, m, n, tr, opts...)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	temporal := check.NewSettings(opts...).TemporalAbortOrder
	if r.OK {
		if len(r.Witnesses) == 0 {
			t.Fatal("positive verdict without witnesses")
		}
		for _, w := range r.Witnesses {
			if err := VerifyWitness(adt.Consensus{}, rinit, m, n, tr, w, temporal); err != nil {
				t.Fatalf("checker produced an invalid witness: %v\ntrace: %v\nwitness: %+v", err, tr, w)
			}
		}
	}
	return r
}

// A fault-free contention-free Quorum-style trace: one client decides its
// own value; a second client decides the same value.
func TestFirstPhaseAllDecide(t *testing.T) {
	tr := trace.Trace{
		trace.Invoke("c1", 1, p("v")),
		trace.Response("c1", 1, p("v"), d("v")),
		trace.Invoke("c2", 1, p("w")),
		trace.Response("c2", 1, p("w"), d("v")),
	}
	if r := mustCheck(t, ConsensusRInit{}, 1, 2, tr); !r.OK {
		t.Fatalf("all-decide trace must be SLin(1,2): %s", r.Reason)
	}
	if err := FirstPhaseInvariants(tr, 1, 2); err != nil {
		t.Fatal(err)
	}
}

// §2.4: a decision followed by a timeout switch carrying the decided value.
func TestFirstPhaseDecideThenSwitch(t *testing.T) {
	tr := trace.Trace{
		trace.Invoke("c1", 1, p("v")),
		trace.Response("c1", 1, p("v"), d("v")),
		trace.Invoke("c2", 1, p("w")),
		trace.Switch("c2", 2, p("w"), "v"),
	}
	if r := mustCheck(t, ConsensusRInit{}, 1, 2, tr); !r.OK {
		t.Fatalf("decide-then-switch trace must be SLin(1,2): %s", r.Reason)
	}
	if err := FirstPhaseInvariants(tr, 1, 2); err != nil {
		t.Fatal(err)
	}
}

// I1 violation: a switch carries a value different from the decision. The
// checker must reject it (the abort history cannot both start with the
// switch value and extend the commit history).
func TestFirstPhaseSwitchValueMismatch(t *testing.T) {
	tr := trace.Trace{
		trace.Invoke("c1", 1, p("v")),
		trace.Response("c1", 1, p("v"), d("v")),
		trace.Invoke("c2", 1, p("w")),
		trace.Switch("c2", 2, p("w"), "w"),
	}
	if r := mustCheck(t, ConsensusRInit{}, 1, 2, tr); r.OK {
		t.Fatal("switch value contradicting the decision must fail SLin")
	}
	if err := FirstPhaseInvariants(tr, 1, 2); err == nil {
		t.Fatal("I1 violation must be detected")
	}
}

// §2.4 contention: no client decides; both switch with their own proposals.
func TestFirstPhaseAllSwitch(t *testing.T) {
	tr := trace.Trace{
		trace.Invoke("c1", 1, p("a")),
		trace.Invoke("c2", 1, p("b")),
		trace.Switch("c1", 2, p("a"), "a"),
		trace.Switch("c2", 2, p("b"), "b"),
	}
	if r := mustCheck(t, ConsensusRInit{}, 1, 2, tr); !r.OK {
		t.Fatalf("all-switch contention trace must be SLin(1,2): %s", r.Reason)
	}
}

// A switch with a never-proposed value violates I3 and abort Validity.
func TestFirstPhaseSwitchUnproposedValue(t *testing.T) {
	tr := trace.Trace{
		trace.Invoke("c1", 1, p("a")),
		trace.Switch("c1", 2, p("a"), "z"),
	}
	if r := mustCheck(t, ConsensusRInit{}, 1, 2, tr); r.OK {
		t.Fatal("switching with an unproposed value must fail SLin")
	}
	if err := FirstPhaseInvariants(tr, 1, 2); err == nil {
		t.Fatal("I3 violation must be detected")
	}
}

// Second phase (Backup): clients switch in with a common value and decide it.
func TestSecondPhaseCommonValue(t *testing.T) {
	tr := trace.Trace{
		trace.Switch("c1", 2, p("x"), "v"),
		trace.Switch("c2", 2, p("y"), "v"),
		trace.Response("c1", 2, p("x"), d("v")),
		trace.Response("c2", 2, p("y"), d("v")),
	}
	if r := mustCheck(t, ConsensusRInit{}, 2, 3, tr); !r.OK {
		t.Fatalf("backup trace must be SLin(2,3): %s", r.Reason)
	}
	if err := SecondPhaseInvariants(tr, 2, 3); err != nil {
		t.Fatal(err)
	}
	// With probe representatives the check still passes (longer init
	// interpretations bring their own elements into ivi).
	if r := mustCheck(t, ConsensusRInit{Probe: true}, 2, 3, tr); !r.OK {
		t.Fatalf("backup trace must be SLin(2,3) under probe reps: %s", r.Reason)
	}
}

// Second phase with different switch values: the init LCP is empty and the
// phase may decide either submitted value.
func TestSecondPhaseMixedValues(t *testing.T) {
	for _, decide := range []string{"a", "b"} {
		tr := trace.Trace{
			trace.Switch("c1", 2, p("x"), "a"),
			trace.Switch("c2", 2, p("y"), "b"),
			trace.Response("c1", 2, p("x"), d(decide)),
			trace.Response("c2", 2, p("y"), d(decide)),
		}
		if r := mustCheck(t, ConsensusRInit{}, 2, 3, tr); !r.OK {
			t.Fatalf("backup deciding %q must be SLin(2,3): %s", decide, r.Reason)
		}
	}
}

// I4 violation: split decisions in the second phase.
func TestSecondPhaseSplitDecisions(t *testing.T) {
	tr := trace.Trace{
		trace.Switch("c1", 2, p("x"), "a"),
		trace.Switch("c2", 2, p("y"), "b"),
		trace.Response("c1", 2, p("x"), d("a")),
		trace.Response("c2", 2, p("y"), d("b")),
	}
	if r := mustCheck(t, ConsensusRInit{}, 2, 3, tr); r.OK {
		t.Fatal("split decisions must fail SLin(2,3)")
	}
	if err := SecondPhaseInvariants(tr, 2, 3); err == nil {
		t.Fatal("I4 violation must be detected")
	}
}

// I5 violation: deciding a value nobody switched in with.
func TestSecondPhaseUnsubmittedDecision(t *testing.T) {
	tr := trace.Trace{
		trace.Switch("c1", 2, p("x"), "a"),
		trace.Response("c1", 2, p("x"), d("z")),
	}
	if r := mustCheck(t, ConsensusRInit{}, 2, 3, tr); r.OK {
		t.Fatal("unsubmitted decision must fail SLin(2,3)")
	}
	if err := SecondPhaseInvariants(tr, 2, 3); err == nil {
		t.Fatal("I5 violation must be detected")
	}
}

// The §5.1 composition scenario with consensus values: both projections
// satisfy their phase properties and the composite satisfies SLin(1,3),
// with the interior switch ignored (Theorem 3 in the small).
func TestCompositionScenario(t *testing.T) {
	comp := trace.Trace{
		trace.Invoke("c1", 1, p("a")),
		trace.Response("c1", 1, p("a"), d("a")),
		trace.Invoke("c2", 1, p("b")),
		trace.Switch("c2", 2, p("b"), "a"),
		trace.Response("c2", 2, p("b"), d("a")),
	}
	first := comp.ProjectSig(1, 2)
	second := comp.ProjectSig(2, 3)
	if r := mustCheck(t, ConsensusRInit{}, 1, 2, first); !r.OK {
		t.Fatalf("first projection must be SLin(1,2): %s", r.Reason)
	}
	if r := mustCheck(t, ConsensusRInit{}, 2, 3, second); !r.OK {
		t.Fatalf("second projection must be SLin(2,3): %s", r.Reason)
	}
	if r := mustCheck(t, ConsensusRInit{}, 1, 3, comp); !r.OK {
		t.Fatalf("composite must be SLin(1,3): %s", r.Reason)
	}
}

// The literal-vs-temporal Abort-Order divergence (see Options): a client
// decides after another client switched, with the decider's proposal
// invoked after the switch. The paper's Quorum produces such traces and
// its §2.4 argument accepts them, but the literal Definitions 28+32 reject
// them (the abort history would need inputs not yet valid at the abort).
func TestAbortOrderDivergence(t *testing.T) {
	tr := trace.Trace{
		trace.Invoke("c1", 1, p("a")),
		trace.Switch("c1", 2, p("a"), "a"),
		trace.Invoke("c2", 1, p("b")),
		trace.Response("c2", 1, p("b"), d("a")),
	}
	if r := mustCheck(t, ConsensusRInit{}, 1, 2, tr); r.OK {
		t.Fatal("literal Abort-Order must reject post-switch commits over fresh inputs")
	}
	if r := mustCheck(t, ConsensusRInit{}, 1, 2, tr, check.WithTemporalAbortOrder(true)); !r.OK {
		t.Fatalf("temporal Abort-Order must accept the Quorum-style trace: %s", r.Reason)
	}
	// The paper's invariants hold on the trace either way.
	if err := FirstPhaseInvariants(tr, 1, 2); err != nil {
		t.Fatal(err)
	}
}

// Well-formedness gates the property.
func TestIllFormedRejected(t *testing.T) {
	tr := trace.Trace{
		trace.Switch("c1", 2, p("a"), "a"), // abort without a pending op
	}
	if r := mustCheck(t, ConsensusRInit{}, 1, 2, tr); r.OK {
		t.Fatal("ill-formed trace accepted")
	}
	// Init action in a phase with m == 1 is also ill-formed.
	tr = trace.Trace{trace.Switch("c1", 1, p("a"), "a")}
	if _, err := Check(context.Background(), adt.Consensus{}, ConsensusRInit{}, 1, 2, tr); err != nil {
		t.Fatalf("signature validation should pass for swi phase 1: %v", err)
	}
	if r := mustCheck(t, ConsensusRInit{}, 1, 2, tr); r.OK {
		t.Fatal("init action with m == 1 must be ill-formed")
	}
}

func TestActionOutsideSignature(t *testing.T) {
	tr := trace.Trace{trace.Invoke("c1", 3, p("a"))}
	if _, err := Check(context.Background(), adt.Consensus{}, ConsensusRInit{}, 1, 2, tr); err == nil {
		t.Fatal("action outside sig(1,2) must error")
	}
	if _, err := Check(context.Background(), adt.Consensus{}, ConsensusRInit{}, 0, 2, trace.Trace{}); err == nil {
		t.Fatal("invalid phase range must error")
	}
}

// Theorem 2 in the small: on switch-free traces SLin(1,n) coincides with
// plain linearizability (package lin is cross-checked in the workload
// tests; here the degenerate cases).
func TestTheorem2SwitchFree(t *testing.T) {
	u := "u1"
	tr := trace.Trace{
		trace.Invoke("c1", 1, u),
		trace.Response("c1", 1, u, adt.HistoryOutput(trace.History{u})),
	}
	r, err := Check(context.Background(), adt.Universal{}, UniversalRInit{}, 1, 2, tr)
	if err != nil || !r.OK {
		t.Fatalf("switch-free universal trace must pass: %+v %v", r, err)
	}
	bad := trace.Trace{
		trace.Invoke("c1", 1, u),
		trace.Response("c1", 1, u, adt.HistoryOutput(trace.History{"phantom", u})),
	}
	r, err = Check(context.Background(), adt.Universal{}, UniversalRInit{}, 1, 2, bad)
	if err != nil || r.OK {
		t.Fatalf("phantom-input history must fail: %+v %v", r, err)
	}
}

// Universal-ADT second phase: a client switches in with an encoded history
// and the response must extend it (the §6 automaton's behavior).
func TestUniversalSecondPhase(t *testing.T) {
	initH := trace.History{"x"}
	tr := trace.Trace{
		trace.Switch("c1", 2, "y", EncodeHistory(initH)),
		trace.Response("c1", 2, "y", adt.HistoryOutput(trace.History{"x", "y"})),
	}
	r, err := Check(context.Background(), adt.Universal{}, UniversalRInit{}, 2, 3, tr)
	if err != nil || !r.OK {
		t.Fatalf("universal second phase must pass: %+v %v", r, err)
	}
	// Responding without the init prefix violates Init-Order.
	bad := trace.Trace{
		trace.Switch("c1", 2, "y", EncodeHistory(initH)),
		trace.Response("c1", 2, "y", adt.HistoryOutput(trace.History{"y"})),
	}
	r, err = Check(context.Background(), adt.Universal{}, UniversalRInit{}, 2, 3, bad)
	if err != nil || r.OK {
		t.Fatalf("dropping the init prefix must fail: %+v %v", r, err)
	}
}

// An abort in the second phase of a three-phase object: the phase both
// receives init actions (m=2) and emits abort actions (n=3).
func TestMiddlePhaseInitAndAbort(t *testing.T) {
	tr := trace.Trace{
		trace.Switch("c1", 2, p("x"), "v"), // init with value v
		trace.Switch("c1", 3, p("x"), "v"), // abort onward with v
	}
	if r := mustCheck(t, ConsensusRInit{}, 2, 3, tr); !r.OK {
		t.Fatalf("pass-through middle phase must be SLin(2,3): %s", r.Reason)
	}
	// Aborting with a different value than the only init value: the abort
	// history must start with w but extend L = [p(v)] strictly.
	bad := trace.Trace{
		trace.Switch("c1", 2, p("x"), "v"),
		trace.Switch("c1", 3, p("x"), "w"),
	}
	if r := mustCheck(t, ConsensusRInit{}, 2, 3, bad); r.OK {
		t.Fatal("abort value contradicting the init LCP must fail")
	}
}

func TestEmptyTrace(t *testing.T) {
	if r := mustCheck(t, ConsensusRInit{}, 1, 2, trace.Trace{}); !r.OK {
		t.Fatalf("empty trace must be SLin: %s", r.Reason)
	}
	if r := mustCheck(t, ConsensusRInit{}, 2, 3, trace.Trace{}); !r.OK {
		t.Fatalf("empty trace must be SLin(2,3): %s", r.Reason)
	}
}

func TestBudgetError(t *testing.T) {
	tr := trace.Trace{
		trace.Invoke("c1", 1, p("a")),
		trace.Response("c1", 1, p("a"), d("a")),
	}
	if _, err := Check(context.Background(), adt.Consensus{}, ConsensusRInit{}, 1, 2, tr, check.WithBudget(1)); err != ErrBudget {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
}

// Pending inputs transferred by init actions are available to commits: a
// client switches in and its pending input is consumed by its response.
func TestInitPendingInputAvailability(t *testing.T) {
	tr := trace.Trace{
		trace.Switch("c1", 2, p("w"), "v"),
		trace.Response("c1", 2, p("w"), d("v")),
	}
	if r := mustCheck(t, ConsensusRInit{}, 2, 3, tr); !r.OK {
		t.Fatalf("init pending input must be consumable: %s", r.Reason)
	}
}

// Max-union of init contributions (Definition 25): two clients switching
// in with the same pending input share ONE occurrence, so only one of them
// can be answered (a safety-only constraint mirroring the automaton's
// "not present in hist" guard). Both being answered requires two
// occurrences and must fail.
func TestIviMaxUnionCollapsesDuplicates(t *testing.T) {
	ok := trace.Trace{
		trace.Switch("c1", 2, p("w"), "v"),
		trace.Switch("c2", 2, p("w"), "v"),
		trace.Response("c1", 2, p("w"), d("v")),
	}
	if r := mustCheck(t, ConsensusRInit{}, 2, 3, ok); !r.OK {
		t.Fatalf("single response must pass: %s", r.Reason)
	}
	bad := ok.Clone()
	bad = append(bad, trace.Response("c2", 2, p("w"), d("v")))
	if r := mustCheck(t, ConsensusRInit{}, 2, 3, bad); r.OK {
		t.Fatal("duplicate pending inputs collapse under max-union; both responses must fail")
	}
}
