package slin

import (
	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
)

// existsWitness decides the existential part of Definition 19 for a fixed
// init interpretation: do an abort interpretation f_abort and a speculative
// linearization function g exist such that g explains t and Validity,
// Commit-Order, Init-Order and Abort-Order hold?
//
// The search models the commit histories as a single growing chain anchored
// at L, the longest common prefix of the init histories (Init-Order makes
// every commit history a strict extension of L, and Commit-Order totally
// orders commit histories by strict prefix). Each response either claims an
// unused prefix length of the chain or extends the chain, consuming
// available inputs. Abort interpretations are chosen at the end of the
// trace: an abort history must have every commit history as a prefix —
// including commits later in the trace than the abort — so the chain's
// final claimed maximum determines the candidates.
//
// This is the optimized implementation: inputs are interned to dense
// symbols, the chain and all multisets carry incrementally-maintained
// 128-bit digests, memoization keys are fixed-size structs, and the search
// mutates one chain in place with undo on backtrack (DESIGN.md, decision
// 7). CheckReference retains the original string-keyed search; property
// tests assert the two agree.
func existsWitness(f adt.Folder, rinit RInit, m, n int, t trace.Trace, finit map[int]trace.History, set check.Settings, sp *spender) (bool, Witness, error) {
	s := &searcher{
		f:         f,
		rinit:     rinit,
		m:         m,
		n:         n,
		t:         t,
		sp:        sp,
		temporal:  set.TemporalAbortOrder,
		memoLimit: set.MemoLimit,
		in:        trace.NewInterner(),
		failed:    make(map[slinKey]struct{}),
		commitLen: map[int]int{},
		abortHist: map[int]trace.History{},
	}

	// L: longest common prefix of all init histories (Definition 31). The
	// note after Definition 32: for m == 1 there are no init histories and
	// Init-Order does not constrain the trace.
	var initHists []trace.History
	for _, h := range finit {
		initHists = append(initHists, h)
	}
	s.initOrder = m != 1
	if s.initOrder {
		s.L = trace.LCP(initHists)
	}

	// Intern every value the search can touch: trace inputs, the L anchor
	// and init-history elements (vi contents are drawn from these).
	s.isyms = make([]trace.Sym, len(t))
	for i, a := range t {
		s.isyms[i] = s.in.Sym(a.Input)
	}
	for _, in := range s.L {
		s.in.Sym(in)
	}
	for _, h := range finit {
		for _, in := range h {
			s.in.Sym(in)
		}
	}

	// Precompute vi(m, t, finit, i) per index (Definitions 25–26): the
	// max-union of init contributions before i summed with the multiset of
	// inputs invoked before i. vi is monotone and changes only at Inv and
	// init actions, so consecutive indices share one snapshot.
	ivi, invoked := trace.Multiset{}, trace.Multiset{}
	s.vi = make([]*trace.SymMultiset, len(t)+1)
	cur := s.toSym(ivi.Sum(invoked))
	s.vi[0] = &cur
	for i, a := range t {
		changed := false
		switch {
		case a.Kind == trace.Inv:
			invoked.Add(a.Input, 1)
			changed = true
		case a.IsInit(m) && m != 1:
			contrib := finit[i].Elems().Union(trace.NewMultiset(a.Input))
			ivi = ivi.Union(contrib)
			changed = true
		}
		if changed {
			next := s.toSym(ivi.Sum(invoked))
			s.vi[i+1] = &next
		} else {
			s.vi[i+1] = s.vi[i]
		}
	}

	// Abort obligations, in trace order.
	for i, a := range t {
		if a.IsAbort(n) {
			s.obligations = append(s.obligations, obligation{
				idx: i, input: a.Input, sym: s.isyms[i], value: a.SwitchValue,
			})
		}
	}

	// Partial-order reduction (DESIGN.md, decision 12): abort histories
	// must extend the commit chain as a SEQUENCE and r_init is in
	// general free to distinguish orders of commuting elements, so any
	// abort obligation makes every pruned extension order observable —
	// unless the relation declares its Admits predicate invariant under
	// exactly those reorderings (OrderInsensitive; ConsensusRInit does),
	// which keeps the reduction sound on abort-carrying traces too.
	// Abort-free traces (including every Theorem-2 / CheckLin use) get
	// the full reduction regardless.
	s.por = set.POR && (len(s.obligations) == 0 || IsOrderInsensitive(rinit))

	s.newChain()
	ok, err := s.run(0)
	if err != nil || !ok {
		return ok, Witness{}, err
	}
	if !set.Witness {
		return true, Witness{}, nil
	}
	w := Witness{
		Init:    map[int]trace.History{},
		Commits: map[int]trace.History{},
		Aborts:  map[int]trace.History{},
	}
	for i, h := range finit {
		w.Init[i] = h.Clone()
	}
	for i, k := range s.commitLen {
		w.Commits[i] = s.finalHist[:k].Clone()
	}
	for i, h := range s.abortHist {
		w.Aborts[i] = h.Clone()
	}
	return true, w, nil
}

type obligation struct {
	idx   int
	input trace.Value
	sym   trace.Sym
	value trace.Value
}

// slinKey is the fixed-size memoization key of a search node: the action
// index plus the chain digest (the availability at a response index is
// derived from vi(i) and the chain, so the chain digest determines it).
type slinKey struct {
	i   int32
	dig trace.Digest
}

// visKey identifies a (chain, avail) configuration within one response's
// extension search.
type visKey struct{ c, a trace.Digest }

type searcher struct {
	f           adt.Folder
	rinit       RInit
	m, n        int
	t           trace.Trace
	sp          *spender
	temporal    bool
	memoLimit   int
	por         bool
	failed      map[slinKey]struct{}
	initOrder   bool
	L           trace.History
	in          *trace.Interner
	isyms       []trace.Sym
	vi          []*trace.SymMultiset
	obligations []obligation
	chain       schain

	// scratch pools multisets reused by commit/dischargeAt frames, and
	// the set pools the per-frame visited sets of extendAndCommit and
	// findAbortHistory, keeping the hot path allocation-free after
	// warmup.
	scratch      []*trace.SymMultiset
	visitedPool  trace.SetPool[visKey]
	avisitedPool trace.SetPool[trace.Digest]

	// Abort-history search buffer (histories under construction share one
	// stack; abort searches never nest).
	abuf  trace.History
	asyms []trace.Sym
	adig  trace.Digest

	// Witness assembly (filled on the successful search path).
	commitLen map[int]int
	abortHist map[int]trace.History
	finalHist trace.History

	// audit shadows the failed set with full string keys under the
	// memocheck build tag (digest-collision counting); a no-op otherwise.
	audit memoAudit
}

// toSym converts a plain multiset to an interned vector (setup only).
func (s *searcher) toSym(m trace.Multiset) trace.SymMultiset {
	sm := trace.NewSymMultiset(s.in.Len())
	for v, n := range m {
		sm.Add(s.in.Sym(v), n)
	}
	return sm
}

func (s *searcher) getScratch(src *trace.SymMultiset) *trace.SymMultiset {
	var m *trace.SymMultiset
	if n := len(s.scratch); n > 0 {
		m = s.scratch[n-1]
		s.scratch = s.scratch[:n-1]
	} else {
		m = &trace.SymMultiset{}
	}
	m.CopyFrom(src)
	return m
}

func (s *searcher) putScratch(m *trace.SymMultiset) { s.scratch = append(s.scratch, m) }

// schain is the commit-history chain anchored at L. hist always has L as a
// prefix; prefix lengths ≤ base are never claimable (commit histories must
// be strict extensions of L). After the first commit the chain's endpoint
// is always claimed, so hist as a whole is the longest commit history.
//
// The chain is mutated in place along the search path and maintains both a
// digest of its (symbol, used)-sequence and the multiset of its elements
// incrementally.
type schain struct {
	f      adt.Folder
	base   int
	hist   trace.History
	syms   []trace.Sym
	states []adt.State // states[k] folds hist[:k]; len == len(hist)+1
	outs   []trace.Value
	used   []bool
	nused  int
	dig    trace.Digest
	elems  trace.SymMultiset
}

func (s *searcher) newChain() {
	c := schain{f: s.f, base: len(s.L)}
	c.states = make([]adt.State, 1, len(s.L)+1)
	c.states[0] = s.f.Empty()
	c.elems = trace.NewSymMultiset(s.in.Len())
	s.chain = c
	for _, in := range s.L {
		s.chain.push(in, s.in.Sym(in))
	}
}

func (c *schain) len() int { return len(c.hist) }

func (c *schain) state() adt.State { return c.states[len(c.states)-1] }

func (c *schain) push(in trace.Value, sym trace.Sym) {
	st := c.state()
	c.pushPre(in, sym, c.f.Step(st, in), c.f.Out(st, in))
}

// pushPre is push with the folder calls hoisted (see lin.(*chain).pushPre):
// stIn and out are f.Step/f.Out of in at the current end state, shared
// with the sleep-set propagation by the reduced searches.
func (c *schain) pushPre(in trace.Value, sym trace.Sym, stIn adt.State, out trace.Value) {
	c.dig = c.dig.Add(trace.HashElem(len(c.hist), sym, false))
	c.elems.Add(sym, 1)
	c.hist = append(c.hist, in)
	c.syms = append(c.syms, sym)
	c.states = append(c.states, stIn)
	c.outs = append(c.outs, out)
	c.used = append(c.used, false)
}

func (c *schain) pop() {
	n := len(c.hist) - 1
	c.dig = c.dig.Sub(trace.HashElem(n, c.syms[n], false))
	c.elems.Add(c.syms[n], -1)
	c.hist = c.hist[:n]
	c.syms = c.syms[:n]
	c.states = c.states[:n+1]
	c.outs = c.outs[:n]
	c.used = c.used[:n]
}

func (c *schain) setUsed(k int) {
	c.dig = c.dig.Sub(trace.HashElem(k-1, c.syms[k-1], false)).Add(trace.HashElem(k-1, c.syms[k-1], true))
	c.used[k-1] = true
	c.nused++
}

func (c *schain) clearUsed(k int) {
	c.dig = c.dig.Sub(trace.HashElem(k-1, c.syms[k-1], true)).Add(trace.HashElem(k-1, c.syms[k-1], false))
	c.used[k-1] = false
	c.nused--
}

// run processes the trace from action index i against the current chain;
// the chain is restored before it returns.
func (s *searcher) run(i int) (bool, error) {
	if err := s.sp.spend(); err != nil {
		return false, err
	}
	if i == len(s.t) {
		if s.temporal {
			s.finalHist = s.chain.hist.Clone()
			return true, nil // obligations were discharged inline
		}
		ok, err := s.dischargeObligations()
		if ok {
			s.finalHist = s.chain.hist.Clone()
		}
		return ok, err
	}
	key := slinKey{i: int32(i), dig: s.chain.dig}
	if _, hit := s.failed[key]; hit {
		if memocheckEnabled {
			s.auditHit(key)
		}
		return false, nil
	}
	a := s.t[i]
	var ok bool
	var err error
	switch {
	case a.Kind == trace.Res:
		ok, err = s.commit(i, a)
	case a.IsAbort(s.n) && s.temporal:
		// Temporal Abort-Order: the abort history must cover only commits
		// made so far, so its interpretation can be chosen immediately.
		ok, err = s.dischargeAt(obligation{idx: i, input: a.Input, sym: s.isyms[i], value: a.SwitchValue})
		if err == nil && ok {
			ok, err = s.run(i + 1)
		}
	default:
		// Invocations and switch actions carry no search choice: their
		// effects (invoked inputs, ivi contributions, abort obligations)
		// are precomputed per index.
		ok, err = s.run(i + 1)
	}
	if err != nil {
		return false, err
	}
	if !ok {
		if s.memoLimit <= 0 || len(s.failed) < s.memoLimit {
			s.failed[key] = struct{}{}
			if memocheckEnabled {
				s.auditInsert(key)
			}
		}
	}
	return ok, nil
}

// commit handles a response action at index i.
func (s *searcher) commit(i int, a trace.Action) (bool, error) {
	asym := s.isyms[i]
	// Claim an unused prefix length strictly beyond the L anchor. Elements
	// of the chain were validated against vi at the index that appended
	// them; vi is monotone, so Validity holds at i automatically.
	for k := s.chain.base + 1; k <= s.chain.len(); k++ {
		if s.chain.used[k-1] || s.chain.syms[k-1] != asym || s.chain.outs[k-1] != a.Output {
			continue
		}
		s.chain.setUsed(k)
		ok, err := s.run(i + 1)
		s.chain.clearUsed(k)
		if ok {
			s.commitLen[i] = k
		}
		if err != nil || ok {
			return ok, err
		}
	}
	// Extend the chain. The whole extended history must satisfy Validity
	// at i: elems(hist) ⊆ vi(i). The chain prefix may fail this when L
	// contains inputs whose init actions occur after i.
	vi := s.vi[i]
	if !s.chain.elems.SubsetOf(vi) {
		return false, nil
	}
	avail := s.getScratch(vi)
	avail.SubtractAll(&s.chain.elems)
	visited := s.visitedPool.Get()
	ok, err := s.extendAndCommit(i, a, asym, avail, visited, check.SleepSet{})
	s.visitedPool.Put(visited)
	s.putScratch(avail)
	return ok, err
}

// extendAndCommit explores chain extensions whose last element is the
// response's input. Intermediate appended elements create new unclaimed
// prefix lengths that later commits may claim.
//
// sleep carries the sleep set of the partial-order reduction, active only
// on abort-free traces (see existsWitness); the propagation mirrors
// lin.(*searcher).extendAndCommit exactly.
func (s *searcher) extendAndCommit(i int, a trace.Action, asym trace.Sym, avail *trace.SymMultiset, visited map[visKey]struct{}, sleep check.SleepSet) (bool, error) {
	if err := s.sp.spend(); err != nil {
		return false, err
	}
	vk := visKey{c: s.chain.dig, a: avail.Digest()}
	if _, hit := visited[vk]; hit {
		return false, nil
	}
	visited[vk] = struct{}{}

	// Close the extension with the response's own input.
	if avail.Count(asym) > 0 && s.f.Out(s.chain.state(), a.Input) == a.Output {
		s.chain.push(a.Input, asym)
		k := s.chain.len()
		s.chain.setUsed(k)
		if s.commitCompatibleWithAborts(i) {
			avail.Add(asym, -1)
			ok, err := s.run(i + 1)
			avail.Add(asym, 1)
			if ok {
				s.commitLen[i] = k
			}
			if err != nil || ok {
				s.chain.clearUsed(k)
				s.chain.pop()
				return ok, err
			}
		}
		s.chain.clearUsed(k)
		s.chain.pop()
	}
	// Append some other available input as an intermediate element.
	for sym := trace.Sym(0); int(sym) < avail.NumSyms(); sym++ {
		if avail.Count(sym) <= 0 {
			continue
		}
		if s.por && sleep.Has(sym) {
			s.sp.pruned++
			continue
		}
		in := s.in.Value(sym)
		st := s.chain.state()
		stIn, outIn := s.f.Step(st, in), s.f.Out(st, in)
		var childSleep check.SleepSet
		if s.por {
			childSleep = sleep.FilterIndependent(s.f, s.in, st, in, stIn, outIn)
		}
		avail.Add(sym, -1)
		s.chain.pushPre(in, sym, stIn, outIn)
		ok, err := s.extendAndCommit(i, a, asym, avail, visited, childSleep)
		s.chain.pop()
		avail.Add(sym, 1)
		if err != nil || ok {
			return ok, err
		}
		if s.por {
			sleep = sleep.Add(sym)
		}
	}
	return false, nil
}

// commitCompatibleWithAborts prunes commits that no abort interpretation
// could cover: a commit history must be a prefix of every abort history
// (Abort-Order), and every abort history's elements must be valid at its
// own index (Definition 28), so a commit's elements must be valid at every
// abort index seen so far. This is a necessary condition checked eagerly;
// full obligations are discharged at the end of the trace. Under temporal
// Abort-Order, commits after an abort are unconstrained by it.
func (s *searcher) commitCompatibleWithAborts(i int) bool {
	if s.temporal {
		return true
	}
	for _, ob := range s.obligations {
		if ob.idx >= i {
			break
		}
		if !s.chain.elems.SubsetOf(s.vi[ob.idx]) {
			return false
		}
	}
	return true
}

// dischargeObligations chooses an abort history for every abort action
// (the existential f_abort of Definition 19). Each abort at index j with
// pending input in and switch value v needs a history h such that:
//
//   - r_init admits h as an interpretation of v;
//   - every commit history is a prefix of h (Abort-Order) — since the
//     chain's endpoint is the longest commit, h must extend the final
//     chain (strictly beyond L when no commit exists, by Init-Order);
//   - elems(h) ∪ {in} ⊆ vi(j) (Validity for abort indices).
//
// Obligations are independent of each other, so they are discharged one by
// one.
func (s *searcher) dischargeObligations() (bool, error) {
	for _, ob := range s.obligations {
		ok, err := s.dischargeAt(ob)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// dischargeAt finds an interpretation for a single abort obligation given
// the current chain covering the commits it must extend. When no commit
// exists the chain is exactly L (extensions persist only on committed
// paths), matching the reference's explicit base = L case.
func (s *searcher) dischargeAt(ob obligation) (bool, error) {
	vi := s.vi[ob.idx]
	if vi.Count(ob.sym) < 1 {
		return false, nil
	}
	if !s.chain.elems.SubsetOf(vi) {
		return false, nil
	}
	budget := s.getScratch(vi)
	budget.SubtractAll(&s.chain.elems)
	// Seed the shared abort-history buffer with the base (the chain). The
	// buffer digest ignores used-bits (they are chain bookkeeping, not
	// part of the abort history), so it is rebuilt rather than copied.
	s.abuf = append(s.abuf[:0], s.chain.hist...)
	s.asyms = append(s.asyms[:0], s.chain.syms...)
	s.adig = trace.Digest{}
	for p, sym := range s.asyms {
		s.adig = s.adig.Add(trace.HashElem(p, sym, false))
	}
	needStrict := s.initOrder && s.chain.nused == 0
	visited := s.avisitedPool.Get()
	ok, err := s.findAbortHistory(ob, budget, needStrict, visited)
	s.avisitedPool.Put(visited)
	s.putScratch(budget)
	return ok, err
}

// apush/apop extend and retract the shared abort-history buffer.
func (s *searcher) apush(sym trace.Sym) {
	s.adig = s.adig.Add(trace.HashElem(len(s.abuf), sym, false))
	s.abuf = append(s.abuf, s.in.Value(sym))
	s.asyms = append(s.asyms, sym)
}

func (s *searcher) apop(sym trace.Sym) {
	n := len(s.abuf) - 1
	s.adig = s.adig.Sub(trace.HashElem(n, sym, false))
	s.abuf = s.abuf[:n]
	s.asyms = s.asyms[:n]
}

// findAbortHistory searches extensions of the buffered base admitted by
// r_init(v). On success the admitted history is recorded in abortHist
// before the stack unwinds.
func (s *searcher) findAbortHistory(ob obligation, budget *trace.SymMultiset, needStrict bool, visited map[trace.Digest]struct{}) (bool, error) {
	if err := s.sp.spend(); err != nil {
		return false, err
	}
	if _, hit := visited[s.adig]; hit {
		return false, nil
	}
	visited[s.adig] = struct{}{}
	if !needStrict && s.rinit.Admits(ob.value, s.abuf) {
		s.abortHist[ob.idx] = s.abuf.Clone()
		return true, nil
	}
	for sym := trace.Sym(0); int(sym) < budget.NumSyms(); sym++ {
		if budget.Count(sym) <= 0 {
			continue
		}
		budget.Add(sym, -1)
		s.apush(sym)
		ok, err := s.findAbortHistory(ob, budget, false, visited)
		s.apop(sym)
		budget.Add(sym, 1)
		if err != nil || ok {
			return ok, err
		}
	}
	return false, nil
}
