package slin

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestHashedMemoAgreesWithReference is the optimization's property test:
// the digest-keyed, mutate-in-place Check must return the same verdict as
// the retained string-keyed CheckReference on randomized phase traces, for
// first phases (m = 1, no Init-Order), second phases (m = 2, init actions
// with representative interpretations), both Abort-Order semantics, and
// clean as well as violating schedules. On negative verdicts the two must
// also spend the same number of search nodes (failed searches explore the
// whole memoized DAG, whose size is branch-order independent).
func TestHashedMemoAgreesWithReference(t *testing.T) {
	t.Run("first-phase", func(t *testing.T) {
		r := rand.New(rand.NewSource(99))
		for i := 0; i < 300; i++ {
			opts := workload.PhaseOpts{Clients: 2 + r.Intn(2), NoLateOps: i%2 == 0}
			if i%3 == 0 {
				opts.ViolateProb = 0.4
			}
			tr := workload.FirstPhase(r, opts)
			temporal := i%4 < 2
			compareImpls(t, adt.Consensus{}, ConsensusRInit{Probe: i%5 == 0}, 1, 2, tr, temporal)
		}
	})
	t.Run("second-phase", func(t *testing.T) {
		r := rand.New(rand.NewSource(299))
		for i := 0; i < 300; i++ {
			opts := workload.PhaseOpts{Clients: 2 + r.Intn(2)}
			if i%3 == 0 {
				opts.ViolateProb = 0.4
			}
			tr := workload.SecondPhase(r, 2, opts)
			temporal := i%4 < 2
			compareImpls(t, adt.Consensus{}, ConsensusRInit{Probe: i%5 == 0}, 2, 3, tr, temporal)
		}
	})
	t.Run("switch-free", func(t *testing.T) {
		// Abort-free traces (plain operations checked as SLin(1,2) per
		// Theorem 2) exercise the exact node-count parity on failures.
		r := rand.New(rand.NewSource(399))
		inputs := []trace.Value{adt.ProposeInput("a"), adt.ProposeInput("b")}
		for i := 0; i < 200; i++ {
			opts := workload.TraceOpts{Clients: 3, Ops: 4 + r.Intn(3), Inputs: inputs, UniqueTags: true}
			if i%2 == 1 {
				opts.CorruptProb = 0.5
			}
			tr := workload.Random(adt.Consensus{}, r, opts)
			compareImpls(t, adt.Consensus{}, UniversalRInit{}, 1, 2, tr, false)
		}
	})
}

func compareImpls(t *testing.T, f adt.Folder, rinit RInit, m, n int, tr trace.Trace, temporal bool) {
	t.Helper()
	// POR off: the string-key reference has no reducer, and this test
	// pins EXACT node-count parity of the two unreduced searches (the
	// reduced engine's agreement is covered by the diffcheck
	// differential tests).
	got, err := Check(context.Background(), f, rinit, m, n, tr,
		check.WithTemporalAbortOrder(temporal), check.WithPOR(false))
	if err != nil {
		t.Fatalf("optimized: %v", err)
	}
	want, err := CheckReference(f, rinit, m, n, tr, check.WithTemporalAbortOrder(temporal))
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	if got.OK != want.OK {
		t.Fatalf("verdict mismatch on %v (m=%d n=%d temporal=%v): optimized %v, reference %v",
			tr, m, n, temporal, got.OK, want.OK)
	}
	// Node counts are comparable only on negative verdicts of abort-free
	// traces: a failed commit search explores the whole memoized DAG
	// (branch-order independent), but a successful abort-history
	// sub-search stops at the first admitted history, whose cost depends
	// on the reference's map-iteration order.
	hasAbort := false
	for _, a := range tr {
		if a.IsAbort(n) {
			hasAbort = true
			break
		}
	}
	if !got.OK && !hasAbort && got.Nodes != want.Nodes {
		t.Fatalf("node count mismatch on %v: optimized %d, reference %d", tr, got.Nodes, want.Nodes)
	}
	if got.OK {
		for _, w := range got.Witnesses {
			if err := VerifyWitness(f, rinit, m, n, tr, w, temporal); err != nil {
				t.Fatalf("optimized witness invalid on %v: %v", tr, err)
			}
		}
	}
}

// slinTestTrace is a small first-phase trace with a switch, exercising
// commit, abort-discharge and the consensus r_init.
func slinTestTrace() trace.Trace {
	inA := adt.Tag(adt.ProposeInput("a"), "q1")
	inB := adt.Tag(adt.ProposeInput("b"), "q2")
	return trace.Trace{
		trace.Invoke("q1", 1, inA),
		trace.Invoke("q2", 1, inB),
		trace.Response("q1", 1, inA, adt.DecideOutput("a")),
		trace.Switch("q2", 2, inB, "a"),
	}
}

// TestCheckAllocsRegression pins the allocation budget of the slin hot
// path; the bound is loose (≈2× current) so it catches a return to
// per-node allocation, not noise.
func TestCheckAllocsRegression(t *testing.T) {
	if memocheckEnabled {
		t.Skip("memocheck audit allocates by design")
	}
	tr := slinTestTrace()
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := Check(context.Background(), adt.Consensus{}, ConsensusRInit{}, 1, 2, tr); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("slin.Check: %.1f allocs/op", allocs)
	if allocs > 120 {
		t.Errorf("slin.Check allocates %.1f times per op; budget is 120 (hot path regressed to per-node allocation?)", allocs)
	}
}

// TestBudgetSharedAcrossInterpretations verifies the uniform budget
// semantics: one budget per Check call, shared across all
// init-interpretation combinations, with Result.Nodes never exceeding it.
func TestBudgetSharedAcrossInterpretations(t *testing.T) {
	// A second-phase trace with an init action checked under Probe has two
	// representative interpretations, so Check runs existsWitness at least
	// twice; with a shared budget the total node count must still be
	// bounded by one budget, not one per combination.
	r := rand.New(rand.NewSource(5))
	var tr trace.Trace
	for i := 0; i < 50; i++ {
		tr = workload.SecondPhase(r, 2, workload.PhaseOpts{Clients: 3})
		res, err := Check(context.Background(), adt.Consensus{}, ConsensusRInit{Probe: true}, 2, 3, tr)
		if err != nil || !res.OK || len(res.Witnesses) < 2 {
			continue
		}
		// Found a trace exercising ≥2 combinations.
		full := res
		if full.Nodes <= 0 {
			t.Fatalf("expected positive node count, got %d", full.Nodes)
		}
		if _, err := Check(context.Background(), adt.Consensus{}, ConsensusRInit{Probe: true}, 2, 3, tr, check.WithBudget(full.Nodes)); err != nil {
			t.Fatalf("budget == nodes should succeed, got %v", err)
		}
		if _, err := Check(context.Background(), adt.Consensus{}, ConsensusRInit{Probe: true}, 2, 3, tr, check.WithBudget(full.Nodes-1)); !errors.Is(err, ErrBudget) {
			t.Fatalf("budget == nodes-1 should exhaust, got %v", err)
		}
		return
	}
	t.Fatal("no generated trace exercised two interpretation combinations")
}

// TestBudgetExhaustionSurfaces verifies a tiny budget yields ErrBudget.
func TestBudgetExhaustionSurfaces(t *testing.T) {
	if _, err := Check(context.Background(), adt.Consensus{}, ConsensusRInit{}, 1, 2, slinTestTrace(), check.WithBudget(1)); !errors.Is(err, ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
	if _, err := CheckReference(adt.Consensus{}, ConsensusRInit{}, 1, 2, slinTestTrace(), check.WithBudget(1)); !errors.Is(err, ErrBudget) {
		t.Fatalf("reference: expected ErrBudget, got %v", err)
	}
}

// TestCheckAllMatchesSequential verifies the batch checker returns the
// same verdicts as sequential checks, in order, for several pool sizes.
func TestCheckAllMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	traces := make([]trace.Trace, 48)
	for i := range traces {
		opts := workload.PhaseOpts{Clients: 3, NoLateOps: true}
		if i%3 == 0 {
			opts.ViolateProb = 0.4
		}
		traces[i] = workload.FirstPhase(r, opts)
	}
	want := make([]bool, len(traces))
	for i, tr := range traces {
		res, err := Check(context.Background(), adt.Consensus{}, ConsensusRInit{}, 1, 2, tr)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.OK
	}
	for _, workers := range []int{0, 1, 4} {
		got, err := CheckAll(context.Background(), adt.Consensus{}, ConsensusRInit{}, 1, 2, traces, check.WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range traces {
			if got[i].OK != want[i] {
				t.Fatalf("workers=%d trace %d: batch %v, sequential %v", workers, i, got[i].OK, want[i])
			}
		}
	}
}
