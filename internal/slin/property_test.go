package slin

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/lin"
	"repro/internal/trace"
	"repro/internal/workload"
)

// The §2.4 reduction, first phase: randomly generated first-phase traces
// satisfying invariants I1–I3 are speculatively linearizable. Schedules
// with operations invoked after a switch need the temporal Abort-Order
// (see Options); NoLateOps schedules satisfy the literal one.
func TestInvariantsImplyFirstPhaseSLin(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	iters := 300
	if testing.Short() {
		iters = 60
	}
	for i := 0; i < iters; i++ {
		strict := i%2 == 0
		tr := workload.FirstPhase(r, workload.PhaseOpts{
			Clients:   2 + r.Intn(3),
			NoLateOps: strict,
		})
		if err := FirstPhaseInvariants(tr, 1, 2); err != nil {
			t.Fatalf("generator violated invariants: %v on %v", err, tr)
		}
		res, err := Check(context.Background(), adt.Consensus{}, ConsensusRInit{}, 1, 2, tr, check.WithTemporalAbortOrder(!strict))
		if err != nil {
			t.Fatalf("Check: %v on %v", err, tr)
		}
		if !res.OK {
			t.Fatalf("I1–I3 trace not SLin (strict=%v): %s on %v", strict, res.Reason, tr)
		}
		for _, w := range res.Witnesses {
			if err := VerifyWitness(adt.Consensus{}, ConsensusRInit{}, 1, 2, tr, w, !strict); err != nil {
				t.Fatalf("invalid witness: %v on %v", err, tr)
			}
		}
	}
}

// The §2.4 reduction, second phase: traces satisfying I4–I5 are
// speculatively linearizable.
func TestInvariantsImplySecondPhaseSLin(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	iters := 300
	if testing.Short() {
		iters = 60
	}
	for i := 0; i < iters; i++ {
		tr := workload.SecondPhase(r, 2, workload.PhaseOpts{Clients: 2 + r.Intn(3)})
		if err := SecondPhaseInvariants(tr, 2, 3); err != nil {
			t.Fatalf("generator violated invariants: %v on %v", err, tr)
		}
		res, err := Check(context.Background(), adt.Consensus{}, ConsensusRInit{}, 2, 3, tr)
		if err != nil {
			t.Fatalf("Check: %v on %v", err, tr)
		}
		if !res.OK {
			t.Fatalf("I4–I5 trace not SLin: %s on %v", res.Reason, tr)
		}
		for _, w := range res.Witnesses {
			if err := VerifyWitness(adt.Consensus{}, ConsensusRInit{}, 2, 3, tr, w, false); err != nil {
				t.Fatalf("invalid witness: %v on %v", err, tr)
			}
		}
	}
}

// Violated invariants are detected, and violating traces (almost always)
// fail SLin; we assert the direction that must hold: whenever the SLin
// checker accepts, the invariants hold too (for these consensus phases the
// invariants are necessary conditions).
func TestViolationsRejected(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	sawViolation := false
	for i := 0; i < 300; i++ {
		tr := workload.FirstPhase(r, workload.PhaseOpts{ViolateProb: 0.4, NoLateOps: true})
		invErr := FirstPhaseInvariants(tr, 1, 2)
		res, err := Check(context.Background(), adt.Consensus{}, ConsensusRInit{}, 1, 2, tr)
		if err != nil {
			t.Fatalf("Check: %v on %v", err, tr)
		}
		if invErr != nil {
			sawViolation = true
		}
		if res.OK && invErr != nil {
			// I2 and I3 violations always break SLin. I1 violations do
			// too for this generator's traces (switch values that are not
			// the decided value cannot anchor an admissible abort
			// history extending the commit chain) — so acceptance with a
			// violated invariant is a checker bug.
			t.Fatalf("SLin accepted a trace violating %v: %v", invErr, tr)
		}
	}
	if !sawViolation {
		t.Fatal("generator produced no violations")
	}
}

// Theorem 2 at scale: on switch-free traces, SLin(1,2) coincides with
// plain linearizability (package lin).
func TestTheorem2AgainstLin(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	inputs := []trace.Value{adt.ProposeInput("a"), adt.ProposeInput("b")}
	iters := 200
	if testing.Short() {
		iters = 50
	}
	for i := 0; i < iters; i++ {
		opts := workload.TraceOpts{Clients: 2, Ops: 2 + r.Intn(3), Inputs: inputs}
		if i%2 == 1 {
			opts.CorruptProb = 0.5
		}
		tr := workload.Random(adt.Consensus{}, r, opts)
		linRes, err := lin.Check(context.Background(), adt.Consensus{}, tr)
		if err != nil {
			t.Fatal(err)
		}
		slinRes, err := Check(context.Background(), adt.Consensus{}, ConsensusRInit{}, 1, 2, tr)
		if err != nil {
			t.Fatal(err)
		}
		if linRes.OK != slinRes.OK {
			t.Fatalf("Theorem 2 violated: lin=%v slin=%v on %v", linRes.OK, slinRes.OK, tr)
		}
	}
}

// The intra-object composition theorem (Theorem 3), property-tested on
// generated two-phase consensus traces: when both projections satisfy
// their phase properties, the composite satisfies SLin(1,3). Composite
// traces are built by stitching a first-phase trace to a second-phase
// trace whose init actions mirror the first's aborts.
func TestCompositionTheoremGenerated(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	iters := 200
	if testing.Short() {
		iters = 50
	}
	checked := 0
	for i := 0; i < iters; i++ {
		comp := composedTrace(r)
		first := comp.ProjectSig(1, 2)
		second := comp.ProjectSig(2, 3)
		r1, err := Check(context.Background(), adt.Consensus{}, ConsensusRInit{}, 1, 2, first)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Check(context.Background(), adt.Consensus{}, ConsensusRInit{}, 2, 3, second)
		if err != nil {
			t.Fatal(err)
		}
		if !r1.OK || !r2.OK {
			continue // theorem's hypotheses not met; nothing to check
		}
		checked++
		rc, err := Check(context.Background(), adt.Consensus{}, ConsensusRInit{}, 1, 3, comp)
		if err != nil {
			t.Fatal(err)
		}
		if !rc.OK {
			t.Fatalf("composition theorem violated: phases OK but composite fails: %s on %v",
				rc.Reason, comp)
		}
	}
	if checked == 0 {
		t.Fatal("no composed trace met the theorem's hypotheses")
	}
}

// composedTrace builds a two-phase consensus trace: phase 1 runs Quorum-
// style with NoLateOps, and every aborting client continues in phase 2,
// which decides the first switch value submitted.
func composedTrace(r *rand.Rand) trace.Trace {
	first := workload.FirstPhase(r, workload.PhaseOpts{Clients: 2 + r.Intn(2), NoLateOps: true})
	var comp trace.Trace
	comp = append(comp, first...)
	decision := trace.Value("")
	for _, a := range first {
		if a.IsAbort(2) && decision == "" {
			decision = a.SwitchValue
		}
	}
	for _, a := range first {
		if a.IsAbort(2) {
			comp = append(comp, trace.Response(a.Client, 2, a.Input, adt.DecideOutput(decision)))
		}
	}
	return comp
}
