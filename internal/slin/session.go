package slin

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/lin"
	"repro/internal/trace"
)

// Session is an incremental SLin(m,n) checker (checker API v2, DESIGN.md
// decision 11): actions are fed one at a time, and the growing trace's
// verdict is recomputed from the persistent search state instead of from
// scratch.
//
// The engine is the breadth counterpart of Check's depth-first search,
// run once per init-interpretation combination (the ∀ of Definition 19):
// each combination carries the frontier of reachable commit-chain
// configurations after the actions fed so far, anchored at that
// combination's Init-Order baseline L, together with its running
// valid-inputs multiset vi (snapshotted at every index an abort
// obligation refers back to). Responses replace a frontier by its
// successor set — claims of unused prefix lengths beyond L plus
// Validity-respecting chain extensions, exactly Check's branch set —
// deduplicated by the chains' incremental digests.
//
// Two SLin-specific wrinkles distinguish the session from lin.Session:
//
//   - Init actions change global anchors: a new init interpretation both
//     multiplies the combination set and can shrink every combination's
//     L (the LCP of more histories), which re-anchors chains
//     retroactively. Feeding an init action therefore rebuilds the
//     combinations and replays the fed trace through fresh frontiers
//     (init actions are rare — one per client per phase — so the
//     amortized cost stays incremental). For the same reason a
//     NotLinearizable verdict is *not* final before the trace's init
//     actions have all been fed: only lin.Session's verdicts are.
//   - Abort obligations are discharged at verdict time (Verdict/Result)
//     against the surviving configurations under the literal Abort-Order
//     semantics, mirroring Check's end-of-trace discharge; under
//     WithTemporalAbortOrder they filter the frontier inline, mirroring
//     Check's inline discharge.
//
// One budget spans the session (replays and verdict-time discharges
// included); the breadth engine does not assemble Witnesses.
type Session struct {
	ctx    context.Context
	f      adt.Folder
	rinit  RInit
	m, n   int
	set    check.Settings
	budget int
	nodes  atomic.Int64
	// por is the live state of the partial-order reduction: it starts as
	// set.POR and flips off permanently at the first abort action fed —
	// abort histories extend chains as sequences, so pruned extension
	// orders become observable (Result.Pruned documents the rationale) —
	// unless the RInit declares its Admits predicate order-insensitive
	// (OrderInsensitive), which keeps the reduction on across aborts.
	// If pruning already happened by then, the frontiers are rebuilt by
	// an unreduced replay, so every verdict equals the one-shot Check of
	// the fed prefix. pruned counts skipped branches (atomic: expansion
	// workers prune concurrently).
	por    bool
	pruned atomic.Int64

	t        trace.Trace
	phase    map[trace.ClientID]*phaseTrack
	notWF    string
	err      error
	initIdx  []int
	initReps [][]trace.History
	combos   []*combo

	// verdict cache: verAt is the fed length verRes was computed for
	// (-1 when stale).
	verAt  int
	verRes Result

	// fast, when non-nil, is the ADT-specialized streaming core the
	// session delegates to instead of the combination frontiers
	// (DESIGN.md, decision 15; NewSessionFast). Sound only for m == 1,
	// where SLin(1,n) restricted to sig coincides with Lin (Theorem 2):
	// any switch action falls back to the exact engine by replaying the
	// fed trace (s.t) through fresh frontiers, exactly like an init
	// rebuild. Fast-path work never spends the budget; it is accounted
	// separately in fastNodes (one per fed action).
	fast      lin.FastChecker
	fastRej   bool // core rejected: NotLinearizable, final
	fastNodes int
	fastPend  map[trace.ClientID]int // client -> pending invocation's trace index
}

// phaseTrack is the incremental per-client state machine of Definition 34
// ((m,n)-well-formed client sub-traces), mirroring trace.PhaseWellFormed.
type phaseTrack struct {
	state   int // 0 idle, 1 pending, 2 ready, 3 done
	pending trace.Value
}

// combo is the session state of one init-interpretation combination.
type combo struct {
	finit   map[int]trace.History
	L       trace.History
	in      *trace.Interner
	ivi     trace.Multiset
	invoked trace.Multiset
	// vi is the current symbolized valid-inputs multiset; a fresh
	// snapshot is taken whenever it changes, so abort obligations can
	// alias the snapshot current at their index.
	vi          *trace.SymMultiset
	obligations []sobl
	frontier    []*scfg
}

// sobl is an abort obligation: the pending input's interned symbol, the
// switch value to interpret, and the valid-inputs snapshot of the abort's
// trace index.
type sobl struct {
	sym   trace.Sym
	value trace.Value
	vi    *trace.SymMultiset
}

// scfg is one frontier configuration: a commit-history chain anchored at
// the combination's L (prefix lengths ≤ base are never claimable).
// Configurations are immutable once constructed.
type scfg struct {
	syms  []trace.Sym
	outs  []trace.Value
	used  []bool
	nused int
	base  int
	end   adt.State
	elems trace.SymMultiset
	dig   trace.Digest
}

// NewSession starts an incremental SLin(m,n) check of an initially empty
// trace. It validates the phase range like Check.
func NewSession(ctx context.Context, f adt.Folder, rinit RInit, m, n int, opts ...check.Option) (*Session, error) {
	return newSessionSettings(ctx, f, rinit, m, n, check.NewSettings(opts...))
}

// NewSessionFast is NewSession with fast-path dispatch (DESIGN.md,
// decision 15): for m == 1 — where SLin(1,n) restricted to sig coincides
// with Lin (Theorem 2) — and a folder with a streaming specialized core
// (register, consensus), Feed costs O(1) amortized per action and spends
// no budget while the trace stays inside the core's fragment. The first
// action outside the fragment — including any switch action, which
// Theorem 2's sig restriction excludes — falls back transparently by
// replaying the fed trace through the exact frontiers. check.WithExact,
// m > 1, or a folder without a streaming core all yield a plain exact
// session. Verdicts agree with NewSession on every prefix either way.
func NewSessionFast(ctx context.Context, f adt.Folder, rinit RInit, m, n int, opts ...check.Option) (*Session, error) {
	set := check.NewSettings(opts...)
	s, err := newSessionSettings(ctx, f, rinit, m, n, set)
	if err != nil {
		return nil, err
	}
	if m == 1 && !set.Exact {
		s.fast = lin.NewFastChecker(f)
		s.fastPend = map[trace.ClientID]int{}
	}
	return s, nil
}

func (s *Session) spend(n int) error {
	if n <= 0 {
		return nil
	}
	v := s.nodes.Add(int64(n))
	if v > int64(s.budget) {
		return ErrBudget
	}
	if v&ctxPollMask < int64(n) {
		if err := s.ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Len returns the number of actions fed so far.
func (s *Session) Len() int { return len(s.t) }

// Nodes returns the cumulative number of search nodes spent, plus — for
// fast-path sessions — one node per action the specialized core
// processed (fast-path nodes are not charged against the budget).
func (s *Session) Nodes() int { return int(s.nodes.Load()) + s.fastNodes }

// Pruned returns the cumulative number of extension branches the
// partial-order reduction skipped, including branches of frontiers later
// discarded by an unreduced replay (0 with check.WithPOR(false)).
func (s *Session) Pruned() int { return int(s.pruned.Load()) }

// Feed appends action a to the trace under check. Errors (budget or memo
// exhaustion, cancellation, actions outside sig(m,n), switch values
// without interpretations) are terminal; (m,n)-ill-formed traces yield a
// NotLinearizable verdict instead, matching Check.
func (s *Session) Feed(a trace.Action) error {
	if s.err != nil {
		return s.err
	}
	if err := s.ctx.Err(); err != nil {
		s.err = err
		return err
	}
	if !trace.InSig(a, s.m, s.n) {
		s.err = fmt.Errorf("slin: action %v outside sig(%d,%d)", a, s.m, s.n)
		return s.err
	}
	if s.fast != nil {
		return s.feedFast(a)
	}
	return s.feedExact(a)
}

// feedExact is Feed's frontier-engine path (every session without an
// active fast-path delegate).
func (s *Session) feedExact(a trace.Action) error {
	idx := len(s.t)
	s.t = append(s.t, a)
	s.verAt = -1
	if s.notWF != "" {
		return nil // verdict already final
	}
	s.trackWF(a)
	if s.notWF != "" {
		return nil
	}
	if a.IsInit(s.m) && s.m != 1 {
		reps := s.rinit.Representatives(a.SwitchValue)
		if len(reps) == 0 {
			s.err = fmt.Errorf("slin: switch value %q has no interpretations", a.SwitchValue)
			return s.err
		}
		s.initIdx = append(s.initIdx, idx)
		s.initReps = append(s.initReps, reps)
		if err := s.rebuild(); err != nil {
			s.err = err
			return err
		}
		return nil
	}
	if a.IsAbort(s.n) && s.por && !IsOrderInsensitive(s.rinit) {
		// First abort fed: the reduction stops being sound from here on
		// (see the por field) — unless the relation declares its Admits
		// predicate order-insensitive, in which case the pruned orders
		// stay unobservable and the reduction survives the abort. If it
		// already pruned configurations, the surviving frontiers
		// under-approximate the unreduced ones, so replay the fed trace
		// — including this abort — unreduced.
		s.por = false
		if s.pruned.Load() > 0 {
			if err := s.rebuild(); err != nil {
				s.err = err
				return err
			}
			return nil
		}
	}
	for _, cb := range s.combos {
		if err := s.step(cb, a, idx); err != nil {
			s.err = err
			return err
		}
	}
	return nil
}

// feedFast is Feed's fast-path delegate (m == 1): the same
// (1,n)-well-formedness bookkeeping as the exact path, with the
// specialized core deciding the verdict. Switch actions — outside
// Theorem 2's sig restriction — and fragment exits fall back by
// replaying the fed trace through fresh frontiers (the init-rebuild
// machinery), after which the session is exact. A rejected (or
// ill-formed) verdict is final, but subsequent actions still maintain
// the well-formedness state so reasons keep matching the exact session.
func (s *Session) feedFast(a trace.Action) error {
	if a.Kind == trace.Swi {
		s.fast, s.fastPend = nil, nil
		if s.notWF == "" {
			if err := s.rebuild(); err != nil {
				s.err = err
				return err
			}
		}
		return s.feedExact(a)
	}
	idx := len(s.t)
	s.t = append(s.t, a)
	s.verAt = -1
	if s.notWF != "" {
		return nil // verdict already final
	}
	s.trackWF(a)
	if s.notWF != "" {
		return nil
	}
	switch a.Kind {
	case trace.Inv:
		if !s.fastRej {
			switch s.fast.Inv(a.Input, idx) {
			case lin.FastExit:
				return s.fastFallback()
			case lin.FastReject:
				s.fastRej = true
			}
		}
		s.fastNodes++
		s.fastPend[a.Client] = idx
	case trace.Res:
		if !s.fastRej {
			switch s.fast.Res(a.Input, a.Output, s.fastPend[a.Client], idx) {
			case lin.FastExit:
				return s.fastFallback()
			case lin.FastReject:
				s.fastRej = true
			}
		}
		s.fastNodes++
	}
	return nil
}

// fastFallback abandons the fast-path delegate after a fragment exit:
// the fed trace (which already includes the triggering action) is
// replayed through fresh frontiers, spending budget from zero, after
// which the session behaves as an exact one fed the same actions.
func (s *Session) fastFallback() error {
	s.fast, s.fastPend = nil, nil
	if err := s.rebuild(); err != nil {
		s.err = err
		return err
	}
	return nil
}

// FeedAll feeds every action of t in order, stopping at the first
// terminal error.
func (s *Session) FeedAll(t trace.Trace) error {
	for _, a := range t {
		if err := s.Feed(a); err != nil {
			return err
		}
	}
	return nil
}

// trackWF advances the per-client (m,n)-well-formedness state machine
// over the actions of the client's (m,n)-sub-trace (interior switches are
// projected away, as in Definition 33).
func (s *Session) trackWF(a trace.Action) {
	if a.Kind == trace.Swi && !a.IsInit(s.m) && !a.IsAbort(s.n) {
		return // interior switch: not part of any client sub-trace
	}
	p := s.phase[a.Client]
	if p == nil {
		p = &phaseTrack{}
		s.phase[a.Client] = p
	}
	bad := func() { s.notWF = fmt.Sprintf("trace is not (%d,%d)-well-formed", s.m, s.n) }
	switch {
	case a.Kind == trace.Inv:
		switch p.state {
		case 0:
			if s.m != 1 {
				bad()
				return
			}
		case 2: // ready: next operation
		default:
			bad()
			return
		}
		p.state, p.pending = 1, a.Input
	case a.IsInit(s.m):
		if s.m == 1 || p.state != 0 {
			bad()
			return
		}
		p.state, p.pending = 1, a.Input
	case a.Kind == trace.Res:
		if p.state != 1 || a.Input != p.pending {
			bad()
			return
		}
		p.state = 2
	case a.IsAbort(s.n):
		if p.state != 1 || a.Input != p.pending {
			bad()
			return
		}
		p.state = 3
	}
}

// rebuild recomputes the init-interpretation combinations (the
// mixed-radix product over the representatives of every fed init action)
// and replays the fed trace through a fresh frontier per combination.
func (s *Session) rebuild() error {
	s.combos = nil
	combo := make([]int, len(s.initIdx))
	for {
		finit := map[int]trace.History{}
		for k, i := range s.initIdx {
			finit[i] = s.initReps[k][combo[k]]
		}
		cb := s.newCombo(finit)
		for idx, a := range s.t {
			if err := s.step(cb, a, idx); err != nil {
				return err
			}
		}
		s.combos = append(s.combos, cb)
		k := 0
		for ; k < len(combo); k++ {
			combo[k]++
			if combo[k] < len(s.initReps[k]) {
				break
			}
			combo[k] = 0
		}
		if k == len(combo) {
			break
		}
	}
	return nil
}

// newCombo builds the initial state of one combination: the L anchor, an
// empty valid-inputs multiset and the single L-anchored configuration.
func (s *Session) newCombo(finit map[int]trace.History) *combo {
	cb := &combo{
		finit:   finit,
		in:      trace.NewInterner(),
		ivi:     trace.Multiset{},
		invoked: trace.Multiset{},
	}
	if s.m != 1 {
		var hists []trace.History
		for _, h := range finit {
			hists = append(hists, h)
		}
		cb.L = trace.LCP(hists)
	}
	for _, h := range finit {
		for _, in := range h {
			cb.in.Sym(in)
		}
	}
	cb.refreshVi()
	root := &scfg{base: len(cb.L), end: s.f.Empty(), elems: trace.NewSymMultiset(cb.in.Len())}
	for _, in := range cb.L {
		sym := cb.in.Sym(in)
		root.dig = root.dig.Add(trace.HashElem(len(root.syms), sym, false))
		root.syms = append(root.syms, sym)
		root.outs = append(root.outs, s.f.Out(root.end, in))
		root.used = append(root.used, false)
		root.elems.Add(sym, 1)
		root.end = s.f.Step(root.end, in)
	}
	cb.frontier = []*scfg{root}
	return cb
}

// refreshVi snapshots the combination's symbolized valid-inputs multiset.
func (cb *combo) refreshVi() {
	m := cb.ivi.Sum(cb.invoked)
	sm := trace.NewSymMultiset(cb.in.Len())
	for v, n := range m {
		sm.Add(cb.in.Sym(v), n)
	}
	cb.vi = &sm
}

// step advances one combination by action a at trace index idx,
// mirroring the depth-first run's per-action dispatch.
func (s *Session) step(cb *combo, a trace.Action, idx int) error {
	switch {
	case a.Kind == trace.Inv:
		cb.invoked.Add(a.Input, 1)
		cb.refreshVi()
		return s.spend(len(cb.frontier))
	case a.Kind == trace.Res:
		return s.stepRes(cb, a)
	case a.IsInit(s.m) && s.m != 1:
		contrib := cb.finit[idx].Elems().Union(trace.NewMultiset(a.Input))
		cb.ivi = cb.ivi.Union(contrib)
		cb.refreshVi()
		return s.spend(len(cb.frontier))
	case a.IsAbort(s.n):
		ob := sobl{sym: cb.in.Sym(a.Input), value: a.SwitchValue, vi: cb.vi}
		if s.set.TemporalAbortOrder {
			// Temporal Abort-Order: the abort history covers only commits
			// made so far, so dischargeability filters the frontier now.
			var keep []*scfg
			for _, c := range cb.frontier {
				if err := s.spend(1); err != nil {
					return err
				}
				ok, err := s.discharge(cb, c, ob)
				if err != nil {
					return err
				}
				if ok {
					keep = append(keep, c)
				}
			}
			cb.frontier = keep
			return nil
		}
		cb.obligations = append(cb.obligations, ob)
		return s.spend(len(cb.frontier))
	default:
		// Interior switches carry no search choice.
		return s.spend(len(cb.frontier))
	}
}

// stepRes replaces the combination's frontier by its successor set under
// response a: claims of unused prefix lengths beyond the L anchor plus
// Validity-respecting chain extensions closing with the response's input,
// pruned by compatibility with the abort obligations seen so far.
func (s *Session) stepRes(cb *combo, a trace.Action) error {
	asym := cb.in.Sym(a.Input)
	expandOne := func(c *scfg, emit func(*scfg)) error {
		// Option 1: claim an existing unused prefix length beyond base.
		for k := c.base; k < len(c.syms); k++ {
			if !c.used[k] && c.syms[k] == asym && c.outs[k] == a.Output {
				emit(claimS(c, k))
			}
		}
		// Option 2: extend the chain. The whole extended history must
		// satisfy Validity at this index: elems ⊆ vi.
		if !c.elems.SubsetOf(cb.vi) {
			return nil
		}
		avail := cb.vi.Clone()
		avail.SubtractAll(&c.elems)
		if avail.Size() == 0 {
			return nil
		}
		visited := make(map[trace.Digest]struct{}, 8)
		return s.extendS(cb, c, a, asym, &avail, visited, nil, nil, c.end, c.dig, check.SleepSet{}, emit)
	}
	next, err := check.ExpandFrontier(s.ctx, cb.frontier, s.set, s.spend,
		func(c *scfg) trace.Digest { return c.dig }, expandOne)
	if err != nil {
		if errors.Is(err, check.ErrFrontierLimit) {
			return ErrMemo
		}
		return err
	}
	cb.frontier = next
	return nil
}

// claimS returns c with prefix length k+1 marked claimed.
func claimS(c *scfg, k int) *scfg {
	used := append([]bool(nil), c.used...)
	used[k] = true
	return &scfg{
		syms:  c.syms,
		outs:  c.outs,
		used:  used,
		nused: c.nused + 1,
		base:  c.base,
		end:   c.end,
		elems: c.elems,
		dig:   c.dig.Sub(trace.HashElem(k, c.syms[k], false)).Add(trace.HashElem(k, c.syms[k], true)),
	}
}

// extendS explores chain extensions of c drawn from avail, emitting a
// successor whenever the extension closes with the response's input and
// the extended chain remains compatible with every abort obligation seen
// so far (the eager Abort-Order pruning of the depth-first engine).
//
// sleep carries the sleep set of the partial-order reduction; s.por
// guarantees no abort has been fed yet whenever pruning fires (the
// reduction disables itself at the first abort, rebuilding if needed).
func (s *Session) extendS(cb *combo, c *scfg, a trace.Action, asym trace.Sym,
	avail *trace.SymMultiset, visited map[trace.Digest]struct{},
	ext []trace.Sym, extOuts []trace.Value, st adt.State, dig trace.Digest,
	sleep check.SleepSet, emit func(*scfg)) error {

	if err := s.spend(1); err != nil {
		return err
	}
	if _, hit := visited[dig]; hit {
		return nil
	}
	visited[dig] = struct{}{}

	// Close the extension with the response's own input.
	if avail.Count(asym) > 0 && s.f.Out(st, a.Input) == a.Output {
		n := len(c.syms) + len(ext) + 1
		elems := c.elems.Clone()
		for _, sym := range ext {
			elems.Add(sym, 1)
		}
		elems.Add(asym, 1)
		if s.commitCompatible(cb, &elems) {
			syms := make([]trace.Sym, 0, n)
			syms = append(append(append(syms, c.syms...), ext...), asym)
			outs := make([]trace.Value, 0, n)
			outs = append(append(append(outs, c.outs...), extOuts...), a.Output)
			used := make([]bool, n)
			copy(used, c.used)
			used[n-1] = true
			emit(&scfg{
				syms:  syms,
				outs:  outs,
				used:  used,
				nused: c.nused + 1,
				base:  c.base,
				end:   s.f.Step(st, a.Input),
				elems: elems,
				dig:   dig.Add(trace.HashElem(n-1, asym, true)),
			})
		}
	}
	// Append any available input as an intermediate element.
	for sym := trace.Sym(0); int(sym) < avail.NumSyms(); sym++ {
		if avail.Count(sym) <= 0 {
			continue
		}
		if s.por && sleep.Has(sym) {
			s.pruned.Add(1)
			continue
		}
		in := cb.in.Value(sym)
		stIn, outIn := s.f.Step(st, in), s.f.Out(st, in)
		var childSleep check.SleepSet
		if s.por {
			childSleep = sleep.FilterIndependent(s.f, cb.in, st, in, stIn, outIn)
		}
		avail.Add(sym, -1)
		pos := len(c.syms) + len(ext)
		err := s.extendS(cb, c, a, asym, avail, visited,
			append(ext, sym), append(extOuts, outIn),
			stIn, dig.Add(trace.HashElem(pos, sym, false)), childSleep, emit)
		avail.Add(sym, 1)
		if err != nil {
			return err
		}
		if s.por {
			sleep = sleep.Add(sym)
		}
	}
	return nil
}

// commitCompatible reports whether a chain with the given element
// multiset can still be covered by every pending abort obligation
// (elems ⊆ vi at each obligation's index); no-op under temporal
// Abort-Order, whose obligations were discharged inline.
func (s *Session) commitCompatible(cb *combo, elems *trace.SymMultiset) bool {
	for _, ob := range cb.obligations {
		if !elems.SubsetOf(ob.vi) {
			return false
		}
	}
	return true
}

// discharge decides whether configuration c admits an abort history for
// obligation ob: a strict-when-required extension of c's chain by inputs
// valid at the obligation's index that r_init admits for the switch
// value. Mirrors the depth-first dischargeAt.
func (s *Session) discharge(cb *combo, c *scfg, ob sobl) (bool, error) {
	vi := ob.vi
	if vi.Count(ob.sym) < 1 {
		return false, nil
	}
	if !c.elems.SubsetOf(vi) {
		return false, nil
	}
	budget := vi.Clone()
	budget.SubtractAll(&c.elems)
	hist := make(trace.History, len(c.syms))
	var dig trace.Digest
	for p, sym := range c.syms {
		hist[p] = cb.in.Value(sym)
		dig = dig.Add(trace.HashElem(p, sym, false))
	}
	needStrict := s.m != 1 && c.nused == 0
	visited := map[trace.Digest]struct{}{}
	var rec func(h trace.History, dig trace.Digest, needStrict bool) (bool, error)
	rec = func(h trace.History, dig trace.Digest, needStrict bool) (bool, error) {
		if err := s.spend(1); err != nil {
			return false, err
		}
		if _, hit := visited[dig]; hit {
			return false, nil
		}
		visited[dig] = struct{}{}
		if !needStrict && s.rinit.Admits(ob.value, h) {
			return true, nil
		}
		for sym := trace.Sym(0); int(sym) < budget.NumSyms(); sym++ {
			if budget.Count(sym) <= 0 {
				continue
			}
			budget.Add(sym, -1)
			ok, err := rec(h.Append(cb.in.Value(sym)), dig.Add(trace.HashElem(len(h), sym, false)), false)
			budget.Add(sym, 1)
			if err != nil || ok {
				return ok, err
			}
		}
		return false, nil
	}
	return rec(hist, dig, needStrict)
}

// Verdict reports the current three-valued verdict for the trace fed so
// far (Unknown after a terminal error). Under the literal Abort-Order it
// discharges the pending abort obligations, so it can consume budget;
// results are cached per fed length.
func (s *Session) Verdict() check.Verdict {
	r, err := s.evaluate()
	switch {
	case err != nil:
		return check.Unknown
	case r.OK:
		return check.Linearizable
	default:
		return check.NotLinearizable
	}
}

// Result returns the verdict for the trace fed so far in Check's Result
// form (without Witnesses — the breadth engine does not assemble them),
// or the session's terminal error.
func (s *Session) Result() (Result, error) {
	return s.evaluate()
}

func (s *Session) evaluate() (Result, error) {
	if s.err != nil {
		return Result{Nodes: s.Nodes(), Pruned: s.Pruned()}, s.err
	}
	if s.verAt == len(s.t) {
		return s.verRes, nil
	}
	res, err := s.evaluateNow()
	if err != nil {
		s.err = err
		return Result{Nodes: s.Nodes(), Pruned: s.Pruned()}, err
	}
	s.verAt = len(s.t)
	s.verRes = res
	return res, nil
}

func (s *Session) evaluateNow() (Result, error) {
	if s.notWF != "" {
		return Result{OK: false, Reason: s.notWF, Nodes: s.Nodes(), Pruned: s.Pruned()}, nil
	}
	if s.fast != nil {
		// Fast-path delegate active: no switch action has been fed, so
		// there is a single combination with the empty init
		// interpretation, and the core's verdict is the combination's.
		if s.fastRej {
			return Result{
				OK:         false,
				Reason:     "no speculative linearization function for some init interpretation",
				FailedInit: map[int]trace.History{},
				Nodes:      s.Nodes(),
				Pruned:     s.Pruned(),
			}, nil
		}
		return Result{OK: true, Nodes: s.Nodes(), Pruned: s.Pruned()}, nil
	}
	for _, cb := range s.combos {
		ok, err := s.comboOK(cb)
		if err != nil {
			return Result{}, err
		}
		if !ok {
			finit := map[int]trace.History{}
			for i, h := range cb.finit {
				finit[i] = h.Clone()
			}
			return Result{
				OK:         false,
				Reason:     "no speculative linearization function for some init interpretation",
				FailedInit: finit,
				Nodes:      s.Nodes(),
				Pruned:     s.Pruned(),
			}, nil
		}
	}
	return Result{OK: true, Nodes: s.Nodes(), Pruned: s.Pruned()}, nil
}

// comboOK reports whether some surviving configuration of the combination
// also discharges every pending abort obligation.
func (s *Session) comboOK(cb *combo) (bool, error) {
	for _, c := range cb.frontier {
		all := true
		for _, ob := range cb.obligations {
			ok, err := s.discharge(cb, c, ob)
			if err != nil {
				return false, err
			}
			if !ok {
				all = false
				break
			}
		}
		if all {
			return true, nil
		}
	}
	return false, nil
}

// checkStreaming is the breadth-engine one-shot path of Check
// (WithWorkers(n > 1)): it feeds the whole trace through a Session.
func checkStreaming(ctx context.Context, f adt.Folder, rinit RInit, m, n int, t trace.Trace, set check.Settings) (Result, error) {
	s, err := newSessionSettings(ctx, f, rinit, m, n, set)
	if err != nil {
		return Result{}, err
	}
	if err := s.FeedAll(t); err != nil {
		return Result{Nodes: s.Nodes(), Pruned: s.Pruned()}, err
	}
	return s.Result()
}

func newSessionSettings(ctx context.Context, f adt.Folder, rinit RInit, m, n int, set check.Settings) (*Session, error) {
	if m >= n || m < 1 {
		return nil, fmt.Errorf("slin: invalid phase range (%d,%d)", m, n)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Session{
		ctx:    ctx,
		f:      f,
		rinit:  rinit,
		m:      m,
		n:      n,
		set:    set,
		budget: set.BudgetOr(DefaultBudget),
		por:    set.POR,
		phase:  map[trace.ClientID]*phaseTrack{},
		verAt:  -1,
	}
	if err := s.rebuild(); err != nil {
		return nil, err
	}
	return s, nil
}
