package slin

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/lin"
	"repro/internal/trace"
)

// Session is an incremental SLin(m,n) checker (checker API v2, DESIGN.md
// decision 11): actions are fed one at a time, and the growing trace's
// verdict is recomputed from the persistent search state instead of from
// scratch.
//
// The engine is the breadth counterpart of Check's depth-first search,
// run once per init-interpretation combination (the ∀ of Definition 19):
// each combination carries the frontier of reachable commit-chain
// configurations after the actions fed so far, anchored at that
// combination's Init-Order baseline L, together with its running
// valid-inputs multiset vi (snapshotted at every index an abort
// obligation refers back to). Responses replace a frontier by its
// successor set — claims of unused prefix lengths beyond L plus
// Validity-respecting chain extensions, exactly Check's branch set —
// deduplicated by the chains' incremental digests.
//
// Two SLin-specific wrinkles distinguish the session from lin.Session:
//
//   - Init actions change global anchors: a new init interpretation both
//     multiplies the combination set and can shrink every combination's
//     L (the LCP of more histories), which re-anchors chains
//     retroactively. Feeding an init action therefore rebuilds the
//     combinations and replays the fed trace through fresh frontiers
//     (init actions are rare — one per client per phase — so the
//     amortized cost stays incremental). For the same reason a
//     NotLinearizable verdict is *not* final before the trace's init
//     actions have all been fed: only lin.Session's verdicts are.
//   - Abort obligations are discharged at verdict time (Verdict/Result)
//     against the surviving configurations under the literal Abort-Order
//     semantics, mirroring Check's end-of-trace discharge; under
//     WithTemporalAbortOrder they filter the frontier inline, mirroring
//     Check's inline discharge.
//
// Streaming memory (DESIGN.md, decision 17). With compaction on
// (check.WithCompaction, the default) a configuration's inert chain
// prefix — the L anchor plus every leading claimed entry, untouchable
// under all future transitions — is dropped from per-configuration
// storage and replaced by a shared trace.ChainPrefix summary. The chain
// digest is a commutative sum of per-position components, so compaction
// preserves the configuration's memo identity. Unlike lin.Session, the
// summary always retains the dropped input values (shared, once per
// summary): abort discharge reconstructs full chain histories, so the
// slin session's memory is bounded by one value sequence per distinct
// compacted prefix plus the live suffixes, not fully flat. The fed
// trace itself is recorded only while a replay can still need it (init
// actions possible, fast path active, or the reduction still live on an
// order-sensitive relation); pure streaming shapes drop it.
//
// One budget spans the session (replays and verdict-time discharges
// included) — or, with check.WithFeedBudget, the spend counter is
// rebased at every Feed so one heavy-tailed action cannot starve later
// feeds. On positive verdicts Result assembles Witnesses (one per
// init-interpretation combination) from the assignment trails of a
// surviving configuration unless check.WithWitness(false).
type Session struct {
	ctx    context.Context
	f      adt.Folder
	rinit  RInit
	m, n   int
	set    check.Settings
	budget int
	nodes  atomic.Int64
	// feedBase is the nodes value at the current Feed's entry; spend
	// charges against nodes−feedBase when FeedBudget is set (always 0
	// with the default lifetime budget). Written only between
	// expansions, so concurrent spend calls read it race-free.
	feedBase int64
	// por is the live state of the partial-order reduction: it starts as
	// set.POR and flips off permanently at the first abort action fed —
	// abort histories extend chains as sequences, so pruned extension
	// orders become observable (Result.Pruned documents the rationale) —
	// unless the RInit declares its Admits predicate order-insensitive
	// (OrderInsensitive), which keeps the reduction on across aborts.
	// If pruning already happened by then, the frontiers are rebuilt by
	// an unreduced replay, so every verdict equals the one-shot Check of
	// the fed prefix. pruned counts skipped branches (atomic: expansion
	// workers prune concurrently).
	por    bool
	pruned atomic.Int64

	// t records the fed trace for replays (init rebuilds, fast-path
	// fallback, POR-disable rebuilds); record is dropped — and t
	// released — once no replay can ever be needed (m == 1, no fast
	// delegate, reduction off or order-insensitive), bounding streaming
	// memory. fed counts fed actions independently of t.
	t      trace.Trace
	record bool
	fed    int

	phase    map[trace.ClientID]*phaseTrack
	notWF    string
	err      error
	initIdx  []int
	initReps [][]trace.History
	combos   []*combo

	// verdict cache: verAt is the fed length verRes was computed for
	// (-1 when stale).
	verAt  int
	verRes Result

	// fast, when non-nil, is the ADT-specialized streaming core the
	// session delegates to instead of the combination frontiers
	// (DESIGN.md, decision 15; NewSessionFast). Sound only for m == 1,
	// where SLin(1,n) restricted to sig coincides with Lin (Theorem 2):
	// any switch action falls back to the exact engine by replaying the
	// fed trace (s.t) through fresh frontiers, exactly like an init
	// rebuild. Fast-path work never spends the budget; it is accounted
	// separately in fastNodes (one per fed action).
	fast      lin.FastChecker
	fastRej   bool // core rejected: NotLinearizable, final
	fastNodes int
	fastPend  map[trace.ClientID]int // client -> pending invocation's trace index
}

// phaseTrack is the incremental per-client state machine of Definition 34
// ((m,n)-well-formed client sub-traces), mirroring trace.PhaseWellFormed.
type phaseTrack struct {
	state   int // 0 idle, 1 pending, 2 ready, 3 done
	pending trace.Value
}

// combo is the session state of one init-interpretation combination.
type combo struct {
	finit   map[int]trace.History
	L       trace.History
	in      *trace.Interner
	ivi     trace.Multiset
	invoked trace.Multiset
	// vi is the current symbolized valid-inputs multiset; a fresh
	// snapshot is taken whenever it changes, so abort obligations can
	// alias the snapshot current at their index.
	vi          *trace.SymMultiset
	obligations []sobl
	frontier    []*scfg
}

// sobl is an abort obligation: the pending input's interned symbol, the
// switch value to interpret, the valid-inputs snapshot of the abort's
// trace index, and that index (keying the witness's abort history).
type sobl struct {
	sym   trace.Sym
	value trace.Value
	vi    *trace.SymMultiset
	idx   int
}

// scfg is one frontier configuration: a commit-history chain anchored at
// the combination's L (prefix lengths ≤ base are never claimable).
// Configurations are immutable once constructed.
//
// pre, when non-nil, summarizes a compacted inert chain prefix
// (trace.ChainPrefix): suffix index k is absolute chain position
// pre.N + k, dig remains the full-chain digest, and pre.Vals always
// holds the dropped values (abort discharge rebuilds full histories).
// elems stays the FULL chain's element multiset — Validity and
// discharge compare it against vi snapshots — so compaction never
// adjusts it.
type scfg struct {
	pre   *trace.ChainPrefix
	syms  []trace.Sym
	outs  []trace.Value
	used  []bool
	nused int
	base  int // absolute anchor length (len(L)); positions < base unclaimable
	end   adt.State
	elems trace.SymMultiset
	dig   trace.Digest
	// sleep is the carried sleep set of the DAG-level reduction
	// (decision 17): the set in force when this configuration was
	// emitted, seeding the next response's extension search. Zero
	// unless the reduction is live and the expansion sequential.
	sleep check.SleepSet
	// asn is the assignment trail (response trace index -> absolute
	// claimed chain length) along this configuration's lineage, for
	// witness assembly; nil when witnesses are off.
	asn *sasn
	// abt records abort histories discharged inline under temporal
	// Abort-Order along this lineage (witness assembly only).
	abt *sabt
}

type sasn struct {
	prev *sasn
	res  int
	k    int
}

type sabt struct {
	prev *sabt
	idx  int
	h    trace.History
}

// scompactMin is the inert prefix length a configuration must accumulate
// before compaction absorbs it (see lin's compactMin).
const scompactMin = 32

// NewSession starts an incremental SLin(m,n) check of an initially empty
// trace. It validates the phase range like Check.
func NewSession(ctx context.Context, f adt.Folder, rinit RInit, m, n int, opts ...check.Option) (*Session, error) {
	return newSessionSettings(ctx, f, rinit, m, n, check.NewSettings(opts...))
}

// NewSessionFast is NewSession with fast-path dispatch (DESIGN.md,
// decision 15): for m == 1 — where SLin(1,n) restricted to sig coincides
// with Lin (Theorem 2) — and a folder with a streaming specialized core
// (register, consensus), Feed costs O(1) amortized per action and spends
// no budget while the trace stays inside the core's fragment. The first
// action outside the fragment — including any switch action, which
// Theorem 2's sig restriction excludes — falls back transparently by
// replaying the fed trace through the exact frontiers. check.WithExact,
// m > 1, or a folder without a streaming core all yield a plain exact
// session. Verdicts agree with NewSession on every prefix either way.
func NewSessionFast(ctx context.Context, f adt.Folder, rinit RInit, m, n int, opts ...check.Option) (*Session, error) {
	set := check.NewSettings(opts...)
	s, err := newSessionSettings(ctx, f, rinit, m, n, set)
	if err != nil {
		return nil, err
	}
	if m == 1 && !set.Exact {
		s.fast = lin.NewFastChecker(f)
		s.fastPend = map[trace.ClientID]int{}
		s.record = true // fallback replays the fed trace
	}
	return s, nil
}

func (s *Session) spend(n int) error {
	if n <= 0 {
		return nil
	}
	v := s.nodes.Add(int64(n))
	if v-s.feedBase > int64(s.budget) {
		return ErrBudget
	}
	if v&ctxPollMask < int64(n) {
		if err := s.ctx.Err(); err != nil {
			return err
		}
	}
	return nil
}

// dagSleep reports whether the DAG-level sleep-set carry is active:
// sequential expansion only (the parallel path's first-insert-wins
// deduplication cannot merge carried sets) and only while the reduction
// itself is live.
func (s *Session) dagSleep() bool { return s.por && s.set.Workers <= 1 }

// recording reports whether a future Feed could still need to replay the
// fed trace: init rebuilds (m > 1), fast-path fallback, or a
// POR-disabling abort on an order-sensitive relation.
func (s *Session) recording() bool {
	return s.fast != nil || s.m != 1 || (s.por && !IsOrderInsensitive(s.rinit))
}

// refreshRecording drops the recorded trace once recording() turned
// false; recording is monotone (por never re-enables, fast never
// reattaches), so the release is permanent.
func (s *Session) refreshRecording() {
	if s.record && !s.recording() {
		s.record = false
		s.t = nil
	}
}

// Len returns the number of actions fed so far.
func (s *Session) Len() int { return s.fed }

// Nodes returns the cumulative number of search nodes spent, plus — for
// fast-path sessions — one node per action the specialized core
// processed (fast-path nodes are not charged against the budget).
func (s *Session) Nodes() int { return int(s.nodes.Load()) + s.fastNodes }

// Pruned returns the cumulative number of extension branches the
// partial-order reduction skipped, including branches of frontiers later
// discarded by an unreduced replay (0 with check.WithPOR(false)).
func (s *Session) Pruned() int { return int(s.pruned.Load()) }

// Feed appends action a to the trace under check. Errors (budget or memo
// exhaustion, cancellation, actions outside sig(m,n), switch values
// without interpretations) are terminal; (m,n)-ill-formed traces yield a
// NotLinearizable verdict instead, matching Check.
func (s *Session) Feed(a trace.Action) error {
	if s.err != nil {
		return s.err
	}
	if err := s.ctx.Err(); err != nil {
		s.err = err
		return err
	}
	if !trace.InSig(a, s.m, s.n) {
		s.err = fmt.Errorf("slin: action %v outside sig(%d,%d)", a, s.m, s.n)
		return s.err
	}
	if s.set.FeedBudget {
		s.feedBase = s.nodes.Load()
	}
	if s.fast != nil {
		return s.feedFast(a)
	}
	return s.feedExact(a)
}

// feedExact is Feed's frontier-engine path (every session without an
// active fast-path delegate).
func (s *Session) feedExact(a trace.Action) error {
	idx := s.fed
	s.fed++
	if s.record {
		s.t = append(s.t, a)
	}
	s.verAt = -1
	if s.notWF != "" {
		return nil // verdict already final
	}
	s.trackWF(a)
	if s.notWF != "" {
		return nil
	}
	if a.IsInit(s.m) && s.m != 1 {
		reps := s.rinit.Representatives(a.SwitchValue)
		if len(reps) == 0 {
			s.err = fmt.Errorf("slin: switch value %q has no interpretations", a.SwitchValue)
			return s.err
		}
		s.initIdx = append(s.initIdx, idx)
		s.initReps = append(s.initReps, reps)
		if err := s.rebuild(); err != nil {
			s.err = err
			return err
		}
		return nil
	}
	if a.IsAbort(s.n) && s.por && !IsOrderInsensitive(s.rinit) {
		// First abort fed: the reduction stops being sound from here on
		// (see the por field) — unless the relation declares its Admits
		// predicate order-insensitive, in which case the pruned orders
		// stay unobservable and the reduction survives the abort. If it
		// already pruned configurations, the surviving frontiers
		// under-approximate the unreduced ones, so replay the fed trace
		// — including this abort — unreduced.
		s.por = false
		if s.pruned.Load() > 0 {
			if err := s.rebuild(); err != nil {
				s.err = err
				return err
			}
			s.refreshRecording()
			return nil
		}
		s.refreshRecording()
	}
	for _, cb := range s.combos {
		if err := s.step(cb, a, idx); err != nil {
			s.err = err
			return err
		}
	}
	return nil
}

// feedFast is Feed's fast-path delegate (m == 1): the same
// (1,n)-well-formedness bookkeeping as the exact path, with the
// specialized core deciding the verdict. Switch actions — outside
// Theorem 2's sig restriction — and fragment exits fall back by
// replaying the fed trace through fresh frontiers (the init-rebuild
// machinery), after which the session is exact. A rejected (or
// ill-formed) verdict is final, but subsequent actions still maintain
// the well-formedness state so reasons keep matching the exact session.
func (s *Session) feedFast(a trace.Action) error {
	if a.Kind == trace.Swi {
		s.fast, s.fastPend = nil, nil
		if s.notWF == "" {
			if err := s.rebuild(); err != nil {
				s.err = err
				return err
			}
		}
		err := s.feedExact(a)
		s.refreshRecording()
		return err
	}
	idx := s.fed
	s.fed++
	s.t = append(s.t, a)
	s.verAt = -1
	if s.notWF != "" {
		return nil // verdict already final
	}
	s.trackWF(a)
	if s.notWF != "" {
		return nil
	}
	switch a.Kind {
	case trace.Inv:
		if !s.fastRej {
			switch s.fast.Inv(a.Input, idx) {
			case lin.FastExit:
				return s.fastFallback()
			case lin.FastReject:
				s.fastRej = true
			}
		}
		s.fastNodes++
		s.fastPend[a.Client] = idx
	case trace.Res:
		if !s.fastRej {
			switch s.fast.Res(a.Input, a.Output, s.fastPend[a.Client], idx) {
			case lin.FastExit:
				return s.fastFallback()
			case lin.FastReject:
				s.fastRej = true
			}
		}
		s.fastNodes++
	}
	return nil
}

// fastFallback abandons the fast-path delegate after a fragment exit:
// the fed trace (which already includes the triggering action) is
// replayed through fresh frontiers, spending budget from zero, after
// which the session behaves as an exact one fed the same actions.
func (s *Session) fastFallback() error {
	s.fast, s.fastPend = nil, nil
	if err := s.rebuild(); err != nil {
		s.err = err
		return err
	}
	s.refreshRecording()
	return nil
}

// FeedAll feeds every action of t in order, stopping at the first
// terminal error.
func (s *Session) FeedAll(t trace.Trace) error {
	for _, a := range t {
		if err := s.Feed(a); err != nil {
			return err
		}
	}
	return nil
}

// trackWF advances the per-client (m,n)-well-formedness state machine
// over the actions of the client's (m,n)-sub-trace (interior switches are
// projected away, as in Definition 33).
func (s *Session) trackWF(a trace.Action) {
	if a.Kind == trace.Swi && !a.IsInit(s.m) && !a.IsAbort(s.n) {
		return // interior switch: not part of any client sub-trace
	}
	p := s.phase[a.Client]
	if p == nil {
		p = &phaseTrack{}
		s.phase[a.Client] = p
	}
	bad := func() { s.notWF = fmt.Sprintf("trace is not (%d,%d)-well-formed", s.m, s.n) }
	switch {
	case a.Kind == trace.Inv:
		switch p.state {
		case 0:
			if s.m != 1 {
				bad()
				return
			}
		case 2: // ready: next operation
		default:
			bad()
			return
		}
		p.state, p.pending = 1, a.Input
	case a.IsInit(s.m):
		if s.m == 1 || p.state != 0 {
			bad()
			return
		}
		p.state, p.pending = 1, a.Input
	case a.Kind == trace.Res:
		if p.state != 1 || a.Input != p.pending {
			bad()
			return
		}
		p.state = 2
	case a.IsAbort(s.n):
		if p.state != 1 || a.Input != p.pending {
			bad()
			return
		}
		p.state = 3
	}
}

// rebuild recomputes the init-interpretation combinations (the
// mixed-radix product over the representatives of every fed init action)
// and replays the fed trace through a fresh frontier per combination.
func (s *Session) rebuild() error {
	s.combos = nil
	combo := make([]int, len(s.initIdx))
	for {
		finit := map[int]trace.History{}
		for k, i := range s.initIdx {
			finit[i] = s.initReps[k][combo[k]]
		}
		cb := s.newCombo(finit)
		for idx, a := range s.t {
			if err := s.step(cb, a, idx); err != nil {
				return err
			}
		}
		s.combos = append(s.combos, cb)
		k := 0
		for ; k < len(combo); k++ {
			combo[k]++
			if combo[k] < len(s.initReps[k]) {
				break
			}
			combo[k] = 0
		}
		if k == len(combo) {
			break
		}
	}
	return nil
}

// newCombo builds the initial state of one combination: the L anchor, an
// empty valid-inputs multiset and the single L-anchored configuration.
func (s *Session) newCombo(finit map[int]trace.History) *combo {
	cb := &combo{
		finit:   finit,
		in:      trace.NewInterner(),
		ivi:     trace.Multiset{},
		invoked: trace.Multiset{},
	}
	if s.m != 1 {
		var hists []trace.History
		for _, h := range finit {
			hists = append(hists, h)
		}
		cb.L = trace.LCP(hists)
	}
	for _, h := range finit {
		for _, in := range h {
			cb.in.Sym(in)
		}
	}
	cb.refreshVi()
	root := &scfg{base: len(cb.L), end: s.f.Empty(), elems: trace.NewSymMultiset(cb.in.Len())}
	for _, in := range cb.L {
		sym := cb.in.Sym(in)
		root.dig = root.dig.Add(trace.HashElem(len(root.syms), sym, false))
		root.syms = append(root.syms, sym)
		root.outs = append(root.outs, s.f.Out(root.end, in))
		root.used = append(root.used, false)
		root.elems.Add(sym, 1)
		root.end = s.f.Step(root.end, in)
	}
	cb.frontier = []*scfg{root}
	return cb
}

// refreshVi snapshots the combination's symbolized valid-inputs multiset.
func (cb *combo) refreshVi() {
	m := cb.ivi.Sum(cb.invoked)
	sm := trace.NewSymMultiset(cb.in.Len())
	for v, n := range m {
		sm.Add(cb.in.Sym(v), n)
	}
	cb.vi = &sm
}

// step advances one combination by action a at trace index idx,
// mirroring the depth-first run's per-action dispatch.
func (s *Session) step(cb *combo, a trace.Action, idx int) error {
	switch {
	case a.Kind == trace.Inv:
		cb.invoked.Add(a.Input, 1)
		cb.refreshVi()
		return s.spend(len(cb.frontier))
	case a.Kind == trace.Res:
		return s.stepRes(cb, a, idx)
	case a.IsInit(s.m) && s.m != 1:
		contrib := cb.finit[idx].Elems().Union(trace.NewMultiset(a.Input))
		cb.ivi = cb.ivi.Union(contrib)
		cb.refreshVi()
		return s.spend(len(cb.frontier))
	case a.IsAbort(s.n):
		ob := sobl{sym: cb.in.Sym(a.Input), value: a.SwitchValue, vi: cb.vi, idx: idx}
		if s.set.TemporalAbortOrder {
			// Temporal Abort-Order: the abort history covers only commits
			// made so far, so dischargeability filters the frontier now.
			var keep []*scfg
			for _, c := range cb.frontier {
				if err := s.spend(1); err != nil {
					return err
				}
				h, ok, err := s.discharge(cb, c, ob)
				if err != nil {
					return err
				}
				if ok {
					if s.set.Witness {
						c.abt = &sabt{prev: c.abt, idx: ob.idx, h: h.Clone()}
					}
					keep = append(keep, c)
				}
			}
			cb.frontier = keep
			return nil
		}
		cb.obligations = append(cb.obligations, ob)
		return s.spend(len(cb.frontier))
	default:
		// Interior switches carry no search choice.
		return s.spend(len(cb.frontier))
	}
}

// stepRes replaces the combination's frontier by its successor set under
// response a: claims of unused prefix lengths beyond the L anchor plus
// Validity-respecting chain extensions closing with the response's input,
// pruned by compatibility with the abort obligations seen so far. With
// compaction on, each successor's inert prefix is then absorbed into a
// shared summary.
func (s *Session) stepRes(cb *combo, a trace.Action, resIdx int) error {
	asym := cb.in.Sym(a.Input)
	dagSleep := s.dagSleep()
	expandOne := func(c *scfg, emit func(*scfg)) error {
		// Option 1: claim an existing unused prefix length beyond base
		// (compacted positions are claimed or below base, so scanning the
		// retained suffix is exhaustive).
		start := c.base - c.pre.Len()
		if start < 0 {
			start = 0
		}
		for k := start; k < len(c.syms); k++ {
			if !c.used[k] && c.syms[k] == asym && c.outs[k] == a.Output {
				emit(s.claimS(c, k, resIdx))
			}
		}
		// Option 2: extend the chain. The whole extended history must
		// satisfy Validity at this index: elems ⊆ vi.
		if !c.elems.SubsetOf(cb.vi) {
			return nil
		}
		avail := cb.vi.Clone()
		avail.SubtractAll(&c.elems)
		if avail.Size() == 0 {
			return nil
		}
		var seed check.SleepSet
		if dagSleep {
			seed = c.sleep
		}
		visited := make(map[trace.Digest]struct{}, 8)
		return s.extendS(cb, c, a, asym, resIdx, &avail, visited, nil, nil, c.end, c.dig, seed, emit)
	}
	var merge func(kept, dup *scfg) *scfg
	if dagSleep {
		// Two expansion paths reached the same configuration digest with
		// possibly different carried sleep sets: only symbols slept on
		// both stay asleep (union would prune orders one path still owes).
		merge = func(kept, dup *scfg) *scfg {
			kept.sleep = kept.sleep.Intersect(dup.sleep)
			return kept
		}
	}
	next, err := check.ExpandFrontier(s.ctx, cb.frontier, s.set, s.spend,
		func(c *scfg) trace.Digest { return c.dig }, merge, expandOne)
	if err != nil {
		if errors.Is(err, check.ErrFrontierLimit) {
			return ErrMemo
		}
		return err
	}
	if s.set.Compact {
		s.compactS(cb, next)
	}
	cb.frontier = next
	return nil
}

// claimS returns c with suffix position k (absolute position pre.N + k)
// marked claimed by resIdx. A claim only flips a mark — it commutes with
// every extension append — so the carried sleep set passes through.
func (s *Session) claimS(c *scfg, k, resIdx int) *scfg {
	pos := c.pre.Len() + k
	used := append([]bool(nil), c.used...)
	used[k] = true
	n := &scfg{
		pre:   c.pre,
		syms:  c.syms,
		outs:  c.outs,
		used:  used,
		nused: c.nused + 1,
		base:  c.base,
		end:   c.end,
		elems: c.elems,
		dig:   c.dig.Sub(trace.HashElem(pos, c.syms[k], false)).Add(trace.HashElem(pos, c.syms[k], true)),
		sleep: c.sleep,
		abt:   c.abt,
	}
	if s.set.Witness {
		n.asn = &sasn{prev: c.asn, res: resIdx, k: pos + 1}
	}
	return n
}

// extendS explores chain extensions of c drawn from avail, emitting a
// successor whenever the extension closes with the response's input and
// the extended chain remains compatible with every abort obligation seen
// so far (the eager Abort-Order pruning of the depth-first engine).
//
// sleep carries the sleep set of the partial-order reduction, seeded by
// the configuration's carried set under the DAG-level carry (decision
// 17); s.por guarantees no order-sensitive abort has been fed yet
// whenever pruning fires (the reduction disables itself at the first
// such abort, rebuilding if needed).
func (s *Session) extendS(cb *combo, c *scfg, a trace.Action, asym trace.Sym, resIdx int,
	avail *trace.SymMultiset, visited map[trace.Digest]struct{},
	ext []trace.Sym, extOuts []trace.Value, st adt.State, dig trace.Digest,
	sleep check.SleepSet, emit func(*scfg)) error {

	if err := s.spend(1); err != nil {
		return err
	}
	if _, hit := visited[dig]; hit {
		return nil
	}
	visited[dig] = struct{}{}

	// Close the extension with the response's own input.
	if avail.Count(asym) > 0 && s.f.Out(st, a.Input) == a.Output {
		n := len(c.syms) + len(ext) + 1
		abs := c.pre.Len() + n
		elems := c.elems.Clone()
		for _, sym := range ext {
			elems.Add(sym, 1)
		}
		elems.Add(asym, 1)
		if s.commitCompatible(cb, &elems) {
			stIn := s.f.Step(st, a.Input)
			var carry check.SleepSet
			if s.dagSleep() {
				carry = sleep.FilterIndependent(s.f, cb.in, st, a.Input, stIn, a.Output)
			}
			syms := make([]trace.Sym, 0, n)
			syms = append(append(append(syms, c.syms...), ext...), asym)
			outs := make([]trace.Value, 0, n)
			outs = append(append(append(outs, c.outs...), extOuts...), a.Output)
			used := make([]bool, n)
			copy(used, c.used)
			used[n-1] = true
			nc := &scfg{
				pre:   c.pre,
				syms:  syms,
				outs:  outs,
				used:  used,
				nused: c.nused + 1,
				base:  c.base,
				end:   stIn,
				elems: elems,
				dig:   dig.Add(trace.HashElem(abs-1, asym, true)),
				sleep: carry,
				abt:   c.abt,
			}
			if s.set.Witness {
				nc.asn = &sasn{prev: c.asn, res: resIdx, k: abs}
			}
			emit(nc)
		}
	}
	// Append any available input as an intermediate element.
	for sym := trace.Sym(0); int(sym) < avail.NumSyms(); sym++ {
		if avail.Count(sym) <= 0 {
			continue
		}
		if s.por && sleep.Has(sym) {
			s.pruned.Add(1)
			continue
		}
		in := cb.in.Value(sym)
		stIn, outIn := s.f.Step(st, in), s.f.Out(st, in)
		var childSleep check.SleepSet
		if s.por {
			childSleep = sleep.FilterIndependent(s.f, cb.in, st, in, stIn, outIn)
		}
		avail.Add(sym, -1)
		pos := c.pre.Len() + len(c.syms) + len(ext)
		err := s.extendS(cb, c, a, asym, resIdx, avail, visited,
			append(ext, sym), append(extOuts, outIn),
			stIn, dig.Add(trace.HashElem(pos, sym, false)), childSleep, emit)
		avail.Add(sym, 1)
		if err != nil {
			return err
		}
		if s.por {
			sleep = sleep.Add(sym)
		}
	}
	return nil
}

// compactS absorbs each new configuration's inert chain prefix — the
// leading run of positions that are below the L anchor or already
// claimed, untouchable under every future transition — into a shared
// ChainPrefix summary once the run reaches scompactMin. Compaction
// changes only the representation: the digest (the memo identity)
// already sums the dropped components at their final flags, elems stays
// the full-chain multiset, and the summary's retained values let abort
// discharge and witness assembly rebuild full histories. The per-pass
// cache shares summaries between configurations compacting through an
// identical prefix (keyed by the prefix digest, the same collision
// trust as the memo maps).
func (s *Session) compactS(cb *combo, next []*scfg) {
	var cache map[trace.Digest]*trace.ChainPrefix
	for _, c := range next {
		preN := c.pre.Len()
		run := 0
		for run < len(c.syms) && (preN+run < c.base || c.used[run]) {
			run++
		}
		if run < scompactMin {
			continue
		}
		if cache == nil {
			cache = map[trace.Digest]*trace.ChainPrefix{}
		}
		s.compactCfgS(cb, c, run, cache)
	}
}

// compactCfgS drops c's first run suffix entries into a summary
// cumulative with any prior one. The retained suffix is copied into
// right-sized arrays so the dropped storage is actually released —
// re-slicing would pin the old backing arrays.
func (s *Session) compactCfgS(cb *combo, c *scfg, run int, cache map[trace.Digest]*trace.ChainPrefix) {
	preN := c.pre.Len()
	var pd trace.Digest
	if c.pre != nil {
		pd = c.pre.Dig
	}
	for i := 0; i < run; i++ {
		pd = pd.Add(trace.HashElem(preN+i, c.syms[i], c.used[i]))
	}
	pre, ok := cache[pd]
	if !ok {
		var elems trace.SymMultiset
		vals := make([]trace.Value, 0, preN+run)
		if c.pre != nil {
			elems = c.pre.Elems.Clone()
			vals = append(vals, c.pre.Vals...)
		}
		for i := 0; i < run; i++ {
			elems.Add(c.syms[i], 1)
			vals = append(vals, cb.in.Value(c.syms[i]))
		}
		pre = &trace.ChainPrefix{N: preN + run, Elems: elems, Dig: pd, Vals: vals}
		cache[pd] = pre
	}
	c.pre = pre
	c.syms = append([]trace.Sym(nil), c.syms[run:]...)
	c.outs = append([]trace.Value(nil), c.outs[run:]...)
	c.used = append([]bool(nil), c.used[run:]...)
}

// commitCompatible reports whether a chain with the given element
// multiset can still be covered by every pending abort obligation
// (elems ⊆ vi at each obligation's index); no-op under temporal
// Abort-Order, whose obligations were discharged inline.
func (s *Session) commitCompatible(cb *combo, elems *trace.SymMultiset) bool {
	for _, ob := range cb.obligations {
		if !elems.SubsetOf(ob.vi) {
			return false
		}
	}
	return true
}

// discharge decides whether configuration c admits an abort history for
// obligation ob: a strict-when-required extension of c's chain by inputs
// valid at the obligation's index that r_init admits for the switch
// value. Mirrors the depth-first dischargeAt; on success it returns the
// admitted history (the full chain — compacted prefix values included —
// plus the found extension).
func (s *Session) discharge(cb *combo, c *scfg, ob sobl) (trace.History, bool, error) {
	vi := ob.vi
	if vi.Count(ob.sym) < 1 {
		return nil, false, nil
	}
	if !c.elems.SubsetOf(vi) {
		return nil, false, nil
	}
	budget := vi.Clone()
	budget.SubtractAll(&c.elems)
	preN := c.pre.Len()
	hist := make(trace.History, preN+len(c.syms))
	if preN > 0 {
		copy(hist, c.pre.Vals)
	}
	for i, sym := range c.syms {
		hist[preN+i] = cb.in.Value(sym)
	}
	var dig trace.Digest
	for p, v := range hist {
		dig = dig.Add(trace.HashElem(p, cb.in.Sym(v), false))
	}
	needStrict := s.m != 1 && c.nused == 0
	visited := map[trace.Digest]struct{}{}
	var rec func(h trace.History, dig trace.Digest, needStrict bool) (trace.History, bool, error)
	rec = func(h trace.History, dig trace.Digest, needStrict bool) (trace.History, bool, error) {
		if err := s.spend(1); err != nil {
			return nil, false, err
		}
		if _, hit := visited[dig]; hit {
			return nil, false, nil
		}
		visited[dig] = struct{}{}
		if !needStrict && s.rinit.Admits(ob.value, h) {
			return h, true, nil
		}
		for sym := trace.Sym(0); int(sym) < budget.NumSyms(); sym++ {
			if budget.Count(sym) <= 0 {
				continue
			}
			budget.Add(sym, -1)
			fh, ok, err := rec(h.Append(cb.in.Value(sym)), dig.Add(trace.HashElem(len(h), sym, false)), false)
			budget.Add(sym, 1)
			if err != nil || ok {
				return fh, ok, err
			}
		}
		return nil, false, nil
	}
	return rec(hist, dig, needStrict)
}

// Verdict reports the current three-valued verdict for the trace fed so
// far (Unknown after a terminal error). Under the literal Abort-Order it
// discharges the pending abort obligations, so it can consume budget;
// results are cached per fed length.
func (s *Session) Verdict() check.Verdict {
	r, err := s.evaluate()
	switch {
	case err != nil:
		return check.Unknown
	case r.OK:
		return check.Linearizable
	default:
		return check.NotLinearizable
	}
}

// Result returns the verdict for the trace fed so far in Check's Result
// form, or the session's terminal error. Positive verdicts carry one
// Witness per init-interpretation combination — assembled from the
// assignment trail of a surviving configuration — unless
// check.WithWitness(false).
func (s *Session) Result() (Result, error) {
	return s.evaluate()
}

func (s *Session) evaluate() (Result, error) {
	if s.err != nil {
		return Result{Nodes: s.Nodes(), Pruned: s.Pruned()}, s.err
	}
	if s.verAt == s.fed {
		return s.verRes, nil
	}
	res, err := s.evaluateNow()
	if err != nil {
		s.err = err
		return Result{Nodes: s.Nodes(), Pruned: s.Pruned()}, err
	}
	s.verAt = s.fed
	s.verRes = res
	return res, nil
}

func (s *Session) evaluateNow() (Result, error) {
	if s.notWF != "" {
		return Result{OK: false, Reason: s.notWF, Nodes: s.Nodes(), Pruned: s.Pruned()}, nil
	}
	if s.fast != nil {
		// Fast-path delegate active: no switch action has been fed, so
		// there is a single combination with the empty init
		// interpretation, and the core's verdict is the combination's.
		if s.fastRej {
			return Result{
				OK:         false,
				Reason:     "no speculative linearization function for some init interpretation",
				FailedInit: map[int]trace.History{},
				Nodes:      s.Nodes(),
				Pruned:     s.Pruned(),
			}, nil
		}
		res := Result{OK: true, Nodes: s.Nodes(), Pruned: s.Pruned()}
		if s.set.Witness {
			w := Witness{
				Init:    map[int]trace.History{},
				Commits: map[int]trace.History{},
				Aborts:  map[int]trace.History{},
			}
			for i, h := range s.fast.Witness() {
				w.Commits[i] = h
			}
			res.Witnesses = []Witness{w}
		}
		return res, nil
	}
	var witnesses []Witness
	for _, cb := range s.combos {
		c, aborts, err := s.comboOK(cb)
		if err != nil {
			return Result{}, err
		}
		if c == nil {
			finit := map[int]trace.History{}
			for i, h := range cb.finit {
				finit[i] = h.Clone()
			}
			return Result{
				OK:         false,
				Reason:     "no speculative linearization function for some init interpretation",
				FailedInit: finit,
				Nodes:      s.Nodes(),
				Pruned:     s.Pruned(),
			}, nil
		}
		if s.set.Witness {
			witnesses = append(witnesses, s.switness(cb, c, aborts))
		}
	}
	return Result{OK: true, Witnesses: witnesses, Nodes: s.Nodes(), Pruned: s.Pruned()}, nil
}

// comboOK returns the first surviving configuration of the combination
// that also discharges every pending abort obligation, together with the
// discharged abort histories by trace index (nil configuration when none
// survives).
func (s *Session) comboOK(cb *combo) (*scfg, map[int]trace.History, error) {
	for _, c := range cb.frontier {
		var aborts map[int]trace.History
		all := true
		for _, ob := range cb.obligations {
			h, ok, err := s.discharge(cb, c, ob)
			if err != nil {
				return nil, nil, err
			}
			if !ok {
				all = false
				break
			}
			if aborts == nil {
				aborts = map[int]trace.History{}
			}
			aborts[ob.idx] = h
		}
		if all {
			return c, aborts, nil
		}
	}
	return nil, nil, nil
}

// switness assembles the witness of one combination from a surviving
// configuration: its full chain (compacted prefix values plus retained
// suffix) is the longest commit history, the assignment trail maps each
// response index to its absolute claimed length — compaction never
// shifts it — and the abort histories come from verdict-time discharge
// (literal semantics) or the inline-discharge trail (temporal).
func (s *Session) switness(cb *combo, c *scfg, aborts map[int]trace.History) Witness {
	preN := c.pre.Len()
	hist := make(trace.History, preN+len(c.syms))
	if preN > 0 {
		copy(hist, c.pre.Vals)
	}
	for i, sym := range c.syms {
		hist[preN+i] = cb.in.Value(sym)
	}
	w := Witness{
		Init:    map[int]trace.History{},
		Commits: map[int]trace.History{},
		Aborts:  map[int]trace.History{},
	}
	for i, h := range cb.finit {
		w.Init[i] = h.Clone()
	}
	for n := c.asn; n != nil; n = n.prev {
		w.Commits[n.res] = hist[:n.k].Clone()
	}
	for i, h := range aborts {
		w.Aborts[i] = h.Clone()
	}
	for n := c.abt; n != nil; n = n.prev {
		if _, ok := w.Aborts[n.idx]; !ok {
			w.Aborts[n.idx] = n.h.Clone()
		}
	}
	return w
}

// checkStreaming is the breadth-engine one-shot path of Check
// (WithWorkers(n > 1)): it feeds the whole trace through a Session.
func checkStreaming(ctx context.Context, f adt.Folder, rinit RInit, m, n int, t trace.Trace, set check.Settings) (Result, error) {
	s, err := newSessionSettings(ctx, f, rinit, m, n, set)
	if err != nil {
		return Result{}, err
	}
	if err := s.FeedAll(t); err != nil {
		return Result{Nodes: s.Nodes(), Pruned: s.Pruned()}, err
	}
	return s.Result()
}

func newSessionSettings(ctx context.Context, f adt.Folder, rinit RInit, m, n int, set check.Settings) (*Session, error) {
	if m >= n || m < 1 {
		return nil, fmt.Errorf("slin: invalid phase range (%d,%d)", m, n)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Session{
		ctx:    ctx,
		f:      f,
		rinit:  rinit,
		m:      m,
		n:      n,
		set:    set,
		budget: set.BudgetOr(DefaultBudget),
		por:    set.POR,
		phase:  map[trace.ClientID]*phaseTrack{},
		verAt:  -1,
	}
	s.record = s.recording()
	if err := s.rebuild(); err != nil {
		return nil, err
	}
	return s, nil
}
