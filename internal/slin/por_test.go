package slin

// Tests for the SLin side of the partial-order reduction (DESIGN.md,
// decision 12): the depth engine disables itself on abort-carrying
// traces, the session engine disables-and-rebuilds at the first fed
// abort, and budgets/cancellation keep their sentinels under the
// reducer.

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
	"repro/internal/workload"
)

// commutingSLinTrace is the switch-free split-decision workload (never
// SLin(1,2) by Theorem 2), maximally commuting after the first chain
// element.
func commutingSLinTrace(w int) trace.Trace { return workload.SplitDecision(w, "p") }

// orderSensitive strips any OrderInsensitive declaration off the wrapped
// relation (interface embedding promotes only RInit's methods), so tests
// can exercise the reducer's disable-on-abort path with relations whose
// production form declares order insensitivity.
type orderSensitive struct{ RInit }

// commutingAbortTrace is an abort-carrying fixture whose commuting
// same-value proposals give the reducer something to prune: w tagged
// proposals of "a", all but the last responded, the last aborting.
func commutingAbortTrace(w int) trace.Trace {
	var tr trace.Trace
	for i := 0; i < w; i++ {
		c := trace.ClientID(fmt.Sprintf("p%d", i))
		tr = append(tr, trace.Invoke(c, 1, adt.Tag(adt.ProposeInput("a"), string(c))))
	}
	for i := 0; i < w-1; i++ {
		c := trace.ClientID(fmt.Sprintf("p%d", i))
		in := adt.Tag(adt.ProposeInput("a"), string(c))
		tr = append(tr, trace.Response(c, 1, in, adt.DecideOutput("a")))
	}
	last := trace.ClientID(fmt.Sprintf("p%d", w-1))
	return append(tr, trace.Switch(last, 2, adt.Tag(adt.ProposeInput("a"), string(last)), "a"))
}

// splitAbortTrace is the split-decision workload plus one aborting
// client: never SLin(1,2), so the depth-first search explores (and the
// reducer prunes) the full commuting extension space before rejecting.
func splitAbortTrace(w int) trace.Trace {
	tr := workload.SplitDecision(w, "p")
	in := adt.Tag(adt.ProposeInput("v0"), "pa")
	tr = append(tr, trace.Invoke("pa", 1, in))
	return append(tr, trace.Switch("pa", 2, in, "v0"))
}

// TestSLinPORAccounting: on switch-free traces the reducer is active and
// cuts nodes ≥2x on the commuting shape; with WithPOR(false) nothing is
// pruned.
func TestSLinPORAccounting(t *testing.T) {
	ctx := context.Background()
	tr := commutingSLinTrace(5)
	on, err := Check(ctx, adt.Consensus{}, UniversalRInit{}, 1, 2, tr, check.WithBudget(50_000_000))
	if err != nil {
		t.Fatal(err)
	}
	off, err := Check(ctx, adt.Consensus{}, UniversalRInit{}, 1, 2, tr, check.WithBudget(50_000_000), check.WithPOR(false))
	if err != nil {
		t.Fatal(err)
	}
	if on.OK != off.OK {
		t.Fatalf("verdicts disagree: por=%v nopor=%v", on.OK, off.OK)
	}
	if off.Pruned != 0 || on.Pruned == 0 {
		t.Fatalf("pruned accounting: on=%d (want >0), off=%d (want 0)", on.Pruned, off.Pruned)
	}
	if off.Nodes < 2*on.Nodes {
		t.Fatalf("expected ≥2x reduction, got %d vs %d nodes", off.Nodes, on.Nodes)
	}
	t.Logf("switch-free slin: %d nodes unreduced, %d reduced (%.1fx), %d pruned",
		off.Nodes, on.Nodes, float64(off.Nodes)/float64(on.Nodes), on.Pruned)
}

// TestSLinPORDisabledOnAborts: with an order-sensitive relation, any
// abort action disables the depth reducer outright — identical node
// counts and zero pruning with the option on and off. (ConsensusRInit
// itself declares order insensitivity, so the fixture wraps it to strip
// the declaration.)
func TestSLinPORDisabledOnAborts(t *testing.T) {
	ctx := context.Background()
	tr := slinTestTrace() // has a switch (abort) action
	hasAbort := false
	for _, a := range tr {
		if a.IsAbort(2) {
			hasAbort = true
		}
	}
	if !hasAbort {
		t.Fatal("fixture lost its abort action")
	}
	rinit := orderSensitive{ConsensusRInit{}}
	on, err := Check(ctx, adt.Consensus{}, rinit, 1, 2, tr)
	if err != nil {
		t.Fatal(err)
	}
	off, err := Check(ctx, adt.Consensus{}, rinit, 1, 2, tr, check.WithPOR(false))
	if err != nil {
		t.Fatal(err)
	}
	if on.Pruned != 0 {
		t.Fatalf("reducer pruned %d branches on an abort-carrying trace", on.Pruned)
	}
	if on.OK != off.OK || on.Nodes != off.Nodes {
		t.Fatalf("disabled reducer must be a no-op: on=(%v,%d nodes) off=(%v,%d nodes)",
			on.OK, on.Nodes, off.OK, off.Nodes)
	}
}

// TestSLinPORSurvivesAborts: a relation declaring its Admits predicate
// order-insensitive (ConsensusRInit) keeps the depth reducer enabled on
// abort-carrying traces — pruning happens, verdicts agree with the
// unreduced search, and the reduced run never spends more nodes.
func TestSLinPORSurvivesAborts(t *testing.T) {
	ctx := context.Background()
	tr := splitAbortTrace(4)
	on, err := Check(ctx, adt.Consensus{}, ConsensusRInit{}, 1, 2, tr, check.WithBudget(50_000_000))
	if err != nil {
		t.Fatal(err)
	}
	off, err := Check(ctx, adt.Consensus{}, ConsensusRInit{}, 1, 2, tr, check.WithBudget(50_000_000), check.WithPOR(false))
	if err != nil {
		t.Fatal(err)
	}
	if on.Pruned == 0 {
		t.Fatal("reducer pruned nothing; the fixture no longer exercises the abort-surviving reduction")
	}
	if on.OK != off.OK {
		t.Fatalf("verdicts disagree across the abort: por=%v nopor=%v", on.OK, off.OK)
	}
	if on.Nodes > off.Nodes {
		t.Fatalf("reduced search spent MORE nodes than unreduced: %d > %d", on.Nodes, off.Nodes)
	}
	// The same declaration keeps the session engine reduced across the
	// abort: no disable-and-rebuild, prefix verdicts agreeing throughout.
	s, err := NewSession(ctx, adt.Consensus{}, ConsensusRInit{}, 1, 2, check.WithBudget(50_000_000))
	if err != nil {
		t.Fatal(err)
	}
	for k, a := range tr {
		if err := s.Feed(a); err != nil {
			t.Fatalf("feed %d: %v", k, err)
		}
		got, err := s.Result()
		if err != nil {
			t.Fatalf("prefix %d: %v", k+1, err)
		}
		want, err := Check(ctx, adt.Consensus{}, ConsensusRInit{}, 1, 2, tr[:k+1], check.WithBudget(50_000_000))
		if err != nil {
			t.Fatalf("one-shot prefix %d: %v", k+1, err)
		}
		if got.OK != want.OK {
			t.Fatalf("prefix %d: session %v, one-shot %v", k+1, got.OK, want.OK)
		}
	}
	if s.Pruned() == 0 {
		t.Fatal("session reducer pruned nothing across the abort")
	}
}

// TestSLinSessionAbortRebuild: a session that pruned while abort-free
// must, at the first fed abort, rebuild unreduced frontiers and keep
// agreeing with one-shot Check on every subsequent prefix. (Wrapped
// order-sensitive: ConsensusRInit's own declaration would keep the
// reducer on instead — TestSLinPORSurvivesAborts covers that path.)
func TestSLinSessionAbortRebuild(t *testing.T) {
	ctx := context.Background()
	rinit := orderSensitive{ConsensusRInit{}}
	// Commuting switch-free prefix (pruning happens), then a late switch.
	tr := commutingAbortTrace(4)

	s, err := NewSession(ctx, adt.Consensus{}, rinit, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	prunedBeforeAbort := 0
	for k, a := range tr {
		if a.IsAbort(2) {
			prunedBeforeAbort = s.Pruned()
		}
		if err := s.Feed(a); err != nil {
			t.Fatalf("feed %d: %v", k, err)
		}
		got, err := s.Result()
		if err != nil {
			t.Fatalf("prefix %d: %v", k+1, err)
		}
		want, err := Check(ctx, adt.Consensus{}, rinit, 1, 2, tr[:k+1])
		if err != nil {
			t.Fatalf("one-shot prefix %d: %v", k+1, err)
		}
		if got.OK != want.OK {
			t.Fatalf("prefix %d: session %v, one-shot %v", k+1, got.OK, want.OK)
		}
	}
	if prunedBeforeAbort == 0 {
		t.Fatal("fixture did not prune before the abort; the rebuild path was not exercised")
	}
}

// TestSLinBudgetAndCancelUnderPOR: sentinels survive the reducer.
func TestSLinBudgetAndCancelUnderPOR(t *testing.T) {
	tr := commutingSLinTrace(5)
	for _, por := range []bool{true, false} {
		res, err := Check(context.Background(), adt.Consensus{}, UniversalRInit{}, 1, 2, tr,
			check.WithBudget(30), check.WithPOR(por))
		if !errors.Is(err, ErrBudget) {
			t.Fatalf("por=%v: expected ErrBudget, got %v", por, err)
		}
		if res.OK {
			t.Fatalf("por=%v: exhausted check must not decide", por)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Check(ctx, adt.Consensus{}, UniversalRInit{}, 1, 2, tr); !errors.Is(err, context.Canceled) {
		t.Fatalf("expected context.Canceled, got %v", err)
	}
}
