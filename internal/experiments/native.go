package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/adt"
	"repro/internal/cascons"
	"repro/internal/core"
	"repro/internal/rcons"
	"repro/internal/shmem"
	"repro/internal/trace"
)

// E4RegisterVsCAS: the §2.5 motivation — uncontended consensus through
// the register-only fast path versus a CAS instruction. Measured on the
// native sync/atomic backend; absolute numbers are hardware-dependent,
// the shape (registers competitive with or cheaper than CAS, and the
// composed fast path avoiding CAS entirely) is the claim.
func E4RegisterVsCAS(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "E4",
		Title:  "uncontended native cost per operation (single goroutine)",
		Header: []string{"operation", "ns/op"},
		Notes: []string{
			"rcons fast path = splitter (2 writes, 2 reads) + V/D writes + Contention " +
				"read, all plain atomics; cascons = one CAS. The point is not that one " +
				"instruction beats six, but that the speculative object's common case " +
				"never executes a CAS (Herlihy's hierarchy makes CAS-free wait-free " +
				"consensus impossible in general — speculation buys it when uncontended).",
		},
	}
	const iters = 2_000_000

	measure := func(name string, f func(i int)) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			f(i)
		}
		ns := float64(time.Since(start).Nanoseconds()) / iters
		t.Rows = append(t.Rows, []string{name, f2(ns)})
	}

	measure("atomic register write+read", func(i int) {
		var r shmem.Register
		r.Store("v")
		_ = r.Load()
	})
	measure("CAS from ⊥", func(i int) {
		var c shmem.CASCell
		_ = c.CompareAndSwapFromBottom("v")
	})
	measure("rcons fast path (full propose)", func(i int) {
		p := rcons.NewNativePhase()
		_, _ = p.Invoke("c", adt.ProposeInput("v"))
	})
	measure("cascons switch-in (CAS path)", func(i int) {
		p := cascons.NewNativePhase()
		_, _ = p.SwitchIn("c", adt.ProposeInput("v"), "v")
	})
	return t, nil
}

// E5SharedMemContention: throughput of the composed speculative object
// versus plain CAS consensus as goroutines contend. Uncontended, the
// speculative object matches the register path; contended, it degrades
// to CAS plus the splitter overhead.
func E5SharedMemContention(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "E5",
		Title:  "native consensus instances/second by contention (fresh instance per op)",
		Header: []string{"goroutines", "speculative (RCons+CASCons)", "CAS-only", "spec fast-path rate"},
		Notes: []string{
			"Each operation runs one consensus instance to completion; contended " +
				"instances are attacked by all goroutines at once.",
		},
	}
	const rounds = 30_000

	for _, gs := range []int{1, 2, 4, 8} {
		specOps, fastCount := timeSpeculative(gs, rounds)
		casOps := timeCASOnly(gs, rounds)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", gs),
			fmt.Sprintf("%.0f/s", specOps),
			fmt.Sprintf("%.0f/s", casOps),
			pct(fastCount, rounds),
		})
	}
	return t, nil
}

// timeSpeculative runs `rounds` consensus instances, each attacked by gs
// goroutines, and returns instances/second plus how many were decided on
// the register path.
func timeSpeculative(gs, rounds int) (opsPerSec float64, fastPath int) {
	start := time.Now()
	for r := 0; r < rounds; r++ {
		obj, _ := core.NewComposer(rcons.NewNativePhase(), cascons.NewNativePhase())
		if gs == 1 {
			out, _ := obj.Invoke("g0", adt.Tag(adt.ProposeInput("v0"), "g0"))
			if out != "" {
				fastPath++ // single client always decides on the fast path
			}
			continue
		}
		var wg sync.WaitGroup
		anySwitch := false
		var mu sync.Mutex
		for g := 0; g < gs; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				c := trace.ClientID(fmt.Sprintf("g%d", g))
				_, _ = obj.Invoke(c, adt.Tag(adt.ProposeInput(fmt.Sprintf("v%d", g)), string(c)))
			}(g)
		}
		wg.Wait()
		for _, a := range obj.Trace() {
			if a.Kind == trace.Swi {
				mu.Lock()
				anySwitch = true
				mu.Unlock()
				break
			}
		}
		if !anySwitch {
			fastPath++
		}
	}
	return float64(rounds) / time.Since(start).Seconds(), fastPath
}

// timeCASOnly runs the same workload against a bare CAS cell.
func timeCASOnly(gs, rounds int) float64 {
	start := time.Now()
	for r := 0; r < rounds; r++ {
		var cell shmem.CASCell
		if gs == 1 {
			_ = cell.CompareAndSwapFromBottom("v0")
			continue
		}
		var wg sync.WaitGroup
		for g := 0; g < gs; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				_ = cell.CompareAndSwapFromBottom(trace.Value(fmt.Sprintf("v%d", g)))
			}(g)
		}
		wg.Wait()
	}
	return float64(rounds) / time.Since(start).Seconds()
}
