package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	speclin "repro"
	"repro/internal/capture"
)

// This file implements the E17 capture-hunt experiment behind
// BENCH_7.json: the runtime capture harness (ISSUE 8) stressing real
// concurrent Go structures — sync.Map as a keyed register map,
// sync.Mutex, a lazy-list set, a Michael–Scott queue — checking the
// captured histories live, flagging every seeded-bug mutant
// non-linearizable, and measuring the recording overhead against the
// identical uninstrumented loops.

// E17 canonical scales. Goroutine counts resolve at run time so the
// acceptance floor (4×GOMAXPROCS recording workers on clean runs) holds
// on any machine.
var (
	E17Ops         = 2_000  // per-goroutine operations per hunt run
	E17Keys        = 16     // map/set key space
	E17Rounds      = 10     // mutant detection retry rounds
	E17OverheadOps = 20_000 // per-goroutine operations per overhead arm
)

// E17Goroutines is the hunt worker count: the clean-run acceptance
// floor from ISSUE 8.
func E17Goroutines() int { return 4 * runtime.GOMAXPROCS(0) }

// CaptureHuntRow is one hunt run (a structure, clean or mutated),
// JSON-ready for BENCH_7.json. Wall times are captured-interleaving
// dependent, so the row's stable facts are the verdicts: clean
// structures linearizable, mutants caught.
type CaptureHuntRow struct {
	// Name identifies the row stably for the bench guard:
	// "hunt-<structure>-clean" or "hunt-<structure>-<mutant>".
	Name       string `json:"name"`
	Structure  string `json:"structure"`
	Mutant     string `json:"mutant,omitempty"`
	Goroutines int    `json:"goroutines"`
	Actions    int64  `json:"actions"`
	// Linearizable is the live verdict of the reported run (for mutants:
	// the catching run).
	Linearizable bool `json:"linearizable"`
	// Caught is set on mutant rows the checker flagged, with the 1-based
	// detection round (each round reruns with a derived seed).
	Caught        bool    `json:"caught,omitempty"`
	RoundsToCatch int     `json:"rounds_to_catch,omitempty"`
	EmptyDeqs     int64   `json:"empty_dequeues,omitempty"`
	WallMs        float64 `json:"wall_ms"`
	// ClassicalAgrees reports the optional uncapped ClassicalLin pass
	// over the same captured history agreeing with the live verdict
	// (clean runs only; omitted when the pass was not run).
	ClassicalAgrees bool `json:"classical_agrees,omitempty"`
}

// CaptureOverheadRow measures recording cost on one structure: the
// identical worker loop uninstrumented vs captured (recording plus live
// merge, no checking), JSON-ready for BENCH_7.json.
type CaptureOverheadRow struct {
	// Name is "overhead-<structure>".
	Name            string  `json:"name"`
	Structure       string  `json:"structure"`
	Goroutines      int     `json:"goroutines"`
	Ops             int64   `json:"ops"`
	RawNsPerOp      float64 `json:"raw_ns_per_op"`
	CapturedNsPerOp float64 `json:"captured_ns_per_op"`
	// CaptureThroughputRatio is captured ops/sec over raw ops/sec (≤ 1;
	// closer to 1 is cheaper recording).
	CaptureThroughputRatio float64 `json:"capture_throughput_ratio"`
}

// E17HuntRows hunts every structure: one clean run (expected
// linearizable) and up to rounds mutant runs with derived seeds
// (expected caught). classical additionally cross-checks clean runs
// with the uncapped ClassicalLin engine.
func E17HuntRows(ctx context.Context, goroutines, ops, keys, rounds int, classical bool) ([]CaptureHuntRow, error) {
	var out []CaptureHuntRow
	for _, structure := range capture.Structures {
		cfg := capture.Config{
			Structure:  structure,
			Goroutines: goroutines,
			Ops:        ops,
			Keys:       keys,
			Classical:  classical,
		}
		rep, err := capture.Run(ctx, cfg)
		if err != nil {
			return nil, err
		}
		row := CaptureHuntRow{
			Name:         "hunt-" + structure + "-clean",
			Structure:    structure,
			Goroutines:   rep.Goroutines,
			Actions:      rep.Actions,
			Linearizable: rep.Live.Verdict == speclin.Linearizable,
			EmptyDeqs:    rep.EmptyDeqs,
			WallMs:       float64(rep.Wall) / float64(time.Millisecond),
		}
		if rep.Classical != nil {
			row.ClassicalAgrees = rep.Classical.Verdict == rep.Live.Verdict
		}
		out = append(out, row)

		mutant := capture.Mutants[structure]
		mcfg := cfg
		mcfg.Mutant = mutant
		mcfg.Classical = false
		mrow := CaptureHuntRow{
			Name:       "hunt-" + structure + "-" + mutant,
			Structure:  structure,
			Mutant:     mutant,
			Goroutines: goroutines,
		}
		for r := 0; r < rounds; r++ {
			mcfg.Seed = 1 + int64(r)
			rep, err := capture.Run(ctx, mcfg)
			if err != nil {
				return nil, err
			}
			mrow.Actions = rep.Actions
			mrow.Goroutines = rep.Goroutines
			mrow.Linearizable = rep.Live.Verdict == speclin.Linearizable
			mrow.EmptyDeqs = rep.EmptyDeqs
			mrow.WallMs = float64(rep.Wall) / float64(time.Millisecond)
			if rep.Live.Verdict == speclin.NotLinearizable {
				mrow.Caught = true
				mrow.RoundsToCatch = r + 1
				break
			}
		}
		out = append(out, mrow)
	}
	return out, nil
}

// E17OverheadRows measures capture overhead on every unmutated
// structure.
func E17OverheadRows(goroutines, ops, keys int) ([]CaptureOverheadRow, error) {
	var out []CaptureOverheadRow
	for _, structure := range capture.Structures {
		o, err := capture.Overhead(capture.Config{
			Structure:  structure,
			Goroutines: goroutines,
			Ops:        ops,
			Keys:       keys,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, CaptureOverheadRow{
			Name:                   "overhead-" + structure,
			Structure:              structure,
			Goroutines:             o.Goroutines,
			Ops:                    o.RawOps,
			RawNsPerOp:             o.RawNsPerOp(),
			CapturedNsPerOp:        o.CapturedNsPerOp(),
			CaptureThroughputRatio: o.ThroughputRatio(),
		})
	}
	return out, nil
}

// E17CaptureHunt: the new-subsystem claim — real concurrent Go
// structures checked linearizable from live captured histories, every
// seeded-bug mutant flagged, recording overhead measured.
func E17CaptureHunt(ctx context.Context) (Table, error) {
	t := Table{
		ID: "E17",
		Title: fmt.Sprintf("capture hunt: live-checked real structures, %d goroutines (seeds 1..%d)",
			E17Goroutines(), E17Rounds),
		Header: []string{"structure", "mutant", "actions", "verdict", "round", "empty deqs", "wall ms"},
		Notes: []string{
			"Clean rows stress the unmutated structure and must check linearizable live; " +
				"mutant rows rerun with derived seeds until the seeded bug is flagged " +
				"non-linearizable (detection is interleaving-dependent). The overhead rows " +
				"run the identical worker loops uninstrumented vs captured. " +
				"Machine-readable results: BENCH_7.json (TestWriteBench7JSON).",
		},
	}
	hunts, err := E17HuntRows(ctx, E17Goroutines(), E17Ops, E17Keys, E17Rounds, true)
	if err != nil {
		return t, err
	}
	for _, r := range hunts {
		mut := r.Mutant
		verdict := "linearizable"
		round := "-"
		if mut == "" {
			mut = "clean"
		} else {
			if r.Caught {
				verdict = "caught (not linearizable)"
				round = fmt.Sprintf("%d", r.RoundsToCatch)
			} else {
				verdict = "NOT CAUGHT"
			}
		}
		if mut == "clean" && !r.Linearizable {
			verdict = "NOT LINEARIZABLE (unexpected)"
		}
		t.Rows = append(t.Rows, []string{
			r.Structure, mut, fmt.Sprintf("%d", r.Actions), verdict, round,
			fmt.Sprintf("%d", r.EmptyDeqs), fmt.Sprintf("%.0f", r.WallMs),
		})
	}
	overheads, err := E17OverheadRows(E17Goroutines(), E17OverheadOps, E17Keys)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"", "", "", "", "", "", ""})
	for _, o := range overheads {
		t.Rows = append(t.Rows, []string{
			o.Structure, "overhead",
			fmt.Sprintf("%d ops", o.Ops),
			fmt.Sprintf("raw %.0f ns/op, captured %.0f ns/op", o.RawNsPerOp, o.CapturedNsPerOp),
			"-", "-",
			fmt.Sprintf("ratio %.3f", o.CaptureThroughputRatio),
		})
	}
	return t, nil
}
