package experiments

import (
	"context"
	"fmt"

	"repro/internal/adt"
	"repro/internal/msgnet"
	"repro/internal/smr"
	"repro/internal/uobj"
)

// E11UniversalConstruction: the §6 claim made operational — applying any
// ADT's output function to a linearizable universal object (the
// speculative replicated log) yields a linearizable object of that ADT.
// Every run's object-level trace is validated by the exact checker.
func E11UniversalConstruction(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "E11",
		Title:  "universal construction: arbitrary ADTs over the speculative log (3 servers, seeds 1–10)",
		Header: []string{"ADT", "clients", "ops", "mean latency", "linearizable traces"},
		Notes: []string{
			"§6: \"given a linearizable implementation [of the universal ADT], it " +
				"suffices to apply the output function of another ADT to the responses\" — " +
				"here over jittered delays (1–3) with concurrent clients.",
		},
	}
	type workload struct {
		name    string
		f       adt.Folder
		clients int
		ops     func(o *uobj.Object) error
		count   int
	}
	workloads := []workload{
		{"register", adt.Register{}, 2, func(o *uobj.Object) error {
			if err := o.InvokeAt("c1", adt.WriteInput("x"), 0); err != nil {
				return err
			}
			if err := o.InvokeAt("c2", adt.ReadInput(), 0); err != nil {
				return err
			}
			if err := o.InvokeAt("c1", adt.WriteInput("y"), 20); err != nil {
				return err
			}
			return o.InvokeAt("c2", adt.ReadInput(), 21)
		}, 4},
		{"queue", adt.Queue{}, 3, func(o *uobj.Object) error {
			if err := o.InvokeAt("c1", adt.EnqInput("a"), 0); err != nil {
				return err
			}
			if err := o.InvokeAt("c2", adt.EnqInput("b"), 0); err != nil {
				return err
			}
			if err := o.InvokeAt("c3", adt.DeqInput(), 3); err != nil {
				return err
			}
			if err := o.InvokeAt("c1", adt.DeqInput(), 25); err != nil {
				return err
			}
			return o.InvokeAt("c2", adt.DeqInput(), 26)
		}, 5},
		{"counter", adt.Counter{}, 2, func(o *uobj.Object) error {
			for j := 0; j < 3; j++ {
				if err := o.InvokeAt("c1", adt.IncInput(), msgnet.Time(j*15)); err != nil {
					return err
				}
				if err := o.InvokeAt("c2", adt.GetInput(), msgnet.Time(j*15+1)); err != nil {
					return err
				}
			}
			return nil
		}, 6},
	}
	for _, wl := range workloads {
		var totalLat, done int
		linearizable := true
		for seed := int64(1); seed <= 10; seed++ {
			w := msgnet.New(msgnet.Config{Seed: seed, MinDelay: 1, MaxDelay: 3})
			o, err := uobj.Build(w, procIDs("c", wl.clients), procIDs("s", 3), wl.f,
				smr.Config{FastPath: true, QuorumTimeout: 10, Retransmit: 6})
			if err != nil {
				return t, err
			}
			if err := wl.ops(o); err != nil {
				return t, err
			}
			o.Run(1_000_000)
			rs := o.Results()
			if len(rs) != wl.count {
				return t, fmt.Errorf("E11 %s seed %d: completed %d/%d", wl.name, seed, len(rs), wl.count)
			}
			for _, r := range rs {
				done++
				totalLat += int(r.Latency())
			}
			res, err := o.CheckLinearizable(ctx)
			if err != nil {
				return t, err
			}
			if !res.OK {
				linearizable = false
			}
		}
		verdict := "10/10"
		if !linearizable {
			verdict = "VIOLATION"
		}
		t.Rows = append(t.Rows, []string{
			wl.name,
			fmt.Sprintf("%d", wl.clients),
			fmt.Sprintf("%d×10 seeds", wl.count),
			f2(float64(totalLat) / float64(done)),
			verdict,
		})
	}
	return t, nil
}
