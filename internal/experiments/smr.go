package experiments

import (
	"context"
	"fmt"

	"repro/internal/msgnet"
	"repro/internal/smr"
)

// E9SMRThroughput: the end-to-end system claim — speculative SMR gives
// fast-path latency in the common case and degrades gracefully, while
// staying exactly as safe as the Paxos-only baseline.
func E9SMRThroughput(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "E9",
		Title:  "SMR: speculative vs Paxos-only (3 servers, 24 commands/client, seeds 1–10)",
		Header: []string{"scenario", "variant", "mean latency", "switches/cmd", "landed", "consistent"},
		Notes: []string{
			"Sequential = one client; contended = 3 clients submitting concurrently; " +
				"crash = 1 of 3 servers down from t=0 (fast path cannot complete, every " +
				"slot falls back). Latency in message delays. E12 scales this workload " +
				"to millions of commands across hash-partitioned shards.",
		},
	}
	type scen struct {
		name    string
		clients int
		crash   int
		jitter  msgnet.Time
		stagger msgnet.Time
	}
	scenarios := []scen{
		{"sequential", 1, 0, 1, 6},
		{"contended", 3, 0, 3, 0},
		{"1/3 crashed", 1, 1, 1, 6},
	}
	const perClient = 24
	for _, sc := range scenarios {
		for _, variant := range []struct {
			name string
			fast bool
		}{{"speculative", true}, {"paxos-only", false}} {
			var totalLat, switches, landed, expected int
			consistent := true
			for seed := int64(1); seed <= 10; seed++ {
				w := msgnet.New(msgnet.Config{Seed: seed, MinDelay: 1, MaxDelay: sc.jitter})
				clients := procIDs("c", sc.clients)
				cl, err := smr.Build(w, clients, procIDs("s", 3),
					smr.Config{FastPath: variant.fast, QuorumTimeout: 6, Retransmit: 4})
				if err != nil {
					return t, err
				}
				for i := 0; i < sc.crash; i++ {
					w.Crash(msgnet.ProcID(fmt.Sprintf("s%d", i+1)), 0)
				}
				for ci, c := range clients {
					for j := 0; j < perClient; j++ {
						cmd := smr.SetCmd(fmt.Sprintf("k%d", ci), fmt.Sprintf("v%d-%d-%d", ci, j, seed))
						cl.SubmitAt(c, cmd, msgnet.Time(j)*sc.stagger)
						expected++
					}
				}
				cl.Run(1_000_000)
				for _, r := range cl.Results() {
					landed++
					totalLat += int(r.Latency())
					switches += r.Switches
				}
				if err := cl.CheckConsistency(); err != nil {
					consistent = false
				}
			}
			cons := "yes"
			if !consistent {
				cons = "NO"
			}
			t.Rows = append(t.Rows, []string{
				sc.name, variant.name,
				f2(float64(totalLat) / float64(max(landed, 1))),
				f2(float64(switches) / float64(max(landed, 1))),
				pct(landed, expected),
				cons,
			})
		}
	}
	return t, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
