package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/lin"
	"repro/internal/trace"
	"repro/internal/workload"
)

// timedCheck runs one checker call and returns its wall time in ms.
func timedCheck(fn func() (lin.Result, error)) (lin.Result, float64, error) {
	start := time.Now()
	r, err := fn()
	return r, float64(time.Since(start).Microseconds()) / 1000, err
}

// E14LongTraceSweep exercises the uncapped classical checker (DESIGN.md,
// decision 13) at trace lengths the former 63-operation bitmask cap made
// unreachable: 128/256/512-operation sweeps through CheckClassical and
// the new-definition engine with the partial-order reduction on and off.
// Traces use unique occurrence tags, so Theorem 1 applies and every
// verdict triple is asserted identical — the long-trace extension of the
// E8 equivalence sweep, now also covering the regime where the PR 1
// memoization and the decision-12 reduction matter most.
// TestWriteBench4JSON records the same measurement machine-readably
// (BENCH_4.json).
func E14LongTraceSweep(ctx context.Context) (Table, error) {
	t := Table{
		ID:    "E14",
		Title: "uncapped classical checking: 128/256/512-operation traces, classical vs new definition (POR on/off)",
		Header: []string{"workload", "ops", "traces", "verdicts agree",
			"classical nodes", "new nodes (POR)", "new nodes (full)", "pruned", "classical ms", "new ms (POR)"},
		Notes: []string{
			"The classical checker's placed sets spill from the single-word fast path " +
				"to the sparse word-array representation beyond 63 operations (decision " +
				"13), so every row here was a hard failure of the former 63-operation " +
				"cap before this experiment existed. Unique occurrence tags make the classical and new " +
				"definitions coincide (Theorem 1); verdict agreement across all three " +
				"engines is asserted per trace. The split-suffix family plants a " +
				"split-decision group behind a long decided prefix: its symbols intern " +
				"beyond 64, so the new engine's pruning there exercises the sleep-set " +
				"spill as well.",
		},
	}
	for _, fam := range E14Families() {
		st, err := E14Measure(ctx, fam.F, fam.Traces)
		if err != nil {
			return t, fmt.Errorf("E14 %s: %w", fam.Name, err)
		}
		t.Rows = append(t.Rows, []string{
			fam.Name,
			fmt.Sprintf("%d", fam.Ops),
			fmt.Sprintf("%d", st.Traces),
			pct(st.Agree, st.Traces),
			fmt.Sprintf("%d", st.NodesClassical),
			fmt.Sprintf("%d", st.NodesPOR),
			fmt.Sprintf("%d", st.NodesFull),
			fmt.Sprintf("%d", st.Pruned),
			f2(st.ClassicalMs),
			f2(st.PORMs),
		})
	}
	return t, nil
}

// E14Stats aggregates one E14 workload family.
type E14Stats struct {
	Traces         int
	Agree          int
	NodesClassical int
	NodesPOR       int
	NodesFull      int
	Pruned         int
	ClassicalMs    float64
	PORMs          float64
	FullMs         float64
}

// E14Measure runs the engine triple — classical, new-definition reduced,
// new-definition unreduced — over every trace and aggregates; any
// verdict disagreement (Theorem 1 on these unique-input traces) is an
// error.
func E14Measure(ctx context.Context, f adt.Folder, traces []trace.Trace) (E14Stats, error) {
	var st E14Stats
	budget := check.WithBudget(50_000_000)
	for _, tr := range traces {
		classical, ms, err := timedCheck(func() (lin.Result, error) {
			return lin.CheckClassical(ctx, f, tr, budget)
		})
		if err != nil {
			return st, err
		}
		st.NodesClassical += classical.Nodes
		st.ClassicalMs += ms
		red, ms, err := timedCheck(func() (lin.Result, error) {
			return lin.Check(ctx, f, tr, budget, check.WithWitness(false))
		})
		if err != nil {
			return st, err
		}
		st.NodesPOR += red.Nodes
		st.Pruned += red.Pruned
		st.PORMs += ms
		full, ms, err := timedCheck(func() (lin.Result, error) {
			return lin.Check(ctx, f, tr, budget, check.WithWitness(false), check.WithPOR(false))
		})
		if err != nil {
			return st, err
		}
		st.NodesFull += full.Nodes
		st.FullMs += ms
		st.Traces++
		if classical.OK == red.OK && red.OK == full.OK {
			st.Agree++
		} else {
			return st, fmt.Errorf("verdict disagreement on a unique-input trace (Theorem 1): classical=%v por=%v full=%v",
				classical.OK, red.OK, full.OK)
		}
	}
	return st, nil
}

// E14Family is one long-trace workload family.
type E14Family struct {
	Name   string
	Ops    int
	F      adt.Folder
	Traces []trace.Trace
}

// E14Families generates the experiment's deterministic workload
// families: linearizable random register traces at each length, the same
// with an early corrupted response (both engines refute within the first
// real-time window, keeping long negative searches tractable), and the
// split-suffix consensus family whose contentious group interns beyond
// symbol 64 (sleep-set spill coverage).
func E14Families() []E14Family {
	var fams []E14Family
	counts := map[int]int{128: 24, 256: 12, 512: 6}
	for _, ops := range []int{128, 256, 512} {
		r := rand.New(rand.NewSource(14))
		n := counts[ops]
		clean := make([]trace.Trace, n)
		for i := range clean {
			clean[i] = workload.Random(adt.Register{}, r, workload.TraceOpts{
				Clients: 3, Ops: ops, PendingProb: 0.15, UniqueTags: true,
				Inputs: []trace.Value{adt.WriteInput("x"), adt.WriteInput("y"), adt.ReadInput()},
			})
		}
		fams = append(fams, E14Family{Name: "register-random-clean", Ops: ops, F: adt.Register{}, Traces: clean})
		fams = append(fams, E14Family{
			Name: "consensus-corrupted-early", Ops: ops, F: adt.Consensus{},
			Traces: []trace.Trace{e14SeqTrace(ops, 4, 9), e14SeqTrace(ops, 6, 11)},
		})
		fams = append(fams, E14Family{
			Name: "consensus-split-suffix", Ops: ops, F: adt.Consensus{},
			Traces: []trace.Trace{e14SplitSuffix(ops, 5)},
		})
	}
	return fams
}

// e14SeqTrace builds an n-operation unique-tagged consensus trace,
// sequential except that every window-th pair of neighbours overlaps;
// corruptAt (if ≥ 0) replaces that operation's output with an
// unexplainable decision, destroying linearizability at a bounded search
// cost (the refutation stays within the corrupted window).
func e14SeqTrace(n, window, corruptAt int) trace.Trace {
	tr := make(trace.Trace, 0, 2*n)
	cons := adt.Consensus{}
	st := cons.Empty()
	emit := func(i int) (trace.ClientID, trace.Value, trace.Value) {
		c := trace.ClientID("c" + strconv.Itoa(i))
		in := adt.Tag(adt.ProposeInput("v"), strconv.Itoa(i))
		out := cons.Out(st, in)
		st = cons.Step(st, in)
		if corruptAt == i {
			out = adt.DecideOutput("corrupt")
		}
		return c, in, out
	}
	for i := 0; i < n; i++ {
		c, in, out := emit(i)
		if window > 0 && i%window == 0 && i+1 < n {
			c2, in2, out2 := emit(i + 1)
			tr = append(tr,
				trace.Invoke(c, 1, in), trace.Invoke(c2, 1, in2),
				trace.Response(c, 1, in, out), trace.Response(c2, 1, in2, out2))
			i++
			continue
		}
		tr = append(tr, trace.Invoke(c, 1, in), trace.Response(c, 1, in, out))
	}
	return tr
}

// e14SplitSuffix is a sequential decided prefix of n-w proposals followed
// by a w-wide split-decision group contradicting the decided value —
// non-linearizable, with the contentious (mutually commuting) symbols
// interned beyond the prefix's, i.e. ≥ 64 for the lengths E14 uses.
func e14SplitSuffix(n, w int) trace.Trace {
	var tr trace.Trace
	cons := adt.Consensus{}
	st := cons.Empty()
	for i := 0; i < n-w; i++ {
		c := trace.ClientID("s" + strconv.Itoa(i))
		in := adt.Tag(adt.ProposeInput("x"+strconv.Itoa(i)), strconv.Itoa(i))
		out := cons.Out(st, in)
		st = cons.Step(st, in)
		tr = append(tr, trace.Invoke(c, 1, in), trace.Response(c, 1, in, out))
	}
	for i := 0; i < w; i++ {
		c := trace.ClientID("h" + strconv.Itoa(i))
		tr = append(tr, trace.Invoke(c, 1, adt.Tag(adt.ProposeInput("v"+strconv.Itoa(i)), string(c))))
	}
	for i := 0; i < w; i++ {
		c := trace.ClientID("h" + strconv.Itoa(i))
		in := adt.Tag(adt.ProposeInput("v"+strconv.Itoa(i)), string(c))
		tr = append(tr, trace.Response(c, 1, in, adt.DecideOutput("v"+strconv.Itoa(i%2))))
	}
	return tr
}
