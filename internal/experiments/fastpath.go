package experiments

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/lin"
	"repro/internal/trace"
)

// This file implements the E16 fast-path experiment behind BENCH_6.json:
// the ADT-specialized register checker (reduction to state reachability,
// DESIGN.md decision 15) against the exact frontier engine, over the
// per-key histories of a sharded SMR run. Both engines are measured two
// ways — one-shot over the recorded histories, and streamed through the
// online per-key checker sessions during the simulation — on a uniform
// and a zipf-skewed key distribution.

// E16 canonical scales: the uniform workload lands one million simulated
// commands (the E12 top configuration); the zipf row reuses the E12 skew
// point.
var (
	E16UniformShards   = 16
	E16UniformCommands = 16 * E12PerShard // 1,000,000
	E16ZipfShards      = 4
	E16ZipfCommands    = 4 * E12ZipfPerShard
)

// E16KeysDivisor sets the uniform workload's per-key history length to
// ~384 operations (E12 keeps them at ~64 — "short for the exact
// checker"). E16 measures checker asymptotics, so it runs the regime
// where they show: the frontier session's cost per feed grows with the
// history (distinct linearization prefixes accumulate multiplicatively
// across overlap windows) while the specialized core stays O(1)
// amortized. At the 1M-command key density this costs the exact
// sessions ~30 search nodes per fed op — an order of magnitude over
// the fast path, yet still well inside the 2M-node per-key budget, so
// the speedup is a measured ratio rather than a lower bound; on
// denser workloads (fewer keys per shard, or the zipf rows) the same
// engine starves its budget outright.
const E16KeysDivisor = 384

// FastpathRow is one engine × mode measurement, JSON-ready for
// BENCH_6.json.
type FastpathRow struct {
	// Name identifies the row stably for the bench guard:
	// "oneshot-exact", "oneshot-fast", "session-exact", "session-fast",
	// or "run-nocheck" (the checking-free simulation baseline the online
	// overhead is measured against).
	Name         string `json:"name"`
	Mode         string `json:"mode"`   // oneshot | session | baseline
	Engine       string `json:"engine"` // exact | fast | none
	Distribution string `json:"distribution"`
	Shards       int    `json:"shards"`
	Commands     int    `json:"commands"`

	KeyHistories int   `json:"key_histories_checked"`
	CheckedOps   int64 `json:"checked_ops"`
	CheckNodes   int64 `json:"check_nodes"`
	// CheckWallMs is the engine's checking wall: the batch pass for
	// one-shot rows; for session rows the cumulative time spent inside
	// the sessions' Feed calls during the run plus verdict collection
	// (smr.HistoryCheck.FeedWall — timed per feed because even the exact
	// engine's overhead is a modest fraction of the simulation wall, so
	// run-to-run wall deltas would drown the fast path's in noise).
	CheckWallMs float64 `json:"check_wall_ms"`
	// RunWallMs is the full simulation wall for session rows (which
	// embeds CheckWallMs — the feeding happens inside the run) and for
	// the run-nocheck baseline.
	RunWallMs    float64 `json:"run_wall_ms,omitempty"`
	Linearizable bool    `json:"linearizable"`
	// BudgetExhausted marks a session-exact row whose per-key frontier
	// session ran out of search budget before the run ended. On skewed
	// keys the breadth frontier engine is super-quadratic in the history
	// length, so hot keys starve any realistic budget — the cost the
	// fast path removes (its sessions spend no budget at all).
	BudgetExhausted bool `json:"budget_exhausted,omitempty"`
	// ScheduleDigest must agree across the session rows and the baseline:
	// checking happens outside the simulated network, so flipping the
	// engine can never perturb the schedule.
	ScheduleDigest string `json:"schedule_digest,omitempty"`
}

// FastpathDist is one distribution's measurement set.
type FastpathDist struct {
	Distribution string `json:"distribution"`
	Shards       int    `json:"shards"`
	Commands     int    `json:"commands"`
	// OneshotSpeedup is exact one-shot check wall over fast one-shot
	// check wall, measured interleaved in one process. Modest by design:
	// the depth-first engine already decides easy register histories
	// near-greedily.
	OneshotSpeedup float64 `json:"oneshot_check_speedup"`
	// OnlineSpeedup is the headline E16 claim (≥10x at the 1M-command
	// scale): the exact frontier sessions' online check wall over the
	// fast sessions' — each the per-feed-timed checking overhead
	// embedded in that run (FastpathRow.CheckWallMs). The ~100ns clock
	// read per feed weighs proportionally more on the fast engine, so
	// the measured ratio is biased conservatively down.
	OnlineSpeedup float64 `json:"online_check_speedup,omitempty"`
	// OnlineSpeedupLB marks OnlineSpeedup as a strict lower bound: the
	// exact sessions starved their per-key search budget mid-run, so
	// the numerator is only the checking wall they burned before giving
	// up — every node the dead keys still owed is unpriced. Budget
	// exhaustion is deterministic for a given seed (the gate is a node
	// count over a digest-pinned schedule), so the artifact records
	// which configurations starve, not a race.
	OnlineSpeedupLB bool          `json:"online_speedup_is_lower_bound,omitempty"`
	Rows            []FastpathRow `json:"rows"`
}

// FastpathRows measures one distribution: a checking-free run collects
// the per-key histories and the schedule baseline, both one-shot engines
// check the identical histories, and two further online runs stream the
// same workload through exact and fast checker sessions. It errors if
// any verdict or schedule digest disagrees across the five measurements.
func FastpathRows(ctx context.Context, base ShardRunConfig) (FastpathDist, error) {
	collect := base
	collect.SkipCheck = true
	collect.Online = false
	sc, res, err := runShardedCluster(ctx, collect)
	if err != nil {
		return FastpathDist{}, fmt.Errorf("E16 %s collect: %w", res.Distribution, err)
	}
	d := FastpathDist{Distribution: res.Distribution, Shards: res.Shards, Commands: res.Commands}
	baseline := FastpathRow{
		Name: "run-nocheck", Mode: "baseline", Engine: "none",
		Distribution: d.Distribution, Shards: d.Shards, Commands: d.Commands,
		RunWallMs: res.WallMs, ScheduleDigest: res.ScheduleDigest,
	}

	var ts []trace.Trace
	for k := 0; k < sc.Shards(); k++ {
		ts = append(ts, sc.KeyTraces(k)...)
	}
	opts := []check.Option{check.WithBudget(base.Budget)}

	oneshot := func(engine string, run func(trace.Trace) (lin.Result, error)) (FastpathRow, error) {
		row := FastpathRow{
			Name: "oneshot-" + engine, Mode: "oneshot", Engine: engine,
			Distribution: d.Distribution, Shards: d.Shards, Commands: d.Commands,
			KeyHistories: len(ts), Linearizable: true,
		}
		start := time.Now()
		rs, err := check.Parallel(ctx, ts, 0, func(_ int, t trace.Trace) (lin.Result, error) {
			return run(t)
		})
		row.CheckWallMs = wallMs(time.Since(start))
		if err != nil {
			return row, fmt.Errorf("E16 %s %s: %w", d.Distribution, row.Name, err)
		}
		for _, r := range rs {
			row.CheckNodes += int64(r.Nodes)
			row.Linearizable = row.Linearizable && r.OK
		}
		for _, t := range ts {
			row.CheckedOps += int64(len(t)) / 2
		}
		return row, nil
	}
	exactOne, err := oneshot("exact", func(t trace.Trace) (lin.Result, error) {
		return lin.Check(ctx, adt.Register{}, t, opts...)
	})
	if err != nil {
		return d, err
	}
	fastOne, err := oneshot("fast", func(t trace.Trace) (lin.Result, error) {
		return lin.CheckFast(ctx, adt.Register{}, t, opts...)
	})
	if err != nil {
		return d, err
	}

	session := func(engine string, exact bool) (FastpathRow, error) {
		cfg := base
		cfg.Online = true
		cfg.SkipCheck = false
		cfg.Exact = exact
		r, err := RunSharded(ctx, cfg)
		row := FastpathRow{
			Name: "session-" + engine, Mode: "session", Engine: engine,
			Distribution: d.Distribution, Shards: d.Shards, Commands: d.Commands,
			KeyHistories: r.KeyHistories, CheckedOps: r.CheckedOps,
			CheckNodes: r.CheckNodes, CheckWallMs: r.CheckWallMs,
			RunWallMs: r.WallMs, Linearizable: r.Linearizable,
			ScheduleDigest: r.ScheduleDigest,
		}
		if err != nil {
			// Budget exhaustion of an exact per-key session is a measured
			// outcome, not a failed experiment (see BudgetExhausted).
			if exact && errors.Is(err, lin.ErrBudget) {
				row.BudgetExhausted = true
				return row, nil
			}
			return row, fmt.Errorf("E16 %s %s: %w", d.Distribution, row.Name, err)
		}
		return row, nil
	}
	exactSess, err := session("exact", true)
	if err != nil {
		return d, err
	}
	fastSess, err := session("fast", false)
	if err != nil {
		return d, err
	}

	for _, row := range []FastpathRow{exactOne, fastOne, exactSess, fastSess} {
		if !row.Linearizable && !row.BudgetExhausted {
			return d, fmt.Errorf("E16 %s %s: history not linearizable", d.Distribution, row.Name)
		}
	}
	for _, row := range []FastpathRow{exactSess, fastSess} {
		if row.ScheduleDigest != baseline.ScheduleDigest {
			return d, fmt.Errorf("E16 %s %s: schedule digest %s diverged from baseline %s (checking leaked into the simulation)",
				d.Distribution, row.Name, row.ScheduleDigest, baseline.ScheduleDigest)
		}
	}
	if fastOne.CheckWallMs > 0 {
		d.OneshotSpeedup = exactOne.CheckWallMs / fastOne.CheckWallMs
	}
	if fastSess.CheckWallMs > 0 {
		d.OnlineSpeedup = exactSess.CheckWallMs / fastSess.CheckWallMs
		d.OnlineSpeedupLB = exactSess.BudgetExhausted
	}
	d.Rows = []FastpathRow{baseline, exactOne, fastOne, exactSess, fastSess}
	return d, nil
}

// E16Rows builds the E16 result set — uniform at the 1M-command scale
// and zipf(1.2) at 4 shards — from shared knobs (E12Base). The E16 table
// and TestWriteBench6JSON (BENCH_6.json) share this builder so the
// recorded artifact can never drift from the experiment.
func E16Rows(ctx context.Context, uniformShards, uniformCommands, zipfCommands int) ([]FastpathDist, error) {
	uni := E12Base
	uni.Shards = uniformShards
	uni.Commands = uniformCommands
	uni.Keys = uniformCommands / E16KeysDivisor
	ud, err := FastpathRows(ctx, uni)
	if err != nil {
		return nil, err
	}
	zipf := E12Base
	zipf.ZipfS = 1.2
	zipf.Shards = E16ZipfShards
	zipf.Commands = zipfCommands
	zd, err := FastpathRows(ctx, zipf)
	if err != nil {
		return []FastpathDist{ud}, err
	}
	return []FastpathDist{ud, zd}, nil
}

// E16FastpathCheckers: the perf-opt claim — reducing register
// linearizability to state reachability over per-value write blocks
// decides the sharded per-key histories in near-linear time, an order of
// magnitude under the exact frontier engine at the 1M-command scale,
// one-shot and streamed alike, with identical verdicts and schedules.
func E16FastpathCheckers(ctx context.Context) (Table, error) {
	t := Table{
		ID:    "E16",
		Title: "ADT-specialized fast-path checker vs exact engine (sharded per-key histories, seed 1)",
		Header: []string{"dist", "commands", "mode", "engine", "key histories",
			"check nodes", "check wall ms", "run wall ms", "lin"},
		Notes: []string{
			"One-shot rows check the identical recorded histories with both engines " +
				"(interleaved, same worker pool); session rows stream the same workload " +
				"through online per-key checker sessions during the simulation — their " +
				"check wall is the per-feed-timed overhead embedded in the run wall. " +
				"run-nocheck is the checking-free simulation baseline; all three runs of a " +
				"distribution must reproduce one schedule digest. " +
				"Machine-readable results: BENCH_6.json (TestWriteBench6JSON).",
		},
	}
	dists, err := E16Rows(ctx, E16UniformShards, E16UniformCommands, E16ZipfCommands)
	if err != nil {
		return t, err
	}
	for _, d := range dists {
		for _, r := range d.Rows {
			lineariz := "yes"
			switch {
			case r.Mode == "baseline":
				lineariz = "-"
			case r.BudgetExhausted:
				lineariz = "budget exhausted"
			case !r.Linearizable:
				lineariz = "NO"
			}
			t.Rows = append(t.Rows, []string{
				d.Distribution,
				fmt.Sprintf("%d", r.Commands),
				r.Mode,
				r.Engine,
				fmt.Sprintf("%d", r.KeyHistories),
				fmt.Sprintf("%d", r.CheckNodes),
				fmt.Sprintf("%.0f", r.CheckWallMs),
				fmt.Sprintf("%.0f", r.RunWallMs),
				lineariz,
			})
		}
		online := fmt.Sprintf("online check speedup %.1fx (per-feed-timed session overhead)", d.OnlineSpeedup)
		if d.OnlineSpeedupLB {
			online = fmt.Sprintf("online check speedup ≥%.0fx — a lower bound: the exact sessions "+
				"starved their search budget after %.0fs of checking wall", d.OnlineSpeedup,
				d.Rows[3].CheckWallMs/1000)
		}
		t.Notes = append(t.Notes, fmt.Sprintf("%s: one-shot check speedup %.1fx; %s.",
			d.Distribution, d.OneshotSpeedup, online))
	}
	return t, nil
}

func wallMs(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
