package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/lin"
	"repro/internal/trace"
	"repro/internal/workload"
)

// E13PORReduction quantifies the sleep-set partial-order reduction
// (DESIGN.md, decision 12) on E8-style random sweeps plus the hard
// split-decision family: for every trace the reduced and unreduced
// depth-first engines run back to back, verdicts are asserted identical,
// and the aggregate node counts give the reduction factor. The
// split-decision family is the reducer's best case — after the first
// chain element every remaining proposal commutes — and shows the
// factorial-to-multiset collapse; the uniform sweeps show the expected
// mixed-workload factor. TestWriteBench3JSON records the same
// measurement machine-readably (BENCH_3.json).
func E13PORReduction(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "E13",
		Title:  "partial-order reduction: nodes explored, unreduced vs sleep-set reduced",
		Header: []string{"workload", "traces", "verdicts agree", "nodes (full)", "nodes (POR)", "reduction", "pruned branches"},
		Notes: []string{
			"Reduced and unreduced engines run on identical traces with identical " +
				"budgets; a reduction of 1.00x means the workload has no commuting " +
				"extension branches (counter increments and queue enqueues conflict; " +
				"consensus proposals after a decision and register reads commute). " +
				"Verdict agreement is asserted per trace — the differential harness " +
				"(internal/check/diffcheck) property-tests and fuzzes the same claim.",
		},
	}
	families := []struct {
		name string
		gen  func() []trace.Trace
		f    adt.Folder
	}{
		{"consensus E8 sweep", func() []trace.Trace {
			return e13Sweep(adt.Consensus{}, []trace.Value{adt.ProposeInput("a"), adt.ProposeInput("b"), adt.ProposeInput("c")})
		}, adt.Consensus{}},
		{"consensus E8 sweep, contended (5 clients × 8 ops)", func() []trace.Trace {
			return e13WideSweep(adt.Consensus{}, []trace.Value{adt.ProposeInput("a"), adt.ProposeInput("b"), adt.ProposeInput("c")})
		}, adt.Consensus{}},
		{"register E8 sweep", func() []trace.Trace {
			return e13Sweep(adt.Register{}, []trace.Value{adt.WriteInput("x"), adt.ReadInput()})
		}, adt.Register{}},
		{"counter E8 sweep", func() []trace.Trace { return e13Sweep(adt.Counter{}, []trace.Value{adt.IncInput(), adt.GetInput()}) }, adt.Counter{}},
		{"split-decision (5..7 wide)", func() []trace.Trace {
			var out []trace.Trace
			for w := 5; w <= 7; w++ {
				out = append(out, workload.SplitDecision(w, "h"))
			}
			return out
		}, adt.Consensus{}},
	}
	for _, fam := range families {
		traces := fam.gen()
		row, err := e13Row(ctx, fam.name, fam.f, traces)
		if err != nil {
			return t, err
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// e13Sweep mirrors the E8 generator: 400 traces, clean/corrupted mix,
// unique occurrence tags, seed 42.
func e13Sweep(f adt.Folder, inputs []trace.Value) []trace.Trace {
	r := rand.New(rand.NewSource(42))
	const n = 400
	traces := make([]trace.Trace, n)
	for i := range traces {
		opts := workload.TraceOpts{
			Clients: 3, Ops: 4 + r.Intn(3), Inputs: inputs,
			PendingProb: 0.2, UniqueTags: true,
		}
		if i%2 == 1 {
			opts.CorruptProb = 0.5
		}
		traces[i] = workload.Random(f, r, opts)
	}
	return traces
}

// e13WideSweep is the contended E8-style variant: the same generator at
// 5 clients × 8 operations with more pending tails, where commit-time
// availability sets are wide enough that commuting extension orders
// dominate the search (the ≥2x acceptance workload of ISSUE 4).
func e13WideSweep(f adt.Folder, inputs []trace.Value) []trace.Trace {
	r := rand.New(rand.NewSource(42))
	const n = 200
	traces := make([]trace.Trace, n)
	for i := range traces {
		opts := workload.TraceOpts{
			Clients: 5, Ops: 8, Inputs: inputs,
			PendingProb: 0.3, UniqueTags: true,
		}
		if i%2 == 1 {
			opts.CorruptProb = 0.5
		}
		traces[i] = workload.Random(f, r, opts)
	}
	return traces
}

// E13Stats is the measured aggregate of one E13 workload family,
// shared by the table renderer and TestWriteBench3JSON.
type E13Stats struct {
	Traces    int
	Agree     int
	NodesFull int
	NodesPOR  int
	Pruned    int
}

// Reduction returns the node-count reduction factor.
func (s E13Stats) Reduction() float64 {
	if s.NodesPOR == 0 {
		return 1
	}
	return float64(s.NodesFull) / float64(s.NodesPOR)
}

// E13Measure runs the reduced/unreduced pair over every trace and
// aggregates; it errors on any verdict disagreement (the experiment's
// soundness assertion).
func E13Measure(ctx context.Context, f adt.Folder, traces []trace.Trace) (E13Stats, error) {
	var st E13Stats
	budget := check.WithBudget(50_000_000)
	for _, tr := range traces {
		full, err := lin.Check(ctx, f, tr, budget, check.WithPOR(false), check.WithWitness(false))
		if err != nil {
			return st, err
		}
		red, err := lin.Check(ctx, f, tr, budget, check.WithWitness(false))
		if err != nil {
			return st, err
		}
		st.Traces++
		if full.OK == red.OK {
			st.Agree++
		} else {
			return st, fmt.Errorf("E13: reduced engine disagrees on %v: full=%v reduced=%v", tr, full.OK, red.OK)
		}
		st.NodesFull += full.Nodes
		st.NodesPOR += red.Nodes
		st.Pruned += red.Pruned
	}
	return st, nil
}

func e13Row(ctx context.Context, name string, f adt.Folder, traces []trace.Trace) ([]string, error) {
	st, err := E13Measure(ctx, f, traces)
	if err != nil {
		return nil, err
	}
	return []string{
		name,
		fmt.Sprintf("%d", st.Traces),
		pct(st.Agree, st.Traces),
		fmt.Sprintf("%d", st.NodesFull),
		fmt.Sprintf("%d", st.NodesPOR),
		fmt.Sprintf("%.2fx", st.Reduction()),
		fmt.Sprintf("%d", st.Pruned),
	}, nil
}

// E13Families exposes the experiment's workload families for
// TestWriteBench3JSON.
func E13Families() []struct {
	Name   string
	F      adt.Folder
	Traces []trace.Trace
} {
	return []struct {
		Name   string
		F      adt.Folder
		Traces []trace.Trace
	}{
		{"consensus-e8-sweep", adt.Consensus{}, e13Sweep(adt.Consensus{}, []trace.Value{adt.ProposeInput("a"), adt.ProposeInput("b"), adt.ProposeInput("c")})},
		{"consensus-e8-sweep-contended", adt.Consensus{}, e13WideSweep(adt.Consensus{}, []trace.Value{adt.ProposeInput("a"), adt.ProposeInput("b"), adt.ProposeInput("c")})},
		{"register-e8-sweep", adt.Register{}, e13Sweep(adt.Register{}, []trace.Value{adt.WriteInput("x"), adt.ReadInput()})},
		{"counter-e8-sweep", adt.Counter{}, e13Sweep(adt.Counter{}, []trace.Value{adt.IncInput(), adt.GetInput()})},
		{"split-decision-7", adt.Consensus{}, []trace.Trace{workload.SplitDecision(7, "h")}},
	}
}
