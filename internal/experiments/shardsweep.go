package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/check"
	"repro/internal/msgnet"
	"repro/internal/smr"
	"repro/internal/workload"
)

// This file implements the E12 shard sweep: the sharded-SMR scaling
// experiment behind BENCH_2.json. One run drives a keyed KV workload
// through a ShardedCluster at a paced (open-loop) offered load, then
// verifies per-shard log consistency and per-key linearizability of
// every recorded history.

// ShardRunConfig parameterizes one sharded run.
type ShardRunConfig struct {
	Shards   int
	Commands int
	Clients  int
	Servers  int
	// Keys is the number of distinct keys (0: Commands/64, the workload
	// default, keeping per-key histories short for the exact checker).
	Keys int
	// ReadFrac is the fraction of reads (0: workload default 0.3;
	// negative: pure-write).
	ReadFrac float64
	// ZipfS skews keys with a zipf law; must exceed 1 (0: uniform).
	ZipfS float64
	// Pace is the per-client feed period in message delays; every Pace
	// delays a client enqueues one command per shard stream. Clients are
	// phase-staggered within the period. 0 submits everything at t=0 (a
	// closed-loop saturation burst).
	Pace msgnet.Time
	// Seed drives the workload and the network.
	Seed int64
	// CompactEvery is the log-compaction window (0 disables).
	CompactEvery int
	// Budget is the per-history check budget (0: lin.DefaultBudget).
	Budget int
	// SkipCheck skips history checking (pure throughput runs).
	SkipCheck bool
	// Online streams per-key histories through incremental checker
	// sessions during the run (smr.ShardedConfig.OnlineCheck) instead of
	// buffering them for a post-hoc pass; CheckLinearizable then
	// collects the sessions' verdicts.
	Online bool
	// Exact forces the exact frontier engine on the online per-key
	// sessions (smr.ShardedConfig.ExactCheck). The default dispatches
	// them to the register fast-path checker — per-key histories are in
	// its fragment by construction (DESIGN.md, decision 15).
	Exact bool
}

func (c ShardRunConfig) withDefaults() ShardRunConfig {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Commands <= 0 {
		c.Commands = 10_000
	}
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Servers <= 0 {
		c.Servers = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ShardRunResult reports one sharded run, JSON-ready for BENCH_2.json.
type ShardRunResult struct {
	Shards       int    `json:"shards"`
	Commands     int    `json:"commands"`
	Keys         int    `json:"keys"`
	Distribution string `json:"distribution"`

	SimTime        int64   `json:"sim_time_delays"`
	CmdsPerDelay   float64 `json:"commands_per_delay"`
	MeanLatency    float64 `json:"mean_latency_delays"`
	FastPathRate   float64 `json:"fast_path_rate"`
	SwitchesPerCmd float64 `json:"switches_per_cmd"`
	WallMs         float64 `json:"wall_ms"`
	CmdsPerSecWall float64 `json:"commands_per_sec_wall"`

	Online       bool  `json:"online_check"`
	KeyHistories int   `json:"key_histories_checked"`
	CheckedOps   int64 `json:"checked_ops"`
	CheckNodes   int64 `json:"check_nodes"`
	// CheckWallMs is the full linearizability-checking wall: post hoc,
	// the batch pass over the recorded histories; online, the cumulative
	// time spent inside the sessions' Feed calls during the run
	// (smr.HistoryCheck.FeedWall — timed per feed, since the overhead is
	// far too small a fraction of WallMs to recover from run deltas)
	// plus the final verdict collection.
	CheckWallMs  float64 `json:"check_wall_ms"`
	Linearizable bool    `json:"linearizable"`
	Consistent   bool    `json:"consistent"`

	// ScheduleDigest is the hex form of the network's effective-schedule
	// digest (msgnet.Network.ScheduleDigest): two runs with equal digests
	// executed the identical event schedule. A hex string rather than a
	// number so 64-bit values survive JSON round-trips undamaged. The
	// chaos harness (chaos.go) asserts its plan-free runs reproduce this
	// digest event for event.
	ScheduleDigest string `json:"schedule_digest"`
}

// RunSharded executes one sharded run and verifies it.
func RunSharded(ctx context.Context, cfg ShardRunConfig) (ShardRunResult, error) {
	_, res, err := runShardedCluster(ctx, cfg)
	return res, err
}

// runShardedCluster is RunSharded exposing the finished cluster, so the
// E16 fast-path experiment (fastpath.go) can lift the recorded per-key
// traces for its one-shot engine comparison.
func runShardedCluster(ctx context.Context, cfg ShardRunConfig) (*smr.ShardedCluster, ShardRunResult, error) {
	cfg = cfg.withDefaults()
	wl := workload.KeyedOpts{
		Clients:  cfg.Clients,
		Ops:      cfg.Commands,
		Keys:     cfg.Keys,
		ReadFrac: cfg.ReadFrac,
		ZipfS:    cfg.ZipfS,
	}
	ops := workload.Keyed(rand.New(rand.NewSource(cfg.Seed)), wl)
	perClient := make([][]smr.Command, cfg.Clients)
	for _, op := range ops {
		var cmd smr.Command
		if op.Read {
			cmd = smr.GetCmd(op.Key, op.Value)
		} else {
			cmd = smr.SetCmd(op.Key, op.Value)
		}
		perClient[op.Client] = append(perClient[op.Client], cmd)
	}
	keys := map[string]bool{}
	for _, op := range ops {
		keys[op.Key] = true
	}

	res := ShardRunResult{
		Shards:       cfg.Shards,
		Commands:     cfg.Commands,
		Keys:         len(keys),
		Distribution: "uniform",
		Online:       cfg.Online,
	}
	if cfg.ZipfS > 0 {
		res.Distribution = fmt.Sprintf("zipf(%.2g)", cfg.ZipfS)
	}

	w := msgnet.New(msgnet.Config{Seed: cfg.Seed, MinDelay: 1, MaxDelay: 2})
	clients := procIDs("c", cfg.Clients)
	sc, err := smr.BuildSharded(w, clients, procIDs("s", cfg.Servers), smr.ShardedConfig{
		Config: smr.Config{
			FastPath:      true,
			QuorumTimeout: 8,
			Retransmit:    6,
			CompactEvery:  cfg.CompactEvery,
		},
		Shards:       cfg.Shards,
		OnlineCheck:  cfg.Online,
		CheckBudget:  cfg.Budget,
		CheckContext: ctx,
		ExactCheck:   cfg.Exact,
	})
	if err != nil {
		return nil, res, err
	}
	start := time.Now()
	for i, c := range clients {
		offset := msgnet.Time(0)
		if cfg.Pace > 0 {
			offset = msgnet.Time(i) * cfg.Pace / msgnet.Time(cfg.Clients)
		}
		sc.SubmitPaced(c, perClient[i], offset, cfg.Pace)
	}
	end := sc.Run(1 << 40)
	wall := time.Since(start)
	res.ScheduleDigest = fmt.Sprintf("%016x", w.ScheduleDigest())

	st := sc.Stats()
	if st.Landed != int64(cfg.Commands) {
		return sc, res, fmt.Errorf("landed %d/%d commands", st.Landed, cfg.Commands)
	}
	res.SimTime = int64(end)
	if end > 0 {
		res.CmdsPerDelay = float64(st.Landed) / float64(end)
	}
	res.MeanLatency = st.MeanLatency()
	res.FastPathRate = st.FastPathRate()
	res.SwitchesPerCmd = float64(st.Switches) / float64(st.Landed)
	res.WallMs = float64(wall.Microseconds()) / 1000
	res.CmdsPerSecWall = float64(st.Landed) / wall.Seconds()

	res.Consistent = sc.CheckConsistency() == nil
	if !res.Consistent {
		return sc, res, fmt.Errorf("consistency: %v", sc.CheckConsistency())
	}
	if !cfg.SkipCheck {
		cstart := time.Now()
		sum, err := sc.CheckLinearizable(ctx, check.WithBudget(cfg.Budget))
		res.CheckWallMs = float64((time.Since(cstart) + sum.FeedWall).Microseconds()) / 1000
		if err != nil {
			return sc, res, err
		}
		res.Linearizable = true
		res.KeyHistories = sum.Traces
		res.CheckedOps = sum.Ops
		res.CheckNodes = sum.Nodes
	}
	return sc, res, nil
}

// ShardSweep runs RunSharded across shard counts with a fixed per-shard
// command load (weak scaling: the offered load per shard is constant, so
// sustained total throughput should grow linearly with the shard count).
func ShardSweep(ctx context.Context, shards []int, perShard int, base ShardRunConfig) ([]ShardRunResult, error) {
	var out []ShardRunResult
	for _, n := range shards {
		cfg := base
		cfg.Shards = n
		cfg.Commands = perShard * n
		r, err := RunSharded(ctx, cfg)
		if err != nil {
			return out, fmt.Errorf("E12 shards=%d: %w", n, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// E12Shards, E12PerShard and E12ZipfPerShard define the canonical E12
// sweep: ≥1M simulated commands at the largest configuration, plus one
// zipf-skewed row at 4 shards.
var (
	E12Shards       = []int{1, 2, 4, 8, 16}
	E12PerShard     = 62_500
	E12ZipfPerShard = 16_000
)

// E12Rows builds the E12 result set — the uniform weak-scaling sweep
// followed by one zipf(1.2) row at 4 shards — at the given scale. The
// E12 table and TestWriteBench2JSON (BENCH_2.json) share this builder
// so the recorded artifact can never drift from the experiment.
func E12Rows(ctx context.Context, shards []int, perShard, zipfPerShard int) ([]ShardRunResult, error) {
	rows, err := ShardSweep(ctx, shards, perShard, E12Base)
	if err != nil {
		return rows, err
	}
	zipf := E12Base
	zipf.ZipfS = 1.2
	zipf.Shards = 4
	zipf.Commands = 4 * zipfPerShard
	zrow, err := RunSharded(ctx, zipf)
	if err != nil {
		return rows, fmt.Errorf("E12 zipf: %w", err)
	}
	return append(rows, zrow), nil
}

// E12Base is the canonical E12 configuration (shards/commands filled by
// the sweep): 4 clients paced at one command per shard stream every 12
// delays (phase-staggered), 3 servers, compaction window 64.
var E12Base = ShardRunConfig{
	Clients:      4,
	Servers:      3,
	Pace:         12,
	ReadFrac:     0.3,
	Seed:         1,
	CompactEvery: 64,
}

// E12ShardSweep: the sharded-SMR scaling claim — hash-partitioning a
// keyed workload across independent speculative logs scales sustained
// throughput linearly while per-key linearizability and per-shard log
// agreement continue to hold, checked exactly. Reduced here only in
// table form; TestWriteBench2JSON runs the identical sweep and records
// BENCH_2.json.
func E12ShardSweep(ctx context.Context) (Table, error) {
	t := Table{
		ID:    "E12",
		Title: "sharded SMR shard sweep (4 clients, 3 servers, paced open-loop keyed KV, seed 1)",
		Header: []string{"shards", "commands", "dist", "cmds/delay", "×1-shard",
			"fast-path", "mean latency", "key histories", "lin", "consistent"},
		Notes: []string{
			"Weak scaling: 62,500 commands per shard (1,000,000 at 16 shards). Every " +
				"shard's history is decomposed per key and checked with the exact " +
				"checker (lin.CheckAll across GOMAXPROCS workers); log agreement is " +
				"verified per shard. The zipf row skews keys (hot shards pace the run). " +
				"Machine-readable results: BENCH_2.json (TestWriteBench2JSON).",
		},
	}
	rows, err := E12Rows(ctx, E12Shards, E12PerShard, E12ZipfPerShard)
	if err != nil {
		return t, err
	}

	base := rows[0].CmdsPerDelay
	for _, r := range rows {
		lineariz := "yes"
		if !r.Linearizable {
			lineariz = "NO"
		}
		cons := "yes"
		if !r.Consistent {
			cons = "NO"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Shards),
			fmt.Sprintf("%d", r.Commands),
			r.Distribution,
			fmt.Sprintf("%.3f", r.CmdsPerDelay),
			f2(r.CmdsPerDelay / base),
			pct(int(r.FastPathRate*1000), 1000),
			f2(r.MeanLatency),
			fmt.Sprintf("%d", r.KeyHistories),
			lineariz,
			cons,
		})
	}
	return t, nil
}
