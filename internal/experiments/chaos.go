package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/check"
	"repro/internal/faults"
	"repro/internal/msgnet"
	"repro/internal/smr"
	"repro/internal/workload"
)

// This file implements the E15 chaos experiment behind BENCH_5.json: the
// sharded SMR cluster under a compound fault plan — rolling server
// restarts with durable-snapshot recovery, a partition isolating one
// server for ~30% of the feed (briefly compounding with a crash into a
// total majority blackout), and message-duplicating links — with online
// linearizability checking on throughout. The windowed fast-path rate
// shows graceful degradation while the faults are active and recovery
// after they heal; client retries carry submissions across the blackout
// exactly once.

// ChaosConfig parameterizes one chaos run. The embedded ShardRunConfig
// carries the workload and cluster knobs (E12's); the chaos fields arm
// the fault machinery. The machinery is armed even with Faults off —
// recovery modeled, retry timers set on every attempt — which is what
// the plan-free parity tests rely on: arming alone must not perturb the
// schedule.
type ChaosConfig struct {
	ShardRunConfig
	// RetryTimeout bounds each submission attempt (smr.Config.RetryTimeout);
	// 0 defaults to 400 delays — far above fault-free latencies, so
	// retries fire only under real faults.
	RetryTimeout msgnet.Time
	// WindowEvery is the stats window width; 0 defaults to 1/32 of the
	// estimated feed span.
	WindowEvery msgnet.Time
	// Faults injects the canonical chaos plan (ChaosPlan). Off runs the
	// same armed harness fault-free (the baseline row).
	Faults bool
	// DupProb is the duplication probability of the faulty client↔server
	// links; 0 defaults to 0.05.
	DupProb float64
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	c.ShardRunConfig = c.ShardRunConfig.withDefaults()
	if c.RetryTimeout <= 0 {
		c.RetryTimeout = 400
	}
	if c.DupProb == 0 {
		c.DupProb = 0.05
	}
	if c.WindowEvery <= 0 {
		if span := c.feedSpan(); span >= 32 {
			c.WindowEvery = span / 32
		} else {
			c.WindowEvery = 1
		}
	}
	return c
}

// feedSpan estimates the paced feed's duration: the length of one
// (client, shard) stream times the pace. Fault times scale off it so one
// plan shape covers every run size.
func (c ChaosConfig) feedSpan() msgnet.Time {
	if c.Pace <= 0 {
		return 1
	}
	return msgnet.Time(c.Commands/(c.Clients*c.Shards)) * c.Pace
}

// ChaosResult reports one chaos run, JSON-ready for BENCH_5.json. It
// embeds the standard sharded-run metrics and adds the fault story:
// per-phase fast-path rates and the time the cluster took to regain the
// fast path after the faults healed.
type ChaosResult struct {
	ShardRunResult
	FaultsInjected bool  `json:"faults_injected"`
	Retries        int64 `json:"retries"`
	DuplicatedMsgs int64 `json:"duplicated_messages"`
	// FaultStart and HealAt delimit the plan's active period (virtual
	// time); the windowed rates below split on them.
	FaultStart int64 `json:"fault_start_delays"`
	HealAt     int64 `json:"heal_delays"`
	// Fast-path rates before the first fault, while faults are active,
	// and after every fault healed.
	FastPathBefore float64 `json:"fast_path_before"`
	FastPathDuring float64 `json:"fast_path_during"`
	FastPathAfter  float64 `json:"fast_path_after"`
	// TimeToRecover is the delay between the heal and the end of the
	// first post-heal window whose fast-path rate reached 90% of the
	// pre-fault rate (-1: never recovered; 0 with Faults off).
	TimeToRecover int64 `json:"time_to_recover_delays"`
}

// ChaosPlan builds the canonical E15 fault schedule over one feed span:
//
//   - message duplication (dupProb) on every client↔server link for the
//     whole run;
//   - rolling server restarts at 20%, 35% and 50% of the span, each
//     5% long, in an order chosen so the last crash overlaps the
//     partition below (a brief total loss of the server majority — the
//     client retry path's stress window);
//   - a partition isolating the last server from everyone else over
//     [45%, 75%) of the span, ~30% of the feed.
func ChaosPlan(clients, servers []msgnet.ProcID, span msgnet.Time, dupProb float64) faults.Plan {
	var p faults.Plan
	dup := msgnet.LinkRule{DupProb: dupProb}
	for _, c := range clients {
		for _, s := range servers {
			p.Links = append(p.Links,
				faults.LinkFault{From: c, To: s, Rule: dup},
				faults.LinkFault{From: s, To: c, Rule: dup})
		}
	}
	// Restart order s1, s2, ..., s0: the first server's downtime lands at
	// 50-55% of the span, inside the partition window, so the cluster
	// briefly has no reachable majority.
	order := append(append([]msgnet.ProcID{}, servers[1:]...), servers[0])
	p.Crashes = faults.RollingRestart(order, span/5, span*3/20, span/20)
	rest := append(append([]msgnet.ProcID{}, clients...), servers[:len(servers)-1]...)
	p.Partitions = []faults.Partition{
		faults.Split(rest, servers[len(servers)-1:], span*9/20, span*3/4),
	}
	return p
}

// RunChaos executes one chaos run and verifies it. The construction
// sequence mirrors RunSharded exactly — same workload generation, same
// network seed, same staggered paced feed — so a run with Faults off
// replays the fault-free baseline schedule event for event (compare
// ScheduleDigest against RunSharded's).
func RunChaos(ctx context.Context, cfg ChaosConfig) (ChaosResult, error) {
	cfg = cfg.withDefaults()
	span := cfg.feedSpan()
	faultStart, heal := span/5, span*3/4

	wl := workload.KeyedOpts{
		Clients:  cfg.Clients,
		Ops:      cfg.Commands,
		Keys:     cfg.Keys,
		ReadFrac: cfg.ReadFrac,
		ZipfS:    cfg.ZipfS,
	}
	ops := workload.Keyed(rand.New(rand.NewSource(cfg.Seed)), wl)
	perClient := make([][]smr.Command, cfg.Clients)
	for _, op := range ops {
		var cmd smr.Command
		if op.Read {
			cmd = smr.GetCmd(op.Key, op.Value)
		} else {
			cmd = smr.SetCmd(op.Key, op.Value)
		}
		perClient[op.Client] = append(perClient[op.Client], cmd)
	}
	keys := map[string]bool{}
	for _, op := range ops {
		keys[op.Key] = true
	}

	res := ChaosResult{
		ShardRunResult: ShardRunResult{
			Shards:       cfg.Shards,
			Commands:     cfg.Commands,
			Keys:         len(keys),
			Distribution: "uniform",
			Online:       cfg.Online,
		},
		FaultsInjected: cfg.Faults,
		FaultStart:     int64(faultStart),
		HealAt:         int64(heal),
	}
	if cfg.ZipfS > 0 {
		res.Distribution = fmt.Sprintf("zipf(%.2g)", cfg.ZipfS)
	}

	w := msgnet.New(msgnet.Config{Seed: cfg.Seed, MinDelay: 1, MaxDelay: 2})
	clients := procIDs("c", cfg.Clients)
	servers := procIDs("s", cfg.Servers)
	sc, err := smr.BuildSharded(w, clients, servers, smr.ShardedConfig{
		Config: smr.Config{
			FastPath:      true,
			QuorumTimeout: 8,
			Retransmit:    6,
			CompactEvery:  cfg.CompactEvery,
			Recovery:      true,
			RetryTimeout:  cfg.RetryTimeout,
		},
		Shards:       cfg.Shards,
		OnlineCheck:  cfg.Online,
		CheckBudget:  cfg.Budget,
		CheckContext: ctx,
		WindowEvery:  cfg.WindowEvery,
	})
	if err != nil {
		return res, err
	}
	if cfg.Faults {
		if err := ChaosPlan(clients, servers, span, cfg.DupProb).Apply(w); err != nil {
			return res, err
		}
	}
	start := time.Now()
	for i, c := range clients {
		offset := msgnet.Time(0)
		if cfg.Pace > 0 {
			offset = msgnet.Time(i) * cfg.Pace / msgnet.Time(cfg.Clients)
		}
		sc.SubmitPaced(c, perClient[i], offset, cfg.Pace)
	}
	end := sc.Run(1 << 40)
	wall := time.Since(start)
	res.ScheduleDigest = fmt.Sprintf("%016x", w.ScheduleDigest())
	res.DuplicatedMsgs = w.Duplicated()

	st := sc.Stats()
	if st.Landed != int64(cfg.Commands) {
		return res, fmt.Errorf("landed %d/%d commands", st.Landed, cfg.Commands)
	}
	res.SimTime = int64(end)
	if end > 0 {
		res.CmdsPerDelay = float64(st.Landed) / float64(end)
	}
	res.MeanLatency = st.MeanLatency()
	res.FastPathRate = st.FastPathRate()
	res.SwitchesPerCmd = float64(st.Switches) / float64(st.Landed)
	res.WallMs = float64(wall.Microseconds()) / 1000
	res.CmdsPerSecWall = float64(st.Landed) / wall.Seconds()
	res.Retries = st.Retries

	res.FastPathBefore, res.FastPathDuring, res.FastPathAfter, res.TimeToRecover =
		windowPhases(st.Windows, faultStart, heal)
	if !cfg.Faults {
		res.TimeToRecover = 0
	}

	res.Consistent = sc.CheckConsistency() == nil
	if !res.Consistent {
		return res, fmt.Errorf("consistency: %v", sc.CheckConsistency())
	}
	if !cfg.SkipCheck {
		cstart := time.Now()
		sum, err := sc.CheckLinearizable(ctx, check.WithBudget(cfg.Budget))
		res.CheckWallMs = float64((time.Since(cstart) + sum.FeedWall).Microseconds()) / 1000
		if err != nil {
			return res, err
		}
		res.Linearizable = true
		res.KeyHistories = sum.Traces
		res.CheckedOps = sum.Ops
		res.CheckNodes = sum.Nodes
	}
	return res, nil
}

// windowPhases splits the windowed landings on the fault plan's active
// period and computes the per-phase fast-path rates plus the time to
// recover: the delay from the heal to the end of the first post-heal
// window whose rate reached 90% of the pre-fault rate (-1 if none did).
func windowPhases(ws []smr.WindowStat, faultStart, heal msgnet.Time) (before, during, after float64, ttr int64) {
	var bl, bf, dl, df, al, af int64
	ttr = -1
	for _, w := range ws {
		switch {
		case w.End <= faultStart:
			bl += w.Landed
			bf += w.FastPath
		case w.Start >= heal:
			al += w.Landed
			af += w.FastPath
		default:
			dl += w.Landed
			df += w.FastPath
		}
	}
	rate := func(fast, landed int64) float64 {
		if landed == 0 {
			return 0
		}
		return float64(fast) / float64(landed)
	}
	before, during, after = rate(bf, bl), rate(df, dl), rate(af, al)
	for _, w := range ws {
		if w.Start >= heal && w.Landed > 0 && w.FastPathRate() >= 0.9*before {
			ttr = int64(w.End - heal)
			break
		}
	}
	return before, during, after, ttr
}

// E15Base is the canonical E15 configuration: the E12 cluster knobs at
// 16 shards with online checking on, 12,500 commands per shard, and the
// default chaos arming.
var E15Base = ChaosConfig{
	ShardRunConfig: ShardRunConfig{
		Shards:       16,
		Commands:     200_000,
		Clients:      4,
		Servers:      3,
		Pace:         12,
		ReadFrac:     0.3,
		Seed:         1,
		CompactEvery: 64,
		Online:       true,
	},
}

// E15Rows builds the E15 result pair — the fault-free baseline on the
// armed harness, then the chaos run — at the given scale. The E15 table
// and TestWriteBench5JSON (BENCH_5.json) share this builder so the
// recorded artifact can never drift from the experiment.
func E15Rows(ctx context.Context, shards, commands int) ([]ChaosResult, error) {
	cfg := E15Base
	cfg.Shards = shards
	cfg.Commands = commands
	baseline, err := RunChaos(ctx, cfg)
	if err != nil {
		return nil, fmt.Errorf("E15 baseline: %w", err)
	}
	cfg.Faults = true
	chaos, err := RunChaos(ctx, cfg)
	if err != nil {
		return []ChaosResult{baseline}, fmt.Errorf("E15 chaos: %w", err)
	}
	return []ChaosResult{baseline, chaos}, nil
}

// E15ChaosRecovery: the robustness claim — under rolling crash–recovery
// restarts, a 30%-of-the-run partition (briefly compounding into a total
// majority blackout) and duplicating links, the sharded cluster stays
// linearizable and consistent, degrades gracefully to the robust path,
// carries every submission exactly once through the retry machinery, and
// regains the fast path after the faults heal. Reduced here in table
// form; TestWriteBench5JSON runs the identical pair and records
// BENCH_5.json.
func E15ChaosRecovery(ctx context.Context) (Table, error) {
	t := Table{
		ID: "E15",
		Title: "chaos: rolling restarts + partition + duplicating links " +
			"(16 shards, 4 clients, 3 servers, online check on, seed 1)",
		Header: []string{"mode", "commands", "fast-path", "before", "during", "after",
			"recover (delays)", "retries", "dup msgs", "lin", "consistent"},
		Notes: []string{
			"Faults span 20–75% of the feed: rolling server restarts (durable-snapshot " +
				"recovery), a partition isolating one server for 30% of the feed — " +
				"overlapping one crash into a brief total majority blackout — and 5% " +
				"message duplication on every client↔server link throughout. Retried " +
				"submissions re-propose with capped exponential backoff and land exactly " +
				"once (verified online); 'recover' is the delay from the heal to the first " +
				"window back at ≥90% of the pre-fault fast-path rate. The baseline row runs " +
				"the same armed harness fault-free and reproduces the plain sharded " +
				"schedule digest. Machine-readable results: BENCH_5.json (TestWriteBench5JSON).",
		},
	}
	rows, err := E15Rows(ctx, E15Base.Shards, E15Base.Commands)
	if err != nil {
		return t, err
	}
	for _, r := range rows {
		mode := "baseline"
		if r.FaultsInjected {
			mode = "chaos"
		}
		lineariz := "yes"
		if !r.Linearizable {
			lineariz = "NO"
		}
		cons := "yes"
		if !r.Consistent {
			cons = "NO"
		}
		recover := fmt.Sprintf("%d", r.TimeToRecover)
		if r.TimeToRecover < 0 {
			recover = "never"
		}
		t.Rows = append(t.Rows, []string{
			mode,
			fmt.Sprintf("%d", r.Commands),
			pct(int(r.FastPathRate*1000), 1000),
			pct(int(r.FastPathBefore*1000), 1000),
			pct(int(r.FastPathDuring*1000), 1000),
			pct(int(r.FastPathAfter*1000), 1000),
			recover,
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%d", r.DuplicatedMsgs),
			lineariz,
			cons,
		})
	}
	return t, nil
}
