package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/lin"
	"repro/internal/trace"
)

// This file implements the E18 streaming-memory experiment behind
// BENCH_8.json: a single long-lived exact Session fed a deterministic
// capture-shaped register stream (ISSUE 9). The compacted frontier
// (DESIGN.md, decision 17) plus the per-feed budget
// (check.WithFeedBudget) are what make the run possible at all — the
// live heap must stay flat while the history grows by orders of
// magnitude, and the comparison arm shows the uncompacted reference
// session's heap growing linearly (and its wall time quadratically) on
// the identical stream prefix.

// E18 canonical scales.
const (
	// E18FullOps is the streamed operation count of the full run
	// (bench8 -bench8-full, nightly).
	E18FullOps = 10_000_000
	// E18SmokeOps is the scaled-down stream for CI smoke and the
	// EXPERIMENTS.md table.
	E18SmokeOps = 500_000
	// E18CompareOps caps the compacted-vs-uncompacted arm: the
	// uncompacted reference copies O(history) chain state per response,
	// so its wall time is quadratic and larger streams are infeasible —
	// which is the result.
	E18CompareOps = 20_000
	// E18Checkpoints is the number of evenly spaced heap samples taken
	// over the stream.
	E18Checkpoints = 8
)

// e18Gen deterministically emits the capture-shaped register stream:
// sequential-heavy (runs of write "a" / read-back pairs, the regime
// where fully-claimed chain prefixes grow and compaction bites) with a
// periodic two-client overlap burst (a read spanning a concurrent
// write, the shape the capture merge's timestamp ties produce). All
// action values are hoisted so steady-state emission allocates nothing
// besides what the session retains — the generator never materializes
// the trace.
type e18Gen struct {
	step               int
	wA, wB, rd         trace.Value
	wOut, rOutA, rOutB trace.Value
	last               trace.Value
}

func newE18Gen() *e18Gen {
	return &e18Gen{
		wA:    adt.WriteInput("a"),
		wB:    adt.WriteInput("b"),
		rd:    adt.ReadInput(),
		wOut:  adt.WriteOutput(),
		rOutA: adt.ReadOutput("a"),
		rOutB: adt.ReadOutput("b"),
	}
}

// emit feeds the next operation(s) into feed and returns how many
// operations (invoke/response pairs) it emitted: 2 for the overlap
// burst, 1 otherwise.
func (g *e18Gen) emit(feed func(trace.Action) error) (int, error) {
	m := g.step % 16
	g.step++
	switch {
	case m == 14:
		// Overlap burst: client p's read spans client q's write of "b",
		// so the read must observe it.
		if err := feed(trace.Invoke("p", 1, g.rd)); err != nil {
			return 0, err
		}
		if err := feed(trace.Invoke("q", 1, g.wB)); err != nil {
			return 0, err
		}
		if err := feed(trace.Response("q", 1, g.wB, g.wOut)); err != nil {
			return 0, err
		}
		if err := feed(trace.Response("p", 1, g.rd, g.rOutB)); err != nil {
			return 0, err
		}
		g.last = g.rOutB
		return 2, nil
	case m%2 == 0:
		if err := feed(trace.Invoke("p", 1, g.wA)); err != nil {
			return 0, err
		}
		if err := feed(trace.Response("p", 1, g.wA, g.wOut)); err != nil {
			return 0, err
		}
		g.last = g.rOutA
		return 1, nil
	default:
		if err := feed(trace.Invoke("p", 1, g.rd)); err != nil {
			return 0, err
		}
		if err := feed(trace.Response("p", 1, g.rd, g.last)); err != nil {
			return 0, err
		}
		return 1, nil
	}
}

// liveHeap forces a collection and returns the post-GC live heap. Peak
// RSS proper is monotone per process and platform-dependent; the post-GC
// HeapAlloc is the machine-independent proxy the bench guard can
// compare across runs.
func liveHeap() uint64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return m.HeapAlloc
}

// E18MemRow is one heap checkpoint of the streaming run, JSON-ready for
// BENCH_8.json. Nodes is deterministic (seedless deterministic
// generator, sequential engine); heap bytes are post-GC live heap and
// stable to well within the guard's order-of-magnitude tripwire.
type E18MemRow struct {
	Name          string  `json:"name"`
	Ops           int     `json:"ops"`
	LiveHeapBytes uint64  `json:"live_heap_bytes"`
	Nodes         int     `json:"nodes"`
	WallMs        float64 `json:"wall_ms"`
}

// E18StreamMem drives one compacted exact register session through n
// capture-shaped operations and samples the live heap at `checkpoints`
// evenly spaced points. The session runs with the per-feed budget: the
// stream's cumulative node count exceeds any fixed budget by design,
// while each individual Feed stays far under it.
func E18StreamMem(ctx context.Context, n, checkpoints int) ([]E18MemRow, error) {
	s := lin.NewSession(ctx, adt.Register{},
		check.WithWitness(false), check.WithFeedBudget(true))
	g := newE18Gen()
	rows := make([]E18MemRow, 0, checkpoints)
	per := n / checkpoints
	if per < 1 {
		per = 1
	}
	done := 0
	start := time.Now()
	for len(rows) < checkpoints && done < n {
		target := done + per
		if len(rows) == checkpoints-1 || target > n {
			target = n
		}
		for done < target {
			d, err := g.emit(s.Feed)
			if err != nil {
				return nil, fmt.Errorf("E18 op %d: %w", done, err)
			}
			done += d
		}
		rows = append(rows, E18MemRow{
			Name:          fmt.Sprintf("stream-checkpoint-%d", len(rows)+1),
			Ops:           done,
			LiveHeapBytes: liveHeap(),
			Nodes:         s.Nodes(),
			WallMs:        float64(time.Since(start).Microseconds()) / 1000,
		})
	}
	r, err := s.Result()
	if err != nil {
		return nil, fmt.Errorf("E18 result: %w", err)
	}
	if !r.OK {
		return nil, fmt.Errorf("E18 clean stream judged non-linearizable: %s", r.Reason)
	}
	runtime.KeepAlive(s)
	return rows, nil
}

// E18CompareRow contrasts the compacted session against the uncompacted
// reference on the identical stream prefix, JSON-ready for
// BENCH_8.json. PeakRSSBytes is the post-GC live heap with the session
// still reachable — for the uncompacted arm this is dominated by the
// O(history) chain state every frontier configuration retains.
type E18CompareRow struct {
	Name         string  `json:"name"`
	Ops          int     `json:"ops"`
	PeakRSSBytes uint64  `json:"peak_rss_bytes"`
	Nodes        int     `json:"nodes"`
	WallMs       float64 `json:"wall_ms"`
}

// E18CompactVsUncompacted runs both engines over the first n operations
// of the E18 stream. n is capped (E18CompareOps) because the
// uncompacted arm's per-response chain copying makes its wall time
// quadratic in n; the compacted arm at full E18 scale is E18StreamMem.
func E18CompactVsUncompacted(ctx context.Context, n int) ([]E18CompareRow, error) {
	rows := make([]E18CompareRow, 0, 2)
	for _, arm := range []struct {
		name    string
		compact bool
	}{{"compare-compacted", true}, {"compare-uncompacted", false}} {
		s := lin.NewSession(ctx, adt.Register{},
			check.WithWitness(false), check.WithFeedBudget(true),
			check.WithCompaction(arm.compact))
		g := newE18Gen()
		start := time.Now()
		for done := 0; done < n; {
			d, err := g.emit(s.Feed)
			if err != nil {
				return nil, fmt.Errorf("E18 %s op %d: %w", arm.name, done, err)
			}
			done += d
		}
		wall := float64(time.Since(start).Microseconds()) / 1000
		r, err := s.Result()
		if err != nil {
			return nil, fmt.Errorf("E18 %s result: %w", arm.name, err)
		}
		if !r.OK {
			return nil, fmt.Errorf("E18 %s judged non-linearizable: %s", arm.name, r.Reason)
		}
		rows = append(rows, E18CompareRow{
			Name:         arm.name,
			Ops:          n,
			PeakRSSBytes: liveHeap(),
			Nodes:        s.Nodes(),
			WallMs:       wall,
		})
		runtime.KeepAlive(s)
	}
	return rows, nil
}

// E18StreamMemTable renders the experiment at smoke scale for
// EXPERIMENTS.md; the full-scale run is bench8 -bench8-full
// (BENCH_8.json).
func E18StreamMemTable(ctx context.Context) (Table, error) {
	mem, err := E18StreamMem(ctx, E18SmokeOps, E18Checkpoints)
	if err != nil {
		return Table{}, err
	}
	cmp, err := E18CompactVsUncompacted(ctx, E18CompareOps)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:     "E18",
		Title:  fmt.Sprintf("Streaming memory: %d capture-shaped ops through one compacted session", E18SmokeOps),
		Header: []string{"arm", "ops", "live heap MiB", "nodes", "wall ms"},
	}
	for _, r := range mem {
		t.Rows = append(t.Rows, []string{
			r.Name, fmt.Sprintf("%d", r.Ops), f2(float64(r.LiveHeapBytes) / (1 << 20)),
			fmt.Sprintf("%d", r.Nodes), f2(r.WallMs)})
	}
	for _, r := range cmp {
		t.Rows = append(t.Rows, []string{
			r.Name, fmt.Sprintf("%d", r.Ops), f2(float64(r.PeakRSSBytes) / (1 << 20)),
			fmt.Sprintf("%d", r.Nodes), f2(r.WallMs)})
	}
	first, last := mem[0].LiveHeapBytes, mem[len(mem)-1].LiveHeapBytes
	t.Notes = append(t.Notes,
		fmt.Sprintf("Flatness: checkpoint heap %s → %s MiB over a %d× history growth; "+
			"the uncompacted reference at %d ops already holds %s MiB.",
			f2(float64(first)/(1<<20)), f2(float64(last)/(1<<20)), E18Checkpoints,
			E18CompareOps, f2(float64(cmp[1].PeakRSSBytes)/(1<<20))),
		"Full scale (10M ops) is BENCH_8.json via `go test -run TestWriteBench8JSON . -args -bench8-full`.")
	return t, nil
}
