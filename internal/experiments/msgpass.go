package experiments

import (
	"context"
	"fmt"

	"repro/internal/adt"
	"repro/internal/lin"
	"repro/internal/mpcons"
	"repro/internal/msgnet"
	"repro/internal/paxos"
	"repro/internal/quorum"
	"repro/internal/trace"
)

func procIDs(prefix string, n int) []msgnet.ProcID {
	ids := make([]msgnet.ProcID, n)
	for i := range ids {
		ids[i] = msgnet.ProcID(fmt.Sprintf("%s%d", prefix, i+1))
	}
	return ids
}

func specProtos() []mpcons.PhaseProtocol {
	// The timeout covers the worst-case round trip under the jittered
	// configurations below (2 × MaxDelay = 8), so timer expiries signal
	// faults rather than unlucky jitter.
	return []mpcons.PhaseProtocol{quorum.Protocol{Timeout: 10, Retransmit: 6}, paxos.Protocol{}}
}

func paxosOnly() []mpcons.PhaseProtocol {
	return []mpcons.PhaseProtocol{paxos.Protocol{}}
}

// runConsensus builds and runs one consensus simulation; proposals are
// scheduled by the prepare callback.
func runConsensus(cfg msgnet.Config, nClients, nServers int, protos []mpcons.PhaseProtocol,
	prepare func(w *msgnet.Network, obj *mpcons.Object)) (*mpcons.Object, error) {
	w := msgnet.New(cfg)
	obj, err := mpcons.Build(w, procIDs("c", nClients), procIDs("s", nServers), protos...)
	if err != nil {
		return nil, err
	}
	prepare(w, obj)
	obj.Run(500_000)
	return obj, nil
}

// checkLinearizable verifies the composed object's switch-free trace.
func checkLinearizable(ctx context.Context, obj *mpcons.Object) error {
	plain := obj.Trace().Project(func(a trace.Action) bool { return a.Kind != trace.Swi })
	res, err := lin.Check(ctx, adt.Consensus{}, plain)
	if err != nil {
		return err
	}
	if !res.OK {
		return fmt.Errorf("trace not linearizable: %s", res.Reason)
	}
	return nil
}

// E1FastPathLatency: §2.1's headline numbers — Quorum decides in 2
// message delays; Paxos needs two round trips (4 delays as proposer, plus
// one more for remote learners). Fault-free, contention-free, unit
// delays; latency is exact virtual time.
func E1FastPathLatency(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "E1",
		Title:  "fault-free latency in message delays (1 client, unit delay, seed 1)",
		Header: []string{"servers", "Quorum+Backup", "Paxos-only", "paper's claim"},
		Notes: []string{
			"Paper §2.1: the fast path decides in 2 message delays; Paxos has a minimum " +
				"latency of 3 from a proposer's perspective (prepare+promise+accept); our " +
				"measurement counts the full accept acknowledgment, giving 4.",
		},
	}
	for _, servers := range []int{3, 5, 7} {
		var lat [2]msgnet.Time
		for i, protos := range [][]mpcons.PhaseProtocol{specProtos(), paxosOnly()} {
			obj, err := runConsensus(msgnet.Config{Seed: 1}, 1, servers, protos,
				func(w *msgnet.Network, obj *mpcons.Object) {
					obj.ProposeAt("c1", "v", 0)
				})
			if err != nil {
				return t, err
			}
			rs := obj.Results()
			if len(rs) != 1 {
				return t, fmt.Errorf("E1: no decision with %d servers", servers)
			}
			lat[i] = rs[0].Latency()
			if err := checkLinearizable(ctx, obj); err != nil {
				return t, err
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", servers),
			fmt.Sprintf("%d delays", lat[0]),
			fmt.Sprintf("%d delays", lat[1]),
			"2 vs 3+",
		})
	}
	return t, nil
}

// E2ContentionSweep: concurrent proposers under jittered delays. The
// fast path wins at low contention; as contention grows, switches to
// Backup dominate and latency approaches Paxos'.
func E2ContentionSweep(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "E2",
		Title:  "contention sweep (3 servers, delays 1–4, seeds 1–30, all ops concurrent)",
		Header: []string{"clients", "mean latency", "fast-path rate", "switch rate", "linearizable"},
		Notes: []string{
			"Shape: monotone latency growth and fast-path decay with contention; every " +
				"run's trace checked linearizable.",
		},
	}
	for _, clients := range []int{1, 2, 4, 8} {
		var totalLat, ops, fast, switched int
		for seed := int64(1); seed <= 30; seed++ {
			obj, err := runConsensus(msgnet.Config{Seed: seed, MinDelay: 1, MaxDelay: 4},
				clients, 3, specProtos(),
				func(w *msgnet.Network, obj *mpcons.Object) {
					for i := 0; i < clients; i++ {
						obj.ProposeAt(msgnet.ProcID(fmt.Sprintf("c%d", i+1)),
							trace.Value(fmt.Sprintf("v%d", i)), msgnet.Time(i%2))
					}
				})
			if err != nil {
				return t, err
			}
			for _, r := range obj.Results() {
				ops++
				totalLat += int(r.Latency())
				if r.Phase == 1 {
					fast++
				}
				if r.Switches > 0 {
					switched++
				}
			}
			if err := checkLinearizable(ctx, obj); err != nil {
				return t, fmt.Errorf("seed %d: %w", seed, err)
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", clients),
			f2(float64(totalLat) / float64(ops)),
			pct(fast, ops),
			pct(switched, ops),
			"yes",
		})
	}
	return t, nil
}

// E3FaultInjection: crashes and message loss force the fast path to time
// out; the composition stays safe and live while a server majority is up.
func E3FaultInjection(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "E3",
		Title:  "fault injection (2 clients, 5 servers, delays 1–3, seeds 1–20)",
		Header: []string{"crashed", "drop prob", "decided", "fast-path rate", "mean latency", "linearizable"},
		Notes: []string{
			"Crashing any server disables the fast path (it needs accepts from ALL " +
				"servers); the Backup keeps deciding up to 2 of 5 crashes.",
		},
	}
	for _, tc := range []struct {
		crash int
		drop  float64
	}{
		{0, 0}, {1, 0}, {2, 0}, {0, 0.10}, {2, 0.10},
	} {
		var ops, decided, fast, totalLat int
		for seed := int64(1); seed <= 20; seed++ {
			obj, err := runConsensus(
				msgnet.Config{Seed: seed, MinDelay: 1, MaxDelay: 3, DropProb: tc.drop},
				2, 5, specProtos(),
				func(w *msgnet.Network, obj *mpcons.Object) {
					for i := 0; i < tc.crash; i++ {
						w.Crash(msgnet.ProcID(fmt.Sprintf("s%d", i+1)), msgnet.Time(i))
					}
					obj.ProposeAt("c1", "a", 1)
					obj.ProposeAt("c2", "b", 2)
				})
			if err != nil {
				return t, err
			}
			ops += 2
			for _, r := range obj.Results() {
				decided++
				totalLat += int(r.Latency())
				if r.Phase == 1 {
					fast++
				}
			}
			if err := checkLinearizable(ctx, obj); err != nil {
				return t, fmt.Errorf("crash=%d drop=%.2f seed %d: %w", tc.crash, tc.drop, seed, err)
			}
		}
		meanLat := "n/a"
		if decided > 0 {
			meanLat = f2(float64(totalLat) / float64(decided))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d/5", tc.crash),
			fmt.Sprintf("%.0f%%", tc.drop*100),
			pct(decided, ops),
			pct(fast, decided),
			meanLat,
			"yes",
		})
	}
	return t, nil
}

// E10PhaseChain: three phases (Quorum → Quorum retry → Paxos) composed
// without modifying any of them — the paper's scalability claim (§1, §5.1:
// adding a dimension of speculation is just another phase). Clients
// switch independently; the deciding phase varies with conditions.
func E10PhaseChain(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "E10",
		Title:  "three-phase chain Quorum→Quorum→Paxos (3 servers, seeds 1–30)",
		Header: []string{"scenario", "decided", "by phase 1", "by phase 2", "by phase 3", "linearizable"},
		Notes: []string{
			"The second Quorum phase retries the fast path on fresh per-phase server " +
				"state; under pure contention it often absorbs the conflict (switch values " +
				"converge), under crashes it must fall through to Paxos.",
		},
	}
	protos := []mpcons.PhaseProtocol{
		quorum.Protocol{Timeout: 6, Retransmit: 4},
		quorum.Protocol{Timeout: 6, Retransmit: 4},
		paxos.Protocol{},
	}
	scenarios := []struct {
		name  string
		crash int
		delay msgnet.Time
	}{
		{"fault-free sequential", 0, 1},
		{"contention (delays 1–4)", 0, 4},
		{"1 crash + contention", 1, 4},
	}
	for _, sc := range scenarios {
		var decided, byPhase [4]int
		var ops int
		_ = decided
		for seed := int64(1); seed <= 30; seed++ {
			w := msgnet.New(msgnet.Config{Seed: seed, MinDelay: 1, MaxDelay: sc.delay})
			obj, err := mpcons.Build(w, procIDs("c", 3), procIDs("s", 3), protos...)
			if err != nil {
				return t, err
			}
			for i := 0; i < sc.crash; i++ {
				w.Crash(msgnet.ProcID(fmt.Sprintf("s%d", i+1)), 0)
			}
			stagger := msgnet.Time(0)
			if sc.name == "fault-free sequential" {
				stagger = 10
			}
			for i := 0; i < 3; i++ {
				obj.ProposeAt(msgnet.ProcID(fmt.Sprintf("c%d", i+1)),
					trace.Value(fmt.Sprintf("v%d", i)), msgnet.Time(i)*stagger)
			}
			obj.Run(500_000)
			ops += 3
			for _, r := range obj.Results() {
				byPhase[r.Phase]++
			}
			tr := obj.Trace()
			if !tr.PhaseWellFormed(1, 4) {
				return t, fmt.Errorf("E10: trace not (1,4)-well-formed at seed %d", seed)
			}
			if err := checkLinearizable(ctx, obj); err != nil {
				return t, fmt.Errorf("E10 %s seed %d: %w", sc.name, seed, err)
			}
		}
		total := byPhase[1] + byPhase[2] + byPhase[3]
		t.Rows = append(t.Rows, []string{
			sc.name,
			pct(total, ops),
			pct(byPhase[1], total),
			pct(byPhase[2], total),
			pct(byPhase[3], total),
			"yes",
		})
	}
	return t, nil
}
