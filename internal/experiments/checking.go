package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/adt"
	"repro/internal/almspec"
	"repro/internal/check"
	"repro/internal/ioa"
	"repro/internal/lin"
	"repro/internal/slin"
	"repro/internal/smcons"
	"repro/internal/trace"
	"repro/internal/workload"
)

// E6ModelCheck: exhaustive and randomized model checking of the §2.5
// shared-memory composition (Figures 2+3) against the lin/slin oracles
// and the paper's invariants I1–I5.
func E6ModelCheck(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "E6",
		Title:  "model checking RCons+CASCons (values distinct per client)",
		Header: []string{"configuration", "mode", "runs/states", "steps", "violations"},
		Notes: []string{
			"Oracles per complete run: decisions agree and are proposed; switch-free " +
				"projection linearizable; phase projections satisfy I1–I3 / I4–I5 and " +
				"SLin(1,2)/SLin(2,3). State mode checks splitter uniqueness, agreement " +
				"and state-form I1 in every distinct reachable state.",
		},
	}
	fullOracle := func(s *smcons.System) error {
		tr := s.Trace()
		plain := tr.Project(func(a trace.Action) bool { return a.Kind != trace.Swi })
		res, err := lin.Check(ctx, adt.Consensus{}, plain)
		if err != nil {
			return err
		}
		if !res.OK {
			return fmt.Errorf("not linearizable: %v", tr)
		}
		if err := slin.FirstPhaseInvariants(tr.ProjectSig(1, 2), 1, 2); err != nil {
			return err
		}
		if err := slin.SecondPhaseInvariants(tr.ProjectSig(2, 3), 2, 3); err != nil {
			return err
		}
		sres, err := slin.Check(ctx, adt.Consensus{}, slin.ConsensusRInit{}, 1, 2, tr.ProjectSig(1, 2),
			check.WithTemporalAbortOrder(true))
		if err != nil {
			return err
		}
		if !sres.OK {
			return fmt.Errorf("RCons projection not SLin: %v", tr)
		}
		sres, err = slin.Check(ctx, adt.Consensus{}, slin.ConsensusRInit{}, 2, 3, tr.ProjectSig(2, 3))
		if err != nil {
			return err
		}
		if !sres.OK {
			return fmt.Errorf("CASCons projection not SLin: %v", tr)
		}
		return nil
	}

	// Exhaustive schedules, 2 clients (folded interface events).
	sys := smcons.New(smcons.Config{Values: []trace.Value{"a", "b"}, FoldEndpoints: true})
	st, err := check.ExhaustiveTraces(sys, fullOracle)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"2 clients", "exhaustive schedules",
		fmt.Sprintf("%d", st.Runs), fmt.Sprintf("%d", st.Steps), "0"})

	// Exhaustive state graph, 3 clients.
	sys3 := smcons.New(smcons.Config{Values: []trace.Value{"a", "b", "c"}})
	st3, err := check.ExhaustiveStates(sys3, func(s *smcons.System) error {
		winners := 0
		var phase1 []trace.Value
		for _, p := range s.Procs {
			if p.SplitterWon() {
				winners++
			}
			if d, phase, ok := p.Decision(); ok && phase == 1 {
				phase1 = append(phase1, d)
			}
		}
		if winners > 1 {
			return fmt.Errorf("splitter uniqueness violated")
		}
		for i := 1; i < len(phase1); i++ {
			if phase1[i] != phase1[0] {
				return fmt.Errorf("phase-1 agreement violated")
			}
		}
		return nil
	})
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"3 clients", "exhaustive states",
		fmt.Sprintf("%d", st3.States), fmt.Sprintf("%d", st3.Steps), "0"})

	// Random schedules, 4 clients, full oracle.
	sys4 := smcons.New(smcons.Config{Values: []trace.Value{"a", "b", "c", "d"}})
	st4, err := check.RandomTraces(sys4, 500, 42, fullOracle)
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"4 clients", "random schedules (seed 42)",
		fmt.Sprintf("%d", st4.Runs), fmt.Sprintf("%d", st4.Steps), "0"})
	return t, nil
}

// E6bAbortOrderDivergence quantifies the literal-vs-temporal Abort-Order
// gap this reproduction uncovered (see package slin): Quorum schedules
// with operations invoked after a switch satisfy the paper's I1–I3 and
// the temporal variant, but fail the literal Definitions 28+32.
func E6bAbortOrderDivergence(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "E6b",
		Title:  "literal vs temporal Abort-Order on generated Quorum-shaped traces (seeds 1–400)",
		Header: []string{"schedule family", "traces", "I1–I3 hold", "SLin literal", "SLin temporal"},
		Notes: []string{
			"Finding: the paper's §2.4 proof that I1–I3 imply SLin skips abort-Validity " +
				"(Definition 28) and fails on schedules where a client decides after " +
				"another client's switch using a later-invoked input; the §6 automaton " +
				"freezes hist at the first abort, confirming the literal reading.",
		},
	}
	families := []struct {
		name      string
		noLateOps bool
	}{
		{"no operations after a switch", true},
		{"unrestricted schedules", false},
	}
	for _, fam := range families {
		r := rand.New(rand.NewSource(9))
		total, inv, litOK, tempOK := 0, 0, 0, 0
		for i := 0; i < 400; i++ {
			tr := workload.FirstPhase(r, workload.PhaseOpts{Clients: 3, NoLateOps: fam.noLateOps})
			total++
			if slin.FirstPhaseInvariants(tr, 1, 2) == nil {
				inv++
			}
			res, err := slin.Check(ctx, adt.Consensus{}, slin.ConsensusRInit{}, 1, 2, tr)
			if err != nil {
				return t, err
			}
			if res.OK {
				litOK++
			}
			res, err = slin.Check(ctx, adt.Consensus{}, slin.ConsensusRInit{}, 1, 2, tr,
				check.WithTemporalAbortOrder(true))
			if err != nil {
				return t, err
			}
			if res.OK {
				tempOK++
			}
		}
		t.Rows = append(t.Rows, []string{fam.name,
			fmt.Sprintf("%d", total), pct(inv, total), pct(litOK, total), pct(tempOK, total)})
	}
	return t, nil
}

// E7CompositionRefinement: the intra-object composition theorem
// (Theorem 3) model-checked on the §6 automaton.
func E7CompositionRefinement(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "E7",
		Title:  "Theorem 3 model check: Spec(1,2) ‖ Spec(2,3) ⊑ Spec(1,3)",
		Header: []string{"check", "space", "result"},
		Notes: []string{
			"Bounded-exhaustive over 2 clients × 1 op each with full abort-history " +
				"universes; the subset construction handles the spec's nondeterminism " +
				"exactly. The Isabelle proof establishes the unbounded statement; a " +
				"violation here would have refuted it.",
		},
	}
	clients := []trace.ClientID{"c1", "c2"}
	inputs := []trace.Value{"u1", "u2"}
	first := almspec.Spec(almspec.Config{M: 1, N: 2, Clients: clients, Inputs: inputs})
	second := almspec.Spec(almspec.Config{
		M: 2, N: 3, Clients: clients, Inputs: inputs,
		InitUniverse: allNoRepeatSeqs(inputs),
	})
	impl := ioa.Compose(first, second)
	spec := almspec.Spec(almspec.Config{M: 1, N: 3, Clients: clients, Inputs: inputs})
	res, err := ioa.CheckTraceInclusion(impl, spec, ioa.InclusionOptions{
		MaxPairs: 5_000_000,
		Class:    almspec.ClassErasingLevels(1, 3),
	})
	if err != nil {
		return t, err
	}
	verdict := "REFUTED"
	if res.OK {
		verdict = "refinement holds"
	}
	t.Rows = append(t.Rows, []string{"trace inclusion (subset construction)",
		fmt.Sprintf("%d subset pairs", res.Pairs), verdict})

	// Cross-validation: bounded traces of the composition satisfy
	// SLin(1,3) per the independent trace checker.
	count := 0
	err = ioa.ExternalTraces(impl, 6, 3_000_000, func(actions []ioa.Action) error {
		tr := almspec.ToTrace(actions)
		sres, err := slin.Check(ctx, adt.Universal{}, slin.UniversalRInit{}, 1, 3, tr)
		if err != nil {
			return err
		}
		if !sres.OK {
			return fmt.Errorf("composed trace violates SLin(1,3): %v", tr)
		}
		count++
		return nil
	})
	if err != nil {
		return t, err
	}
	t.Rows = append(t.Rows, []string{"composition traces vs slin checker",
		fmt.Sprintf("%d bounded traces", count), "all satisfy SLin(1,3)"})
	return t, nil
}

func allNoRepeatSeqs(inputs []trace.Value) []trace.History {
	var out []trace.History
	var rec func(prefix trace.History, rest []trace.Value)
	rec = func(prefix trace.History, rest []trace.Value) {
		out = append(out, prefix.Clone())
		for i, v := range rest {
			nr := append(append([]trace.Value{}, rest[:i]...), rest[i+1:]...)
			rec(prefix.Append(v), nr)
		}
	}
	rec(trace.History{}, inputs)
	return out
}

// E8DefinitionEquivalence: Theorem 1 — the new and classical definitions
// of linearizability agree on unique-input traces, across four ADTs; and
// the repeated-events counterexample this reproduction found.
func E8DefinitionEquivalence(ctx context.Context) (Table, error) {
	t := Table{
		ID:     "E8",
		Title:  "definition equivalence on random traces (seed 42, 400 traces per ADT)",
		Header: []string{"ADT", "traces", "agree", "linearizable", "not linearizable"},
		Notes: []string{
			"With unique occurrence tags the two checkers agreed on every trace. " +
				"WITHOUT tags Theorem 1 fails: the repeated-events trace of " +
				"lin.TestRepeatedEventsDivergence is accepted by the new definition and " +
				"rejected by the classical one (a finding of this reproduction; the new " +
				"definition's Validity is occurrence-blind).",
		},
	}
	cases := []struct {
		name   string
		f      adt.Folder
		inputs []trace.Value
	}{
		{"consensus", adt.Consensus{}, []trace.Value{adt.ProposeInput("a"), adt.ProposeInput("b")}},
		{"register", adt.Register{}, []trace.Value{adt.WriteInput("x"), adt.ReadInput()}},
		{"counter", adt.Counter{}, []trace.Value{adt.IncInput(), adt.GetInput()}},
		{"queue", adt.Queue{}, []trace.Value{adt.EnqInput("x"), adt.DeqInput()}},
	}
	for _, tc := range cases {
		// Trace generation is sequential (one deterministic seed stream);
		// the two checker sweeps shard the batch across GOMAXPROCS cores.
		r := rand.New(rand.NewSource(42))
		const n = 400
		traces := make([]trace.Trace, n)
		for i := range traces {
			opts := workload.TraceOpts{
				Clients: 3, Ops: 4 + r.Intn(3), Inputs: tc.inputs,
				PendingProb: 0.2, UniqueTags: true,
			}
			if i%2 == 1 {
				opts.CorruptProb = 0.5
			}
			traces[i] = workload.Random(tc.f, r, opts)
		}
		newRes, err := lin.CheckAll(ctx, tc.f, traces)
		if err != nil {
			return t, err
		}
		classicalRes, err := lin.CheckClassicalAll(ctx, tc.f, traces)
		if err != nil {
			return t, err
		}
		agree, yes, no := 0, 0, 0
		for i := range traces {
			if newRes[i].OK == classicalRes[i].OK {
				agree++
			}
			if newRes[i].OK {
				yes++
			} else {
				no++
			}
		}
		t.Rows = append(t.Rows, []string{tc.name, fmt.Sprintf("%d", n),
			pct(agree, n), fmt.Sprintf("%d", yes), fmt.Sprintf("%d", no)})
	}
	return t, nil
}
