// Package experiments regenerates every experiment table of
// EXPERIMENTS.md (the E1–E19 index of DESIGN.md). Each experiment is a
// function returning a Table; cmd/experiments prints them and the root
// benchmarks wrap the same primitives in testing.B loops.
//
// All simulations are deterministic: tables list the seeds they use.
package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"
)

// Table is one experiment's result.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Render writes the table in markdown form.
func Render(w io.Writer, t Table) {
	fmt.Fprintf(w, "## %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(t.Header, " | "))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "|%s|\n", strings.Join(sep, "|"))
	for _, r := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(r, " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n%s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment pairs an ID with its runner. Runners are context-aware
// (checker API v2): cancelling ctx aborts the checker searches inside an
// experiment; cmd/experiments wires its -timeout flag through here.
type Experiment struct {
	ID  string
	Run func(ctx context.Context) (Table, error)
}

// All lists every experiment in order.
func All() []Experiment {
	return []Experiment{
		{"E1", E1FastPathLatency},
		{"E2", E2ContentionSweep},
		{"E3", E3FaultInjection},
		{"E4", E4RegisterVsCAS},
		{"E5", E5SharedMemContention},
		{"E6", E6ModelCheck},
		{"E6b", E6bAbortOrderDivergence},
		{"E7", E7CompositionRefinement},
		{"E8", E8DefinitionEquivalence},
		{"E9", E9SMRThroughput},
		{"E10", E10PhaseChain},
		{"E11", E11UniversalConstruction},
		{"E12", E12ShardSweep},
		{"E13", E13PORReduction},
		{"E14", E14LongTraceSweep},
		{"E15", E15ChaosRecovery},
		{"E16", E16FastpathCheckers},
		{"E17", E17CaptureHunt},
		{"E18", E18StreamMemTable},
		{"E19", E19TxnSweep},
	}
}

func f2(x float64) string { return fmt.Sprintf("%.2f", x) }

func pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(num)/float64(den))
}
