package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/faults"
	"repro/internal/msgnet"
	"repro/internal/smr"
	"repro/internal/workload"
)

// This file implements the E19 transaction sweep: the cross-shard
// atomic-transaction experiment behind BENCH_9.json. One run drives a
// zipf-contended mixed workload — single-key operations plus multi-key
// MultiPut/MultiGet/CAS transactions — through a TxnCluster (2PC layered
// on the per-shard speculative logs, DESIGN.md decision 18), optionally
// under rolling coordinator crash–restarts, then verifies per-shard log
// agreement, every fast-path key's register history, and every
// txn-connected component's merged history against the adt.TxnKV product
// folder.

// TxnRunConfig parameterizes one mixed transactional run. The embedded
// ShardRunConfig fields keep their E12 meanings (Commands counts
// workload items — a transaction is one item).
type TxnRunConfig struct {
	ShardRunConfig
	// TxnFrac is the fraction of workload items that are multi-key
	// transactions (workload.MixedOpts.TxnFrac).
	TxnFrac float64
	// TxnKeysMax bounds the keys per transaction (default 4).
	TxnKeysMax int
	// TxnKeys restricts transaction key draws to the first TxnKeys keys
	// (default all): keys beyond the range stay on the register fast
	// path.
	TxnKeys int
	// Groups partitions the transactional key range into key-groups,
	// bounding txn-connected component sizes (workload.MixedOpts.Groups).
	Groups int
	// ReadTxnFrac and CASFrac split transactions into MultiGets, CAS
	// read-modify-writes, and MultiPuts (workload defaults 0.3/0.3).
	ReadTxnFrac float64
	CASFrac     float64
	// RecoveryTimeout arms the transaction recovery watchdog
	// (smr.TxnConfig.RecoveryTimeout); zero disables it.
	RecoveryTimeout msgnet.Time
	// CoordinatorCrashes injects rolling crash–restarts across every
	// client (each transaction coordinator crashes mid-run and restarts,
	// staggered): CrashStart/CrashEvery/CrashDown parameterize
	// faults.RollingRestart.
	CoordinatorCrashes bool
	CrashStart         msgnet.Time
	CrashEvery         msgnet.Time
	CrashDown          msgnet.Time
}

func (c TxnRunConfig) withDefaults() TxnRunConfig {
	c.ShardRunConfig = c.ShardRunConfig.withDefaults()
	if c.RecoveryTimeout <= 0 {
		c.RecoveryTimeout = 2000
	}
	if c.CrashStart <= 0 {
		c.CrashStart = 200
	}
	if c.CrashEvery <= 0 {
		c.CrashEvery = 400
	}
	if c.CrashDown <= 0 {
		c.CrashDown = 150
	}
	return c
}

// TxnRunResult reports one mixed transactional run, JSON-ready for
// BENCH_9.json. The embedded ShardRunResult carries the throughput,
// latency, and schedule-digest fields exactly as E12 records them
// (CheckedOps counts workload items: each single-key operation and each
// composite transaction once).
type TxnRunResult struct {
	ShardRunResult
	TxnFrac            float64 `json:"txn_frac"`
	CoordinatorCrashes bool    `json:"coordinator_crashes"`

	TxnsStarted      int64   `json:"txns_started"`
	TxnsCommitted    int64   `json:"txns_committed"`
	AbortedConflict  int64   `json:"txns_aborted_conflict"`
	AbortedCondition int64   `json:"txns_aborted_condition"`
	AbortedRecovery  int64   `json:"txns_aborted_recovery"`
	CommitRate       float64 `json:"commit_rate"`

	// Components is the number of txn-connected components, each checked
	// as one merged multi-key history over adt.TxnKV; FastPathKeys counts
	// keys that stayed on the per-key register fast path.
	Components       int   `json:"components"`
	ComponentOps     int64 `json:"component_ops"`
	LargestComponent int64 `json:"largest_component_ops"`
	ComponentKeys    int   `json:"component_keys"`
	FastPathKeys     int   `json:"fast_path_keys"`
}

// txnOf converts a generated workload transaction to the SMR layer's
// form; the workload encodes "expect unset" as the empty string.
func txnOf(s *workload.TxnSpec) *smr.Txn {
	ops := make([]smr.TxnOp, len(s.Ops))
	for i, o := range s.Ops {
		switch {
		case o.Read:
			ops[i] = smr.TxnOp{Kind: smr.TxnRead, Key: o.Key}
		case o.CAS:
			exp := o.Expect
			if exp == "" {
				exp = string(adt.Bottom)
			}
			ops[i] = smr.TxnOp{Kind: smr.TxnCAS, Key: o.Key, Value: o.Value, Expect: exp}
		default:
			ops[i] = smr.TxnOp{Kind: smr.TxnWrite, Key: o.Key, Value: o.Value}
		}
	}
	return &smr.Txn{ID: s.ID, Ops: ops}
}

// RunTxn executes one mixed transactional run and verifies it: every
// submission lands, every transaction resolves, logs agree per shard,
// and every history — fast-path register and merged component alike —
// is linearizable.
func RunTxn(ctx context.Context, cfg TxnRunConfig) (TxnRunResult, error) {
	cfg = cfg.withDefaults()
	wl := workload.MixedOpts{
		KeyedOpts: workload.KeyedOpts{
			Clients:  cfg.Clients,
			Ops:      cfg.Commands,
			Keys:     cfg.Keys,
			ReadFrac: cfg.ReadFrac,
			ZipfS:    cfg.ZipfS,
		},
		TxnFrac:     cfg.TxnFrac,
		TxnKeysMax:  cfg.TxnKeysMax,
		TxnKeys:     cfg.TxnKeys,
		Groups:      cfg.Groups,
		ReadTxnFrac: cfg.ReadTxnFrac,
		CASFrac:     cfg.CASFrac,
	}
	ops := workload.Mixed(rand.New(rand.NewSource(cfg.Seed)), wl)
	perClient := make([][]smr.MixedItem, cfg.Clients)
	keys := map[string]bool{}
	for _, op := range ops {
		it := smr.MixedItem{}
		if op.Txn != nil {
			it.Txn = txnOf(op.Txn)
			for _, o := range op.Txn.Ops {
				keys[o.Key] = true
			}
		} else {
			if op.Read {
				it.Cmd = smr.GetCmd(op.Key, op.Value)
			} else {
				it.Cmd = smr.SetCmd(op.Key, op.Value)
			}
			keys[op.Key] = true
		}
		perClient[op.Client] = append(perClient[op.Client], it)
	}

	res := TxnRunResult{
		ShardRunResult: ShardRunResult{
			Shards:       cfg.Shards,
			Commands:     cfg.Commands,
			Keys:         len(keys),
			Distribution: "uniform",
			Online:       cfg.Online,
		},
		TxnFrac:            cfg.TxnFrac,
		CoordinatorCrashes: cfg.CoordinatorCrashes,
	}
	if cfg.ZipfS > 0 {
		res.Distribution = fmt.Sprintf("zipf(%.2g)", cfg.ZipfS)
	}

	w := msgnet.New(msgnet.Config{Seed: cfg.Seed, MinDelay: 1, MaxDelay: 2})
	clients := procIDs("c", cfg.Clients)
	tc, err := smr.BuildTxn(w, clients, procIDs("s", cfg.Servers), smr.ShardedConfig{
		Config: smr.Config{
			FastPath:      true,
			QuorumTimeout: 8,
			Retransmit:    6,
			RetryTimeout:  60,
			Recovery:      true,
			CompactEvery:  cfg.CompactEvery,
		},
		Shards:       cfg.Shards,
		OnlineCheck:  cfg.Online,
		CheckBudget:  cfg.Budget,
		CheckContext: ctx,
		ExactCheck:   cfg.Exact,
	}, smr.TxnConfig{RecoveryTimeout: cfg.RecoveryTimeout})
	if err != nil {
		return res, err
	}
	if cfg.CoordinatorCrashes {
		plan := faults.Plan{Crashes: faults.RollingRestart(clients, cfg.CrashStart, cfg.CrashEvery, cfg.CrashDown)}
		if err := plan.Apply(w); err != nil {
			return res, err
		}
	}
	start := time.Now()
	for i, c := range clients {
		offset := msgnet.Time(0)
		if cfg.Pace > 0 {
			offset = msgnet.Time(i) * cfg.Pace / msgnet.Time(cfg.Clients)
		}
		tc.SubmitMixedPaced(c, perClient[i], offset, cfg.Pace)
	}
	end := tc.Run(1 << 40)
	wall := time.Since(start)
	res.ScheduleDigest = fmt.Sprintf("%016x", w.ScheduleDigest())

	st := tc.Stats()
	if st.Landed != st.Submitted {
		return res, fmt.Errorf("landed %d of %d submitted commands", st.Landed, st.Submitted)
	}
	ts := tc.TxnStats()
	if ts.Resolved() != ts.Started {
		return res, fmt.Errorf("resolved %d of %d transactions (pending: %v)",
			ts.Resolved(), ts.Started, tc.PendingTxns())
	}
	if n := tc.UnresolvedShards(); n != 0 {
		return res, fmt.Errorf("%d unresolved (txn, shard) pairs", n)
	}
	res.SimTime = int64(end)
	if end > 0 {
		res.CmdsPerDelay = float64(int64(cfg.Commands)) / float64(end)
	}
	res.MeanLatency = st.MeanLatency()
	res.FastPathRate = st.FastPathRate()
	res.SwitchesPerCmd = float64(st.Switches) / float64(st.Landed)
	res.WallMs = float64(wall.Microseconds()) / 1000
	res.CmdsPerSecWall = float64(int64(cfg.Commands)) / wall.Seconds()
	res.TxnsStarted = ts.Started
	res.TxnsCommitted = ts.Committed
	res.AbortedConflict = ts.AbortedConflict
	res.AbortedCondition = ts.AbortedCondition
	res.AbortedRecovery = ts.AbortedRecovery
	res.CommitRate = ts.CommitRate()

	res.Consistent = tc.CheckConsistency() == nil
	if !res.Consistent {
		return res, fmt.Errorf("consistency: %v", tc.CheckConsistency())
	}
	if !cfg.SkipCheck {
		cstart := time.Now()
		sum, err := tc.CheckTxnLinearizable(ctx, check.WithBudget(cfg.Budget))
		res.CheckWallMs = float64((time.Since(cstart) + sum.FeedWall).Microseconds()) / 1000
		if err != nil {
			return res, err
		}
		if sum.Ops != int64(cfg.Commands) {
			return res, fmt.Errorf("checked %d ops of %d workload items", sum.Ops, cfg.Commands)
		}
		res.Linearizable = true
		res.KeyHistories = sum.Traces
		res.CheckedOps = sum.Ops
		res.CheckNodes = sum.Nodes
		res.Components = sum.Components
		res.ComponentOps = sum.ComponentOps
		res.LargestComponent = sum.LargestComponent
		res.ComponentKeys = sum.ComponentKeys
		res.FastPathKeys = sum.FastPathKeys
	}
	return res, nil
}

// E19Base is the canonical E19 configuration: 6 clients paced open-loop
// over 8 shards, 3 servers, zipf(1.2)-skewed keys, transactions drawn
// from the first 64 of 256 keys in 16 key-groups, online component
// checking, compaction on.
var E19Base = TxnRunConfig{
	ShardRunConfig: ShardRunConfig{
		Shards:       8,
		Clients:      6,
		Servers:      3,
		Keys:         256,
		ReadFrac:     0.4,
		ZipfS:        1.2,
		Pace:         12,
		Seed:         1,
		CompactEvery: 64,
		Online:       true,
	},
	TxnKeys:         64,
	Groups:          16,
	RecoveryTimeout: 2000,
}

// E19 canonical scales: the sweep rows and the full-scale acceptance
// row (100k+ workload items, 8 shards, 20% transactions, rolling
// coordinator crash–restarts).
const (
	E19SweepCommands = 25_000
	E19FullCommands  = 100_000
	E19SmokeCommands = 2_000
)

// E19TxnFracs is the transaction-fraction sweep.
var E19TxnFracs = []float64{0.05, 0.2}

// E19Rows builds the E19 result set: the txn-frac × contention sweep
// (uniform and zipf(1.2) keys) at sweepCommands items each, then the
// full-scale faulted row — fullCommands items, 20% transactions, rolling
// coordinator crash–restarts with the recovery watchdog armed. The E19
// table and TestWriteBench9JSON (BENCH_9.json) share this builder so the
// recorded artifact can never drift from the experiment.
func E19Rows(ctx context.Context, sweepCommands, fullCommands int) ([]TxnRunResult, error) {
	var out []TxnRunResult
	for _, zipf := range []float64{0, 1.2} {
		for _, frac := range E19TxnFracs {
			cfg := E19Base
			cfg.Commands = sweepCommands
			cfg.ZipfS = zipf
			cfg.TxnFrac = frac
			r, err := RunTxn(ctx, cfg)
			if err != nil {
				return out, fmt.Errorf("E19 zipf=%v frac=%v: %w", zipf, frac, err)
			}
			out = append(out, r)
		}
	}
	full := E19Base
	full.Commands = fullCommands
	full.TxnFrac = 0.2
	full.CoordinatorCrashes = true
	full.RecoveryTimeout = 500
	// Stagger the rolling restarts across the whole run (simulated time
	// is about 2× the item count at pace 12), not just its opening
	// seconds, so mid-run transactions get orphaned too.
	full.CrashStart = 500
	full.CrashEvery = msgnet.Time(2 * fullCommands / full.Clients)
	full.CrashDown = 300
	r, err := RunTxn(ctx, full)
	if err != nil {
		return out, fmt.Errorf("E19 faulted: %w", err)
	}
	return append(out, r), nil
}

// E19TxnSweep: the cross-shard transaction claim — 2PC layered on the
// per-shard speculative logs keeps every submission landing and every
// transaction resolving (commit, conflict/condition abort, or recovery
// abort) under contention and coordinator crash–restarts, while every
// txn-connected component's merged history checks linearizable against
// the adt.TxnKV product folder and untouched keys stay on the register
// fast path. Reduced here only in table form; TestWriteBench9JSON runs
// the identical sweep and records BENCH_9.json.
func E19TxnSweep(ctx context.Context) (Table, error) {
	t := Table{
		ID: "E19",
		Title: "cross-shard transaction sweep (8 shards, 6 clients, 3 servers, " +
			"paced open-loop mixed KV, seed 1)",
		Header: []string{"commands", "dist", "txn-frac", "faults", "commit rate",
			"aborts (cfl/cnd/rcv)", "components", "largest", "fast-path keys", "lin", "consistent"},
		Notes: []string{
			"Transactions are MultiPut/MultiGet/CAS over 2–4 keys drawn within one of 16 " +
				"key-groups of the 64-key transactional range; the remaining 192 keys only ever " +
				"see single-key traffic. Each txn-connected component is checked as one merged " +
				"history over adt.TxnKV (streamed online through incremental sessions); the " +
				"faulted row crashes and restarts every coordinator on a rolling schedule with " +
				"the recovery watchdog armed. Machine-readable results: BENCH_9.json " +
				"(TestWriteBench9JSON).",
		},
	}
	rows, err := E19Rows(ctx, E19SweepCommands, E19FullCommands)
	if err != nil {
		return t, err
	}
	for _, r := range rows {
		faulted := "none"
		if r.CoordinatorCrashes {
			faulted = "rolling coord crash"
		}
		lineariz := "yes"
		if !r.Linearizable {
			lineariz = "NO"
		}
		cons := "yes"
		if !r.Consistent {
			cons = "NO"
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", r.Commands),
			r.Distribution,
			fmt.Sprintf("%.2f", r.TxnFrac),
			faulted,
			f2(r.CommitRate),
			fmt.Sprintf("%d/%d/%d", r.AbortedConflict, r.AbortedCondition, r.AbortedRecovery),
			fmt.Sprintf("%d", r.Components),
			fmt.Sprintf("%d", r.LargestComponent),
			fmt.Sprintf("%d", r.FastPathKeys),
			lineariz,
			cons,
		})
	}
	return t, nil
}
