package experiments

import (
	"context"
	"reflect"
	"testing"
)

// chaosSmall is a fast E15-shaped configuration for unit tests. The
// command count is chosen so the scaled-down blackout window still
// catches in-flight submissions: the decision-17 watermark gossip adds
// client↔client traffic that shifts the seeded schedule, and at 8k
// commands the blackout happened to force no retries.
func chaosSmall() ChaosConfig {
	cfg := E15Base
	cfg.Shards = 4
	cfg.Commands = 12_000
	return cfg
}

// A plan-free chaos run — recovery modeled, retry timers armed on every
// attempt, windows on — must reproduce the plain sharded baseline's
// schedule event for event. This pins the chaos harness to the BENCH_2
// baseline: arming the fault machinery is free.
func TestChaosPlanFreeMatchesShardedBaseline(t *testing.T) {
	ctx := context.Background()
	cfg := chaosSmall()
	base := ShardRunConfig{
		Shards:       cfg.Shards,
		Commands:     cfg.Commands,
		Clients:      cfg.Clients,
		Servers:      cfg.Servers,
		ReadFrac:     cfg.ReadFrac,
		Pace:         cfg.Pace,
		Seed:         cfg.Seed,
		CompactEvery: cfg.CompactEvery,
		Online:       cfg.Online,
	}
	plain, err := RunSharded(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	armed, err := RunChaos(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if plain.ScheduleDigest != armed.ScheduleDigest {
		t.Errorf("schedules differ: sharded %s, plan-free chaos %s",
			plain.ScheduleDigest, armed.ScheduleDigest)
	}
	if plain.SimTime != armed.SimTime {
		t.Errorf("sim time differs: %d vs %d", plain.SimTime, armed.SimTime)
	}
	if plain.FastPathRate != armed.FastPathRate || plain.MeanLatency != armed.MeanLatency {
		t.Errorf("stats differ: fast-path %v vs %v, latency %v vs %v",
			plain.FastPathRate, armed.FastPathRate, plain.MeanLatency, armed.MeanLatency)
	}
	if plain.KeyHistories != armed.KeyHistories || plain.CheckedOps != armed.CheckedOps {
		t.Errorf("check coverage differs: %d/%d vs %d/%d histories/ops",
			plain.KeyHistories, plain.CheckedOps, armed.KeyHistories, armed.CheckedOps)
	}
	if armed.Retries != 0 {
		t.Errorf("plan-free run retried %d times", armed.Retries)
	}
}

// Identical seed and configuration must reproduce the chaos run bit for
// bit (wall-clock fields aside).
func TestChaosRunDeterminism(t *testing.T) {
	ctx := context.Background()
	cfg := chaosSmall()
	cfg.Faults = true
	a, err := RunChaos(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaos(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a.WallMs, b.WallMs = 0, 0
	a.CmdsPerSecWall, b.CmdsPerSecWall = 0, 0
	a.CheckWallMs, b.CheckWallMs = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different chaos runs:\n%+v\n%+v", a, b)
	}
}

// The chaos run's headline claims at test scale: linearizable and
// consistent under the full fault plan, retries and duplicates actually
// exercised, the fast path degraded while faults were active, and
// recovered after the heal.
func TestChaosRunRecovers(t *testing.T) {
	cfg := chaosSmall()
	cfg.Faults = true
	r, err := RunChaos(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Linearizable || !r.Consistent {
		t.Fatalf("chaos run: linearizable=%v consistent=%v", r.Linearizable, r.Consistent)
	}
	if r.Retries == 0 {
		t.Error("the majority blackout forced no retries")
	}
	if r.DuplicatedMsgs == 0 {
		t.Error("duplicating links produced no duplicates")
	}
	if r.FastPathDuring >= r.FastPathBefore {
		t.Errorf("fast path did not degrade: before %.3f, during %.3f",
			r.FastPathBefore, r.FastPathDuring)
	}
	if r.TimeToRecover < 0 {
		t.Errorf("fast path never recovered after the heal: before %.3f, after %.3f",
			r.FastPathBefore, r.FastPathAfter)
	}
	t.Logf("fast-path before/during/after = %.3f/%.3f/%.3f, recover %d delays, %d retries, %d dups",
		r.FastPathBefore, r.FastPathDuring, r.FastPathAfter, r.TimeToRecover, r.Retries, r.DuplicatedMsgs)
}
