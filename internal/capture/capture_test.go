package capture

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/trace"
)

// fakeClock is a deterministic injectable clock for recorder tests. It
// honors the WithClock contract — the clock advances under repeated
// polling — by ticking once after eight consecutive reads of the same
// value, modelling a coarse clock whose granule spans several
// operations but that always eventually moves. Tests that pin exact
// timestamps (merge order, watermarks) read it only a few times per
// assigned value, below the auto-advance threshold.
type fakeClock struct {
	now   int64
	seen  int64
	stall int
}

func (c *fakeClock) fn() func() int64 {
	return func() int64 {
		if c.now == c.seen {
			if c.stall++; c.stall >= 8 {
				c.now++
				c.stall = 0
			}
		} else {
			c.stall = 0
		}
		c.seen = c.now
		return c.now
	}
}

// TestMergeOrder pins the merge comparator: timestamps first, then Inv
// before Res on ties, then proc id.
func TestMergeOrder(t *testing.T) {
	clk := &fakeClock{}
	rec := NewRecorder(2, WithClock(clk.fn()))
	p0, p1 := rec.Proc(0), rec.Proc(1)

	clk.now = 10
	p0.Inv("w:a")
	clk.now = 20
	p1.Inv("r:")
	clk.now = 30
	p0.Res("w:a", "ok:")
	clk.now = 30 // tie with p0's response: the invocation must sort first
	p1.Inv("w:b")
	clk.now = 40
	p1.Res("w:b", "ok:")
	p0.Close()
	p1.Close()

	got := rec.Drain(math.MaxInt64, nil)
	// p1's second action ("w:b" inv at t=30) ties with p0's response at
	// t=30; Inv sorts first. p1's pending "r:" never responds.
	want := trace.Trace{
		trace.Invoke("g0", 1, "w:a"),
		trace.Invoke("g1", 1, "r:"),
		trace.Invoke("g1", 1, "w:b"),
		trace.Response("g0", 1, "w:a", "ok:"),
		trace.Response("g1", 1, "w:b", "ok:"),
	}
	if len(got) != len(want) {
		t.Fatalf("drained %d actions, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("action %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

// TestPerProcCoarseClock: a coarse clock (its granule spans several
// operations) still yields strictly increasing per-proc timestamps —
// responses are bumped past collisions, invocations poll the clock
// forward — so program order survives the merge.
func TestPerProcCoarseClock(t *testing.T) {
	clk := &fakeClock{now: 5}
	rec := NewRecorder(1, WithClock(clk.fn()))
	p := rec.Proc(0)
	for i := 0; i < 10; i++ {
		p.Inv(trace.Value("r:" + string(rune('a'+i))))
		p.Res(trace.Value("r:"+string(rune('a'+i))), "v:⊥")
	}
	p.Close()
	got := rec.Drain(math.MaxInt64, nil)
	if len(got) != 20 {
		t.Fatalf("drained %d actions, want 20", len(got))
	}
	for i := 0; i < 20; i += 2 {
		if got[i].Kind != trace.Inv || got[i+1].Kind != trace.Res || got[i].Input != got[i+1].Input {
			t.Fatalf("program order lost at %d: %+v %+v", i, got[i], got[i+1])
		}
	}
}

// TestGateWatermark pins the gate protocol: a proc that has not
// advanced its gate holds back the watermark, and only events strictly
// below the watermark drain.
func TestGateWatermark(t *testing.T) {
	clk := &fakeClock{}
	rec := NewRecorder(2, WithClock(clk.fn()))
	p0, p1 := rec.Proc(0), rec.Proc(1)

	clk.now = 100
	p0.Inv("w:a")
	if w := rec.Watermark(); w != 0 {
		t.Fatalf("watermark %d with p1 silent, want 0", w)
	}
	if got := rec.Drain(rec.Watermark(), nil); len(got) != 0 {
		t.Fatalf("drained %d actions below watermark 0", len(got))
	}

	clk.now = 50
	p1.Inv("r:")
	if w := rec.Watermark(); w != 50 {
		t.Fatalf("watermark %d, want 50", w)
	}
	// Only events with T < 50 are safe: none (p0's is at 100, p1's at 50).
	if got := rec.Drain(rec.Watermark(), nil); len(got) != 0 {
		t.Fatalf("drained %d actions below watermark 50", len(got))
	}

	clk.now = 200
	p1.Res("r:", "v:⊥")
	if w := rec.Watermark(); w != 100 {
		t.Fatalf("watermark %d, want min(gates)=100", w)
	}
	got := rec.Drain(rec.Watermark(), nil)
	if len(got) != 1 || got[0] != trace.Invoke("g1", 1, "r:") {
		t.Fatalf("drain below 100: got %v, want just g1's invocation at t=50", got)
	}

	p0.Close()
	p1.Close()
	rest := rec.Drain(math.MaxInt64, nil)
	if len(rest) != 2 {
		t.Fatalf("final drain: got %d actions, want the remaining 2", len(rest))
	}
}

// TestIncrementalDrainsEqualFullDrain is the drain-protocol property
// test: any sequence of intermediate watermark drains concatenates to
// exactly the one-shot full merge.
func TestIncrementalDrainsEqualFullDrain(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		procs := 1 + r.Intn(4)
		steps := 1 + r.Intn(60)

		run := func(drainEvery int) trace.Trace {
			clk := &fakeClock{}
			rec := NewRecorder(procs, WithClock(clk.fn()))
			rr := rand.New(rand.NewSource(int64(iter)))
			pending := make([]trace.Value, procs)
			var out trace.Trace
			seq := 0
			for s := 0; s < steps; s++ {
				clk.now += int64(rr.Intn(3)) // frequent cross-proc ties
				p := rr.Intn(procs)
				if pending[p] == "" {
					seq++
					in := adt.Tag(adt.ReadInput(), itoa(seq))
					rec.Proc(p).Inv(in)
					pending[p] = in
				} else {
					rec.Proc(p).Res(pending[p], adt.ReadOutput(adt.Bottom))
					pending[p] = ""
				}
				if drainEvery > 0 && s%drainEvery == 0 {
					out = rec.Drain(rec.Watermark(), out)
				}
			}
			for p := 0; p < procs; p++ {
				rec.Proc(p).Close()
			}
			return rec.Drain(math.MaxInt64, out)
		}

		full := run(0)
		inc := run(1 + r.Intn(5))
		if len(full) != len(inc) {
			t.Fatalf("iter %d: incremental drain lost actions: %d vs %d", iter, len(inc), len(full))
		}
		for i := range full {
			if full[i] != inc[i] {
				t.Fatalf("iter %d action %d: incremental %+v vs full %+v", iter, i, inc[i], full[i])
			}
		}
	}
}

// TestTieBurstNeverManufacturesPrecedence is the adversarial
// equal-timestamp audit: under a clock that is stuck for long bursts
// (many operations per granule, so cross-proc collisions are the common
// case), the merged order must never claim a real-time precedence the
// execution did not have. All procs are driven from one goroutine, so
// the genuine order of record calls is known exactly; the test then
// checks every merged response→invocation pair against it. The recorder
// used to bump colliding *invocations* past the proc's previous
// timestamp, which pushed them beyond other procs' genuine responses in
// the same clock granule and manufactured precedences — this test fails
// on that code.
func TestTieBurstNeverManufacturesPrecedence(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		procs := 2 + r.Intn(3)
		clk := &fakeClock{}
		rec := NewRecorder(procs, WithClock(clk.fn()))

		pending := make([]trace.Value, procs)
		nextOp := 0
		callSeq := 0
		invCall := map[trace.Value]int{} // input → real order of its Inv call
		resCall := map[trace.Value]int{} // input → real order of its Res call
		for s := 0; s < 200; s++ {
			if r.Intn(10) == 0 {
				clk.now += 1 + int64(r.Intn(3)) // rare genuine ticks
			}
			p := r.Intn(procs)
			callSeq++
			if pending[p] == "" {
				nextOp++
				in := adt.Tag(adt.ReadInput(), itoa(nextOp))
				rec.Proc(p).Inv(in)
				pending[p] = in
				invCall[in] = callSeq
			} else {
				rec.Proc(p).Res(pending[p], adt.ReadOutput(adt.Bottom))
				resCall[pending[p]] = callSeq
				pending[p] = ""
			}
		}
		for p := 0; p < procs; p++ {
			rec.Proc(p).Close()
		}
		tr := rec.Drain(math.MaxInt64, nil)

		// Merged positions, keyed by the per-op unique input.
		mergedInv := map[trace.Value]int{}
		mergedRes := map[trace.Value]int{}
		for i, a := range tr {
			if a.Kind == trace.Inv {
				mergedInv[a.Input] = i
			} else {
				mergedRes[a.Input] = i
			}
		}
		// Merged precedence A→B (A's response before B's invocation)
		// must imply the Res call really happened before the Inv call.
		for opA, ri := range mergedRes {
			for opB, ij := range mergedInv {
				if opA == opB || ri >= ij {
					continue
				}
				if resCall[opA] >= invCall[opB] {
					t.Fatalf("iter %d: merge claims %q precedes %q (res@%d < inv@%d) but the invocation was recorded first (calls %d vs %d)",
						iter, opA, opB, ri, ij, resCall[opA], invCall[opB])
				}
			}
		}
	}
}

// TestDrainWellFormed: concurrent recording through real goroutines and
// the real clock merges into a well-formed trace (per-client Inv/Res
// alternation with matching inputs).
func TestDrainWellFormed(t *testing.T) {
	rep, err := Run(t.Context(), Config{Structure: StructMap, Goroutines: 8, Ops: 200, Keys: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Actions == 0 {
		t.Fatal("no actions captured")
	}
	if rep.Actions != int64(8*200*2) {
		t.Fatalf("captured %d actions, want %d", rep.Actions, 8*200*2)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
