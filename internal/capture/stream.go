// The checker side of the capture harness: routing the merged action
// stream into the PR 3 checker sessions — one session per object. The
// keyed map is a product of per-key registers and the set a product of
// per-member flags, so both split into independent per-key histories by
// the Herlihy–Wing locality theorem (a history of a product object is
// linearizable iff every per-component projection is). The map's
// per-key registers and the mutex stream live through fast-path
// sessions; the set (no fast path) streams through exact sessions,
// viable since frontier compaction and DAG-level sleep sets bound the
// breadth engine on capture-shaped histories (decision 17); only the
// queue retains its trace and checks one-shot after the run, because
// its fast path is one-shot by construction.
package capture

import (
	"context"
	"fmt"
	"strings"
	"time"

	speclin "repro"
	"repro/internal/adt"
	"repro/internal/trace"
)

// router streams actions into per-key checker sessions (keyOf nil means
// one session under the single key "") and retains the per-key traces
// for the post-run one-shot checks (the queue fast path, ClassicalLin).
type router struct {
	ctx      context.Context
	spec     speclin.CheckSpec
	opts     []speclin.Option
	keyOf    func(trace.Value) string
	sessions bool

	sess  map[string]*speclin.Session
	errs  map[string]error
	trs   map[string]trace.Trace
	order []string
}

func newRouter(ctx context.Context, spec speclin.CheckSpec, keyOf func(trace.Value) string, sessions bool, opts ...speclin.Option) *router {
	return &router{
		ctx: ctx, spec: spec, opts: opts, keyOf: keyOf, sessions: sessions,
		sess: map[string]*speclin.Session{},
		errs: map[string]error{},
		trs:  map[string]trace.Trace{},
	}
}

func (rt *router) key(in trace.Value) string {
	if rt.keyOf == nil {
		return ""
	}
	return rt.keyOf(in)
}

// feed routes one merged action. Session errors (budget exhaustion,
// cancellation) are terminal per key and recorded, not returned: the
// hunt keeps draining the other keys and reports Unknown for this one.
func (rt *router) feed(a trace.Action) {
	k := rt.key(a.Input)
	if _, seen := rt.trs[k]; !seen {
		rt.order = append(rt.order, k)
	}
	rt.trs[k] = append(rt.trs[k], a)
	if !rt.sessions || rt.errs[k] != nil {
		return
	}
	s, ok := rt.sess[k]
	if !ok {
		var err error
		s, err = speclin.NewSession(rt.ctx, rt.spec, rt.opts...)
		if err != nil {
			rt.errs[k] = err
			return
		}
		rt.sess[k] = s
	}
	if err := s.Feed(a); err != nil {
		rt.errs[k] = err
	}
}

// RouteReport aggregates the per-key verdicts of one routed check pass.
type RouteReport struct {
	// Verdict is NotLinearizable if any key is, else Unknown if any key
	// errored (budget, cancellation), else Linearizable.
	Verdict speclin.Verdict
	// Reason names the first offending key on a negative verdict (or
	// the first error on Unknown).
	Reason string
	// Keys is the number of per-key histories checked.
	Keys int
	// Nodes is the cumulative search nodes across keys; on the fast
	// paths it equals the fed action count, so Nodes == Actions is the
	// signature of a run that never left the specialized fragments.
	Nodes int64
	// Actions is the total number of routed actions.
	Actions int64
	// Wall is the cumulative checking wall reported by the sessions.
	Wall time.Duration
}

// reports collects every live session's verdict.
func (rt *router) reports() RouteReport {
	out := RouteReport{Verdict: speclin.Linearizable, Keys: len(rt.order)}
	for _, k := range rt.order {
		out.Actions += int64(len(rt.trs[k]))
	}
	for _, k := range rt.order {
		if err := rt.errs[k]; err != nil {
			if out.Verdict == speclin.Linearizable {
				out.Verdict = speclin.Unknown
				out.Reason = fmt.Sprintf("key %q: %v", k, err)
			}
			continue
		}
		s := rt.sess[k]
		if s == nil {
			continue
		}
		rep, err := s.Report()
		out.Nodes += int64(rep.Nodes)
		out.Wall += rep.Wall
		switch {
		case err != nil:
			if out.Verdict == speclin.Linearizable {
				out.Verdict = speclin.Unknown
				out.Reason = fmt.Sprintf("key %q: %v", k, err)
			}
		case rep.Verdict == speclin.NotLinearizable:
			out.Verdict = speclin.NotLinearizable
			out.Reason = fmt.Sprintf("key %q: %s", k, rep.Reason)
			return out
		}
	}
	return out
}

// oneShot runs a one-shot Check over every retained per-key trace in
// the given mode (the queue's post-run fast path, or ClassicalLin on
// the captured histories — their inputs are unique by construction, so
// Theorem 1 grounds the classical verdicts).
func (rt *router) oneShot(ctx context.Context, mode speclin.Mode, opts ...speclin.Option) RouteReport {
	out := RouteReport{Verdict: speclin.Linearizable, Keys: len(rt.order)}
	for _, k := range rt.order {
		out.Actions += int64(len(rt.trs[k]))
	}
	spec := rt.spec
	spec.Mode = mode
	for _, k := range rt.order {
		tr := rt.trs[k]
		rep, err := speclin.Check(ctx, spec, tr, opts...)
		out.Nodes += int64(rep.Nodes)
		out.Wall += rep.Wall
		switch {
		case err != nil:
			if out.Verdict == speclin.Linearizable {
				out.Verdict = speclin.Unknown
				out.Reason = fmt.Sprintf("key %q: %v", k, err)
			}
		case rep.Verdict == speclin.NotLinearizable:
			out.Verdict = speclin.NotLinearizable
			out.Reason = fmt.Sprintf("key %q: %s", k, rep.Reason)
			return out
		}
	}
	return out
}

// mapKeyOf extracts the routing key from a captured map input: the tag
// prefix up to the first "." (mapWriteInput/mapReadInput build tags as
// "key.uniq").
func mapKeyOf(in trace.Value) string {
	if i := strings.Index(in, adt.TagSep); i >= 0 {
		tag := in[i+len(adt.TagSep):]
		if j := strings.IndexByte(tag, '.'); j >= 0 {
			return tag[:j]
		}
		return tag
	}
	return ""
}

// setKeyOf extracts the routing key from a captured set input: the
// member value ("add:v", "rm:v", "has:v" untagged).
func setKeyOf(in trace.Value) string {
	_, arg, _ := strings.Cut(string(adt.Untag(in)), ":")
	return arg
}

// Captured map inputs: the tag carries "key.uniq" so the router can
// split per key; the untagged input stays register grammar. Written
// values embed the globally unique uniq, meeting the register fast
// path's distinct-values fragment.

func mapWriteInput(key, uniq string) trace.Value {
	return adt.Tag(adt.WriteInput(trace.Value(uniq)), key+"."+uniq)
}

func mapReadInput(key, uniq string) trace.Value {
	return adt.Tag(adt.ReadInput(), key+"."+uniq)
}
