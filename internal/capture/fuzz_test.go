package capture

import (
	"context"
	"math"
	"testing"

	speclin "repro"
	"repro/internal/adt"
	"repro/internal/trace"
)

const fuzzBudget = 200_000

// FuzzCaptureVsExact drives a deterministic capture schedule (injected
// clock, interleaved recording across three procs, randomized
// intermediate watermark drains) from the fuzz input, streams the
// merged actions into a checker session, and asserts (a) the merged
// trace is well-formed, and (b) the streamed session verdict equals a
// one-shot Check over the same merged trace. Responses are drawn from a
// pool that includes wrong values, so both verdicts are exercised.
func FuzzCaptureVsExact(f *testing.F) {
	f.Add([]byte{0x00, 0x00, 0x00, 0x04, 0x01, 0x01, 0x01, 0x05})
	f.Add([]byte{0x10, 0x00, 0x21, 0x01, 0x10, 0x32, 0x21, 0x09, 0x42, 0x30})
	f.Add([]byte{0x00, 0x00, 0x00, 0x30, 0x01, 0x01, 0x00, 0x04, 0x01, 0x31})
	f.Fuzz(func(t *testing.T, data []byte) {
		const procs = 3
		clk := &fakeClock{} // auto-advances under sustained polling (WithClock contract)
		rec := NewRecorder(procs, WithClock(clk.fn()))
		ctx := context.Background()
		spec := speclin.CheckSpec{Folder: speclin.RegisterADT}
		sess, err := speclin.NewSession(ctx, spec, speclin.WithBudget(fuzzBudget))
		if err != nil {
			t.Fatal(err)
		}

		var merged trace.Trace
		var feedErr error
		drain := func(limit int64) {
			start := len(merged)
			merged = rec.Drain(limit, merged)
			for _, a := range merged[start:] {
				if feedErr == nil {
					feedErr = sess.Feed(a)
				}
			}
		}

		pending := make([]trace.Value, procs)
		writes := 0
		var lastW trace.Value = adt.Bottom
		for i := 0; i+1 < len(data); i += 2 {
			b, c := data[i], data[i+1]
			clk.now += int64(b >> 4) // clock advance 0–15, ties included
			p := int(b) % procs
			pr := rec.Proc(p)
			if pending[p] == "" {
				var in trace.Value
				if c%3 == 0 {
					writes++
					lastW = trace.Value("v" + itoa(writes))
					in = adt.WriteInput(lastW)
				} else {
					in = adt.Tag(adt.ReadInput(), "r"+itoa(i))
				}
				pr.Inv(in)
				pending[p] = in
			} else {
				var out trace.Value
				if adt.Untag(pending[p])[0] == 'w' {
					out = adt.WriteOutput()
				} else {
					switch (c >> 5) % 4 {
					case 0:
						out = adt.ReadOutput(adt.Bottom)
					case 1, 2:
						out = adt.ReadOutput(lastW)
					default:
						out = adt.ReadOutput("zz") // never written
					}
				}
				pr.Res(pending[p], out)
				pending[p] = ""
			}
			if c&0x08 != 0 {
				drain(rec.Watermark())
			}
		}
		for p := 0; p < procs; p++ {
			rec.Proc(p).Close()
		}
		drain(math.MaxInt64)

		assertWellFormed(t, merged)

		srep, serr := sess.Report()
		orep, oerr := speclin.Check(ctx, spec, merged, speclin.WithBudget(fuzzBudget))
		if serr != nil || oerr != nil {
			if (serr == nil) != (oerr == nil) {
				t.Fatalf("error disagreement: session %v, one-shot %v", serr, oerr)
			}
			return // both budget-exhausted: no verdict to compare
		}
		if srep.Verdict != orep.Verdict {
			t.Fatalf("streamed session says %v, one-shot Check says %v (%d actions)\ntrace: %v",
				srep.Verdict, orep.Verdict, len(merged), merged)
		}
	})
}

// assertWellFormed checks per-client Inv/Res alternation with matching
// inputs — the shape the checker requires of every captured trace.
func assertWellFormed(t *testing.T, tr trace.Trace) {
	t.Helper()
	open := map[trace.ClientID]trace.Value{}
	for i, a := range tr {
		switch a.Kind {
		case trace.Inv:
			if _, busy := open[a.Client]; busy {
				t.Fatalf("action %d: client %s invokes while pending", i, a.Client)
			}
			open[a.Client] = a.Input
		case trace.Res:
			in, busy := open[a.Client]
			if !busy || in != a.Input {
				t.Fatalf("action %d: client %s responds to %q, pending %q", i, a.Client, a.Input, in)
			}
			delete(open, a.Client)
		}
	}
}
