// Package capture is the runtime instrumentation front-end of the
// checker (ISSUE 8): it records invocation/response histories from
// actual concurrent Go code and streams them — merged into one
// totalizable trace — through the incremental checker sessions, so real
// data structures (sync.Map, sync.Mutex, a lazy-list set, a
// Michael–Scott queue) are checked linearizable live, and seeded-bug
// mutants of each are flagged non-linearizable under stress.
//
// The capture model (DESIGN.md, decision 16) in brief:
//
//   - One Proc per goroutine. Each proc owns a lock-free single-producer
//     event buffer (a chunked list linked by atomic pointers) and
//     records an event before invoking an operation on the structure
//     under test and another after it returns. Recording never blocks
//     and never allocates on the hot path outside chunk boundaries.
//   - Timestamps come from one monotonic clock (time.Since of a common
//     origin; tests inject a deterministic clock). Per proc, timestamps
//     are strictly increasing, and the two event kinds reach that
//     differently. A response that collides with the proc's previous
//     timestamp is bumped by 1ns: the reading was taken after the
//     operation returned, so a later value is still a sound post-return
//     time — it only widens the operation's interval, which can hide a
//     real-time precedence but never manufacture one. An invocation is
//     never bumped: pushing an invocation later could move it past
//     another proc's genuine response within the same clock granule,
//     manufacturing a precedence the execution never had (a false
//     NotLinearizable). Instead the invocation polls the clock until it
//     advances past the previous timestamp, so every invocation carries
//     a genuine pre-call reading. (No comparator can repair a fully
//     stuck clock: two procs each recording response-then-invocation in
//     one granule force a cross-proc cycle between the orders, so the
//     clock advancing under polling is a hard requirement, not a
//     convenience — see WithClock.)
//   - The drainer merges the per-proc buffers into a single totally
//     ordered action sequence with the comparator (T, kind with Inv
//     before Res, proc). Invocations sort before responses at equal
//     timestamps because a tie leaves the true order unknown: placing
//     the invocation first only widens operation intervals, which can
//     hide a real-time precedence but can never manufacture one — the
//     merged trace under-approximates the real-time order, so a
//     NotLinearizable verdict on it is trustworthy.
//   - The gate protocol makes live draining safe without locks: a proc
//     publishes an event and then advances its gate to the event's
//     timestamp, promising every later event a strictly larger one. The
//     drainer's watermark is the minimum gate over all procs; published
//     events below the watermark are in their final merge position and
//     can be fed to the checker sessions immediately.
package capture

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// Event is one recorded action: an invocation (Out empty) or a response.
type Event struct {
	T    int64
	Kind trace.Kind
	In   trace.Value
	Out  trace.Value
}

// chunkSize sizes the per-proc buffer chunks. Recording allocates only
// at chunk boundaries; 1024 events ≈ one allocation per 512 operations.
const chunkSize = 1024

type chunk struct {
	next atomic.Pointer[chunk]
	ev   [chunkSize]Event
}

// Proc is one goroutine's recording handle: a single-producer event
// buffer plus the gate the drainer's watermark is computed from. Inv,
// Res and Close must be called from a single goroutine; the drainer may
// run concurrently with all of them.
type Proc struct {
	id     int
	client trace.ClientID
	clock  func() int64

	gate      atomic.Int64
	published atomic.Int64

	// Producer-owned.
	tail   *chunk
	tailN  int
	last   int64
	total  int64
	closed bool
	mute   bool

	// Drainer-owned.
	head    *chunk
	headN   int
	drained int64
	next    Event // merge head, valid when primed
	primed  bool
}

// Client returns the client ID the proc's actions carry ("g0", "g1", …).
func (p *Proc) Client() trace.ClientID { return p.client }

// Inv records the invocation of in.
func (p *Proc) Inv(in trace.Value) { p.record(trace.Inv, in, "") }

// Res records the response out of the operation invoked with in.
func (p *Proc) Res(in, out trace.Value) { p.record(trace.Res, in, out) }

func (p *Proc) record(k trace.Kind, in, out trace.Value) {
	if p.mute {
		return
	}
	if p.closed {
		panic("capture: record on closed Proc")
	}
	t := p.clock()
	if t <= p.last {
		if k == trace.Inv {
			// Never bump an invocation: a manufactured later timestamp
			// could sort it past another proc's genuine response in the
			// same clock granule, adding a real-time precedence the
			// execution never had. Poll for a genuine fresh reading
			// instead (WithClock requires the clock to advance under
			// repeated polling).
			for t <= p.last {
				t = p.clock()
			}
		} else {
			// A response reading was taken after the operation returned,
			// so any later value is still a sound post-return time: the
			// bump widens the interval, removing precedences but never
			// adding one.
			t = p.last + 1
		}
	}
	p.last = t
	if p.tailN == chunkSize {
		c := &chunk{}
		p.tail.next.Store(c)
		p.tail = c
		p.tailN = 0
	}
	p.tail.ev[p.tailN] = Event{T: t, Kind: k, In: in, Out: out}
	p.tailN++
	p.total++
	// Publish the slot, then advance the gate: a drainer that observes
	// gate ≥ t has, by the release/acquire pairing on published, already
	// seen every event with timestamp ≤ t.
	p.published.Store(p.total)
	p.gate.Store(t)
}

// Close marks the proc finished: its gate moves to +∞ so it no longer
// holds back the watermark. Recording after Close panics.
func (p *Proc) Close() {
	p.closed = true
	p.gate.Store(math.MaxInt64)
}

// Recorder owns the per-proc buffers and the merge. The drain side
// (Watermark, Drain) must be used from a single goroutine at a time;
// the record side is one goroutine per Proc.
type Recorder struct {
	clock func() int64
	procs []*Proc
}

// Option configures a Recorder.
type Option func(*Recorder)

// WithClock injects the timestamp source (monotonic nanoseconds). The
// clock must advance under repeated polling: an invocation whose
// reading does not exceed the proc's previous timestamp polls until it
// does (see the package comment — bumping invocations is unsound, and
// a clock stuck across two procs' operations can force a manufactured
// cross-proc precedence no merge order avoids). Tests inject
// deterministic counters that auto-advance under sustained polling;
// the default is time.Since of the Recorder's creation instant.
func WithClock(clock func() int64) Option {
	return func(r *Recorder) { r.clock = clock }
}

// NewRecorder creates a recorder with procs recording goroutines.
func NewRecorder(procs int, opts ...Option) *Recorder {
	r := &Recorder{}
	for _, o := range opts {
		o(r)
	}
	if r.clock == nil {
		start := time.Now()
		r.clock = func() int64 { return int64(time.Since(start)) }
	}
	r.procs = make([]*Proc, procs)
	for i := range r.procs {
		c := &chunk{}
		r.procs[i] = &Proc{
			id:     i,
			client: trace.ClientID(fmt.Sprintf("g%d", i)),
			clock:  r.clock,
			tail:   c,
			head:   c,
		}
	}
	return r
}

// Proc returns recording handle i.
func (r *Recorder) Proc(i int) *Proc { return r.procs[i] }

// Procs returns the number of procs.
func (r *Recorder) Procs() int { return len(r.procs) }

// Watermark returns the merge-safe bound: every event with T strictly
// below it has been published and is in its final merge position.
func (r *Recorder) Watermark() int64 {
	w := int64(math.MaxInt64)
	for _, p := range r.procs {
		if g := p.gate.Load(); g < w {
			w = g
		}
	}
	return w
}

// Drain appends to dst all not-yet-drained events with T < limit,
// merged across procs by (T, Inv before Res, proc), as actions of phase
// 1. Pass r.Watermark() for a live drain or math.MaxInt64 after every
// proc closed. Single-goroutine only.
func (r *Recorder) Drain(limit int64, dst trace.Trace) trace.Trace {
	type tagged struct {
		ev   Event
		proc int
	}
	var batch []tagged
	for _, p := range r.procs {
		avail := p.published.Load()
		for p.drained < avail {
			if p.headN == chunkSize {
				p.head = p.head.next.Load()
				p.headN = 0
			}
			ev := p.head.ev[p.headN]
			if ev.T >= limit {
				break
			}
			batch = append(batch, tagged{ev: ev, proc: p.id})
			p.headN++
			p.drained++
		}
	}
	sort.Slice(batch, func(i, j int) bool {
		a, b := batch[i], batch[j]
		if a.ev.T != b.ev.T {
			return a.ev.T < b.ev.T
		}
		if a.ev.Kind != b.ev.Kind {
			return a.ev.Kind == trace.Inv
		}
		return a.proc < b.proc
	})
	for _, e := range batch {
		c := r.procs[e.proc].client
		if e.ev.Kind == trace.Inv {
			dst = append(dst, trace.Invoke(c, 1, e.ev.In))
		} else {
			dst = append(dst, trace.Response(c, 1, e.ev.In, e.ev.Out))
		}
	}
	return dst
}
