// The hunt: stress one structure under test with concurrent recording
// goroutines, drain the capture buffers live into checker sessions, and
// report the verdict (plus optional ClassicalLin one-shots and the
// capture-overhead measurement). cmd/lin-hunt and the nightly hunt job
// drive this; mutants are expected to come back NotLinearizable.
package capture

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"math/rand"

	speclin "repro"
	"repro/internal/adt"
	"repro/internal/trace"
)

// Config parameterizes one hunt run.
type Config struct {
	// Structure is one of Structures; Mutant is "" (unmutated) or the
	// structure's entry in Mutants.
	Structure string
	Mutant    string
	// Goroutines is the recording worker count (default 4×GOMAXPROCS,
	// the acceptance floor for clean runs).
	Goroutines int
	// Ops bounds each worker's operation count (mutex workers count a
	// lock/unlock pair as one). Ignored when Duration is set.
	Ops int
	// Duration, when positive, bounds the run by wall clock instead.
	Duration time.Duration
	// Seed derives the per-worker RNGs (worker i uses Seed + i·7919).
	Seed int64
	// Keys sizes the key space of the map and set workloads.
	Keys int
	// Budget bounds each checker session (and each one-shot check).
	Budget int
	// Exact forces the exact engines (check.WithExact) on the sessions.
	Exact bool
	// Classical additionally runs the uncapped ClassicalLin checker
	// one-shot over every captured per-key history after the run.
	Classical bool
	// RetryEmpty bounds a queue worker's dequeue retry loop; an
	// exhausted loop records an empty dequeue (clean runs never do: a
	// dequeue is only attempted against a completed enqueue's token).
	RetryEmpty int

	clock func() int64 // test hook
}

func (c Config) withDefaults() Config {
	if c.Goroutines <= 0 {
		c.Goroutines = 4 * runtime.GOMAXPROCS(0)
	}
	if c.Ops <= 0 {
		c.Ops = 1_000
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Keys <= 0 {
		c.Keys = 16
	}
	if c.Budget <= 0 {
		c.Budget = 5_000_000
	}
	if c.RetryEmpty <= 0 {
		c.RetryEmpty = 2_000
	}
	return c
}

// Report is one hunt run's outcome.
type Report struct {
	Structure  string
	Mutant     string
	Goroutines int
	// Actions is the merged trace length (2 per completed operation).
	Actions int64
	// EmptyDeqs counts queue dequeues that exhausted their retry loop.
	EmptyDeqs int64
	// Live is the streaming verdict (per-key sessions; the queue's is
	// its post-run one-shot fast-path check).
	Live RouteReport
	// ClassicalReport is the optional post-run ClassicalLin pass.
	Classical *RouteReport
	// Wall is the stress run's wall clock (drain and live checking
	// included, post-run one-shots excluded).
	Wall time.Duration
}

// huntState shares the structure under test and counters between the
// workers.
type huntState struct {
	cfg       Config
	sut       any
	scratch   atomic.Int64 // mutex critical-section work
	tokens    atomic.Int64 // queue: completed-enqueue claims
	emptyDeqs atomic.Int64
}

// Run stresses the configured structure and checks the captured trace
// live. The returned Report carries the verdict; err is reserved for
// configuration errors, not negative verdicts.
func Run(ctx context.Context, cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	sut, err := newStructure(cfg.Structure, cfg.Mutant, true)
	if err != nil {
		return Report{}, err
	}
	h := &huntState{cfg: cfg, sut: sut}
	var recOpts []Option
	if cfg.clock != nil {
		recOpts = append(recOpts, WithClock(cfg.clock))
	}
	rec := NewRecorder(cfg.Goroutines, recOpts...)

	// Per-feed budgets: a hunt session lives for the whole stress run, so
	// one lifetime budget would starve late actions on long runs; each
	// fed action instead gets the full budget for its frontier step.
	opts := []speclin.Option{speclin.WithBudget(cfg.Budget), speclin.WithWitness(false),
		speclin.WithFeedBudget(true)}
	if cfg.Exact {
		opts = append(opts, speclin.WithExact(true))
	}
	var rt *router
	switch cfg.Structure {
	case StructMap:
		rt = newRouter(ctx, speclin.CheckSpec{Folder: speclin.RegisterADT}, mapKeyOf, true, opts...)
	case StructMutex:
		rt = newRouter(ctx, speclin.CheckSpec{Folder: speclin.MutexADT}, nil, true, opts...)
	case StructSet:
		// The set folder has no fast path, so its per-key sessions run the
		// exact frontier engine. That engine used to degenerate on
		// capture-shaped histories (the breadth frontier kept every
		// commit-order permutation of overlapping ops alive, where the
		// one-shot DFS prunes them cheaply); with frontier compaction
		// dropping fully-claimed chain prefixes and the DAG-level sleep
		// sets pruning equivalent commit orders, the set now checks live
		// like the map and mutex do.
		rt = newRouter(ctx, speclin.CheckSpec{Folder: speclin.SetADT}, setKeyOf, true, opts...)
	case StructQueue:
		// The queue fast path is one-shot: retain the trace, check after.
		rt = newRouter(ctx, speclin.CheckSpec{Folder: speclin.QueueADT}, nil, false, opts...)
	}

	start := time.Now()
	if cfg.Structure == StructQueue {
		h.prefill(rec.Proc(0))
	}

	done := make(chan struct{})
	if cfg.Duration > 0 {
		timer := time.AfterFunc(cfg.Duration, func() { close(done) })
		defer timer.Stop()
	}
	var wg sync.WaitGroup
	for i := 0; i < cfg.Goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h.worker(rec.Proc(i), i, done)
		}(i)
	}
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()

	// The live drain loop: merge everything below the watermark and
	// feed it onward until the workers finish, then a final full drain.
	var pending trace.Trace
	running := true
	for running {
		select {
		case <-finished:
			running = false
		case <-time.After(time.Millisecond):
		}
		limit := rec.Watermark()
		if !running {
			limit = math.MaxInt64
		}
		pending = rec.Drain(limit, pending[:0])
		for _, a := range pending {
			rt.feed(a)
		}
	}

	rep := Report{
		Structure:  cfg.Structure,
		Mutant:     cfg.Mutant,
		Goroutines: cfg.Goroutines,
		EmptyDeqs:  h.emptyDeqs.Load(),
	}
	if rt.sessions {
		rep.Live = rt.reports()
	} else {
		rep.Live = rt.oneShot(ctx, speclin.Lin, opts...)
	}
	rep.Actions = rep.Live.Actions
	rep.Wall = time.Since(start)
	if cfg.Classical {
		cl := rt.oneShot(ctx, speclin.ClassicalLin, opts...)
		rep.Classical = &cl
	}
	return rep, nil
}

// worker runs one recording goroutine's operation loop.
func (h *huntState) worker(p *Proc, i int, done <-chan struct{}) {
	defer p.Close()
	r := rand.New(rand.NewSource(h.cfg.Seed + int64(i)*7919))
	op := h.opFunc(p)
	for seq := 0; ; seq++ {
		if h.cfg.Duration > 0 {
			select {
			case <-done:
				return
			default:
			}
		} else if seq >= h.cfg.Ops {
			return
		}
		op(r, seq)
	}
}

// opFunc returns the per-operation closure for the configured
// structure, recording through p.
func (h *huntState) opFunc(p *Proc) func(r *rand.Rand, seq int) {
	client := string(p.Client())
	uniq := func(seq int) string { return client + "-" + strconv.Itoa(seq) }
	switch h.cfg.Structure {
	case StructMap:
		m := h.sut.(MapSUT)
		return func(r *rand.Rand, seq int) {
			key := "k" + strconv.Itoa(r.Intn(h.cfg.Keys))
			u := uniq(seq)
			if r.Intn(2) == 0 {
				in := mapWriteInput(key, u)
				p.Inv(in)
				m.Store(key, u)
				p.Res(in, adt.WriteOutput())
			} else {
				in := mapReadInput(key, u)
				p.Inv(in)
				v, ok := m.Load(key)
				out := adt.ReadOutput(adt.Bottom)
				if ok {
					out = adt.ReadOutput(trace.Value(v))
				}
				p.Res(in, out)
			}
		}
	case StructMutex:
		l := h.sut.(LockSUT)
		return func(r *rand.Rand, seq int) {
			u := uniq(seq)
			lin := adt.Tag(adt.LockInput(), u)
			p.Inv(lin)
			l.Lock()
			p.Res(lin, adt.WriteOutput())
			for k := 0; k < 8; k++ { // hold the lock across a little work
				h.scratch.Add(1)
			}
			// Yield while holding: legal on a correct mutex (the holder may
			// be delayed arbitrarily), and the overlap a broken one then
			// admits lands inside the captured critical section.
			runtime.Gosched()
			uin := adt.Tag(adt.UnlockInput(), u)
			p.Inv(uin)
			l.Unlock()
			p.Res(uin, adt.WriteOutput())
		}
	case StructSet:
		s := h.sut.(SetSUT)
		return func(r *rand.Rand, seq int) {
			v := r.Intn(h.cfg.Keys)
			vs := trace.Value(strconv.Itoa(v))
			var in trace.Value
			var out trace.Value
			switch r.Intn(4) {
			case 0:
				in = adt.Tag(adt.AddInput(vs), uniq(seq))
				p.Inv(in)
				out = adt.BoolOutput(s.Add(v))
			case 1:
				in = adt.Tag(adt.RemoveInput(vs), uniq(seq))
				p.Inv(in)
				out = adt.BoolOutput(s.Remove(v))
			default:
				in = adt.Tag(adt.HasInput(vs), uniq(seq))
				p.Inv(in)
				out = adt.BoolOutput(s.Contains(v))
			}
			p.Res(in, out)
		}
	case StructQueue:
		q := h.sut.(QueueSUT)
		return func(r *rand.Rand, seq int) {
			u := uniq(seq)
			// Enqueue-biased mix; dequeues only run against a token
			// deposited by a completed enqueue, so on a correct queue
			// every granted dequeue finds an element.
			deq := r.Intn(100) < 45
			if deq && h.tokens.Add(-1) < 0 {
				h.tokens.Add(1)
				deq = false
			}
			if !deq {
				in := adt.EnqInput(trace.Value(u))
				p.Inv(in)
				q.Enqueue(u)
				p.Res(in, adt.WriteOutput())
				h.tokens.Add(1)
				return
			}
			in := adt.Tag(adt.DeqInput(), u)
			p.Inv(in)
			out := adt.ReadOutput(adt.Bottom)
			for tries := 0; tries < h.cfg.RetryEmpty; tries++ {
				if v, ok := q.Dequeue(); ok {
					out = adt.ReadOutput(trace.Value(v))
					break
				}
				runtime.Gosched()
			}
			if out == adt.ReadOutput(adt.Bottom) {
				h.emptyDeqs.Add(1)
				h.tokens.Add(1) // hand the claim back
			}
			p.Res(in, out)
		}
	}
	panic("capture: unknown structure " + h.cfg.Structure)
}

// prefill seeds the queue with 2×Goroutines elements through proc 0
// before the workers start, so the trace stays inside the no-empty-
// dequeue fast fragment from the first operation.
func (h *huntState) prefill(p *Proc) {
	q := h.sut.(QueueSUT)
	for i := 0; i < 2*h.cfg.Goroutines; i++ {
		u := "pre-" + strconv.Itoa(i)
		in := adt.EnqInput(trace.Value(u))
		p.Inv(in)
		q.Enqueue(u)
		p.Res(in, adt.WriteOutput())
		h.tokens.Add(1)
	}
}

// OverheadReport measures recording cost: the same worker loop run
// uninstrumented (no recording, no merge) and captured (recording plus
// a live drain, no checking).
type OverheadReport struct {
	Structure    string
	Goroutines   int
	RawOps       int64
	RawWall      time.Duration
	CapturedOps  int64
	CapturedWall time.Duration
}

// RawNsPerOp is the uninstrumented cost per operation.
func (o OverheadReport) RawNsPerOp() float64 {
	return float64(o.RawWall.Nanoseconds()) / float64(o.RawOps)
}

// CapturedNsPerOp is the recorded-and-merged cost per operation.
func (o OverheadReport) CapturedNsPerOp() float64 {
	return float64(o.CapturedWall.Nanoseconds()) / float64(o.CapturedOps)
}

// ThroughputRatio is captured ops/sec over raw ops/sec (≤ 1 when
// recording costs anything; higher is better).
func (o OverheadReport) ThroughputRatio() float64 {
	raw := float64(o.RawOps) / float64(o.RawWall.Nanoseconds())
	inst := float64(o.CapturedOps) / float64(o.CapturedWall.Nanoseconds())
	return inst / raw
}

// Overhead measures capture overhead on the unmutated structure:
// identical op loops, one muted (recording skipped at the source), one
// recording with a live drain that discards the merge.
func Overhead(cfg Config) (OverheadReport, error) {
	cfg.Duration = 0 // ops-bounded only: the op counts must match
	cfg = cfg.withDefaults()
	out := OverheadReport{Structure: cfg.Structure, Goroutines: cfg.Goroutines}
	for _, captured := range []bool{false, true} {
		// No perturbation: the measurement isolates recording cost, not
		// scheduler churn.
		sut, err := newStructure(cfg.Structure, cfg.Mutant, false)
		if err != nil {
			return OverheadReport{}, err
		}
		h := &huntState{cfg: cfg, sut: sut}
		rec := NewRecorder(cfg.Goroutines)
		if !captured {
			for i := 0; i < cfg.Goroutines; i++ {
				rec.Proc(i).mute = true
			}
		}
		if cfg.Structure == StructQueue {
			h.prefill(rec.Proc(0))
		}
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < cfg.Goroutines; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				h.worker(rec.Proc(i), i, nil)
			}(i)
		}
		finished := make(chan struct{})
		go func() { wg.Wait(); close(finished) }()
		var sink trace.Trace
		if captured {
			running := true
			for running {
				select {
				case <-finished:
					running = false
				case <-time.After(time.Millisecond):
				}
				limit := rec.Watermark()
				if !running {
					limit = math.MaxInt64
				}
				sink = rec.Drain(limit, sink[:0])
			}
		} else {
			<-finished
		}
		wall := time.Since(start)
		ops := int64(cfg.Goroutines) * int64(cfg.Ops)
		if captured {
			out.CapturedOps, out.CapturedWall = ops, wall
		} else {
			out.RawOps, out.RawWall = ops, wall
		}
	}
	return out, nil
}

// String renders the report for the CLI.
func (r Report) String() string {
	mut := r.Mutant
	if mut == "" {
		mut = "clean"
	}
	s := fmt.Sprintf("%-5s %-17s g=%-3d actions=%-7d keys=%-3d verdict=%v nodes=%d wall=%v",
		r.Structure, mut, r.Goroutines, r.Actions, r.Live.Keys, r.Live.Verdict, r.Live.Nodes,
		r.Wall.Round(time.Millisecond))
	if r.Live.Verdict == speclin.NotLinearizable {
		s += fmt.Sprintf("\n      reason: %s", r.Live.Reason)
	}
	if r.EmptyDeqs > 0 {
		s += fmt.Sprintf("\n      empty dequeues: %d", r.EmptyDeqs)
	}
	if r.Classical != nil {
		s += fmt.Sprintf("\n      classical: verdict=%v nodes=%d wall=%v",
			r.Classical.Verdict, r.Classical.Nodes, r.Classical.Wall.Round(time.Millisecond))
		if r.Classical.Verdict == speclin.NotLinearizable {
			s += fmt.Sprintf(" reason: %s", r.Classical.Reason)
		}
	}
	return s
}
