// The reference structures the capture harness checks live, each with a
// seeded-bug mutant the checker must flag non-linearizable under stress
// (ISSUE 8). Every mutant is race-free by construction — the bugs are
// linearizability violations, not data races — so the nightly hunt can
// run them under -race and the only failure signal is the checker's.
package capture

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Structure mutant names. The empty mutant is the unmutated structure.
const (
	// MutantStaleRead is the keyed map bug: every few loads return the
	// key's previous value even though the overwrite completed long
	// before the load began.
	MutantStaleRead = "stale-read"
	// MutantMisplacedUnlock is the spin-lock bug: the release that
	// belongs in Unlock is misplaced into the tail of Lock, so the lock
	// frees itself right after acquiring and mutual exclusion fails.
	MutantMisplacedUnlock = "misplaced-unlock"
	// MutantSkipValidation is the lazy-list bug: the post-lock
	// validation (pred unmarked, cur unmarked, pred.next == cur) is
	// skipped, so updates race with removals and get lost.
	MutantSkipValidation = "skip-validation"
	// MutantDroppedRetry is the Michael–Scott queue bug: a failed
	// dequeue head-CAS returns the read value anyway instead of
	// retrying, so two dequeues can return the same element.
	MutantDroppedRetry = "dropped-retry"
)

// Mutants maps each structure to its seeded bug.
var Mutants = map[string]string{
	StructMap:   MutantStaleRead,
	StructMutex: MutantMisplacedUnlock,
	StructSet:   MutantSkipValidation,
	StructQueue: MutantDroppedRetry,
}

// Structure names.
const (
	StructMap   = "map"
	StructMutex = "mutex"
	StructSet   = "set"
	StructQueue = "queue"
)

// Structures lists the checkable structures in canonical order.
var Structures = []string{StructMap, StructMutex, StructSet, StructQueue}

// nop replaces a structure's pause hook after its first-attempt yield.
func nop() {}

// MapSUT is a keyed string map under test (each key a register).
type MapSUT interface {
	Load(key string) (string, bool)
	Store(key, value string)
}

// LockSUT is a mutual-exclusion lock under test.
type LockSUT interface {
	Lock()
	Unlock()
}

// SetSUT is an integer membership set under test.
type SetSUT interface {
	Add(v int) bool
	Remove(v int) bool
	Contains(v int) bool
}

// QueueSUT is a FIFO queue under test.
type QueueSUT interface {
	Enqueue(v string)
	Dequeue() (string, bool)
}

// --- map: sync.Map, and the stale-read mutant ---

type syncMap struct{ m sync.Map }

func (s *syncMap) Load(k string) (string, bool) {
	v, ok := s.m.Load(k)
	if !ok {
		return "", false
	}
	return v.(string), true
}

func (s *syncMap) Store(k, v string) { s.m.Store(k, v) }

// staleMap keeps each key's previous value in a second sync.Map and
// serves it on every eighth load: a read returning a value whose
// overwrite completed before the read began, which no linearization
// can explain. All state lives in sync.Maps and one atomic counter, so
// the bug is invisible to the race detector.
type staleMap struct {
	cur   sync.Map
	prev  sync.Map
	loads atomic.Int64
}

func (s *staleMap) Load(k string) (string, bool) {
	if s.loads.Add(1)%8 == 0 {
		if v, ok := s.prev.Load(k); ok {
			return v.(string), true
		}
	}
	v, ok := s.cur.Load(k)
	if !ok {
		return "", false
	}
	return v.(string), true
}

func (s *staleMap) Store(k, v string) {
	if old, ok := s.cur.Load(k); ok {
		s.prev.Store(k, old)
	}
	s.cur.Store(k, v)
}

// --- mutex: sync.Mutex, and the misplaced-unlock mutant ---

type stdMutex struct{ mu sync.Mutex }

func (m *stdMutex) Lock()   { m.mu.Lock() }
func (m *stdMutex) Unlock() { m.mu.Unlock() }

// spinMutex is a CAS spin lock whose Lock ends with the Store(0) that
// belongs in Unlock — the misplaced release frees the lock the moment
// it is acquired, so any number of goroutines hold it concurrently.
// Purely atomic state: no data race, only a broken history.
type spinMutex struct{ state atomic.Int32 }

func (m *spinMutex) Lock() {
	for !m.state.CompareAndSwap(0, 1) {
		runtime.Gosched()
	}
	m.state.Store(0) // the seeded bug: release misplaced from Unlock
}

func (m *spinMutex) Unlock() { m.state.Store(0) }

// --- set: hand-over-hand lazy list, and the skip-validation mutant ---

// lazyNode is one lazy-list node. next and marked are atomic so the
// wait-free traversals race with locked updates without data races.
type lazyNode struct {
	key    int
	next   atomic.Pointer[lazyNode]
	marked atomic.Bool
	mu     sync.Mutex
}

// lazyList is the lazy concurrent list-based set (Heller et al.;
// Abraham's course notes follow the same design): sorted singly-linked
// list with ±∞ sentinels, unsynchronized locate, then lock pred and
// cur hand-over-hand and validate before mutating. When validate is
// false (the skip-validation mutant), updates proceed on a possibly
// stale window — an add can link its node behind an already-removed
// pred, publishing an element no traversal will ever see again.
//
// pause is the schedule-perturbation hook, called in the window the
// validation protects (after the unsynchronized locate, before the
// locks). A correct lazy list tolerates arbitrary delay there — that is
// what validation is for — so perturbation cannot create a false
// positive; it only widens the mutant's stale window enough to manifest
// on any core count (without it the window is a few nanoseconds and
// GOMAXPROCS=1 in particular never preempts inside it).
type lazyList struct {
	head     *lazyNode
	validate bool
	pause    func()
}

func newLazyList(validate bool, pause func()) *lazyList {
	tail := &lazyNode{key: int(^uint(0) >> 1)} // MaxInt sentinel
	head := &lazyNode{key: -int(^uint(0)>>1) - 1}
	head.next.Store(tail)
	return &lazyList{head: head, validate: validate, pause: pause}
}

func (l *lazyList) locate(v int) (pred, cur *lazyNode) {
	pred = l.head
	cur = pred.next.Load()
	for cur.key < v {
		pred = cur
		cur = cur.next.Load()
	}
	return pred, cur
}

func (l *lazyList) valid(pred, cur *lazyNode) bool {
	if !l.validate {
		return true // the seeded bug
	}
	return !pred.marked.Load() && !cur.marked.Load() && pred.next.Load() == cur
}

func (l *lazyList) Add(v int) bool {
	// Perturb only the first attempt: one yield per operation keeps the
	// captured intervals short (a retry storm that pauses every round
	// would stretch one op across hundreds of others and blow up the
	// exact per-key frontier), and the mutant never retries anyway.
	for pause := l.pause; ; pause = nop {
		pred, cur := l.locate(v)
		pause()
		pred.mu.Lock()
		cur.mu.Lock()
		if !l.valid(pred, cur) {
			cur.mu.Unlock()
			pred.mu.Unlock()
			continue
		}
		ok := cur.key != v
		if ok {
			n := &lazyNode{key: v}
			n.next.Store(cur)
			pred.next.Store(n)
		}
		cur.mu.Unlock()
		pred.mu.Unlock()
		return ok
	}
}

func (l *lazyList) Remove(v int) bool {
	for pause := l.pause; ; pause = nop {
		pred, cur := l.locate(v)
		pause()
		pred.mu.Lock()
		cur.mu.Lock()
		if !l.valid(pred, cur) {
			cur.mu.Unlock()
			pred.mu.Unlock()
			continue
		}
		ok := cur.key == v
		if ok {
			cur.marked.Store(true)
			pred.next.Store(cur.next.Load())
		}
		cur.mu.Unlock()
		pred.mu.Unlock()
		return ok
	}
}

func (l *lazyList) Contains(v int) bool {
	cur := l.head.next.Load()
	for cur.key < v {
		cur = cur.next.Load()
	}
	return cur.key == v && !cur.marked.Load()
}

// --- queue: Michael–Scott, and the dropped-retry mutant ---

type msNode struct {
	val  string
	next atomic.Pointer[msNode]
}

// msQueue is the lock-free Michael–Scott queue: head points at a dummy
// node, tail at the last (or second-to-last) node; enqueue CASes the
// tail's next link then swings tail, dequeue CASes head forward. With
// retryDeq false (the dropped-retry mutant) a dequeue whose head-CAS
// loses the race returns its value read anyway — the value the winner
// also returns.
//
// pause is the schedule-perturbation hook, called between reading the
// candidate value and the head-CAS that claims it. A lock-free queue is
// correct under arbitrary delay at every step, so perturbing a correct
// run only makes the CAS fail and retry; in the mutant it widens the
// lose-the-race window from a few nanoseconds to a scheduler quantum,
// making the duplicate delivery manifest on any core count.
type msQueue struct {
	head     atomic.Pointer[msNode]
	tail     atomic.Pointer[msNode]
	retryDeq bool
	pause    func()
}

func newMSQueue(retryDeq bool, pause func()) *msQueue {
	d := &msNode{}
	q := &msQueue{retryDeq: retryDeq, pause: pause}
	q.head.Store(d)
	q.tail.Store(d)
	return q
}

func (q *msQueue) Enqueue(v string) {
	n := &msNode{val: v}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if tail != q.tail.Load() {
			continue
		}
		if next != nil {
			q.tail.CompareAndSwap(tail, next) // help the lagging tail
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			return
		}
	}
}

func (q *msQueue) Dequeue() (string, bool) {
	for pause := q.pause; ; pause = nop {
		head := q.head.Load()
		tail := q.tail.Load()
		next := head.next.Load()
		if head != q.head.Load() {
			continue
		}
		if next == nil {
			return "", false // empty
		}
		if head == tail {
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		v := next.val
		pause()
		if q.head.CompareAndSwap(head, next) {
			return v, true
		}
		if !q.retryDeq {
			return v, true // the seeded bug: lost the CAS race, return anyway
		}
	}
}

// newStructure builds the named structure with the named mutant (empty
// for the unmutated reference). With perturb set, the lazy list and
// Michael–Scott queue yield the scheduler at their race-critical steps
// — sound for the correct algorithms (which must tolerate arbitrary
// delay anywhere) and necessary for the mutants' sub-microsecond bug
// windows to manifest regardless of GOMAXPROCS.
func newStructure(structure, mutant string, perturb bool) (any, error) {
	pause := func() {}
	if perturb {
		pause = runtime.Gosched
	}
	bad := func() error {
		return fmt.Errorf("capture: structure %q has no mutant %q", structure, mutant)
	}
	switch structure {
	case StructMap:
		switch mutant {
		case "":
			return &syncMap{}, nil
		case MutantStaleRead:
			return &staleMap{}, nil
		}
		return nil, bad()
	case StructMutex:
		switch mutant {
		case "":
			return &stdMutex{}, nil
		case MutantMisplacedUnlock:
			return &spinMutex{}, nil
		}
		return nil, bad()
	case StructSet:
		switch mutant {
		case "":
			return newLazyList(true, pause), nil
		case MutantSkipValidation:
			return newLazyList(false, pause), nil
		}
		return nil, bad()
	case StructQueue:
		switch mutant {
		case "":
			return newMSQueue(true, pause), nil
		case MutantDroppedRetry:
			return newMSQueue(false, pause), nil
		}
		return nil, bad()
	}
	return nil, fmt.Errorf("capture: unknown structure %q", structure)
}
