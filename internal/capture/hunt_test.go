package capture

import (
	"strings"
	"testing"

	speclin "repro"
)

// huntOps scales the stress size down under -short.
func huntOps(t *testing.T, full int) int {
	if testing.Short() {
		return full / 4
	}
	return full
}

// TestHuntCleanStructures: every unmutated reference structure checks
// Linearizable live, with the queue recording zero empty dequeues.
func TestHuntCleanStructures(t *testing.T) {
	for _, structure := range Structures {
		t.Run(structure, func(t *testing.T) {
			rep, err := Run(t.Context(), Config{
				Structure:  structure,
				Goroutines: 8,
				Ops:        huntOps(t, 400),
				Keys:       8,
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Live.Verdict != speclin.Linearizable {
				t.Fatalf("clean %s: verdict %v, reason %q", structure, rep.Live.Verdict, rep.Live.Reason)
			}
			if rep.EmptyDeqs != 0 {
				t.Errorf("clean %s: %d empty dequeues, want 0", structure, rep.EmptyDeqs)
			}
			if rep.Actions == 0 {
				t.Errorf("clean %s: no actions captured", structure)
			}
		})
	}
}

// TestHuntMutantsCaught: every seeded-bug mutant is flagged
// NotLinearizable. Detection is probabilistic per run (the bug must
// fire and land in the captured interleaving), so each mutant gets a
// few rounds with distinct seeds.
func TestHuntMutantsCaught(t *testing.T) {
	const rounds = 10
	for _, structure := range Structures {
		mutant := Mutants[structure]
		t.Run(structure+"/"+mutant, func(t *testing.T) {
			for seed := int64(1); seed <= rounds; seed++ {
				rep, err := Run(t.Context(), Config{
					Structure:  structure,
					Mutant:     mutant,
					Goroutines: 8,
					Ops:        huntOps(t, 400),
					Keys:       4,
					Seed:       seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				if rep.Live.Verdict == speclin.NotLinearizable {
					t.Logf("%s/%s caught in round %d: %s", structure, mutant, seed, rep.Live.Reason)
					return
				}
			}
			t.Fatalf("%s/%s: not caught in %d rounds", structure, mutant, rounds)
		})
	}
}

// TestHuntClassical: the optional post-run ClassicalLin pass agrees
// with the live verdict on a clean run (captured inputs are unique by
// construction, so Theorem 1 grounds the classical verdicts).
func TestHuntClassical(t *testing.T) {
	rep, err := Run(t.Context(), Config{
		Structure:  StructMap,
		Goroutines: 4,
		Ops:        huntOps(t, 200),
		Keys:       4,
		Classical:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Live.Verdict != speclin.Linearizable {
		t.Fatalf("live verdict %v: %s", rep.Live.Verdict, rep.Live.Reason)
	}
	if rep.Classical == nil {
		t.Fatal("classical pass not run")
	}
	if rep.Classical.Verdict != speclin.Linearizable {
		t.Fatalf("classical verdict %v: %s", rep.Classical.Verdict, rep.Classical.Reason)
	}
}

// TestHuntDuration: a wall-clock-bounded run terminates and checks clean.
func TestHuntDuration(t *testing.T) {
	rep, err := Run(t.Context(), Config{
		Structure:  StructMutex,
		Goroutines: 4,
		Duration:   20e6, // 20ms
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Live.Verdict != speclin.Linearizable {
		t.Fatalf("verdict %v: %s", rep.Live.Verdict, rep.Live.Reason)
	}
	if rep.Actions == 0 {
		t.Fatal("no actions captured in 20ms")
	}
}

// TestHuntConfigErrors: unknown structures and mismatched mutants are
// configuration errors, not verdicts.
func TestHuntConfigErrors(t *testing.T) {
	if _, err := Run(t.Context(), Config{Structure: "deque"}); err == nil {
		t.Error("unknown structure accepted")
	}
	if _, err := Run(t.Context(), Config{Structure: StructMap, Mutant: MutantDroppedRetry}); err == nil {
		t.Error("mismatched mutant accepted")
	}
	if _, err := newStructure(StructQueue, "nope", false); err == nil {
		t.Error("unknown queue mutant accepted")
	}
}

// TestOverhead: the overhead measurement produces plausible numbers.
func TestOverhead(t *testing.T) {
	o, err := Overhead(Config{Structure: StructMap, Goroutines: 4, Ops: huntOps(t, 400), Keys: 8})
	if err != nil {
		t.Fatal(err)
	}
	if o.RawOps != o.CapturedOps || o.RawOps == 0 {
		t.Fatalf("op counts diverge: raw %d captured %d", o.RawOps, o.CapturedOps)
	}
	if o.RawNsPerOp() <= 0 || o.CapturedNsPerOp() <= 0 || o.ThroughputRatio() <= 0 {
		t.Fatalf("implausible overhead: %+v", o)
	}
}

// TestReportString smoke-tests the CLI rendering.
func TestReportString(t *testing.T) {
	rep, err := Run(t.Context(), Config{Structure: StructMutex, Goroutines: 4, Ops: 50})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	if !strings.Contains(s, "mutex") || !strings.Contains(s, "clean") {
		t.Fatalf("rendering missing fields: %q", s)
	}
}
