package smcons_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"repro/internal/adt"
	"repro/internal/cascons"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/lin"
	"repro/internal/rcons"
	"repro/internal/slin"
	"repro/internal/smcons"
	"repro/internal/trace"
)

// oracle validates one complete run of the composed shared-memory object.
func oracle(sys *smcons.System) error {
	tr := sys.Trace()
	if !tr.PhaseWellFormed(1, 3) {
		return fmt.Errorf("not (1,3)-well-formed: %v", tr)
	}
	// Agreement and validity of decisions.
	var first trace.Value
	for _, p := range sys.Procs {
		d, _, ok := p.Decision()
		if !ok {
			return fmt.Errorf("incomplete run reached oracle")
		}
		if first == "" {
			first = d
		} else if d != first {
			return fmt.Errorf("split decisions in %v", tr)
		}
		proposed := false
		for _, q := range sys.Procs {
			if q.Value() == d {
				proposed = true
			}
		}
		if !proposed {
			return fmt.Errorf("decided unproposed value %q", d)
		}
	}
	// Linearizability of the switch-free projection.
	plain := tr.Project(func(a trace.Action) bool { return a.Kind != trace.Swi })
	res, err := lin.Check(context.Background(), adt.Consensus{}, plain)
	if err != nil {
		return err
	}
	if !res.OK {
		return fmt.Errorf("not linearizable: %s: %v", res.Reason, tr)
	}
	// The paper's invariants on the phase projections.
	if err := slin.FirstPhaseInvariants(tr.ProjectSig(1, 2), 1, 2); err != nil {
		return fmt.Errorf("%w in %v", err, tr)
	}
	if err := slin.SecondPhaseInvariants(tr.ProjectSig(2, 3), 2, 3); err != nil {
		return fmt.Errorf("%w in %v", err, tr)
	}
	// Speculative linearizability of the projections (temporal
	// Abort-Order for the first phase; see package slin).
	sres, err := slin.Check(context.Background(), adt.Consensus{}, slin.ConsensusRInit{}, 1, 2, tr.ProjectSig(1, 2),
		check.WithTemporalAbortOrder(true))
	if err != nil {
		return err
	}
	if !sres.OK {
		return fmt.Errorf("RCons projection not SLin: %s: %v", sres.Reason, tr)
	}
	sres, err = slin.Check(context.Background(), adt.Consensus{}, slin.ConsensusRInit{}, 2, 3, tr.ProjectSig(2, 3))
	if err != nil {
		return err
	}
	if !sres.OK {
		return fmt.Errorf("CASCons projection not SLin: %s: %v", sres.Reason, tr)
	}
	return nil
}

// A single client runs uncontended and decides its own value through the
// register path (no CAS, phase 1) — the §2.5 design goal.
func TestUncontendedUsesRegistersOnly(t *testing.T) {
	sys := smcons.New(smcons.Config{Values: []trace.Value{"a"}})
	for {
		en := sys.Enabled()
		if len(en) == 0 {
			break
		}
		sys.Step(en[0])
	}
	p := sys.Procs[0]
	d, phase, ok := p.Decision()
	if !ok || d != "a" || phase != 1 {
		t.Fatalf("uncontended decision: %q phase %d ok=%v", d, phase, ok)
	}
	if p.SwitchedOut() {
		t.Fatal("uncontended client took the CAS path")
	}
	if err := oracle(sys); err != nil {
		t.Fatal(err)
	}
}

// E6 core: exhaustive exploration of ALL schedules for two clients with
// distinct values (folded interface events), validating the full oracle
// on every complete run.
func TestE6ExhaustiveTwoClients(t *testing.T) {
	sys := smcons.New(smcons.Config{Values: []trace.Value{"a", "b"}, FoldEndpoints: true})
	stats, err := check.ExhaustiveTraces(sys, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs < 100 {
		t.Fatalf("suspiciously few runs explored: %+v", stats)
	}
	t.Logf("E6 exhaustive (2 clients, folded): %d runs, %d steps", stats.Runs, stats.Steps)
}

// Same-value duplicate proposals: exhaustive exploration must also pass
// (exercises repeated events end to end).
func TestE6ExhaustiveDuplicateValues(t *testing.T) {
	sys := smcons.New(smcons.Config{Values: []trace.Value{"a", "a"}, FoldEndpoints: true})
	stats, err := check.ExhaustiveTraces(sys, oracle)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("E6 exhaustive (duplicate values): %d runs", stats.Runs)
}

// Unfolded two-client exploration at full interface-event granularity,
// with a cheaper oracle (agreement + linearizability).
func TestE6ExhaustiveUnfoldedLight(t *testing.T) {
	if testing.Short() {
		t.Skip("exponential schedule space")
	}
	sys := smcons.New(smcons.Config{Values: []trace.Value{"a", "b"}})
	light := func(s *smcons.System) error {
		tr := s.Trace()
		plain := tr.Project(func(a trace.Action) bool { return a.Kind != trace.Swi })
		res, err := lin.Check(context.Background(), adt.Consensus{}, plain)
		if err != nil {
			return err
		}
		if !res.OK {
			return fmt.Errorf("not linearizable: %v", tr)
		}
		return nil
	}
	stats, err := check.ExhaustiveTraces(sys, light)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("E6 exhaustive (2 clients, unfolded): %d runs, %d steps", stats.Runs, stats.Steps)
}

// State-space exploration for three clients: state invariants hold in
// every reachable state (splitter winner uniqueness; agreement; I1 in
// state form: a switch value never contradicts a completed decision).
func TestE6ExhaustiveStatesThreeClients(t *testing.T) {
	sys := smcons.New(smcons.Config{Values: []trace.Value{"a", "b", "c"}})
	stats, err := check.ExhaustiveStates(sys, func(s *smcons.System) error {
		winners := 0
		var decided []trace.Value
		var phase1 []trace.Value
		for _, p := range s.Procs {
			if p.SplitterWon() {
				winners++
			}
			if d, phase, ok := p.Decision(); ok {
				decided = append(decided, d)
				if phase == 1 {
					phase1 = append(phase1, d)
				}
			}
		}
		if winners > 1 {
			return fmt.Errorf("splitter elected %d winners", winners)
		}
		for i := 1; i < len(decided); i++ {
			if decided[i] != decided[0] {
				return fmt.Errorf("split decisions in state: %v", decided)
			}
		}
		// I1 in state form: a FIRST-PHASE return of v forces every switch
		// value to be v. (Composed-object decisions from the CAS phase do
		// not constrain switch values: when nobody returns in RCons, a
		// client may legitimately switch with its own value and lose the
		// CAS — the model checker exposed exactly such states.)
		if len(phase1) > 0 {
			for _, p := range s.Procs {
				if p.SwitchedOut() && p.SwitchValue() != phase1[0] {
					return fmt.Errorf("switch value %q contradicts phase-1 return %q",
						p.SwitchValue(), phase1[0])
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.States < 1000 {
		t.Fatalf("suspiciously few states: %+v", stats)
	}
	t.Logf("E6 states (3 clients): %d states, %d steps", stats.States, stats.Steps)
}

// Randomized schedules at sizes exhaustive search cannot reach.
func TestE6RandomFourClients(t *testing.T) {
	runs := 300
	if testing.Short() {
		runs = 50
	}
	sys := smcons.New(smcons.Config{Values: []trace.Value{"a", "b", "c", "d"}})
	stats, err := check.RandomTraces(sys, runs, 42, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != runs {
		t.Fatalf("runs = %d", stats.Runs)
	}
}

// The native (sync/atomic) composition under real goroutine concurrency:
// repeated rounds, each a fresh object attacked by N goroutines; the
// recorded trace must be linearizable and decisions must agree (run with
// -race).
func TestNativeComposedObject(t *testing.T) {
	for round := 0; round < 50; round++ {
		obj, err := core.NewComposer(rcons.NewNativePhase(), cascons.NewNativePhase())
		if err != nil {
			t.Fatal(err)
		}
		const n = 4
		var wg sync.WaitGroup
		decisions := make([]trace.Value, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				c := trace.ClientID(fmt.Sprintf("g%d", i))
				v := trace.Value(fmt.Sprintf("v%d", i))
				in := adt.Tag(adt.ProposeInput(v), string(c))
				out, err := obj.Invoke(c, in)
				if err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
				d, ok := adt.DecisionOf(out)
				if !ok {
					t.Errorf("output %q is not a decision", out)
					return
				}
				decisions[i] = d
			}(i)
		}
		wg.Wait()
		if t.Failed() {
			return
		}
		for i := 1; i < n; i++ {
			if decisions[i] != decisions[0] {
				t.Fatalf("round %d: split decisions %v", round, decisions)
			}
		}
		tr := obj.Trace()
		plain := tr.Project(func(a trace.Action) bool { return a.Kind != trace.Swi })
		res, err := lin.Check(context.Background(), adt.Consensus{}, plain)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Fatalf("round %d: native trace not linearizable: %v", round, tr)
		}
	}
}

// Clients that already switched propose again through CASCons.propose
// (Figure 3 line 7) via the native composition.
func TestNativeReinvokeAfterSwitch(t *testing.T) {
	obj, err := core.NewComposer(rcons.NewNativePhase(), cascons.NewNativePhase())
	if err != nil {
		t.Fatal(err)
	}
	// Force contention: two goroutines race; at least one may switch. To
	// make it deterministic, drive the phases directly: c1 wins, then c2
	// switches, then c2 re-invokes.
	out1, err := obj.Invoke("c1", adt.Tag(adt.ProposeInput("a"), "c1"))
	if err != nil {
		t.Fatal(err)
	}
	if out1 != adt.DecideOutput("a") {
		t.Fatalf("c1 decided %q", out1)
	}
	// c2 arrives later; D is set, so RCons returns it directly (line 8).
	out2, err := obj.Invoke("c2", adt.Tag(adt.ProposeInput("b"), "c2"))
	if err != nil {
		t.Fatal(err)
	}
	if out2 != adt.DecideOutput("a") {
		t.Fatalf("c2 decided %q", out2)
	}
}
