// Package smcons composes the shared-memory speculation phases RCons
// (Figure 2) and CASCons (Figure 3) into one consensus object over
// simulated memory, exposing it as a step system that the model checker
// (package check) can interleave exhaustively.
//
// Each client process runs one propose(v) through the composed object:
// an invocation event, the RCons steps, then — if RCons aborts — a switch
// event and the CASCons step, and finally a response event. Every
// shared-memory access is one step, so the checker explores exactly the
// interleavings a real machine could produce at register granularity.
package smcons

import (
	"strconv"
	"strings"

	"repro/internal/adt"
	"repro/internal/cascons"
	"repro/internal/rcons"
	"repro/internal/shmem"
	"repro/internal/trace"
)

// Stage of a client process.
const (
	stageArrive  = iota // emit the invocation
	stageRCons          // executing Figure 2 steps
	stageSwitch         // emit the switch action
	stageCAS            // executing the Figure 3 CAS
	stageRespond        // emit the response
	stageDone
)

// ClientProc drives one client's single propose(v) through the composed
// object.
type ClientProc struct {
	id    trace.ClientID
	value trace.Value
	input trace.Value

	// foldEndpoints merges interface events (invocation, switch,
	// response) into the adjacent memory step, shrinking the
	// interleaving space for exhaustive runs. Every folded schedule is a
	// genuine schedule of the unfolded system (one particular placement
	// of the interface events), so folded exploration covers a subset of
	// the unfolded schedules; the unfolded mode remains the ground truth
	// and is used at smaller configuration sizes.
	foldEndpoints bool

	stage    int
	rc       *rcons.Machine
	cc       *cascons.Machine
	sv       trace.Value
	phase    int // 1-based phase of the eventual response
	decision trace.Value
}

// System is the composed object plus its clients and the recorded trace.
type System struct {
	Mem   *shmem.Mem
	Procs []*ClientProc
	tr    trace.Trace

	regs rcons.Regs
	reg  cascons.Reg
}

// Config parameterizes New.
type Config struct {
	// Values are the proposals; one client is created per entry.
	Values []trace.Value
	// FoldEndpoints folds invocation/response events into the adjacent
	// memory steps (see ClientProc).
	FoldEndpoints bool
}

// New builds a fresh composed object with one client per proposal value.
func New(cfg Config) *System {
	s := &System{
		Mem:  shmem.NewMem(),
		regs: rcons.DefaultRegs("rc"),
		reg:  cascons.DefaultReg("cc"),
	}
	for i, v := range cfg.Values {
		id := trace.ClientID("m" + strconv.Itoa(i+1))
		s.Procs = append(s.Procs, &ClientProc{
			id:            id,
			value:         v,
			input:         adt.Tag(adt.ProposeInput(v), string(id)),
			foldEndpoints: cfg.FoldEndpoints,
			stage:         stageArrive,
		})
	}
	return s
}

// Enabled returns the indices of processes that can still step.
func (s *System) Enabled() []int {
	var e []int
	for i, p := range s.Procs {
		if p.stage != stageDone {
			e = append(e, i)
		}
	}
	return e
}

// Step advances process i by one atomic step.
func (s *System) Step(i int) {
	p := s.Procs[i]
	switch p.stage {
	case stageArrive:
		s.tr = append(s.tr, trace.Invoke(p.id, 1, p.input))
		p.rc = rcons.NewMachine(s.regs, p.id, p.value)
		p.stage = stageRCons
		if p.foldEndpoints {
			s.Step(i) // perform the first memory access in the same step
		}
	case stageRCons:
		p.rc.Step(s.Mem)
		if !p.rc.Done() {
			return
		}
		r := p.rc.Result()
		if r.Switched {
			p.sv = r.Value
			p.stage = stageSwitch
			if p.foldEndpoints {
				s.Step(i)
			}
			return
		}
		p.decision, p.phase = r.Value, 1
		p.stage = stageRespond
		if p.foldEndpoints {
			s.Step(i)
		}
	case stageSwitch:
		s.tr = append(s.tr, trace.Switch(p.id, 2, p.input, p.sv))
		p.cc = cascons.NewSwitchMachine(s.reg, p.sv)
		p.stage = stageCAS
	case stageCAS:
		p.cc.Step(s.Mem)
		p.decision, p.phase = p.cc.Result(), 2
		p.stage = stageRespond
		if p.foldEndpoints {
			s.Step(i)
		}
	case stageRespond:
		s.tr = append(s.tr, trace.Response(p.id, p.phase, p.input, adt.DecideOutput(p.decision)))
		p.stage = stageDone
	default:
		panic("smcons: step on completed process")
	}
}

// Clone returns an independent copy for state-space branching.
func (s *System) Clone() *System {
	c := &System{
		Mem:  s.Mem.Clone(),
		tr:   s.tr.Clone(),
		regs: s.regs,
		reg:  s.reg,
	}
	for _, p := range s.Procs {
		np := *p
		if p.rc != nil {
			np.rc = p.rc.Clone()
		}
		if p.cc != nil {
			np.cc = p.cc.Clone()
		}
		c.Procs = append(c.Procs, &np)
	}
	return c
}

// Trace returns the trace recorded so far.
func (s *System) Trace() trace.Trace { return s.tr }

// Key canonically encodes memory plus all process-local states (the trace
// is excluded: Key identifies states for invariant-checking dedup).
func (s *System) Key() string {
	var b strings.Builder
	b.WriteString(s.Mem.Key())
	b.WriteByte('|')
	for _, p := range s.Procs {
		b.WriteString(strconv.Itoa(p.stage))
		b.WriteByte(':')
		if p.rc != nil {
			b.WriteString(p.rc.Key())
		}
		b.WriteByte(':')
		if p.cc != nil {
			b.WriteString(p.cc.Key())
		}
		b.WriteByte(':')
		b.WriteString(p.decision)
		b.WriteByte(':')
		b.WriteString(p.sv)
		b.WriteByte('|')
	}
	return b.String()
}

// Decisions returns the decided value per client for completed clients.
func (s *System) Decisions() map[trace.ClientID]trace.Value {
	d := map[trace.ClientID]trace.Value{}
	for _, p := range s.Procs {
		if p.stage == stageDone {
			d[p.id] = p.decision
		}
	}
	return d
}

// ID returns the client's identifier.
func (p *ClientProc) ID() trace.ClientID { return p.id }

// Value returns the client's proposal.
func (p *ClientProc) Value() trace.Value { return p.value }

// Completed reports whether the client's operation has responded.
func (p *ClientProc) Completed() bool { return p.stage == stageDone }

// SwitchedOut reports whether the client's switch action has been emitted.
func (p *ClientProc) SwitchedOut() bool {
	return p.stage == stageCAS || (p.stage >= stageRespond && p.phase == 2)
}

// SwitchValue returns the switch value; meaningful once SwitchedOut.
func (p *ClientProc) SwitchValue() trace.Value { return p.sv }

// Decision returns the decided value and the 1-based deciding phase;
// ok is false until the operation resolved.
func (p *ClientProc) Decision() (v trace.Value, phase int, ok bool) {
	if p.stage < stageRespond {
		return "", 0, false
	}
	return p.decision, p.phase, true
}

// SplitterWon reports whether the client won the RCons splitter.
func (p *ClientProc) SplitterWon() bool { return p.rc != nil && p.rc.SplitterWon() }
