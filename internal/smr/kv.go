package smr

import (
	"sort"
	"strings"
)

// This file gives replicated-log commands a concrete interpretation as a
// key-value store, used by the kvstore example and the E9 experiment.

// SetCmd encodes a KV write command.
func SetCmd(key, value string) Command { return Command("set\x1f" + key + "\x1f" + value) }

// DelCmd encodes a KV delete command.
func DelCmd(key string) Command { return Command("del\x1f" + key) }

// ApplyKV folds log entries (in slot order) into a key-value map.
// Unknown commands are ignored, which lets mixed workloads share a log.
func ApplyKV(log map[int]Command) map[string]string {
	slots := make([]int, 0, len(log))
	for s := range log {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	kv := map[string]string{}
	for _, s := range slots {
		parts := strings.Split(string(log[s]), "\x1f")
		switch {
		case len(parts) == 3 && parts[0] == "set":
			kv[parts[1]] = parts[2]
		case len(parts) == 2 && parts[0] == "del":
			delete(kv, parts[1])
		}
	}
	return kv
}
