package smr

import (
	"sort"
	"strings"

	"repro/internal/adt"
	"repro/internal/trace"
)

// This file gives replicated-log commands a concrete interpretation as a
// keyed key-value store, used by the kvstore example, the E9/E12
// experiments and the sharded cluster: commands carry the key they
// operate on, ShardedCluster hash-partitions them by that key, and each
// keyed command projects onto a per-key read/write register operation so
// per-key histories can be checked linearizable (DESIGN.md, decision 10).

// cmdSep separates the fields of a KV command encoding. Keys, values
// and tags must not contain it: an embedded separator would change the
// field count and silently demote the command out of the KV grammar —
// losing keyed routing and per-key verification — so the constructors
// reject it (a caller bug, like a duplicate node ID).
const cmdSep = "\x1f"

func checkField(kind, field string) {
	if strings.Contains(field, cmdSep) {
		panic("smr: " + kind + " contains the reserved KV field separator \\x1f")
	}
}

// SetCmd encodes a KV write command. Values should be unique across a
// run (the replicated log requires distinct entries; CheckConsistency
// flags duplicates).
func SetCmd(key, value string) Command {
	checkField("key", key)
	checkField("value", value)
	return Command("set" + cmdSep + key + cmdSep + value)
}

// DelCmd encodes a KV delete command.
func DelCmd(key string) Command {
	checkField("key", key)
	return Command("del" + cmdSep + key)
}

// GetCmd encodes a KV read command. The tag distinguishes read
// occurrences (reads carry no unique value of their own, and log entries
// must be distinct).
func GetCmd(key, tag string) Command {
	checkField("key", key)
	checkField("tag", tag)
	return Command("get" + cmdSep + key + cmdSep + tag)
}

// cmdParts splits a KV command once into (kind, key, arg): the arg is
// the written value for "set", the occurrence tag for "get", empty for
// "del". ok is false outside the KV grammar.
func cmdParts(cmd Command) (kind, key, arg string, ok bool) {
	parts := strings.Split(string(cmd), cmdSep)
	switch {
	case len(parts) == 3 && (parts[0] == "set" || parts[0] == "get"):
		return parts[0], parts[1], parts[2], true
	case len(parts) == 2 && parts[0] == "del":
		return parts[0], parts[1], "", true
	}
	return "", "", "", false
}

// CmdKey extracts the key a KV command operates on; ok is false for
// commands outside the KV grammar.
func CmdKey(cmd Command) (key string, ok bool) {
	_, key, _, ok = cmdParts(cmd)
	return key, ok
}

// ShardOf maps a key to a shard in [0, shards) by FNV-1a hash. Commands
// outside the KV grammar hash their whole encoding (no key to partition
// on, but routing stays deterministic). The hash is inlined so the
// per-command routing path allocates nothing.
func ShardOf(key string, shards int) int {
	if shards <= 1 {
		return 0
	}
	const (
		fnvOffset32 = 2166136261
		fnvPrime32  = 16777619
	)
	h := uint32(fnvOffset32)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * fnvPrime32
	}
	return int(h % uint32(shards))
}

// RegisterInput projects a keyed command onto the per-key register ADT
// used by the history checker: a set is a write of its (unique) value, a
// get is a tagged read. Deletes and foreign commands do not project
// (ok=false) — the sharded history recorder requires projectable
// commands so per-key traces stay checkable.
func RegisterInput(cmd Command) (key string, in trace.Value, ok bool) {
	kind, key, arg, ok := cmdParts(cmd)
	if !ok {
		return "", "", false
	}
	in, ok = registerInput(kind, arg)
	return key, in, ok
}

// registerInput builds the register projection from pre-split parts.
func registerInput(kind, arg string) (in trace.Value, ok bool) {
	switch kind {
	case "set":
		return adt.WriteInput(trace.Value(arg)), true
	case "get":
		return adt.Tag(adt.ReadInput(), arg), true
	}
	return "", false
}

// ApplyKV folds log entries (in slot order) into a key-value map.
// Unknown commands and reads are ignored, which lets mixed workloads
// share a log.
func ApplyKV(log map[int]Command) map[string]string {
	slots := make([]int, 0, len(log))
	for s := range log {
		slots = append(slots, s)
	}
	sort.Ints(slots)
	kv := map[string]string{}
	for _, s := range slots {
		parts := strings.Split(string(log[s]), cmdSep)
		switch {
		case len(parts) == 3 && parts[0] == "set":
			kv[parts[1]] = parts[2]
		case len(parts) == 2 && parts[0] == "del":
			delete(kv, parts[1])
		}
	}
	return kv
}
