package smr

import (
	"fmt"
	"testing"

	"repro/internal/msgnet"
)

func ids(prefix string, n int) []msgnet.ProcID {
	out := make([]msgnet.ProcID, n)
	for i := range out {
		out[i] = msgnet.ProcID(fmt.Sprintf("%s%d", prefix, i+1))
	}
	return out
}

func build(t *testing.T, cfg msgnet.Config, smrCfg Config, nc, ns int) (*msgnet.Network, *Cluster) {
	t.Helper()
	w := msgnet.New(cfg)
	cl, err := Build(w, ids("c", nc), ids("s", ns), smrCfg)
	if err != nil {
		t.Fatal(err)
	}
	return w, cl
}

// A lone client's sequential submissions each land in 2 message delays
// on the fast path, one slot apiece.
func TestSequentialFastPath(t *testing.T) {
	_, cl := build(t, msgnet.Config{Seed: 1}, Config{FastPath: true}, 1, 3)
	for i := 0; i < 5; i++ {
		cl.SubmitAt("c1", SetCmd("k", fmt.Sprintf("v%d", i)), msgnet.Time(i*10))
	}
	cl.Run(10000)
	rs := cl.Results()
	if len(rs) != 5 {
		t.Fatalf("landed %d/5: %v", len(rs), rs)
	}
	for i, r := range rs {
		if r.Latency() != 2 {
			t.Fatalf("submission %d latency %d, want 2 (fast path)", i, r.Latency())
		}
		if r.Slot != i || r.Attempts != 1 || r.Switches != 0 {
			t.Fatalf("submission %d placed oddly: %+v", i, r)
		}
	}
	if err := cl.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	kv := ApplyKV(cl.Log("c1"))
	if kv["k"] != "v4" {
		t.Fatalf("kv = %v", kv)
	}
}

// The Paxos-only baseline needs more than 2 delays even fault-free.
func TestPaxosBaselineSlower(t *testing.T) {
	_, cl := build(t, msgnet.Config{Seed: 1}, Config{FastPath: false}, 1, 3)
	cl.SubmitAt("c1", SetCmd("k", "v"), 0)
	cl.Run(10000)
	rs := cl.Results()
	if len(rs) != 1 {
		t.Fatalf("landed %d/1", len(rs))
	}
	if rs[0].Latency() < 4 {
		t.Fatalf("paxos baseline latency %d; expected ≥ 4 (two round trips)", rs[0].Latency())
	}
}

// Concurrent clients contend for slots; all commands land exactly once
// and logs agree.
func TestContendingClientsAllLand(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		_, cl := build(t, msgnet.Config{Seed: seed, MinDelay: 1, MaxDelay: 3},
			Config{FastPath: true}, 3, 3)
		total := 0
		for i, c := range []msgnet.ProcID{"c1", "c2", "c3"} {
			for j := 0; j < 3; j++ {
				cl.SubmitAt(c, SetCmd(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d-%d", i, j)), msgnet.Time(j*3))
				total++
			}
		}
		cl.Run(200000)
		rs := cl.Results()
		if len(rs) != total {
			t.Fatalf("seed %d: landed %d/%d", seed, len(rs), total)
		}
		if err := cl.CheckConsistency(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// Minority server crashes: the composition still lands all commands.
func TestCrashTolerance(t *testing.T) {
	w, cl := build(t, msgnet.Config{Seed: 7, MinDelay: 1, MaxDelay: 2},
		Config{FastPath: true}, 2, 5)
	w.Crash("s1", 5)
	w.Crash("s2", 12)
	for j := 0; j < 3; j++ {
		cl.SubmitAt("c1", SetCmd("a", fmt.Sprintf("x%d", j)), msgnet.Time(j*4))
		cl.SubmitAt("c2", SetCmd("b", fmt.Sprintf("y%d", j)), msgnet.Time(j*4+1))
	}
	cl.Run(200000)
	rs := cl.Results()
	if len(rs) != 6 {
		t.Fatalf("landed %d/6 under minority crashes", len(rs))
	}
	if err := cl.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// Message loss with retransmission: liveness and consistency hold.
func TestLossTolerance(t *testing.T) {
	_, cl := build(t, msgnet.Config{Seed: 11, MinDelay: 1, MaxDelay: 3, DropProb: 0.15},
		Config{FastPath: true, Retransmit: 6}, 2, 3)
	for j := 0; j < 3; j++ {
		cl.SubmitAt("c1", SetCmd("a", fmt.Sprintf("x%d", j)), msgnet.Time(j*5))
		cl.SubmitAt("c2", SetCmd("b", fmt.Sprintf("y%d", j)), msgnet.Time(j*5+2))
	}
	cl.Run(500000)
	if len(cl.Results()) != 6 {
		t.Fatalf("landed %d/6 under loss", len(cl.Results()))
	}
	if err := cl.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

// A client that lost a slot advances and lands in a later slot.
func TestSlotConflictRetries(t *testing.T) {
	sawRetry := false
	for seed := int64(1); seed <= 20 && !sawRetry; seed++ {
		_, cl := build(t, msgnet.Config{Seed: seed, MinDelay: 1, MaxDelay: 4},
			Config{FastPath: true}, 2, 3)
		cl.SubmitAt("c1", SetCmd("k", "a"), 0)
		cl.SubmitAt("c2", SetCmd("k", "b"), 0)
		cl.Run(100000)
		for _, r := range cl.Results() {
			if r.Attempts > 1 {
				sawRetry = true
			}
		}
		if err := cl.CheckConsistency(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(cl.Results()) != 2 {
			t.Fatalf("seed %d: landed %d/2", seed, len(cl.Results()))
		}
	}
	if !sawRetry {
		t.Fatal("no seed exercised a slot conflict retry")
	}
}

func TestKVApply(t *testing.T) {
	log := map[int]Command{
		0: SetCmd("a", "1"),
		1: SetCmd("b", "2"),
		2: SetCmd("a", "3"),
		3: DelCmd("b"),
		4: "garbage",
	}
	kv := ApplyKV(log)
	if kv["a"] != "3" {
		t.Fatalf("kv[a] = %q", kv["a"])
	}
	if _, ok := kv["b"]; ok {
		t.Fatal("deleted key present")
	}
}

func TestBuildValidation(t *testing.T) {
	w := msgnet.New(msgnet.Config{Seed: 1})
	if _, err := Build(w, nil, ids("s", 3), Config{}); err == nil {
		t.Fatal("empty clients must be rejected")
	}
}

func TestSlotTimerRoundTrip(t *testing.T) {
	name := slotTimerName(3, 12, 1, "retry")
	shard, slot, phase, rest, ok := splitSlotTimer(name)
	if !ok || shard != 3 || slot != 12 || phase != 1 || rest != "retry" {
		t.Fatalf("round trip: %d %d %d %q %v", shard, slot, phase, rest, ok)
	}
	if _, _, _, _, ok := splitSlotTimer("bogus"); ok {
		t.Fatal("bogus timer accepted")
	}
	if _, _, _, _, ok := splitSlotTimer("h1p2s3:x"); ok {
		t.Fatal("misordered timer accepted")
	}
}
