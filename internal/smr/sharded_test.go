package smr

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/msgnet"
	"repro/internal/workload"
)

// cmdOf encodes a keyed workload op as a replicated-log command.
func cmdOf(op workload.KeyedOp) Command {
	if op.Read {
		return GetCmd(op.Key, op.Value)
	}
	return SetCmd(op.Key, op.Value)
}

// runSharded drives a keyed workload through a sharded cluster: every
// client submits its ops at t=0 and the router pipelines them per shard.
func runSharded(t *testing.T, seed int64, shards int, cfg Config, wl workload.KeyedOpts) *ShardedCluster {
	t.Helper()
	w := msgnet.New(msgnet.Config{Seed: seed, MinDelay: 1, MaxDelay: 2})
	clients := ids("c", wl.Clients)
	sc, err := BuildSharded(w, clients, ids("s", 3), ShardedConfig{Config: cfg, Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	ops := workload.Keyed(rand.New(rand.NewSource(seed)), wl)
	perClient := make([][]Command, wl.Clients)
	for _, op := range ops {
		perClient[op.Client] = append(perClient[op.Client], cmdOf(op))
	}
	for i, c := range clients {
		sc.SubmitManyAt(c, perClient[i], 0)
	}
	sc.Run(100_000_000)
	return sc
}

// A sharded run lands every command, keeps per-shard logs consistent,
// and every per-key history is linearizable — across shard counts,
// uniform and zipf key distributions, and seeds.
func TestShardedPropertyLinearizablePerKey(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		for _, zipf := range []float64{0, 1.3} {
			for seed := int64(1); seed <= 3; seed++ {
				wl := workload.KeyedOpts{Clients: 3, Ops: 300, Keys: 24, ReadFrac: 0.4, ZipfS: zipf}
				sc := runSharded(t, seed, shards, Config{FastPath: true, QuorumTimeout: 8, Retransmit: 6}, wl)
				name := fmt.Sprintf("shards=%d zipf=%.1f seed=%d", shards, zipf, seed)
				st := sc.Stats()
				if st.Landed != int64(wl.Ops) {
					t.Fatalf("%s: landed %d/%d", name, st.Landed, wl.Ops)
				}
				if err := sc.CheckConsistency(); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				sum, err := sc.CheckLinearizable(context.Background())
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if sum.Ops != int64(wl.Ops) {
					t.Fatalf("%s: checked %d ops, landed %d", name, sum.Ops, wl.Ops)
				}
			}
		}
	}
}

// Keys never leak across shards: every decided command in every shard's
// log hashes to that shard.
func TestShardedKeysNeverLeak(t *testing.T) {
	sc := runSharded(t, 11, 4, Config{FastPath: true, QuorumTimeout: 8},
		workload.KeyedOpts{Clients: 3, Ops: 240, Keys: 32, ReadFrac: 0.3})
	if err := sc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	seen := 0
	for k := 0; k < sc.Shards(); k++ {
		for _, c := range sc.clients {
			for _, cmd := range sc.Log(k, c) {
				key, ok := CmdKey(cmd)
				if !ok {
					t.Fatalf("shard %d decided unkeyed command %q", k, cmd)
				}
				if ShardOf(key, sc.Shards()) != k {
					t.Fatalf("key %q leaked into shard %d", key, k)
				}
				seen++
			}
		}
	}
	if seen == 0 {
		t.Fatal("no decided commands inspected")
	}
	// And the per-key traces of each shard only cover that shard's keys.
	for k := 0; k < sc.Shards(); k++ {
		for _, key := range sc.recs[k].keys {
			if ShardOf(key, sc.Shards()) != k {
				t.Fatalf("history for key %q recorded in shard %d", key, k)
			}
		}
	}
}

// One of three servers crashed from t=0: the fast path cannot complete,
// every slot falls back to Paxos, and the multi-shard run stays both
// consistent and linearizable per key.
func TestShardedCrashTolerance(t *testing.T) {
	w := msgnet.New(msgnet.Config{Seed: 17, MinDelay: 1, MaxDelay: 2})
	clients := ids("c", 3)
	sc, err := BuildSharded(w, clients, ids("s", 3),
		ShardedConfig{Config: Config{FastPath: true, QuorumTimeout: 8, Retransmit: 6}, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	w.Crash("s1", 0)
	wl := workload.KeyedOpts{Clients: 3, Ops: 180, Keys: 24, ReadFrac: 0.4}
	ops := workload.Keyed(rand.New(rand.NewSource(17)), wl)
	perClient := make([][]Command, wl.Clients)
	for _, op := range ops {
		perClient[op.Client] = append(perClient[op.Client], cmdOf(op))
	}
	for i, c := range clients {
		sc.SubmitManyAt(c, perClient[i], 0)
	}
	sc.Run(100_000_000)
	st := sc.Stats()
	if st.Landed != int64(wl.Ops) {
		t.Fatalf("landed %d/%d under a crashed server", st.Landed, wl.Ops)
	}
	if st.FastPath != 0 {
		t.Fatalf("%d submissions claimed the fast path with a crashed server", st.FastPath)
	}
	if err := sc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.CheckLinearizable(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// Log compaction frees replica and client slot state without disturbing
// consistency or linearizability. The workload is paced (sustained load)
// so clients advance their watermarks together — the regime compaction
// is designed for.
func TestShardedCompaction(t *testing.T) {
	const ops = 600
	w := msgnet.New(msgnet.Config{Seed: 23, MinDelay: 1, MaxDelay: 2})
	wl := workload.KeyedOpts{Clients: 3, Ops: ops, Keys: 32, ReadFrac: 0.3}
	clients := ids("c", wl.Clients)
	sc, err := BuildSharded(w, clients, ids("s", 3),
		ShardedConfig{Config: Config{FastPath: true, QuorumTimeout: 8, CompactEvery: 16}, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	kops := workload.Keyed(rand.New(rand.NewSource(23)), wl)
	perClient := make([][]Command, wl.Clients)
	for _, op := range kops {
		perClient[op.Client] = append(perClient[op.Client], cmdOf(op))
	}
	const period = 12
	for i, c := range clients {
		sc.SubmitPaced(c, perClient[i], msgnet.Time(i*period/wl.Clients), period)
	}
	sc.Run(100_000_000)
	st := sc.Stats()
	if st.Landed != ops {
		t.Fatalf("landed %d/%d", st.Landed, ops)
	}
	if err := sc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.CheckLinearizable(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Replica slot state is bounded by the compaction window, not the log.
	for k, sh := range sc.shards {
		slots := int(st.PerShardLanded[k])
		for _, rep := range sh.reps {
			if rep.gcFloor == 0 {
				t.Fatalf("shard %d replica %s never compacted", k, rep.id)
			}
			if len(rep.slots) > slots/2 {
				t.Fatalf("shard %d replica %s retains %d/%d slots after compaction",
					k, rep.id, len(rep.slots), slots)
			}
		}
		for _, c := range sh.byID {
			if c.trimmed == 0 && len(c.log) > slots/2 {
				t.Fatalf("shard %d client %s log never trimmed (%d entries)", k, c.id, len(c.log))
			}
		}
	}
}

// Idle clients must not pin the compaction floor. Half the clients
// submit a short feed and go idle early; the passive decision gossip
// (gossipEnvelope) keeps them learning from the active clients'
// watermark reports, so every replica's gcFloor — the minimum watermark
// over ALL clients — keeps tracking the log tip instead of freezing at
// the idle clients' last active slot.
func TestShardedCompactionIdleClients(t *testing.T) {
	const ce = 16
	w := msgnet.New(msgnet.Config{Seed: 31, MinDelay: 1, MaxDelay: 2})
	clients := ids("c", 4)
	sc, err := BuildSharded(w, clients, ids("s", 3),
		ShardedConfig{Config: Config{FastPath: true, QuorumTimeout: 8, Retransmit: 6, CompactEvery: ce}})
	if err != nil {
		t.Fatal(err)
	}
	// c1/c2 submit 240 commands each; c3/c4 only 24, then idle.
	counts := []int{240, 240, 24, 24}
	total := 0
	const period = 12
	for i, c := range clients {
		cmds := make([]Command, counts[i])
		for j := range cmds {
			cmds[j] = SetCmd(fmt.Sprintf("k%d", j%8), fmt.Sprintf("v%d-%d", i, j))
		}
		total += counts[i]
		sc.SubmitPaced(c, cmds, msgnet.Time(i), period)
	}
	sc.Run(100_000_000)
	if st := sc.Stats(); st.Landed != int64(total) {
		t.Fatalf("landed %d/%d", st.Landed, total)
	}
	if err := sc.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.CheckLinearizable(context.Background()); err != nil {
		t.Fatal(err)
	}
	sh := sc.shards[0]
	// Without gossip the idle clients' watermarks freeze around slot
	// ~100 (their 24 commands land interleaved with the active feeds),
	// pinning gcFloor there; with it the floor must reach within a few
	// compaction windows of the 528-slot log tip.
	for _, rep := range sh.reps {
		if rep.gcFloor < total-4*ce {
			t.Fatalf("replica %s compaction floor pinned at %d of %d slots: idle clients stopped reporting",
				rep.id, rep.gcFloor, total)
		}
		if len(rep.slots) > 8*ce {
			t.Fatalf("replica %s retains %d slot states after compaction", rep.id, len(rep.slots))
		}
	}
	// The idle clients' own logs stay trimmed too (they learn via gossip
	// and keep trimming at the idle quarter-window).
	for _, id := range clients[2:] {
		c := sh.byID[id]
		if len(c.log) > 4*ce {
			t.Fatalf("idle client %s retains %d log entries", id, len(c.log))
		}
	}
}

// The N=1 sharded cluster reproduces the single-log Cluster exactly:
// same seeds, same commands ⇒ same per-submission slots and latencies.
// This mirrors E9's scenarios (sequential, contended, crashed server)
// and demonstrates the refactor is behavior-preserving.
func TestShardedSingleShardMatchesCluster(t *testing.T) {
	type scen struct {
		name    string
		clients int
		crash   int
		jitter  msgnet.Time
		stagger msgnet.Time
	}
	scenarios := []scen{
		{"sequential", 1, 0, 1, 6},
		{"contended", 3, 0, 3, 0},
		{"1/3 crashed", 1, 1, 1, 6},
	}
	const perClient = 6
	for _, sc := range scenarios {
		for _, fast := range []bool{true, false} {
			for seed := int64(1); seed <= 10; seed++ {
				cfg := Config{FastPath: fast, QuorumTimeout: 6, Retransmit: 4}
				submit := func(submitAt func(msgnet.ProcID, Command, msgnet.Time)) {
					for ci := 0; ci < sc.clients; ci++ {
						c := msgnet.ProcID(fmt.Sprintf("c%d", ci+1))
						for j := 0; j < perClient; j++ {
							cmd := SetCmd(fmt.Sprintf("k%d", ci), fmt.Sprintf("v%d-%d-%d", ci, j, seed))
							submitAt(c, cmd, msgnet.Time(j)*sc.stagger)
						}
					}
				}
				crash := func(w *msgnet.Network) {
					for i := 0; i < sc.crash; i++ {
						w.Crash(msgnet.ProcID(fmt.Sprintf("s%d", i+1)), 0)
					}
				}

				w1 := msgnet.New(msgnet.Config{Seed: seed, MinDelay: 1, MaxDelay: sc.jitter})
				single, err := Build(w1, ids("c", sc.clients), ids("s", 3), cfg)
				if err != nil {
					t.Fatal(err)
				}
				crash(w1)
				submit(single.SubmitAt)
				single.Run(1_000_000)

				w2 := msgnet.New(msgnet.Config{Seed: seed, MinDelay: 1, MaxDelay: sc.jitter})
				sharded, err := BuildSharded(w2, ids("c", sc.clients), ids("s", 3),
					ShardedConfig{Config: cfg, Shards: 1, RetainResults: true})
				if err != nil {
					t.Fatal(err)
				}
				crash(w2)
				submit(sharded.SubmitAt)
				sharded.Run(1_000_000)

				a, b := single.Results(), sharded.Results()
				if len(a) != len(b) {
					t.Fatalf("%s fast=%v seed=%d: %d vs %d results", sc.name, fast, seed, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("%s fast=%v seed=%d: result %d diverged:\n single: %+v\nsharded: %+v",
							sc.name, fast, seed, i, a[i], b[i])
					}
				}
				if err := sharded.CheckConsistency(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

// Sharded routing is deterministic and total: every command routes to
// exactly one shard, keyed commands by their key.
func TestShardOf(t *testing.T) {
	if ShardOf("k1", 1) != 0 {
		t.Fatal("single shard must route everything to 0")
	}
	spread := map[int]bool{}
	for i := 0; i < 64; i++ {
		s := ShardOf(fmt.Sprintf("k%d", i), 4)
		if s < 0 || s >= 4 {
			t.Fatalf("shard %d out of range", s)
		}
		spread[s] = true
	}
	if len(spread) != 4 {
		t.Fatalf("64 keys only hit %d/4 shards", len(spread))
	}
}

// Commands embedding the reserved field separator are rejected at
// construction: they would otherwise silently fall out of the KV
// grammar and escape keyed routing and per-key verification.
func TestCommandSeparatorRejected(t *testing.T) {
	for name, build := range map[string]func(){
		"set-value": func() { SetCmd("k", "a\x1fb") },
		"set-key":   func() { SetCmd("k\x1f", "v") },
		"get-tag":   func() { GetCmd("k", "t\x1f") },
		"del-key":   func() { DelCmd("\x1fk") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: embedded separator accepted", name)
				}
			}()
			build()
		}()
	}
}

func TestKeyedCommandCodecs(t *testing.T) {
	for _, tc := range []struct {
		cmd  Command
		key  string
		ok   bool
		reg  bool
		kind string
	}{
		{SetCmd("a", "v1"), "a", true, true, "w"},
		{GetCmd("a", "t1"), "a", true, true, "r"},
		{DelCmd("a"), "a", true, false, ""},
		{"garbage", "", false, false, ""},
	} {
		key, ok := CmdKey(tc.cmd)
		if ok != tc.ok || key != tc.key {
			t.Fatalf("CmdKey(%q) = %q, %v", tc.cmd, key, ok)
		}
		rkey, in, rok := RegisterInput(tc.cmd)
		if rok != tc.reg {
			t.Fatalf("RegisterInput(%q) ok = %v", tc.cmd, rok)
		}
		if rok {
			if rkey != tc.key {
				t.Fatalf("RegisterInput(%q) key = %q", tc.cmd, rkey)
			}
			if !strings.HasPrefix(string(in), tc.kind+":") {
				t.Fatalf("RegisterInput(%q) input = %q", tc.cmd, in)
			}
		}
	}
}

// runShardedCfg is runSharded with full control over the ShardedConfig.
func runShardedCfg(t *testing.T, seed int64, scfg ShardedConfig, wl workload.KeyedOpts) *ShardedCluster {
	t.Helper()
	w := msgnet.New(msgnet.Config{Seed: seed, MinDelay: 1, MaxDelay: 2})
	clients := ids("c", wl.Clients)
	sc, err := BuildSharded(w, clients, ids("s", 3), scfg)
	if err != nil {
		t.Fatal(err)
	}
	ops := workload.Keyed(rand.New(rand.NewSource(seed)), wl)
	perClient := make([][]Command, wl.Clients)
	for _, op := range ops {
		perClient[op.Client] = append(perClient[op.Client], cmdOf(op))
	}
	for i, c := range clients {
		sc.SubmitManyAt(c, perClient[i], 0)
	}
	sc.Run(100_000_000)
	return sc
}

// TestOnlineCheckAgreesWithPostHoc runs identical workloads with post-hoc
// and online (streaming per-key session) checking: the simulated schedule
// must be identical, verdicts must agree, and the online cluster must not
// retain raw per-key histories.
func TestOnlineCheckAgreesWithPostHoc(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		wl := workload.KeyedOpts{Clients: 3, Ops: 300, Keys: 24, ReadFrac: 0.4}
		cfg := Config{FastPath: true, QuorumTimeout: 8, Retransmit: 6}

		post := runShardedCfg(t, seed, ShardedConfig{Config: cfg, Shards: 2}, wl)
		online := runShardedCfg(t, seed, ShardedConfig{Config: cfg, Shards: 2, OnlineCheck: true}, wl)

		if p, o := post.Stats(), online.Stats(); p.Landed != o.Landed || p.Switches != o.Switches {
			t.Fatalf("seed %d: online checking perturbed the simulation: %+v vs %+v", seed, p, o)
		}
		if err := online.CheckConsistency(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		psum, err := post.CheckLinearizable(context.Background())
		if err != nil {
			t.Fatalf("seed %d post-hoc: %v", seed, err)
		}
		osum, err := online.CheckLinearizable(context.Background())
		if err != nil {
			t.Fatalf("seed %d online: %v", seed, err)
		}
		if !osum.Online || psum.Online {
			t.Fatalf("seed %d: Online flags wrong: post %v, online %v", seed, psum.Online, osum.Online)
		}
		if osum.Traces != psum.Traces || osum.Ops != psum.Ops {
			t.Fatalf("seed %d: online checked %d histories/%d ops, post-hoc %d/%d",
				seed, osum.Traces, osum.Ops, psum.Traces, psum.Ops)
		}
		for k := 0; k < online.Shards(); k++ {
			if got := online.KeyTraces(k); len(got) != 0 {
				t.Fatalf("seed %d: online cluster retained %d raw histories in shard %d", seed, len(got), k)
			}
		}
	}
}

// TestOnlineCheckBudgetSurfaces: a starvation budget on the streaming
// sessions must surface as an error from CheckLinearizable, not a wrong
// verdict — under ExactCheck, because the default register fast path
// spends no budget at all on in-fragment histories (the second half
// pins exactly that: same starved budget, fast path, clean verdict).
func TestOnlineCheckBudgetSurfaces(t *testing.T) {
	wl := workload.KeyedOpts{Clients: 3, Ops: 200, Keys: 4, ReadFrac: 0.4}
	sc := runShardedCfg(t, 1, ShardedConfig{
		Config:      Config{FastPath: true, QuorumTimeout: 8, Retransmit: 6},
		Shards:      2,
		OnlineCheck: true,
		CheckBudget: 1,
		ExactCheck:  true,
	}, wl)
	if _, err := sc.CheckLinearizable(context.Background()); err == nil {
		t.Fatal("expected a budget error from the starved online sessions")
	}
	fast := runShardedCfg(t, 1, ShardedConfig{
		Config:      Config{FastPath: true, QuorumTimeout: 8, Retransmit: 6},
		Shards:      2,
		OnlineCheck: true,
		CheckBudget: 1,
	}, wl)
	sum, err := fast.CheckLinearizable(context.Background())
	if err != nil {
		t.Fatalf("fast-path sessions must not spend the starved budget: %v", err)
	}
	if !sum.Online || sum.Traces == 0 {
		t.Fatalf("fast-path online check summarized nothing: %+v", sum)
	}
}
