// Package smr builds multi-shot State Machine Replication from the
// paper's speculative consensus: each log slot is an independent composed
// consensus instance (Quorum fast path + Paxos backup, or Paxos alone as
// the non-speculative baseline). This is the SMR use case that motivates
// the paper (§1, §6): a replicated log whose common-case latency is the
// fast path's two message delays, falling back per-slot under contention
// or faults without giving up safety.
//
// The engine is the Shard: ONE speculative replicated log with its own
// per-slot compositions, client submission queues and replica state.
// Cluster (cluster.go) deploys a single shard — the paper's §6 system
// verbatim — while ShardedCluster (sharded.go) hash-partitions keyed
// commands across N independent shards sharing one simulated network,
// which is sound for single-key traffic because linearizability is
// compositional per key (DESIGN.md, decision 10). TxnCluster (txn.go)
// layers cross-shard atomic transactions on top via two-phase commit
// over the per-shard logs; keys entangled by a transaction lose
// per-key locality, so the checker merges each txn-connected
// component's history and checks it against the adt.TxnKV product
// folder (decision 18).
//
// Clients submit commands; a submission repeatedly proposes the command
// in the lowest slot the client does not know the decision of, advancing
// past slots won by other clients, until the command lands. Phase
// protocols are reused verbatim from packages quorum and paxos through
// slot-scoped environment adapters. Logs compact behind a learned
// watermark (decision 14) and crashed processes replay from their
// durable model on restart (recovery.go).
package smr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mpcons"
	"repro/internal/msgnet"
	"repro/internal/paxos"
	"repro/internal/quorum"
	"repro/internal/trace"
)

// Command is an opaque replicated-log entry.
type Command = trace.Value

// Config parameterizes a cluster.
type Config struct {
	// FastPath enables the Quorum first phase; without it slots run
	// Paxos only (the baseline).
	FastPath bool
	// QuorumTimeout, Retransmit and PaxosRetry tune the phase protocols
	// (zero values use the protocol defaults).
	QuorumTimeout msgnet.Time
	Retransmit    msgnet.Time
	PaxosRetry    msgnet.Time
	// Recovery models crash–recovery servers. With it on, every replica
	// persists its server phase components' protocol state to a durable
	// per-slot store after each delivered message — within the same
	// atomic simulator event, i.e. write-ahead with respect to every
	// reply the component sent — and a replica revived by
	// msgnet.Network.Restart discards its live slot components and
	// rebuilds them lazily from the store. Off (the default) a restarted
	// replica resumes with its full in-memory state, modeling a process
	// whose entire state is durable; tests assert the two models produce
	// identical runs, which is what certifies the snapshots as complete.
	// Client state (log, queue, in-flight submission) is durable in both
	// models — clients are the log's learners and are assumed to persist
	// what they learn; a restarted client re-drives its in-flight
	// submission through the retry path (RetryTimeout).
	Recovery bool
	// RetryTimeout, when positive, bounds each submission attempt: a
	// client whose in-flight command has not resolved within the timeout
	// abandons the attempt's slot instance and re-proposes the same
	// command at its current frontier slot, from the first phase. It
	// must restart at phase 0 — a retry that entered the robust phase
	// directly would propose its own command into Paxos, and only values
	// derived from quorum accepts are safe there (a still-live fast path
	// can reach unanimity on another client's value and split the slot);
	// the quorum phase's own conflict/timeout switch rules degrade the
	// fresh attempt to the robust phase with a safe value, and the
	// re-broadcast doubles as a retransmission. The command itself is
	// the stable retry identity — command encodings are unique, the
	// dense-frontier discipline ensures a client passes a slot only
	// after learning its decision, and the sharded recorder's
	// duplicate-slot check verifies online that no retry ever lands
	// twice. Successive retries of one submission back off exponentially
	// (capped at RetryBackoffCap) with a small deterministic per-client
	// jitter.
	RetryTimeout msgnet.Time
	// RetryBackoffCap caps the exponential retry backoff (default
	// 8×RetryTimeout).
	RetryBackoffCap msgnet.Time
	// CompactEvery enables log compaction when positive: every time a
	// client's learned watermark (its first unknown slot) advances by
	// this many slots it broadcasts the watermark to the servers and
	// trims its own log below it; servers free per-slot replica state
	// below the minimum watermark reported by all clients (no client can
	// ever propose there again). This bounds memory by the compaction
	// window instead of the log length, at the cost of extra (tiny)
	// watermark messages. Each report also gossips the trimmed decisions
	// to the other clients (gossipEnvelope), so clients with drained
	// queues keep learning — and keep reporting — instead of pinning the
	// servers' floor at their last active slot. With compaction on, Log
	// and the retained per-client logs only cover the untrimmed suffix;
	// ShardedCluster checks log agreement online instead (sharded.go).
	CompactEvery int
}

func (c Config) protos() []mpcons.PhaseProtocol {
	px := paxos.Protocol{RetryBase: c.PaxosRetry}
	if !c.FastPath {
		return []mpcons.PhaseProtocol{px}
	}
	return []mpcons.PhaseProtocol{
		quorum.Protocol{Timeout: c.QuorumTimeout, Retransmit: c.Retransmit},
		px,
	}
}

// SubmitResult describes one landed command.
type SubmitResult struct {
	Client   msgnet.ProcID
	Cmd      Command
	Shard    int
	Slot     int
	Start    msgnet.Time
	End      msgnet.Time
	Attempts int // slots tried (including the winning one)
	Switches int // phase switches across all attempts
	Retries  int // timeout/restart re-proposals across all attempts
}

// Latency returns the submission's end-to-end latency.
func (r SubmitResult) Latency() msgnet.Time { return r.End - r.Start }

// Shard is one speculative replicated log: per-slot consensus
// compositions over a fixed set of clients and servers. Shards do not
// register themselves on the network — their owner (Cluster or
// ShardedCluster) routes messages and timers in, so several shards can
// share the same client and server processes.
type Shard struct {
	net     *msgnet.Network
	id      int
	cfg     Config
	protos  []mpcons.PhaseProtocol
	clients []msgnet.ProcID
	servers []msgnet.ProcID
	byID    map[msgnet.ProcID]*client
	reps    map[msgnet.ProcID]*replica

	keepResults bool
	results     []SubmitResult

	// Optional hooks, set before Run. onStart fires when a queued
	// submission actually begins (its invocation point); onLand when it
	// resolves; onLearn every time a client learns a slot's decision
	// (including decisions won by other clients), before any onLand for
	// that slot.
	onStart func(c msgnet.ProcID, cmd Command, at msgnet.Time)
	onLand  func(SubmitResult)
	onLearn func(c msgnet.ProcID, slot int, cmd Command)
}

// newShard builds a shard's client and replica engines without touching
// the network's node table.
func newShard(net *msgnet.Network, id int, clients, servers []msgnet.ProcID, cfg Config) *Shard {
	sh := &Shard{
		net:         net,
		id:          id,
		cfg:         cfg,
		protos:      cfg.protos(),
		clients:     clients,
		servers:     servers,
		byID:        map[msgnet.ProcID]*client{},
		reps:        map[msgnet.ProcID]*replica{},
		keepResults: true,
	}
	for i, cid := range clients {
		sh.byID[cid] = &client{sh: sh, id: cid, index: i, log: map[int]Command{}, slots: map[int]*slotInstance{}}
	}
	for _, sid := range servers {
		sh.reps[sid] = &replica{sh: sh, id: sid, slots: map[int][]mpcons.ServerPhase{}, wm: map[msgnet.ProcID]int{}}
	}
	return sh
}

// checkConsistency verifies SMR safety across the shard's clients: no two
// clients disagree on a slot's decision, every decided command was
// submitted by some client, and every command sits in at most one slot.
// With compaction enabled it only covers the untrimmed log suffixes; the
// sharded recorder performs the same checks online over every learn.
func (sh *Shard) checkConsistency() error {
	slotVal := map[int]Command{}
	submitted := map[Command]bool{}
	for _, c := range sh.byID {
		for _, cmd := range c.submittedCmds {
			submitted[cmd] = true
		}
	}
	var ids []msgnet.ProcID
	for id := range sh.byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for s, v := range sh.byID[id].log {
			if prev, ok := slotVal[s]; ok && prev != v {
				return fmt.Errorf("smr: shard %d slot %d decided both %q and %q", sh.id, s, prev, v)
			}
			slotVal[s] = v
			if !submitted[v] {
				return fmt.Errorf("smr: shard %d slot %d decided unsubmitted command %q", sh.id, s, v)
			}
		}
	}
	// Every landed command sits in exactly one slot.
	bySlot := map[Command]int{}
	for s, v := range slotVal {
		if other, dup := bySlot[v]; dup {
			return fmt.Errorf("smr: shard %d command %q decided in slots %d and %d", sh.id, v, other, s)
		}
		bySlot[v] = s
	}
	return nil
}

// slotEnvelope routes a phase message of one slot instance of one shard.
type slotEnvelope struct {
	shard   int
	slot    int
	phase   int
	payload any
}

// learnedEnvelope carries a client's learned watermark to the servers
// (compaction only): every slot below watermark is decided and known to
// the sender, which will therefore never propose in those slots again.
type learnedEnvelope struct {
	shard     int
	watermark int
}

// gossipEnvelope carries decided commands from one client to another
// (compaction only): cmds[i] is the decision of slot first+i. A client
// piggybacks the decisions it is about to trim onto every watermark
// report, so clients with no in-flight submission — who otherwise learn
// nothing, since decisions arrive only through live slot instances —
// keep advancing their own watermarks instead of pinning the servers'
// compaction floor at their last active slot.
type gossipEnvelope struct {
	shard int
	first int
	cmds  []Command
}

// client is the per-shard SMR client engine: it serializes submissions
// and drives a consensus instance per attempted slot.
type client struct {
	sh    *Shard
	id    msgnet.ProcID
	index int
	node  *msgnet.Node

	slots map[int]*slotInstance
	log   map[int]Command
	// frontier caches the first slot not in log (the dense-prefix
	// length); log only grows at or above it, so it advances monotonically
	// and firstUnknownSlot is O(1) amortized.
	frontier int
	// reported and trimmed track the compaction watermark last broadcast
	// and the prefix already trimmed from log.
	reported int
	trimmed  int

	queue         []Command
	submittedCmds []Command
	current       *submission
	// retries counts timeout/restart re-proposals across all submissions
	// (for stats).
	retries int64
}

type submission struct {
	cmd      Command
	start    msgnet.Time
	attempts int
	switches int
	retries  int
	slot     int // slot currently attempted
	// roundFloor carries the highest Paxos round any abandoned attempt of
	// this submission used, so retry attempts never reuse a ballot (see
	// mpcons.BallotTracker).
	roundFloor int64
}

type slotInstance struct {
	comps   []mpcons.ClientPhase
	envs    []*slotClientEnv
	phase   int
	pending bool
}

func (c *client) Init(n *msgnet.Node) { c.node = n }

func (c *client) enqueue(cmd Command) {
	c.queue = append(c.queue, cmd)
	c.submittedCmds = append(c.submittedCmds, cmd)
	if c.current == nil {
		c.startNext()
	}
}

func (c *client) startNext() {
	if len(c.queue) == 0 {
		c.current = nil
		if c.sh.cfg.RetryTimeout > 0 {
			c.node.CancelTimer(retryTimerName(c.sh.id))
		}
		// Going idle: flush at a quarter of the usual window so the floor
		// stays within O(CompactEvery) of the log tip without broadcasting
		// per landed command when a paced feed briefly drains the queue
		// between submissions. From here on the client learns passively —
		// other clients' watermark reports gossip the decisions it is
		// missing (handleGossip), which keeps it reporting too.
		c.reportWatermark(true)
		return
	}
	cmd := c.queue[0]
	c.queue = c.queue[1:]
	c.current = &submission{cmd: cmd, start: c.node.Now()}
	if c.sh.onStart != nil {
		c.sh.onStart(c.id, cmd, c.node.Now())
	}
	c.attempt(c.frontier)
}

// attempt proposes the current command in slot s, starting at the fast
// path (phase 0). Retries also restart at phase 0: only switch values
// derived from quorum accepts may enter the robust phase (see
// Config.RetryTimeout), so the fresh attempt relies on the quorum
// phase's own conflict/timeout rules to degrade safely.
func (c *client) attempt(s int) {
	c.current.attempts++
	c.current.slot = s
	inst := &slotInstance{pending: true}
	inst.comps = make([]mpcons.ClientPhase, len(c.sh.protos))
	inst.envs = make([]*slotClientEnv, len(c.sh.protos))
	for k, p := range c.sh.protos {
		env := &slotClientEnv{client: c, slot: s, phase: k}
		inst.envs[k] = env
		inst.comps[k] = p.NewClient(env)
		if bt, ok := inst.comps[k].(mpcons.BallotTracker); ok && c.current.roundFloor > 0 {
			bt.SetRoundFloor(c.current.roundFloor)
		}
	}
	c.slots[s] = inst
	inst.comps[0].Propose(c.current.cmd)
	c.armRetry()
}

// armRetry (re)arms the submission-progress timer with exponential
// backoff and deterministic jitter. One timer per (client, shard): it
// always covers the newest attempt of the current submission.
func (c *client) armRetry() {
	rt := c.sh.cfg.RetryTimeout
	if rt <= 0 {
		return
	}
	maxBackoff := c.sh.cfg.RetryBackoffCap
	if maxBackoff <= 0 {
		maxBackoff = 8 * rt
	}
	d := rt
	for i := 0; i < c.current.retries && d < maxBackoff; i++ {
		d *= 2
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	// Deterministic jitter in [0, rt/4]: a pure function of the client,
	// shard and retry count — never the simulator's RNG streams, so
	// arming retries cannot perturb message scheduling.
	if span := int64(rt/4) + 1; span > 1 {
		h := uint64(c.index+1)*0x9e3779b97f4a7c15 + uint64(c.retries)*0x85ebca6b + uint64(c.sh.id)
		h ^= h >> 33
		d += msgnet.Time(int64(h % uint64(span)))
	}
	c.node.SetTimer(retryTimerName(c.sh.id), d)
}

// onRetryTimer abandons the in-flight attempt and re-proposes the
// current command at the frontier. Safe by construction: the abandoned
// instance is retired (its late messages are dropped), the replacement
// never reuses a Paxos ballot (roundFloor), and the command cannot land
// twice because the client only passes a slot after learning its
// decision.
func (c *client) onRetryTimer() {
	if c.current == nil || c.sh.cfg.RetryTimeout <= 0 {
		return
	}
	c.redoAttempt()
}

// redoAttempt is the shared retry/restart path: retire the in-flight
// slot instance (carrying its Paxos round floor) and re-propose at the
// frontier. The replacement reuses the retired instance's timer names,
// so a stale in-flight timer event can fire into it despite the
// generation bookkeeping; that is benign — both phase protocols are
// timing-insensitive for safety, so a spurious timeout or retry tick
// only accelerates a switch or a new ballot. Late accept replies to the
// retired attempt reach the replacement's quorum component instead,
// which is sound: an accept carries the server's immutable
// first-received value, independent of which proposal solicited it.
func (c *client) redoAttempt() {
	c.retries++
	c.current.retries++
	if inst := c.slots[c.current.slot]; inst != nil {
		for _, comp := range inst.comps {
			if bt, ok := comp.(mpcons.BallotTracker); ok && bt.Round() > c.current.roundFloor {
				c.current.roundFloor = bt.Round()
			}
		}
		c.retire(c.current.slot, inst)
	}
	c.attempt(c.frontier)
}

// onRestart re-drives the in-flight submission after a client process
// restart: the crash cleared every timer and dropped in-flight replies,
// so the attempt would stall forever without a re-proposal. Client
// durable state (log, queue, current submission) survives by the
// recovery model (Config.Recovery).
func (c *client) onRestart() {
	if c.current != nil {
		c.redoAttempt()
	}
}

// decide resolves slot s with value v (called from a phase component).
func (c *client) decide(s, phase int, v Command) {
	inst := c.slots[s]
	if inst == nil || !inst.pending || inst.phase != phase {
		return
	}
	inst.pending = false
	c.log[s] = v
	c.retire(s, inst)
	c.advanceFrontier()
	if c.sh.onLearn != nil {
		c.sh.onLearn(c.id, s, v)
	}
	if c.current == nil || c.current.slot != s {
		return
	}
	if v == c.current.cmd {
		result := SubmitResult{
			Client:   c.id,
			Cmd:      v,
			Shard:    c.sh.id,
			Slot:     s,
			Start:    c.current.start,
			End:      c.node.Now(),
			Attempts: c.current.attempts,
			Switches: c.current.switches,
			Retries:  c.current.retries,
		}
		if c.sh.keepResults {
			c.sh.results = append(c.sh.results, result)
		}
		if c.sh.onLand != nil {
			c.sh.onLand(result)
		}
		c.startNext()
		return
	}
	// Lost the slot to another command; try the next one.
	c.attempt(c.frontier)
}

// retire drops the slot's phase components and timer bookkeeping: the
// slot is decided for this client, so its components can never resolve
// again and late messages for it are dropped. This keeps client memory
// proportional to in-flight slots rather than log length.
func (c *client) retire(s int, inst *slotInstance) {
	for _, env := range inst.envs {
		for _, name := range env.timers {
			c.node.ReleaseTimer(slotTimerName(c.sh.id, s, env.phase, name))
		}
	}
	delete(c.slots, s)
}

// advanceFrontier moves the cached first-unknown-slot cursor and, with
// compaction enabled, broadcasts the watermark and trims the local log.
func (c *client) advanceFrontier() {
	for {
		if _, ok := c.log[c.frontier]; !ok {
			break
		}
		c.frontier++
	}
	c.reportWatermark(false)
}

// reportWatermark broadcasts the client's learned watermark to the
// servers and trims the local log below it (compaction only). Periodic
// reports fire every CompactEvery slots of frontier progress; idle
// reports (on queue drain or a passively learned decision) fire at a
// quarter of that window so an idle client neither pins the compaction
// floor by a full window nor broadcasts per landed command.
//
// Each report also gossips the decisions it is about to trim to the
// other clients (gossipEnvelope): an idle client learns no slots on its
// own, so without the gossip its watermark — and therefore every
// replica's compaction floor, which is the minimum over all clients —
// would stay pinned at its last active slot for the rest of the run.
// Gossip is rate-limited for free by riding the watermark reports, and
// re-gossip cannot ping-pong: a receiver only reports (and re-gossips)
// after its own frontier advances by at least a quarter window.
func (c *client) reportWatermark(idle bool) {
	ce := c.sh.cfg.CompactEvery
	if ce <= 0 || c.frontier == c.reported {
		return
	}
	window := ce
	if idle {
		window = (ce + 3) / 4
	}
	if c.frontier-c.reported < window {
		return
	}
	c.reported = c.frontier
	for _, srv := range c.sh.servers {
		c.node.Send(srv, learnedEnvelope{shard: c.sh.id, watermark: c.frontier})
	}
	if c.frontier > c.trimmed {
		cmds := make([]Command, 0, c.frontier-c.trimmed)
		for s := c.trimmed; s < c.frontier; s++ {
			cmds = append(cmds, c.log[s])
		}
		env := gossipEnvelope{shard: c.sh.id, first: c.trimmed, cmds: cmds}
		for _, peer := range c.sh.clients {
			if peer != c.id {
				c.node.Send(peer, env)
			}
		}
	}
	for s := c.trimmed; s < c.frontier; s++ {
		delete(c.log, s)
	}
	c.trimmed = c.frontier
}

// handleGossip installs decisions learned passively from another
// client's watermark report (compaction only). Slots the client already
// knows (trimmed, or in its log) are skipped, as are slots it is
// actively deciding — a live instance resolves through the normal
// decide path, and double-learning a slot would double-count it in the
// recorder's agreement bookkeeping. The rest enter the log exactly like
// a learn: the frontier advances, the learn hook fires, and an idle
// client re-reports at the quarter window so the servers' compaction
// floor keeps tracking the log tip.
func (c *client) handleGossip(env gossipEnvelope) {
	if c.sh.cfg.CompactEvery <= 0 {
		return
	}
	learned := false
	for i, cmd := range env.cmds {
		s := env.first + i
		if s < c.frontier {
			continue
		}
		if _, known := c.log[s]; known {
			continue
		}
		if inst := c.slots[s]; inst != nil && inst.pending {
			continue
		}
		c.log[s] = cmd
		learned = true
		if c.sh.onLearn != nil {
			c.sh.onLearn(c.id, s, cmd)
		}
	}
	if !learned {
		return
	}
	c.advanceFrontier()
	if c.current == nil {
		c.reportWatermark(true)
	}
}

func (c *client) switchTo(s, phase int, sv trace.Value) {
	inst := c.slots[s]
	if inst == nil || !inst.pending || inst.phase != phase {
		return
	}
	if phase+1 >= len(inst.comps) {
		panic("smr: last phase aborted")
	}
	if c.current != nil && c.current.slot == s {
		c.current.switches++
	}
	inst.phase++
	inst.comps[inst.phase].SwitchIn(c.current.cmd, sv)
}

// handleEnvelope delivers a routed phase message.
func (c *client) handleEnvelope(from msgnet.ProcID, env slotEnvelope) {
	inst := c.slots[env.slot]
	if inst == nil || env.phase < 0 || env.phase >= len(inst.comps) {
		return
	}
	inst.comps[env.phase].OnMessage(from, env.payload)
}

// handleTimer delivers a routed, already-parsed timer.
func (c *client) handleTimer(slot, phase int, rest string) {
	inst := c.slots[slot]
	if inst == nil || phase < 0 || phase >= len(inst.comps) {
		return
	}
	inst.comps[phase].OnTimer(rest)
}

// OnMessage/OnTimer implement msgnet.Handler for the single-shard
// deployment, where the client engine is the node handler itself.
func (c *client) OnMessage(n *msgnet.Node, from msgnet.ProcID, payload any) {
	switch env := payload.(type) {
	case slotEnvelope:
		if env.shard == c.sh.id {
			c.handleEnvelope(from, env)
		}
	case gossipEnvelope:
		if env.shard == c.sh.id {
			c.handleGossip(env)
		}
	}
}

func (c *client) OnTimer(n *msgnet.Node, name string) {
	if shard, ok := splitRetryTimer(name); ok {
		if shard == c.sh.id {
			c.onRetryTimer()
		}
		return
	}
	shard, slot, phase, rest, ok := splitSlotTimer(name)
	if !ok || shard != c.sh.id {
		return
	}
	c.handleTimer(slot, phase, rest)
}

// OnRestart implements msgnet.RecoverableHandler for the single-shard
// deployment.
func (c *client) OnRestart(n *msgnet.Node) { c.onRestart() }

// slotClientEnv adapts a client to one slot and phase. It records the
// timer names the phase component uses so retire can release them.
type slotClientEnv struct {
	client *client
	slot   int
	phase  int
	timers []string
}

func (e *slotClientEnv) Self() msgnet.ProcID      { return e.client.id }
func (e *slotClientEnv) ClientIndex() int         { return e.client.index }
func (e *slotClientEnv) Clients() []msgnet.ProcID { return e.client.sh.clients }
func (e *slotClientEnv) Servers() []msgnet.ProcID { return e.client.sh.servers }
func (e *slotClientEnv) Now() msgnet.Time         { return e.client.node.Now() }
func (e *slotClientEnv) Decide(v trace.Value)     { e.client.decide(e.slot, e.phase, v) }
func (e *slotClientEnv) SwitchTo(sv trace.Value)  { e.client.switchTo(e.slot, e.phase, sv) }
func (e *slotClientEnv) Send(to msgnet.ProcID, p any) {
	e.client.node.Send(to, slotEnvelope{shard: e.client.sh.id, slot: e.slot, phase: e.phase, payload: p})
}
func (e *slotClientEnv) Broadcast(p any) {
	for _, s := range e.client.sh.servers {
		e.Send(s, p)
	}
}
func (e *slotClientEnv) SetTimer(name string, d msgnet.Time) {
	seen := false
	for _, n := range e.timers {
		if n == name {
			seen = true
			break
		}
	}
	if !seen {
		e.timers = append(e.timers, name)
	}
	e.client.node.SetTimer(slotTimerName(e.client.sh.id, e.slot, e.phase, name), d)
}
func (e *slotClientEnv) CancelTimer(name string) {
	e.client.node.CancelTimer(slotTimerName(e.client.sh.id, e.slot, e.phase, name))
}

// replica is the per-shard SMR server engine: per-slot phase server
// components, created lazily and freed below the compaction floor.
//
// Crash–recovery (Config.Recovery) splits the replica's state into a
// volatile part — the live phase components in slots — and a durable
// part: the per-slot snapshots in durable, the compaction watermarks and
// the floor. Snapshots are written after every delivered message, inside
// the same simulator event, so nothing a component said is ever ahead of
// what the store remembers; a restart wipes slots and components rebuild
// lazily from the snapshots, which makes a recovered replica
// indistinguishable from one that merely paused.
type replica struct {
	sh    *Shard
	id    msgnet.ProcID
	node  *msgnet.Node
	slots map[int][]mpcons.ServerPhase
	// durable holds per-slot phase snapshots (Recovery only), bounded by
	// the compaction window like slots.
	durable map[int][]any
	// wm holds per-client learned watermarks; slots below their minimum
	// are freed and refused (gcFloor). Compaction only.
	wm      map[msgnet.ProcID]int
	gcFloor int
}

func (r *replica) Init(n *msgnet.Node) { r.node = n }

// components returns the slot's server phases, creating them on first
// touch — restored from the durable snapshots when recovery is modeled
// and the slot has history. It returns nil for slots retired by
// compaction: no correct client proposes there anymore, so late
// (duplicated/delayed) messages are dropped rather than resurrecting
// state.
func (r *replica) components(slot int) []mpcons.ServerPhase {
	if slot < r.gcFloor {
		return nil
	}
	if comps, ok := r.slots[slot]; ok {
		return comps
	}
	comps := make([]mpcons.ServerPhase, len(r.sh.protos))
	snaps := r.durable[slot]
	for k, p := range r.sh.protos {
		comps[k] = p.NewServer(&slotServerEnv{replica: r, slot: slot, phase: k})
		if snaps != nil && snaps[k] != nil {
			comps[k].(mpcons.Durable).Restore(snaps[k])
		}
	}
	r.slots[slot] = comps
	return comps
}

// persist snapshots the slot's phase state into the durable store
// (Recovery only). Called after every delivered message or timer for the
// slot, before the event ends — write-ahead relative to any reply the
// components sent within the event, since nothing leaves the simulator
// mid-event.
func (r *replica) persist(slot int) {
	if !r.sh.cfg.Recovery {
		return
	}
	comps := r.slots[slot]
	if comps == nil {
		return
	}
	snaps := r.durable[slot]
	if snaps == nil {
		snaps = make([]any, len(comps))
		if r.durable == nil {
			r.durable = map[int][]any{}
		}
		r.durable[slot] = snaps
	}
	for k, comp := range comps {
		if d, ok := comp.(mpcons.Durable); ok {
			snaps[k] = d.Snapshot()
		}
	}
}

// recover discards the volatile phase components after a restart; they
// rebuild lazily from the durable store. Without Recovery the whole
// replica is modeled as durable and a restart keeps its state.
func (r *replica) recover() {
	if !r.sh.cfg.Recovery {
		return
	}
	r.slots = map[int][]mpcons.ServerPhase{}
}

func (r *replica) handleEnvelope(from msgnet.ProcID, env slotEnvelope) {
	comps := r.components(env.slot)
	if env.phase < 0 || env.phase >= len(comps) {
		return
	}
	comps[env.phase].OnMessage(from, env.payload)
	r.persist(env.slot)
}

// handleLearned advances the compaction floor: once every client has
// reported a watermark, slots below the minimum can never be proposed in
// again and their phase state is freed.
func (r *replica) handleLearned(from msgnet.ProcID, w int) {
	if w > r.wm[from] {
		r.wm[from] = w
	}
	if len(r.wm) < len(r.sh.clients) {
		return
	}
	min := -1
	for _, cid := range r.sh.clients {
		if v := r.wm[cid]; min < 0 || v < min {
			min = v
		}
	}
	for s := r.gcFloor; s < min; s++ {
		delete(r.slots, s)
		delete(r.durable, s)
	}
	if min > r.gcFloor {
		r.gcFloor = min
	}
}

func (r *replica) handleTimer(slot, phase int, rest string) {
	comps := r.components(slot)
	if phase < 0 || phase >= len(comps) {
		return
	}
	comps[phase].OnTimer(rest)
	r.persist(slot)
}

// OnMessage/OnTimer implement msgnet.Handler for the single-shard
// deployment.
func (r *replica) OnMessage(n *msgnet.Node, from msgnet.ProcID, payload any) {
	switch env := payload.(type) {
	case slotEnvelope:
		if env.shard == r.sh.id {
			r.handleEnvelope(from, env)
		}
	case learnedEnvelope:
		if env.shard == r.sh.id {
			r.handleLearned(from, env.watermark)
		}
	}
}

func (r *replica) OnTimer(n *msgnet.Node, name string) {
	shard, slot, phase, rest, ok := splitSlotTimer(name)
	if !ok || shard != r.sh.id {
		return
	}
	r.handleTimer(slot, phase, rest)
}

// OnRestart implements msgnet.RecoverableHandler for the single-shard
// deployment.
func (r *replica) OnRestart(n *msgnet.Node) { r.recover() }

type slotServerEnv struct {
	replica *replica
	slot    int
	phase   int
}

func (e *slotServerEnv) Self() msgnet.ProcID      { return e.replica.id }
func (e *slotServerEnv) Clients() []msgnet.ProcID { return e.replica.sh.clients }
func (e *slotServerEnv) Servers() []msgnet.ProcID { return e.replica.sh.servers }
func (e *slotServerEnv) Now() msgnet.Time         { return e.replica.node.Now() }
func (e *slotServerEnv) Send(to msgnet.ProcID, p any) {
	e.replica.node.Send(to, slotEnvelope{shard: e.replica.sh.id, slot: e.slot, phase: e.phase, payload: p})
}
func (e *slotServerEnv) SetTimer(name string, d msgnet.Time) {
	e.replica.node.SetTimer(slotTimerName(e.replica.sh.id, e.slot, e.phase, name), d)
}

// retryTimerName is the per-(client, shard) submission-progress timer.
func retryTimerName(shard int) string { return "r" + strconv.Itoa(shard) }

func splitRetryTimer(full string) (shard int, ok bool) {
	if !strings.HasPrefix(full, "r") {
		return 0, false
	}
	shard, err := strconv.Atoi(full[1:])
	return shard, err == nil
}

func slotTimerName(shard, slot, phase int, name string) string {
	return "h" + strconv.Itoa(shard) + "s" + strconv.Itoa(slot) + "p" + strconv.Itoa(phase) + ":" + name
}

func splitSlotTimer(full string) (shard, slot, phase int, name string, ok bool) {
	if !strings.HasPrefix(full, "h") {
		return 0, 0, 0, "", false
	}
	rest := full[1:]
	s := strings.IndexByte(rest, 's')
	p := strings.IndexByte(rest, 'p')
	colon := strings.IndexByte(rest, ':')
	if s < 0 || p < 0 || colon < 0 || s > p || p > colon {
		return 0, 0, 0, "", false
	}
	shard, err0 := strconv.Atoi(rest[:s])
	slot, err1 := strconv.Atoi(rest[s+1 : p])
	phase, err2 := strconv.Atoi(rest[p+1 : colon])
	if err0 != nil || err1 != nil || err2 != nil {
		return 0, 0, 0, "", false
	}
	return shard, slot, phase, rest[colon+1:], true
}
