// Package smr builds multi-shot State Machine Replication from the
// paper's speculative consensus: each log slot is an independent composed
// consensus instance (Quorum fast path + Paxos backup, or Paxos alone as
// the non-speculative baseline). This is the SMR use case that motivates
// the paper (§1, §6): a replicated log whose common-case latency is the
// fast path's two message delays, falling back per-slot under contention
// or faults without giving up safety.
//
// Clients submit commands; a submission repeatedly proposes the command
// in the lowest slot the client does not know the decision of, advancing
// past slots won by other clients, until the command lands. Phase
// protocols are reused verbatim from packages quorum and paxos through
// slot-scoped environment adapters.
package smr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/mpcons"
	"repro/internal/msgnet"
	"repro/internal/paxos"
	"repro/internal/quorum"
	"repro/internal/trace"
)

// Command is an opaque replicated-log entry.
type Command = trace.Value

// Config parameterizes a cluster.
type Config struct {
	// FastPath enables the Quorum first phase; without it slots run
	// Paxos only (the baseline).
	FastPath bool
	// QuorumTimeout, Retransmit and PaxosRetry tune the phase protocols
	// (zero values use the protocol defaults).
	QuorumTimeout msgnet.Time
	Retransmit    msgnet.Time
	PaxosRetry    msgnet.Time
}

func (c Config) protos() []mpcons.PhaseProtocol {
	px := paxos.Protocol{RetryBase: c.PaxosRetry}
	if !c.FastPath {
		return []mpcons.PhaseProtocol{px}
	}
	return []mpcons.PhaseProtocol{
		quorum.Protocol{Timeout: c.QuorumTimeout, Retransmit: c.Retransmit},
		px,
	}
}

// SubmitResult describes one landed command.
type SubmitResult struct {
	Client   msgnet.ProcID
	Cmd      Command
	Slot     int
	Start    msgnet.Time
	End      msgnet.Time
	Attempts int // slots tried (including the winning one)
	Switches int // phase switches across all attempts
}

// Latency returns the submission's end-to-end latency.
func (r SubmitResult) Latency() msgnet.Time { return r.End - r.Start }

// Cluster is an SMR deployment on a simulated network.
type Cluster struct {
	net     *msgnet.Network
	cfg     Config
	protos  []mpcons.PhaseProtocol
	clients []msgnet.ProcID
	servers []msgnet.ProcID
	byID    map[msgnet.ProcID]*client

	results []SubmitResult

	// Optional hooks, set before Run (see SetHooks). onStart fires when a
	// queued submission actually begins (its invocation point); onLand
	// when it resolves.
	onStart func(c msgnet.ProcID, cmd Command, at msgnet.Time)
	onLand  func(SubmitResult)
}

// SetHooks registers observation callbacks: start fires when a submission
// begins executing (its invocation point under the client-sequential
// discipline), land when it resolves. Either may be nil.
func (cl *Cluster) SetHooks(start func(c msgnet.ProcID, cmd Command, at msgnet.Time), land func(SubmitResult)) {
	cl.onStart = start
	cl.onLand = land
}

// Build wires an SMR cluster into net.
func Build(net *msgnet.Network, clients, servers []msgnet.ProcID, cfg Config) (*Cluster, error) {
	if len(clients) == 0 || len(servers) == 0 {
		return nil, fmt.Errorf("smr: need clients and servers")
	}
	cl := &Cluster{
		net:     net,
		cfg:     cfg,
		protos:  cfg.protos(),
		clients: clients,
		servers: servers,
		byID:    map[msgnet.ProcID]*client{},
	}
	for i, id := range clients {
		c := &client{cluster: cl, id: id, index: i, log: map[int]Command{}, slots: map[int]*slotInstance{}}
		cl.byID[id] = c
		net.AddNode(id, c)
	}
	for _, id := range servers {
		r := &replica{cluster: cl, id: id, slots: map[int][]mpcons.ServerPhase{}}
		net.AddNode(id, r)
	}
	return cl, nil
}

// SubmitAt schedules client c to submit cmd at time t. Submissions queue
// per client and execute sequentially.
func (cl *Cluster) SubmitAt(c msgnet.ProcID, cmd Command, t msgnet.Time) {
	cl.net.At(t, func() { cl.byID[c].enqueue(cmd) })
}

// Run advances the simulation.
func (cl *Cluster) Run(maxTime msgnet.Time) msgnet.Time { return cl.net.Run(maxTime) }

// Results returns landed submissions in completion order.
func (cl *Cluster) Results() []SubmitResult { return append([]SubmitResult{}, cl.results...) }

// Log returns client c's view of the replicated log as a dense prefix
// plus any holes it never participated in (holes are simply absent).
func (cl *Cluster) Log(c msgnet.ProcID) map[int]Command {
	out := map[int]Command{}
	for s, v := range cl.byID[c].log {
		out[s] = v
	}
	return out
}

// CheckConsistency verifies SMR safety across all clients: no two clients
// disagree on a slot's decision, and every decided command was submitted
// by some client.
func (cl *Cluster) CheckConsistency() error {
	slotVal := map[int]Command{}
	submitted := map[Command]bool{}
	for _, c := range cl.byID {
		for _, cmd := range c.submittedCmds {
			submitted[cmd] = true
		}
	}
	var ids []msgnet.ProcID
	for id := range cl.byID {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		for s, v := range cl.byID[id].log {
			if prev, ok := slotVal[s]; ok && prev != v {
				return fmt.Errorf("smr: slot %d decided both %q and %q", s, prev, v)
			}
			slotVal[s] = v
			if !submitted[v] {
				return fmt.Errorf("smr: slot %d decided unsubmitted command %q", s, v)
			}
		}
	}
	// Every landed command sits in exactly one slot.
	bySlot := map[Command]int{}
	for s, v := range slotVal {
		if other, dup := bySlot[v]; dup {
			return fmt.Errorf("smr: command %q decided in slots %d and %d", v, other, s)
		}
		bySlot[v] = s
	}
	return nil
}

// slotEnvelope routes a phase message of one slot instance.
type slotEnvelope struct {
	slot    int
	phase   int
	payload any
}

// client is the SMR client node: it serializes submissions and drives a
// consensus instance per attempted slot.
type client struct {
	cluster *Cluster
	id      msgnet.ProcID
	index   int
	node    *msgnet.Node

	slots map[int]*slotInstance
	log   map[int]Command

	queue         []Command
	submittedCmds []Command
	current       *submission
}

type submission struct {
	cmd      Command
	start    msgnet.Time
	attempts int
	switches int
	slot     int // slot currently attempted
}

type slotInstance struct {
	comps   []mpcons.ClientPhase
	phase   int
	pending bool
}

func (c *client) Init(n *msgnet.Node) { c.node = n }

func (c *client) enqueue(cmd Command) {
	c.queue = append(c.queue, cmd)
	c.submittedCmds = append(c.submittedCmds, cmd)
	if c.current == nil {
		c.startNext()
	}
}

func (c *client) startNext() {
	if len(c.queue) == 0 {
		c.current = nil
		return
	}
	cmd := c.queue[0]
	c.queue = c.queue[1:]
	c.current = &submission{cmd: cmd, start: c.node.Now()}
	if c.cluster.onStart != nil {
		c.cluster.onStart(c.id, cmd, c.node.Now())
	}
	c.attempt(c.firstUnknownSlot())
}

func (c *client) firstUnknownSlot() int {
	s := 0
	for {
		if _, ok := c.log[s]; !ok {
			return s
		}
		s++
	}
}

// attempt proposes the current command in slot s.
func (c *client) attempt(s int) {
	c.current.attempts++
	c.current.slot = s
	inst := &slotInstance{pending: true}
	inst.comps = make([]mpcons.ClientPhase, len(c.cluster.protos))
	for k, p := range c.cluster.protos {
		inst.comps[k] = p.NewClient(&slotClientEnv{client: c, slot: s, phase: k})
	}
	c.slots[s] = inst
	inst.comps[0].Propose(c.current.cmd)
}

// decide resolves slot s with value v (called from a phase component).
func (c *client) decide(s, phase int, v Command) {
	inst := c.slots[s]
	if inst == nil || !inst.pending || inst.phase != phase {
		return
	}
	inst.pending = false
	c.log[s] = v
	if c.current == nil || c.current.slot != s {
		return
	}
	if v == c.current.cmd {
		result := SubmitResult{
			Client:   c.id,
			Cmd:      v,
			Slot:     s,
			Start:    c.current.start,
			End:      c.node.Now(),
			Attempts: c.current.attempts,
			Switches: c.current.switches,
		}
		c.cluster.results = append(c.cluster.results, result)
		if c.cluster.onLand != nil {
			c.cluster.onLand(result)
		}
		c.startNext()
		return
	}
	// Lost the slot to another command; try the next one.
	c.attempt(c.firstUnknownSlot())
}

func (c *client) switchTo(s, phase int, sv trace.Value) {
	inst := c.slots[s]
	if inst == nil || !inst.pending || inst.phase != phase {
		return
	}
	if phase+1 >= len(inst.comps) {
		panic("smr: last phase aborted")
	}
	if c.current != nil && c.current.slot == s {
		c.current.switches++
	}
	inst.phase++
	inst.comps[inst.phase].SwitchIn(c.current.cmd, sv)
}

func (c *client) OnMessage(n *msgnet.Node, from msgnet.ProcID, payload any) {
	env, ok := payload.(slotEnvelope)
	if !ok {
		return
	}
	inst := c.slots[env.slot]
	if inst == nil || env.phase < 0 || env.phase >= len(inst.comps) {
		return
	}
	inst.comps[env.phase].OnMessage(from, env.payload)
}

func (c *client) OnTimer(n *msgnet.Node, name string) {
	slot, phase, rest, ok := splitSlotTimer(name)
	if !ok {
		return
	}
	inst := c.slots[slot]
	if inst == nil || phase < 0 || phase >= len(inst.comps) {
		return
	}
	inst.comps[phase].OnTimer(rest)
}

// slotClientEnv adapts a client to one slot and phase.
type slotClientEnv struct {
	client *client
	slot   int
	phase  int
}

func (e *slotClientEnv) Self() msgnet.ProcID      { return e.client.id }
func (e *slotClientEnv) ClientIndex() int         { return e.client.index }
func (e *slotClientEnv) Clients() []msgnet.ProcID { return e.client.cluster.clients }
func (e *slotClientEnv) Servers() []msgnet.ProcID { return e.client.cluster.servers }
func (e *slotClientEnv) Now() msgnet.Time         { return e.client.node.Now() }
func (e *slotClientEnv) Decide(v trace.Value)     { e.client.decide(e.slot, e.phase, v) }
func (e *slotClientEnv) SwitchTo(sv trace.Value)  { e.client.switchTo(e.slot, e.phase, sv) }
func (e *slotClientEnv) Send(to msgnet.ProcID, p any) {
	e.client.node.Send(to, slotEnvelope{slot: e.slot, phase: e.phase, payload: p})
}
func (e *slotClientEnv) Broadcast(p any) {
	for _, s := range e.client.cluster.servers {
		e.Send(s, p)
	}
}
func (e *slotClientEnv) SetTimer(name string, d msgnet.Time) {
	e.client.node.SetTimer(slotTimerName(e.slot, e.phase, name), d)
}
func (e *slotClientEnv) CancelTimer(name string) {
	e.client.node.CancelTimer(slotTimerName(e.slot, e.phase, name))
}

// replica is the SMR server node: per-slot phase server components,
// created lazily.
type replica struct {
	cluster *Cluster
	id      msgnet.ProcID
	node    *msgnet.Node
	slots   map[int][]mpcons.ServerPhase
}

func (r *replica) Init(n *msgnet.Node) { r.node = n }

func (r *replica) components(slot int) []mpcons.ServerPhase {
	if comps, ok := r.slots[slot]; ok {
		return comps
	}
	comps := make([]mpcons.ServerPhase, len(r.cluster.protos))
	for k, p := range r.cluster.protos {
		comps[k] = p.NewServer(&slotServerEnv{replica: r, slot: slot, phase: k})
	}
	r.slots[slot] = comps
	return comps
}

func (r *replica) OnMessage(n *msgnet.Node, from msgnet.ProcID, payload any) {
	env, ok := payload.(slotEnvelope)
	if !ok {
		return
	}
	comps := r.components(env.slot)
	if env.phase < 0 || env.phase >= len(comps) {
		return
	}
	comps[env.phase].OnMessage(from, env.payload)
}

func (r *replica) OnTimer(n *msgnet.Node, name string) {
	slot, phase, rest, ok := splitSlotTimer(name)
	if !ok {
		return
	}
	comps := r.components(slot)
	if phase < 0 || phase >= len(comps) {
		return
	}
	comps[phase].OnTimer(rest)
}

type slotServerEnv struct {
	replica *replica
	slot    int
	phase   int
}

func (e *slotServerEnv) Self() msgnet.ProcID      { return e.replica.id }
func (e *slotServerEnv) Clients() []msgnet.ProcID { return e.replica.cluster.clients }
func (e *slotServerEnv) Servers() []msgnet.ProcID { return e.replica.cluster.servers }
func (e *slotServerEnv) Now() msgnet.Time         { return e.replica.node.Now() }
func (e *slotServerEnv) Send(to msgnet.ProcID, p any) {
	e.replica.node.Send(to, slotEnvelope{slot: e.slot, phase: e.phase, payload: p})
}
func (e *slotServerEnv) SetTimer(name string, d msgnet.Time) {
	e.replica.node.SetTimer(slotTimerName(e.slot, e.phase, name), d)
}

func slotTimerName(slot, phase int, name string) string {
	return "s" + strconv.Itoa(slot) + "p" + strconv.Itoa(phase) + ":" + name
}

func splitSlotTimer(full string) (slot, phase int, name string, ok bool) {
	if !strings.HasPrefix(full, "s") {
		return 0, 0, "", false
	}
	rest := full[1:]
	p := strings.IndexByte(rest, 'p')
	colon := strings.IndexByte(rest, ':')
	if p < 0 || colon < 0 || p > colon {
		return 0, 0, "", false
	}
	slot, err1 := strconv.Atoi(rest[:p])
	phase, err2 := strconv.Atoi(rest[p+1 : colon])
	if err1 != nil || err2 != nil {
		return 0, 0, "", false
	}
	return slot, phase, rest[colon+1:], true
}
