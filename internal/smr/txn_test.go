package smr

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/adt"
	"repro/internal/faults"
	"repro/internal/msgnet"
	"repro/internal/trace"
	"repro/internal/workload"
)

// txnCfg is the shared sharded configuration of the transaction tests:
// fast path on, retries armed, durable recovery modeled.
func txnCfg(shards int) ShardedConfig {
	return ShardedConfig{
		Config: Config{
			FastPath:      true,
			QuorumTimeout: 8,
			Retransmit:    6,
			RetryTimeout:  60,
			Recovery:      true,
		},
		Shards: shards,
	}
}

// buildTxnCluster wires a transaction-layer cluster over a fresh network.
func buildTxnCluster(t *testing.T, seed int64, nClients int, scfg ShardedConfig, tcfg TxnConfig) (*TxnCluster, *msgnet.Network, []msgnet.ProcID) {
	t.Helper()
	w := msgnet.New(msgnet.Config{Seed: seed, MinDelay: 1, MaxDelay: 2})
	clients := ids("c", nClients)
	tc, err := BuildTxn(w, clients, ids("s", 3), scfg, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	return tc, w, clients
}

// distinctShardKeys returns one key per shard, in shard order, so tests
// can build transactions that provably span shards.
func distinctShardKeys(t *testing.T, shards int) []string {
	t.Helper()
	keys := make([]string, shards)
	found := 0
	for i := 0; found < shards && i < 10000; i++ {
		k := fmt.Sprintf("k%d", i)
		if s := ShardOf(k, shards); keys[s] == "" {
			keys[s], found = k, found+1
		}
	}
	if found < shards {
		t.Fatalf("could not cover %d shards", shards)
	}
	return keys
}

// assertTxnSafe asserts the transaction-layer safety properties: no
// pending transactions or unresolved shards, consistent logs, and every
// history — per-key register and merged component alike — linearizable.
// It returns the check summary for further assertions.
func assertTxnSafe(t *testing.T, name string, tc *TxnCluster) TxnCheck {
	t.Helper()
	if n := tc.UnresolvedShards(); n != 0 {
		t.Fatalf("%s: %d unresolved (txn, shard) pairs", name, n)
	}
	if p := tc.PendingTxns(); len(p) != 0 {
		t.Fatalf("%s: pending transactions %v", name, p)
	}
	if err := tc.CheckConsistency(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	sum, err := tc.CheckTxnLinearizable(context.Background())
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return sum
}

// A cross-shard MultiPut commits atomically and a later MultiGet reads
// both writes back through its own committed transaction; a single-key
// read on an entangled key flows through the merged component history.
func TestTxnCommitAndReadBack(t *testing.T) {
	tc, _, clients := buildTxnCluster(t, 1, 3, txnCfg(2), TxnConfig{RecoveryTimeout: 500})
	keys := distinctShardKeys(t, 2)
	tc.SubmitTxnAt(clients[0], Txn{ID: "x1", Ops: []TxnOp{
		{Kind: TxnWrite, Key: keys[0], Value: "a1"},
		{Kind: TxnWrite, Key: keys[1], Value: "b1"},
	}}, 0)
	tc.SubmitTxnAt(clients[1], Txn{ID: "x2", Ops: []TxnOp{
		{Kind: TxnRead, Key: keys[0]},
		{Kind: TxnRead, Key: keys[1]},
	}}, 200)
	tc.SubmitAt(clients[2], GetCmd(keys[0], "g1"), 400)
	tc.Run(100_000_000)

	st := tc.TxnStats()
	if st.Committed != 2 || st.Resolved() != 2 {
		t.Fatalf("stats %+v: want 2 commits", st)
	}
	committed, reads, ok := tc.TxnOutcome("x2")
	if !ok || !committed {
		t.Fatalf("x2 outcome: committed=%v ok=%v", committed, ok)
	}
	if want := []trace.Value{"a1", "b1"}; !reflect.DeepEqual(reads, want) {
		t.Fatalf("x2 reads %q, want %q", reads, want)
	}
	sum := assertTxnSafe(t, "commit", tc)
	if sum.Components != 1 || sum.ComponentOps != 3 || sum.FastPathKeys != 0 {
		t.Fatalf("summary %+v: want one component with 3 ops", sum)
	}
}

// A CAS whose condition fails aborts the whole transaction and leaves no
// per-key effect: later reads — and the checker's TxnKV no-op semantics
// — observe the pre-transaction values. A CAS with the right expectation
// commits.
func TestTxnCASAbortLeavesNoEffect(t *testing.T) {
	tc, _, clients := buildTxnCluster(t, 3, 3, txnCfg(2), TxnConfig{RecoveryTimeout: 500})
	keys := distinctShardKeys(t, 2)
	tc.SubmitAt(clients[0], SetCmd(keys[0], "a0"), 0)
	tc.SubmitAt(clients[0], SetCmd(keys[1], "b0"), 0)
	tc.SubmitTxnAt(clients[1], Txn{ID: "x1", Ops: []TxnOp{
		{Kind: TxnCAS, Key: keys[0], Value: "a1", Expect: "stale"},
		{Kind: TxnWrite, Key: keys[1], Value: "b1"},
	}}, 200)
	tc.SubmitTxnAt(clients[2], Txn{ID: "x2", Ops: []TxnOp{
		{Kind: TxnRead, Key: keys[0]},
		{Kind: TxnRead, Key: keys[1]},
	}}, 400)
	tc.SubmitTxnAt(clients[1], Txn{ID: "x3", Ops: []TxnOp{
		{Kind: TxnCAS, Key: keys[0], Value: "a1", Expect: "a0"},
		{Kind: TxnWrite, Key: keys[1], Value: "b1"},
	}}, 600)
	tc.SubmitTxnAt(clients[2], Txn{ID: "x4", Ops: []TxnOp{
		{Kind: TxnRead, Key: keys[0]},
		{Kind: TxnRead, Key: keys[1]},
	}}, 800)
	tc.Run(100_000_000)

	st := tc.TxnStats()
	if st.AbortedCondition != 1 || st.Committed != 3 {
		t.Fatalf("stats %+v: want 1 condition abort, 3 commits", st)
	}
	if committed, _, ok := tc.TxnOutcome("x1"); !ok || committed {
		t.Fatalf("x1 outcome: committed=%v ok=%v, want abort", committed, ok)
	}
	// The aborted x1 left no trace: x2 still reads the seeded values.
	if _, reads, _ := tc.TxnOutcome("x2"); !reflect.DeepEqual(reads, []trace.Value{"a0", "b0"}) {
		t.Fatalf("x2 reads %q after aborted CAS, want pre-txn values", reads)
	}
	// The committed x3 is fully visible.
	if _, reads, _ := tc.TxnOutcome("x4"); !reflect.DeepEqual(reads, []trace.Value{"a1", "b1"}) {
		t.Fatalf("x4 reads %q after committed CAS, want new values", reads)
	}
	assertTxnSafe(t, "cas", tc)
}

// Two overlapping transactions on the same keys resolve — commit or
// deadlock-avoidance conflict abort, never a wedge — and the merged
// history stays linearizable.
func TestTxnConflictingTxnsResolve(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		tc, _, clients := buildTxnCluster(t, seed, 3, txnCfg(2), TxnConfig{RecoveryTimeout: 500})
		keys := distinctShardKeys(t, 2)
		tc.SubmitTxnAt(clients[0], Txn{ID: "x1", Ops: []TxnOp{
			{Kind: TxnWrite, Key: keys[0], Value: "a1"},
			{Kind: TxnWrite, Key: keys[1], Value: "b1"},
		}}, 0)
		tc.SubmitTxnAt(clients[1], Txn{ID: "x2", Ops: []TxnOp{
			{Kind: TxnWrite, Key: keys[1], Value: "b2"},
			{Kind: TxnWrite, Key: keys[0], Value: "a2"},
		}}, 0)
		tc.Run(100_000_000)
		st := tc.TxnStats()
		if st.Resolved() != 2 {
			t.Fatalf("seed %d: stats %+v: want both resolved", seed, st)
		}
		if st.Committed == 0 {
			t.Fatalf("seed %d: stats %+v: want at least one commit", seed, st)
		}
		assertTxnSafe(t, fmt.Sprintf("seed=%d", seed), tc)
	}
}

// A coordinator that crashes permanently before its prepares leave the
// node must not leave the transaction undecided: the recovery watchdog
// aborts it and drives abort markers through a surviving client, and
// later single-key traffic on the transaction's keys proceeds normally.
// (The shards see outcome markers for a transaction whose prepares never
// arrive — the marker-before-prepare path.)
func TestTxnCoordinatorCrashRecoveryAbort(t *testing.T) {
	tc, w, clients := buildTxnCluster(t, 2, 3, txnCfg(2), TxnConfig{RecoveryTimeout: 100})
	if err := (faults.Plan{Crashes: []faults.Crash{{Proc: clients[0], At: 5}}}).Apply(w); err != nil {
		t.Fatal(err)
	}
	keys := distinctShardKeys(t, 2)
	tc.SubmitTxnAt(clients[0], Txn{ID: "x1", Ops: []TxnOp{
		{Kind: TxnWrite, Key: keys[0], Value: "a1"},
		{Kind: TxnWrite, Key: keys[1], Value: "b1"},
	}}, 10)
	tc.SubmitAt(clients[1], SetCmd(keys[0], "u1"), 150)
	tc.SubmitAt(clients[2], GetCmd(keys[0], "g1"), 200)
	tc.SubmitAt(clients[1], SetCmd(keys[1], "u2"), 150)
	tc.SubmitAt(clients[2], GetCmd(keys[1], "g2"), 200)
	tc.Run(100_000_000)

	st := tc.TxnStats()
	if st.AbortedRecovery != 1 || st.Resolved() != 1 {
		t.Fatalf("stats %+v: want 1 recovery abort", st)
	}
	// The four singles and the two abort markers landed; the prepares
	// died with the coordinator.
	if got := tc.Stats().Landed; got != 6 {
		t.Fatalf("landed %d, want 6", got)
	}
	sum := assertTxnSafe(t, "recovery", tc)
	if sum.Ops != 5 { // 4 singles + the aborted composite op
		t.Fatalf("checked %d ops, want 5", sum.Ops)
	}
}

// Sweeping the coordinator's permanent-crash instant across the whole
// prepare/decide window: whatever the cut point — before the prepares,
// mid-prepare with locks already taken on one shard, or after the
// decision — the transaction resolves, no shard wedges (every background
// single on the transaction's keys still responds), and the merged
// history is linearizable. The sweep must exercise both outcomes,
// including at least one abort that had to release held locks.
func TestTxnCoordinatorCrashSweep(t *testing.T) {
	var committed, recovered, lockedAbort int
	for crashAt := msgnet.Time(1); crashAt <= 50; crashAt++ {
		tc, w, clients := buildTxnCluster(t, 7, 3, txnCfg(2), TxnConfig{RecoveryTimeout: 60})
		if err := (faults.Plan{Crashes: []faults.Crash{{Proc: clients[0], At: crashAt}}}).Apply(w); err != nil {
			t.Fatal(err)
		}
		keys := distinctShardKeys(t, 2)
		tc.SubmitTxnAt(clients[0], Txn{ID: "x1", Ops: []TxnOp{
			{Kind: TxnWrite, Key: keys[0], Value: "a1"},
			{Kind: TxnWrite, Key: keys[1], Value: "b1"},
		}}, 10)
		for j := msgnet.Time(0); j < 8; j++ {
			tc.SubmitAt(clients[1], SetCmd(keys[0], fmt.Sprintf("u%d", j)), 5*j)
			tc.SubmitAt(clients[2], GetCmd(keys[1], fmt.Sprintf("g%d", j)), 5*j+2)
		}
		tc.Run(100_000_000)

		name := fmt.Sprintf("crashAt=%d", crashAt)
		st := tc.TxnStats()
		if st.Resolved() != 1 {
			t.Fatalf("%s: stats %+v: unresolved transaction", name, st)
		}
		sum := assertTxnSafe(t, name, tc)
		if sum.Ops != 17 { // 16 singles + 1 composite: nothing wedged
			t.Fatalf("%s: checked %d ops, want 17", name, sum.Ops)
		}
		xs := tc.txns["x1"]
		switch {
		case st.Committed == 1:
			committed++
		case st.AbortedRecovery == 1:
			recovered++
			if len(xs.locked) > 0 {
				lockedAbort++
			}
		}
	}
	if committed == 0 || recovered == 0 || lockedAbort == 0 {
		t.Fatalf("sweep coverage too thin: committed=%d recovered=%d lockedAbort=%d",
			committed, recovered, lockedAbort)
	}
}

// A coordinator that crashes mid-transaction but restarts re-drives its
// queued prepares; if the watchdog aborted the transaction during the
// downtime, the late prepares replay against the decided abort (no vote,
// no lock) and every submission still lands exactly once.
func TestTxnCoordinatorRestart(t *testing.T) {
	tc, w, clients := buildTxnCluster(t, 3, 3, txnCfg(2), TxnConfig{RecoveryTimeout: 60})
	if err := (faults.Plan{Crashes: []faults.Crash{{Proc: clients[0], At: 12, RestartAt: 200}}}).Apply(w); err != nil {
		t.Fatal(err)
	}
	keys := distinctShardKeys(t, 2)
	tc.SubmitTxnAt(clients[0], Txn{ID: "x1", Ops: []TxnOp{
		{Kind: TxnWrite, Key: keys[0], Value: "a1"},
		{Kind: TxnWrite, Key: keys[1], Value: "b1"},
	}}, 10)
	tc.SubmitAt(clients[1], GetCmd(keys[0], "g1"), 300)
	tc.SubmitAt(clients[2], GetCmd(keys[1], "g2"), 300)
	tc.Run(100_000_000)

	st := tc.TxnStats()
	if st.Resolved() != 1 {
		t.Fatalf("stats %+v: unresolved transaction", st)
	}
	ss := tc.Stats()
	if ss.Landed != ss.Submitted {
		t.Fatalf("landed %d of %d submitted", ss.Landed, ss.Submitted)
	}
	assertTxnSafe(t, "restart", tc)
}

// With no transactions submitted, the transaction layer is pure
// bookkeeping: a TxnCluster run produces the exact same effective
// schedule and stats as a plain ShardedCluster under the same seed and
// workload.
func TestTxnScheduleDigestParityNoTxns(t *testing.T) {
	wl := workload.KeyedOpts{Clients: 3, Ops: 240, Keys: 16, ReadFrac: 0.4}
	run := func(txnLayer bool) (*ShardedCluster, *msgnet.Network) {
		w := msgnet.New(msgnet.Config{Seed: 5, MinDelay: 1, MaxDelay: 2})
		clients := ids("c", wl.Clients)
		var sc *ShardedCluster
		if txnLayer {
			tc, err := BuildTxn(w, clients, ids("s", 3), txnCfg(2), TxnConfig{RecoveryTimeout: 100})
			if err != nil {
				t.Fatal(err)
			}
			sc = tc.ShardedCluster
		} else {
			var err error
			sc, err = BuildSharded(w, clients, ids("s", 3), txnCfg(2))
			if err != nil {
				t.Fatal(err)
			}
		}
		ops := workload.Keyed(rand.New(rand.NewSource(5)), wl)
		perClient := make([][]Command, wl.Clients)
		for _, op := range ops {
			perClient[op.Client] = append(perClient[op.Client], cmdOf(op))
		}
		for i, c := range clients {
			sc.SubmitPaced(c, perClient[i], 0, 8)
		}
		sc.Run(100_000_000)
		return sc, w
	}
	plain, wp := run(false)
	layered, wl2 := run(true)
	if d0, d1 := wp.ScheduleDigest(), wl2.ScheduleDigest(); d0 != d1 {
		t.Fatalf("schedule digests differ: plain %x, txn layer %x", d0, d1)
	}
	if s0, s1 := plain.Stats(), layered.Stats(); !reflect.DeepEqual(s0, s1) {
		t.Fatalf("stats differ:\nplain %+v\ntxn   %+v", s0, s1)
	}
}

// txnOf converts a generated workload transaction to the SMR layer's
// form; the workload encodes "expect unset" as the empty string.
func txnOf(s *workload.TxnSpec) *Txn {
	ops := make([]TxnOp, len(s.Ops))
	for i, o := range s.Ops {
		switch {
		case o.Read:
			ops[i] = TxnOp{Kind: TxnRead, Key: o.Key}
		case o.CAS:
			exp := o.Expect
			if exp == "" {
				exp = string(adt.Bottom)
			}
			ops[i] = TxnOp{Kind: TxnCAS, Key: o.Key, Value: o.Value, Expect: exp}
		default:
			ops[i] = TxnOp{Kind: TxnWrite, Key: o.Key, Value: o.Value}
		}
	}
	return &Txn{ID: s.ID, Ops: ops}
}

// mixedItems splits a generated mixed workload into per-client feeds.
func mixedItems(ops []workload.MixedOp, clients int) [][]MixedItem {
	per := make([][]MixedItem, clients)
	for _, op := range ops {
		it := MixedItem{}
		if op.Txn != nil {
			it.Txn = txnOf(op.Txn)
		} else {
			it.Cmd = cmdOf(op.KeyedOp)
		}
		per[op.Client] = append(per[op.Client], it)
	}
	return per
}

// runMixed drives a zipf-contended mixed workload through a transaction
// cluster, with an optional fault plan.
func runMixed(t *testing.T, seed int64, scfg ShardedConfig, tcfg TxnConfig, wl workload.MixedOpts,
	pace msgnet.Time, plan func(clients, servers []msgnet.ProcID) faults.Plan) *TxnCluster {
	t.Helper()
	w := msgnet.New(msgnet.Config{Seed: seed, MinDelay: 1, MaxDelay: 2})
	clients := ids("c", wl.Clients)
	servers := ids("s", 3)
	tc, err := BuildTxn(w, clients, servers, scfg, tcfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan != nil {
		if err := plan(clients, servers).Apply(w); err != nil {
			t.Fatal(err)
		}
	}
	per := mixedItems(workload.Mixed(rand.New(rand.NewSource(seed)), wl), wl.Clients)
	for i, c := range clients {
		tc.SubmitMixedPaced(c, per[i], 0, pace)
	}
	tc.Run(100_000_000)
	return tc
}

// Property: a contended zipf mixed workload — 25% multi-key transactions
// across 4 shards — lands every submission, resolves every transaction,
// and every component's merged history and every fast-path key's
// register history is linearizable, with the post-hoc and streaming
// online checkers agreeing.
func TestTxnMixedPropertyLinearizable(t *testing.T) {
	wl := workload.MixedOpts{
		KeyedOpts: workload.KeyedOpts{Clients: 4, Ops: 1200, Keys: 32, ReadFrac: 0.4, ZipfS: 1.3},
		TxnFrac:   0.25, TxnKeys: 24, Groups: 8,
	}
	for _, online := range []bool{false, true} {
		for seed := int64(1); seed <= 2; seed++ {
			scfg := txnCfg(4)
			scfg.OnlineCheck = online
			tc := runMixed(t, seed, scfg, TxnConfig{RecoveryTimeout: 3000}, wl, 3, nil)
			name := fmt.Sprintf("online=%v seed=%d", online, seed)
			st := tc.TxnStats()
			if st.Started == 0 || st.Resolved() != st.Started {
				t.Fatalf("%s: stats %+v: want all started transactions resolved", name, st)
			}
			if st.Committed == 0 {
				t.Fatalf("%s: stats %+v: want some commits", name, st)
			}
			ss := tc.Stats()
			if ss.Landed != ss.Submitted {
				t.Fatalf("%s: landed %d of %d submitted", name, ss.Landed, ss.Submitted)
			}
			sum := assertTxnSafe(t, name, tc)
			if sum.Ops != int64(wl.Ops) {
				t.Fatalf("%s: checked %d ops, want %d", name, sum.Ops, wl.Ops)
			}
			if sum.Components == 0 || sum.FastPathKeys == 0 {
				t.Fatalf("%s: summary %+v: want both merged components and fast-path keys", name, sum)
			}
		}
	}
}

// Property: the same mixed workload under rolling coordinator
// crash-restarts stays safe — restarts re-drive queued submissions, the
// watchdog resolves transactions orphaned by a mid-prepare crash, and
// everything stays linearizable.
func TestTxnMixedCoordinatorCrashes(t *testing.T) {
	wl := workload.MixedOpts{
		KeyedOpts: workload.KeyedOpts{Clients: 4, Ops: 800, Keys: 24, ReadFrac: 0.4, ZipfS: 1.3},
		TxnFrac:   0.25, TxnKeys: 18, Groups: 6,
	}
	plan := func(clients, servers []msgnet.ProcID) faults.Plan {
		return faults.Plan{Crashes: faults.RollingRestart(clients, 60, 90, 40)}
	}
	for seed := int64(1); seed <= 2; seed++ {
		tc := runMixed(t, seed, txnCfg(4), TxnConfig{RecoveryTimeout: 200}, wl, 3, plan)
		name := fmt.Sprintf("seed=%d", seed)
		st := tc.TxnStats()
		if st.Started == 0 || st.Resolved() != st.Started {
			t.Fatalf("%s: stats %+v: want all started transactions resolved", name, st)
		}
		ss := tc.Stats()
		if ss.Landed != ss.Submitted {
			t.Fatalf("%s: landed %d of %d submitted", name, ss.Landed, ss.Submitted)
		}
		sum := assertTxnSafe(t, name, tc)
		if sum.Ops != int64(wl.Ops) {
			t.Fatalf("%s: checked %d ops, want %d", name, sum.Ops, wl.Ops)
		}
	}
}
