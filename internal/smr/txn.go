package smr

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/lin"
	"repro/internal/msgnet"
	"repro/internal/trace"
)

// This file layers cross-shard atomic transactions on the sharded SMR
// cluster (DESIGN.md, decision 18): a coordinator client reserves one log
// slot per participant shard with a prepare command ("txp"), each shard
// votes at the prepare's replay point (abort on lock conflict or a failed
// CAS condition — no blocking, so no distributed deadlock), and the
// outcome is fixed by a single deterministic decision event (all votes
// collected ⇒ commit iff all yes; a recovery watchdog ⇒ abort). Outcome
// markers ("txo") then land in every participant log so each shard
// applies or discards the transaction's writes at a definite point in its
// total order — the logs stay totally ordered, compaction and
// crash–recovery (PR 6/PR 9) are untouched, and an aborted transaction
// leaves no per-key effect.
//
// Checking: a transaction entangles its keys, so Herlihy–Wing locality no
// longer decomposes correctness per key. TxnCluster partitions keys into
// txn-connected components (union-find over every submitted transaction's
// key set), merges each component's history — single-key operations and
// composite transaction operations — into one trace over the adt.TxnKV
// product folder, and checks it with the exact frontier engine. Keys no
// transaction ever touches stay on the decision-15 register fast path.

// txnCmdSep separates the fields of one encoded transactional operation
// inside a command, and txnOpSep separates operations; both are distinct
// from cmdSep so a prepare command still splits into a fixed number of
// top-level fields.
const (
	txnCmdSep = "\x1d"
	txnOpSep  = "\x1e"
)

// TxnOpKind enumerates the operation kinds of a transaction.
type TxnOpKind int

const (
	// TxnRead reads a key (MultiGet component).
	TxnRead TxnOpKind = iota
	// TxnWrite writes a key unconditionally (MultiPut component).
	TxnWrite
	// TxnCAS writes a key if it currently holds Expect (adt.Bottom for
	// "unset") — the read-modify-write component. A failed condition
	// aborts the whole transaction.
	TxnCAS
)

// TxnOp is one operation of a transaction.
type TxnOp struct {
	Kind   TxnOpKind
	Key    string
	Value  string // written value (TxnWrite, TxnCAS)
	Expect string // expected current value (TxnCAS; adt.Bottom for unset)
}

// Txn is a multi-key atomic command: all operations take effect together
// or none do. IDs must be unique across a run (they tag log entries).
// Keys must be distinct across the operations of one transaction.
type Txn struct {
	ID  string
	Ops []TxnOp
}

// TxnConfig parameterizes the transaction layer.
type TxnConfig struct {
	// RecoveryTimeout is the virtual-time budget per transaction: if the
	// transaction is still undecided when it expires (e.g. its coordinator
	// crashed mid-prepare), a deterministic watchdog aborts it and drives
	// abort markers through a surviving client so no shard stays wedged
	// behind the transaction's locks. Zero disables the watchdog.
	RecoveryTimeout msgnet.Time
}

// TxnStats aggregates transaction outcomes.
type TxnStats struct {
	Started   int64
	Committed int64
	// AbortedConflict counts aborts from a prepare hitting a key locked
	// by another in-flight transaction (the deadlock-avoidance vote).
	AbortedConflict int64
	// AbortedCondition counts aborts from a failed TxnCAS condition.
	AbortedCondition int64
	// AbortedRecovery counts aborts by the recovery watchdog.
	AbortedRecovery int64
	// PrepsLanded and OutcomesLanded count the transaction-protocol log
	// entries replayed (each also counts in ShardedStats.Landed).
	PrepsLanded    int64
	OutcomesLanded int64
}

// Resolved returns the number of transactions that reached a decision.
func (s TxnStats) Resolved() int64 {
	return s.Committed + s.AbortedConflict + s.AbortedCondition + s.AbortedRecovery
}

// CommitRate returns the fraction of resolved transactions that
// committed.
func (s TxnStats) CommitRate() float64 {
	if r := s.Resolved(); r > 0 {
		return float64(s.Committed) / float64(r)
	}
	return 0
}

// abort reasons, for stats classification.
const (
	abortConflict = iota
	abortCondition
	abortRecovery
)

// txnState is the cluster-side record of one transaction.
type txnState struct {
	spec     Txn
	coord    msgnet.ProcID
	shards   []int         // participant shards, ascending
	shardOps map[int][]int // shard -> indices into spec.Ops
	votes    map[int]bool
	noReason int // first no-vote's classification
	// locked marks shards that voted yes and hold their keys' locks
	// until their outcome marker replays.
	locked     map[int]bool
	resolvedOn map[int]bool // shards whose outcome marker has replayed
	reads      map[int]trace.Value
	decided    bool
	committed  bool
	redrives   int
}

// component accumulates one txn-connected component's merged history:
// an online checker session over adt.TxnKV, or the raw trace post hoc.
type component struct {
	root   string
	sess   *lin.Session
	trace  trace.Trace
	ops    int64 // operations fed (invocation/response pairs)
	shards map[int]bool
}

// TxnCluster extends a ShardedCluster with cross-shard atomic
// transactions and txn-connected-component checking. Single-key traffic
// submits through the embedded ShardedCluster exactly as before; keys
// untouched by any transaction keep their per-key register fast-path
// sessions.
type TxnCluster struct {
	*ShardedCluster
	tcfg   TxnConfig
	txns   map[string]*txnState
	tstats TxnStats

	// Union-find over keys: two keys are connected when one transaction
	// touches both. Built entirely at submission time (all submissions
	// are scheduled before Run), so membership is stable during the run.
	parent map[string]string

	comps    map[string]*component
	feedWall time.Duration
}

// BuildTxn wires a sharded SMR cluster with a transaction layer into net.
func BuildTxn(net *msgnet.Network, clients, servers []msgnet.ProcID, cfg ShardedConfig, tcfg TxnConfig) (*TxnCluster, error) {
	sc, err := BuildSharded(net, clients, servers, cfg)
	if err != nil {
		return nil, err
	}
	tc := &TxnCluster{
		ShardedCluster: sc,
		tcfg:           tcfg,
		txns:           map[string]*txnState{},
		parent:         map[string]string{},
		comps:          map[string]*component{},
	}
	sc.txn = tc
	return tc, nil
}

// find returns the component root of key, or "" when no transaction
// touches it (path-compressing).
func (tc *TxnCluster) find(key string) string {
	p, ok := tc.parent[key]
	if !ok {
		return ""
	}
	if p == key {
		return key
	}
	root := tc.find(p)
	tc.parent[key] = root
	return root
}

// union connects two keys' components.
func (tc *TxnCluster) union(a, b string) {
	ra, rb := tc.findOrAdd(a), tc.findOrAdd(b)
	if ra != rb {
		tc.parent[rb] = ra
	}
}

func (tc *TxnCluster) findOrAdd(key string) string {
	if _, ok := tc.parent[key]; !ok {
		tc.parent[key] = key
		return key
	}
	return tc.find(key)
}

// checkTxnField panics on a field that would corrupt the command or
// input grammars (a caller bug, like a duplicate node ID).
func checkTxnField(kind, field string) {
	if strings.ContainsAny(field, cmdSep+txnCmdSep+txnOpSep) || strings.Contains(field, adt.TagSep) {
		panic("smr: " + kind + " contains a reserved separator")
	}
}

// SubmitTxnAt schedules client c to coordinate transaction txn starting
// at time t: one prepare command per participant shard enters c's
// per-shard submission queues together (the router runs them
// concurrently), and the recovery watchdog — when configured — is armed
// RecoveryTimeout later. Must be called before Run, like every submission
// scheduler: key components must be fixed before any command lands.
func (tc *TxnCluster) SubmitTxnAt(c msgnet.ProcID, txn Txn, t msgnet.Time) {
	st := tc.registerTxn(c, txn, t)
	tc.net.At(t, func() { tc.submitTxnPreps(st) })
}

// registerTxn validates and records a transaction at schedule time —
// unioning its keys into the component structure and arming the recovery
// watchdog — without submitting its prepares yet.
func (tc *TxnCluster) registerTxn(c msgnet.ProcID, txn Txn, t msgnet.Time) *txnState {
	if len(txn.Ops) == 0 {
		panic("smr: transaction with no operations")
	}
	if _, dup := tc.txns[txn.ID]; dup || txn.ID == "" {
		panic("smr: transaction ID " + strconv.Quote(txn.ID) + " empty or reused")
	}
	checkTxnField("txn id", txn.ID)
	seen := map[string]bool{}
	for _, op := range txn.Ops {
		checkTxnField("key", op.Key)
		checkTxnField("value", op.Value)
		checkTxnField("expect", op.Expect)
		if op.Key == "" || seen[op.Key] {
			panic("smr: transaction keys must be non-empty and distinct")
		}
		if (op.Kind == TxnWrite || op.Kind == TxnCAS) && op.Value == "" {
			panic("smr: transaction writes need a value")
		}
		seen[op.Key] = true
	}
	st := &txnState{
		spec:       txn,
		coord:      c,
		shardOps:   map[int][]int{},
		votes:      map[int]bool{},
		locked:     map[int]bool{},
		resolvedOn: map[int]bool{},
		reads:      map[int]trace.Value{},
	}
	for i, op := range txn.Ops {
		k := ShardOf(op.Key, len(tc.shards))
		st.shardOps[k] = append(st.shardOps[k], i)
		tc.union(txn.Ops[0].Key, op.Key)
	}
	for k := range st.shardOps {
		st.shards = append(st.shards, k)
	}
	sort.Ints(st.shards)
	tc.txns[txn.ID] = st
	tc.tstats.Started++
	tc.stats.Submitted += int64(len(st.shards))
	if tc.tcfg.RecoveryTimeout > 0 {
		tc.net.At(t+tc.tcfg.RecoveryTimeout, func() {
			if !st.decided {
				tc.decide(st, false, abortRecovery)
			}
		})
	}
	return st
}

// submitTxnPreps enqueues a registered transaction's prepare commands on
// its coordinator's per-shard queues.
func (tc *TxnCluster) submitTxnPreps(st *txnState) {
	for _, k := range st.shards {
		cmd := prepCmd(st.spec.ID, k, st.spec.Ops, st.shardOps[k])
		tc.recs[k].submit(cmd)
		tc.shards[k].byID[st.coord].enqueue(cmd)
	}
}

// MixedItem is one element of a mixed feed: a single-key command, or a
// transaction when Txn is non-nil.
type MixedItem struct {
	Cmd Command
	Txn *Txn
}

// SubmitMixedPaced schedules client c's mixed feed as an open loop: one
// item every period starting at start, one self-rescheduling simulator
// event per step (like SubmitPaced). All transactions are registered up
// front — the key components the checker partitions by must be fixed
// before any command lands — while their prepares enter the queues at
// their paced slots. A non-positive period submits everything at start.
func (tc *TxnCluster) SubmitMixedPaced(c msgnet.ProcID, items []MixedItem, start, period msgnet.Time) {
	states := make([]*txnState, len(items))
	n := 0
	for j, it := range items {
		if it.Txn != nil {
			at := start
			if period > 0 {
				at += period * msgnet.Time(j)
			}
			states[j] = tc.registerTxn(c, *it.Txn, at)
		} else {
			n++
		}
	}
	tc.stats.Submitted += int64(n)
	step := 0
	var feed func()
	feed = func() {
		for {
			it := items[step]
			if st := states[step]; st != nil {
				tc.submitTxnPreps(st)
			} else {
				k := tc.shardFor(it.Cmd)
				tc.recs[k].submit(it.Cmd)
				tc.shards[k].byID[c].enqueue(it.Cmd)
			}
			step++
			if step >= len(items) {
				return
			}
			if period > 0 {
				tc.net.At(tc.net.Now()+period, feed)
				return
			}
		}
	}
	if len(items) > 0 {
		tc.net.At(start, feed)
	}
}

// prepCmd encodes the prepare command for one participant shard: the
// shard's slice of the transaction's operations rides along so the
// shard's vote is computable from its own log alone.
func prepCmd(id string, shard int, ops []TxnOp, idx []int) Command {
	enc := make([]string, len(idx))
	for i, j := range idx {
		op := ops[j]
		switch op.Kind {
		case TxnRead:
			enc[i] = "r" + txnCmdSep + op.Key + txnCmdSep + strconv.Itoa(j)
		case TxnWrite:
			enc[i] = "w" + txnCmdSep + op.Key + txnCmdSep + strconv.Itoa(j) + txnCmdSep + op.Value
		default:
			enc[i] = "c" + txnCmdSep + op.Key + txnCmdSep + strconv.Itoa(j) + txnCmdSep + op.Expect + txnCmdSep + op.Value
		}
	}
	return Command("txp" + cmdSep + id + cmdSep + strconv.Itoa(shard) + cmdSep + strings.Join(enc, txnOpSep))
}

// outcomeCmd encodes an outcome marker. The sender and attempt fields
// keep markers for the same (transaction, shard) distinct across redrive
// rounds — log entries must be unique, and only the first marker to
// replay resolves the shard.
func outcomeCmd(id string, shard int, commit bool, sender msgnet.ProcID, attempt int) Command {
	oc := "a"
	if commit {
		oc = "c"
	}
	return Command("txo" + cmdSep + id + cmdSep + strconv.Itoa(shard) + cmdSep + oc +
		cmdSep + string(sender) + "." + strconv.Itoa(attempt))
}

// txnSlot is a parsed transaction-protocol log entry.
type txnSlot struct {
	prep   bool
	id     string
	shard  int
	ops    []txnSlotOp // prepare only
	commit bool        // outcome only
}

// txnSlotOp is one operation of a prepare entry, with its index into the
// transaction's full operation list.
type txnSlotOp struct {
	kind   byte // 'r', 'w' or 'c'
	key    string
	idx    int
	expect string
	val    string
}

// parseTxnCmd parses a transaction-protocol command; ok is false outside
// the grammar (KV commands and foreign commands alike).
func parseTxnCmd(cmd Command) (ts txnSlot, ok bool) {
	parts := strings.Split(string(cmd), cmdSep)
	if len(parts) < 4 {
		return ts, false
	}
	shard, err := strconv.Atoi(parts[2])
	if err != nil {
		return ts, false
	}
	ts.id, ts.shard = parts[1], shard
	switch {
	case parts[0] == "txp" && len(parts) == 4:
		ts.prep = true
		for _, enc := range strings.Split(parts[3], txnOpSep) {
			fs := strings.Split(enc, txnCmdSep)
			var op txnSlotOp
			switch {
			case len(fs) == 3 && fs[0] == "r":
				op = txnSlotOp{kind: 'r', key: fs[1]}
			case len(fs) == 4 && fs[0] == "w":
				op = txnSlotOp{kind: 'w', key: fs[1], val: fs[3]}
			case len(fs) == 5 && fs[0] == "c":
				op = txnSlotOp{kind: 'c', key: fs[1], expect: fs[3], val: fs[4]}
			default:
				return ts, false
			}
			if op.idx, err = strconv.Atoi(fs[2]); err != nil {
				return ts, false
			}
			ts.ops = append(ts.ops, op)
		}
		return ts, true
	case parts[0] == "txo" && len(parts) == 5:
		ts.commit = parts[3] == "c"
		return ts, ts.commit || parts[3] == "a"
	}
	return ts, false
}

// txnCmdShard routes a transaction-protocol command to its explicit
// shard; ok is false for other commands.
func txnCmdShard(cmd Command) (int, bool) {
	s := string(cmd)
	if !strings.HasPrefix(s, "txp"+cmdSep) && !strings.HasPrefix(s, "txo"+cmdSep) {
		return 0, false
	}
	parts := strings.SplitN(s, cmdSep, 4)
	if len(parts) < 4 {
		return 0, false
	}
	shard, err := strconv.Atoi(parts[2])
	return shard, err == nil
}

// prepReplayed evaluates shard rec's vote at the prepare's replay point —
// the transaction's serialization point in that shard's log. The vote is
// no on a lock conflict with an earlier unresolved transaction (deadlock
// avoidance: never wait, abort instead) or a failed CAS condition;
// otherwise the shard locks the transaction's keys (reads too — a
// MultiGet's values must stay current until the decision) and reports
// its read values.
func (tc *TxnCluster) prepReplayed(rec *shardRecorder, ts *txnSlot) {
	tc.tstats.PrepsLanded++
	st, ok := tc.txns[ts.id]
	if !ok {
		rec.fail("prepare for unknown transaction %q", ts.id)
		return
	}
	if st.decided {
		if st.committed {
			// Commit needs every shard's yes vote, which only this replay
			// could have produced.
			rec.fail("transaction %q committed before shard %d prepared", ts.id, rec.sh.id)
		}
		return // already aborted (watchdog or early-abort won): no lock
	}
	conflict, condFail := false, false
	for _, op := range ts.ops {
		if _, held := rec.locks[op.key]; held {
			conflict = true
		}
		if op.kind == 'c' && string(rec.keyVal(op.key)) != op.expect {
			condFail = true
		}
	}
	if conflict || condFail {
		reason := abortCondition
		if conflict {
			reason = abortConflict
		}
		tc.voteNo(st, rec.sh.id, reason)
		return
	}
	for _, op := range ts.ops {
		if op.kind == 'r' {
			st.reads[op.idx] = rec.keyVal(op.key)
		}
		rec.locks[op.key] = ts.id
	}
	st.locked[rec.sh.id] = true
	st.votes[rec.sh.id] = true
	if len(st.votes) == len(st.shards) {
		tc.decide(st, true, 0)
	}
}

// voteNo records a no vote and aborts immediately (2PC early abort: a
// single no decides the outcome, and shards that have not prepared yet
// will see the decision and skip locking).
func (tc *TxnCluster) voteNo(st *txnState, shard, reason int) {
	st.votes[shard] = false
	if !st.decided {
		tc.decide(st, false, reason)
	}
}

// decide fixes a transaction's outcome — the single decision event every
// shard's outcome marker defers to — feeds the composite operation into
// its component's checker session, and submits one outcome marker per
// participant shard. For recovery aborts the markers are driven by a
// surviving client (deterministically chosen), since the coordinator may
// be gone for good.
func (tc *TxnCluster) decide(st *txnState, commit bool, reason int) {
	st.decided, st.committed = true, commit
	switch {
	case commit:
		tc.tstats.Committed++
	case reason == abortConflict:
		tc.tstats.AbortedConflict++
	case reason == abortCondition:
		tc.tstats.AbortedCondition++
	default:
		tc.tstats.AbortedRecovery++
	}

	in := adt.Tag(adt.TxnInput(txnKVOps(st.spec.Ops), !commit), st.spec.ID)
	out := adt.TxnAbortOutput()
	if commit {
		var reads []trace.Value
		for i, op := range st.spec.Ops {
			if op.Kind == TxnRead {
				reads = append(reads, st.reads[i])
			}
		}
		out = adt.TxnCommitOutput(reads)
	}
	// The composite operation is fed as an instantaneous invocation/
	// response pair at the decision point, which always lies inside the
	// transaction's true interval: its reads were collected under locks
	// still held now, and its writes are invisible until the outcome
	// markers replay later — so a correct run always linearizes here,
	// while a leaked effect still contradicts some neighbor's output.
	proc := trace.ClientID(string(st.coord) + "#t")
	root := tc.find(st.spec.Ops[0].Key)
	tc.feedComponent(root, trace.Invoke(proc, 1, in))
	tc.feedComponent(root, trace.Response(proc, 1, in, out))

	sender := st.coord
	if n := tc.nodes[sender]; reason == abortRecovery || (n != nil && n.Crashed()) {
		// A crashed sender's queue only drains after a restart that may
		// never come; a surviving client must drive the markers.
		sender = tc.recoveryClient(st.coord)
	}
	tc.stats.Submitted += int64(len(st.shards))
	for _, k := range st.shards {
		cmd := outcomeCmd(st.spec.ID, k, commit, sender, 0)
		tc.recs[k].submit(cmd)
		tc.shards[k].byID[sender].enqueue(cmd)
	}
	if tc.tcfg.RecoveryTimeout > 0 {
		tc.net.At(tc.net.Now()+tc.tcfg.RecoveryTimeout, func() { tc.redriveOutcomes(st) })
	}
}

// redriveOutcomes resubmits outcome markers for shards that still have
// not resolved the transaction — the sender of the first round may have
// crashed for good with markers still queued. Redriven markers are new
// log entries (the attempt number keeps them unique); a shard that
// resolves meanwhile ignores the duplicate at replay. Re-arms itself
// until every shard has resolved.
func (tc *TxnCluster) redriveOutcomes(st *txnState) {
	var missing []int
	for _, k := range st.shards {
		if !st.resolvedOn[k] {
			missing = append(missing, k)
		}
	}
	if len(missing) == 0 {
		return
	}
	st.redrives++
	sender := tc.recoveryClient(st.coord)
	tc.stats.Submitted += int64(len(missing))
	for _, k := range missing {
		cmd := outcomeCmd(st.spec.ID, k, st.committed, sender, st.redrives)
		tc.recs[k].submit(cmd)
		tc.shards[k].byID[sender].enqueue(cmd)
	}
	tc.net.At(tc.net.Now()+tc.tcfg.RecoveryTimeout, func() { tc.redriveOutcomes(st) })
}

// recoveryClient picks the client that drives recovery-abort markers:
// the first non-crashed client after the coordinator in cluster order
// (falling back to the coordinator's successor if all are down — the
// markers then land after its restart).
func (tc *TxnCluster) recoveryClient(coord msgnet.ProcID) msgnet.ProcID {
	i := 0
	for j, c := range tc.clients {
		if c == coord {
			i = j
			break
		}
	}
	for off := 1; off <= len(tc.clients); off++ {
		c := tc.clients[(i+off)%len(tc.clients)]
		if n := tc.nodes[c]; n != nil && !n.Crashed() {
			return c
		}
	}
	return tc.clients[(i+1)%len(tc.clients)]
}

// outcomeReplayed resolves a transaction on shard rec at its outcome
// marker's replay point: a committed transaction's writes apply to the
// shard's key states here (its definite point in the shard's total
// order), locks release, and deferred single-key operations drain.
// Markers can replay before their shard's prepare (a recovery abort
// does not wait for prepares) — then there is nothing to unlock.
func (tc *TxnCluster) outcomeReplayed(rec *shardRecorder, ts *txnSlot) {
	tc.tstats.OutcomesLanded++
	st, ok := tc.txns[ts.id]
	if !ok {
		rec.fail("outcome marker for unknown transaction %q", ts.id)
		return
	}
	if !st.decided || ts.commit != st.committed {
		rec.fail("outcome marker (commit=%v) disagrees with transaction %q decision", ts.commit, ts.id)
		return
	}
	if st.resolvedOn[rec.sh.id] {
		return // duplicate marker from a redrive round: already resolved
	}
	st.resolvedOn[rec.sh.id] = true
	if !st.locked[rec.sh.id] {
		return // never prepared here, or voted no: no locks, no effects
	}
	if st.committed {
		for _, i := range st.shardOps[rec.sh.id] {
			op := st.spec.Ops[i]
			if op.Kind == TxnWrite || op.Kind == TxnCAS {
				rec.keyState[op.Key] = adt.State(op.Value)
			}
		}
	}
	for _, i := range st.shardOps[rec.sh.id] {
		rec.unlock(st.spec.Ops[i].Key, ts.id)
	}
}

// txnKVOps encodes a transaction's operations for the adt.TxnKV input
// grammar.
func txnKVOps(ops []TxnOp) []string {
	enc := make([]string, len(ops))
	for i, op := range ops {
		switch op.Kind {
		case TxnRead:
			enc[i] = adt.TxnOpRead(op.Key)
		case TxnWrite:
			enc[i] = adt.TxnOpWrite(op.Key, trace.Value(op.Value))
		default:
			enc[i] = adt.TxnOpCAS(op.Key, trace.Value(op.Expect), trace.Value(op.Value))
		}
	}
	return enc
}

// componentOf returns the txn-connected component root of key, or ""
// for fast-path keys.
func (tc *TxnCluster) componentOf(key string) string { return tc.find(key) }

// feedComponent routes one action into a component's merged history:
// straight into its incremental TxnKV session under OnlineCheck (the
// exact frontier engine — there is no multi-key fast path), buffered for
// a post-hoc pass otherwise. Feeds happen inside simulator events, so
// each component's merged trace is in virtual-real-time order by
// construction.
func (tc *TxnCluster) feedComponent(root string, a trace.Action) {
	comp, ok := tc.comps[root]
	if !ok {
		comp = &component{root: root, shards: map[int]bool{}}
		if tc.cfg.OnlineCheck {
			comp.sess = lin.NewSession(tc.cfg.CheckContext, adt.TxnKV{},
				check.WithBudget(tc.cfg.CheckBudget), check.WithWitness(false),
				check.WithFeedBudget(true))
		}
		tc.comps[root] = comp
	}
	if a.IsRes() {
		comp.ops++
	}
	if comp.sess != nil {
		t := time.Now()
		_ = comp.sess.Feed(a)
		tc.feedWall += time.Since(t)
		return
	}
	comp.trace = append(comp.trace, a)
}

// TxnStats returns the transaction outcome counters.
func (tc *TxnCluster) TxnStats() TxnStats { return tc.tstats }

// TxnCheck summarizes a CheckTxnLinearizable pass: the per-key summary
// for fast-path keys plus the merged component histories.
type TxnCheck struct {
	HistoryCheck
	// Components is the number of txn-connected components checked, each
	// as one merged multi-object history over adt.TxnKV.
	Components int
	// ComponentOps counts operations across all merged histories
	// (composite transactions count once); LargestComponent is the
	// biggest single history.
	ComponentOps     int64
	LargestComponent int64
	// ComponentKeys counts keys entangled by transactions; FastPathKeys
	// counts keys that stayed on the per-key register fast path.
	ComponentKeys int
	FastPathKeys  int
}

// CheckTxnLinearizable verifies the full run: every fast-path key's
// register history (exactly as ShardedCluster.CheckLinearizable) and
// every txn-connected component's merged history against the adt.TxnKV
// product folder. It returns an error for the first non-linearizable
// history or checker failure.
func (tc *TxnCluster) CheckTxnLinearizable(ctx context.Context, opts ...check.Option) (TxnCheck, error) {
	sum := TxnCheck{}
	hc, err := tc.CheckLinearizable(ctx, opts...)
	sum.HistoryCheck = hc
	if err != nil {
		return sum, err
	}
	sum.FastPathKeys = sum.Traces
	sum.ComponentKeys = len(tc.parent)
	sum.FeedWall += tc.feedWall
	// Deterministic iteration order for reproducible node counts.
	roots := make([]string, 0, len(tc.comps))
	for root := range tc.comps {
		roots = append(roots, root)
	}
	sort.Strings(roots)
	for _, root := range roots {
		comp := tc.comps[root]
		var r lin.Result
		if comp.sess != nil {
			r, err = comp.sess.Result()
		} else {
			var rs []lin.Result
			rs, err = lin.CheckAll(ctx, adt.TxnKV{}, []trace.Trace{comp.trace}, opts...)
			if len(rs) == 1 {
				r = rs[0]
			}
		}
		sum.Nodes += int64(r.Nodes)
		if err != nil {
			return sum, fmt.Errorf("smr: component %q check: %w", root, err)
		}
		if !r.OK {
			return sum, fmt.Errorf("smr: component %q merged history not linearizable: %s", root, r.Reason)
		}
		sum.Components++
		sum.ComponentOps += comp.ops
		if comp.ops > sum.LargestComponent {
			sum.LargestComponent = comp.ops
		}
		sum.Traces++
		sum.Ops += comp.ops
	}
	return sum, nil
}

// TxnOutcome reports a transaction's decision: ok is false while it is
// undecided; reads holds a committed transaction's read values in
// operation order.
func (tc *TxnCluster) TxnOutcome(id string) (committed bool, reads []trace.Value, ok bool) {
	st, found := tc.txns[id]
	if !found || !st.decided {
		return false, nil, false
	}
	if !st.committed {
		return false, nil, true
	}
	for i, op := range st.spec.Ops {
		if op.Kind == TxnRead {
			reads = append(reads, st.reads[i])
		}
	}
	return true, reads, true
}

// UnresolvedShards counts (transaction, shard) pairs where a decided
// transaction's outcome marker never replayed — locks that were still
// held when the run ended.
func (tc *TxnCluster) UnresolvedShards() int {
	n := 0
	for _, st := range tc.txns {
		if !st.decided {
			continue
		}
		for _, k := range st.shards {
			if !st.resolvedOn[k] {
				n++
			}
		}
	}
	return n
}

// PendingTxns returns the IDs of transactions that never reached a
// decision (e.g. a permanently crashed coordinator with no watchdog),
// sorted for determinism.
func (tc *TxnCluster) PendingTxns() []string {
	var out []string
	for id, st := range tc.txns {
		if !st.decided {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// txnSingleInput projects a single-key KV command onto the adt.TxnKV
// input grammar, for keys whose history merges into a component.
func txnSingleInput(kind, key, arg string) (in trace.Value, ok bool) {
	switch kind {
	case "set":
		return adt.TxnWriteInput(key, trace.Value(arg)), true
	case "get":
		return adt.Tag(adt.TxnReadInput(key), arg), true
	}
	return "", false
}

// compProc is the synthetic checker process of one single-key operation
// in a merged component history, derived from its command (log entries
// are unique, so the process is too). One process per operation, not per
// (client, shard) lane: a client's submissions pipeline across shards,
// and a response parked behind a transaction's lock is emitted after the
// same lane's next command has already been invoked — so operations of
// one client can genuinely overlap and cannot share a strictly-
// alternating process.
//
// A component operation is fed as an instantaneous pair at its effect
// point — the moment its output is computed and its effect applied:
//
//   - an unparked single-key operation at its replay point;
//   - a parked single-key operation at the unlock drain of the
//     transaction that held its key;
//   - the composite transaction at its decision event.
//
// Every effect point lies inside the operation's true interval
// (invocation after submission, response with exactly the output the
// client later receives, at or before its delivery), and an interval
// contained in the true one can only under-report overlap: any
// linearization found under the shrunken intervals is valid under the
// true ones, so there are no false "linearizable" verdicts. The shrink
// is also what keeps the exact frontier engine's breadth bounded online.
// Intervals held open from submission to response stay open across whole
// retry cycles under contention — and across a full recovery timeout
// when a coordinator crash leaves keys locked — and the frontier must
// track every commit order of the concurrent unclaimed operations: a
// factorial blowup observed in practice at ~10 open operations in a
// single feed. With effect-point pairs the fed history is sequential in
// replay order, so each feed extends one chain and the check verifies
// the load-bearing property directly: the outputs the cluster actually
// emitted fold through adt.TxnKV in the order effects were applied —
// committed transactions atomic, aborted ones effect-free, reads
// consistent. Real-time order is preserved by construction: an
// operation submitted after another's response also replays after it.
func compProc(cmd Command) trace.ClientID {
	return trace.ClientID("k#" + string(cmd))
}
