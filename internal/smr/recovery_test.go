package smr

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/msgnet"
	"repro/internal/workload"
)

// chaosRun couples a sharded cluster with its network so tests can read
// the effective-schedule digest and fault counters after the run.
type chaosRun struct {
	sc  *ShardedCluster
	net *msgnet.Network
}

// runChaos drives a paced keyed workload through a sharded cluster with
// an optional fault plan compiled onto the event queue before Run. The
// plan builder receives the client and server IDs so plans can name
// processes without duplicating the id conventions.
func runChaos(t *testing.T, seed int64, scfg ShardedConfig, wl workload.KeyedOpts, pace msgnet.Time,
	plan func(clients, servers []msgnet.ProcID) faults.Plan) chaosRun {
	t.Helper()
	w := msgnet.New(msgnet.Config{Seed: seed, MinDelay: 1, MaxDelay: 2})
	clients := ids("c", wl.Clients)
	servers := ids("s", 3)
	sc, err := BuildSharded(w, clients, servers, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if plan != nil {
		if err := plan(clients, servers).Apply(w); err != nil {
			t.Fatal(err)
		}
	}
	ops := workload.Keyed(rand.New(rand.NewSource(seed)), wl)
	perClient := make([][]Command, wl.Clients)
	for _, op := range ops {
		perClient[op.Client] = append(perClient[op.Client], cmdOf(op))
	}
	for i, c := range clients {
		sc.SubmitPaced(c, perClient[i], 0, pace)
	}
	sc.Run(100_000_000)
	return chaosRun{sc: sc, net: w}
}

// assertSafe asserts the three safety properties every faulty run must
// keep: all submissions landed (exactly once, by the recorder's
// duplicate-slot check), per-shard logs agree, and every per-key history
// is linearizable.
func assertSafe(t *testing.T, name string, sc *ShardedCluster, wantLanded int64) {
	t.Helper()
	st := sc.Stats()
	if st.Landed != wantLanded {
		t.Fatalf("%s: landed %d/%d", name, st.Landed, wantLanded)
	}
	if err := sc.CheckConsistency(); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if _, err := sc.CheckLinearizable(context.Background()); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
}

// chaosCfg is the shared configuration of the fault tests: fast path on,
// retries armed, durable-snapshot recovery modeled, results retained for
// equivalence comparisons.
func chaosCfg(recovery bool) ShardedConfig {
	return ShardedConfig{
		Config: Config{
			FastPath:      true,
			QuorumTimeout: 8,
			Retransmit:    6,
			RetryTimeout:  60,
			Recovery:      recovery,
		},
		Shards:        2,
		RetainResults: true,
		WindowEvery:   64,
	}
}

var chaosWL = workload.KeyedOpts{Clients: 3, Ops: 240, Keys: 16, ReadFrac: 0.4}

// Recovery on (volatile components wiped on restart, rebuilt from
// durable snapshots) and recovery off (all state survives a restart)
// must produce byte-identical runs under the same crash schedule: the
// snapshot-completeness oracle. Any protocol state missing from a
// Snapshot/Restore pair would change a recovered replica's replies and
// split the schedules.
func TestRecoveryModelEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		plan := func(clients, servers []msgnet.ProcID) faults.Plan {
			return faults.Plan{Crashes: faults.RollingRestart(servers, 60, 80, 30)}
		}
		off := runChaos(t, seed, chaosCfg(false), chaosWL, 8, plan)
		on := runChaos(t, seed, chaosCfg(true), chaosWL, 8, plan)
		if d0, d1 := off.net.ScheduleDigest(), on.net.ScheduleDigest(); d0 != d1 {
			t.Fatalf("seed %d: schedule digests differ: recovery off %x, on %x", seed, d0, d1)
		}
		if s0, s1 := off.sc.Stats(), on.sc.Stats(); !reflect.DeepEqual(s0, s1) {
			t.Fatalf("seed %d: stats differ:\noff %+v\non  %+v", seed, s0, s1)
		}
		if r0, r1 := off.sc.Results(), on.sc.Results(); !reflect.DeepEqual(r0, r1) {
			t.Fatalf("seed %d: results differ", seed)
		}
		assertSafe(t, "equivalence", on.sc, int64(chaosWL.Ops))
	}
}

// Crash schedules that hit a replica while it is still catching up, or
// take the submission's coordinator (the client) down mid-flight, must
// not cost safety. Table-driven over seeds.
func TestCrashDuringRecovery(t *testing.T) {
	cases := []struct {
		name string
		plan func(clients, servers []msgnet.ProcID) faults.Plan
	}{
		{
			// s1 restarts and crashes again almost immediately: the second
			// crash lands while the replica is rebuilding slots lazily from
			// its durable store.
			name: "recrash-mid-catchup",
			plan: func(clients, servers []msgnet.ProcID) faults.Plan {
				return faults.Plan{Crashes: []faults.Crash{
					{Proc: servers[1], At: 80, RestartAt: 100},
					{Proc: servers[1], At: 104, RestartAt: 150},
				}}
			},
		},
		{
			// Overlapping downtime briefly leaves a single live server: no
			// majority, so progress stalls and the retry path must carry
			// every in-flight submission across the outage.
			name: "overlapping-server-downtime",
			plan: func(clients, servers []msgnet.ProcID) faults.Plan {
				return faults.Plan{Crashes: []faults.Crash{
					{Proc: servers[0], At: 60, RestartAt: 120},
					{Proc: servers[1], At: 80, RestartAt: 140},
				}}
			},
		},
		{
			// Crash of the coordinator: a client dies with a submission in
			// flight and re-drives it through the robust phase on restart
			// (client state is durable by the model).
			name: "coordinator-crash",
			plan: func(clients, servers []msgnet.ProcID) faults.Plan {
				return faults.Plan{Crashes: []faults.Crash{
					{Proc: clients[1], At: 90, RestartAt: 130},
				}}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				run := runChaos(t, seed, chaosCfg(true), chaosWL, 8, tc.plan)
				assertSafe(t, tc.name, run.sc, int64(chaosWL.Ops))
			}
		})
	}
}

// Duplicating links must never land a command twice: decision messages
// (Paxos decided broadcasts among clients) and accept replies are the
// dangerous duplicates, so the dup rules cover the client↔client and
// server→client directions.
func TestDuplicateDecisionDelivery(t *testing.T) {
	plan := func(clients, servers []msgnet.ProcID) faults.Plan {
		var p faults.Plan
		dup := msgnet.LinkRule{DupProb: 0.4}
		for _, a := range clients {
			for _, b := range clients {
				if a != b {
					p.Links = append(p.Links, faults.LinkFault{From: a, To: b, Rule: dup})
				}
			}
		}
		for _, s := range servers {
			p.Links = append(p.Links, faults.LinkFault{From: s, To: clients[0], Rule: dup})
		}
		return p
	}
	for seed := int64(1); seed <= 3; seed++ {
		run := runChaos(t, seed, chaosCfg(true), chaosWL, 8, plan)
		if run.net.Duplicated() == 0 {
			t.Fatalf("seed %d: dup links produced no duplicates", seed)
		}
		assertSafe(t, "duplicates", run.sc, int64(chaosWL.Ops))
	}
}

// A partition that cuts the clients off from a server majority forces
// every in-flight submission through the retry path; after it heals, all
// of them must land exactly once. Also pins the windowed stats to the
// global aggregates.
func TestClientRetryExactlyOnce(t *testing.T) {
	plan := func(clients, servers []msgnet.ProcID) faults.Plan {
		side := append(append([]msgnet.ProcID{}, clients...), servers[2])
		return faults.Plan{Partitions: []faults.Partition{
			faults.Split(side, servers[:2], 40, 160),
		}}
	}
	scfg := chaosCfg(true)
	scfg.RetryTimeout = 30
	for seed := int64(1); seed <= 3; seed++ {
		run := runChaos(t, seed, scfg, chaosWL, 8, plan)
		st := run.sc.Stats()
		if st.Retries == 0 {
			t.Fatalf("seed %d: partition forced no retries", seed)
		}
		assertSafe(t, "retry", run.sc, int64(chaosWL.Ops))
		// Retries enter at the robust phase directly, which is not a phase
		// switch — the fast-path stat must still exclude them.
		for _, r := range run.sc.Results() {
			if r.Retries > 0 {
				if st.FastPath == st.Landed {
					t.Fatalf("seed %d: retried submissions counted as fast path", seed)
				}
				break
			}
		}
		var landed, fast, retried int64
		for _, w := range st.Windows {
			landed += w.Landed
			fast += w.FastPath
			retried += w.Retried
			if w.Retried > w.Landed || w.FastPath > w.Landed {
				t.Fatalf("seed %d: window %+v over-counts", seed, w)
			}
		}
		if landed != st.Landed || fast != st.FastPath {
			t.Fatalf("seed %d: windows sum (landed %d fast %d) != stats (landed %d fast %d)",
				seed, landed, fast, st.Landed, st.FastPath)
		}
	}
}

// Identical seed and plan must reproduce the identical schedule — the
// replay guarantee fault plans are built on.
func TestChaosDeterminism(t *testing.T) {
	plan := func(clients, servers []msgnet.ProcID) faults.Plan {
		return faults.Plan{
			Crashes:    faults.RollingRestart(servers, 60, 80, 30),
			Partitions: []faults.Partition{faults.Split([]msgnet.ProcID{servers[0]}, servers[1:], 300, 360)},
			Links:      []faults.LinkFault{{From: clients[0], To: servers[0], Rule: msgnet.LinkRule{DropProb: 0.3}, Start: 20, Until: 200}},
		}
	}
	a := runChaos(t, 7, chaosCfg(true), chaosWL, 8, plan)
	b := runChaos(t, 7, chaosCfg(true), chaosWL, 8, plan)
	if d0, d1 := a.net.ScheduleDigest(), b.net.ScheduleDigest(); d0 != d1 {
		t.Fatalf("same seed+plan, different schedules: %x vs %x", d0, d1)
	}
	if !reflect.DeepEqual(a.sc.Stats(), b.sc.Stats()) {
		t.Fatalf("same seed+plan, different stats")
	}
	if !reflect.DeepEqual(a.sc.Results(), b.sc.Results()) {
		t.Fatalf("same seed+plan, different results")
	}
}

// Arming the fault machinery without using it — recovery on, a retry
// timeout too large to ever fire, an empty plan applied — must replay
// the plain baseline event for event. This is what lets the chaos
// harness reproduce the fault-free benchmarks exactly.
func TestFaultMachineryOffPreservesBaseline(t *testing.T) {
	base := ShardedConfig{
		Config: Config{FastPath: true, QuorumTimeout: 8, Retransmit: 6},
		Shards: 2, RetainResults: true,
	}
	armed := base
	armed.Recovery = true
	armed.RetryTimeout = 1_000_000 // armed on every attempt, never fires
	plain := runChaos(t, 5, base, chaosWL, 8, nil)
	chaos := runChaos(t, 5, armed, chaosWL, 8, func(clients, servers []msgnet.ProcID) faults.Plan {
		return faults.Plan{}
	})
	if d0, d1 := plain.net.ScheduleDigest(), chaos.net.ScheduleDigest(); d0 != d1 {
		t.Fatalf("armed fault machinery perturbed the schedule: %x vs %x", d0, d1)
	}
	if r0, r1 := plain.sc.Results(), chaos.sc.Results(); !reflect.DeepEqual(r0, r1) {
		t.Fatalf("armed fault machinery changed results")
	}
	s0, s1 := plain.sc.Stats(), chaos.sc.Stats()
	if !reflect.DeepEqual(s0, s1) {
		t.Fatalf("armed fault machinery changed stats:\nplain %+v\narmed %+v", s0, s1)
	}
}
