package smr

import (
	"fmt"

	"repro/internal/msgnet"
)

// Cluster is a single-log SMR deployment on a simulated network: one
// Shard whose client and replica engines are the network node handlers.
// This is the paper's §6 system; ShardedCluster composes N of these logs
// for partitioned workloads.
type Cluster struct {
	sh *Shard
}

// Build wires an SMR cluster into net.
func Build(net *msgnet.Network, clients, servers []msgnet.ProcID, cfg Config) (*Cluster, error) {
	if len(clients) == 0 || len(servers) == 0 {
		return nil, fmt.Errorf("smr: need clients and servers")
	}
	sh := newShard(net, 0, clients, servers, cfg)
	for _, id := range clients {
		net.AddNode(id, sh.byID[id])
	}
	for _, id := range servers {
		net.AddNode(id, sh.reps[id])
	}
	return &Cluster{sh: sh}, nil
}

// SetHooks registers observation callbacks: start fires when a submission
// begins executing (its invocation point under the client-sequential
// discipline), land when it resolves. Either may be nil.
func (cl *Cluster) SetHooks(start func(c msgnet.ProcID, cmd Command, at msgnet.Time), land func(SubmitResult)) {
	cl.sh.onStart = start
	cl.sh.onLand = land
}

// SubmitAt schedules client c to submit cmd at time t. Submissions queue
// per client and execute sequentially.
func (cl *Cluster) SubmitAt(c msgnet.ProcID, cmd Command, t msgnet.Time) {
	cl.sh.net.At(t, func() { cl.sh.byID[c].enqueue(cmd) })
}

// Run advances the simulation.
func (cl *Cluster) Run(maxTime msgnet.Time) msgnet.Time { return cl.sh.net.Run(maxTime) }

// Results returns landed submissions in completion order.
func (cl *Cluster) Results() []SubmitResult { return append([]SubmitResult{}, cl.sh.results...) }

// Log returns client c's view of the replicated log as a dense prefix
// plus any holes it never participated in (holes are simply absent).
// With compaction enabled the trimmed prefix is absent too.
func (cl *Cluster) Log(c msgnet.ProcID) map[int]Command {
	out := map[int]Command{}
	for s, v := range cl.sh.byID[c].log {
		out[s] = v
	}
	return out
}

// CheckConsistency verifies SMR safety across all clients: no two clients
// disagree on a slot's decision, and every decided command was submitted
// by some client.
func (cl *Cluster) CheckConsistency() error { return cl.sh.checkConsistency() }
