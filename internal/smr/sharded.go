package smr

import (
	"context"
	"fmt"
	"time"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/lin"
	"repro/internal/msgnet"
	"repro/internal/trace"
)

// ShardedConfig parameterizes a sharded deployment.
type ShardedConfig struct {
	Config
	// Shards is the number of independent replicated logs (default 1).
	// Commands are hash-partitioned across them by key (ShardOf).
	Shards int
	// RetainResults keeps every SubmitResult in memory (Results). Off by
	// default: million-command sweeps only need the running aggregates
	// in Stats.
	RetainResults bool
	// OnlineCheck streams every per-key register history through an
	// incremental checker session (lin.Session) as commands land, so
	// linearizability checking overlaps the simulation instead of
	// buffering whole histories for a post-hoc pass: the raw per-key
	// traces are not retained (KeyTraces returns none) and
	// CheckLinearizable reads the sessions' verdicts. Combined with log
	// compaction this keeps run memory bounded by the compaction window
	// plus the sessions' live frontiers rather than the full history
	// length (checker API v2, DESIGN.md decision 11).
	OnlineCheck bool
	// CheckBudget bounds each per-key session's cumulative search nodes
	// when OnlineCheck is set (0: lin.DefaultBudget).
	CheckBudget int
	// CheckContext, when non-nil, is the context the streaming per-key
	// sessions run under (OnlineCheck only): cancellation or deadline
	// expiry terminates the sessions mid-run, surfacing as an error from
	// CheckLinearizable. Nil means context.Background().
	CheckContext context.Context
	// ExactCheck forces the exact frontier engine on the per-key sessions
	// (OnlineCheck only). By default the sessions dispatch to the
	// register fast path (DESIGN.md, decision 15) — per-key histories are
	// in its fragment by construction (writes carry unique command
	// values, reads unique tags), making Feed O(1) amortized and the
	// check budget-free; the verdicts are identical either way.
	ExactCheck bool
	// WindowEvery, when positive, buckets landed submissions into
	// fixed-width virtual-time windows (ShardedStats.Windows), keyed by
	// landing time. Fault experiments read fast-path rate per window to
	// see degradation and recovery around injected faults.
	WindowEvery msgnet.Time
}

// ShardedStats aggregates submission outcomes across all shards.
type ShardedStats struct {
	Submitted    int64
	Landed       int64
	TotalLatency int64 // sum of per-submission latencies (message delays)
	Switches     int64
	Attempts     int64
	// FastPath counts submissions that resolved without a single phase
	// switch or retry (every attempted slot decided on the fast path).
	FastPath int64
	// Retries counts timeout/restart re-proposals across all clients.
	Retries        int64
	PerShardLanded []int64
	// Windows holds per-window landing aggregates (WindowEvery only).
	Windows []WindowStat
}

// WindowStat aggregates the submissions that landed in one virtual-time
// window [Start, End).
type WindowStat struct {
	Start, End msgnet.Time
	Landed     int64
	FastPath   int64 // landed with no switch and no retry
	Retried    int64 // landed after at least one retry
}

// FastPathRate returns the fraction of the window's landings that never
// left the fast path.
func (w WindowStat) FastPathRate() float64 {
	if w.Landed == 0 {
		return 0
	}
	return float64(w.FastPath) / float64(w.Landed)
}

// MeanLatency returns the mean end-to-end latency in message delays.
func (s ShardedStats) MeanLatency() float64 {
	if s.Landed == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(s.Landed)
}

// FastPathRate returns the fraction of landed submissions that never
// left the fast path.
func (s ShardedStats) FastPathRate() float64 {
	if s.Landed == 0 {
		return 0
	}
	return float64(s.FastPath) / float64(s.Landed)
}

// ShardedCluster is an SMR deployment whose key space is hash-partitioned
// across N independent Shards (one speculative replicated log each)
// sharing one simulated network. Every client process runs a router that
// multiplexes its in-flight submissions per shard: submissions to the
// same shard queue sequentially (the single-log client discipline), while
// submissions to different shards proceed concurrently. Every server
// process hosts one replica engine per shard behind a demultiplexer.
//
// Because linearizability is compositional and keys never cross shards,
// correctness decomposes: per-shard log agreement (CheckConsistency) and
// per-key linearizability of the recorded histories (CheckLinearizable)
// — see DESIGN.md, decision 10.
type ShardedCluster struct {
	net     *msgnet.Network
	cfg     ShardedConfig
	clients []msgnet.ProcID
	servers []msgnet.ProcID
	shards  []*Shard
	routers map[msgnet.ProcID]*router
	nodes   map[msgnet.ProcID]*msgnet.Node
	recs    []*shardRecorder
	stats   ShardedStats
	// txn is the transaction layer when the cluster was built through
	// BuildTxn (txn.go): single-key commands on txn-entangled keys route
	// into merged component histories instead of per-key sessions.
	txn *TxnCluster
}

// BuildSharded wires a sharded SMR cluster into net.
func BuildSharded(net *msgnet.Network, clients, servers []msgnet.ProcID, cfg ShardedConfig) (*ShardedCluster, error) {
	if len(clients) == 0 || len(servers) == 0 {
		return nil, fmt.Errorf("smr: need clients and servers")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	sc := &ShardedCluster{
		net:     net,
		cfg:     cfg,
		clients: clients,
		servers: servers,
		routers: map[msgnet.ProcID]*router{},
		nodes:   map[msgnet.ProcID]*msgnet.Node{},
	}
	sc.stats.PerShardLanded = make([]int64, cfg.Shards)
	for k := 0; k < cfg.Shards; k++ {
		sh := newShard(net, k, clients, servers, cfg.Config)
		sh.keepResults = cfg.RetainResults
		rec := newShardRecorder(sc, sh)
		sh.onStart = rec.start
		sh.onLearn = rec.learn
		sh.onLand = rec.land
		sc.shards = append(sc.shards, sh)
		sc.recs = append(sc.recs, rec)
	}
	for _, id := range clients {
		r := &router{perShard: make([]*client, cfg.Shards)}
		for k, sh := range sc.shards {
			r.perShard[k] = sh.byID[id]
		}
		sc.routers[id] = r
		sc.nodes[id] = net.AddNode(id, r)
	}
	for _, id := range servers {
		m := &serverMux{perShard: make([]*replica, cfg.Shards)}
		for k, sh := range sc.shards {
			m.perShard[k] = sh.reps[id]
		}
		net.AddNode(id, m)
	}
	return sc, nil
}

// Shards returns the shard count.
func (sc *ShardedCluster) Shards() int { return len(sc.shards) }

// shardFor routes a command: transaction-protocol commands carry their
// shard explicitly, KV commands hash their key, anything else hashes its
// whole encoding (deterministic in every case).
func (sc *ShardedCluster) shardFor(cmd Command) int {
	if k, ok := txnCmdShard(cmd); ok && k >= 0 && k < len(sc.shards) {
		return k
	}
	key, ok := CmdKey(cmd)
	if !ok {
		key = string(cmd)
	}
	return ShardOf(key, len(sc.shards))
}

// SubmitAt schedules client c to submit cmd at time t. Submissions to
// the same shard queue sequentially per client; submissions to different
// shards run concurrently (the router multiplexes them).
func (sc *ShardedCluster) SubmitAt(c msgnet.ProcID, cmd Command, t msgnet.Time) {
	k := sc.shardFor(cmd)
	sc.stats.Submitted++
	sc.net.At(t, func() {
		sc.recs[k].submit(cmd)
		sc.shards[k].byID[c].enqueue(cmd)
	})
}

// SubmitManyAt schedules a batch of submissions by client c at time t
// with a single simulator event, preserving cmds order per shard. Large
// sweeps use it to avoid one heap event per command.
func (sc *ShardedCluster) SubmitManyAt(c msgnet.ProcID, cmds []Command, t msgnet.Time) {
	sc.stats.Submitted += int64(len(cmds))
	sc.net.At(t, func() {
		for _, cmd := range cmds {
			k := sc.shardFor(cmd)
			sc.recs[k].submit(cmd)
			sc.shards[k].byID[c].enqueue(cmd)
		}
	})
}

// SubmitPaced schedules client c's commands as an open-loop feed: the
// commands partition into per-shard streams (preserving order), and
// every period starting at start the client enqueues the next command of
// every stream — one simulator event per step, self-rescheduling, so a
// million-command feed never materializes a million heap events. A
// non-positive period degenerates to SubmitManyAt (a closed-loop burst).
//
// Pacing models sustained load: each (client, shard) pipeline receives
// one command per period, so slot contention stays at realistic levels
// and clients advance their learned watermarks together (which is what
// lets compaction keep memory bounded on long runs).
func (sc *ShardedCluster) SubmitPaced(c msgnet.ProcID, cmds []Command, start, period msgnet.Time) {
	if period <= 0 {
		sc.SubmitManyAt(c, cmds, start)
		return
	}
	streams := make([][]Command, len(sc.shards))
	for _, cmd := range cmds {
		k := sc.shardFor(cmd)
		streams[k] = append(streams[k], cmd)
	}
	sc.stats.Submitted += int64(len(cmds))
	step := 0
	var feed func()
	feed = func() {
		more := false
		for k, s := range streams {
			if step >= len(s) {
				continue
			}
			sc.recs[k].submit(s[step])
			sc.shards[k].byID[c].enqueue(s[step])
			if step+1 < len(s) {
				more = true
			}
		}
		step++
		if more {
			sc.net.At(sc.net.Now()+period, feed)
		}
	}
	sc.net.At(start, feed)
}

// Run advances the simulation.
func (sc *ShardedCluster) Run(maxTime msgnet.Time) msgnet.Time { return sc.net.Run(maxTime) }

// Stats returns the aggregated submission statistics.
func (sc *ShardedCluster) Stats() ShardedStats {
	s := sc.stats
	s.PerShardLanded = append([]int64{}, sc.stats.PerShardLanded...)
	s.Windows = append([]WindowStat{}, sc.stats.Windows...)
	s.Retries = 0
	for _, sh := range sc.shards {
		for _, id := range sc.clients {
			s.Retries += sh.byID[id].retries
		}
	}
	return s
}

// Results returns landed submissions grouped by shard (completion order
// within a shard). Empty unless ShardedConfig.RetainResults.
func (sc *ShardedCluster) Results() []SubmitResult {
	var out []SubmitResult
	for _, sh := range sc.shards {
		out = append(out, sh.results...)
	}
	return out
}

// Log returns client c's view of shard k's replicated log (see
// Cluster.Log; trimmed prefixes are absent under compaction).
func (sc *ShardedCluster) Log(k int, c msgnet.ProcID) map[int]Command {
	out := map[int]Command{}
	for s, v := range sc.shards[k].byID[c].log {
		out[s] = v
	}
	return out
}

// CheckConsistency verifies per-shard log agreement: the online checks
// accumulated over every learn (agreement with the first learned value,
// decisions were submitted to that shard, every command in at most one
// slot, keys routed to their hash shard) plus the cross-client pass over
// the retained (untrimmed) log suffixes.
func (sc *ShardedCluster) CheckConsistency() error {
	for k, rec := range sc.recs {
		if rec.err != nil {
			return fmt.Errorf("smr: shard %d: %w", k, rec.err)
		}
		if err := sc.shards[k].checkConsistency(); err != nil {
			return err
		}
	}
	return nil
}

// KeyTraces returns shard k's recorded per-key histories: one trace per
// key, each a well-formed register history (writes for sets, tagged
// reads for gets) in real-time order. The returned traces alias the
// recorder's buffers and must not be mutated. With OnlineCheck the raw
// histories are not retained (they stream through checker sessions
// instead) and KeyTraces returns an empty slice.
func (sc *ShardedCluster) KeyTraces(k int) []trace.Trace {
	rec := sc.recs[k]
	out := make([]trace.Trace, len(rec.traces))
	copy(out, rec.traces)
	return out
}

// HistoryCheck summarizes a CheckLinearizable pass.
type HistoryCheck struct {
	Shards int
	Traces int   // per-key histories checked
	Ops    int64 // total operations across all histories
	Nodes  int64 // total search nodes spent
	// Online is true when the verdicts came from the streaming per-key
	// sessions rather than a post-hoc batch pass.
	Online bool
	// FeedWall is the cumulative wall-clock time the run spent inside
	// the sessions' Feed calls (Online only; zero post hoc): the true
	// checking overhead embedded in the simulation wall, measured per
	// feed. The ~100ns of clock reads per op is negligible against a
	// simulated event but a few percent of a fast-path feed, so any
	// engine speedup computed from this figure is biased conservatively
	// low. Populated even when a session erred (budget exhaustion):
	// the time was spent regardless of the verdict.
	FeedWall time.Duration
}

// CheckLinearizable verifies every per-key history (checker API v2:
// context-aware, functional options). Post hoc — the default — it feeds
// every shard's recorded histories through lin.CheckAll (per-key register
// ADT), sharding each batch across check.WithWorkers workers (GOMAXPROCS
// by default). With ShardedConfig.OnlineCheck the histories were already
// checked incrementally while the simulation ran, and this collects the
// sessions' verdicts (the options apply to the sessions at Build time,
// not here). It returns an error for the first non-linearizable history
// or checker failure.
func (sc *ShardedCluster) CheckLinearizable(ctx context.Context, opts ...check.Option) (HistoryCheck, error) {
	sum := HistoryCheck{Shards: len(sc.shards), Online: sc.cfg.OnlineCheck}
	if sc.cfg.OnlineCheck {
		for _, rec := range sc.recs {
			sum.FeedWall += rec.feedWall
		}
		for k, rec := range sc.recs {
			for i, sess := range rec.sessions {
				r, err := sess.Result()
				sum.Nodes += int64(r.Nodes)
				if err != nil {
					return sum, fmt.Errorf("smr: shard %d key %q online check: %w", k, rec.keys[i], err)
				}
				if !r.OK {
					return sum, fmt.Errorf("smr: shard %d key %q history not linearizable: %s",
						k, rec.keys[i], r.Reason)
				}
				sum.Traces++
				sum.Ops += int64(sess.Len()) / 2
			}
		}
		return sum, nil
	}
	for k := range sc.shards {
		ts := sc.KeyTraces(k)
		rs, err := lin.CheckAll(ctx, adt.Register{}, ts, opts...)
		if err != nil {
			return sum, fmt.Errorf("smr: shard %d history check: %w", k, err)
		}
		for i, r := range rs {
			sum.Nodes += int64(r.Nodes)
			if !r.OK {
				return sum, fmt.Errorf("smr: shard %d key %q history not linearizable: %s",
					k, sc.recs[k].keys[i], r.Reason)
			}
		}
		sum.Traces += len(ts)
		for _, t := range ts {
			sum.Ops += int64(len(t)) / 2
		}
	}
	return sum, nil
}

// router is the client-side node handler of a sharded deployment: one
// shard-local client engine per shard, sharing the node.
type router struct {
	perShard []*client
}

func (r *router) Init(n *msgnet.Node) {
	for _, c := range r.perShard {
		c.Init(n)
	}
}

func (r *router) OnMessage(n *msgnet.Node, from msgnet.ProcID, payload any) {
	switch env := payload.(type) {
	case slotEnvelope:
		if env.shard >= 0 && env.shard < len(r.perShard) {
			r.perShard[env.shard].handleEnvelope(from, env)
		}
	case gossipEnvelope:
		if env.shard >= 0 && env.shard < len(r.perShard) {
			r.perShard[env.shard].handleGossip(env)
		}
	}
}

func (r *router) OnTimer(n *msgnet.Node, name string) {
	if shard, ok := splitRetryTimer(name); ok {
		if shard >= 0 && shard < len(r.perShard) {
			r.perShard[shard].onRetryTimer()
		}
		return
	}
	shard, slot, phase, rest, ok := splitSlotTimer(name)
	if !ok || shard < 0 || shard >= len(r.perShard) {
		return
	}
	r.perShard[shard].handleTimer(slot, phase, rest)
}

// OnRestart implements msgnet.RecoverableHandler: each shard-local
// client engine re-drives its in-flight submission.
func (r *router) OnRestart(n *msgnet.Node) {
	for _, c := range r.perShard {
		c.onRestart()
	}
}

// serverMux is the server-side node handler: one replica engine per
// shard, sharing the node.
type serverMux struct {
	perShard []*replica
}

func (m *serverMux) Init(n *msgnet.Node) {
	for _, r := range m.perShard {
		r.Init(n)
	}
}

func (m *serverMux) OnMessage(n *msgnet.Node, from msgnet.ProcID, payload any) {
	switch env := payload.(type) {
	case slotEnvelope:
		if env.shard >= 0 && env.shard < len(m.perShard) {
			m.perShard[env.shard].handleEnvelope(from, env)
		}
	case learnedEnvelope:
		if env.shard >= 0 && env.shard < len(m.perShard) {
			m.perShard[env.shard].handleLearned(from, env.watermark)
		}
	}
}

func (m *serverMux) OnTimer(n *msgnet.Node, name string) {
	shard, slot, phase, rest, ok := splitSlotTimer(name)
	if !ok || shard < 0 || shard >= len(m.perShard) {
		return
	}
	m.perShard[shard].handleTimer(slot, phase, rest)
}

// OnRestart implements msgnet.RecoverableHandler: each shard-local
// replica drops its volatile phase state and rebuilds from the durable
// store (Config.Recovery; a no-op in the full-durability model).
func (m *serverMux) OnRestart(n *msgnet.Node) {
	for _, r := range m.perShard {
		r.recover()
	}
}

// shardRecorder observes one shard through its hooks: it records per-key
// register histories for the linearizability check, replays the log in
// slot order to produce read outputs, verifies log agreement online
// (which is what permits clients to trim their logs under compaction),
// and aggregates submission statistics.
type shardRecorder struct {
	sc  *ShardedCluster
	sh  *Shard
	reg adt.Register

	// subSlot tracks every command submitted to this shard: -1 until its
	// decision is first learned, then the slot it landed in. It backs the
	// online checks (decided ⇒ submitted; at most one slot per command).
	subSlot map[Command]int
	// slotVal and learns back the online agreement check: the first
	// learned value per slot, compared against every later learn; entries
	// are freed once all clients have learned the slot and it has been
	// replayed.
	slotVal map[int]Command
	learns  map[int]int
	err     error

	// Slot-order replay: pending holds decided-but-unreplayed commands
	// (parsed once at first learn), applied is the next slot to replay,
	// keyState the per-key register states, slotOut the replayed
	// operations awaiting their response.
	pending  map[int]slotEntry
	applied  int
	keyState map[string]adt.State
	slotOut  map[int]slotReplay

	// Transaction-layer replay state (txn.go). locks maps a key to the
	// transaction holding it between its prepare's replay (yes vote) and
	// its outcome marker's replay. Single-key operations on a locked key
	// defer — the replay cursor itself never blocks: their slots park in
	// waiting (per key, slot order) and deferred, their effects and
	// outputs materialize at unlock, and a land that arrives while its
	// slot is still deferred parks in landWait until then.
	locks    map[string]string
	waiting  map[string][]deferredSlot
	deferred map[int]bool
	landWait map[int]msgnet.ProcID

	// Per-key histories in real-time order (post-hoc mode), or the
	// per-key incremental checker sessions fed in real-time order
	// (OnlineCheck mode — the traces slices stay empty then).
	traces   []trace.Trace
	sessions []*lin.Session
	keys     []string
	keyIdx   map[string]int
	// feedWall accumulates the wall-clock time spent inside session
	// Feed calls (OnlineCheck only) — the checking overhead embedded in
	// the run, timed per feed because it is far too small a fraction of
	// the simulation wall to recover from run-to-run deltas.
	feedWall time.Duration
}

// slotEntry is a decided command with its KV projection, parsed once at
// first learn.
type slotEntry struct {
	key string
	in  trace.Value
	reg bool // projects onto a checkable operation (set/get)
	// comp marks keys merged into a txn-connected component: the
	// projection is then an adt.TxnKV input, kind/arg carry the parsed
	// command for replay, and cmd the raw command (it names the
	// operation's synthetic checker process, compProc).
	comp bool
	kind string
	arg  string
	cmd  Command
	// txn is set for transaction-protocol commands (prepare/outcome).
	txn *txnSlot
}

// deferredSlot is a replayed-but-locked single-key operation awaiting
// its key's unlock.
type deferredSlot struct {
	slot int
	e    slotEntry
}

// slotReplay is a replayed slot awaiting its submitter's response.
type slotReplay struct {
	key  string
	in   trace.Value
	out  trace.Value
	reg  bool
	comp bool
}

func newShardRecorder(sc *ShardedCluster, sh *Shard) *shardRecorder {
	return &shardRecorder{
		sc:       sc,
		sh:       sh,
		subSlot:  map[Command]int{},
		slotVal:  map[int]Command{},
		learns:   map[int]int{},
		pending:  map[int]slotEntry{},
		keyState: map[string]adt.State{},
		slotOut:  map[int]slotReplay{},
		keyIdx:   map[string]int{},
		locks:    map[string]string{},
		waiting:  map[string][]deferredSlot{},
		deferred: map[int]bool{},
		landWait: map[int]msgnet.ProcID{},
	}
}

// fail records the first violation (later ones would be cascades).
func (rec *shardRecorder) fail(format string, args ...any) {
	if rec.err == nil {
		rec.err = fmt.Errorf(format, args...)
	}
}

func (rec *shardRecorder) submit(cmd Command) {
	if _, dup := rec.subSlot[cmd]; dup {
		rec.fail("command %q submitted twice (log entries must be unique)", cmd)
		return
	}
	rec.subSlot[cmd] = -1
}

// start records the invocation of a keyed command's operation: appended
// to the per-key history buffer, or — under OnlineCheck — fed straight
// into the key's incremental checker session. Keys entangled by
// transactions route into their component's merged TxnKV history
// instead, at their replay points (txn.go, compProc — the
// shrunken-interval soundness argument is made there), so nothing is
// recorded for them at submission.
func (rec *shardRecorder) start(c msgnet.ProcID, cmd Command, at msgnet.Time) {
	kind, key, arg, ok := cmdParts(cmd)
	if !ok {
		return
	}
	if tc := rec.sc.txn; tc != nil && tc.find(key) != "" {
		return
	}
	in, ok := registerInput(kind, arg)
	if !ok {
		return
	}
	i, seen := rec.keyIdx[key]
	if !seen {
		i = len(rec.keys)
		rec.keyIdx[key] = i
		rec.keys = append(rec.keys, key)
		if rec.sc.cfg.OnlineCheck {
			// Per-feed budget: online sessions live as long as the run, so
			// a cumulative budget would turn history length into a spurious
			// failure mode; per-feed it bounds each increment's work, which
			// is what the budget is for (DESIGN.md decision 17).
			rec.sessions = append(rec.sessions, lin.NewSessionFast(rec.sc.cfg.CheckContext, rec.reg,
				check.WithBudget(rec.sc.cfg.CheckBudget), check.WithWitness(false),
				check.WithExact(rec.sc.cfg.ExactCheck), check.WithFeedBudget(true)))
		} else {
			rec.traces = append(rec.traces, nil)
		}
	}
	a := trace.Invoke(trace.ClientID(c), 1, in)
	if rec.sc.cfg.OnlineCheck {
		// Terminal session errors (budget exhaustion) surface through
		// CheckLinearizable; feeding a dead session is a no-op.
		t := time.Now()
		_ = rec.sessions[i].Feed(a)
		rec.feedWall += time.Since(t)
		return
	}
	rec.traces[i] = append(rec.traces[i], a)
}

// learn runs the online consistency checks for one (client, slot,
// decision) observation and queues the decision for slot-order replay.
// The command is parsed exactly once, at first learn.
//
// slotVal/learns entries are freed once every client has learned the
// slot and it has been replayed. Under compaction the passive decision
// gossip keeps idle clients learning (smr.go, gossipEnvelope) — their
// gossip learns arrive through this same hook, so the entries drain
// even when half the feeds end early; without compaction an idle
// client stops learning and entries for later slots persist to the end
// of the run.
func (rec *shardRecorder) learn(c msgnet.ProcID, slot int, cmd Command) {
	if prev, ok := rec.slotVal[slot]; ok {
		if prev != cmd {
			rec.fail("slot %d decided both %q and %q", slot, prev, cmd)
		}
	} else {
		rec.slotVal[slot] = cmd
		switch s, submitted := rec.subSlot[cmd]; {
		case !submitted:
			rec.fail("slot %d decided unsubmitted command %q", slot, cmd)
		case s >= 0 && s != slot:
			rec.fail("command %q decided in slots %d and %d", cmd, s, slot)
		default:
			rec.subSlot[cmd] = slot
		}
		entry := slotEntry{}
		if kind, key, arg, ok := cmdParts(cmd); ok {
			if want := ShardOf(key, len(rec.sc.shards)); want != rec.sh.id {
				rec.fail("key %q (shard %d) leaked into shard %d", key, want, rec.sh.id)
			}
			entry.key, entry.kind, entry.arg = key, kind, arg
			if tc := rec.sc.txn; tc != nil && tc.find(key) != "" {
				entry.comp, entry.cmd = true, cmd
				entry.in, entry.reg = txnSingleInput(kind, key, arg)
			} else {
				entry.in, entry.reg = registerInput(kind, arg)
			}
		} else if ts, ok := parseTxnCmd(cmd); ok {
			if ts.shard != rec.sh.id {
				rec.fail("transaction command for shard %d leaked into shard %d", ts.shard, rec.sh.id)
			}
			entry.txn = &ts
		}
		rec.pending[slot] = entry
	}
	rec.learns[slot]++
	if rec.learns[slot] == len(rec.sh.clients) && slot < rec.applied {
		delete(rec.slotVal, slot)
		delete(rec.learns, slot)
	}
}

// land replays the log up to the landed slot and records the response.
func (rec *shardRecorder) land(r SubmitResult) {
	st := &rec.sc.stats
	st.Landed++
	st.TotalLatency += int64(r.Latency())
	st.Switches += int64(r.Switches)
	st.Attempts += int64(r.Attempts)
	fast := r.Switches == 0 && r.Retries == 0
	if fast {
		st.FastPath++
	}
	st.PerShardLanded[rec.sh.id]++
	if we := rec.sc.cfg.WindowEvery; we > 0 {
		b := int(r.End / we)
		for len(st.Windows) <= b {
			s := msgnet.Time(len(st.Windows)) * we
			st.Windows = append(st.Windows, WindowStat{Start: s, End: s + we})
		}
		ws := &st.Windows[b]
		ws.Landed++
		if fast {
			ws.FastPath++
		}
		if r.Retries > 0 {
			ws.Retried++
		}
	}

	for rec.applied <= r.Slot {
		e, ok := rec.pending[rec.applied]
		if !ok {
			// Unreachable by the dense-walk discipline: the landing client
			// learned every slot below its landing slot first.
			rec.fail("hole at slot %d below landed slot %d", rec.applied, r.Slot)
			return
		}
		switch {
		case e.txn != nil:
			if tc := rec.sc.txn; tc != nil {
				if e.txn.prep {
					tc.prepReplayed(rec, e.txn)
				} else {
					tc.outcomeReplayed(rec, e.txn)
				}
			} else {
				rec.fail("transaction command in slot %d without a transaction layer", rec.applied)
			}
			rec.slotOut[rec.applied] = slotReplay{}
		case e.reg && e.comp && rec.locks[e.key] != "":
			// The key is locked by an in-flight transaction: park the
			// operation — its effect and output materialize at unlock, in
			// slot order, so the transaction stays atomic in this shard's
			// total order. It enters the merged history at the unlock
			// drain, not here (see compProc: a lock can stay held for a
			// whole recovery timeout, and every parked operation held open
			// across that window multiplies the frontier).
			rec.waiting[e.key] = append(rec.waiting[e.key], deferredSlot{slot: rec.applied, e: e})
			rec.deferred[rec.applied] = true
		default:
			rp := rec.replaySingle(e)
			if e.comp && e.reg {
				// An unparked component operation enters the merged
				// history as an instantaneous pair at its replay point
				// (see compProc): its output is computed from exactly
				// this state, so it linearizes here by construction, and
				// delayed land events (retries) cannot hold it open.
				tc := rec.sc.txn
				root := tc.find(e.key)
				tc.feedComponent(root, trace.Invoke(compProc(e.cmd), 1, e.in))
				tc.feedComponent(root, trace.Response(compProc(e.cmd), 1, e.in, rp.out))
			}
			rec.slotOut[rec.applied] = rp
		}
		delete(rec.pending, rec.applied)
		if rec.learns[rec.applied] == len(rec.sh.clients) {
			delete(rec.slotVal, rec.applied)
			delete(rec.learns, rec.applied)
		}
		rec.applied++
	}

	rp, ok := rec.slotOut[r.Slot]
	if !ok {
		if rec.deferred[r.Slot] {
			// Landed while its slot is still parked behind a lock: the
			// response is emitted when the transaction resolves.
			rec.landWait[r.Slot] = r.Client
			return
		}
		rec.fail("no replayed output for slot %d", r.Slot)
		return
	}
	delete(rec.slotOut, r.Slot)
	if !rp.reg {
		return // command has no checkable projection (del, txp/txo); no trace
	}
	rec.emitResponse(r.Client, rp)
}

// replaySingle applies one single-key operation to the shard's key
// states and computes its output: through the register fold for
// fast-path keys, directly on the stored value for component keys (the
// TxnKV projection of a single-key command).
func (rec *shardRecorder) replaySingle(e slotEntry) slotReplay {
	rp := slotReplay{key: e.key, in: e.in, reg: e.reg, comp: e.comp}
	if !e.reg {
		return rp
	}
	if e.comp {
		if e.kind == "set" {
			rec.keyState[e.key] = adt.State(e.arg)
			rp.out = adt.WriteOutput()
		} else {
			rp.out = adt.ReadOutput(rec.keyVal(e.key))
		}
		return rp
	}
	s, seen := rec.keyState[e.key]
	if !seen {
		s = rec.reg.Empty()
	}
	rp.out = rec.reg.Out(s, e.in)
	rec.keyState[e.key] = rec.reg.Step(s, e.in)
	return rp
}

// keyVal reads a key's current replayed value (adt.Bottom when unset).
func (rec *shardRecorder) keyVal(key string) trace.Value {
	if s, ok := rec.keyState[key]; ok {
		return trace.Value(s)
	}
	return trace.Value(adt.Bottom)
}

// unlock releases a transaction's lock on key and drains the operations
// parked behind it, in slot order: each applies now, and the ones whose
// land already arrived respond immediately.
func (rec *shardRecorder) unlock(key, id string) {
	if rec.locks[key] != id {
		rec.fail("unlock of %q by transaction %q but lock held by %q", key, id, rec.locks[key])
		return
	}
	delete(rec.locks, key)
	ds := rec.waiting[key]
	delete(rec.waiting, key)
	for _, d := range ds {
		rp := rec.replaySingle(d.e)
		// The parked operation enters the merged history as an
		// instantaneous pair here, at the resolving transaction's
		// unlock — the point where its effect and output actually
		// materialize (see compProc).
		tc := rec.sc.txn
		root := tc.find(d.e.key)
		tc.feedComponent(root, trace.Invoke(compProc(d.e.cmd), 1, d.e.in))
		tc.feedComponent(root, trace.Response(compProc(d.e.cmd), 1, d.e.in, rp.out))
		delete(rec.deferred, d.slot)
		if c, landed := rec.landWait[d.slot]; landed {
			delete(rec.landWait, d.slot)
			rec.emitResponse(c, rp)
		} else {
			rec.slotOut[d.slot] = rp
		}
	}
}

// emitResponse records a replayed operation's response into the key's
// per-key history. Component operations' histories were fully recorded
// at replay/unlock (see compProc), so they are no-ops here.
func (rec *shardRecorder) emitResponse(c msgnet.ProcID, rp slotReplay) {
	if rp.comp {
		return
	}
	i := rec.keyIdx[rp.key]
	a := trace.Response(trace.ClientID(c), 1, rp.in, rp.out)
	if rec.sc.cfg.OnlineCheck {
		t := time.Now()
		_ = rec.sessions[i].Feed(a)
		rec.feedWall += time.Since(t)
		return
	}
	rec.traces[i] = append(rec.traces[i], a)
}
