// Package quorum implements the Quorum speculation phase of §2.1: a
// consensus fast path that decides in two message delays when there is
// neither contention nor faults, and otherwise switches to the next phase
// with the value the paper mandates.
//
// Protocol (verbatim from the paper):
//
//   - On propose(v), a client broadcasts its proposal to all servers,
//     stores v and starts a local timer.
//   - A server that receives a proposal replies with accept(v') where v'
//     is the first proposal it ever received (it always re-sends the same
//     accept).
//   - A client that receives two different accept values switches with its
//     own stored proposal.
//   - A client that receives the same accept(v) from all servers decides v.
//   - When the timer expires the client switches with the value of some
//     accept it has received, waiting for at least one if necessary.
//
// Optional retransmission (off in the paper, configurable here) re-sends
// the proposal so the phase stays live under message loss.
package quorum

import (
	"repro/internal/mpcons"
	"repro/internal/msgnet"
	"repro/internal/trace"
)

// proposeMsg is a client proposal broadcast to servers.
type proposeMsg struct{ V trace.Value }

// acceptMsg is a server's accept reply.
type acceptMsg struct{ V trace.Value }

// Protocol is the Quorum phase protocol.
type Protocol struct {
	// Timeout is the client timer duration; it should exceed one round
	// trip (2 message delays under unit delay). Default 6.
	Timeout msgnet.Time
	// Retransmit, when positive, re-broadcasts the proposal at this
	// period while the operation is unresolved, masking message loss.
	Retransmit msgnet.Time
}

var _ mpcons.PhaseProtocol = Protocol{}

// Name implements PhaseProtocol.
func (Protocol) Name() string { return "quorum" }

func (p Protocol) timeout() msgnet.Time {
	if p.Timeout <= 0 {
		return 6
	}
	return p.Timeout
}

// NewClient implements PhaseProtocol.
func (p Protocol) NewClient(env mpcons.ClientEnv) mpcons.ClientPhase {
	return &client{proto: p, env: env}
}

// NewServer implements PhaseProtocol.
func (p Protocol) NewServer(env mpcons.ServerEnv) mpcons.ServerPhase {
	return &server{env: env}
}

type client struct {
	proto    Protocol
	env      mpcons.ClientEnv
	proposal trace.Value
	active   bool
	// accepts maps server -> accepted value received.
	accepts map[msgnet.ProcID]trace.Value
	// expired marks that the timer fired with no accept received; the
	// client switches upon the next accept (the paper's "waits for at
	// least one message accept(v')").
	expired bool
}

func (c *client) Propose(v trace.Value) {
	c.proposal = v
	c.active = true
	c.expired = false
	c.accepts = map[msgnet.ProcID]trace.Value{}
	c.env.Broadcast(proposeMsg{V: v})
	c.env.SetTimer("timeout", c.proto.timeout())
	if c.proto.Retransmit > 0 {
		c.env.SetTimer("retransmit", c.proto.Retransmit)
	}
}

// SwitchIn treats a transferred operation as a proposal of the switch
// value, allowing Quorum to serve as an intermediate retry phase (the
// paper's phases treat switch calls "as regular proposals").
func (c *client) SwitchIn(pending, sv trace.Value) { c.Propose(sv) }

func (c *client) OnMessage(from msgnet.ProcID, payload any) {
	acc, ok := payload.(acceptMsg)
	if !ok || !c.active {
		return
	}
	if _, seen := c.accepts[from]; !seen {
		c.accepts[from] = acc.V
	}
	if c.expired {
		// Timer already fired: switch with the value of this accept.
		c.finish(func() { c.env.SwitchTo(acc.V) })
		return
	}
	// Two different accept values: contention — switch with own proposal.
	for _, v := range c.accepts {
		if v != acc.V {
			c.finish(func() { c.env.SwitchTo(c.proposal) })
			return
		}
	}
	// Same accept from all servers: decide.
	if len(c.accepts) == len(c.env.Servers()) {
		c.finish(func() { c.env.Decide(acc.V) })
	}
}

func (c *client) OnTimer(name string) {
	if !c.active {
		return
	}
	switch name {
	case "retransmit":
		c.env.Broadcast(proposeMsg{V: c.proposal})
		c.env.SetTimer("retransmit", c.proto.Retransmit)
	case "timeout":
		if len(c.accepts) == 0 {
			// Wait for at least one accept, then switch with its value.
			c.expired = true
			return
		}
		// Switch with the value of some received accept; pick the one
		// from the smallest server ID for determinism.
		var best msgnet.ProcID
		var bestV trace.Value
		for s, v := range c.accepts {
			if best == "" || s < best {
				best, bestV = s, v
			}
		}
		c.finish(func() { c.env.SwitchTo(bestV) })
	}
}

func (c *client) finish(resolve func()) {
	c.active = false
	c.env.CancelTimer("timeout")
	c.env.CancelTimer("retransmit")
	resolve()
}

type server struct {
	env      mpcons.ServerEnv
	accepted trace.Value
	has      bool
}

var _ mpcons.Durable = (*server)(nil)

// serverState is the durable snapshot of a Quorum server: the
// first-received proposal it is committed to accepting forever. It must
// survive crash–recovery — a recovered server re-accepting a different
// first value could complete a second unanimous quorum and split the
// fast path's decision.
type serverState struct {
	Accepted trace.Value
	Has      bool
}

// Snapshot implements mpcons.Durable.
func (s *server) Snapshot() any { return serverState{Accepted: s.accepted, Has: s.has} }

// Restore implements mpcons.Durable.
func (s *server) Restore(snap any) {
	st := snap.(serverState)
	s.accepted, s.has = st.Accepted, st.Has
}

func (s *server) OnMessage(from msgnet.ProcID, payload any) {
	prop, ok := payload.(proposeMsg)
	if !ok {
		return
	}
	if !s.has {
		s.has = true
		s.accepted = prop.V
	}
	s.env.Send(from, acceptMsg{V: s.accepted})
}

func (s *server) OnTimer(string) {}
