package quorum

import (
	"testing"

	"repro/internal/mpcons"
	"repro/internal/msgnet"
	"repro/internal/trace"
)

// fakeClientEnv records a client component's actions.
type fakeClientEnv struct {
	servers []msgnet.ProcID
	sent    []struct {
		to msgnet.ProcID
		m  any
	}
	timers   map[string]msgnet.Time
	decided  *trace.Value
	switched *trace.Value
}

func newFakeClientEnv(nServers int) *fakeClientEnv {
	e := &fakeClientEnv{timers: map[string]msgnet.Time{}}
	for i := 0; i < nServers; i++ {
		e.servers = append(e.servers, msgnet.ProcID(rune('A'+i)))
	}
	return e
}

func (e *fakeClientEnv) Self() msgnet.ProcID      { return "client" }
func (e *fakeClientEnv) ClientIndex() int         { return 0 }
func (e *fakeClientEnv) Clients() []msgnet.ProcID { return []msgnet.ProcID{"client"} }
func (e *fakeClientEnv) Servers() []msgnet.ProcID { return e.servers }
func (e *fakeClientEnv) Now() msgnet.Time         { return 0 }
func (e *fakeClientEnv) Send(to msgnet.ProcID, m any) {
	e.sent = append(e.sent, struct {
		to msgnet.ProcID
		m  any
	}{to, m})
}
func (e *fakeClientEnv) Broadcast(m any) {
	for _, s := range e.servers {
		e.Send(s, m)
	}
}
func (e *fakeClientEnv) SetTimer(name string, d msgnet.Time) { e.timers[name] = d }
func (e *fakeClientEnv) CancelTimer(name string)             { delete(e.timers, name) }
func (e *fakeClientEnv) Decide(v trace.Value)                { e.decided = &v }
func (e *fakeClientEnv) SwitchTo(sv trace.Value)             { e.switched = &sv }

var _ mpcons.ClientEnv = (*fakeClientEnv)(nil)

func TestClientDecidesOnUnanimousAccepts(t *testing.T) {
	env := newFakeClientEnv(3)
	c := Protocol{}.NewClient(env)
	c.Propose("v")
	if len(env.sent) != 3 {
		t.Fatalf("proposal not broadcast: %v", env.sent)
	}
	c.OnMessage("A", acceptMsg{V: "v"})
	c.OnMessage("B", acceptMsg{V: "v"})
	if env.decided != nil {
		t.Fatal("decided before all servers answered")
	}
	c.OnMessage("C", acceptMsg{V: "v"})
	if env.decided == nil || *env.decided != "v" {
		t.Fatalf("decided = %v", env.decided)
	}
	if env.switched != nil {
		t.Fatal("switched as well as decided")
	}
}

func TestClientSwitchesOnConflict(t *testing.T) {
	env := newFakeClientEnv(3)
	c := Protocol{}.NewClient(env)
	c.Propose("mine")
	c.OnMessage("A", acceptMsg{V: "x"})
	c.OnMessage("B", acceptMsg{V: "y"})
	if env.switched == nil || *env.switched != "mine" {
		t.Fatalf("conflict must switch with own proposal; got %v", env.switched)
	}
}

func TestClientTimeoutSwitchesWithWitnessedValue(t *testing.T) {
	env := newFakeClientEnv(3)
	c := Protocol{}.NewClient(env)
	c.Propose("mine")
	c.OnMessage("B", acceptMsg{V: "w"})
	c.OnTimer("timeout")
	if env.switched == nil || *env.switched != "w" {
		t.Fatalf("timeout must switch with a witnessed accept value; got %v", env.switched)
	}
}

func TestClientTimeoutWaitsForFirstAccept(t *testing.T) {
	env := newFakeClientEnv(3)
	c := Protocol{}.NewClient(env)
	c.Propose("mine")
	c.OnTimer("timeout")
	if env.switched != nil {
		t.Fatal("switched with no accept witnessed")
	}
	c.OnMessage("C", acceptMsg{V: "z"})
	if env.switched == nil || *env.switched != "z" {
		t.Fatalf("late accept must trigger the deferred switch; got %v", env.switched)
	}
}

func TestClientIgnoresStrayMessagesWhenInactive(t *testing.T) {
	env := newFakeClientEnv(3)
	c := Protocol{}.NewClient(env)
	c.OnMessage("A", acceptMsg{V: "v"}) // before any proposal
	if env.decided != nil || env.switched != nil {
		t.Fatal("inactive client acted on a stray message")
	}
}

// fakeServerEnv records replies.
type fakeServerEnv struct {
	replies []struct {
		to msgnet.ProcID
		m  any
	}
}

func (e *fakeServerEnv) Self() msgnet.ProcID      { return "S" }
func (e *fakeServerEnv) Clients() []msgnet.ProcID { return nil }
func (e *fakeServerEnv) Servers() []msgnet.ProcID { return nil }
func (e *fakeServerEnv) Now() msgnet.Time         { return 0 }
func (e *fakeServerEnv) Send(to msgnet.ProcID, m any) {
	e.replies = append(e.replies, struct {
		to msgnet.ProcID
		m  any
	}{to, m})
}
func (e *fakeServerEnv) SetTimer(string, msgnet.Time) {}

var _ mpcons.ServerEnv = (*fakeServerEnv)(nil)

// Figure-level behavior: a server always replies with the FIRST proposal
// it received, to every proposer.
func TestServerAcceptsFirstProposalForever(t *testing.T) {
	env := &fakeServerEnv{}
	s := Protocol{}.NewServer(env)
	s.OnMessage("c1", proposeMsg{V: "first"})
	s.OnMessage("c2", proposeMsg{V: "second"})
	s.OnMessage("c1", proposeMsg{V: "third"})
	if len(env.replies) != 3 {
		t.Fatalf("replies: %v", env.replies)
	}
	for i, r := range env.replies {
		if r.m.(acceptMsg).V != "first" {
			t.Fatalf("reply %d = %v, want accept(first)", i, r.m)
		}
	}
	if env.replies[0].to != "c1" || env.replies[1].to != "c2" {
		t.Fatalf("replies addressed wrongly: %v", env.replies)
	}
}
