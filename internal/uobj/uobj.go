// Package uobj implements the paper's universal construction (§6)
// operationally: a linearizable object of an ARBITRARY abstract data type
// built on the speculative message-passing substrate.
//
// §6 observes that the universal ADT — whose output function is the
// identity — abstracts generic state machine replication: "given a
// linearizable implementation, it suffices to apply the output function
// of another ADT A to the responses in order to obtain an implementation
// of A". Here the linearizable universal object is the speculative SMR
// log (per-slot Quorum fast path + Paxos backup, or Paxos alone): an
// operation's input is appended to the replicated log, and its output is
// the ADT's output function applied to the log prefix ending at its slot.
//
// Inputs are tagged per invocation (occurrence identity, required both by
// the log's slot-uniqueness and by the repeated-events subtleties of the
// checkers); ADT semantics ignore tags.
package uobj

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/lin"
	"repro/internal/msgnet"
	"repro/internal/smr"
	"repro/internal/trace"
)

// OpResult describes one completed operation.
type OpResult struct {
	Client msgnet.ProcID
	// Input is the tagged ADT input as it appears in the log and trace.
	Input trace.Value
	// Output is f_T applied to the log prefix ending at the input's slot.
	Output trace.Value
	Slot   int
	Start  msgnet.Time
	End    msgnet.Time
}

// Latency returns the operation's latency in message delays.
func (r OpResult) Latency() msgnet.Time { return r.End - r.Start }

// Object is a linearizable replicated object of an arbitrary ADT.
type Object struct {
	f       adt.Folder
	cluster *smr.Cluster
	rec     *core.Recorder
	seq     map[msgnet.ProcID]int
	results []OpResult
}

// Build wires a replicated object of ADT f into net using an SMR cluster
// with the given configuration.
func Build(net *msgnet.Network, clients, servers []msgnet.ProcID, f adt.Folder, cfg smr.Config) (*Object, error) {
	cluster, err := smr.Build(net, clients, servers, cfg)
	if err != nil {
		return nil, err
	}
	o := &Object{
		f:       f,
		cluster: cluster,
		rec:     core.NewRecorder(),
		seq:     map[msgnet.ProcID]int{},
	}
	cluster.SetHooks(
		func(c msgnet.ProcID, cmd smr.Command, at msgnet.Time) {
			o.rec.Record(trace.Invoke(trace.ClientID(c), 1, cmd))
		},
		func(r smr.SubmitResult) {
			out, err := o.outputAt(r.Client, r.Slot)
			if err != nil {
				panic(fmt.Sprintf("uobj: %v", err)) // ADT misuse; inputs were validated
			}
			o.rec.Record(trace.Response(trace.ClientID(r.Client), 1, r.Cmd, out))
			o.results = append(o.results, OpResult{
				Client: r.Client,
				Input:  r.Cmd,
				Output: out,
				Slot:   r.Slot,
				Start:  r.Start,
				End:    r.End,
			})
		},
	)
	return o, nil
}

// outputAt applies f to the client's log prefix [0..slot]. The SMR client
// learns every slot up to the one it lands in (it sweeps slots from 0),
// so the prefix is complete.
func (o *Object) outputAt(c msgnet.ProcID, slot int) (trace.Value, error) {
	log := o.cluster.Log(c)
	h := make(trace.History, 0, slot+1)
	for s := 0; s <= slot; s++ {
		cmd, ok := log[s]
		if !ok {
			return "", fmt.Errorf("hole at slot %d below landing slot %d", s, slot)
		}
		h = append(h, cmd)
	}
	return o.f.Apply(h)
}

// InvokeAt schedules client c to invoke input in at time t. The input is
// validated against the ADT and tagged with a per-client occurrence id.
// Clients are sequential: concurrent invocations by one client queue.
func (o *Object) InvokeAt(c msgnet.ProcID, in trace.Value, t msgnet.Time) error {
	if !o.f.ValidInput(in) {
		return fmt.Errorf("uobj: %q is not a valid %s input", in, o.f.Name())
	}
	o.seq[c]++
	tagged := adt.Tag(in, string(c)+"#"+strconv.Itoa(o.seq[c]))
	o.cluster.SubmitAt(c, tagged, t)
	return nil
}

// Run advances the simulation.
func (o *Object) Run(maxTime msgnet.Time) msgnet.Time { return o.cluster.Run(maxTime) }

// Results returns completed operations in completion order.
func (o *Object) Results() []OpResult { return append([]OpResult{}, o.results...) }

// Trace returns the object-level trace (invocations and responses).
func (o *Object) Trace() trace.Trace { return o.rec.Trace() }

// CheckLinearizable verifies the recorded trace against the ADT with the
// exact checker (checker API v2: context-aware, functional options).
func (o *Object) CheckLinearizable(ctx context.Context, opts ...check.Option) (lin.Result, error) {
	return lin.Check(ctx, o.f, o.Trace(), opts...)
}

// NewCheckSession opens an incremental checker session over the object's
// ADT; callers can stream the recorded trace through it as operations
// land instead of re-checking post hoc.
func (o *Object) NewCheckSession(ctx context.Context, opts ...check.Option) *lin.Session {
	return lin.NewSession(ctx, o.f, opts...)
}
