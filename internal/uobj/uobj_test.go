package uobj

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/adt"
	"repro/internal/lin"
	"repro/internal/msgnet"
	"repro/internal/smr"
	"repro/internal/trace"
)

func ids(prefix string, n int) []msgnet.ProcID {
	out := make([]msgnet.ProcID, n)
	for i := range out {
		out[i] = msgnet.ProcID(fmt.Sprintf("%s%d", prefix, i+1))
	}
	return out
}

func buildObj(t *testing.T, f adt.Folder, seed int64, jitter msgnet.Time, clients int) *Object {
	t.Helper()
	w := msgnet.New(msgnet.Config{Seed: seed, MinDelay: 1, MaxDelay: jitter})
	o, err := Build(w, ids("c", clients), ids("s", 3), f,
		smr.Config{FastPath: true, QuorumTimeout: 10, Retransmit: 6})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func mustLinearizable(t *testing.T, o *Object, seed int64) {
	t.Helper()
	res, err := o.CheckLinearizable(context.Background())
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	if !res.OK {
		t.Fatalf("seed %d: replicated object trace not linearizable: %s\n%v",
			seed, res.Reason, o.Trace())
	}
	if err := lin.VerifyWitness(o.f, o.Trace(), res.Witness); err != nil {
		t.Fatalf("seed %d: invalid witness: %v", seed, err)
	}
}

// A replicated REGISTER: concurrent writes and reads from two clients
// stay linearizable across seeds — the §6 universal construction carries
// any ADT, not just consensus.
func TestReplicatedRegister(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		o := buildObj(t, adt.Register{}, seed, 3, 2)
		if err := o.InvokeAt("c1", adt.WriteInput("x"), 0); err != nil {
			t.Fatal(err)
		}
		if err := o.InvokeAt("c2", adt.ReadInput(), 0); err != nil {
			t.Fatal(err)
		}
		if err := o.InvokeAt("c1", adt.WriteInput("y"), 15); err != nil {
			t.Fatal(err)
		}
		if err := o.InvokeAt("c2", adt.ReadInput(), 16); err != nil {
			t.Fatal(err)
		}
		o.Run(500_000)
		if len(o.Results()) != 4 {
			t.Fatalf("seed %d: completed %d/4", seed, len(o.Results()))
		}
		mustLinearizable(t, o, seed)
	}
}

// A sequential read after a completed write observes it (real-time order
// through the replicated log).
func TestRegisterReadsOwnWrite(t *testing.T) {
	o := buildObj(t, adt.Register{}, 3, 1, 1)
	if err := o.InvokeAt("c1", adt.WriteInput("v"), 0); err != nil {
		t.Fatal(err)
	}
	if err := o.InvokeAt("c1", adt.ReadInput(), 50); err != nil {
		t.Fatal(err)
	}
	o.Run(500_000)
	rs := o.Results()
	if len(rs) != 2 {
		t.Fatalf("completed %d/2", len(rs))
	}
	if rs[1].Output != adt.ReadOutput("v") {
		t.Fatalf("read returned %q", rs[1].Output)
	}
	mustLinearizable(t, o, 3)
}

// A replicated QUEUE: concurrent enqueues and dequeues from three clients
// preserve FIFO per the linearizability oracle.
func TestReplicatedQueue(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		o := buildObj(t, adt.Queue{}, seed, 3, 3)
		if err := o.InvokeAt("c1", adt.EnqInput("a"), 0); err != nil {
			t.Fatal(err)
		}
		if err := o.InvokeAt("c2", adt.EnqInput("b"), 0); err != nil {
			t.Fatal(err)
		}
		if err := o.InvokeAt("c3", adt.DeqInput(), 2); err != nil {
			t.Fatal(err)
		}
		if err := o.InvokeAt("c1", adt.DeqInput(), 20); err != nil {
			t.Fatal(err)
		}
		if err := o.InvokeAt("c2", adt.DeqInput(), 21); err != nil {
			t.Fatal(err)
		}
		o.Run(500_000)
		if len(o.Results()) != 5 {
			t.Fatalf("seed %d: completed %d/5", seed, len(o.Results()))
		}
		mustLinearizable(t, o, seed)
	}
}

// A replicated COUNTER under a crashed replica: the object survives a
// minority crash and stays linearizable.
func TestReplicatedCounterUnderCrash(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		w := msgnet.New(msgnet.Config{Seed: seed, MinDelay: 1, MaxDelay: 2})
		o, err := Build(w, ids("c", 2), ids("s", 3), adt.Counter{},
			smr.Config{FastPath: true, QuorumTimeout: 10, Retransmit: 6})
		if err != nil {
			t.Fatal(err)
		}
		w.Crash("s1", 3)
		for j := 0; j < 3; j++ {
			if err := o.InvokeAt("c1", adt.IncInput(), msgnet.Time(j*30)); err != nil {
				t.Fatal(err)
			}
			if err := o.InvokeAt("c2", adt.GetInput(), msgnet.Time(j*30+1)); err != nil {
				t.Fatal(err)
			}
		}
		o.Run(500_000)
		if len(o.Results()) != 6 {
			t.Fatalf("seed %d: completed %d/6", seed, len(o.Results()))
		}
		mustLinearizable(t, o, seed)
	}
}

// The final counter value equals the number of increments (a semantic
// end-to-end check beyond linearizability).
func TestCounterFinalValue(t *testing.T) {
	o := buildObj(t, adt.Counter{}, 9, 1, 1)
	for j := 0; j < 5; j++ {
		if err := o.InvokeAt("c1", adt.IncInput(), msgnet.Time(j*10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := o.InvokeAt("c1", adt.GetInput(), 100); err != nil {
		t.Fatal(err)
	}
	o.Run(500_000)
	rs := o.Results()
	if len(rs) != 6 {
		t.Fatalf("completed %d/6", len(rs))
	}
	last := rs[len(rs)-1]
	if last.Output != adt.CountOutput(5) {
		t.Fatalf("final count %q, want n:5", last.Output)
	}
	mustLinearizable(t, o, 9)
}

func TestInvalidInputRejected(t *testing.T) {
	o := buildObj(t, adt.Register{}, 1, 1, 1)
	if err := o.InvokeAt("c1", "garbage", 0); err == nil {
		t.Fatal("invalid input accepted")
	}
}

// Repeated identical semantic inputs from different clients (occurrence
// tagging at work): two clients write the same value, two read.
func TestRepeatedInputsAcrossClients(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		o := buildObj(t, adt.Register{}, seed, 3, 2)
		if err := o.InvokeAt("c1", adt.WriteInput("same"), 0); err != nil {
			t.Fatal(err)
		}
		if err := o.InvokeAt("c2", adt.WriteInput("same"), 0); err != nil {
			t.Fatal(err)
		}
		if err := o.InvokeAt("c1", adt.ReadInput(), 20); err != nil {
			t.Fatal(err)
		}
		if err := o.InvokeAt("c2", adt.ReadInput(), 20); err != nil {
			t.Fatal(err)
		}
		o.Run(500_000)
		if len(o.Results()) != 4 {
			t.Fatalf("seed %d: completed %d/4", seed, len(o.Results()))
		}
		mustLinearizable(t, o, seed)
	}
}

// trace sanity: the recorded object trace is plain (no switch actions) and
// well-formed.
func TestTraceShape(t *testing.T) {
	o := buildObj(t, adt.Register{}, 5, 2, 2)
	_ = o.InvokeAt("c1", adt.WriteInput("x"), 0)
	_ = o.InvokeAt("c2", adt.ReadInput(), 1)
	o.Run(500_000)
	tr := o.Trace()
	if !tr.WellFormed() {
		t.Fatalf("trace ill-formed: %v", tr)
	}
	for _, a := range tr {
		if a.Kind == trace.Swi {
			t.Fatal("object trace must not contain switch actions")
		}
	}
}
