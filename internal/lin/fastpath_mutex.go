package lin

import (
	"repro/internal/adt"
	"repro/internal/trace"
)

// fastMutex is the streaming mutex fast path (DESIGN.md, decision 15):
// a lazy greedy simulation of the lock/unlock alternation, specialized
// to the all-acquires-succeed fragment — grammar-valid inputs with
// pairwise-distinct input strings whose outputs are all "ok:" (an
// "err:*" output is semantically explainable by the mutex ADT, so it
// falls back to the exact engines rather than rejecting).
//
// The core maintains one growing alternating chain of linearized
// inputs plus the simulated lock state, linearizing as late as
// possible: an operation linearizes at its own response, and when its
// response finds the wrong state, one *pending* operation of the
// opposite kind — the oldest-invoked unassigned one — is linearized
// first as a helper ("assigned" a chain position it claims when its
// own response later arrives). Accepts are certain: the simulation is
// itself a legal alternation with every linearization point inside its
// operation's interval, and Witness() replays it.
//
// Rejects are certain too, but come from a separate counting argument
// rather than the greedy: in any linearization the sequence alternates
// lock, unlock, lock, ... and every responded operation has already
// linearized, so at every trace moment the linearized lock count k and
// unlock count j satisfy k − j ∈ {0, 1}, RL ≤ k ≤ RL+PL and
// RU ≤ j ≤ RU+PU (R = responded, P = invoked-but-pending). A moment
// with RU > RL + PL (an unlock nothing can precede) or
// RL > RU + PU + 1 (two acquires no release can separate) therefore
// defeats every linearization. A broken lock shows up as the latter
// the first time two holders' acquires respond while no release is in
// flight. When the greedy sticks without the counters firing (a
// helper choice taken earlier turns out locally wrong), the core exits
// the fragment and the exact engines decide — rejects never depend on
// the greedy's completeness.
type fastMutex struct {
	seen   map[trace.Value]struct{}
	ops    map[int]*mutexOp // by invocation trace index
	pool   [2][]int         // unassigned pending invIdxs per kind, oldest first
	poolLo [2]int           // consumed prefix of pool (lazy deletion)
	locked bool
	chain  trace.History
	marks  []resMark
	rl, ru int // responded locks/unlocks
	pl, pu int // invoked-but-pending locks/unlocks
}

// resMark records that response index res claims the chain prefix of
// length k; Witness materializes the map lazily.
type resMark struct {
	res, k int
}

type mutexOp struct {
	lock     bool
	in       trace.Value
	assigned bool // linearized as a helper; pos holds its chain prefix
	done     bool // responded (hence linearized)
	pos      int
}

const (
	kindLock = iota
	kindUnlock
)

func newFastMutex() *fastMutex {
	return &fastMutex{
		seen: map[trace.Value]struct{}{},
		ops:  map[int]*mutexOp{},
	}
}

// Inv implements FastChecker.
func (m *fastMutex) Inv(in trace.Value, idx int) FastStatus {
	if _, dup := m.seen[in]; dup {
		return FastExit
	}
	m.seen[in] = struct{}{}
	var lock bool
	switch adt.Untag(in) {
	case adt.LockInput():
		lock = true
		m.pl++
	case adt.UnlockInput():
		m.pu++
	default:
		return FastExit
	}
	m.ops[idx] = &mutexOp{lock: lock, in: in}
	m.pool[kindOf(lock)] = append(m.pool[kindOf(lock)], idx)
	return FastOK
}

func kindOf(lock bool) int {
	if lock {
		return kindLock
	}
	return kindUnlock
}

// Res implements FastChecker.
func (m *fastMutex) Res(in, out trace.Value, invIdx, idx int) FastStatus {
	if out != adt.WriteOutput() {
		return FastExit // "err:*" (or garbage) outputs: exact semantics decide
	}
	o := m.ops[invIdx]
	if o.lock {
		m.rl, m.pl = m.rl+1, m.pl-1
	} else {
		m.ru, m.pu = m.ru+1, m.pu-1
	}
	// The counting necessary conditions; violating either defeats every
	// linearization, so the verdict is final.
	if m.ru > m.rl+m.pl || m.rl > m.ru+m.pu+1 {
		return FastReject
	}
	o.done = true
	if o.assigned {
		m.marks = append(m.marks, resMark{res: idx, k: o.pos})
		return FastOK
	}
	if m.locked == o.lock {
		// Wrong state: linearize the oldest pending opposite-kind helper.
		h := m.takeOldest(kindOf(!o.lock))
		if h == nil {
			return FastExit // greedy stuck without a counter violation
		}
		m.append(h)
	}
	m.append(o)
	m.marks = append(m.marks, resMark{res: idx, k: o.pos})
	return FastOK
}

// takeOldest pops the oldest unassigned still-pending operation of the
// given kind, or nil.
func (m *fastMutex) takeOldest(kind int) *mutexOp {
	pool := m.pool[kind]
	for m.poolLo[kind] < len(pool) {
		o := m.ops[pool[m.poolLo[kind]]]
		m.poolLo[kind]++
		if !o.assigned && !o.done {
			return o
		}
	}
	return nil
}

// append linearizes o: its input joins the chain and the state flips.
func (m *fastMutex) append(o *mutexOp) {
	m.chain = append(m.chain, o.in)
	o.pos = len(m.chain)
	o.assigned = true
	m.locked = o.lock
}

// Witness implements FastChecker: every response claims the chain
// prefix ending at its operation's linearization point.
func (m *fastMutex) Witness() Witness {
	w := Witness{}
	for _, mk := range m.marks {
		w[mk.res] = m.chain[:mk.k].Clone()
	}
	return w
}
