package lin

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
	"repro/internal/workload"
)

// sessionTestTraces generates a randomized mix of clean and corrupted
// traces across ADTs, mirroring the E8 workload.
func sessionTestTraces(seed int64, n int) []struct {
	f  adt.Folder
	tr trace.Trace
} {
	r := rand.New(rand.NewSource(seed))
	cases := []struct {
		f      adt.Folder
		inputs []trace.Value
	}{
		{adt.Consensus{}, []trace.Value{adt.ProposeInput("a"), adt.ProposeInput("b")}},
		{adt.Register{}, []trace.Value{adt.WriteInput("x"), adt.ReadInput()}},
		{adt.Counter{}, []trace.Value{adt.IncInput(), adt.GetInput()}},
		{adt.Queue{}, []trace.Value{adt.EnqInput("x"), adt.DeqInput()}},
	}
	out := make([]struct {
		f  adt.Folder
		tr trace.Trace
	}, n)
	for i := range out {
		tc := cases[i%len(cases)]
		opts := workload.TraceOpts{
			Clients: 2 + r.Intn(2), Ops: 3 + r.Intn(4), Inputs: tc.inputs,
			PendingProb: 0.2, UniqueTags: i%3 != 0,
		}
		if i%2 == 1 {
			opts.CorruptProb = 0.5
		}
		out[i].f = tc.f
		out[i].tr = workload.Random(tc.f, r, opts)
	}
	return out
}

// TestSessionAgreesWithCheck is the incremental engine's property test:
// feeding a randomized trace action by action must reproduce the one-shot
// Check verdict on EVERY prefix, and a NotLinearizable session verdict
// must be final.
func TestSessionAgreesWithCheck(t *testing.T) {
	ctx := context.Background()
	for i, tc := range sessionTestTraces(71, 200) {
		s := NewSession(ctx, tc.f)
		sawNotLin := false
		for k, a := range tc.tr {
			if err := s.Feed(a); err != nil {
				t.Fatalf("case %d feed %d: %v", i, k, err)
			}
			prefix := tc.tr[:k+1]
			want, err := Check(ctx, tc.f, prefix)
			if err != nil {
				t.Fatalf("case %d prefix %d: %v", i, k+1, err)
			}
			got, err := s.Result()
			if err != nil {
				t.Fatalf("case %d prefix %d session: %v", i, k+1, err)
			}
			if got.OK != want.OK {
				t.Fatalf("case %d prefix %d: session %v, one-shot %v\nprefix: %v",
					i, k+1, got.OK, want.OK, prefix)
			}
			if sawNotLin && got.OK {
				t.Fatalf("case %d prefix %d: NotLinearizable verdict was not final\nprefix: %v", i, k+1, prefix)
			}
			sawNotLin = sawNotLin || !got.OK
			if got.OK && len(got.Witness) > 0 {
				if err := VerifyWitness(tc.f, prefix, got.Witness); err != nil {
					t.Fatalf("case %d prefix %d: session witness invalid: %v", i, k+1, err)
				}
			}
		}
	}
}

// TestWorkersAgree asserts the breadth engine (WithWorkers > 1) returns
// the verdicts of the sequential engines on randomized traces, and that
// its witnesses verify.
func TestWorkersAgree(t *testing.T) {
	ctx := context.Background()
	for i, tc := range sessionTestTraces(172, 150) {
		seq, err := Check(ctx, tc.f, tc.tr, check.WithWorkers(1))
		if err != nil {
			t.Fatalf("case %d sequential: %v", i, err)
		}
		for _, workers := range []int{2, 8} {
			par, err := Check(ctx, tc.f, tc.tr, check.WithWorkers(workers))
			if err != nil {
				t.Fatalf("case %d workers=%d: %v", i, workers, err)
			}
			if par.OK != seq.OK {
				t.Fatalf("case %d workers=%d: parallel %v, sequential %v\ntrace: %v",
					i, workers, par.OK, seq.OK, tc.tr)
			}
			if par.OK {
				if err := VerifyWitness(tc.f, tc.tr, par.Witness); err != nil {
					t.Fatalf("case %d workers=%d: witness invalid: %v", i, workers, err)
				}
			}
		}
	}
}

// TestSessionBudgetExhaustion drives a session into budget exhaustion and
// asserts the error is terminal with verdict Unknown.
func TestSessionBudgetExhaustion(t *testing.T) {
	in := adt.ProposeInput("a")
	s := NewSession(context.Background(), adt.Consensus{}, check.WithBudget(1))
	var err error
	for c := 0; c < 8 && err == nil; c++ {
		cid := trace.ClientID(rune('a' + c))
		if err = s.Feed(trace.Invoke(cid, 1, in)); err != nil {
			break
		}
		err = s.Feed(trace.Response(cid, 1, in, adt.DecideOutput("a")))
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
	if v := s.Verdict(); v != check.Unknown {
		t.Fatalf("verdict after budget exhaustion = %v, want Unknown", v)
	}
	if _, rerr := s.Result(); !errors.Is(rerr, ErrBudget) {
		t.Fatalf("Result after exhaustion = %v, want ErrBudget", rerr)
	}
	// The error is sticky.
	if ferr := s.Feed(trace.Invoke("z", 1, in)); !errors.Is(ferr, ErrBudget) {
		t.Fatalf("Feed after exhaustion = %v, want ErrBudget", ferr)
	}
}

// TestSessionFeedBudget pins the per-feed budget semantics
// (check.WithFeedBudget): the spend counter rebases at every Feed, so a
// long stream of cheap increments never exhausts a budget that the same
// stream blows through cumulatively — that is what lets one session
// check an unbounded stream online — while a single Feed that overruns
// the allowance is still the terminal ErrBudget.
func TestSessionFeedBudget(t *testing.T) {
	in := adt.ProposeInput("a")
	feed := func(s *Session, pairs int) error {
		for c := 0; c < pairs; c++ {
			cid := trace.ClientID(rune('a' + c%26))
			if err := s.Feed(trace.Invoke(cid, 1, in)); err != nil {
				return err
			}
			if err := s.Feed(trace.Response(cid, 1, in, adt.DecideOutput("a"))); err != nil {
				return err
			}
		}
		return nil
	}
	const budget = 20
	cum := NewSession(context.Background(), adt.Consensus{}, check.WithBudget(budget))
	if err := feed(cum, 64); !errors.Is(err, ErrBudget) {
		t.Fatalf("cumulative budget %d survived the stream: %v", budget, err)
	}
	per := NewSession(context.Background(), adt.Consensus{},
		check.WithBudget(budget), check.WithFeedBudget(true))
	if err := feed(per, 64); err != nil {
		t.Fatalf("per-feed budget %d exhausted on cheap increments: %v", budget, err)
	}
	if r, err := per.Result(); err != nil || !r.OK {
		t.Fatalf("per-feed session result = %+v, %v", r, err)
	}
	// One expensive Feed still exhausts: seven concurrent proposals make
	// the deciding response's expansion overrun the per-feed allowance,
	// and the error stays sticky.
	wide := NewSession(context.Background(), adt.Consensus{},
		check.WithBudget(4), check.WithFeedBudget(true))
	var err error
	for c := 0; c < 7 && err == nil; c++ {
		err = wide.Feed(trace.Invoke(trace.ClientID(rune('a'+c)), 1, adt.ProposeInput(string(rune('a'+c)))))
	}
	if err == nil {
		err = wide.Feed(trace.Response("a", 1, adt.ProposeInput("a"), adt.DecideOutput("a")))
	}
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("expensive feed under per-feed budget = %v, want ErrBudget", err)
	}
	if ferr := wide.Feed(trace.Invoke("z", 1, in)); !errors.Is(ferr, ErrBudget) {
		t.Fatalf("per-feed budget error not sticky: %v", ferr)
	}
}

// TestSessionCancellation cancels the session's context mid-stream and
// asserts the session reports the context error and verdict Unknown.
func TestSessionCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s := NewSession(ctx, adt.Consensus{})
	in := adt.ProposeInput("a")
	if err := s.Feed(trace.Invoke("c1", 1, in)); err != nil {
		t.Fatal(err)
	}
	cancel()
	if err := s.Feed(trace.Response("c1", 1, in, adt.DecideOutput("a"))); !errors.Is(err, context.Canceled) {
		t.Fatalf("Feed after cancel = %v, want context.Canceled", err)
	}
	if v := s.Verdict(); v != check.Unknown {
		t.Fatalf("verdict after cancel = %v, want Unknown", v)
	}
}

// TestCheckCancellation cancels a one-shot check up front for both
// engines.
func TestCheckCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tcs := sessionTestTraces(3, 8)
	for _, workers := range []int{1, 4} {
		sawCancel := false
		for _, tc := range tcs {
			_, err := Check(ctx, tc.f, tc.tr, check.WithWorkers(workers))
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("workers=%d: unexpected error %v", workers, err)
			}
			sawCancel = sawCancel || errors.Is(err, context.Canceled)
		}
		if !sawCancel {
			t.Fatalf("workers=%d: no check observed the cancelled context", workers)
		}
	}
}

// TestSessionMemoLimit asserts the frontier bound surfaces as ErrMemo.
func TestSessionMemoLimit(t *testing.T) {
	// Five distinct concurrent proposals plus a deciding response: every
	// chain starting with "a" is a live configuration, so the frontier
	// far exceeds the limit of 2.
	var tr trace.Trace
	for c, v := range []string{"a", "b", "c", "d", "e"} {
		tr = append(tr, trace.Invoke(trace.ClientID(rune('a'+c)), 1, adt.ProposeInput(v)))
	}
	tr = append(tr,
		trace.Invoke("f", 1, adt.ProposeInput("a")),
		trace.Response("f", 1, adt.ProposeInput("a"), adt.DecideOutput("a")),
	)
	s := NewSession(context.Background(), adt.Consensus{}, check.WithMemoLimit(2))
	var err error
	for _, a := range tr {
		if err = s.Feed(a); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrMemo) {
		t.Fatalf("expected ErrMemo, got %v", err)
	}
}

// TestSessionIllFormed asserts ill-formed feeds yield the one-shot
// verdict (NotLinearizable, not an error) and stay final.
func TestSessionIllFormed(t *testing.T) {
	s := NewSession(context.Background(), adt.Consensus{})
	in := adt.ProposeInput("a")
	if err := s.Feed(trace.Response("c1", 1, in, adt.DecideOutput("a"))); err != nil {
		t.Fatalf("ill-formed feed must not error: %v", err)
	}
	r, err := s.Result()
	if err != nil || r.OK || r.Reason != "trace is not well-formed" {
		t.Fatalf("got %+v, %v", r, err)
	}
	// Feeding well-formed actions afterwards cannot revive the verdict.
	if err := s.Feed(trace.Invoke("c2", 1, in)); err != nil {
		t.Fatal(err)
	}
	if v := s.Verdict(); v != check.NotLinearizable {
		t.Fatalf("verdict = %v, want NotLinearizable", v)
	}
}

// TestSessionStreamingAllocsFlat is the leak test for the compacted
// streaming engine (DESIGN.md, decision 17): one long-lived exact
// session fed three consecutive 100k-op capture-shaped segments —
// sequential runs with a periodic two-client overlap burst — must
// allocate at a flat per-op rate. A frontier, pool, or digest cache
// that grows with history length shows up as a rising per-segment rate
// long before it shows up as memory.
func TestSessionStreamingAllocsFlat(t *testing.T) {
	s := NewSession(context.Background(), adt.Register{}, check.WithWitness(false))
	wA, wB := adt.WriteInput("a"), adt.WriteInput("b")
	rd := adt.ReadInput()
	last := trace.Value("a")
	do := func(c trace.ClientID, in, out trace.Value) error {
		if err := s.Feed(trace.Invoke(c, 1, in)); err != nil {
			return err
		}
		return s.Feed(trace.Response(c, 1, in, out))
	}
	step := 0
	feed := func(n int) error {
		for i := 0; i < n; i++ {
			m := step % 16
			step++
			switch {
			case m == 14:
				// Overlap burst: q's write overlaps p's read; the read
				// observes it (linearizable: write before read).
				if err := s.Feed(trace.Invoke("p", 1, rd)); err != nil {
					return err
				}
				if err := do("q", wB, adt.WriteOutput()); err != nil {
					return err
				}
				if err := s.Feed(trace.Response("p", 1, rd, adt.ReadOutput("b"))); err != nil {
					return err
				}
				last = "b"
			case m%2 == 0:
				if err := do("p", wA, adt.WriteOutput()); err != nil {
					return err
				}
				last = "a"
			default:
				if err := do("p", rd, adt.ReadOutput(last)); err != nil {
					return err
				}
			}
		}
		return nil
	}
	segment := func(n int) float64 {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		if err := feed(n); err != nil {
			t.Fatalf("op %d: %v", step, err)
		}
		runtime.ReadMemStats(&m1)
		return float64(m1.Mallocs-m0.Mallocs) / float64(n)
	}
	const opsPerSeg = 100_000
	var rates [3]float64
	for i := range rates {
		rates[i] = segment(opsPerSeg)
	}
	if r, err := s.Result(); err != nil || !r.OK {
		t.Fatalf("stream result = %+v, %v", r, err)
	}
	// Flatness, not absolute count: later segments must not allocate
	// meaningfully more per op than the first (the +1 absorbs GC and
	// map-rehash noise at near-zero rates).
	for i := 1; i < len(rates); i++ {
		if rates[i] > 2*rates[0]+1 {
			t.Fatalf("allocs/op grew across segments: %.3f, %.3f, %.3f",
				rates[0], rates[1], rates[2])
		}
	}
}

// FuzzSessionAgreesWithCheck drives random action sequences (including
// ill-formed ones) through a session and the one-shot checker.
func FuzzSessionAgreesWithCheck(f *testing.F) {
	f.Add(int64(1), uint8(6))
	f.Add(int64(42), uint8(12))
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		r := rand.New(rand.NewSource(seed))
		inputs := []trace.Value{adt.ProposeInput("a"), adt.ProposeInput("b")}
		outputs := []trace.Value{adt.DecideOutput("a"), adt.DecideOutput("b")}
		clients := []trace.ClientID{"c1", "c2", "c3"}
		var tr trace.Trace
		for i := 0; i < int(n%24); i++ {
			c := clients[r.Intn(len(clients))]
			if r.Intn(2) == 0 {
				tr = append(tr, trace.Invoke(c, 1, inputs[r.Intn(2)]))
			} else {
				tr = append(tr, trace.Response(c, 1, inputs[r.Intn(2)], outputs[r.Intn(2)]))
			}
		}
		ctx := context.Background()
		want, err := Check(ctx, adt.Consensus{}, tr)
		if err != nil {
			t.Skip() // budget-type errors: nothing to compare
		}
		s := NewSession(ctx, adt.Consensus{})
		if err := s.FeedAll(tr); err != nil {
			t.Fatalf("session error where one-shot succeeded: %v", err)
		}
		got, err := s.Result()
		if err != nil {
			t.Fatal(err)
		}
		if got.OK != want.OK {
			t.Fatalf("session %v, one-shot %v on %v", got.OK, want.OK, tr)
		}
	})
}
