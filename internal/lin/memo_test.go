package lin

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
	"repro/internal/workload"
)

// TestHashedMemoAgreesWithReference is the optimization's property test
// (extending experiment E8): the digest-keyed, mutate-in-place Check must
// return the same verdict as the retained string-keyed CheckReference on
// randomized traces across four ADTs, corrupted and clean, with and
// without occurrence tags. On negative verdicts the two must also spend
// exactly the same number of search nodes: a failed search explores the
// whole memoized DAG, whose size is independent of branch order (the
// reference iterates Go maps, so only its successful-path length is
// order-sensitive).
func TestHashedMemoAgreesWithReference(t *testing.T) {
	cases := []struct {
		name   string
		f      adt.Folder
		inputs []trace.Value
	}{
		{"consensus", adt.Consensus{}, []trace.Value{adt.ProposeInput("a"), adt.ProposeInput("b")}},
		{"register", adt.Register{}, []trace.Value{adt.WriteInput("x"), adt.ReadInput()}},
		{"counter", adt.Counter{}, []trace.Value{adt.IncInput(), adt.GetInput()}},
		{"queue", adt.Queue{}, []trace.Value{adt.EnqInput("x"), adt.DeqInput()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(1234))
			for i := 0; i < 300; i++ {
				opts := workload.TraceOpts{
					Clients: 3, Ops: 4 + r.Intn(3), Inputs: tc.inputs,
					PendingProb: 0.2, UniqueTags: i%3 != 2,
				}
				if i%2 == 1 {
					opts.CorruptProb = 0.5
				}
				tr := workload.Random(tc.f, r, opts)
				// POR off: the string-key reference has no reducer, and
				// this test pins EXACT node-count parity of the two
				// unreduced searches (the reduced engine's agreement is
				// covered by the diffcheck differential tests).
				got, err := Check(context.Background(), tc.f, tr, check.WithPOR(false))
				if err != nil {
					t.Fatalf("optimized: %v", err)
				}
				want, err := CheckReference(tc.f, tr)
				if err != nil {
					t.Fatalf("reference: %v", err)
				}
				if got.OK != want.OK {
					t.Fatalf("verdict mismatch on %v: optimized %v, reference %v", tr, got.OK, want.OK)
				}
				if !got.OK && got.Nodes != want.Nodes {
					t.Fatalf("node count mismatch on %v: optimized %d, reference %d", tr, got.Nodes, want.Nodes)
				}
				if got.OK {
					if err := VerifyWitness(tc.f, tr, got.Witness); err != nil {
						t.Fatalf("optimized witness invalid: %v", err)
					}
				}
			}
		})
	}
}

// linearizableTrace returns a small fixed linearizable trace for the
// allocation and budget tests.
func linearizableTrace() trace.Trace {
	inA := adt.Tag(adt.ProposeInput("a"), "c1")
	inB := adt.Tag(adt.ProposeInput("b"), "c2")
	inC := adt.Tag(adt.ProposeInput("c"), "c3")
	return trace.Trace{
		trace.Invoke("c1", 1, inA),
		trace.Invoke("c2", 1, inB),
		trace.Response("c2", 1, inB, adt.DecideOutput("b")),
		trace.Invoke("c3", 1, inC),
		trace.Response("c1", 1, inA, adt.DecideOutput("b")),
		trace.Response("c3", 1, inC, adt.DecideOutput("b")),
	}
}

// TestCheckAllocsRegression pins the allocation budget of the hot path.
// The string-key baseline spent ~400 allocs on traces of this size; the
// hashed-memo checker spends a small constant amount of setup plus the
// witness assembly. The bound is deliberately loose (2× current) so the
// test fails on an accidental return to per-node allocation, not on noise.
func TestCheckAllocsRegression(t *testing.T) {
	if memocheckEnabled {
		t.Skip("memocheck audit allocates by design")
	}
	tr := linearizableTrace()
	f := adt.Consensus{}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := Check(context.Background(), f, tr); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("lin.Check: %.1f allocs/op", allocs)
	if allocs > 120 {
		t.Errorf("lin.Check allocates %.1f times per op; budget is 120 (hot path regressed to per-node allocation?)", allocs)
	}
	allocs = testing.AllocsPerRun(50, func() {
		if _, err := CheckClassical(context.Background(), f, tr); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("lin.CheckClassical: %.1f allocs/op", allocs)
	if allocs > 60 {
		t.Errorf("lin.CheckClassical allocates %.1f times per op; budget is 60", allocs)
	}
}

// TestBudgetUniform verifies the uniform budget semantics: the budget
// bounds total search nodes per call, Result.Nodes never exceeds it, and
// exhausting it yields ErrBudget from both checkers.
func TestBudgetUniform(t *testing.T) {
	tr := linearizableTrace()
	f := adt.Consensus{}

	full, err := Check(context.Background(), f, tr)
	if err != nil {
		t.Fatal(err)
	}
	if full.Nodes <= 0 {
		t.Fatalf("expected positive node count, got %d", full.Nodes)
	}
	// A budget exactly equal to the spent nodes succeeds; one less fails.
	if _, err := Check(context.Background(), f, tr, check.WithBudget(full.Nodes)); err != nil {
		t.Fatalf("budget == nodes should succeed, got %v", err)
	}
	if _, err := Check(context.Background(), f, tr, check.WithBudget(full.Nodes-1)); !errors.Is(err, ErrBudget) {
		t.Fatalf("budget == nodes-1 should exhaust, got %v", err)
	}

	fullC, err := CheckClassical(context.Background(), f, tr)
	if err != nil {
		t.Fatal(err)
	}
	if fullC.Nodes <= 0 {
		t.Fatalf("expected positive classical node count, got %d", fullC.Nodes)
	}
	if _, err := CheckClassical(context.Background(), f, tr, check.WithBudget(fullC.Nodes)); err != nil {
		t.Fatalf("classical budget == nodes should succeed, got %v", err)
	}
	if _, err := CheckClassical(context.Background(), f, tr, check.WithBudget(fullC.Nodes-1)); !errors.Is(err, ErrBudget) {
		t.Fatalf("classical budget == nodes-1 should exhaust, got %v", err)
	}

	// The reference checker counts identically on a failed search (full
	// exploration is branch-order independent; see the property test).
	bad := trace.Trace{
		trace.Invoke("c1", 1, adt.Tag(adt.ProposeInput("a"), "c1")),
		trace.Invoke("c2", 1, adt.Tag(adt.ProposeInput("b"), "c2")),
		trace.Response("c1", 1, adt.Tag(adt.ProposeInput("a"), "c1"), adt.DecideOutput("a")),
		trace.Response("c2", 1, adt.Tag(adt.ProposeInput("b"), "c2"), adt.DecideOutput("b")),
	}
	opt, err := Check(context.Background(), f, bad)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := CheckReference(f, bad)
	if err != nil {
		t.Fatal(err)
	}
	if opt.OK || ref.OK {
		t.Fatalf("split-decision trace accepted: optimized %v, reference %v", opt.OK, ref.OK)
	}
	if ref.Nodes != opt.Nodes {
		t.Fatalf("reference spent %d nodes, optimized %d", ref.Nodes, opt.Nodes)
	}
}

// TestCheckAllMatchesSequential verifies the batch checker returns the
// same verdicts as sequential checks, in order, for several pool sizes.
func TestCheckAllMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := adt.Consensus{}
	inputs := []trace.Value{adt.ProposeInput("a"), adt.ProposeInput("b")}
	traces := make([]trace.Trace, 64)
	for i := range traces {
		opts := workload.TraceOpts{Clients: 3, Ops: 5, Inputs: inputs, UniqueTags: true}
		if i%2 == 1 {
			opts.CorruptProb = 0.5
		}
		traces[i] = workload.Random(f, r, opts)
	}
	want := make([]bool, len(traces))
	for i, tr := range traces {
		res, err := Check(context.Background(), f, tr)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.OK
	}
	for _, workers := range []int{0, 1, 3, 16} {
		got, err := CheckAll(context.Background(), f, traces, check.WithWorkers(workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range traces {
			if got[i].OK != want[i] {
				t.Fatalf("workers=%d trace %d: batch %v, sequential %v", workers, i, got[i].OK, want[i])
			}
		}
		gotC, err := CheckClassicalAll(context.Background(), f, traces, check.WithWorkers(workers))
		if err != nil {
			t.Fatalf("classical workers=%d: %v", workers, err)
		}
		for i := range traces {
			if gotC[i].OK != want[i] {
				t.Fatalf("classical workers=%d trace %d: batch %v, new-definition %v", workers, i, gotC[i].OK, want[i])
			}
		}
	}
}

// TestCheckAllPropagatesError verifies a budget exhaustion inside the
// batch surfaces as an error instead of a silent wrong verdict.
func TestCheckAllPropagatesError(t *testing.T) {
	f := adt.Consensus{}
	traces := []trace.Trace{linearizableTrace(), linearizableTrace()}
	_, err := CheckAll(context.Background(), f, traces, check.WithBudget(1))
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
}
