package lin

// Tests for the sleep-set partial-order reduction (check.WithPOR,
// DESIGN.md decision 12): pruned-branch accounting, the budget /
// cancellation sentinels' independence from the reducer, the uncapped
// classical checker's indifference to it (decision 13), and
// worker-count independence of verdicts beyond GOMAXPROCS.

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/adt"
	"repro/internal/check"
	"repro/internal/trace"
	"repro/internal/workload"
)

// commutingTrace is the split-decision consensus workload with w
// concurrent proposals: after the first chain element every remaining
// proposal is a no-op on the decided state, so the unreduced search
// enumerates factorially many extension orders the reducer collapses.
func commutingTrace(w int) trace.Trace { return workload.SplitDecision(w, "p") }

// TestPORAccounting pins the Nodes/Pruned bookkeeping: the reducer must
// actually prune on a commuting workload (and never with WithPOR(false)),
// spend no more nodes than the unreduced search, and agree on the
// verdict.
func TestPORAccounting(t *testing.T) {
	ctx := context.Background()
	tr := commutingTrace(6)
	on, err := Check(ctx, adt.Consensus{}, tr, check.WithBudget(50_000_000))
	if err != nil {
		t.Fatal(err)
	}
	off, err := Check(ctx, adt.Consensus{}, tr, check.WithBudget(50_000_000), check.WithPOR(false))
	if err != nil {
		t.Fatal(err)
	}
	if on.OK != off.OK {
		t.Fatalf("verdicts disagree: por=%v nopor=%v", on.OK, off.OK)
	}
	if off.Pruned != 0 {
		t.Fatalf("unreduced search reported %d pruned branches", off.Pruned)
	}
	if on.Pruned == 0 {
		t.Fatal("reducer pruned nothing on a maximally commuting trace")
	}
	if on.Nodes >= off.Nodes {
		t.Fatalf("reduced search spent %d nodes, unreduced %d — no reduction", on.Nodes, off.Nodes)
	}
	if off.Nodes < 2*on.Nodes {
		t.Fatalf("expected ≥2x node reduction on the commuting trace, got %d vs %d", off.Nodes, on.Nodes)
	}
	t.Logf("commuting trace: %d nodes unreduced, %d reduced (%.1fx), %d pruned",
		off.Nodes, on.Nodes, float64(off.Nodes)/float64(on.Nodes), on.Pruned)
}

// TestClassicalUncappedUnderPOR: the classical checker is uncapped
// (decision 13) and orthogonal to the reducer (the classical search has
// no extension branch sets); a 64-operation trace decides identically —
// same verdict, same node count — with the reducer on and off, and
// agrees with the new-definition checker (Theorem 1; unique inputs).
func TestClassicalUncappedUnderPOR(t *testing.T) {
	var tr trace.Trace
	for i := 0; i < 64; i++ {
		c := trace.ClientID(fmt.Sprintf("c%d", i))
		in := adt.Tag(adt.IncInput(), fmt.Sprintf("%d", i))
		tr = append(tr, trace.Invoke(c, 1, in), trace.Response(c, 1, in, adt.CountOutput(i+1)))
	}
	var nodes []int
	for _, por := range []bool{true, false} {
		res, err := CheckClassical(context.Background(), adt.Counter{}, tr, check.WithPOR(por))
		if err != nil {
			t.Fatalf("por=%v: classical check on 64 ops: %v", por, err)
		}
		if !res.OK {
			t.Fatalf("por=%v: sequential 64-op trace must be linearizable*", por)
		}
		nodes = append(nodes, res.Nodes)
		ok, err := Check(context.Background(), adt.Counter{}, tr, check.WithPOR(por))
		if err != nil {
			t.Fatalf("por=%v: Check on 64 ops: %v", por, err)
		}
		if !ok.OK {
			t.Fatalf("por=%v: sequential 64-op trace must be linearizable", por)
		}
	}
	if nodes[0] != nodes[1] {
		t.Fatalf("classical node counts depend on the (ignored) reducer option: %v", nodes)
	}
}

// TestPORNodeCountsPinned pins the exact (Nodes, Pruned) bookkeeping of
// the reduced searches on the split-decision family, for the depth and
// frontier engines. The values were recorded before the push-variant
// chain APIs started reusing the Step/Out pair FilterIndependent's
// callers precompute (the ISSUE 5 perf satellite): the optimization must
// not change the search tree, only shave folder calls, so any drift here
// means the reduction itself changed.
func TestPORNodeCountsPinned(t *testing.T) {
	want := map[int]struct{ nodes, pruned, unreduced int }{
		5: {nodes: 104, pruned: 102, unreduced: 398},
		6: {nodes: 233, pruned: 343, unreduced: 2291},
	}
	for w, exp := range want {
		tr := commutingTrace(w)
		for _, workers := range []int{1, 2} {
			res, err := Check(context.Background(), adt.Consensus{}, tr,
				check.WithBudget(50_000_000), check.WithWorkers(workers))
			if err != nil {
				t.Fatalf("w=%d workers=%d: %v", w, workers, err)
			}
			if res.Nodes != exp.nodes || res.Pruned != exp.pruned {
				t.Errorf("w=%d workers=%d: nodes=%d pruned=%d, want nodes=%d pruned=%d",
					w, workers, res.Nodes, res.Pruned, exp.nodes, exp.pruned)
			}
		}
		off, err := Check(context.Background(), adt.Consensus{}, tr,
			check.WithBudget(50_000_000), check.WithPOR(false))
		if err != nil {
			t.Fatalf("w=%d unreduced: %v", w, err)
		}
		if off.Nodes != exp.unreduced {
			t.Errorf("w=%d unreduced: nodes=%d, want %d", w, off.Nodes, exp.unreduced)
		}
	}
}

// TestBudgetInterplayWithPOR: exhausting the budget yields ErrBudget with
// Nodes ≤ budget regardless of the reducer, on both engines; and a budget
// sufficient for the reduced search but not the unreduced one
// demonstrates the interplay is per-engine, not per-option.
func TestBudgetInterplayWithPOR(t *testing.T) {
	ctx := context.Background()
	tr := commutingTrace(6)
	for _, por := range []bool{true, false} {
		for _, workers := range []int{1, 2} {
			res, err := Check(ctx, adt.Consensus{}, tr,
				check.WithBudget(50), check.WithPOR(por), check.WithWorkers(workers))
			if !errors.Is(err, ErrBudget) {
				t.Fatalf("por=%v workers=%d: expected ErrBudget, got %v", por, workers, err)
			}
			if res.OK {
				t.Fatalf("por=%v workers=%d: exhausted check must not decide", por, workers)
			}
			if res.Nodes > 50+1 {
				t.Fatalf("por=%v workers=%d: %d nodes spent beyond the budget", por, workers, res.Nodes)
			}
		}
	}
	// A budget between the two costs: the reduced search completes, the
	// unreduced one exhausts — the reduction enlarges the decidable set.
	on, err := Check(ctx, adt.Consensus{}, tr, check.WithBudget(50_000_000))
	if err != nil {
		t.Fatal(err)
	}
	mid := on.Nodes + 1
	if _, err := Check(ctx, adt.Consensus{}, tr, check.WithBudget(mid)); err != nil {
		t.Fatalf("reduced search must fit in %d nodes: %v", mid, err)
	}
	if _, err := Check(ctx, adt.Consensus{}, tr, check.WithBudget(mid), check.WithPOR(false)); !errors.Is(err, ErrBudget) {
		t.Fatalf("unreduced search in %d nodes: expected ErrBudget, got %v", mid, err)
	}
}

// TestCancellationUnderPOR: a cancelled context aborts reduced searches
// with the context error, on the depth, frontier and session engines.
func TestCancellationUnderPOR(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tr := commutingTrace(6)
	for _, workers := range []int{1, 2} {
		_, err := Check(ctx, adt.Consensus{}, tr, check.WithWorkers(workers))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: expected context.Canceled, got %v", workers, err)
		}
	}
	s := NewSession(ctx, adt.Consensus{})
	var err error
	for _, a := range tr {
		if err = s.Feed(a); err != nil {
			break
		}
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("session: expected context.Canceled, got %v", err)
	}
	if v := s.Verdict(); v != check.Unknown {
		t.Fatalf("session verdict after cancel = %v, want Unknown", v)
	}
}

// TestSessionPrunedAccounting: the frontier engine's pruned counter is
// live during a session and lands in its Result.
func TestSessionPrunedAccounting(t *testing.T) {
	s := NewSession(context.Background(), adt.Consensus{}, check.WithBudget(50_000_000))
	for _, a := range commutingTrace(5) {
		if err := s.Feed(a); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Pruned == 0 || res.Pruned != s.Pruned() {
		t.Fatalf("session pruned accounting: Result.Pruned=%d, Session.Pruned()=%d (want equal, non-zero)",
			res.Pruned, s.Pruned())
	}
}

// TestWorkerCountIndependence pins verdict independence of the worker
// count beyond GOMAXPROCS: the sharded claim set must give the same
// verdicts when workers heavily oversubscribe the cores (the >GOMAXPROCS
// regime the ShardedSet stress test exercises at the structure level).
func TestWorkerCountIndependence(t *testing.T) {
	ctx := context.Background()
	over := 2*runtime.GOMAXPROCS(0) + 3
	r := workerIndependenceTraces()
	for i, tc := range r {
		want, err := Check(ctx, tc.f, tc.tr, check.WithWorkers(1))
		if err != nil {
			t.Fatalf("case %d sequential: %v", i, err)
		}
		for _, workers := range []int{2, over} {
			for _, por := range []bool{true, false} {
				got, err := Check(ctx, tc.f, tc.tr, check.WithWorkers(workers), check.WithPOR(por))
				if err != nil {
					t.Fatalf("case %d workers=%d por=%v: %v", i, workers, por, err)
				}
				if got.OK != want.OK {
					t.Fatalf("case %d workers=%d por=%v: verdict %v, sequential %v\ntrace: %v",
						i, workers, por, got.OK, want.OK, tc.tr)
				}
			}
		}
	}
}

func workerIndependenceTraces() []struct {
	f  adt.Folder
	tr trace.Trace
} {
	out := sessionTestTraces(911, 60)
	// Include the wide commuting trace: a large frontier actually spreads
	// over the oversubscribed workers.
	out = append(out, struct {
		f  adt.Folder
		tr trace.Trace
	}{adt.Consensus{}, commutingTrace(5)})
	return out
}
