package lin

import (
	"repro/internal/adt"
	"repro/internal/trace"
)

// fastConsensus is the streaming consensus fast path (DESIGN.md,
// decision 15). Inside the distinct-inputs, grammar-valid fragment the
// ADT collapses the check to one condition: every responded operation
// must output d(w) for a single value w that some proposal invoked
// before the first deciding response carries. Sufficiency is witnessed
// constructively — linearize the earliest-invoked proposal of w first
// (the head), then every other responded operation in response order;
// the head drives the state to w, every later operation outputs d(w),
// and Validity holds because the head is invoked before the first
// response and each member before its own.
type fastConsensus struct {
	seen    map[trace.Value]struct{} // every invocation input (distinctness)
	props   map[trace.Value]conProp  // untagged proposal value -> earliest propose
	decided bool
	val     trace.Value // the decided value, once decided
	headIn  trace.Value // input of the linearization head
	resps   []conMember // responded operations, response order
}

type conProp struct {
	in trace.Value
}

type conMember struct {
	in  trace.Value
	res int
}

func newFastConsensus() *fastConsensus {
	return &fastConsensus{
		seen:  map[trace.Value]struct{}{},
		props: map[trace.Value]conProp{},
	}
}

// Inv implements FastChecker.
func (c *fastConsensus) Inv(in trace.Value, idx int) FastStatus {
	if _, dup := c.seen[in]; dup {
		return FastExit
	}
	c.seen[in] = struct{}{}
	v, ok := adt.ProposalOf(adt.Untag(in))
	if !ok {
		return FastExit // grammar-invalid proposal; exact semantics differ
	}
	if _, have := c.props[v]; !have {
		c.props[v] = conProp{in: in}
	}
	return FastOK
}

// Res implements FastChecker.
func (c *fastConsensus) Res(in, out trace.Value, invIdx, idx int) FastStatus {
	w, ok := adt.DecisionOf(out)
	if !ok {
		return FastReject // proposals can only ever output "d:x"
	}
	if !c.decided {
		p, proposed := c.props[w]
		if !proposed {
			// The linearization head must be a proposal of w invoked
			// before the first deciding response; none exists.
			return FastReject
		}
		c.decided, c.val, c.headIn = true, w, p.in
	} else if w != c.val {
		return FastReject // two distinct decisions defeat any single head
	}
	c.resps = append(c.resps, conMember{in: in, res: idx})
	return FastOK
}

// Witness implements FastChecker (see the type comment for the
// construction).
func (c *fastConsensus) Witness() Witness {
	w := Witness{}
	if !c.decided {
		return w
	}
	hist := trace.History{c.headIn}
	for _, m := range c.resps {
		if m.in == c.headIn {
			w[m.res] = hist[:1].Clone()
			continue
		}
		hist = append(hist, m.in)
		w[m.res] = hist.Clone()
	}
	return w
}
